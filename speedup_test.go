package dynamicrumor_test

// The workers-speedup smoke: the chunked claiming in internal/runner exists
// so parallel Monte-Carlo batches get a real wall-clock speedup, not just a
// bit-identity guarantee. A unit test cannot assert the BENCH trajectory's
// ≥2× target — CI machines are small and noisy — but it can catch the
// regression class where turn-taking or claiming serializes the workers and
// "parallel" silently degrades to serial-with-overhead.

import (
	"runtime"
	"testing"
	"time"

	"dynamicrumor/rumor"
)

// speedupWorkload runs one parallel Monte-Carlo batch and returns its wall
// time. The workload matches the BenchmarkMonteCarloWorkers anchor shape:
// many independent mid-sized repetitions, nothing shared but the reduction.
func speedupWorkload(t *testing.T, parallelism, reps int) time.Duration {
	t.Helper()
	eng := rumor.Engine{Parallelism: parallelism, Seed: 20200424}
	sc := rumor.Scenario{
		Network: rumor.NetworkSpec{Family: "dynamic-star", Params: rumor.Params{"n": 101}},
	}
	start := time.Now()
	st, err := eng.RunStats(sc, reps)
	if err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	if st.Completed != st.Reps {
		t.Fatal("incomplete repetitions on the dynamic star")
	}
	return elapsed
}

// TestWorkersSpeedupSmoke checks that a multi-worker batch beats a serial
// one on a multi-core machine. The 1.3× bar at ≥4 cores is deliberately far
// below the ideal (≈ min(4, cores)×) so scheduler noise cannot flake the
// gate, while a serialized runner — whose parallel path is serial work plus
// locking overhead, i.e. ratio ≤ 1 — still fails it clearly.
func TestWorkersSpeedupSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock measurement, skipped in short mode")
	}
	if runtime.NumCPU() < 4 {
		t.Skipf("need ≥ 4 CPUs for a meaningful speedup bound, have %d", runtime.NumCPU())
	}
	const reps = 768
	workers := runtime.NumCPU()
	if workers > 8 {
		workers = 8
	}
	speedupWorkload(t, 1, reps/4) // warm up code paths and the page cache
	// Best-of-three on both sides, so one descheduled run cannot fail (or
	// pass) the gate on its own.
	best := func(par int) time.Duration {
		min := time.Duration(1<<63 - 1)
		for i := 0; i < 3; i++ {
			if d := speedupWorkload(t, par, reps); d < min {
				min = d
			}
		}
		return min
	}
	serial, parallel := best(1), best(workers)
	speedup := float64(serial) / float64(parallel)
	t.Logf("serial %v, %d workers %v: speedup %.2fx", serial, workers, parallel, speedup)
	if speedup < 1.3 {
		t.Fatalf("parallel batch only %.2fx faster than serial (workers=%d, serial %v, parallel %v)",
			speedup, workers, serial, parallel)
	}
}
