package rumor

import (
	"dynamicrumor/internal/experiment"
)

// ExperimentTable is a rendered experiment result (text/CSV renderable).
type ExperimentTable = experiment.Table

// ExperimentConfig controls experiment cost and determinism. Its Parallelism
// field sets the number of worker goroutines used for the Monte-Carlo
// repetitions (0 means GOMAXPROCS); every repetition draws from a private
// RNG stream derived from Seed, so tables are bit-identical for any
// Parallelism value — the knob only changes wall-clock time.
type ExperimentConfig = experiment.Config

// DefaultExperimentConfig is the configuration used for the full paper
// reproduction.
func DefaultExperimentConfig() ExperimentConfig { return experiment.DefaultConfig() }

// QuickExperimentConfig is a reduced configuration suitable for tests and CI.
func QuickExperimentConfig() ExperimentConfig { return experiment.QuickConfig() }

// ExperimentIDs lists the registered experiments (E1..E12), one per theorem,
// observation or figure of the paper.
func ExperimentIDs() []string { return experiment.IDs() }

// ExperimentTitle returns the title of a registered experiment.
func ExperimentTitle(id string) (string, bool) { return experiment.Title(id) }

// RunExperiment executes one experiment by ID.
func RunExperiment(id string, cfg ExperimentConfig) (*ExperimentTable, error) {
	return experiment.Run(id, cfg)
}

// RunAllExperiments executes every experiment in ID order.
func RunAllExperiments(cfg ExperimentConfig) ([]*ExperimentTable, error) {
	return experiment.RunAll(cfg)
}
