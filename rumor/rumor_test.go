package rumor_test

import (
	"math"
	"testing"

	"dynamicrumor/rumor"
)

func TestQuickstartFlow(t *testing.T) {
	rng := rumor.NewRNG(1)
	net := rumor.Static(rumor.Clique(200))
	res, err := rumor.SpreadAsync(net, rumor.AsyncOptions{Start: 0}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed || res.Informed != 200 {
		t.Fatalf("unexpected result %+v", res)
	}
	if res.SpreadTime > 10*math.Log(200) {
		t.Fatalf("clique spread time %v far above Θ(log n)", res.SpreadTime)
	}
}

func TestGraphConstructorsAndParameters(t *testing.T) {
	g := rumor.Cycle(10)
	if g.N() != 10 || g.M() != 10 {
		t.Fatal("cycle wrong")
	}
	if rho := rumor.AbsoluteDiligence(g); rho != 0.5 {
		t.Fatalf("absolute diligence %v, want 0.5", rho)
	}
	phi, err := rumor.Conductance(g)
	if err != nil || math.Abs(phi-0.2) > 1e-9 {
		t.Fatalf("conductance (%v, %v)", phi, err)
	}
	rho, err := rumor.Diligence(g)
	if err != nil || rho != 1 {
		t.Fatalf("diligence (%v, %v)", rho, err)
	}
	upper, lower, err := rumor.ConductanceEstimate(rumor.Expander(300, 6, rumor.NewRNG(2)))
	if err != nil || upper <= 0 || lower < 0 {
		t.Fatalf("conductance estimate (%v, %v, %v)", upper, lower, err)
	}
	member := []bool{true, true, false, false, false, false, false, false, false, false}
	if cd := rumor.CutDiligence(g, member); cd != 1 {
		t.Fatalf("cut diligence %v, want 1 on a regular graph", cd)
	}
	p := rumor.MeasureProfile(rumor.Star(12, 0))
	if p.Phi != 1 || p.Rho != 1 {
		t.Fatalf("star profile %+v", p)
	}
}

func TestBuilderAndFromEdges(t *testing.T) {
	b := rumor.NewBuilder(3)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	g := b.Build()
	if g.M() != 2 {
		t.Fatal("builder wrong")
	}
	g2 := rumor.FromEdges(3, []rumor.Edge{{U: 0, V: 2}})
	if g2.M() != 1 {
		t.Fatal("FromEdges wrong")
	}
}

func TestDynamicNetworkConstructors(t *testing.T) {
	rng := rumor.NewRNG(3)
	seq := rumor.Sequence([]*rumor.Graph{rumor.Cycle(8), rumor.Clique(8)})
	if seq.N() != 8 {
		t.Fatal("sequence wrong")
	}
	alt := rumor.Alternating([]*rumor.Graph{rumor.Cycle(8), rumor.Clique(8)})
	if alt.GraphAt(2, nil) != alt.GraphAt(0, nil) {
		t.Fatal("alternating wrong")
	}
	adaptive := rumor.AdaptiveFunc(8, func(t int, informed []bool) *rumor.Graph { return rumor.Cycle(8) })
	if adaptive.N() != 8 || adaptive.GraphAt(0, nil).M() != 8 {
		t.Fatal("adaptive func wrong")
	}
	if _, err := rumor.NewRhoDiligentNetwork(256, 0.25, 0, rng); err != nil {
		t.Fatal(err)
	}
	if _, err := rumor.NewAbsDiligentNetwork(120, 0.2, rng); err != nil {
		t.Fatal(err)
	}
	if _, err := rumor.NewDichotomyG1(16); err != nil {
		t.Fatal(err)
	}
	if _, err := rumor.NewDichotomyG2(16, rng); err != nil {
		t.Fatal(err)
	}
	if _, err := rumor.NewEdgeMarkovian(16, 0.2, 0.2, nil, rng); err != nil {
		t.Fatal(err)
	}
	if _, err := rumor.NewMobileAgents(16, 4, rng); err != nil {
		t.Fatal(err)
	}
	if _, err := rumor.RandomRegular(16, 3, rng); err != nil {
		t.Fatal(err)
	}
	if rumor.ErdosRenyi(16, 0.3, rng).N() != 16 {
		t.Fatal("ER wrong")
	}
	if rumor.Hypercube(3).N() != 8 || rumor.Torus(3, 3).N() != 9 ||
		rumor.CompleteBipartite(2, 3).N() != 5 || rumor.Path(4).M() != 3 {
		t.Fatal("family constructors wrong")
	}
}

func TestSpreadVariantsOnPublicAPI(t *testing.T) {
	rng := rumor.NewRNG(4)
	net := rumor.Static(rumor.Star(30, 0))
	if _, err := rumor.SpreadSync(net, rumor.SyncOptions{Start: 1}, rng); err != nil {
		t.Fatal(err)
	}
	if _, err := rumor.SpreadFlooding(net, rumor.SyncOptions{Start: 1}, rng); err != nil {
		t.Fatal(err)
	}
	if _, err := rumor.SpreadAsyncNaive(net, rumor.AsyncOptions{Start: 1}, rng); err != nil {
		t.Fatal(err)
	}
	res, err := rumor.SpreadAsync(net, rumor.AsyncOptions{Start: 1, Mode: rumor.PushOnly}, rng)
	if err != nil || !res.Completed {
		t.Fatalf("push-only on star failed: %v %+v", err, res)
	}
	if rumor.PushPull.String() != "push-pull" || rumor.PullOnly.String() != "pull" {
		t.Fatal("mode constants wrong")
	}
}

func TestBoundsOnPublicAPI(t *testing.T) {
	profile := rumor.ConstantProfile(rumor.StepProfile{Phi: 1, Rho: 1, AbsRho: 1, Connected: true})
	t11, err := rumor.Theorem11Bound(profile, 100, 1, 0)
	if err != nil || t11 <= 0 {
		t.Fatalf("Theorem11Bound (%v, %v)", t11, err)
	}
	tabs, err := rumor.AbsoluteBound(profile, 100, 0)
	if err != nil || tabs != 199 {
		t.Fatalf("AbsoluteBound (%v, %v)", tabs, err)
	}
	comb, err := rumor.CombinedBound(profile, 100, 1, 0)
	if err != nil || comb != tabs {
		t.Fatalf("CombinedBound (%v, %v), want %v", comb, err, tabs)
	}
	if rumor.WorstCaseSpreadTime(10) != 180 {
		t.Fatal("WorstCaseSpreadTime wrong")
	}
}

func TestDichotomyThroughPublicAPI(t *testing.T) {
	// The headline qualitative result reachable in a few lines of public API:
	// the synchronous process needs exactly n rounds on the dynamic star while
	// the asynchronous one finishes in Θ(log n) time.
	rng := rumor.NewRNG(5)
	const n = 100
	star, err := rumor.NewDichotomyG2(n, rng)
	if err != nil {
		t.Fatal(err)
	}
	syncRes, err := rumor.SpreadSync(star, rumor.SyncOptions{Start: star.StartVertex()}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if syncRes.SpreadTime != n {
		t.Fatalf("sync on dynamic star = %v rounds, want %d", syncRes.SpreadTime, n)
	}
	star2, err := rumor.NewDichotomyG2(n, rng)
	if err != nil {
		t.Fatal(err)
	}
	asyncRes, err := rumor.SpreadAsync(star2, rumor.AsyncOptions{Start: star2.StartVertex()}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if asyncRes.SpreadTime >= float64(n)/2 {
		t.Fatalf("async on dynamic star = %v, want Θ(log n)", asyncRes.SpreadTime)
	}
}

func TestExperimentRegistryThroughPublicAPI(t *testing.T) {
	ids := rumor.ExperimentIDs()
	if len(ids) != 12 {
		t.Fatalf("expected 12 experiments, got %d", len(ids))
	}
	if _, ok := rumor.ExperimentTitle("E1"); !ok {
		t.Fatal("E1 title missing")
	}
	if _, err := rumor.RunExperiment("does-not-exist", rumor.QuickExperimentConfig()); err == nil {
		t.Fatal("unknown experiment should error")
	}
	cfg := rumor.DefaultExperimentConfig()
	if cfg.Seed == 0 {
		t.Fatal("default config missing seed")
	}
}

func TestRunSingleExperimentThroughPublicAPI(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment")
	}
	tbl, err := rumor.RunExperiment("E7", rumor.QuickExperimentConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !tbl.Passed {
		t.Fatalf("E7 failed:\n%s", tbl.Text())
	}
	if tbl.CSV() == "" || tbl.Text() == "" {
		t.Fatal("renderings empty")
	}
}

func TestSpreadCurveAnalysisThroughPublicAPI(t *testing.T) {
	rng := rumor.NewRNG(8)
	net := rumor.Static(rumor.Clique(150))
	var results []*rumor.Result
	for i := 0; i < 6; i++ {
		res, err := rumor.SpreadAsync(net, rumor.AsyncOptions{Start: 0, RecordTrace: true}, rng)
		if err != nil {
			t.Fatal(err)
		}
		results = append(results, res)
	}
	curve, err := rumor.SpreadCurve(results, 25)
	if err != nil {
		t.Fatal(err)
	}
	if len(curve) != 25 || curve[len(curve)-1].MeanFraction < 0.99 {
		t.Fatalf("unexpected curve end: %+v", curve[len(curve)-1])
	}
	median, q90, err := rumor.TimeToFractionQuantiles(results, 0.5)
	if err != nil || median <= 0 || q90 < median {
		t.Fatalf("quantiles (%v, %v, %v)", median, q90, err)
	}
	if times, reached := rumor.TimeToFraction(results, 0.5); reached != 6 || len(times) != 6 {
		t.Fatalf("TimeToFraction reached %d", reached)
	}
	rate, err := rumor.ExponentialGrowthRate(results[0])
	if err != nil || rate <= 0 {
		t.Fatalf("growth rate (%v, %v)", rate, err)
	}
}
