package rumor_test

import (
	"math"
	"testing"

	"dynamicrumor/rumor"
)

// tracedResults runs a small traced batch through the engine so the analysis
// helpers get realistic traces.
func tracedResults(t *testing.T, reps int) []*rumor.Result {
	t.Helper()
	ens, err := rumor.Engine{Seed: 41}.RunBatch(rumor.Scenario{
		Network: rumor.NetworkSpec{Family: "clique", Params: rumor.Params{"n": 64}},
		Trace:   true,
	}, reps)
	if err != nil {
		t.Fatal(err)
	}
	return ens.Results
}

func TestSpreadCurveEmptyInput(t *testing.T) {
	if _, err := rumor.SpreadCurve(nil, 10); err == nil {
		t.Fatal("SpreadCurve(nil) must error")
	}
	if _, err := rumor.SpreadCurve([]*rumor.Result{}, 10); err == nil {
		t.Fatal("SpreadCurve(empty) must error")
	}
	if _, err := rumor.SpreadCurve([]*rumor.Result{nil, nil}, 10); err == nil {
		t.Fatal("SpreadCurve(nil results) must error")
	}
}

func TestSpreadCurveTracelessResults(t *testing.T) {
	// Results from runs without RecordTrace carry no trace points and cannot
	// be aggregated into a curve.
	res, err := rumor.Engine{Seed: 1}.RunBatch(rumor.Scenario{
		Network: rumor.NetworkSpec{Family: "clique", Params: rumor.Params{"n": 32}},
	}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rumor.SpreadCurve(res.Results, 10); err == nil {
		t.Fatal("SpreadCurve on traceless results must error")
	}
}

func TestSpreadCurveSingleRunEnvelope(t *testing.T) {
	results := tracedResults(t, 1)
	curve, err := rumor.SpreadCurve(results, 12)
	if err != nil {
		t.Fatal(err)
	}
	if len(curve) != 12 {
		t.Fatalf("curve has %d points, want 12", len(curve))
	}
	// With a single run the envelope collapses onto the mean.
	for i, p := range curve {
		if p.MinFraction != p.MeanFraction || p.MaxFraction != p.MeanFraction {
			t.Fatalf("point %d: single-run envelope must collapse, got %+v", i, p)
		}
		if i > 0 && p.Time <= curve[i-1].Time {
			t.Fatalf("curve times must be strictly increasing, got %v then %v", curve[i-1].Time, p.Time)
		}
	}
	if last := curve[len(curve)-1]; last.MeanFraction != 1 {
		t.Fatalf("completed run must end at fraction 1, got %v", last.MeanFraction)
	}
}

func TestSpreadCurveMixedTracedAndTraceless(t *testing.T) {
	results := tracedResults(t, 3)
	// A nil result and a traceless result must be skipped, not crash or skew
	// the envelope to zero.
	mixed := append([]*rumor.Result{nil, {N: 64}}, results...)
	curve, err := rumor.SpreadCurve(mixed, 8)
	if err != nil {
		t.Fatal(err)
	}
	if last := curve[len(curve)-1]; last.MeanFraction != 1 {
		t.Fatalf("traceless results must not drag the mean below 1 at the end, got %v", last.MeanFraction)
	}
}

func TestTimeToFraction(t *testing.T) {
	results := tracedResults(t, 5)
	times, reached := rumor.TimeToFraction(results, 0.5)
	if reached != 5 || len(times) != 5 {
		t.Fatalf("reached = %d (times %v), want all 5", reached, times)
	}
	for _, x := range times {
		if x <= 0 || math.IsNaN(x) {
			t.Fatalf("time-to-half must be positive, got %v", times)
		}
	}
	// Fraction 0 clamps to one informed vertex: reached at time 0.
	times, reached = rumor.TimeToFraction(results, 0)
	if reached != 5 {
		t.Fatalf("fraction 0 must be reached by every run, got %d", reached)
	}
	for _, x := range times {
		if x != 0 {
			t.Fatalf("fraction 0 is reached at the start, got %v", times)
		}
	}
}

func TestTimeToFractionQuantilesErrors(t *testing.T) {
	// No results at all.
	if _, _, err := rumor.TimeToFractionQuantiles(nil, 0.5); err == nil {
		t.Fatal("TimeToFractionQuantiles(nil) must error")
	}
	// Traceless results never report reaching the target.
	traceless := []*rumor.Result{{N: 10, Informed: 10, Completed: true}}
	if _, _, err := rumor.TimeToFractionQuantiles(traceless, 0.5); err == nil {
		t.Fatal("TimeToFractionQuantiles on traceless results must error")
	}
	// Healthy path: median <= q90.
	results := tracedResults(t, 6)
	median, q90, err := rumor.TimeToFractionQuantiles(results, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if median <= 0 || q90 < median {
		t.Fatalf("quantiles inconsistent: median=%v q90=%v", median, q90)
	}
}

func TestExponentialGrowthRateOnClique(t *testing.T) {
	results := tracedResults(t, 1)
	lambda, err := rumor.ExponentialGrowthRate(results[0])
	if err != nil {
		t.Fatal(err)
	}
	// Push-pull on a clique doubles the informed set at rate ≈ 2; accept a
	// generous band since n is small.
	if lambda < 1 || lambda > 3 {
		t.Fatalf("growth rate on a clique = %v, want ≈ 2", lambda)
	}
	if _, err := rumor.ExponentialGrowthRate(&rumor.Result{N: 64}); err == nil {
		t.Fatal("growth rate of a traceless run must error")
	}
}
