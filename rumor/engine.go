package rumor

import (
	"dynamicrumor/internal/engine"
	"dynamicrumor/internal/sim"
)

// The scenario/engine layer is the primary way to run simulations: describe
// what to run as a declarative (JSON-serializable) Scenario, then hand it to
// an Engine, which fans Monte-Carlo repetitions across worker goroutines with
// bit-identical results for every parallelism value.
//
//	eng := rumor.Engine{Seed: 1}
//	ens, err := eng.RunBatch(rumor.Scenario{
//		Network:  rumor.NetworkSpec{Family: "clique", Params: rumor.Params{"n": 1000}},
//		Protocol: rumor.ProtocolAsync,
//	}, 64)
//	// ens.MeanSpreadTime() is Θ(log n) on the clique.
type (
	// Scenario declaratively describes one simulation setup.
	Scenario = engine.Scenario
	// NetworkSpec selects a scenario's network by family name + params, or by
	// a custom in-code factory.
	NetworkSpec = engine.NetworkSpec
	// NetworkFactory builds a fresh network per repetition (programmatic
	// scenarios).
	NetworkFactory = engine.NetworkFactory
	// Params carries the numeric parameters of a network family.
	Params = engine.Params
	// ProtocolKind names a spreading algorithm ("async", "sync", "flooding").
	ProtocolKind = engine.ProtocolKind
	// Engine executes scenarios with a fixed parallelism and seed policy.
	Engine = engine.Engine
	// Ensemble aggregates the results of a batch run.
	Ensemble = engine.Ensemble
	// Reducer consumes one repetition's result during Engine.RunReduce; it is
	// called in strict repetition order and must not retain the result.
	Reducer = engine.Reducer
	// BatchStats is the O(1)-memory aggregate returned by Engine.RunStats.
	BatchStats = engine.BatchStats
	// Protocol is the execution contract unifying the three simulators.
	Protocol = sim.Protocol
)

// The spreading algorithms a scenario can select.
const (
	// ProtocolAsync is the asynchronous push-pull process of Definition 1.
	ProtocolAsync = engine.ProtocolAsync
	// ProtocolSync is the synchronous round-based push-pull process.
	ProtocolSync = engine.ProtocolSync
	// ProtocolFlooding is synchronous flooding.
	ProtocolFlooding = engine.ProtocolFlooding
)

// Concrete protocols, for callers that want to run a simulator directly
// against a network without going through a Scenario.
type (
	// AsyncProtocol is the asynchronous push-pull simulator as a Protocol.
	AsyncProtocol = sim.AsyncProtocol
	// SyncProtocol is the synchronous push-pull simulator as a Protocol.
	SyncProtocol = sim.SyncProtocol
	// FloodingProtocol is the flooding simulator as a Protocol.
	FloodingProtocol = sim.FloodingProtocol
)

// ParseScenario decodes and validates a JSON scenario. Unknown fields are
// rejected so typos in scenario files fail loudly.
func ParseScenario(data []byte) (Scenario, error) { return engine.Parse(data) }

// LoadScenario reads and parses a scenario file.
func LoadScenario(path string) (Scenario, error) { return engine.Load(path) }

// EncodeScenario renders a scenario as indented JSON; scenarios carrying a
// custom network factory are rejected.
func EncodeScenario(s Scenario) ([]byte, error) { return engine.Encode(s) }

// NetworkFamilies lists every network family name a NetworkSpec can select,
// in sorted order.
func NetworkFamilies() []string { return engine.Families() }

// StartAt is a convenience for Scenario.Start, which is a pointer so that
// "unset" (use the family's default start vertex) is distinguishable from
// vertex 0.
func StartAt(v int) *int { return &v }

// ParseMode converts a mode name ("push-pull", "push", "pull") to a Mode;
// the empty string parses to the zero value, which every simulator treats
// as PushPull.
func ParseMode(s string) (Mode, error) { return sim.ParseMode(s) }
