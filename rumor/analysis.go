package rumor

import (
	"dynamicrumor/internal/analysis"
)

// CurvePoint is one point of an aggregated spread curve (informed fraction
// over time, averaged across runs with a min/max envelope).
type CurvePoint = analysis.CurvePoint

// SpreadCurve aggregates the traces of several runs (executed with
// RecordTrace enabled) into a curve of the informed fraction over time,
// sampled at `points` evenly spaced times.
func SpreadCurve(results []*Result, points int) ([]CurvePoint, error) {
	return analysis.Curve(results, points)
}

// TimeToFraction returns, per run, the earliest time at which the informed
// fraction reached the target, and how many runs reached it.
func TimeToFraction(results []*Result, fraction float64) (times []float64, reached int) {
	return analysis.TimeToFraction(results, fraction)
}

// TimeToFractionQuantiles summarizes TimeToFraction into its median and
// 0.9-quantile.
func TimeToFractionQuantiles(results []*Result, fraction float64) (median, q90 float64, err error) {
	return analysis.FractionQuantiles(results, fraction)
}

// ExponentialGrowthRate fits the early phase of a traced run to exponential
// growth I(t) ≈ e^{λt} and returns λ (≈2 for push-pull on well-connected
// graphs, much smaller across bottlenecks).
func ExponentialGrowthRate(r *Result) (float64, error) {
	return analysis.ExponentialGrowthRate(r)
}
