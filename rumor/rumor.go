// Package rumor is the public API of the dynamicrumor library: asynchronous
// and synchronous rumor spreading (push-pull and its variants) on dynamic
// evolving networks, the graph parameters introduced by Pourmiri & Mans
// ("Tight Analysis of Asynchronous Rumor Spreading in Dynamic Networks",
// PODC 2020) — diligence and absolute diligence — and the spread-time bounds
// of that paper (Theorems 1.1, 1.3, Corollary 1.6), together with the
// adversarial network constructions used in its lower-bound proofs.
//
// The package is a thin facade over the internal implementation packages;
// everything needed to simulate, bound and experiment is reachable from here.
//
// The primary entry point is the scenario/engine API: describe a simulation
// declaratively as a Scenario (JSON-serializable) and execute Monte-Carlo
// batches of it with an Engine, whose results are bit-identical for every
// parallelism value:
//
//	eng := rumor.Engine{Seed: 1}
//	ens, err := eng.RunBatch(rumor.Scenario{
//		Network: rumor.NetworkSpec{Family: "clique", Params: rumor.Params{"n": 1000}},
//	}, 32)
//	// ens.MeanSpreadTime() is Θ(log n) on the clique.
//
// The legacy one-shot helpers (SpreadAsync, SpreadSync, SpreadFlooding) are
// kept as thin deprecated wrappers over the same simulators.
package rumor

import (
	"dynamicrumor/internal/bound"
	"dynamicrumor/internal/diligence"
	"dynamicrumor/internal/dynamic"
	"dynamicrumor/internal/gen"
	"dynamicrumor/internal/graph"
	"dynamicrumor/internal/sim"
	"dynamicrumor/internal/spectral"
	"dynamicrumor/internal/xrand"
)

// Re-exported core types. The aliases keep the public API small while letting
// advanced users reach every method of the underlying types.
type (
	// Graph is an immutable undirected simple graph on vertices 0..n-1.
	Graph = graph.Graph
	// Edge is an undirected edge.
	Edge = graph.Edge
	// Builder incrementally assembles a Graph.
	Builder = graph.Builder
	// Network is a dynamic evolving network {G(t)}.
	Network = dynamic.Network
	// Result describes one execution of a spreading process.
	Result = sim.Result
	// TracePoint is one entry of a Result trace.
	TracePoint = sim.TracePoint
	// AsyncOptions configures SpreadAsync.
	AsyncOptions = sim.AsyncOptions
	// SyncOptions configures SpreadSync and SpreadFlooding.
	SyncOptions = sim.SyncOptions
	// Mode selects push-pull, push-only or pull-only transfer.
	Mode = sim.Mode
	// RNG is the deterministic random source used by every simulator.
	RNG = xrand.RNG
	// StepProfile carries the per-step graph parameters used by the bounds.
	StepProfile = bound.StepProfile
	// ProfileFunc maps a step index to its StepProfile.
	ProfileFunc = bound.ProfileFunc
)

// Transfer modes of the spreading processes.
const (
	PushPull = sim.PushPull
	PushOnly = sim.PushOnly
	PullOnly = sim.PullOnly
)

// Stream disciplines of the asynchronous simulator (Scenario.Stream and
// AsyncOptions.StreamVersion): v1 is the frozen seed-compatible default, v2
// the faster opt-in discipline, statistically equivalent but not
// byte-identical (gated by internal/statcheck).
const (
	StreamV1 = sim.StreamV1
	StreamV2 = sim.StreamV2
)

// NewRNG returns a deterministic random generator seeded with seed.
func NewRNG(seed uint64) *RNG { return xrand.New(seed) }

// NewBuilder returns a graph builder on n vertices.
func NewBuilder(n int) *Builder { return graph.NewBuilder(n) }

// FromEdges builds a graph from an explicit edge list.
func FromEdges(n int, edges []Edge) *Graph { return graph.FromEdges(n, edges) }

// Standard graph families.

// Clique returns the complete graph K_n.
func Clique(n int) *Graph { return gen.Clique(n) }

// Star returns the star K_{1,n-1} centred at the given vertex.
func Star(n, center int) *Graph { return gen.Star(n, center) }

// Path returns the path on n vertices.
func Path(n int) *Graph { return gen.Path(n) }

// Cycle returns the cycle on n vertices.
func Cycle(n int) *Graph { return gen.Cycle(n) }

// Hypercube returns the d-dimensional hypercube.
func Hypercube(d int) *Graph { return gen.Hypercube(d) }

// Torus returns the rows x cols torus grid.
func Torus(rows, cols int) *Graph { return gen.Torus(rows, cols) }

// CompleteBipartite returns K_{a,b}.
func CompleteBipartite(a, b int) *Graph { return gen.CompleteBipartite(a, b) }

// Expander returns a connected constant-degree graph with Θ(1) conductance.
func Expander(n, maxDegree int, rng *RNG) *Graph { return gen.Expander(n, maxDegree, rng) }

// RandomRegular returns a random d-regular simple graph.
func RandomRegular(n, d int, rng *RNG) (*Graph, error) { return gen.RandomRegular(n, d, rng) }

// ErdosRenyi returns a G(n, p) random graph.
func ErdosRenyi(n int, p float64, rng *RNG) *Graph { return gen.ErdosRenyi(n, p, rng) }

// Dynamic networks.

// Static wraps a single graph as a constant dynamic network.
func Static(g *Graph) Network { return dynamic.NewStatic(g) }

// Sequence exposes graphs[t] at step t, repeating the last graph forever.
func Sequence(graphs []*Graph) Network { return dynamic.NewSequence(graphs) }

// Alternating cycles through the given graphs with period len(graphs).
func Alternating(graphs []*Graph) Network { return dynamic.NewAlternating(graphs) }

// AdaptiveFunc builds a network from an arbitrary (possibly adaptive)
// step-to-graph function.
func AdaptiveFunc(n int, at func(t int, informed []bool) *Graph) Network {
	return &dynamic.Func{NumVertices: n, At: at}
}

// RhoDiligentNetwork is the ρ-diligent dynamic network G(n, ρ) of
// Theorem 1.2, built from the H_{k,Δ} construction of Section 4.
type RhoDiligentNetwork = dynamic.GNRho

// NewRhoDiligentNetwork builds the Theorem 1.2 network; k <= 0 selects the
// paper's Θ(log n / log log n) default.
func NewRhoDiligentNetwork(n int, rho float64, k int, rng *RNG) (*RhoDiligentNetwork, error) {
	return dynamic.NewGNRho(n, rho, k, rng)
}

// AbsDiligentNetwork is the absolutely ρ-diligent dynamic network of
// Theorem 1.5 (Section 5.1).
type AbsDiligentNetwork = dynamic.AbsGNRho

// NewAbsDiligentNetwork builds the Theorem 1.5 network.
func NewAbsDiligentNetwork(n int, rho float64, rng *RNG) (*AbsDiligentNetwork, error) {
	return dynamic.NewAbsGNRho(n, rho, rng)
}

// DichotomyG1 is the clique-with-pendant → two-bridged-cliques network of
// Figure 1(a); synchronous spreading is exponentially faster on it.
type DichotomyG1 = dynamic.DichotomyG1

// NewDichotomyG1 builds G1 with an n-vertex initial clique.
func NewDichotomyG1(n int) (*DichotomyG1, error) { return dynamic.NewDichotomyG1(n) }

// DichotomyG2 is the adaptive dynamic star of Figure 1(b); asynchronous
// spreading is exponentially faster on it.
type DichotomyG2 = dynamic.DichotomyG2

// NewDichotomyG2 builds the dynamic star on n+1 vertices.
func NewDichotomyG2(n int, rng *RNG) (*DichotomyG2, error) { return dynamic.NewDichotomyG2(n, rng) }

// NewEdgeMarkovian builds the edge-Markovian evolving graph baseline
// (each absent edge appears with probability p, each present edge dies with
// probability q, per step).
func NewEdgeMarkovian(n int, p, q float64, initial *Graph, rng *RNG) (Network, error) {
	return dynamic.NewEdgeMarkovian(n, p, q, initial, rng)
}

// NewMobileAgents builds the mobile-agents-on-a-torus-grid proximity network
// baseline.
func NewMobileAgents(agents, side int, rng *RNG) (Network, error) {
	return dynamic.NewMobileAgents(agents, side, rng)
}

// Spreading processes — legacy one-shot helpers. New code should build a
// Scenario and run it through an Engine (see engine.go), which shares one
// execution path with the experiment suite and adds batching, aggregation
// and serialization; these wrappers remain for single-run convenience and
// backward compatibility.

// SpreadAsync runs the asynchronous rumor-spreading algorithm of Definition 1
// (exact event-driven simulation).
//
// Deprecated: use Engine.Run with a Scenario selecting ProtocolAsync, or
// AsyncProtocol.Run for a direct single execution.
func SpreadAsync(net Network, opts AsyncOptions, rng *RNG) (*Result, error) {
	return sim.RunAsync(net, opts, rng)
}

// SpreadAsyncNaive runs the tick-by-tick reference simulator (slow; intended
// for validation).
func SpreadAsyncNaive(net Network, opts AsyncOptions, rng *RNG) (*Result, error) {
	return sim.RunAsyncNaive(net, opts, rng)
}

// SpreadSync runs the synchronous round-based push-pull algorithm.
//
// Deprecated: use Engine.Run with a Scenario selecting ProtocolSync, or
// SyncProtocol.Run for a direct single execution.
func SpreadSync(net Network, opts SyncOptions, rng *RNG) (*Result, error) {
	return sim.RunSync(net, opts, rng)
}

// SpreadFlooding runs synchronous flooding.
//
// Deprecated: use Engine.Run with a Scenario selecting ProtocolFlooding, or
// FloodingProtocol.Run for a direct single execution.
func SpreadFlooding(net Network, opts SyncOptions, rng *RNG) (*Result, error) {
	return sim.RunFlooding(net, opts, rng)
}

// Graph parameters.

// AbsoluteDiligence returns ρ̄(G) = min over edges of max(1/du, 1/dv).
func AbsoluteDiligence(g *Graph) float64 { return diligence.Absolute(g) }

// Diligence returns the exact diligence ρ(G) of Equation (4); it errors for
// graphs with more than 22 vertices (the computation enumerates all cuts).
func Diligence(g *Graph) (float64, error) { return diligence.Exact(g) }

// CutDiligence returns ρ(S) for the vertex set marked true in member.
func CutDiligence(g *Graph, member []bool) float64 { return diligence.OfCut(g, member) }

// Conductance returns the exact conductance Φ(G); it errors for graphs with
// more than 22 vertices.
func Conductance(g *Graph) (float64, error) { return spectral.ExactConductance(g) }

// ConductanceEstimate returns a spectral sweep-cut estimate of Φ(G) usable at
// any size (an upper bound on the true conductance, plus the Cheeger lower
// bound SpectralGap/2).
func ConductanceEstimate(g *Graph) (upper, lower float64, err error) {
	est, err := spectral.EstimateConductance(g, 0)
	if err != nil {
		return 0, 0, err
	}
	return est.SweepConductance, est.LowerBound, nil
}

// MeasureProfile computes the StepProfile (Φ, ρ, ρ̄, connectivity) of a graph,
// exactly for small graphs and via estimates for large ones.
func MeasureProfile(g *Graph) StepProfile { return bound.MeasureProfile(g) }

// Spread-time bounds.

// Theorem11Bound returns T(G, c) of Theorem 1.1 for the given per-step
// profile: the first step at which Σ Φ·ρ reaches (10c+20)/c0 · log n.
func Theorem11Bound(profile ProfileFunc, n int, c float64, maxSteps int) (int, error) {
	return bound.Theorem11(profile, n, c, maxSteps)
}

// AbsoluteBound returns T_abs(G) of Theorem 1.3: the first step at which
// Σ ⌈Φ⌉·ρ̄ reaches 2n.
func AbsoluteBound(profile ProfileFunc, n int, maxSteps int) (int, error) {
	return bound.Theorem13(profile, n, maxSteps)
}

// CombinedBound returns min{T(G,c), T_abs} (Corollary 1.6).
func CombinedBound(profile ProfileFunc, n int, c float64, maxSteps int) (int, error) {
	return bound.Corollary16(profile, n, c, maxSteps)
}

// ConstantProfile turns a single StepProfile into a ProfileFunc.
func ConstantProfile(p StepProfile) ProfileFunc { return bound.ConstantProfile(p) }

// WorstCaseSpreadTime returns the O(n²) bound of Remark 1.4 for connected
// dynamic networks.
func WorstCaseSpreadTime(n int) float64 { return bound.Remark14WorstCase(n) }
