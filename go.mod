module dynamicrumor

go 1.24.0
