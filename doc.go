// Package dynamicrumor is the module root of a from-scratch Go reproduction
// of "Tight Analysis of Asynchronous Rumor Spreading in Dynamic Networks"
// (Pourmiri & Mans, PODC 2020).
//
// The public API lives in the rumor subpackage; the executables live under
// cmd/ and the runnable examples under examples/. See README.md for the
// architecture overview, DESIGN.md for the system inventory and the mapping
// from paper results to modules, and EXPERIMENTS.md for the reproduced
// evaluation.
package dynamicrumor
