package runner

import (
	"context"

	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"dynamicrumor/internal/xrand"
)

// TestMapReduceMatchesMapLocal pins the core contract: for every parallelism
// the reduced sequence is exactly the MapLocal result slice, in repetition
// order.
func TestMapReduceMatchesMapLocal(t *testing.T) {
	const reps = 64
	job := func(rep int, rng *xrand.RNG, _ struct{}) (float64, error) {
		// Consume a rep-dependent number of draws so stream mixups surface.
		sum := 0.0
		for i := 0; i <= rep%7; i++ {
			sum += rng.Float64()
		}
		return sum + float64(rep), nil
	}
	want, err := MapLocal(context.Background(), 1, reps, xrand.New(42), func() struct{} { return struct{}{} }, job)
	if err != nil {
		t.Fatal(err)
	}
	for _, par := range []int{1, 2, 3, 8, 16} {
		got := make([]float64, 0, reps)
		err := MapReduce(context.Background(), par, reps, xrand.New(42), func() struct{} { return struct{}{} }, job,
			func(rep int, v float64) error {
				if rep != len(got) {
					return fmt.Errorf("reduce called with rep %d, want %d", rep, len(got))
				}
				got = append(got, v)
				return nil
			})
		if err != nil {
			t.Fatalf("parallelism %d: %v", par, err)
		}
		if len(got) != reps {
			t.Fatalf("parallelism %d: reduced %d values, want %d", par, len(got), reps)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("parallelism %d: rep %d got %v, want %v", par, i, got[i], want[i])
			}
		}
	}
}

// TestMapReduceOrderUnderSkew forces wildly uneven repetition durations and
// checks the reduction order is still strictly the repetition order.
func TestMapReduceOrderUnderSkew(t *testing.T) {
	const reps = 40
	next := 0
	err := MapReduce(context.Background(), 8, reps, xrand.New(1), func() struct{} { return struct{}{} },
		func(rep int, _ *xrand.RNG, _ struct{}) (int, error) {
			if rep%5 == 0 {
				time.Sleep(2 * time.Millisecond)
			}
			return rep, nil
		},
		func(rep int, v int) error {
			if rep != next || v != rep {
				return fmt.Errorf("out of order: rep %d value %d, want %d", rep, v, next)
			}
			next++
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if next != reps {
		t.Fatalf("reduced %d reps, want %d", next, reps)
	}
}

// TestMapReduceAdvancesBaseLikeMapLocal pins that both entry points leave the
// base generator in the same state, so a caller can interleave them in a
// longer deterministic experiment.
func TestMapReduceAdvancesBaseLikeMapLocal(t *testing.T) {
	a, b := xrand.New(9), xrand.New(9)
	if _, err := MapLocal(context.Background(), 4, 17, a, func() struct{} { return struct{}{} },
		func(rep int, _ *xrand.RNG, _ struct{}) (int, error) { return rep, nil }); err != nil {
		t.Fatal(err)
	}
	if err := MapReduce(context.Background(), 4, 17, b, func() struct{} { return struct{}{} },
		func(rep int, _ *xrand.RNG, _ struct{}) (int, error) { return rep, nil },
		func(int, int) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if a.Uint64() != b.Uint64() {
		t.Fatal("MapLocal and MapReduce advanced the base generator differently")
	}
}

// TestMapReduceJobError checks the deterministic error contract: the lowest
// failing repetition is reported, every earlier repetition was reduced, and
// no later repetition is.
func TestMapReduceJobError(t *testing.T) {
	boom := errors.New("boom")
	for _, par := range []int{1, 4} {
		reduced := 0
		err := MapReduce(context.Background(), par, 50, xrand.New(3), func() struct{} { return struct{}{} },
			func(rep int, _ *xrand.RNG, _ struct{}) (int, error) {
				if rep == 20 || rep == 35 {
					return 0, boom
				}
				return rep, nil
			},
			func(rep int, v int) error {
				if rep >= 20 {
					return fmt.Errorf("reduced rep %d after the failure point", rep)
				}
				reduced++
				return nil
			})
		var re *RepError
		if !errors.As(err, &re) || re.Rep != 20 || !errors.Is(err, boom) {
			t.Fatalf("parallelism %d: got error %v, want RepError for rep 20", par, err)
		}
		if reduced != 20 {
			t.Fatalf("parallelism %d: reduced %d reps before the failure, want 20", par, reduced)
		}
	}
}

// TestMapReduceReducerError checks that a reducer failure aborts the run and
// is returned unwrapped.
func TestMapReduceReducerError(t *testing.T) {
	stop := errors.New("stop")
	for _, par := range []int{1, 6} {
		var ran atomic.Int64
		err := MapReduce(context.Background(), par, 100, xrand.New(4), func() struct{} { return struct{}{} },
			func(rep int, _ *xrand.RNG, _ struct{}) (int, error) {
				ran.Add(1)
				return rep, nil
			},
			func(rep int, v int) error {
				if rep == 10 {
					return stop
				}
				return nil
			})
		if !errors.Is(err, stop) {
			t.Fatalf("parallelism %d: got %v, want the reducer error", par, err)
		}
		// Workers stop claiming after the abort; with par in-flight slots at
		// most a handful of extra jobs ran.
		if n := ran.Load(); n > 10+int64(par)+int64(par) {
			t.Fatalf("parallelism %d: %d jobs ran after an abort at rep 10", par, n)
		}
	}
}

// TestMapReduceZeroReps mirrors Map's no-op contract.
func TestMapReduceZeroReps(t *testing.T) {
	err := MapReduce(context.Background(), 4, 0, xrand.New(1), func() struct{} { return struct{}{} },
		func(rep int, _ *xrand.RNG, _ struct{}) (int, error) { return 0, nil },
		func(int, int) error { t.Fatal("reduce called"); return nil })
	if err != nil {
		t.Fatal(err)
	}
}

// TestMapLazyStreamsMatchEagerStreams pins that the lazy claim-order stream
// derivation hands every repetition exactly the stream the eager Streams
// pre-derivation would.
func TestMapLazyStreamsMatchEagerStreams(t *testing.T) {
	const reps = 12
	want := Streams(xrand.New(77), reps)
	wantFirst := make([]uint64, reps)
	for i, s := range want {
		wantFirst[i] = s.Uint64()
	}
	for _, par := range []int{1, 5} {
		got, err := Map(context.Background(), par, reps, xrand.New(77), func(rep int, rng *xrand.RNG) (uint64, error) {
			return rng.Uint64(), nil
		})
		if err != nil {
			t.Fatal(err)
		}
		for i := range got {
			if got[i] != wantFirst[i] {
				t.Fatalf("parallelism %d: rep %d stream differs from eager derivation", par, i)
			}
		}
	}
}
