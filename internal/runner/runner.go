// Package runner executes independent Monte-Carlo repetitions across a pool
// of worker goroutines.
//
// Every repetition receives its own deterministic RNG stream, derived from a
// single base generator by splitting serially in repetition order (see
// Streams). Because a repetition never touches the base generator — only its
// private stream — the results are bit-identical for any worker count and any
// scheduling order, and identical to what the historical serial loops
// produced. This is the determinism contract documented in DESIGN.md:
// parallelism is a pure throughput knob, never an output knob.
//
// Streams are derived lazily, in claim order, under a lock: stream i is
// seeded from the i-th Uint64 draw of the base generator, exactly the value
// Streams would have pre-derived, but without materializing O(reps) RNGs.
// Workers receive their stream in a per-worker reusable RNG value, so the
// fan-out itself allocates nothing per repetition.
//
// Claims are batched: a worker claims a chunk of consecutive repetitions per
// lock acquisition (Options.ChunkSize, automatic by default) and, on the
// reduce path, hands the whole chunk to the reducer in one condvar turn.
// Chunking never changes outputs — the claimed set is still a sequential
// prefix and streams are still derived in repetition order — it only divides
// the per-repetition synchronization cost by the chunk size.
package runner

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"dynamicrumor/internal/xrand"
)

// Job is one Monte-Carlo repetition. It receives the repetition index and a
// private RNG stream derived from the experiment seed; it must not share
// mutable state with other repetitions, and must not retain the rng after
// returning (the runner recycles the RNG value for the worker's next
// repetition).
type Job[T any] func(rep int, rng *xrand.RNG) (T, error)

// Parallelism normalizes a worker-count knob: values <= 0 select
// runtime.GOMAXPROCS(0), everything else is returned unchanged.
func Parallelism(p int) int {
	if p <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return p
}

// Options bundles the runner's execution-policy knobs. The zero value selects
// GOMAXPROCS workers and an automatic chunk size; neither knob ever changes
// outputs — both are pure throughput controls.
type Options struct {
	// Parallelism is the worker goroutine count (<= 0 means GOMAXPROCS).
	Parallelism int
	// ChunkSize is the number of consecutive repetitions a worker claims per
	// lock acquisition and reduces per condvar turn (<= 0 selects an automatic
	// size, see ChunkFor). Larger chunks amortize synchronization; smaller
	// chunks balance load. ChunkSize 1 reproduces the historical per-repetition
	// claiming exactly.
	ChunkSize int
}

// maxAutoChunk caps the automatic chunk size: past this point the remaining
// synchronization cost is negligible and bigger chunks only hurt load balance
// and (on the reduce path) per-worker value buffering.
const maxAutoChunk = 64

// ChunkFor returns the effective chunk size for a run: chunkSize when
// positive, otherwise an automatic size that gives every worker several
// claims for load balance (reps / (2·workers), clamped to [1, 64]; serial
// runs always claim one repetition at a time). Callers that buffer one value
// slot per in-flight repetition (see Reducer) size their buffers with it.
func ChunkFor(chunkSize, reps, parallelism int) int {
	workers := Parallelism(parallelism)
	if workers > reps {
		workers = reps
	}
	return effectiveChunk(chunkSize, reps, workers)
}

func effectiveChunk(chunkSize, reps, workers int) int {
	if chunkSize > 0 {
		return chunkSize
	}
	if workers <= 1 {
		// The serial loops claim per repetition: the lock is uncontended and
		// per-rep claiming keeps cancellation at its historical granularity.
		return 1
	}
	c := reps / (2 * workers)
	if c < 1 {
		c = 1
	}
	if c > maxAutoChunk {
		c = maxAutoChunk
	}
	return c
}

// RepError reports the failure of a single repetition, identifying which one
// failed so that deterministic reruns can reproduce it.
type RepError struct {
	// Rep is the zero-based index of the failed repetition.
	Rep int
	// Err is the underlying failure.
	Err error
}

// Error implements the error interface.
func (e *RepError) Error() string { return fmt.Sprintf("runner: rep %d: %v", e.Rep, e.Err) }

// Unwrap returns the underlying repetition failure.
func (e *RepError) Unwrap() error { return e.Err }

// Streams derives reps private RNG streams from base by splitting serially in
// repetition order: stream i is base.Split(i+1). This matches the labeling
// convention of the historical serial loops, so parallel runs reproduce the
// exact bit patterns of serial runs. The base generator is advanced reps
// times and must not be used concurrently with this call.
func Streams(base *xrand.RNG, reps int) []*xrand.RNG {
	streams := make([]*xrand.RNG, reps)
	for i := range streams {
		streams[i] = base.Split(uint64(i) + 1)
	}
	return streams
}

// streamSource hands out (repetition, stream) pairs one at a time. Claims are
// serialized under the mutex in increasing repetition order, so the i-th
// Uint64 drawn from the base generator always seeds stream i — the exact
// derivation Streams performs eagerly. It stops handing out repetitions once
// aborted or once the run's context is cancelled; because claims are
// sequential, the set of claimed repetitions is always a prefix [0, k).
type streamSource struct {
	ctx  context.Context
	mu   sync.Mutex
	base *xrand.RNG
	// first is the global index of the source's first repetition: the source
	// hands out [first, first+reps) with stream labels derived from the global
	// index, so a range executor (MapReduceRangeOpts) produces exactly the
	// streams a full run would give those repetitions. Whole runs use first 0.
	first   int
	next    int
	reps    int
	aborted bool
}

// claim derives the next repetition's stream into dst and returns its index,
// or ok=false when the repetitions are exhausted, the run was aborted, or the
// context was cancelled. Cancellation is only observed here — between
// repetitions — so a claimed repetition always runs to completion and (on the
// reduce path) always takes its reduction turn; see MapReduce.
func (s *streamSource) claim(dst *xrand.RNG) (rep int, ok bool) {
	s.mu.Lock()
	if s.aborted || s.next >= s.reps {
		s.mu.Unlock()
		return 0, false
	}
	if s.ctx.Err() != nil {
		s.aborted = true
		s.mu.Unlock()
		return 0, false
	}
	rep = s.first + s.next
	s.next++
	s.base.SplitInto(uint64(rep)+1, dst)
	s.mu.Unlock()
	return rep, true
}

// claimChunk derives up to len(dst) consecutive repetition streams into dst
// and returns the first claimed index plus the claimed count (count == 0 when
// the repetitions are exhausted, the run was aborted, or the context was
// cancelled). The streams are derived in repetition order under the same lock
// as claim, so chunked and per-repetition claiming produce the identical
// stream-to-repetition mapping — a chunk is just several claims for one lock
// acquisition. Like claim, cancellation is observed only here, so a claimed
// chunk always runs to completion and (on the reduce path) always takes its
// full reduction turn.
func (s *streamSource) claimChunk(dst []xrand.RNG) (start, count int) {
	s.mu.Lock()
	if s.aborted || s.next >= s.reps {
		s.mu.Unlock()
		return 0, 0
	}
	if s.ctx.Err() != nil {
		s.aborted = true
		s.mu.Unlock()
		return 0, 0
	}
	start = s.first + s.next
	count = len(dst)
	if rem := s.reps - s.next; count > rem {
		count = rem
	}
	for j := 0; j < count; j++ {
		s.base.SplitInto(uint64(start+j)+1, &dst[j])
	}
	s.next += count
	s.mu.Unlock()
	return start, count
}

// incomplete reports whether any repetition was never handed out. Read it
// before drain, which advances next to reps.
func (s *streamSource) incomplete() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.next < s.reps
}

// cancelErr is the shared cancellation epilogue: it returns ctx.Err() when
// the run was cut short — draining the unclaimed repetitions first so the
// base generator still ends fully advanced — and nil when every repetition
// had been claimed before the cancellation landed (the run finished). The
// incomplete check must precede drain, which advances next to reps.
func (s *streamSource) cancelErr(ctx context.Context) error {
	if err := ctx.Err(); err != nil && s.incomplete() {
		s.drain()
		return err
	}
	return nil
}

// abort stops further claims; in-flight repetitions still complete.
func (s *streamSource) abort() {
	s.mu.Lock()
	s.aborted = true
	s.mu.Unlock()
}

// drain advances the base generator past every unclaimed repetition, so the
// base ends in the same state regardless of how the run terminated.
func (s *streamSource) drain() {
	s.mu.Lock()
	for ; s.next < s.reps; s.next++ {
		s.base.Uint64()
	}
	s.mu.Unlock()
}

// LocalJob is one Monte-Carlo repetition that additionally receives a
// worker-local state L (a scratch buffer pool, a reusable simulator state,
// ...). The state is shared by every repetition the same worker executes but
// never by two concurrent repetitions, so it may be mutated freely; it must
// not influence results — it is a recycling vehicle, not an input.
type LocalJob[T, L any] func(rep int, rng *xrand.RNG, local L) (T, error)

// Map runs fn for every repetition in [0, reps) across a pool of parallelism
// workers (<= 0 selects GOMAXPROCS) and returns the results in repetition
// order.
//
// RNG streams are derived from base exactly as Streams derives them, so the
// output is bit-identical regardless of parallelism. If one or more
// repetitions fail, Map completes the remaining repetitions and returns the
// error of the lowest-indexed failure wrapped in a *RepError — again
// independent of scheduling order.
//
// Cancelling ctx stops the run at the next repetition boundary: in-flight
// repetitions complete, no new ones start, and Map returns ctx.Err() (unless
// every repetition had already been claimed, in which case the run finishes
// normally). Context checks happen only between repetitions, so a run whose
// context is never cancelled pays one atomic load per claim and nothing else.
func Map[T any](ctx context.Context, parallelism, reps int, base *xrand.RNG, fn Job[T]) ([]T, error) {
	return MapLocal(ctx, parallelism, reps, base, func() struct{} { return struct{}{} },
		func(rep int, rng *xrand.RNG, _ struct{}) (T, error) { return fn(rep, rng) })
}

// MapLocal is Map with per-worker local state: newLocal is invoked once per
// worker goroutine (once total in the serial case) and the returned state is
// threaded through every repetition that worker executes. This is how the
// engine gives each worker one reusable sim.Scratch for all of its
// repetitions — the determinism contract is unchanged because the local
// state carries no randomness and no results.
func MapLocal[T, L any](ctx context.Context, parallelism, reps int, base *xrand.RNG, newLocal func() L, fn LocalJob[T, L]) ([]T, error) {
	return MapLocalOpts(ctx, Options{Parallelism: parallelism}, reps, base, newLocal, fn)
}

// MapLocalOpts is MapLocal with full Options control, including the claim
// chunk size. Chunking changes only how often workers touch the claim lock;
// outputs and error selection are identical for every chunk size.
func MapLocalOpts[T, L any](ctx context.Context, opts Options, reps int, base *xrand.RNG, newLocal func() L, fn LocalJob[T, L]) ([]T, error) {
	if reps <= 0 {
		return nil, nil
	}
	out := make([]T, reps)
	src := &streamSource{ctx: ctx, base: base, reps: reps}

	workers := Parallelism(opts.Parallelism)
	if workers > reps {
		workers = reps
	}
	if workers == 1 {
		local := newLocal()
		var rng xrand.RNG
		for {
			i, ok := src.claim(&rng)
			if !ok {
				break
			}
			v, err := fn(i, &rng, local)
			if err != nil {
				src.drain()
				return nil, &RepError{Rep: i, Err: err}
			}
			out[i] = v
		}
		if err := src.cancelErr(ctx); err != nil {
			return nil, err
		}
		return out, nil
	}

	chunk := effectiveChunk(opts.ChunkSize, reps, workers)
	errs := make([]error, reps)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			local := newLocal()
			rngs := make([]xrand.RNG, chunk)
			for {
				start, count := src.claimChunk(rngs)
				if count == 0 {
					return
				}
				for j := 0; j < count; j++ {
					i := start + j
					v, err := fn(i, &rngs[j], local)
					if err != nil {
						errs[i] = err
						continue
					}
					out[i] = v
				}
			}
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			// A concurrent cancellation may have stopped the claims early;
			// drain so the base generator ends fully advanced regardless.
			src.drain()
			return nil, &RepError{Rep: i, Err: err}
		}
	}
	if err := src.cancelErr(ctx); err != nil {
		return nil, err
	}
	return out, nil
}

// Reducer consumes one repetition's value. MapReduce calls it in strict
// repetition order (rep 0, 1, 2, ...), exactly once per repetition, and never
// concurrently, so a reducer needs no locking and may fold values into plain
// accumulators. The value (and anything it points to) is only guaranteed
// valid for the duration of the call: workers recycle their result storage as
// soon as their chunk has been reduced. A job that hands out pointers to
// worker-local storage must therefore keep one distinct value slot per
// repetition of a chunk — ChunkFor reports how many that is — because a
// worker computes its whole chunk before any of it is reduced.
type Reducer[T any] func(rep int, v T) error

// MapReduce runs fn for every repetition like MapLocal but streams the
// results into reduce instead of materializing them: memory stays O(workers)
// regardless of reps. The per-repetition RNG streams are identical to
// MapLocal's, so a job produces bit-identical values under either entry
// point.
//
// Ordering: workers simulate concurrently, but each takes a turn — in
// repetition order — to hand its claimed chunk to reduce. Within a turn the
// chunk's values are reduced in repetition order, so the reducer still sees
// exactly the sequence rep 0, 1, 2, ... A worker claims its next chunk only
// after its previous chunk has been reduced, which is what makes recycled
// result storage safe and bounds in-flight values by workers × chunk size.
//
// Errors: the first failure in repetition order (from the job or the
// reducer) aborts the run — no later repetition is reduced, workers stop
// claiming new repetitions, and the failure is returned wrapped in a
// *RepError (reducer errors are returned unwrapped). Which error is returned
// is deterministic regardless of chunking: turns execute in repetition order,
// a worker stops computing its chunk at its first failure, and every
// repetition before the failure was reduced.
//
// Cancelling ctx stops the run at the next chunk boundary and returns
// ctx.Err() once every in-flight repetition has been reduced. Cancellation
// can never deadlock the turn-taking: it is observed only in claimChunk,
// before a repetition exists, so every claimed chunk runs to completion and
// takes its full reduction turn — the claimed set is a prefix [0, k), each
// claimed chunk advances the turn by exactly its claimed count, and the turn
// therefore reaches k and releases every waiting worker. A worker must not
// bail out between claimChunk and takeTurn for exactly this reason: an
// abandoned claimed chunk would strand every later chunk's worker in
// cond.Wait.
func MapReduce[T, L any](ctx context.Context, parallelism, reps int, base *xrand.RNG, newLocal func() L, fn LocalJob[T, L], reduce Reducer[T]) error {
	return MapReduceOpts(ctx, Options{Parallelism: parallelism}, reps, base, newLocal, fn, reduce)
}

// MapReduceOpts is MapReduce with full Options control, including the claim
// chunk size. Chunk size 1 reproduces per-repetition claiming and turn-taking
// exactly; larger chunks amortize both the claim lock and the condvar
// handoff without changing what the reducer observes.
func MapReduceOpts[T, L any](ctx context.Context, opts Options, reps int, base *xrand.RNG, newLocal func() L, fn LocalJob[T, L], reduce Reducer[T]) error {
	return mapReduceRange(ctx, opts, 0, reps, base, newLocal, fn, reduce)
}

// MapReduceRange executes the repetition range [start, start+count) of a
// larger deterministic sequence: fn and reduce receive global repetition
// indices, and every repetition gets exactly the RNG stream it would have
// received in a full MapReduce over the whole sequence — which is what lets a
// distributed run shard [0, reps) into ranges, execute them on independent
// processes from nothing but (seed, start, count), and merge the partial
// results into a bit-identical whole (see internal/cluster).
//
// base must be a fresh generator seeded with the run seed; the call advances
// it past the start earlier repetitions first (one Uint64 draw each, the
// exact prefix a full run would have consumed) and then claims the range, so
// base ends advanced start+count draws. Within the range the semantics are
// MapReduce's: strict rep-order reduction, deterministic lowest-rep errors,
// cancellation at chunk boundaries.
func MapReduceRange[T, L any](ctx context.Context, parallelism, start, count int, base *xrand.RNG, newLocal func() L, fn LocalJob[T, L], reduce Reducer[T]) error {
	return MapReduceRangeOpts(ctx, Options{Parallelism: parallelism}, start, count, base, newLocal, fn, reduce)
}

// MapReduceRangeOpts is MapReduceRange with full Options control.
func MapReduceRangeOpts[T, L any](ctx context.Context, opts Options, start, count int, base *xrand.RNG, newLocal func() L, fn LocalJob[T, L], reduce Reducer[T]) error {
	if start < 0 {
		return fmt.Errorf("runner: negative range start %d", start)
	}
	for i := 0; i < start; i++ {
		base.Uint64()
	}
	return mapReduceRange(ctx, opts, start, count, base, newLocal, fn, reduce)
}

// mapReduceRange is the shared MapReduce core: repetitions [first,
// first+count) with globally-labeled streams, base already positioned at the
// range's first draw.
func mapReduceRange[T, L any](ctx context.Context, opts Options, first, count int, base *xrand.RNG, newLocal func() L, fn LocalJob[T, L], reduce Reducer[T]) error {
	reps := count
	if reps <= 0 {
		return nil
	}
	src := &streamSource{ctx: ctx, base: base, first: first, reps: reps}

	workers := Parallelism(opts.Parallelism)
	if workers > reps {
		workers = reps
	}
	if workers == 1 {
		local := newLocal()
		var rng xrand.RNG
		for {
			i, ok := src.claim(&rng)
			if !ok {
				return src.cancelErr(ctx)
			}
			v, err := fn(i, &rng, local)
			if err != nil {
				src.drain()
				return &RepError{Rep: i, Err: err}
			}
			if err := reduce(i, v); err != nil {
				src.drain()
				return err
			}
		}
	}

	chunk := effectiveChunk(opts.ChunkSize, reps, workers)

	// turn serializes the reducer: a worker holding the chunk starting at
	// repetition i waits until every repetition < i has been reduced, reduces
	// its whole chunk, then advances the turn by the chunk's claimed count.
	var (
		mu       sync.Mutex
		cond     = sync.NewCond(&mu)
		turn     = first
		firstErr error
	)
	// takeTurn reduces one claimed chunk [start, start+count): vals[0..n) are
	// the values of the chunk's first n repetitions and jobErr, when non-nil,
	// is the failure of repetition start+n (the worker stops computing a chunk
	// at its first failure, so nothing after it exists). The turn advances by
	// the full claimed count even when the chunk failed or was skipped after
	// an abort — every claimed repetition must advance the turn exactly once
	// or later chunks would wait forever.
	takeTurn := func(start, count int, vals []T, n int, jobErr error) {
		mu.Lock()
		for turn != start {
			cond.Wait()
		}
		if firstErr == nil {
			for j := 0; j < n; j++ {
				if err := reduce(start+j, vals[j]); err != nil {
					firstErr = err
					break
				}
			}
			if firstErr == nil && jobErr != nil {
				firstErr = &RepError{Rep: start + n, Err: jobErr}
			}
			if firstErr != nil {
				src.abort()
			}
		}
		turn += count
		cond.Broadcast()
		mu.Unlock()
	}

	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			local := newLocal()
			rngs := make([]xrand.RNG, chunk)
			vals := make([]T, chunk)
			for {
				start, count := src.claimChunk(rngs)
				if count == 0 {
					return
				}
				n := 0
				var jobErr error
				for ; n < count; n++ {
					v, err := fn(start+n, &rngs[n], local)
					if err != nil {
						jobErr = err
						break
					}
					vals[n] = v
				}
				takeTurn(start, count, vals, n, jobErr)
			}
		}()
	}
	wg.Wait()
	if firstErr == nil {
		firstErr = src.cancelErr(ctx)
	}
	src.drain()
	return firstErr
}
