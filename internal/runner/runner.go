// Package runner executes independent Monte-Carlo repetitions across a pool
// of worker goroutines.
//
// Every repetition receives its own deterministic RNG stream, derived from a
// single base generator by splitting serially in repetition order before any
// worker starts (see Map). Because a repetition never touches the base
// generator — only its private stream — the results are bit-identical for any
// worker count and any scheduling order, and identical to what the historical
// serial loops produced. This is the determinism contract documented in
// DESIGN.md: parallelism is a pure throughput knob, never an output knob.
package runner

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"dynamicrumor/internal/xrand"
)

// Job is one Monte-Carlo repetition. It receives the repetition index and a
// private RNG stream derived from the experiment seed; it must not share
// mutable state with other repetitions.
type Job[T any] func(rep int, rng *xrand.RNG) (T, error)

// Parallelism normalizes a worker-count knob: values <= 0 select
// runtime.GOMAXPROCS(0), everything else is returned unchanged.
func Parallelism(p int) int {
	if p <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return p
}

// RepError reports the failure of a single repetition, identifying which one
// failed so that deterministic reruns can reproduce it.
type RepError struct {
	// Rep is the zero-based index of the failed repetition.
	Rep int
	// Err is the underlying failure.
	Err error
}

// Error implements the error interface.
func (e *RepError) Error() string { return fmt.Sprintf("runner: rep %d: %v", e.Rep, e.Err) }

// Unwrap returns the underlying repetition failure.
func (e *RepError) Unwrap() error { return e.Err }

// Streams derives reps private RNG streams from base by splitting serially in
// repetition order: stream i is base.Split(i+1). This matches the labeling
// convention of the historical serial loops, so parallel runs reproduce the
// exact bit patterns of serial runs. The base generator is advanced reps
// times and must not be used concurrently with this call.
func Streams(base *xrand.RNG, reps int) []*xrand.RNG {
	streams := make([]*xrand.RNG, reps)
	for i := range streams {
		streams[i] = base.Split(uint64(i) + 1)
	}
	return streams
}

// LocalJob is one Monte-Carlo repetition that additionally receives a
// worker-local state L (a scratch buffer pool, a reusable simulator state,
// ...). The state is shared by every repetition the same worker executes but
// never by two concurrent repetitions, so it may be mutated freely; it must
// not influence results — it is a recycling vehicle, not an input.
type LocalJob[T, L any] func(rep int, rng *xrand.RNG, local L) (T, error)

// Map runs fn for every repetition in [0, reps) across a pool of parallelism
// workers (<= 0 selects GOMAXPROCS) and returns the results in repetition
// order.
//
// RNG streams are pre-derived from base via Streams before any worker starts,
// so the output is bit-identical regardless of parallelism. If one or more
// repetitions fail, Map completes the remaining repetitions and returns the
// error of the lowest-indexed failure wrapped in a *RepError — again
// independent of scheduling order.
func Map[T any](parallelism, reps int, base *xrand.RNG, fn Job[T]) ([]T, error) {
	return MapLocal(parallelism, reps, base, func() struct{} { return struct{}{} },
		func(rep int, rng *xrand.RNG, _ struct{}) (T, error) { return fn(rep, rng) })
}

// MapLocal is Map with per-worker local state: newLocal is invoked once per
// worker goroutine (once total in the serial case) and the returned state is
// threaded through every repetition that worker executes. This is how the
// engine gives each worker one reusable sim.Scratch for all of its
// repetitions — the determinism contract is unchanged because the local
// state carries no randomness and no results.
func MapLocal[T, L any](parallelism, reps int, base *xrand.RNG, newLocal func() L, fn LocalJob[T, L]) ([]T, error) {
	if reps <= 0 {
		return nil, nil
	}
	streams := Streams(base, reps)
	out := make([]T, reps)

	workers := Parallelism(parallelism)
	if workers > reps {
		workers = reps
	}
	if workers == 1 {
		local := newLocal()
		for i := 0; i < reps; i++ {
			v, err := fn(i, streams[i], local)
			if err != nil {
				return nil, &RepError{Rep: i, Err: err}
			}
			out[i] = v
		}
		return out, nil
	}

	errs := make([]error, reps)
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			local := newLocal()
			for {
				i := int(next.Add(1)) - 1
				if i >= reps {
					return
				}
				v, err := fn(i, streams[i], local)
				if err != nil {
					errs[i] = err
					continue
				}
				out[i] = v
			}
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, &RepError{Rep: i, Err: err}
		}
	}
	return out, nil
}
