package runner

import (
	"context"

	"errors"
	"sync/atomic"
	"testing"

	"dynamicrumor/internal/xrand"
)

// drain consumes a deterministic amount of randomness from a stream and
// returns a digest of it, standing in for a simulation repetition.
func drain(rep int, rng *xrand.RNG) (uint64, error) {
	var h uint64
	for i := 0; i < 100+rep%7; i++ {
		h = h*1099511628211 + rng.Uint64()
	}
	return h, nil
}

func TestMapMatchesSerialLoop(t *testing.T) {
	const reps = 33
	// The historical serial pattern: split the base RNG inside the loop.
	base := xrand.New(42)
	want := make([]uint64, reps)
	for rep := 0; rep < reps; rep++ {
		v, err := drain(rep, base.Split(uint64(rep)+1))
		if err != nil {
			t.Fatal(err)
		}
		want[rep] = v
	}
	for _, p := range []int{0, 1, 2, 3, 8, 64} {
		got, err := Map(context.Background(), p, reps, xrand.New(42), drain)
		if err != nil {
			t.Fatalf("parallelism %d: %v", p, err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("parallelism %d: rep %d = %x, want %x (serial)", p, i, got[i], want[i])
			}
		}
	}
}

func TestMapZeroReps(t *testing.T) {
	out, err := Map(context.Background(), 4, 0, xrand.New(1), drain)
	if err != nil || out != nil {
		t.Fatalf("Map with 0 reps = (%v, %v), want (nil, nil)", out, err)
	}
}

func TestMapReturnsLowestIndexedError(t *testing.T) {
	sentinel := errors.New("boom")
	for _, p := range []int{1, 4} {
		_, err := Map(context.Background(), p, 16, xrand.New(9), func(rep int, _ *xrand.RNG) (int, error) {
			if rep%5 == 2 { // reps 2, 7, 12 fail
				return 0, sentinel
			}
			return rep, nil
		})
		var re *RepError
		if !errors.As(err, &re) {
			t.Fatalf("parallelism %d: error %v is not a *RepError", p, err)
		}
		if !errors.Is(err, sentinel) {
			t.Fatalf("parallelism %d: error %v does not unwrap to the sentinel", p, err)
		}
		if p == 4 && re.Rep != 2 {
			t.Fatalf("parallelism %d: reported rep %d, want lowest failed rep 2", p, re.Rep)
		}
		if p == 1 && re.Rep != 2 {
			t.Fatalf("serial: reported rep %d, want 2", re.Rep)
		}
	}
}

func TestMapRunsEveryRepExactlyOnce(t *testing.T) {
	const reps = 200
	var calls [reps]atomic.Int32
	out, err := Map(context.Background(), 8, reps, xrand.New(3), func(rep int, _ *xrand.RNG) (int, error) {
		calls[rep].Add(1)
		return rep * rep, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range calls {
		if n := calls[i].Load(); n != 1 {
			t.Fatalf("rep %d executed %d times", i, n)
		}
		if out[i] != i*i {
			t.Fatalf("out[%d] = %d, results out of repetition order", i, out[i])
		}
	}
}

func TestParallelismNormalization(t *testing.T) {
	if Parallelism(0) < 1 || Parallelism(-3) < 1 {
		t.Fatal("non-positive parallelism must normalize to at least 1 worker")
	}
	if Parallelism(5) != 5 {
		t.Fatal("positive parallelism must pass through")
	}
}

func TestStreamsMatchSerialSplits(t *testing.T) {
	a := xrand.New(77)
	b := xrand.New(77)
	streams := Streams(a, 5)
	for i := 0; i < 5; i++ {
		want := b.Split(uint64(i) + 1).Uint64()
		if got := streams[i].Uint64(); got != want {
			t.Fatalf("stream %d first draw %x, want %x", i, got, want)
		}
	}
}
