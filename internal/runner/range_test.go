package runner

import (
	"context"
	"errors"
	"testing"

	"dynamicrumor/internal/xrand"
)

// rangeJob is a deterministic job whose value depends on both the repetition
// index and its private stream, so any stream-labeling or ordering mistake in
// the range executor shows up as a value mismatch.
func rangeJob(rep int, rng *xrand.RNG, _ struct{}) (uint64, error) {
	return uint64(rep)*0x9e3779b97f4a7c15 ^ rng.Uint64() ^ rng.Uint64(), nil
}

func noLocal() struct{} { return struct{}{} }

// collectFull runs a whole MapReduce and returns the reduced values in order.
func collectFull(t *testing.T, parallelism, chunk, reps int, seed uint64) []uint64 {
	t.Helper()
	out := make([]uint64, 0, reps)
	err := MapReduceOpts(context.Background(), Options{Parallelism: parallelism, ChunkSize: chunk},
		reps, xrand.New(seed), noLocal, rangeJob,
		func(rep int, v uint64) error {
			if rep != len(out) {
				t.Fatalf("reducer saw rep %d, want %d", rep, len(out))
			}
			out = append(out, v)
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestMapReduceRangeMatchesFullRun: executing any partition of [0, reps) as
// independent ranges — each from a fresh base generator, under different
// parallelism and chunking — reproduces the full run's values exactly, in
// global repetition order within each range.
func TestMapReduceRangeMatchesFullRun(t *testing.T) {
	const reps = 97
	const seed = 20200424
	want := collectFull(t, 1, 1, reps, seed)

	partitions := [][]int{
		{0, reps},
		{0, 1, 2, 40, 96, reps},
		{0, 13, 13, 50, reps}, // includes an empty range
	}
	for _, cuts := range partitions {
		for _, parallelism := range []int{1, 3, 8} {
			for _, chunk := range []int{0, 1, 5} {
				got := make([]uint64, 0, reps)
				for i := 0; i+1 < len(cuts); i++ {
					start, count := cuts[i], cuts[i+1]-cuts[i]
					if count == 0 {
						continue
					}
					base := xrand.New(seed)
					err := MapReduceRangeOpts(context.Background(),
						Options{Parallelism: parallelism, ChunkSize: chunk},
						start, count, base, noLocal, rangeJob,
						func(rep int, v uint64) error {
							if rep != len(got) {
								t.Fatalf("range [%d,%d): reducer saw rep %d, want %d", start, start+count, rep, len(got))
							}
							got = append(got, v)
							return nil
						})
					if err != nil {
						t.Fatalf("range [%d,%d): %v", start, start+count, err)
					}
					// The base generator ends advanced start+count draws: its
					// next draw must match a reference advanced the same way.
					ref := xrand.New(seed)
					for j := 0; j < start+count; j++ {
						ref.Uint64()
					}
					if base.Uint64() != ref.Uint64() {
						t.Fatalf("range [%d,%d): base generator not advanced exactly start+count draws", start, start+count)
					}
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("partition %v parallelism %d chunk %d: rep %d = %#x, want %#x",
							cuts, parallelism, chunk, i, got[i], want[i])
					}
				}
			}
		}
	}
}

// TestMapReduceRangeErrors: negative starts are rejected; a failing
// repetition reports its global index.
func TestMapReduceRangeErrors(t *testing.T) {
	err := MapReduceRange(context.Background(), 2, -1, 5, xrand.New(1), noLocal, rangeJob,
		func(int, uint64) error { return nil })
	if err == nil {
		t.Fatal("negative start accepted")
	}

	boom := errors.New("boom")
	err = MapReduceRange(context.Background(), 2, 10, 5, xrand.New(1), noLocal,
		func(rep int, rng *xrand.RNG, _ struct{}) (uint64, error) {
			if rep == 12 {
				return 0, boom
			}
			return uint64(rep), nil
		},
		func(int, uint64) error { return nil })
	var re *RepError
	if !errors.As(err, &re) || re.Rep != 12 {
		t.Fatalf("err = %v, want RepError at global rep 12", err)
	}
}
