package runner

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"dynamicrumor/internal/xrand"
)

// TestChunkFor pins the chunk-size policy: an explicit size always wins,
// serial runs claim per repetition, and the automatic size keeps every worker
// several claims while staying within [1, maxAutoChunk].
func TestChunkFor(t *testing.T) {
	cases := []struct {
		chunk, reps, par, want int
	}{
		{chunk: 5, reps: 100, par: 8, want: 5},     // explicit wins
		{chunk: 5, reps: 100, par: 1, want: 5},     // explicit wins even serially
		{chunk: 0, reps: 100, par: 1, want: 1},     // serial → per-rep
		{chunk: 0, reps: 96, par: 8, want: 6},      // reps/(2·workers)
		{chunk: 0, reps: 10, par: 8, want: 1},      // floor at 1
		{chunk: 0, reps: 100000, par: 4, want: 64}, // ceiling at maxAutoChunk
		{chunk: 0, reps: 4, par: 8, want: 1},       // workers clamped to reps → serialish
	}
	for _, c := range cases {
		if got := ChunkFor(c.chunk, c.reps, c.par); got != c.want {
			t.Errorf("ChunkFor(%d, %d, %d) = %d, want %d", c.chunk, c.reps, c.par, got, c.want)
		}
	}
	if got := ChunkFor(0, 1000, 2); got < 1 || got > maxAutoChunk {
		t.Errorf("automatic chunk %d outside [1, %d]", got, maxAutoChunk)
	}
}

// chunkProbeJob consumes a rep-dependent number of draws so any
// stream-to-repetition mixup under chunked claiming changes the output.
func chunkProbeJob(rep int, rng *xrand.RNG, _ struct{}) (float64, error) {
	sum := 0.0
	for i := 0; i <= rep%5; i++ {
		sum += rng.Float64()
	}
	return sum + float64(rep)*1e-9, nil
}

// TestChunkSizesByteIdentical is the chunk-equivalence regression test:
// chunk size 1 reproduces the historical per-repetition claiming, and every
// other chunk size produces byte-identical outputs, across parallelism
// 1/3/8 and two seeds, on both the map and the reduce path.
func TestChunkSizesByteIdentical(t *testing.T) {
	const reps = 97 // intentionally not a multiple of any chunk size below
	newLocal := func() struct{} { return struct{}{} }
	for _, seed := range []uint64{7, 20200424} {
		// Reference: the serial per-repetition path (parallelism 1, chunk 1)
		// is exactly what the pre-chunking runner produced.
		want, err := MapLocalOpts(context.Background(), Options{Parallelism: 1, ChunkSize: 1},
			reps, xrand.New(seed), newLocal, chunkProbeJob)
		if err != nil {
			t.Fatal(err)
		}
		for _, par := range []int{1, 3, 8} {
			for _, chunk := range []int{0, 1, 2, 7, 64, reps + 10} {
				opts := Options{Parallelism: par, ChunkSize: chunk}
				label := fmt.Sprintf("seed=%d par=%d chunk=%d", seed, par, chunk)

				got, err := MapLocalOpts(context.Background(), opts, reps, xrand.New(seed), newLocal, chunkProbeJob)
				if err != nil {
					t.Fatalf("%s: MapLocalOpts: %v", label, err)
				}
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("%s: MapLocalOpts rep %d = %v, want %v", label, i, got[i], want[i])
					}
				}

				reduced := make([]float64, 0, reps)
				err = MapReduceOpts(context.Background(), opts, reps, xrand.New(seed), newLocal, chunkProbeJob,
					func(rep int, v float64) error {
						if rep != len(reduced) {
							return fmt.Errorf("reduce called with rep %d, want %d", rep, len(reduced))
						}
						reduced = append(reduced, v)
						return nil
					})
				if err != nil {
					t.Fatalf("%s: MapReduceOpts: %v", label, err)
				}
				if len(reduced) != reps {
					t.Fatalf("%s: reduced %d reps, want %d", label, len(reduced), reps)
				}
				for i := range reduced {
					if reduced[i] != want[i] {
						t.Fatalf("%s: MapReduceOpts rep %d = %v, want %v", label, i, reduced[i], want[i])
					}
				}
			}
		}
	}
}

// TestChunkedBaseAdvance pins that chunked claiming leaves the base generator
// in the identical fully-advanced state as per-repetition claiming.
func TestChunkedBaseAdvance(t *testing.T) {
	a, b := xrand.New(11), xrand.New(11)
	newLocal := func() struct{} { return struct{}{} }
	job := func(rep int, _ *xrand.RNG, _ struct{}) (int, error) { return rep, nil }
	if _, err := MapLocalOpts(context.Background(), Options{Parallelism: 1, ChunkSize: 1}, 33, a, newLocal, job); err != nil {
		t.Fatal(err)
	}
	if err := MapReduceOpts(context.Background(), Options{Parallelism: 4, ChunkSize: 8}, 33, b, newLocal, job,
		func(int, int) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if a.Uint64() != b.Uint64() {
		t.Fatal("chunked and per-rep claiming advanced the base generator differently")
	}
}

// TestMapReduceCancelMidChunk cancels the context from the reducer while
// workers hold large multi-repetition chunks. The contract is the chunked
// extension of the claimed-repetitions-always-reduce rule: a claimed chunk
// runs to completion and takes its full turn, so the reduced set stays a
// strict-order prefix, the turn counter reaches the claimed frontier, and no
// worker is stranded in cond.Wait.
func TestMapReduceCancelMidChunk(t *testing.T) {
	const reps = 10000
	for _, chunk := range []int{8, 64} {
		ctx, cancel := context.WithCancel(context.Background())
		var reduced []int
		err := waitDone(t, 30*time.Second, func() error {
			return MapReduceOpts(ctx, Options{Parallelism: 8, ChunkSize: chunk}, reps, xrand.New(1),
				func() struct{} { return struct{}{} },
				func(rep int, rng *xrand.RNG, _ struct{}) (float64, error) {
					return rng.Float64(), nil
				},
				func(rep int, v float64) error {
					reduced = append(reduced, rep)
					if rep == 100 {
						cancel()
					}
					return nil
				})
		})
		cancel()
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("chunk=%d: got %v, want context.Canceled", chunk, err)
		}
		if len(reduced) == reps {
			t.Fatalf("chunk=%d: cancellation mid-chunk still reduced all %d repetitions", chunk, reps)
		}
		if len(reduced) < 101 {
			t.Fatalf("chunk=%d: only %d repetitions reduced, want at least the 101 before the cancel", chunk, len(reduced))
		}
		for i, rep := range reduced {
			if rep != i {
				t.Fatalf("chunk=%d: reduction order broken at position %d: got rep %d", chunk, i, rep)
			}
		}
	}
}

// TestMapReduceChunkedCancelDrainsBase: a cancelled chunked run still
// advances the base generator exactly reps draws.
func TestMapReduceChunkedCancelDrainsBase(t *testing.T) {
	const reps = 500
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	base := xrand.New(7)
	err := MapReduceOpts(ctx, Options{Parallelism: 4, ChunkSize: 16}, reps, base,
		func() struct{} { return struct{}{} },
		func(rep int, rng *xrand.RNG, _ struct{}) (int, error) { return rep, nil },
		func(rep int, v int) error {
			if rep == 40 {
				cancel()
			}
			return nil
		})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	ref := xrand.New(7)
	for i := 0; i < reps; i++ {
		ref.Uint64()
	}
	if got, want := base.Uint64(), ref.Uint64(); got != want {
		t.Fatalf("base generator not drained after chunked cancel: next draw %d, want %d", got, want)
	}
}

// TestMapReduceErrorInChunk places failures in the interior of chunks and
// checks the deterministic error contract survives chunking: the lowest
// failing repetition is reported, every earlier repetition was reduced, and
// no later repetition is — for several chunk sizes and worker counts.
func TestMapReduceErrorInChunk(t *testing.T) {
	boom := errors.New("boom")
	for _, par := range []int{1, 3, 8} {
		for _, chunk := range []int{1, 4, 16, 64} {
			label := fmt.Sprintf("par=%d chunk=%d", par, chunk)
			reduced := 0
			err := MapReduceOpts(context.Background(), Options{Parallelism: par, ChunkSize: chunk},
				200, xrand.New(3), func() struct{} { return struct{}{} },
				func(rep int, _ *xrand.RNG, _ struct{}) (int, error) {
					// 21 sits mid-chunk for every chunk size above; 35 and 150
					// are later failures that must lose deterministically.
					if rep == 21 || rep == 35 || rep == 150 {
						return 0, boom
					}
					return rep, nil
				},
				func(rep int, v int) error {
					if rep >= 21 {
						return fmt.Errorf("reduced rep %d after the failure point", rep)
					}
					reduced++
					return nil
				})
			var re *RepError
			if !errors.As(err, &re) || re.Rep != 21 || !errors.Is(err, boom) {
				t.Fatalf("%s: got error %v, want RepError for rep 21", label, err)
			}
			if reduced != 21 {
				t.Fatalf("%s: reduced %d reps before the failure, want 21", label, reduced)
			}
		}
	}
}

// TestMapLocalErrorInChunk mirrors the deterministic lowest-rep error
// contract on the map path under chunked claiming.
func TestMapLocalErrorInChunk(t *testing.T) {
	boom := errors.New("boom")
	for _, chunk := range []int{1, 8, 64} {
		_, err := MapLocalOpts(context.Background(), Options{Parallelism: 4, ChunkSize: chunk},
			100, xrand.New(9), func() struct{} { return struct{}{} },
			func(rep int, _ *xrand.RNG, _ struct{}) (int, error) {
				if rep == 30 || rep == 60 {
					return 0, boom
				}
				return rep, nil
			})
		var re *RepError
		if !errors.As(err, &re) || re.Rep != 30 || !errors.Is(err, boom) {
			t.Fatalf("chunk=%d: got error %v, want RepError for rep 30", chunk, err)
		}
	}
}

// TestMapReduceChunkedReducerError: a reducer failure inside a chunk aborts
// the run, is returned unwrapped, and stops workers from claiming far beyond
// the failure point.
func TestMapReduceChunkedReducerError(t *testing.T) {
	stop := errors.New("stop")
	err := MapReduceOpts(context.Background(), Options{Parallelism: 4, ChunkSize: 16},
		10000, xrand.New(4), func() struct{} { return struct{}{} },
		func(rep int, _ *xrand.RNG, _ struct{}) (int, error) { return rep, nil },
		func(rep int, v int) error {
			if rep == 10 {
				return stop
			}
			if rep > 10 {
				return fmt.Errorf("reduced rep %d after the reducer failed at rep 10", rep)
			}
			return nil
		})
	if !errors.Is(err, stop) {
		t.Fatalf("got %v, want the reducer error", err)
	}
}
