package runner

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"dynamicrumor/internal/xrand"
)

// waitDone fails the test if fn does not return within the deadline — the
// regression guard against cancellation deadlocking the condvar turn-taking.
func waitDone(t *testing.T, deadline time.Duration, fn func() error) error {
	t.Helper()
	done := make(chan error, 1)
	go func() { done <- fn() }()
	select {
	case err := <-done:
		return err
	case <-time.After(deadline):
		t.Fatalf("run did not return within %v (cancellation deadlock?)", deadline)
		return nil
	}
}

// TestMapReduceCancelMidBatch cancels the context from inside the reducer,
// mid-batch, with many workers in flight. The historical hazard: a worker
// that notices cancellation between claiming a repetition and taking its
// reduction turn would strand every later repetition's worker in cond.Wait
// forever. The contract is that claimed repetitions always complete and
// reduce, so the reduced set stays a strict-order prefix and the call
// returns context.Canceled promptly.
func TestMapReduceCancelMidBatch(t *testing.T) {
	const reps = 10000
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var reduced []int
	err := waitDone(t, 30*time.Second, func() error {
		return MapReduce(ctx, 8, reps, xrand.New(1),
			func() struct{} { return struct{}{} },
			func(rep int, rng *xrand.RNG, _ struct{}) (float64, error) {
				return rng.Float64(), nil
			},
			func(rep int, v float64) error {
				reduced = append(reduced, rep)
				if rep == 100 {
					cancel()
				}
				return nil
			})
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("MapReduce returned %v, want context.Canceled", err)
	}
	if len(reduced) == reps {
		t.Fatalf("cancellation mid-batch still reduced all %d repetitions", reps)
	}
	if len(reduced) < 101 {
		t.Fatalf("only %d repetitions reduced, want at least the 101 before the cancel", len(reduced))
	}
	for i, rep := range reduced {
		if rep != i {
			t.Fatalf("reduction order broken at position %d: got rep %d", i, rep)
		}
	}
}

// TestMapReduceCancelExternal cancels from outside the run while workers are
// slow, for both the serial and the parallel paths.
func TestMapReduceCancelExternal(t *testing.T) {
	for _, par := range []int{1, 6} {
		ctx, cancel := context.WithCancel(context.Background())
		var started atomic.Int64
		errc := make(chan error, 1)
		go func() {
			errc <- MapReduce(ctx, par, 100000, xrand.New(2),
				func() struct{} { return struct{}{} },
				func(rep int, rng *xrand.RNG, _ struct{}) (int, error) {
					started.Add(1)
					time.Sleep(200 * time.Microsecond)
					return rep, nil
				},
				func(rep int, v int) error { return nil })
		}()
		for started.Load() < 10 {
			time.Sleep(time.Millisecond)
		}
		cancel()
		select {
		case err := <-errc:
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("par=%d: got %v, want context.Canceled", par, err)
			}
		case <-time.After(30 * time.Second):
			t.Fatalf("par=%d: MapReduce did not return after cancel", par)
		}
		if n := started.Load(); n == 100000 {
			t.Fatalf("par=%d: cancellation did not stop the batch early", par)
		}
	}
}

// TestMapCancel covers the MapLocal paths: a job cancels its own run, and the
// call reports context.Canceled instead of partial results.
func TestMapCancel(t *testing.T) {
	for _, par := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		out, err := Map(ctx, par, 5000, xrand.New(3), func(rep int, rng *xrand.RNG) (int, error) {
			if rep == 50 {
				cancel()
			}
			return rep, nil
		})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("par=%d: got %v, want context.Canceled", par, err)
		}
		if out != nil {
			t.Fatalf("par=%d: cancelled Map returned results", par)
		}
	}
}

// TestMapPreCancelled: a context cancelled before the run claims nothing and
// returns the context error.
func TestMapPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran := 0
	_, err := Map(ctx, 4, 16, xrand.New(4), func(rep int, rng *xrand.RNG) (int, error) {
		ran++
		return rep, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	if ran != 0 {
		t.Fatalf("pre-cancelled run executed %d repetitions", ran)
	}
}

// TestCancelDrainsBase: even a cancelled run advances the base generator
// exactly reps draws, so callers threading one generator through a sequence
// of batches stay deterministic whether or not a batch was cancelled — and
// the same holds when a repetition error and a cancellation race, where the
// error return path must still drain the claims the cancellation stopped.
func TestCancelDrainsBase(t *testing.T) {
	const reps = 200
	jobs := map[string]Job[int]{
		"cancel only": func(rep int, rng *xrand.RNG) (int, error) {
			return rep, nil
		},
		"error then cancel": func(rep int, rng *xrand.RNG) (int, error) {
			if rep == 10 {
				return 0, errors.New("boom")
			}
			return rep, nil
		},
	}
	for name, fn := range jobs {
		t.Run(name, func(t *testing.T) {
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			base := xrand.New(7)
			_, err := Map(ctx, 4, reps, base, func(rep int, rng *xrand.RNG) (int, error) {
				if rep == 20 {
					cancel()
				}
				return fn(rep, rng)
			})
			if err == nil {
				t.Fatal("run reported no error")
			}
			ref := xrand.New(7)
			for i := 0; i < reps; i++ {
				ref.Uint64()
			}
			if got, want := base.Uint64(), ref.Uint64(); got != want {
				t.Fatalf("base generator not drained to the post-batch state: next draw %d, want %d", got, want)
			}
		})
	}
}

// TestRepErrorBeatsCancel: when a repetition fails and the run is also
// cancelled, the deterministic lowest-rep error contract wins for errors that
// happened before cancellation stopped the claims.
func TestRepErrorBeatsCancel(t *testing.T) {
	boom := errors.New("boom")
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	err := MapReduce(ctx, 4, 1000, xrand.New(5),
		func() struct{} { return struct{}{} },
		func(rep int, rng *xrand.RNG, _ struct{}) (int, error) {
			if rep == 10 {
				return 0, boom
			}
			return rep, nil
		},
		func(rep int, v int) error {
			if rep == 5 {
				cancel()
			}
			return nil
		})
	var re *RepError
	if !errors.As(err, &re) || re.Rep != 10 {
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("got %v, want rep-10 RepError or context.Canceled", err)
		}
	}
}
