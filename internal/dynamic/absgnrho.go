package dynamic

import (
	"fmt"
	"math"

	"dynamicrumor/internal/gen"
	"dynamicrumor/internal/graph"
	"dynamicrumor/internal/xrand"
)

// AbsGNRho is the absolutely ρ-diligent dynamic network of Theorem 1.5 and
// Section 5.1.
//
// At every step the graph consists of a near-4-regular graph G(A_t, 4, Δ) on
// the informed side (one special vertex of degree Δ) and a Δ-regular graph
// G(B_t, Δ) on the uninformed side, joined by a single edge from the special
// vertex to an arbitrary vertex of B_t (the "boundary" vertex). Δ is an even
// number in {⌈1/ρ⌉, ⌈1/ρ⌉+1}. After each step the newly informed vertices
// move from B to A and the graph is rebuilt while |B| stays above n/6.
type AbsGNRho struct {
	n     int
	delta int
	rng   *xrand.RNG

	inB      []bool
	boundary int // the B-side endpoint of the bridge in the current graph
	special  int // the A-side degree-Δ endpoint of the bridge
	prevStep int

	// Rebuild scratch, recycled across steps: the vertex lists of the two
	// sides, the near-regular rewiring plan, the circulant offsets for the
	// B side, and the shared builder/double-buffer machinery (the graph of
	// step t stays valid until the rebuild for step t+2).
	rb       rebuilder
	sideA    []int
	sideB    []int
	removed1 []bool
	extraAdj []bool
	offsets  []int
	current  *graph.Graph
}

var _ Reusable = (*AbsGNRho)(nil)

// NewAbsGNRho builds the Theorem 1.5 network on n vertices with target
// absolute diligence rho (10/n <= rho <= 1).
func NewAbsGNRho(n int, rho float64, rng *xrand.RNG) (*AbsGNRho, error) {
	if n < 36 {
		return nil, fmt.Errorf("dynamic: AbsGNRho needs n >= 36, got %d", n)
	}
	if rho < 10/float64(n) || rho > 1 {
		return nil, fmt.Errorf("dynamic: AbsGNRho needs rho in [10/n, 1], got %v", rho)
	}
	delta := int(math.Ceil(1 / rho))
	if delta%2 != 0 {
		delta++
	}
	if delta < 4 {
		delta = 4
	}
	if delta >= n/6-1 {
		return nil, fmt.Errorf("dynamic: AbsGNRho rho=%v gives Delta=%d too large for n=%d", rho, delta, n)
	}
	a := &AbsGNRho{n: n, delta: delta}
	a.inB = make([]bool, n)
	a.rb = newRebuilder(n)
	a.removed1 = make([]bool, n)
	a.extraAdj = make([]bool, n)
	// Δ is even here, so CirculantRegular's offsets are always 1..Δ/2.
	for o := 1; o <= delta/2; o++ {
		a.offsets = append(a.offsets, o)
	}
	if err := a.Reset(rng); err != nil {
		return nil, err
	}
	return a, nil
}

// Reset implements Reusable: the network returns to the initial half/half
// (A_0, B_0) partition and rebuilds from the new rng, recycling every scratch
// buffer. The construction is deterministic given the partition, so like the
// constructor Reset draws nothing from rng.
func (a *AbsGNRho) Reset(rng *xrand.RNG) error {
	a.rng = rng
	a.prevStep = -1
	for v := 0; v < a.n; v++ {
		a.inB[v] = v >= a.n/2
	}
	return a.rebuild()
}

// N implements Network.
func (a *AbsGNRho) N() int { return a.n }

// Delta returns the even degree Δ ∈ {⌈1/ρ⌉, ⌈1/ρ⌉+1} used by the construction.
func (a *AbsGNRho) Delta() int { return a.delta }

// StartVertex returns a vertex of the A side at which the rumor should start.
func (a *AbsGNRho) StartVertex() int { return 0 }

// AbsoluteDiligenceValue returns the exact absolute diligence of every step's
// graph, 1/(Δ+1) (the bridge edge joins degree Δ+1 vertices... see the paper:
// ρ̄(G^(t)) = 1/(Δ+1)).
func (a *AbsGNRho) AbsoluteDiligenceValue() float64 { return 1 / float64(a.delta+1) }

// LowerBoundSpreadTime returns the Ω(n/ρ) ~ n·Δ/20 lower bound of Theorem 1.5
// in the explicit form used by the proof (n0·Δ/4 with n0 = Θ(n)).
func (a *AbsGNRho) LowerBoundSpreadTime() float64 {
	return float64(a.n) * float64(a.delta) / 40
}

// GraphAt implements Network.
func (a *AbsGNRho) GraphAt(t int, informed []bool) *graph.Graph {
	if t <= 0 || informed == nil {
		return a.current
	}
	if t == a.prevStep {
		return a.current
	}
	a.prevStep = t
	// B_{t+1} = B_t \ I_t.
	newSize := 0
	changed := false
	for v := 0; v < a.n; v++ {
		if a.inB[v] && informed[v] {
			a.inB[v] = false
			changed = true
		}
		if a.inB[v] {
			newSize++
		}
	}
	if !changed || newSize < a.n/6 || newSize <= a.delta+1 {
		return a.current
	}
	if err := a.rebuild(); err != nil {
		return a.current
	}
	return a.current
}

// rebuild constructs G(A,4,Δ) ∪ G(B,Δ) plus the single bridge edge, emitting
// both regular graphs straight into the recycled builder under the side
// renumbering instead of materializing them separately.
func (a *AbsGNRho) rebuild() error {
	a.sideA, a.sideB = a.sideA[:0], a.sideB[:0]
	for v := 0; v < a.n; v++ {
		if a.inB[v] {
			a.sideB = append(a.sideB, v)
		} else {
			a.sideA = append(a.sideA, v)
		}
	}
	if len(a.sideA) < a.delta+2 || len(a.sideB) < a.delta+2 {
		return fmt.Errorf("dynamic: AbsGNRho sides too small (|A|=%d |B|=%d, Δ=%d)",
			len(a.sideA), len(a.sideB), a.delta)
	}
	b := a.rb.begin(a.n)
	// Near-regular graph on A: all degree 4 except one special vertex of
	// degree Δ. Keep the special vertex stable (first vertex of A) so the
	// bridge endpoint on the informed side is deterministic.
	if err := gen.AppendNearRegular(b, a.sideA, len(a.sideA), 4, a.delta, 0, a.removed1, a.extraAdj); err != nil {
		return err
	}
	// Δ-regular graph on B (Δ even, so the circulant is exactly Δ-regular
	// whenever |B| > Δ, which the guard above ensures).
	gen.AppendCirculant(b, a.sideB, len(a.sideB), a.offsets)
	a.special = a.sideA[0]
	a.boundary = a.sideB[0]
	b.AddEdge(a.special, a.boundary)
	a.current = a.rb.flip()
	return nil
}

// Boundary returns the current uninformed bridge endpoint; exposed for tests
// and the Theorem 1.5 experiment.
func (a *AbsGNRho) Boundary() int { return a.boundary }

// Special returns the current degree-Δ bridge endpoint on the informed side.
func (a *AbsGNRho) Special() int { return a.special }
