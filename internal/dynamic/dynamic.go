// Package dynamic implements dynamic evolving networks G = {G(t)}: a
// sequence of graphs over a fixed vertex set exposed at integer time steps
// t = 0, 1, 2, ..., possibly chosen adaptively as a function of the set of
// informed vertices (the adversary model used by the paper's lower-bound
// constructions in Sections 4–6).
package dynamic

import (
	"dynamicrumor/internal/graph"
	"dynamicrumor/internal/xrand"
)

// Network is a dynamic evolving network over n vertices.
//
// GraphAt returns the graph exposed during the time interval [t, t+1). The
// informed argument is the set of informed vertices at the beginning of step
// t (length N()); adaptive constructions may use it, oblivious ones ignore it.
//
// Simulators call GraphAt with consecutive integer values of t, starting at
// 0, exactly once per step; stateful implementations (random evolving
// networks) rely on this calling discipline.
//
// Aliasing contract: rebuilding implementations recycle graph storage (see
// rebuilder below), so the graph returned for step t is guaranteed valid
// only until the network rebuilds for step t+2 — two rebuilds retire its
// backing arrays. Consecutive rebuilds always return distinct pointers
// (pointer equality with the previous step's graph reliably means "graph
// unchanged"), and a graph consumed before the next GraphAt call is always
// safe, which is all the simulators and profilers do. Callers that want a
// longer-lived snapshot must copy the graph while it is current.
type Network interface {
	// N returns the number of vertices (constant over time).
	N() int
	// GraphAt returns the graph for step t given the informed set.
	GraphAt(t int, informed []bool) *graph.Graph
}

// Reusable is the optional extension a Network implements when one instance
// can be recycled across Monte-Carlo repetitions: Reset must return the
// network to its as-constructed state for a fresh repetition, drawing from
// rng exactly what the constructor would (draw for draw), while keeping every
// backing buffer. A batch worker that resets a warm instance therefore
// produces bit-identical repetitions to one that constructs a fresh instance
// per repetition — without the per-repetition allocations. See
// engine.RunBatchFrom, which detects this interface during batch compilation.
type Reusable interface {
	Network
	// Reset re-initializes the network for a new repetition using rng.
	Reset(rng *xrand.RNG) error
}

// Static wraps a single graph as a constant dynamic network.
type Static struct {
	g *graph.Graph
}

var _ Network = (*Static)(nil)

// NewStatic returns the dynamic network that exposes g at every step.
func NewStatic(g *graph.Graph) *Static { return &Static{g: g} }

// N implements Network.
func (s *Static) N() int { return s.g.N() }

// GraphAt implements Network.
func (s *Static) GraphAt(int, []bool) *graph.Graph { return s.g }

// Sequence exposes an explicit finite sequence of graphs; after the sequence
// is exhausted the last graph repeats forever.
type Sequence struct {
	graphs []*graph.Graph
}

var _ Network = (*Sequence)(nil)

// NewSequence returns a dynamic network exposing graphs[t] at step t (the
// last entry repeats once the sequence is exhausted). All graphs must share
// the same vertex count; it panics otherwise or if the sequence is empty.
func NewSequence(graphs []*graph.Graph) *Sequence {
	if len(graphs) == 0 {
		panic("dynamic: NewSequence with no graphs")
	}
	n := graphs[0].N()
	for _, g := range graphs[1:] {
		if g.N() != n {
			panic("dynamic: NewSequence with mismatched vertex counts")
		}
	}
	return &Sequence{graphs: append([]*graph.Graph(nil), graphs...)}
}

// N implements Network.
func (s *Sequence) N() int { return s.graphs[0].N() }

// GraphAt implements Network.
func (s *Sequence) GraphAt(t int, _ []bool) *graph.Graph {
	if t < 0 {
		t = 0
	}
	if t >= len(s.graphs) {
		t = len(s.graphs) - 1
	}
	return s.graphs[t]
}

// Len returns the number of distinct steps in the sequence.
func (s *Sequence) Len() int { return len(s.graphs) }

// Alternating cycles through a fixed list of graphs with the given period:
// step t exposes graphs[t mod len(graphs)].
type Alternating struct {
	graphs []*graph.Graph
}

var _ Network = (*Alternating)(nil)

// NewAlternating returns a periodic dynamic network. All graphs must share
// the same vertex count; it panics otherwise or if the list is empty.
func NewAlternating(graphs []*graph.Graph) *Alternating {
	if len(graphs) == 0 {
		panic("dynamic: NewAlternating with no graphs")
	}
	n := graphs[0].N()
	for _, g := range graphs[1:] {
		if g.N() != n {
			panic("dynamic: NewAlternating with mismatched vertex counts")
		}
	}
	return &Alternating{graphs: append([]*graph.Graph(nil), graphs...)}
}

// N implements Network.
func (a *Alternating) N() int { return a.graphs[0].N() }

// GraphAt implements Network.
func (a *Alternating) GraphAt(t int, _ []bool) *graph.Graph {
	if t < 0 {
		t = 0
	}
	return a.graphs[t%len(a.graphs)]
}

// Func adapts a function to the Network interface; useful for ad-hoc adaptive
// adversaries in tests and examples.
type Func struct {
	NumVertices int
	At          func(t int, informed []bool) *graph.Graph
}

var _ Network = (*Func)(nil)

// N implements Network.
func (f *Func) N() int { return f.NumVertices }

// GraphAt implements Network.
func (f *Func) GraphAt(t int, informed []bool) *graph.Graph { return f.At(t, informed) }

// rebuilder is the shared rebuild machinery of the networks that expose a
// fresh graph at unit-time boundaries: one recycled builder plus two graph
// buffers it alternates between, so steady-state rebuilds allocate nothing.
//
// The aliasing contract every user of rebuilder inherits (and documents):
// the graph returned for step t stays valid until the rebuild for step t+2,
// and consecutive rebuilds always return distinct pointers, which is what
// the simulators' `next != g` reload check relies on.
type rebuilder struct {
	b      *graph.Builder
	graphs [2]*graph.Graph
	cur    int
}

func newRebuilder(n int) rebuilder {
	return rebuilder{b: graph.NewBuilder(n)}
}

// begin resets the builder for a graph on n vertices and returns it for
// edge emission.
func (r *rebuilder) begin(n int) *graph.Builder {
	r.b.Reset(n)
	return r.b
}

// flip builds the emitted edges into the retired buffer and returns the
// freshly exposed graph.
func (r *rebuilder) flip() *graph.Graph {
	r.cur ^= 1
	r.graphs[r.cur] = r.b.BuildInto(r.graphs[r.cur])
	return r.graphs[r.cur]
}

// CountInformed returns the number of true entries; a small helper shared by
// the adaptive constructions.
func CountInformed(informed []bool) int {
	count := 0
	for _, b := range informed {
		if b {
			count++
		}
	}
	return count
}
