package dynamic

import (
	"fmt"

	"dynamicrumor/internal/gen"
	"dynamicrumor/internal/graph"
	"dynamicrumor/internal/xrand"
)

// DichotomyG1 is the dynamic network G1 of Figure 1(a) and Theorem 1.7(i).
//
// Vertices are 0..n (n+1 in total). G^(0) is the n-vertex clique on 0..n-1
// with the pendant edge {0, n}; the rumor starts at the pendant vertex n.
// For every t >= 1, G^(t) consists of two equally-sized cliques joined by a
// single bridge edge: the "left" clique contains vertex 0 and the "right"
// clique contains vertex n.
//
// On this network the synchronous push-pull algorithm spreads in Θ(log n)
// rounds while the asynchronous algorithm needs Ω(n) time.
type DichotomyG1 struct {
	n     int // clique size; the network has n+1 vertices
	g0    *graph.Graph
	later *graph.Graph
}

var _ Network = (*DichotomyG1)(nil)

// NewDichotomyG1 builds G1 with an n-vertex initial clique (n >= 4).
func NewDichotomyG1(n int) (*DichotomyG1, error) {
	if n < 4 {
		return nil, fmt.Errorf("dynamic: DichotomyG1 needs n >= 4, got %d", n)
	}
	d := &DichotomyG1{n: n}
	d.g0 = gen.CliqueWithPendant(n)
	// G^(1): split the n+1 vertices into a left half containing 0 and a right
	// half containing n, each a clique, bridged by {0, n}.
	total := n + 1
	var left, right []int
	left = append(left, 0)
	right = append(right, n)
	for v := 1; v < n; v++ {
		if len(left) < total/2 {
			left = append(left, v)
		} else {
			right = append(right, v)
		}
	}
	d.later = gen.TwoCliquesBridged(total, left, right, 0, n)
	return d, nil
}

// N implements Network (n+1 vertices).
func (d *DichotomyG1) N() int { return d.n + 1 }

// StartVertex returns the pendant vertex n, where the rumor is injected.
func (d *DichotomyG1) StartVertex() int { return d.n }

// GraphAt implements Network.
func (d *DichotomyG1) GraphAt(t int, _ []bool) *graph.Graph {
	if t <= 0 {
		return d.g0
	}
	return d.later
}

// DichotomyG2 is the dynamic star G2 of Figure 1(b) and Theorem 1.7(ii)/(iii).
//
// Vertices are 0..n (n+1 in total). G^(0) is a star whose center is vertex 0;
// the rumor starts at the leaf vertex 1. At every step t >= 1 the center is
// replaced by an uninformed vertex; if every vertex is informed the center is
// a uniformly random vertex.
//
// On this network the synchronous push-pull algorithm needs exactly n rounds
// while the asynchronous algorithm finishes in Θ(log n) time.
//
// The star is written in compressed form directly (graph.StarInto) into two
// alternating graph buffers, so steady-state center moves allocate nothing
// and skip the builder's sort passes entirely; the graph exposed at step t
// stays valid until the rebuild for step t+2.
type DichotomyG2 struct {
	n       int // number of leaves; the network has n+1 vertices
	rng     *xrand.RNG
	center  int
	prev    int
	graphs  [2]*graph.Graph
	cur     int
	current *graph.Graph
}

var _ Reusable = (*DichotomyG2)(nil)

// NewDichotomyG2 builds the dynamic star on n+1 vertices (n >= 2).
func NewDichotomyG2(n int, rng *xrand.RNG) (*DichotomyG2, error) {
	if n < 2 {
		return nil, fmt.Errorf("dynamic: DichotomyG2 needs n >= 2, got %d", n)
	}
	d := &DichotomyG2{n: n}
	if err := d.Reset(rng); err != nil {
		return nil, err
	}
	return d, nil
}

// Reset implements Reusable: the star returns to center 0 with the new rng,
// recycling both graph buffers. The constructor draws nothing from rng, so
// neither does Reset.
func (d *DichotomyG2) Reset(rng *xrand.RNG) error {
	d.rng = rng
	d.center = 0
	d.prev = -1
	d.rebuildStar()
	return nil
}

// rebuildStar writes the star centered at d.center into the retired buffer.
func (d *DichotomyG2) rebuildStar() {
	d.cur ^= 1
	d.graphs[d.cur] = graph.StarInto(d.graphs[d.cur], d.n+1, d.center)
	d.current = d.graphs[d.cur]
}

// N implements Network (n+1 vertices).
func (d *DichotomyG2) N() int { return d.n + 1 }

// StartVertex returns leaf vertex 1, where the rumor is injected.
func (d *DichotomyG2) StartVertex() int { return 1 }

// Center returns the current center vertex (exposed for tests).
func (d *DichotomyG2) Center() int { return d.center }

// GraphAt implements Network: at each new step the center moves to an
// uninformed vertex (lowest-numbered for determinism given the informed set),
// or to a random vertex if everyone is informed.
func (d *DichotomyG2) GraphAt(t int, informed []bool) *graph.Graph {
	if t <= 0 || informed == nil {
		return d.current
	}
	if t == d.prev {
		return d.current
	}
	d.prev = t
	next := -1
	for v := 0; v <= d.n; v++ {
		if !informed[v] {
			next = v
			break
		}
	}
	if next == -1 {
		next = d.rng.Intn(d.n + 1)
	}
	if next != d.center {
		d.center = next
		d.rebuildStar()
	}
	return d.current
}

// AlternatingRegularComplete is the related-work example from Section 1.2:
// a dynamic network alternating between a sparse d-regular graph and the
// complete graph. On it the Giakkoupis–Sauerwald–Stauffer bound carries an
// M(G) = max_u Δ_u/δ_u = Θ(n) factor while the Theorem 1.1 bound does not.
type AlternatingRegularComplete struct {
	alt *Alternating
}

var _ Network = (*AlternatingRegularComplete)(nil)

// NewAlternatingRegularComplete builds the alternating network on n vertices
// with the sparse step being d-regular (d >= 2, n·d even).
func NewAlternatingRegularComplete(n, d int, rng *xrand.RNG) (*AlternatingRegularComplete, error) {
	if n < 4 || d < 2 {
		return nil, fmt.Errorf("dynamic: AlternatingRegularComplete needs n >= 4 and d >= 2")
	}
	sparse, err := gen.RandomRegular(n, d, rng)
	if err != nil || !sparse.IsConnected() {
		sparse, err = gen.CirculantRegular(n, d)
		if err != nil {
			return nil, err
		}
	}
	return &AlternatingRegularComplete{
		alt: NewAlternating([]*graph.Graph{sparse, gen.Clique(n)}),
	}, nil
}

// N implements Network.
func (a *AlternatingRegularComplete) N() int { return a.alt.N() }

// GraphAt implements Network.
func (a *AlternatingRegularComplete) GraphAt(t int, informed []bool) *graph.Graph {
	return a.alt.GraphAt(t, informed)
}

// MaxDegreeRatio returns M(G) = max_u Δ_u/δ_u over the two alternating
// graphs, the factor appearing in the Giakkoupis et al. bound.
func (a *AlternatingRegularComplete) MaxDegreeRatio() float64 {
	sparse := a.alt.GraphAt(0, nil)
	complete := a.alt.GraphAt(1, nil)
	worst := 1.0
	for v := 0; v < sparse.N(); v++ {
		min, max := sparse.Degree(v), sparse.Degree(v)
		if d := complete.Degree(v); d < min {
			min = d
		} else if d > max {
			max = d
		}
		if min > 0 {
			if r := float64(max) / float64(min); r > worst {
				worst = r
			}
		}
	}
	return worst
}
