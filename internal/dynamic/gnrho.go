package dynamic

import (
	"fmt"
	"math"

	"dynamicrumor/internal/gen"
	"dynamicrumor/internal/graph"
	"dynamicrumor/internal/xrand"
)

// GNRho is the ρ-diligent dynamic evolving network G(n, ρ) of Theorem 1.2.
//
// At every step it exposes H_{k,Δ}(A_t, B_t) with Δ = ⌈1/ρ⌉ and
// k = Θ(log n / log log n). Initially A_0 is an arbitrary quarter of the
// vertices and B_0 the remaining three quarters; the rumor must start inside
// A_0. After each step the adversary removes the newly informed vertices from
// the B side (B_{t+1} = B_t \ I_{t+1}, A_{t+1} = V \ B_{t+1}) and rebuilds the
// graph as long as |B_{t+1}| >= n/4 and B actually shrank; otherwise the
// previous graph is kept, exactly as in Section 4 of the paper.
//
// Rebuilds are allocation-free in steady state: the adversary keeps one
// reusable graph.Builder, side/permutation scratch buffers, and two graph
// buffers it alternates between (the graph exposed at step t stays valid
// until the rebuild for step t+2, which is all the simulators rely on).
type GNRho struct {
	n     int
	k     int
	delta int
	rng   *xrand.RNG

	inB      []bool // current B side
	sizeB    int
	prevStep int

	rb      rebuilder
	sideA   []int
	sideB   []int
	perm    []int
	current *graph.Graph
}

var _ Reusable = (*GNRho)(nil)

// NewGNRho builds the Theorem 1.2 network on n vertices with target diligence
// rho in [1/√n, 1]. k <= 0 selects the paper's default Θ(log n / log log n).
func NewGNRho(n int, rho float64, k int, rng *xrand.RNG) (*GNRho, error) {
	if n < 32 {
		return nil, fmt.Errorf("dynamic: GNRho needs n >= 32, got %d", n)
	}
	if rho <= 0 || rho > 1 {
		return nil, fmt.Errorf("dynamic: GNRho needs rho in (0, 1], got %v", rho)
	}
	delta := int(math.Ceil(1 / rho))
	if delta > n/8 {
		return nil, fmt.Errorf("dynamic: GNRho rho=%v gives Delta=%d > n/8=%d (need rho >= ~1/sqrt(n))",
			rho, delta, n/8)
	}
	if k <= 0 {
		k = gen.DefaultK(n)
	}
	if k*delta+1 > (3*n)/4 {
		return nil, fmt.Errorf("dynamic: GNRho k=%d Delta=%d does not fit in |B| = 3n/4", k, delta)
	}
	g := &GNRho{n: n, k: k, delta: delta}
	g.rb = newRebuilder(n)
	// Pre-size every rebuild buffer: the emission volume is known up front
	// (kΔ² string edges, two 4-regular expanders, 2Δ² attachment edges), so
	// even the very first construction skips the append doubling series.
	g.rb.b.Grow(k*delta*delta + 2*delta*delta + 2*n + 16)
	g.sideA = make([]int, 0, n)
	g.sideB = make([]int, 0, n)
	g.perm = make([]int, 0, n)
	g.inB = make([]bool, n)
	if err := g.Reset(rng); err != nil {
		return nil, err
	}
	return g, nil
}

// Reset implements Reusable: the adversary returns to the initial
// (A_0, B_0) partition and rebuilds H_{k,Δ} from the new rng, recycling the
// builder, side lists and graph buffers. The rebuild consumes rng exactly as
// the constructor's initial rebuild does, so a reset instance reproduces a
// freshly constructed one draw for draw.
func (g *GNRho) Reset(rng *xrand.RNG) error {
	g.rng = rng
	g.prevStep = -1
	for v := 0; v < g.n; v++ {
		g.inB[v] = v >= g.n/4
	}
	g.sizeB = g.n - g.n/4
	return g.rebuild()
}

// N implements Network.
func (g *GNRho) N() int { return g.n }

// Delta returns ⌈1/ρ⌉, the cluster size of the underlying H_{k,Δ}.
func (g *GNRho) Delta() int { return g.delta }

// K returns the number of bipartite layers.
func (g *GNRho) K() int { return g.k }

// StartVertex returns a vertex of A_0 at which the rumor should be injected
// (the paper requires the source to lie in A_0).
func (g *GNRho) StartVertex() int { return 0 }

// ConductanceScale returns the analytic Φ(G^(t)) = Θ(Δ²/(kΔ²+n)) scale of
// Observation 4.1; it is the same for every step.
func (g *GNRho) ConductanceScale() float64 {
	d := float64(g.delta)
	k := float64(g.k)
	return d * d / (k*d*d + float64(g.n))
}

// DiligenceScale returns the analytic ρ(G^(t)) = Θ(1/Δ) scale.
func (g *GNRho) DiligenceScale() float64 { return 1 / float64(g.delta) }

// LowerBoundSpreadTime returns the Ω(n/(ρ·k)) = Ω(nρ... ) lower bound of
// Theorem 1.2 in its explicit form n / (4·k·Δ).
func (g *GNRho) LowerBoundSpreadTime() float64 {
	return float64(g.n) / float64(4*g.k*g.delta)
}

// GraphAt implements Network. It rebuilds H_{k,Δ}(A_t, B_t) whenever the
// adversary rule fires.
func (g *GNRho) GraphAt(t int, informed []bool) *graph.Graph {
	if t <= 0 || informed == nil {
		return g.current
	}
	if t == g.prevStep {
		return g.current
	}
	g.prevStep = t
	// B_{t} = B_{t-1} \ I_t.
	newSize := 0
	changed := false
	for v := 0; v < g.n; v++ {
		if g.inB[v] && informed[v] {
			g.inB[v] = false
			changed = true
		}
		if g.inB[v] {
			newSize++
		}
	}
	if !changed || newSize < g.n/4 || newSize < g.k*g.delta+1 {
		// Keep the previous graph (|B| did not shrink, or shrank too far).
		g.sizeB = newSize
		return g.current
	}
	g.sizeB = newSize
	if err := g.rebuild(); err != nil {
		// Construction can only fail if B became too small, which the guard
		// above prevents; keep the previous graph as a safe fallback.
		return g.current
	}
	return g.current
}

// rebuild re-partitions the vertices into the two sides and emits a fresh
// H_{k,Δ}(A,B) into the recycled builder and the retired graph buffer.
func (g *GNRho) rebuild() error {
	g.sideA, g.sideB = g.sideA[:0], g.sideB[:0]
	for v := 0; v < g.n; v++ {
		if g.inB[v] {
			g.sideB = append(g.sideB, v)
		} else {
			g.sideA = append(g.sideA, v)
		}
	}
	b := g.rb.begin(g.n)
	err := gen.AppendHkdEdges(b, gen.HkdParams{
		K: g.k, Delta: g.delta, A: g.sideA, B: g.sideB,
	}, g.rng, &g.perm)
	if err != nil {
		return err
	}
	g.current = g.rb.flip()
	return nil
}
