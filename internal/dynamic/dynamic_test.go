package dynamic

import (
	"testing"

	"dynamicrumor/internal/gen"
	"dynamicrumor/internal/graph"
	"dynamicrumor/internal/xrand"
)

func TestStatic(t *testing.T) {
	g := gen.Cycle(6)
	net := NewStatic(g)
	if net.N() != 6 {
		t.Fatalf("N = %d", net.N())
	}
	for _, step := range []int{0, 1, 100} {
		if net.GraphAt(step, nil) != g {
			t.Fatal("Static returned a different graph")
		}
	}
}

func TestSequence(t *testing.T) {
	g0, g1 := gen.Cycle(5), gen.Clique(5)
	net := NewSequence([]*graph.Graph{g0, g1})
	if net.Len() != 2 || net.N() != 5 {
		t.Fatalf("Len=%d N=%d", net.Len(), net.N())
	}
	if net.GraphAt(0, nil) != g0 || net.GraphAt(1, nil) != g1 {
		t.Fatal("sequence order wrong")
	}
	if net.GraphAt(5, nil) != g1 {
		t.Fatal("sequence should repeat the last graph")
	}
	if net.GraphAt(-1, nil) != g0 {
		t.Fatal("negative step should clamp to the first graph")
	}
}

func TestSequencePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("empty sequence did not panic")
		}
	}()
	NewSequence(nil)
}

func TestSequenceMismatchedSizesPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched sizes did not panic")
		}
	}()
	NewSequence([]*graph.Graph{gen.Cycle(5), gen.Cycle(6)})
}

func TestAlternating(t *testing.T) {
	g0, g1 := gen.Cycle(5), gen.Clique(5)
	net := NewAlternating([]*graph.Graph{g0, g1})
	if net.GraphAt(0, nil) != g0 || net.GraphAt(1, nil) != g1 || net.GraphAt(2, nil) != g0 {
		t.Fatal("alternation wrong")
	}
	if net.GraphAt(-3, nil) != g0 {
		t.Fatal("negative step should clamp")
	}
}

func TestAlternatingPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("empty alternating did not panic")
		}
	}()
	NewAlternating(nil)
}

func TestFuncAdapter(t *testing.T) {
	g := gen.Path(3)
	f := &Func{NumVertices: 3, At: func(int, []bool) *graph.Graph { return g }}
	if f.N() != 3 || f.GraphAt(7, nil) != g {
		t.Fatal("Func adapter broken")
	}
}

func TestCountInformed(t *testing.T) {
	if got := CountInformed([]bool{true, false, true, true}); got != 3 {
		t.Fatalf("CountInformed = %d, want 3", got)
	}
	if got := CountInformed(nil); got != 0 {
		t.Fatalf("CountInformed(nil) = %d", got)
	}
}

func TestGNRhoConstruction(t *testing.T) {
	rng := xrand.New(61)
	net, err := NewGNRho(256, 0.25, 2, rng)
	if err != nil {
		t.Fatal(err)
	}
	if net.N() != 256 || net.Delta() != 4 || net.K() != 2 {
		t.Fatalf("unexpected parameters N=%d Delta=%d K=%d", net.N(), net.Delta(), net.K())
	}
	g0 := net.GraphAt(0, nil)
	if err := g0.Validate(); err != nil {
		t.Fatal(err)
	}
	if !g0.IsConnected() {
		t.Fatal("GNRho step-0 graph disconnected")
	}
	if net.StartVertex() < 0 || net.StartVertex() >= net.N() {
		t.Fatal("start vertex out of range")
	}
	if net.LowerBoundSpreadTime() <= 0 {
		t.Fatal("lower bound should be positive")
	}
	if net.ConductanceScale() <= 0 || net.DiligenceScale() != 0.25 {
		t.Fatalf("scales wrong: phi=%v rho=%v", net.ConductanceScale(), net.DiligenceScale())
	}
}

func TestGNRhoAdaptation(t *testing.T) {
	rng := xrand.New(62)
	net, err := NewGNRho(256, 0.25, 2, rng)
	if err != nil {
		t.Fatal(err)
	}
	informed := make([]bool, net.N())
	informed[net.StartVertex()] = true
	g0 := net.GraphAt(0, informed)

	// Inform a few vertices from the B side (the upper three quarters).
	for v := 200; v < 210; v++ {
		informed[v] = true
	}
	g1 := net.GraphAt(1, informed)
	if g1 == g0 {
		t.Fatal("GNRho did not rebuild after B shrank")
	}
	if err := g1.Validate(); err != nil {
		t.Fatal(err)
	}
	// Same step again returns the cached graph.
	if net.GraphAt(1, informed) != g1 {
		t.Fatal("repeated GraphAt for the same step should return the cached graph")
	}
	// No change in informed set: graph is kept.
	if net.GraphAt(2, informed) != g1 {
		t.Fatal("GNRho rebuilt even though B did not shrink")
	}
}

func TestGNRhoKeepsGraphWhenBTooSmall(t *testing.T) {
	rng := xrand.New(63)
	net, err := NewGNRho(128, 0.25, 1, rng)
	if err != nil {
		t.Fatal(err)
	}
	informed := make([]bool, net.N())
	for v := 0; v < net.N(); v++ {
		informed[v] = true // everything informed: B would drop below n/4
	}
	g0 := net.GraphAt(0, nil)
	if net.GraphAt(1, informed) != g0 {
		t.Fatal("GNRho should keep the previous graph once B is exhausted")
	}
}

func TestGNRhoParameterValidation(t *testing.T) {
	rng := xrand.New(64)
	if _, err := NewGNRho(16, 0.5, 1, rng); err == nil {
		t.Error("tiny n should fail")
	}
	if _, err := NewGNRho(256, 0, 1, rng); err == nil {
		t.Error("rho=0 should fail")
	}
	if _, err := NewGNRho(256, 1.5, 1, rng); err == nil {
		t.Error("rho>1 should fail")
	}
	if _, err := NewGNRho(256, 0.001, 1, rng); err == nil {
		t.Error("rho far below 1/sqrt(n) should fail")
	}
}

func TestAbsGNRhoConstruction(t *testing.T) {
	rng := xrand.New(65)
	net, err := NewAbsGNRho(120, 0.2, rng)
	if err != nil {
		t.Fatal(err)
	}
	if net.Delta() != 6 { // ceil(1/0.2)=5 -> rounded up to even 6
		t.Fatalf("Delta = %d, want 6", net.Delta())
	}
	g0 := net.GraphAt(0, nil)
	if err := g0.Validate(); err != nil {
		t.Fatal(err)
	}
	if !g0.IsConnected() {
		t.Fatal("AbsGNRho step-0 graph disconnected")
	}
	// Bridge endpoints have degree Δ+1.
	if g0.Degree(net.Special()) != net.Delta()+1 {
		t.Fatalf("special degree = %d, want %d", g0.Degree(net.Special()), net.Delta()+1)
	}
	if g0.Degree(net.Boundary()) != net.Delta()+1 {
		t.Fatalf("boundary degree = %d, want %d", g0.Degree(net.Boundary()), net.Delta()+1)
	}
	if net.AbsoluteDiligenceValue() != 1.0/float64(net.Delta()+1) {
		t.Fatal("absolute diligence value wrong")
	}
	if net.LowerBoundSpreadTime() <= 0 {
		t.Fatal("lower bound should be positive")
	}
}

func TestAbsGNRhoAdaptation(t *testing.T) {
	rng := xrand.New(66)
	net, err := NewAbsGNRho(120, 0.25, rng)
	if err != nil {
		t.Fatal(err)
	}
	informed := make([]bool, net.N())
	informed[net.StartVertex()] = true
	g0 := net.GraphAt(0, informed)
	oldBoundary := net.Boundary()
	// Inform the boundary vertex: the adversary must move it to the A side
	// and pick a fresh uninformed boundary.
	informed[oldBoundary] = true
	g1 := net.GraphAt(1, informed)
	if g1 == g0 {
		t.Fatal("AbsGNRho did not rebuild after the boundary was informed")
	}
	if net.Boundary() == oldBoundary {
		t.Fatal("boundary vertex did not move")
	}
	if informed[net.Boundary()] {
		t.Fatal("new boundary vertex is already informed")
	}
	if err := g1.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestAbsGNRhoParameterValidation(t *testing.T) {
	rng := xrand.New(67)
	if _, err := NewAbsGNRho(20, 0.5, rng); err == nil {
		t.Error("tiny n should fail")
	}
	if _, err := NewAbsGNRho(120, 0.001, rng); err == nil {
		t.Error("rho below 10/n should fail")
	}
	if _, err := NewAbsGNRho(120, 2, rng); err == nil {
		t.Error("rho > 1 should fail")
	}
}

func TestDichotomyG1(t *testing.T) {
	net, err := NewDichotomyG1(10)
	if err != nil {
		t.Fatal(err)
	}
	if net.N() != 11 || net.StartVertex() != 10 {
		t.Fatalf("N=%d start=%d", net.N(), net.StartVertex())
	}
	g0 := net.GraphAt(0, nil)
	if g0.Degree(10) != 1 || !g0.HasEdge(0, 10) {
		t.Fatal("G^(0) is not the clique with a pendant at vertex 0")
	}
	g1 := net.GraphAt(1, nil)
	if g1 == g0 {
		t.Fatal("G^(1) should differ from G^(0)")
	}
	if !g1.HasEdge(0, 10) {
		t.Fatal("bridge {0,n} missing in G^(1)")
	}
	if !g1.IsConnected() {
		t.Fatal("G^(1) disconnected")
	}
	if net.GraphAt(7, nil) != g1 {
		t.Fatal("G^(t) for t >= 1 should be constant")
	}
	// Both cliques should have roughly half the vertices: max degree about n/2.
	if g1.MaxDegree() > net.N()/2+1 {
		t.Fatalf("G^(1) max degree %d too large", g1.MaxDegree())
	}
	if _, err := NewDichotomyG1(2); err == nil {
		t.Error("tiny n should fail")
	}
}

func TestDichotomyG2(t *testing.T) {
	rng := xrand.New(68)
	net, err := NewDichotomyG2(8, rng)
	if err != nil {
		t.Fatal(err)
	}
	if net.N() != 9 || net.StartVertex() != 1 {
		t.Fatalf("N=%d start=%d", net.N(), net.StartVertex())
	}
	g0 := net.GraphAt(0, nil)
	if g0.Degree(0) != 8 {
		t.Fatal("G^(0) is not a star centered at 0")
	}
	informed := make([]bool, 9)
	informed[1] = true
	informed[0] = true // center got informed
	g1 := net.GraphAt(1, informed)
	c := net.Center()
	if informed[c] {
		t.Fatal("new center should be uninformed")
	}
	if g1.Degree(c) != 8 {
		t.Fatalf("new center degree = %d", g1.Degree(c))
	}
	// All informed: center becomes a random vertex, graph stays a star.
	all := make([]bool, 9)
	for i := range all {
		all[i] = true
	}
	g2 := net.GraphAt(2, all)
	if g2.MaxDegree() != 8 {
		t.Fatal("G^(2) is not a star")
	}
	if _, err := NewDichotomyG2(1, rng); err == nil {
		t.Error("tiny n should fail")
	}
}

func TestAlternatingRegularComplete(t *testing.T) {
	rng := xrand.New(69)
	net, err := NewAlternatingRegularComplete(20, 3, rng)
	if err != nil {
		t.Fatal(err)
	}
	sparse := net.GraphAt(0, nil)
	complete := net.GraphAt(1, nil)
	if ok, d := sparse.IsRegular(); !ok || d != 3 {
		t.Fatalf("sparse graph regularity (%v,%d)", ok, d)
	}
	if complete.M() != 20*19/2 {
		t.Fatal("second graph is not complete")
	}
	if ratio := net.MaxDegreeRatio(); ratio < 6 {
		t.Fatalf("MaxDegreeRatio = %v, want about (n-1)/3", ratio)
	}
	if _, err := NewAlternatingRegularComplete(2, 1, rng); err == nil {
		t.Error("bad parameters should fail")
	}
}

func TestEdgeMarkovian(t *testing.T) {
	rng := xrand.New(70)
	net, err := NewEdgeMarkovian(12, 0.3, 0.3, gen.Cycle(12), rng)
	if err != nil {
		t.Fatal(err)
	}
	g0 := net.GraphAt(0, nil)
	if g0.M() != 12 {
		t.Fatalf("initial graph m=%d, want 12 (the cycle)", g0.M())
	}
	g3 := net.GraphAt(3, nil)
	if err := g3.Validate(); err != nil {
		t.Fatal(err)
	}
	// With p=q=0.3 on 66 pairs the stationary edge count is ~33; after a few
	// steps the graph should have changed from the cycle.
	if g3.M() == 12 && g3.HasEdge(0, 1) && g3.HasEdge(1, 2) && g3.HasEdge(2, 3) {
		t.Log("edge-Markovian graph suspiciously unchanged (possible but unlikely)")
	}
	// Old step returns the cached graph.
	if net.GraphAt(2, nil) != g3 {
		t.Fatal("requesting an old step should return the current cached graph")
	}
}

func TestEdgeMarkovianValidation(t *testing.T) {
	rng := xrand.New(71)
	if _, err := NewEdgeMarkovian(1, 0.5, 0.5, nil, rng); err == nil {
		t.Error("n=1 should fail")
	}
	if _, err := NewEdgeMarkovian(5, 1.5, 0.5, nil, rng); err == nil {
		t.Error("p>1 should fail")
	}
	if _, err := NewEdgeMarkovian(5, 0.5, 0.5, gen.Cycle(6), rng); err == nil {
		t.Error("mismatched initial graph should fail")
	}
}

func TestMobileAgents(t *testing.T) {
	rng := xrand.New(72)
	net, err := NewMobileAgents(30, 5, rng)
	if err != nil {
		t.Fatal(err)
	}
	if net.N() != 30 {
		t.Fatalf("N = %d", net.N())
	}
	g0 := net.GraphAt(0, nil)
	if err := g0.Validate(); err != nil {
		t.Fatal(err)
	}
	// 30 agents in 25 cells: the proximity graph is dense.
	if g0.M() == 0 {
		t.Fatal("proximity graph has no edges despite high density")
	}
	g5 := net.GraphAt(5, nil)
	if err := g5.Validate(); err != nil {
		t.Fatal(err)
	}
	if _, err := NewMobileAgents(1, 5, rng); err == nil {
		t.Error("single agent should fail")
	}
}
