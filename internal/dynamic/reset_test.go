package dynamic

import (
	"testing"

	"dynamicrumor/internal/gen"
	"dynamicrumor/internal/graph"
	"dynamicrumor/internal/xrand"
)

// resetCase builds a fresh Reusable network from a seed; the test compares a
// once-constructed-then-Reset instance against a freshly constructed one.
type resetCase struct {
	name  string
	build func(seed uint64) (Reusable, error)
}

func resetCases() []resetCase {
	return []resetCase{
		{"dichotomy-g2", func(seed uint64) (Reusable, error) {
			return NewDichotomyG2(40, xrand.New(seed))
		}},
		{"gnrho", func(seed uint64) (Reusable, error) {
			return NewGNRho(128, 0.2, 0, xrand.New(seed))
		}},
		{"absgnrho", func(seed uint64) (Reusable, error) {
			return NewAbsGNRho(120, 0.2, xrand.New(seed))
		}},
		{"edge-markovian", func(seed uint64) (Reusable, error) {
			return NewEdgeMarkovian(48, 0.08, 0.4, gen.Cycle(48), xrand.New(seed))
		}},
		{"mobile", func(seed uint64) (Reusable, error) {
			return NewMobileAgents(60, 5, xrand.New(seed))
		}},
	}
}

// driveNetwork steps a network like a synchronous simulator would — growing
// an informed set frontier-style so the adaptive adversaries actually adapt —
// and returns a fingerprint of every step graph.
func driveNetwork(t *testing.T, net Network, steps int, seed uint64) []uint64 {
	t.Helper()
	n := net.N()
	informed := make([]bool, n)
	informed[0] = true
	count := 1
	rng := xrand.New(seed)
	var prints []uint64
	for step := 0; step < steps; step++ {
		g := net.GraphAt(step, informed)
		prints = append(prints, fingerprint(g))
		// Inform a few random uninformed vertices so the adversaries move.
		for k := 0; k < 1+n/16 && count < n; k++ {
			v := rng.Intn(n)
			if !informed[v] {
				informed[v] = true
				count++
			}
		}
	}
	return prints
}

// fingerprint hashes a graph's edge set.
func fingerprint(g *graph.Graph) uint64 {
	h := uint64(1469598103934665603)
	mix := func(x uint64) {
		h ^= x
		h *= 1099511628211
	}
	mix(uint64(g.N()))
	for _, e := range g.Edges() {
		mix(uint64(e.U)<<32 | uint64(e.V))
	}
	return h
}

// TestResetMatchesFreshConstruction is the recycling contract of
// dynamic.Reusable: construct, run a repetition's worth of adaptive steps,
// Reset with a new seed — and the instance must then behave bit-identically
// to a freshly constructed network with that seed, including the stream it
// draws during construction and during later adaptive steps. This is what
// lets the batch engine reuse one instance per worker across repetitions.
func TestResetMatchesFreshConstruction(t *testing.T) {
	for _, tc := range resetCases() {
		t.Run(tc.name, func(t *testing.T) {
			recycled, err := tc.build(100)
			if err != nil {
				t.Fatal(err)
			}
			// Dirty the instance with a full drive on the first seed.
			driveNetwork(t, recycled, 30, 1000)

			// Reset must reproduce a fresh seed-200 instance exactly. The
			// constructors take ownership of their rng, so hand Reset the
			// same generator state a fresh construction would receive.
			if err := recycled.Reset(xrand.New(200)); err != nil {
				t.Fatal(err)
			}
			fresh, err := tc.build(200)
			if err != nil {
				t.Fatal(err)
			}
			got := driveNetwork(t, recycled, 30, 2000)
			want := driveNetwork(t, fresh, 30, 2000)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("step %d: reset instance diverged from fresh construction", i)
				}
			}
		})
	}
}

// TestResetCasesCoverEveryReusable fails when a new Reusable implementation
// is added without a reset-equivalence case.
func TestResetCasesCoverEveryReusable(t *testing.T) {
	covered := map[string]bool{}
	for _, tc := range resetCases() {
		covered[tc.name] = true
	}
	for _, name := range []string{"dichotomy-g2", "gnrho", "absgnrho", "edge-markovian", "mobile"} {
		if !covered[name] {
			t.Errorf("Reusable network %q has no reset-equivalence case", name)
		}
	}
}
