package dynamic

import (
	"fmt"

	"dynamicrumor/internal/graph"
	"dynamicrumor/internal/xrand"
)

// EdgeMarkovian is the edge-Markovian evolving graph of Clementi et al.
// (Section 1.2, related work): at every step each absent edge appears with
// probability p and each present edge disappears with probability q,
// independently. It serves as a randomized-evolution baseline in the
// experiments, in contrast to the paper's adversarial constructions.
//
// The chain state is a flat presence bitmap over the n(n-1)/2 vertex pairs
// (in (u,v) lexicographic order), transitioned in place; each materialized
// graph is emitted into a recycled builder and one of two alternating graph
// buffers, so steady-state steps allocate nothing. The graph of step t stays
// valid until the rebuild for step t+2.
type EdgeMarkovian struct {
	n       int
	p, q    float64
	rng     *xrand.RNG
	initial *graph.Graph // chain start state, kept for Reset (may be nil)
	present []bool       // pair bitmap, index pairIndex(u, v)
	rb      rebuilder
	current *graph.Graph
	prev    int
}

var _ Reusable = (*EdgeMarkovian)(nil)

// NewEdgeMarkovian creates an edge-Markovian network on n vertices starting
// from the given initial graph (nil starts from the empty graph).
func NewEdgeMarkovian(n int, p, q float64, initial *graph.Graph, rng *xrand.RNG) (*EdgeMarkovian, error) {
	if n < 2 {
		return nil, fmt.Errorf("dynamic: EdgeMarkovian needs n >= 2, got %d", n)
	}
	if p < 0 || p > 1 || q < 0 || q > 1 {
		return nil, fmt.Errorf("dynamic: EdgeMarkovian needs p, q in [0,1], got p=%v q=%v", p, q)
	}
	if initial != nil && initial.N() != n {
		return nil, fmt.Errorf("dynamic: EdgeMarkovian initial graph has %d vertices, want %d", initial.N(), n)
	}
	em := &EdgeMarkovian{n: n, p: p, q: q, initial: initial}
	em.present = make([]bool, n*(n-1)/2)
	em.rb = newRebuilder(n)
	if err := em.Reset(rng); err != nil {
		return nil, err
	}
	return em, nil
}

// Reset implements Reusable: the chain returns to the initial graph with the
// new rng, recycling the pair bitmap and graph buffers. Like the constructor
// it draws nothing from rng (the chain only draws on transitions).
func (em *EdgeMarkovian) Reset(rng *xrand.RNG) error {
	em.rng = rng
	em.prev = 0
	for i := range em.present {
		em.present[i] = false
	}
	if em.initial != nil {
		for _, e := range em.initial.Edges() {
			em.present[em.pairIndex(e.U, e.V)] = true
		}
	}
	em.materialize()
	return nil
}

// pairIndex maps the canonical pair (u, v) with u < v to its position in the
// lexicographic enumeration of all pairs.
func (em *EdgeMarkovian) pairIndex(u, v int) int {
	return u*em.n - u*(u+1)/2 + (v - u - 1)
}

// N implements Network.
func (em *EdgeMarkovian) N() int { return em.n }

// GraphAt implements Network. Each call with a new step value advances the
// Markov chain by one transition.
func (em *EdgeMarkovian) GraphAt(t int, _ []bool) *graph.Graph {
	if t <= em.prev {
		return em.current
	}
	for step := em.prev; step < t; step++ {
		em.transition()
	}
	em.prev = t
	em.materialize()
	return em.current
}

// transition advances every pair one Markov step, consuming one Bernoulli
// draw per pair in (u, v) lexicographic order — the same stream as the
// historical map-based implementation.
func (em *EdgeMarkovian) transition() {
	idx := 0
	for u := 0; u < em.n; u++ {
		for v := u + 1; v < em.n; v++ {
			if em.present[idx] {
				em.present[idx] = !em.rng.Bernoulli(em.q)
			} else {
				em.present[idx] = em.rng.Bernoulli(em.p)
			}
			idx++
		}
	}
}

func (em *EdgeMarkovian) materialize() {
	b := em.rb.begin(em.n)
	idx := 0
	for u := 0; u < em.n; u++ {
		for v := u + 1; v < em.n; v++ {
			if em.present[idx] {
				b.AddEdge(u, v)
			}
			idx++
		}
	}
	em.current = em.rb.flip()
}

// MobileAgents models the related-work scenario of agents performing
// independent random walks on a 2-dimensional torus grid: two agents are
// adjacent whenever they occupy the same or a 4-neighboring cell. The rumor
// travels between adjacent agents exactly like in any other dynamic network.
//
// The proximity graph is re-derived every step by bucketing agents per cell
// with a counting sort into recycled arrays, then emitted into a recycled
// builder and two alternating graph buffers — no per-step maps or
// allocations. The graph of step t stays valid until the rebuild for t+2.
type MobileAgents struct {
	agents int
	side   int
	rng    *xrand.RNG
	posR   []int
	posC   []int

	cellStart []int // bucket offsets per cell, length side²+1
	cellFill  []int // scatter cursors, length side²
	byCell    []int // agent ids grouped by cell, length agents
	rb        rebuilder
	current   *graph.Graph
	prev      int
}

var _ Reusable = (*MobileAgents)(nil)

// cellOffsets are the same-cell and 4-neighbor probes of the proximity rule.
var cellOffsets = [5][2]int{{0, 0}, {0, 1}, {1, 0}, {0, -1}, {-1, 0}}

// NewMobileAgents places `agents` agents uniformly at random on a side x side
// torus grid.
func NewMobileAgents(agents, side int, rng *xrand.RNG) (*MobileAgents, error) {
	if agents < 2 || side < 2 {
		return nil, fmt.Errorf("dynamic: MobileAgents needs agents >= 2 and side >= 2")
	}
	m := &MobileAgents{agents: agents, side: side}
	m.posR = make([]int, agents)
	m.posC = make([]int, agents)
	m.cellStart = make([]int, side*side+1)
	m.cellFill = make([]int, side*side)
	m.byCell = make([]int, agents)
	m.rb = newRebuilder(agents)
	if err := m.Reset(rng); err != nil {
		return nil, err
	}
	return m, nil
}

// Reset implements Reusable: the agents are re-placed uniformly at random
// from the new rng — the same 2·agents Intn draws, in the same order, as the
// constructor — and the proximity graph is re-derived into the recycled
// buffers.
func (m *MobileAgents) Reset(rng *xrand.RNG) error {
	m.rng = rng
	m.prev = 0
	for i := 0; i < m.agents; i++ {
		m.posR[i] = rng.Intn(m.side)
		m.posC[i] = rng.Intn(m.side)
	}
	m.materialize()
	return nil
}

// N implements Network (the vertices are the agents).
func (m *MobileAgents) N() int { return m.agents }

// GraphAt implements Network: each new step moves every agent one random-walk
// step (stay or move to one of the four torus neighbors) and recomputes the
// proximity graph.
func (m *MobileAgents) GraphAt(t int, _ []bool) *graph.Graph {
	if t <= m.prev {
		return m.current
	}
	for step := m.prev; step < t; step++ {
		m.walk()
	}
	m.prev = t
	m.materialize()
	return m.current
}

func (m *MobileAgents) walk() {
	for i := 0; i < m.agents; i++ {
		switch m.rng.Intn(5) {
		case 0: // stay
		case 1:
			m.posR[i] = (m.posR[i] + 1) % m.side
		case 2:
			m.posR[i] = (m.posR[i] - 1 + m.side) % m.side
		case 3:
			m.posC[i] = (m.posC[i] + 1) % m.side
		case 4:
			m.posC[i] = (m.posC[i] - 1 + m.side) % m.side
		}
	}
}

func (m *MobileAgents) materialize() {
	// Counting sort of agents by cell id.
	cells := m.side * m.side
	for k := 0; k <= cells; k++ {
		m.cellStart[k] = 0
	}
	for i := 0; i < m.agents; i++ {
		m.cellStart[m.posR[i]*m.side+m.posC[i]+1]++
	}
	for k := 0; k < cells; k++ {
		m.cellStart[k+1] += m.cellStart[k]
	}
	copy(m.cellFill, m.cellStart[:cells])
	for i := 0; i < m.agents; i++ {
		k := m.posR[i]*m.side + m.posC[i]
		m.byCell[m.cellFill[k]] = i
		m.cellFill[k]++
	}
	// Connect agents in the same or 4-neighboring cells.
	b := m.rb.begin(m.agents)
	for k := 0; k < cells; k++ {
		here := m.byCell[m.cellStart[k]:m.cellStart[k+1]]
		if len(here) == 0 {
			continue
		}
		r, c := k/m.side, k%m.side
		for _, off := range cellOffsets {
			nr := (r + off[0] + m.side) % m.side
			nc := (c + off[1] + m.side) % m.side
			nk := nr*m.side + nc
			neighbors := m.byCell[m.cellStart[nk]:m.cellStart[nk+1]]
			for _, a := range here {
				for _, b2 := range neighbors {
					if a != b2 {
						b.AddEdge(a, b2)
					}
				}
			}
		}
	}
	m.current = m.rb.flip()
}
