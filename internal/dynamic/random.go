package dynamic

import (
	"fmt"

	"dynamicrumor/internal/graph"
	"dynamicrumor/internal/xrand"
)

// EdgeMarkovian is the edge-Markovian evolving graph of Clementi et al.
// (Section 1.2, related work): at every step each absent edge appears with
// probability p and each present edge disappears with probability q,
// independently. It serves as a randomized-evolution baseline in the
// experiments, in contrast to the paper's adversarial constructions.
type EdgeMarkovian struct {
	n       int
	p, q    float64
	rng     *xrand.RNG
	present map[graph.Edge]struct{}
	current *graph.Graph
	prev    int
}

var _ Network = (*EdgeMarkovian)(nil)

// NewEdgeMarkovian creates an edge-Markovian network on n vertices starting
// from the given initial graph (nil starts from the empty graph).
func NewEdgeMarkovian(n int, p, q float64, initial *graph.Graph, rng *xrand.RNG) (*EdgeMarkovian, error) {
	if n < 2 {
		return nil, fmt.Errorf("dynamic: EdgeMarkovian needs n >= 2, got %d", n)
	}
	if p < 0 || p > 1 || q < 0 || q > 1 {
		return nil, fmt.Errorf("dynamic: EdgeMarkovian needs p, q in [0,1], got p=%v q=%v", p, q)
	}
	em := &EdgeMarkovian{n: n, p: p, q: q, rng: rng, present: make(map[graph.Edge]struct{}), prev: 0}
	if initial != nil {
		if initial.N() != n {
			return nil, fmt.Errorf("dynamic: EdgeMarkovian initial graph has %d vertices, want %d", initial.N(), n)
		}
		for _, e := range initial.Edges() {
			em.present[e] = struct{}{}
		}
	}
	em.current = em.materialize()
	return em, nil
}

// N implements Network.
func (em *EdgeMarkovian) N() int { return em.n }

// GraphAt implements Network. Each call with a new step value advances the
// Markov chain by one transition.
func (em *EdgeMarkovian) GraphAt(t int, _ []bool) *graph.Graph {
	if t <= em.prev {
		return em.current
	}
	for step := em.prev; step < t; step++ {
		em.transition()
	}
	em.prev = t
	em.current = em.materialize()
	return em.current
}

func (em *EdgeMarkovian) transition() {
	next := make(map[graph.Edge]struct{}, len(em.present))
	for u := 0; u < em.n; u++ {
		for v := u + 1; v < em.n; v++ {
			e := graph.Edge{U: u, V: v}
			if _, on := em.present[e]; on {
				if !em.rng.Bernoulli(em.q) {
					next[e] = struct{}{}
				}
			} else if em.rng.Bernoulli(em.p) {
				next[e] = struct{}{}
			}
		}
	}
	em.present = next
}

func (em *EdgeMarkovian) materialize() *graph.Graph {
	edges := make([]graph.Edge, 0, len(em.present))
	for e := range em.present {
		edges = append(edges, e)
	}
	return graph.FromEdges(em.n, edges)
}

// MobileAgents models the related-work scenario of agents performing
// independent random walks on a 2-dimensional torus grid: two agents are
// adjacent whenever they occupy the same or a 4-neighboring cell. The rumor
// travels between adjacent agents exactly like in any other dynamic network.
type MobileAgents struct {
	agents  int
	side    int
	rng     *xrand.RNG
	posR    []int
	posC    []int
	current *graph.Graph
	prev    int
}

var _ Network = (*MobileAgents)(nil)

// NewMobileAgents places `agents` agents uniformly at random on a side x side
// torus grid.
func NewMobileAgents(agents, side int, rng *xrand.RNG) (*MobileAgents, error) {
	if agents < 2 || side < 2 {
		return nil, fmt.Errorf("dynamic: MobileAgents needs agents >= 2 and side >= 2")
	}
	m := &MobileAgents{agents: agents, side: side, rng: rng, prev: 0}
	m.posR = make([]int, agents)
	m.posC = make([]int, agents)
	for i := 0; i < agents; i++ {
		m.posR[i] = rng.Intn(side)
		m.posC[i] = rng.Intn(side)
	}
	m.current = m.materialize()
	return m, nil
}

// N implements Network (the vertices are the agents).
func (m *MobileAgents) N() int { return m.agents }

// GraphAt implements Network: each new step moves every agent one random-walk
// step (stay or move to one of the four torus neighbors) and recomputes the
// proximity graph.
func (m *MobileAgents) GraphAt(t int, _ []bool) *graph.Graph {
	if t <= m.prev {
		return m.current
	}
	for step := m.prev; step < t; step++ {
		m.walk()
	}
	m.prev = t
	m.current = m.materialize()
	return m.current
}

func (m *MobileAgents) walk() {
	for i := 0; i < m.agents; i++ {
		switch m.rng.Intn(5) {
		case 0: // stay
		case 1:
			m.posR[i] = (m.posR[i] + 1) % m.side
		case 2:
			m.posR[i] = (m.posR[i] - 1 + m.side) % m.side
		case 3:
			m.posC[i] = (m.posC[i] + 1) % m.side
		case 4:
			m.posC[i] = (m.posC[i] - 1 + m.side) % m.side
		}
	}
}

func (m *MobileAgents) materialize() *graph.Graph {
	// Bucket agents by cell, then connect agents in the same or adjacent cells.
	cell := make(map[int][]int, m.agents)
	key := func(r, c int) int { return r*m.side + c }
	for i := 0; i < m.agents; i++ {
		k := key(m.posR[i], m.posC[i])
		cell[k] = append(cell[k], i)
	}
	b := graph.NewBuilder(m.agents)
	offsets := [][2]int{{0, 0}, {0, 1}, {1, 0}, {0, -1}, {-1, 0}}
	for k, agents := range cell {
		r, c := k/m.side, k%m.side
		for _, off := range offsets {
			nr := (r + off[0] + m.side) % m.side
			nc := (c + off[1] + m.side) % m.side
			neighbors := cell[key(nr, nc)]
			for _, a := range agents {
				for _, b2 := range neighbors {
					if a != b2 {
						b.AddEdge(a, b2)
					}
				}
			}
		}
	}
	return b.Build()
}
