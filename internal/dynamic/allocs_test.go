package dynamic

import (
	"testing"

	"dynamicrumor/internal/xrand"
)

// The allocation gates below pin the tentpole property of the CSR-direct
// rebuild path: once a dynamic network has warmed up its builder and its two
// alternating graph buffers, exposing a new graph at a unit-time boundary
// allocates nothing — the adversary's rebuild runs entirely in recycled
// memory. Run with -gcflags or GOGC tweaks these still hold: the measured
// functions genuinely do not call the allocator in steady state.

// TestDichotomyG2StepAllocsZero drives the dynamic star through center moves
// (the rebuild-every-step worst case of Theorem 1.7) and asserts zero
// allocations per exposed graph.
func TestDichotomyG2StepAllocsZero(t *testing.T) {
	rng := xrand.New(41)
	const n = 500
	net, err := NewDichotomyG2(n, rng)
	if err != nil {
		t.Fatal(err)
	}
	informed := make([]bool, net.N())
	for i := range informed {
		informed[i] = true
	}
	// Exactly one uninformed vertex, alternating between two leaves, forces
	// the center (and hence a full star rebuild) to move every step.
	hole := 0
	step := 0
	moveCenter := func() {
		informed[2+hole] = true
		hole ^= 1
		informed[2+hole] = false
		step++
		g := net.GraphAt(step, informed)
		if g.Degree(net.Center()) != n {
			t.Fatal("rebuilt graph is not a star")
		}
	}
	// Warm up builder, both graph buffers and all scratch.
	for i := 0; i < 4; i++ {
		moveCenter()
	}
	if allocs := testing.AllocsPerRun(100, moveCenter); allocs != 0 {
		t.Fatalf("dynamic star rebuild allocates %.2f times per step, want 0", allocs)
	}
}

// TestGNRhoStepAllocsZero shrinks the B side of G(n, ρ) by one vertex per
// step, forcing the adversary to rebuild H_{k,Δ}(A_t, B_t) every time, and
// asserts zero allocations per rebuild.
func TestGNRhoStepAllocsZero(t *testing.T) {
	rng := xrand.New(42)
	net, err := NewGNRho(2048, 0.1, 0, rng)
	if err != nil {
		t.Fatal(err)
	}
	informed := make([]bool, net.N())
	informed[net.StartVertex()] = true
	step := 0
	nextB := net.N() - 1 // inform B-side vertices from the top down
	shrinkB := func() {
		informed[nextB] = true
		nextB--
		step++
		g := net.GraphAt(step, informed)
		if g.N() != net.N() {
			t.Fatal("rebuild produced wrong graph")
		}
	}
	// Warm-up: let every scratch buffer (builder, permutation, sides, both
	// graph buffers) reach its steady-state capacity.
	for i := 0; i < 16; i++ {
		shrinkB()
	}
	if allocs := testing.AllocsPerRun(64, shrinkB); allocs != 0 {
		t.Fatalf("GNRho rebuild allocates %.2f times per step, want 0", allocs)
	}
	// The keep path (B unchanged) is trivially allocation-free too.
	if allocs := testing.AllocsPerRun(64, func() {
		step++
		net.GraphAt(step, informed)
	}); allocs != 0 {
		t.Fatalf("GNRho keep path allocates %.2f times per step, want 0", allocs)
	}
}

// TestEdgeMarkovianStepAllocsZero advances the edge-Markovian chain in steady
// state; the pair bitmap transition plus the recycled materialization must
// not allocate once the builder high-water capacity is reached.
func TestEdgeMarkovianStepAllocsZero(t *testing.T) {
	rng := xrand.New(43)
	net, err := NewEdgeMarkovian(64, 0.3, 0.3, nil, rng)
	if err != nil {
		t.Fatal(err)
	}
	step := 0
	advance := func() {
		step++
		net.GraphAt(step, nil)
	}
	// Long warm-up: the chain's edge count fluctuates around its stationary
	// mean, so let the builder reach a safe high-water capacity first.
	for i := 0; i < 200; i++ {
		advance()
	}
	if allocs := testing.AllocsPerRun(100, advance); allocs != 0 {
		t.Fatalf("edge-Markovian step allocates %.2f times, want 0", allocs)
	}
}

// TestMobileAgentsStepAllocsZero checks the torus random-walk proximity
// network: walking the agents and re-bucketing them per cell runs entirely
// in recycled arrays.
func TestMobileAgentsStepAllocsZero(t *testing.T) {
	rng := xrand.New(44)
	net, err := NewMobileAgents(200, 10, rng)
	if err != nil {
		t.Fatal(err)
	}
	step := 0
	advance := func() {
		step++
		net.GraphAt(step, nil)
	}
	for i := 0; i < 200; i++ {
		advance()
	}
	if allocs := testing.AllocsPerRun(100, advance); allocs != 0 {
		t.Fatalf("mobile-agents step allocates %.2f times, want 0", allocs)
	}
}

// TestAbsGNRhoRebuildCheap is the absolutely-ρ-diligent construction's gate:
// its rebuild emits both regular graphs straight into the recycled builder,
// so a steady-state step performs zero allocations as well.
func TestAbsGNRhoStepAllocsZero(t *testing.T) {
	rng := xrand.New(45)
	net, err := NewAbsGNRho(1200, 0.1, rng)
	if err != nil {
		t.Fatal(err)
	}
	informed := make([]bool, net.N())
	informed[net.StartVertex()] = true
	step := 0
	nextB := net.N() - 1
	shrinkB := func() {
		informed[nextB] = true
		nextB--
		step++
		if g := net.GraphAt(step, informed); g.N() != net.N() {
			t.Fatal("rebuild produced wrong graph")
		}
	}
	for i := 0; i < 16; i++ {
		shrinkB()
	}
	if allocs := testing.AllocsPerRun(64, shrinkB); allocs != 0 {
		t.Fatalf("AbsGNRho rebuild allocates %.2f times per step, want 0", allocs)
	}
}
