// Package stats provides the small statistical toolkit used by the
// experiment harness: summary statistics, quantiles, confidence intervals,
// harmonic numbers, histograms and growth-exponent fitting.
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrEmpty is returned by functions that need at least one sample.
var ErrEmpty = errors.New("stats: empty sample")

// Summary holds the usual summary statistics of a sample.
type Summary struct {
	N        int
	Mean     float64
	Variance float64 // unbiased (n-1) sample variance
	StdDev   float64
	Min      float64
	Max      float64
	Median   float64
	Q25      float64
	Q75      float64
}

// Summarize computes summary statistics for the sample.
func Summarize(xs []float64) (Summary, error) {
	if len(xs) == 0 {
		return Summary{}, ErrEmpty
	}
	s := Summary{N: len(xs)}
	s.Mean = Mean(xs)
	s.Variance = Variance(xs)
	s.StdDev = math.Sqrt(s.Variance)
	s.Min, s.Max = xs[0], xs[0]
	for _, x := range xs {
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Median = Quantile(xs, 0.5)
	s.Q25 = Quantile(xs, 0.25)
	s.Q75 = Quantile(xs, 0.75)
	return s, nil
}

// Mean returns the arithmetic mean (0 for an empty sample).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Variance returns the unbiased sample variance (0 for fewer than two values).
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	sum := 0.0
	for _, x := range xs {
		d := x - m
		sum += d * d
	}
	return sum / float64(len(xs)-1)
}

// StdDev returns the sample standard deviation.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Quantile returns the q-th quantile (0 <= q <= 1) using linear interpolation
// between order statistics. It returns 0 for an empty sample.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// MeanCI returns the mean and the half-width of an approximate 95% confidence
// interval (normal approximation, 1.96 standard errors).
func MeanCI(xs []float64) (mean, halfWidth float64) {
	mean = Mean(xs)
	if len(xs) < 2 {
		return mean, 0
	}
	se := StdDev(xs) / math.Sqrt(float64(len(xs)))
	return mean, 1.96 * se
}

// Harmonic returns the k-th harmonic number H_k = 1 + 1/2 + ... + 1/k
// (0 for k <= 0).
func Harmonic(k int) float64 {
	if k <= 0 {
		return 0
	}
	// Direct summation for small k, asymptotic expansion for large k.
	if k < 1024 {
		h := 0.0
		for i := 1; i <= k; i++ {
			h += 1 / float64(i)
		}
		return h
	}
	const gamma = 0.5772156649015329
	kf := float64(k)
	return math.Log(kf) + gamma + 1/(2*kf) - 1/(12*kf*kf)
}

// EmpiricalCDF returns the fraction of samples that are <= x.
func EmpiricalCDF(xs []float64, x float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	count := 0
	for _, v := range xs {
		if v <= x {
			count++
		}
	}
	return float64(count) / float64(len(xs))
}

// KSDistance returns the two-sample Kolmogorov–Smirnov statistic
// sup_x |F_a(x) - F_b(x)|.
func KSDistance(a, b []float64) float64 {
	if len(a) == 0 || len(b) == 0 {
		return 1
	}
	sa := append([]float64(nil), a...)
	sb := append([]float64(nil), b...)
	sort.Float64s(sa)
	sort.Float64s(sb)
	i, j := 0, 0
	maxDiff := 0.0
	for i < len(sa) && j < len(sb) {
		var x float64
		if sa[i] <= sb[j] {
			x = sa[i]
		} else {
			x = sb[j]
		}
		for i < len(sa) && sa[i] <= x {
			i++
		}
		for j < len(sb) && sb[j] <= x {
			j++
		}
		diff := math.Abs(float64(i)/float64(len(sa)) - float64(j)/float64(len(sb)))
		if diff > maxDiff {
			maxDiff = diff
		}
	}
	return maxDiff
}

// LinearFit fits y = a + b*x by least squares and returns (a, b).
// It returns an error if fewer than two points are given or x is degenerate.
func LinearFit(x, y []float64) (a, b float64, err error) {
	if len(x) != len(y) {
		return 0, 0, errors.New("stats: LinearFit length mismatch")
	}
	if len(x) < 2 {
		return 0, 0, ErrEmpty
	}
	mx, my := Mean(x), Mean(y)
	var sxx, sxy float64
	for i := range x {
		dx := x[i] - mx
		sxx += dx * dx
		sxy += dx * (y[i] - my)
	}
	if sxx == 0 {
		return 0, 0, errors.New("stats: LinearFit degenerate x")
	}
	b = sxy / sxx
	a = my - b*mx
	return a, b, nil
}

// GrowthExponent fits y ~ C * x^alpha on log-log scale and returns alpha.
// Points with non-positive coordinates are skipped. It returns an error if
// fewer than two usable points remain.
func GrowthExponent(x, y []float64) (alpha float64, err error) {
	if len(x) != len(y) {
		return 0, errors.New("stats: GrowthExponent length mismatch")
	}
	var lx, ly []float64
	for i := range x {
		if x[i] > 0 && y[i] > 0 {
			lx = append(lx, math.Log(x[i]))
			ly = append(ly, math.Log(y[i]))
		}
	}
	_, alpha, err = LinearFit(lx, ly)
	return alpha, err
}

// Histogram is a fixed-width-bin histogram over [Min, Max].
type Histogram struct {
	Min, Max float64
	Counts   []int
	Under    int // samples below Min
	Over     int // samples above Max
}

// NewHistogram creates a histogram with the given number of bins over
// [min, max]. It panics if bins <= 0 or max <= min.
func NewHistogram(min, max float64, bins int) *Histogram {
	if bins <= 0 {
		panic("stats: NewHistogram with non-positive bins")
	}
	if max <= min {
		panic("stats: NewHistogram with max <= min")
	}
	return &Histogram{Min: min, Max: max, Counts: make([]int, bins)}
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	switch {
	case x < h.Min:
		h.Under++
	case x > h.Max:
		h.Over++
	default:
		bin := int((x - h.Min) / (h.Max - h.Min) * float64(len(h.Counts)))
		if bin == len(h.Counts) {
			bin--
		}
		h.Counts[bin]++
	}
}

// Total returns the number of observations recorded, including out-of-range.
func (h *Histogram) Total() int {
	total := h.Under + h.Over
	for _, c := range h.Counts {
		total += c
	}
	return total
}

// BinCenter returns the midpoint of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	width := (h.Max - h.Min) / float64(len(h.Counts))
	return h.Min + (float64(i)+0.5)*width
}
