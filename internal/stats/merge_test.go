package stats

import (
	"testing"

	"dynamicrumor/internal/xrand"
)

// serialStream folds xs into a fresh Stream with the engine's standard
// quantiles, the reference every merge must match bit for bit.
func serialStream(xs []float64) *Stream {
	s := NewStream(0.5, 0.9)
	for _, x := range xs {
		s.Add(x)
	}
	return s
}

// streamsEqual compares every exported accumulator output exactly — no
// tolerance: the merge contract is bit-identity, not approximation.
func streamsEqual(t *testing.T, label string, got, want *Stream) {
	t.Helper()
	if got.N() != want.N() {
		t.Fatalf("%s: N = %d, want %d", label, got.N(), want.N())
	}
	if got.Mean() != want.Mean() || got.Variance() != want.Variance() ||
		got.Min() != want.Min() || got.Max() != want.Max() {
		t.Fatalf("%s: moments differ: mean %v/%v var %v/%v min %v/%v max %v/%v", label,
			got.Mean(), want.Mean(), got.Variance(), want.Variance(),
			got.Min(), want.Min(), got.Max(), want.Max())
	}
	for i := range want.Quantiles() {
		if got.QuantileEstimate(i) != want.QuantileEstimate(i) {
			t.Fatalf("%s: quantile %d estimate %v, want %v", label, i,
				got.QuantileEstimate(i), want.QuantileEstimate(i))
		}
	}
}

// randomChunks cuts [0, n) into contiguous chunks of random length.
func randomChunks(rng *xrand.RNG, xs []float64) []Chunk {
	var chunks []Chunk
	for start := 0; start < len(xs); {
		size := 1 + rng.Intn(7)
		if start+size > len(xs) {
			size = len(xs) - start
		}
		chunks = append(chunks, Chunk{Start: start, Values: xs[start : start+size]})
		start += size
	}
	return chunks
}

// TestMergerOrderInvariance is the satellite property test: for random
// observation sequences, random chunkings and random arrival orders, the
// merged stream is exactly the serial reduction.
func TestMergerOrderInvariance(t *testing.T) {
	rng := xrand.New(515)
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(200)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.Exp(0.1)
		}
		want := serialStream(xs)

		chunks := randomChunks(rng, xs)
		order := rng.Perm(len(chunks))
		merged := NewStream(0.5, 0.9)
		m := NewMerger(merged)
		for _, ci := range order {
			if err := m.Add(chunks[ci]); err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
		}
		if m.Next() != n || m.Buffered() != 0 {
			t.Fatalf("trial %d: merge incomplete: next %d (want %d), %d buffered", trial, m.Next(), n, m.Buffered())
		}
		streamsEqual(t, "random order", merged, want)
	}
}

// TestMergerCopiesBufferedChunks pins that an out-of-order chunk is copied:
// the caller recycling its slice must not corrupt the merge. This is the
// contract chunked Monte-Carlo workers rely on when they reuse their value
// buffers.
func TestMergerCopiesBufferedChunks(t *testing.T) {
	xs := []float64{10, 20, 30, 40}
	want := serialStream(xs)

	merged := NewStream(0.5, 0.9)
	m := NewMerger(merged)
	buf := []float64{30, 40}
	if err := m.Add(Chunk{Start: 2, Values: buf}); err != nil {
		t.Fatal(err)
	}
	buf[0], buf[1] = -1, -2 // recycle the slice before the chunk is merged
	if err := m.Add(Chunk{Start: 0, Values: []float64{10, 20}}); err != nil {
		t.Fatal(err)
	}
	streamsEqual(t, "recycled buffer", merged, want)
}

func TestMergerRejectsOverlaps(t *testing.T) {
	m := NewMerger(NewStream())
	if err := m.Add(Chunk{Start: 0, Values: []float64{1, 2}}); err != nil {
		t.Fatal(err)
	}
	if err := m.Add(Chunk{Start: 1, Values: []float64{9}}); err == nil {
		t.Fatal("chunk behind the frontier was accepted")
	}
	if err := m.Add(Chunk{Start: 5, Values: []float64{5, 6}}); err != nil {
		t.Fatal(err)
	}
	if err := m.Add(Chunk{Start: 6, Values: []float64{9}}); err == nil {
		t.Fatal("chunk overlapping a buffered chunk was accepted")
	}
	if err := m.Add(Chunk{Start: 5, Values: []float64{9, 9}}); err == nil {
		t.Fatal("duplicate buffered chunk was accepted")
	}
	// The gap chunk completes the sequence and unblocks the buffer.
	if err := m.Add(Chunk{Start: 2, Values: []float64{3, 4, 5}}); err != nil {
		t.Fatal(err)
	}
	if m.Next() != 7 || m.Buffered() != 0 {
		t.Fatalf("merge did not drain: next %d, %d buffered", m.Next(), m.Buffered())
	}
}

func TestMergerEmptyChunkIsNoop(t *testing.T) {
	m := NewMerger(NewStream())
	if err := m.Add(Chunk{Start: 3, Values: nil}); err != nil {
		t.Fatal(err)
	}
	if m.Next() != 0 || m.Buffered() != 0 {
		t.Fatalf("empty chunk changed state: next %d, %d buffered", m.Next(), m.Buffered())
	}
}
