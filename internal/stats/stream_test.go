package stats

import (
	"math"
	"testing"

	"dynamicrumor/internal/xrand"
)

func TestWelfordMatchesBatchMoments(t *testing.T) {
	rng := xrand.New(8)
	xs := make([]float64, 5000)
	var w Welford
	for i := range xs {
		xs[i] = 100 + 10*rng.Float64()*rng.Float64()
		w.Add(xs[i])
	}
	if w.N() != len(xs) {
		t.Fatalf("N = %d, want %d", w.N(), len(xs))
	}
	if m := Mean(xs); math.Abs(w.Mean()-m) > 1e-9*math.Abs(m) {
		t.Fatalf("mean %v, want %v", w.Mean(), m)
	}
	if v := Variance(xs); math.Abs(w.Variance()-v) > 1e-9*v {
		t.Fatalf("variance %v, want %v", w.Variance(), v)
	}
	min, max := xs[0], xs[0]
	for _, x := range xs {
		min, max = math.Min(min, x), math.Max(max, x)
	}
	if w.Min() != min || w.Max() != max {
		t.Fatal("extremes disagree with the batch")
	}
}

func TestWelfordSmallSamples(t *testing.T) {
	var w Welford
	if w.Mean() != 0 || w.Variance() != 0 || w.N() != 0 {
		t.Fatal("zero value not empty")
	}
	w.Add(3)
	if w.Mean() != 3 || w.Variance() != 0 || w.Min() != 3 || w.Max() != 3 {
		t.Fatal("single observation mishandled")
	}
	w.Add(5)
	if w.Mean() != 4 || math.Abs(w.Variance()-2) > 1e-12 {
		t.Fatalf("two observations: mean %v var %v, want 4 and 2", w.Mean(), w.Variance())
	}
}

func TestP2QuantileConvergesOnUniform(t *testing.T) {
	rng := xrand.New(21)
	for _, q := range []float64{0.1, 0.5, 0.9} {
		est := NewP2Quantile(q)
		for i := 0; i < 200000; i++ {
			est.Add(rng.Float64())
		}
		if got := est.Value(); math.Abs(got-q) > 0.01 {
			t.Fatalf("q=%v: estimate %v off by more than 0.01 on 2e5 uniform samples", q, got)
		}
	}
}

func TestP2QuantileMatchesExactOnSkewedSample(t *testing.T) {
	// Exponential-ish skew: the parabolic update must not be fooled by a
	// heavy tail.
	rng := xrand.New(4)
	xs := make([]float64, 100000)
	est := NewP2Quantile(0.9)
	for i := range xs {
		xs[i] = rng.Exp(0.5)
		est.Add(xs[i])
	}
	exact := Quantile(xs, 0.9)
	if math.Abs(est.Value()-exact) > 0.05*exact {
		t.Fatalf("q90 estimate %v vs exact %v: relative error above 5%%", est.Value(), exact)
	}
}

func TestP2QuantileSmallSamplesExact(t *testing.T) {
	est := NewP2Quantile(0.5)
	if est.Value() != 0 {
		t.Fatal("empty estimator should report 0")
	}
	for _, x := range []float64{9, 1, 5} {
		est.Add(x)
	}
	if got, want := est.Value(), Quantile([]float64{9, 1, 5}, 0.5); got != want {
		t.Fatalf("small-sample median %v, want exact %v", got, want)
	}
}

func TestP2QuantilePanicsOutOfRange(t *testing.T) {
	for _, q := range []float64{0, 1, -0.5, 2} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("q=%v: expected panic", q)
				}
			}()
			NewP2Quantile(q)
		}()
	}
}

func TestStreamCombinesAccumulators(t *testing.T) {
	s := NewStream(0.5, 0.9)
	rng := xrand.New(2)
	xs := make([]float64, 50000)
	for i := range xs {
		xs[i] = rng.Float64() * 10
		s.Add(xs[i])
	}
	if s.N() != len(xs) {
		t.Fatalf("N = %d, want %d", s.N(), len(xs))
	}
	if qs := s.Quantiles(); len(qs) != 2 || qs[0] != 0.5 || qs[1] != 0.9 {
		t.Fatalf("tracked quantiles %v, want [0.5 0.9]", qs)
	}
	if math.Abs(s.Mean()-Mean(xs)) > 1e-9 {
		t.Fatal("stream mean diverged from batch mean")
	}
	for i, q := range []float64{0.5, 0.9} {
		exact := Quantile(xs, q)
		if math.Abs(s.QuantileEstimate(i)-exact) > 0.05*exact {
			t.Fatalf("q=%v estimate %v vs exact %v", q, s.QuantileEstimate(i), exact)
		}
	}
}
