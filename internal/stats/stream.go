package stats

import (
	"fmt"
	"math"
	"sort"
)

// Welford is an online mean/variance accumulator (Welford's algorithm): one
// observation at a time, O(1) memory, numerically stable at any sample size.
// It is the reduction backbone of the engine's streaming batch runs, where
// 10⁵–10⁶ repetitions must be summarized without retaining them. The zero
// value is an empty accumulator.
type Welford struct {
	n    int
	mean float64
	m2   float64 // sum of squared deviations from the running mean
	min  float64
	max  float64
}

// Add records one observation.
func (w *Welford) Add(x float64) {
	w.n++
	if w.n == 1 {
		w.min, w.max = x, x
	} else {
		if x < w.min {
			w.min = x
		}
		if x > w.max {
			w.max = x
		}
	}
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// N returns the number of observations.
func (w *Welford) N() int { return w.n }

// Mean returns the running mean (0 for an empty accumulator).
func (w *Welford) Mean() float64 { return w.mean }

// Variance returns the unbiased (n-1) sample variance (0 for fewer than two
// observations).
func (w *Welford) Variance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// StdDev returns the sample standard deviation.
func (w *Welford) StdDev() float64 { return math.Sqrt(w.Variance()) }

// Min returns the smallest observation (0 for an empty accumulator).
func (w *Welford) Min() float64 { return w.min }

// Max returns the largest observation (0 for an empty accumulator).
func (w *Welford) Max() float64 { return w.max }

// P2Quantile estimates a single quantile online with the P² algorithm of
// Jain and Chlamtac (1985): five markers track the quantile and its
// neighborhood, adjusted with piecewise-parabolic interpolation as
// observations stream in. O(1) memory, no retained sample; the estimate
// converges to the true quantile as the sample grows. Use NewP2Quantile.
type P2Quantile struct {
	p       float64
	n       int
	heights [5]float64 // marker heights
	pos     [5]float64 // actual marker positions (1-based)
	want    [5]float64 // desired marker positions
	incr    [5]float64 // desired-position increments per observation
}

// NewP2Quantile returns an estimator for the q-th quantile, q in (0, 1).
// It panics for q outside the open interval.
func NewP2Quantile(q float64) *P2Quantile {
	if q <= 0 || q >= 1 {
		panic(fmt.Sprintf("stats: P2Quantile needs q in (0, 1), got %v", q))
	}
	e := &P2Quantile{p: q}
	e.pos = [5]float64{1, 2, 3, 4, 5}
	e.want = [5]float64{1, 1 + 2*q, 1 + 4*q, 3 + 2*q, 5}
	e.incr = [5]float64{0, q / 2, q, (1 + q) / 2, 1}
	return e
}

// Quantile returns the quantile being estimated.
func (e *P2Quantile) Quantile() float64 { return e.p }

// N returns the number of observations.
func (e *P2Quantile) N() int { return e.n }

// Add records one observation.
func (e *P2Quantile) Add(x float64) {
	if e.n < 5 {
		e.heights[e.n] = x
		e.n++
		if e.n == 5 {
			sort.Float64s(e.heights[:])
		}
		return
	}
	e.n++
	// Find the marker cell containing x and clamp the extreme markers.
	var k int
	switch {
	case x < e.heights[0]:
		e.heights[0] = x
		k = 0
	case x < e.heights[1]:
		k = 0
	case x < e.heights[2]:
		k = 1
	case x < e.heights[3]:
		k = 2
	case x <= e.heights[4]:
		k = 3
	default:
		e.heights[4] = x
		k = 3
	}
	for i := k + 1; i < 5; i++ {
		e.pos[i]++
	}
	for i := range e.want {
		e.want[i] += e.incr[i]
	}
	// Adjust the three interior markers toward their desired positions.
	for i := 1; i <= 3; i++ {
		d := e.want[i] - e.pos[i]
		if (d >= 1 && e.pos[i+1]-e.pos[i] > 1) || (d <= -1 && e.pos[i-1]-e.pos[i] < -1) {
			sign := 1.0
			if d < 0 {
				sign = -1
			}
			h := e.parabolic(i, sign)
			if e.heights[i-1] < h && h < e.heights[i+1] {
				e.heights[i] = h
			} else {
				e.heights[i] = e.linear(i, sign)
			}
			e.pos[i] += sign
		}
	}
}

// parabolic is the P² piecewise-parabolic height prediction for marker i
// moved by sign (±1).
func (e *P2Quantile) parabolic(i int, sign float64) float64 {
	return e.heights[i] + sign/(e.pos[i+1]-e.pos[i-1])*
		((e.pos[i]-e.pos[i-1]+sign)*(e.heights[i+1]-e.heights[i])/(e.pos[i+1]-e.pos[i])+
			(e.pos[i+1]-e.pos[i]-sign)*(e.heights[i]-e.heights[i-1])/(e.pos[i]-e.pos[i-1]))
}

// linear is the fallback linear height prediction.
func (e *P2Quantile) linear(i int, sign float64) float64 {
	j := i + int(sign)
	return e.heights[i] + sign*(e.heights[j]-e.heights[i])/(e.pos[j]-e.pos[i])
}

// Value returns the current quantile estimate. For fewer than five
// observations it falls back to the exact small-sample quantile.
func (e *P2Quantile) Value() float64 {
	if e.n == 0 {
		return 0
	}
	if e.n < 5 {
		small := make([]float64, e.n)
		copy(small, e.heights[:e.n])
		return Quantile(small, e.p)
	}
	return e.heights[2]
}

// Stream summarizes a stream of observations in O(1) memory: exact running
// mean/variance/min/max via Welford plus P² estimates for a fixed set of
// quantiles. It is what Engine.RunStats folds every repetition into.
type Stream struct {
	Welford
	quantiles []*P2Quantile
}

// NewStream returns a streaming summary tracking the given quantiles (each
// in (0, 1); duplicates are tracked independently).
func NewStream(quantiles ...float64) *Stream {
	s := &Stream{}
	for _, q := range quantiles {
		s.quantiles = append(s.quantiles, NewP2Quantile(q))
	}
	return s
}

// Add records one observation in every accumulator.
func (s *Stream) Add(x float64) {
	s.Welford.Add(x)
	for _, e := range s.quantiles {
		e.Add(x)
	}
}

// QuantileEstimate returns the P² estimate for the i-th tracked quantile
// (in the order passed to NewStream).
func (s *Stream) QuantileEstimate(i int) float64 { return s.quantiles[i].Value() }

// Quantiles returns the tracked quantile levels in order.
func (s *Stream) Quantiles() []float64 {
	out := make([]float64, len(s.quantiles))
	for i, e := range s.quantiles {
		out[i] = e.p
	}
	return out
}
