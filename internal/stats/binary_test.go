package stats

import (
	"bytes"
	"math"
	"reflect"
	"testing"

	"dynamicrumor/internal/xrand"
)

// TestStreamBinaryRoundTripContinuation is the codec's core property: cutting
// a stream at any point, round-tripping it through MarshalBinary, and feeding
// the restored copy the remaining observations yields bit-identical summaries
// and bit-identical final snapshots — serialization is invisible to the
// statistics.
func TestStreamBinaryRoundTripContinuation(t *testing.T) {
	rng := xrand.New(0xbead)
	for trial := 0; trial < 50; trial++ {
		total := 1 + rng.Intn(400)
		cut := rng.Intn(total + 1)
		obs := make([]float64, total)
		for i := range obs {
			obs[i] = rng.Exp(0.25)
		}

		direct := NewStream(0.5, 0.9)
		resumed := NewStream(0.5, 0.9)
		for _, v := range obs[:cut] {
			direct.Add(v)
			resumed.Add(v)
		}
		blob, err := resumed.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		var restored Stream
		if err := restored.UnmarshalBinary(blob); err != nil {
			t.Fatalf("trial %d: unmarshal: %v", trial, err)
		}
		for _, v := range obs[cut:] {
			direct.Add(v)
			restored.Add(v)
		}
		if !reflect.DeepEqual(direct.Summary(), restored.Summary()) {
			t.Fatalf("trial %d (total %d, cut %d): restored summary diverged:\n%+v\nvs\n%+v",
				trial, total, cut, direct.Summary(), restored.Summary())
		}
		a, _ := direct.MarshalBinary()
		b, _ := restored.MarshalBinary()
		if !bytes.Equal(a, b) {
			t.Fatalf("trial %d: final snapshots differ after identical continuation", trial)
		}
	}
}

// TestStreamBinaryEmptyAndZeroQuantiles covers the degenerate shapes: a fresh
// stream and one tracking no quantiles both round-trip exactly.
func TestStreamBinaryEmptyAndZeroQuantiles(t *testing.T) {
	for _, s := range []*Stream{NewStream(), NewStream(0.5, 0.9), NewStream(0.25)} {
		blob, err := s.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		var back Stream
		if err := back.UnmarshalBinary(blob); err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(s.Summary(), back.Summary()) {
			t.Fatalf("empty stream summary changed: %+v vs %+v", s.Summary(), back.Summary())
		}
		if got := back.Quantiles(); !reflect.DeepEqual(got, s.Quantiles()) {
			t.Fatalf("quantile levels changed: %v vs %v", got, s.Quantiles())
		}
	}
}

// TestStreamBinarySpecialValues pins exactness for IEEE-754 edge cases the
// spread-time domain can produce (infinities from capped runs; negative
// zero from float arithmetic).
func TestStreamBinarySpecialValues(t *testing.T) {
	s := NewStream(0.5)
	for _, v := range []float64{0, math.Copysign(0, -1), 1e-300, 1e300, math.Inf(1)} {
		s.Add(v)
	}
	blob, _ := s.MarshalBinary()
	var back Stream
	if err := back.UnmarshalBinary(blob); err != nil {
		t.Fatal(err)
	}
	a, _ := s.MarshalBinary()
	b, _ := back.MarshalBinary()
	if !bytes.Equal(a, b) {
		t.Fatal("special-value snapshot did not round-trip bit-exactly")
	}
}

// TestStreamBinaryRejectsCorrupt: truncated, trailing, bad-magic and
// bad-level snapshots all fail loudly.
func TestStreamBinaryRejectsCorrupt(t *testing.T) {
	s := NewStream(0.5, 0.9)
	for i := 0; i < 10; i++ {
		s.Add(float64(i))
	}
	blob, _ := s.MarshalBinary()

	var dst Stream
	if err := dst.UnmarshalBinary(nil); err == nil {
		t.Error("nil input accepted")
	}
	if err := dst.UnmarshalBinary(blob[:len(blob)-1]); err == nil {
		t.Error("truncated snapshot accepted")
	}
	if err := dst.UnmarshalBinary(append(append([]byte{}, blob...), 0)); err == nil {
		t.Error("trailing bytes accepted")
	}
	bad := append([]byte{}, blob...)
	bad[0] = 'x'
	if err := dst.UnmarshalBinary(bad); err == nil {
		t.Error("bad magic accepted")
	}
	// Corrupt the first quantile's level to an out-of-range value.
	bad = append([]byte{}, blob...)
	off := len(streamMagic) + 4 + welfordWireSize
	for i := 0; i < 8; i++ {
		bad[off+i] = 0xff
	}
	if err := dst.UnmarshalBinary(bad); err == nil {
		t.Error("out-of-range quantile level accepted")
	}
}
