package stats

import "fmt"

// Chunk is a contiguous run of observations from a larger sequence:
// Values[j] is the observation of index Start+j. It is the unit in which
// distributed or chunked-parallel producers ship partial results to a
// merging consumer (see Merger).
type Chunk struct {
	Start  int
	Values []float64
}

// Merger folds chunks of an observation sequence into a Stream in index
// order, whatever order the chunks arrive in. The merge is exact: the target
// stream receives the observations one by one, in index order, so the final
// accumulator state is bit-identical to a serial Add loop over the full
// sequence. This replay design is deliberate — Welford and P² states cannot
// be merged exactly from summaries alone, and the engine's deterministic
// contract ("parallelism is never an output knob") extends to distributed
// reduction only if merging is exact.
//
// Chunks that arrive ahead of the merge frontier are buffered (copied — the
// caller may recycle the slice); a chunk behind or overlapping the frontier,
// or overlapping a buffered chunk, is rejected. The zero Merger is not
// usable; construct with NewMerger.
type Merger struct {
	stream  *Stream
	next    int
	pending map[int][]float64 // buffered chunks keyed by start index
}

// NewMerger returns a merger folding into s, awaiting index 0.
func NewMerger(s *Stream) *Merger {
	return &Merger{stream: s, pending: make(map[int][]float64)}
}

// Next returns the first index the merger is still waiting for: every
// observation below it has been folded into the stream.
func (m *Merger) Next() int { return m.next }

// Buffered returns the number of chunks held ahead of the merge frontier.
func (m *Merger) Buffered() int { return len(m.pending) }

// Add accepts one chunk, folds it (and any buffered successors it unblocks)
// into the stream if it sits exactly at the frontier, and buffers it
// otherwise. Duplicate, overlapping or behind-the-frontier chunks are
// rejected with an error and change nothing.
func (m *Merger) Add(c Chunk) error {
	if len(c.Values) == 0 {
		return nil
	}
	if c.Start < m.next {
		return fmt.Errorf("stats: chunk [%d,%d) overlaps already-merged prefix [0,%d)", c.Start, c.Start+len(c.Values), m.next)
	}
	for start, vals := range m.pending {
		if c.Start < start+len(vals) && start < c.Start+len(c.Values) {
			return fmt.Errorf("stats: chunk [%d,%d) overlaps buffered chunk [%d,%d)", c.Start, c.Start+len(c.Values), start, start+len(vals))
		}
	}
	if c.Start == m.next {
		for _, v := range c.Values {
			m.stream.Add(v)
		}
		m.next += len(c.Values)
		m.drain()
		return nil
	}
	buf := make([]float64, len(c.Values))
	copy(buf, c.Values)
	m.pending[c.Start] = buf
	return nil
}

// drain folds every buffered chunk that now sits at the frontier.
func (m *Merger) drain() {
	for {
		vals, ok := m.pending[m.next]
		if !ok {
			return
		}
		delete(m.pending, m.next)
		for _, v := range vals {
			m.stream.Add(v)
		}
		m.next += len(vals)
	}
}
