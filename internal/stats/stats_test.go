package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMeanBasic(t *testing.T) {
	if got := Mean([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Fatalf("Mean = %v, want 2.5", got)
	}
}

func TestMeanEmpty(t *testing.T) {
	if got := Mean(nil); got != 0 {
		t.Fatalf("Mean(nil) = %v, want 0", got)
	}
}

func TestVarianceBasic(t *testing.T) {
	if got := Variance([]float64{2, 4, 4, 4, 5, 5, 7, 9}); !almostEqual(got, 4.571428571, 1e-6) {
		t.Fatalf("Variance = %v", got)
	}
}

func TestVarianceConstant(t *testing.T) {
	if got := Variance([]float64{3, 3, 3, 3}); got != 0 {
		t.Fatalf("Variance of constants = %v, want 0", got)
	}
}

func TestVarianceNonNegativeProperty(t *testing.T) {
	if err := quick.Check(func(xs []float64) bool {
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e9 {
				return true
			}
		}
		return Variance(xs) >= 0
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestQuantileBasic(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ q, want float64 }{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5},
	}
	for _, c := range cases {
		if got := Quantile(xs, c.q); !almostEqual(got, c.want, 1e-12) {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
}

func TestQuantileInterpolates(t *testing.T) {
	if got := Quantile([]float64{0, 10}, 0.5); got != 5 {
		t.Fatalf("Quantile = %v, want 5", got)
	}
}

func TestQuantileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Quantile(xs, 0.5)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatal("Quantile mutated its input")
	}
}

func TestQuantileMonotoneProperty(t *testing.T) {
	if err := quick.Check(func(raw []float64, a, b uint8) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		q1 := float64(a%101) / 100
		q2 := float64(b%101) / 100
		if q1 > q2 {
			q1, q2 = q2, q1
		}
		return Quantile(xs, q1) <= Quantile(xs, q2)
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestSummarize(t *testing.T) {
	s, err := Summarize([]float64{1, 2, 3, 4, 5})
	if err != nil {
		t.Fatal(err)
	}
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 || s.Median != 3 {
		t.Fatalf("unexpected summary %+v", s)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	if _, err := Summarize(nil); err != ErrEmpty {
		t.Fatalf("Summarize(nil) error = %v, want ErrEmpty", err)
	}
}

func TestMeanCIShrinksWithN(t *testing.T) {
	small := make([]float64, 10)
	large := make([]float64, 1000)
	for i := range small {
		small[i] = float64(i % 2)
	}
	for i := range large {
		large[i] = float64(i % 2)
	}
	_, hwSmall := MeanCI(small)
	_, hwLarge := MeanCI(large)
	if hwLarge >= hwSmall {
		t.Fatalf("CI half-width did not shrink: small=%v large=%v", hwSmall, hwLarge)
	}
}

func TestMeanCISingle(t *testing.T) {
	m, hw := MeanCI([]float64{7})
	if m != 7 || hw != 0 {
		t.Fatalf("MeanCI single = (%v,%v)", m, hw)
	}
}

func TestHarmonicSmall(t *testing.T) {
	cases := []struct {
		k    int
		want float64
	}{
		{0, 0}, {1, 1}, {2, 1.5}, {3, 1.5 + 1.0/3}, {10, 2.9289682539682538},
	}
	for _, c := range cases {
		if got := Harmonic(c.k); !almostEqual(got, c.want, 1e-9) {
			t.Errorf("Harmonic(%d) = %v, want %v", c.k, got, c.want)
		}
	}
}

func TestHarmonicLargeMatchesAsymptotic(t *testing.T) {
	// Compare the asymptotic branch against direct summation at the cutover.
	direct := 0.0
	for i := 1; i <= 5000; i++ {
		direct += 1 / float64(i)
	}
	if got := Harmonic(5000); !almostEqual(got, direct, 1e-6) {
		t.Fatalf("Harmonic(5000) = %v, want %v", got, direct)
	}
}

func TestHarmonicMonotoneProperty(t *testing.T) {
	if err := quick.Check(func(raw uint16) bool {
		k := int(raw % 3000)
		return Harmonic(k+1) > Harmonic(k)
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestEmpiricalCDF(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	if got := EmpiricalCDF(xs, 2.5); got != 0.5 {
		t.Fatalf("EmpiricalCDF = %v, want 0.5", got)
	}
	if got := EmpiricalCDF(xs, 0); got != 0 {
		t.Fatalf("EmpiricalCDF = %v, want 0", got)
	}
	if got := EmpiricalCDF(xs, 10); got != 1 {
		t.Fatalf("EmpiricalCDF = %v, want 1", got)
	}
}

func TestKSDistanceIdentical(t *testing.T) {
	a := []float64{1, 2, 3, 4, 5}
	if got := KSDistance(a, a); got != 0 {
		t.Fatalf("KSDistance(a,a) = %v, want 0", got)
	}
}

func TestKSDistanceDisjoint(t *testing.T) {
	a := []float64{1, 2, 3}
	b := []float64{10, 11, 12}
	if got := KSDistance(a, b); got != 1 {
		t.Fatalf("KSDistance disjoint = %v, want 1", got)
	}
}

func TestKSDistanceRangeProperty(t *testing.T) {
	if err := quick.Check(func(a, b []float64) bool {
		clean := func(xs []float64) []float64 {
			out := xs[:0]
			for _, x := range xs {
				if !math.IsNaN(x) && !math.IsInf(x, 0) {
					out = append(out, x)
				}
			}
			return out
		}
		a, b = clean(a), clean(b)
		d := KSDistance(a, b)
		return d >= 0 && d <= 1
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestLinearFitExact(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	y := []float64{3, 5, 7, 9} // y = 1 + 2x
	a, b, err := LinearFit(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(a, 1, 1e-9) || !almostEqual(b, 2, 1e-9) {
		t.Fatalf("LinearFit = (%v,%v), want (1,2)", a, b)
	}
}

func TestLinearFitErrors(t *testing.T) {
	if _, _, err := LinearFit([]float64{1}, []float64{1}); err == nil {
		t.Fatal("expected error for single point")
	}
	if _, _, err := LinearFit([]float64{1, 1}, []float64{1, 2}); err == nil {
		t.Fatal("expected error for degenerate x")
	}
	if _, _, err := LinearFit([]float64{1, 2}, []float64{1}); err == nil {
		t.Fatal("expected error for length mismatch")
	}
}

func TestGrowthExponentQuadratic(t *testing.T) {
	var x, y []float64
	for n := 10; n <= 1000; n *= 2 {
		x = append(x, float64(n))
		y = append(y, 3*float64(n)*float64(n))
	}
	alpha, err := GrowthExponent(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(alpha, 2, 1e-6) {
		t.Fatalf("GrowthExponent = %v, want 2", alpha)
	}
}

func TestGrowthExponentSkipsNonPositive(t *testing.T) {
	x := []float64{-1, 1, 2, 4}
	y := []float64{5, 1, 2, 4}
	alpha, err := GrowthExponent(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(alpha, 1, 1e-9) {
		t.Fatalf("GrowthExponent = %v, want 1", alpha)
	}
}

func TestHistogramBasic(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, x := range []float64{-1, 0, 1, 3, 5, 9, 10, 11} {
		h.Add(x)
	}
	if h.Under != 1 || h.Over != 1 {
		t.Fatalf("under/over = %d/%d, want 1/1", h.Under, h.Over)
	}
	if h.Total() != 8 {
		t.Fatalf("Total = %d, want 8", h.Total())
	}
	if h.Counts[0] != 2 { // 0 and 1
		t.Fatalf("bin 0 = %d, want 2", h.Counts[0])
	}
	if h.Counts[4] != 2 { // 9 and 10 (max falls in last bin)
		t.Fatalf("bin 4 = %d, want 2", h.Counts[4])
	}
}

func TestHistogramBinCenter(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	if got := h.BinCenter(0); got != 1 {
		t.Fatalf("BinCenter(0) = %v, want 1", got)
	}
	if got := h.BinCenter(4); got != 9 {
		t.Fatalf("BinCenter(4) = %v, want 9", got)
	}
}

func TestHistogramPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewHistogram with bad bins did not panic")
		}
	}()
	NewHistogram(0, 1, 0)
}

func TestStdDevMatchesVariance(t *testing.T) {
	xs := []float64{1, 5, 2, 8, 3}
	if got, want := StdDev(xs), math.Sqrt(Variance(xs)); got != want {
		t.Fatalf("StdDev = %v, want %v", got, want)
	}
}
