package stats

// QuantileEstimateValue is one tracked quantile of a Stream snapshot: the
// level q and its current P² estimate.
type QuantileEstimateValue struct {
	// Q is the quantile level in (0, 1).
	Q float64 `json:"q"`
	// Value is the P² estimate for the level.
	Value float64 `json:"value"`
}

// StreamSummary is a point-in-time snapshot of a Stream, shaped for
// serialization: the exact Welford aggregates plus every tracked quantile
// estimate, in the order the stream tracks them. Marshalling a summary with
// encoding/json is deterministic — fixed field order, shortest float
// representation — which is what lets the rumord service cache summary bytes
// and return byte-identical responses for equal runs.
type StreamSummary struct {
	// N is the number of observations.
	N int `json:"n"`
	// Mean is the exact running mean.
	Mean float64 `json:"mean"`
	// StdDev is the exact sample standard deviation.
	StdDev float64 `json:"std_dev"`
	// Min and Max are the exact extremes.
	Min float64 `json:"min"`
	Max float64 `json:"max"`
	// Quantiles holds the P² estimates for the tracked levels.
	Quantiles []QuantileEstimateValue `json:"quantiles,omitempty"`
}

// Summary snapshots the stream. The snapshot shares no state with the
// stream; adding further observations does not change it.
func (s *Stream) Summary() StreamSummary {
	out := StreamSummary{
		N:      s.N(),
		Mean:   s.Mean(),
		StdDev: s.StdDev(),
		Min:    s.Min(),
		Max:    s.Max(),
	}
	for _, e := range s.quantiles {
		out.Quantiles = append(out.Quantiles, QuantileEstimateValue{Q: e.p, Value: e.Value()})
	}
	return out
}
