package stats

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Binary codec for Stream: an exact, versioned serialization of the full
// accumulator state — the Welford aggregates and every P² marker — so a
// stream can be snapshotted mid-observation, shipped across a process
// boundary (the cluster wire protocol) or persisted (the disk cache), and
// resumed with bit-identical behaviour. Round-tripping is exact: a restored
// stream fed the same subsequent observations produces the same summaries,
// bit for bit, as the original would have.
//
// Layout (little-endian):
//
//	magic "drs1" | uint32 quantile count
//	Welford: uint64 n | float64 mean, m2, min, max
//	per quantile: float64 p | uint64 n | float64 heights[5], pos[5], want[5], incr[5]
//
// Floats are serialized as their IEEE-754 bit patterns, so NaN payloads and
// signed zeros survive unchanged.

// streamMagic identifies (and versions) the Stream binary encoding.
const streamMagic = "drs1"

const (
	welfordWireSize = 5 * 8            // n + 4 aggregates
	p2WireSize      = (1 + 1 + 20) * 8 // p + n + 4×5 marker arrays
)

// MarshalBinary implements encoding.BinaryMarshaler with the exact state of
// the stream. It never fails; the error is the interface's.
func (s *Stream) MarshalBinary() ([]byte, error) {
	buf := make([]byte, 0, len(streamMagic)+4+welfordWireSize+len(s.quantiles)*p2WireSize)
	buf = append(buf, streamMagic...)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(s.quantiles)))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(s.Welford.n))
	for _, f := range [...]float64{s.Welford.mean, s.Welford.m2, s.Welford.min, s.Welford.max} {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(f))
	}
	for _, e := range s.quantiles {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(e.p))
		buf = binary.LittleEndian.AppendUint64(buf, uint64(e.n))
		for _, arr := range [...]*[5]float64{&e.heights, &e.pos, &e.want, &e.incr} {
			for _, f := range arr {
				buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(f))
			}
		}
	}
	return buf, nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler, replacing the
// stream's entire state with the decoded one. It rejects truncated or
// trailing bytes and unknown magics, so a wire-corrupted snapshot fails
// loudly instead of skewing statistics.
func (s *Stream) UnmarshalBinary(data []byte) error {
	if len(data) < len(streamMagic)+4 || string(data[:len(streamMagic)]) != streamMagic {
		return fmt.Errorf("stats: stream snapshot lacks %q magic", streamMagic)
	}
	rest := data[len(streamMagic):]
	nq := int(binary.LittleEndian.Uint32(rest))
	rest = rest[4:]
	if want := welfordWireSize + nq*p2WireSize; len(rest) != want {
		return fmt.Errorf("stats: stream snapshot is %d bytes after header, want %d for %d quantiles",
			len(rest), want, nq)
	}
	next := func() uint64 {
		v := binary.LittleEndian.Uint64(rest)
		rest = rest[8:]
		return v
	}
	var w Welford
	w.n = int(next())
	w.mean = math.Float64frombits(next())
	w.m2 = math.Float64frombits(next())
	w.min = math.Float64frombits(next())
	w.max = math.Float64frombits(next())
	quantiles := make([]*P2Quantile, nq)
	for i := range quantiles {
		e := &P2Quantile{}
		e.p = math.Float64frombits(next())
		// The negated form also rejects NaN levels, which every ordered
		// comparison would otherwise wave through.
		if !(e.p > 0 && e.p < 1) {
			return fmt.Errorf("stats: stream snapshot quantile %d has level %v outside (0, 1)", i, e.p)
		}
		e.n = int(next())
		for _, arr := range [...]*[5]float64{&e.heights, &e.pos, &e.want, &e.incr} {
			for j := range arr {
				arr[j] = math.Float64frombits(next())
			}
		}
		quantiles[i] = e
	}
	s.Welford = w
	s.quantiles = quantiles
	return nil
}
