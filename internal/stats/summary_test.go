package stats

import (
	"bytes"
	"encoding/json"
	"testing"
)

// TestStreamSummary: the snapshot reproduces the stream's accessors, is
// detached from later observations, and marshals deterministically.
func TestStreamSummary(t *testing.T) {
	s := NewStream(0.5, 0.9)
	for i := 0; i < 1000; i++ {
		s.Add(float64(i%97) / 7)
	}
	sum := s.Summary()
	if sum.N != s.N() || sum.Mean != s.Mean() || sum.StdDev != s.StdDev() ||
		sum.Min != s.Min() || sum.Max != s.Max() {
		t.Fatalf("summary %+v disagrees with stream accessors", sum)
	}
	if len(sum.Quantiles) != 2 || sum.Quantiles[0].Q != 0.5 || sum.Quantiles[1].Q != 0.9 {
		t.Fatalf("summary quantiles %+v, want levels 0.5 and 0.9", sum.Quantiles)
	}
	if sum.Quantiles[0].Value != s.QuantileEstimate(0) || sum.Quantiles[1].Value != s.QuantileEstimate(1) {
		t.Fatal("summary quantile values disagree with QuantileEstimate")
	}

	frozen := sum
	s.Add(1e9)
	if frozen.Max == s.Max() {
		t.Fatal("snapshot tracked the live stream")
	}

	a, err := json.Marshal(frozen)
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(frozen)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("summary marshalling is not deterministic")
	}
}
