package retry

import (
	"context"
	"errors"
	"math/rand"
	"testing"
	"time"
)

// fast is a test policy whose sleeps are negligible.
func fast(attempts int) Policy {
	return Policy{Base: time.Microsecond, Cap: 10 * time.Microsecond, Attempts: attempts}
}

// TestDoSucceedsAfterTransientFailures: Do retries transient errors and
// returns nil once the operation succeeds.
func TestDoSucceedsAfterTransientFailures(t *testing.T) {
	calls := 0
	err := fast(0).Do(context.Background(), func(context.Context) error {
		calls++
		if calls < 4 {
			return errors.New("transient")
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Do = %v, want nil", err)
	}
	if calls != 4 {
		t.Errorf("op ran %d times, want 4", calls)
	}
}

// TestDoAttemptsExhausted: a bounded policy stops after Attempts tries and
// surfaces the last error.
func TestDoAttemptsExhausted(t *testing.T) {
	sentinel := errors.New("still down")
	calls := 0
	err := fast(3).Do(context.Background(), func(context.Context) error {
		calls++
		return sentinel
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("Do = %v, want wrapped %v", err, sentinel)
	}
	if calls != 3 {
		t.Errorf("op ran %d times, want 3", calls)
	}
}

// TestDoPermanentStopsImmediately: a Permanent error is returned unwrapped
// after a single attempt.
func TestDoPermanentStopsImmediately(t *testing.T) {
	sentinel := errors.New("stale lease")
	calls := 0
	err := fast(0).Do(context.Background(), func(context.Context) error {
		calls++
		return Permanent(sentinel)
	})
	if err != sentinel {
		t.Fatalf("Do = %v, want the unwrapped sentinel", err)
	}
	if calls != 1 {
		t.Errorf("op ran %d times, want 1", calls)
	}
}

// TestDoContextCancellation: cancelling the context aborts the backoff
// sleep and returns the last attempt's error.
func TestDoContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	sentinel := errors.New("down")
	p := Policy{Base: time.Hour, Cap: time.Hour}
	done := make(chan error, 1)
	go func() {
		done <- p.Do(ctx, func(context.Context) error { return sentinel })
	}()
	time.Sleep(5 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, sentinel) {
			t.Errorf("Do = %v, want %v", err, sentinel)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Do did not return after cancellation")
	}
}

// TestDoCancelledBeforeFirstAttempt: a pre-cancelled context returns
// ctx.Err() without running the operation.
func TestDoCancelledBeforeFirstAttempt(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := fast(0).Do(ctx, func(context.Context) error {
		t.Fatal("op ran under a cancelled context")
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Errorf("Do = %v, want context.Canceled", err)
	}
}

// TestPerAttemptTimeout: each attempt sees its own deadline, so a hung
// operation cannot stall the loop.
func TestPerAttemptTimeout(t *testing.T) {
	p := Policy{Base: time.Microsecond, Attempts: 2, PerAttempt: 5 * time.Millisecond}
	calls := 0
	err := p.Do(context.Background(), func(ctx context.Context) error {
		calls++
		<-ctx.Done()
		return ctx.Err()
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Do = %v, want deadline exceeded", err)
	}
	if calls != 2 {
		t.Errorf("op ran %d times, want 2", calls)
	}
}

// TestDelayCapAndGrowth: delays are full-jitter draws bounded by the capped
// exponential envelope, and a seeded source makes them reproducible.
func TestDelayCapAndGrowth(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	p := Policy{Base: 100 * time.Millisecond, Cap: time.Second, Jitter: rng.Float64}
	for attempt := 0; attempt < 10; attempt++ {
		envelope := 100 * time.Millisecond << uint(attempt)
		if envelope > time.Second {
			envelope = time.Second
		}
		for i := 0; i < 50; i++ {
			d := p.Delay(attempt)
			if d < 0 || d > envelope {
				t.Fatalf("Delay(%d) = %v outside [0, %v]", attempt, d, envelope)
			}
		}
	}

	a := Policy{Base: time.Second, Cap: time.Minute, Jitter: rand.New(rand.NewSource(7)).Float64}
	b := Policy{Base: time.Second, Cap: time.Minute, Jitter: rand.New(rand.NewSource(7)).Float64}
	for attempt := 0; attempt < 8; attempt++ {
		if da, db := a.Delay(attempt), b.Delay(attempt); da != db {
			t.Fatalf("seeded delays diverge at attempt %d: %v vs %v", attempt, da, db)
		}
	}
}

// TestSleepHonorsContext: Sleep reports false when cancelled early.
func TestSleepHonorsContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(2 * time.Millisecond)
		cancel()
	}()
	if Sleep(ctx, time.Hour) {
		t.Error("Sleep(1h) reported a full elapse under a cancelled context")
	}
	if !Sleep(context.Background(), time.Microsecond) {
		t.Error("Sleep(1us) reported cancellation on a live context")
	}
}
