// Package retry is the module's one retry/backoff discipline: capped
// exponential backoff with full jitter, context-aware sleeping, optional
// per-attempt timeouts, and a Permanent escape hatch for errors that must
// not be retried. Every worker→coordinator path (registration, lease
// polling, result upload) runs through a Policy, so transient network and
// coordinator failures — including the coordinator being SIGKILLed and
// restarted mid-run — are absorbed in one place instead of by ad-hoc loops.
//
// Full jitter (delay drawn uniformly from [0, min(cap, base·2^attempt)])
// follows the standard AWS analysis: under correlated failures — a fleet of
// workers all losing their coordinator at once — it spreads the retry storm
// across the whole window instead of synchronizing it.
package retry

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// Policy describes one backoff discipline. The zero value retries forever
// with a 100ms base and a 5s cap; policies are values and safe to copy.
type Policy struct {
	// Base is the backoff before the second attempt (<= 0 selects 100ms).
	// Attempt k (zero-based) waits up to Base·2^k, capped at Cap.
	Base time.Duration
	// Cap bounds a single backoff delay (<= 0 selects 5s).
	Cap time.Duration
	// Attempts bounds the number of attempts (<= 0 means retry until the
	// context is cancelled or the error is permanent).
	Attempts int
	// PerAttempt, when > 0, bounds each attempt with its own context
	// deadline, so one hung request cannot stall the whole retry loop.
	PerAttempt time.Duration
	// Jitter is the uniform [0,1) source for full jitter (nil selects the
	// global math/rand source). Tests pin a seeded source to make backoff
	// sequences reproducible.
	Jitter func() float64
}

// permanentError marks an error that must not be retried.
type permanentError struct{ err error }

func (p *permanentError) Error() string { return p.err.Error() }
func (p *permanentError) Unwrap() error { return p.err }

// Permanent wraps an error so Do stops immediately and returns the wrapped
// error unretried: the failure is a protocol fact (a stale lease, a lapsed
// registration), not a transient fault.
func Permanent(err error) error {
	if err == nil {
		return nil
	}
	return &permanentError{err: err}
}

// jitterMu guards the global math/rand fallback: Policy values are shared
// across goroutines (every worker upload uses one), and rand.Float64's
// global source is locked internally, but a caller-supplied source is not —
// so the fallback stays on the global source.
var jitterMu sync.Mutex

// Delay returns the full-jitter backoff before attempt+1 (attempt is
// zero-based): uniform in [0, min(Cap, Base·2^attempt)]. Exposed so loops
// with their own control flow — the worker's lease poll, which must
// re-register on 404 rather than blindly retry — can still share the
// discipline.
func (p Policy) Delay(attempt int) time.Duration {
	base, cap := p.Base, p.Cap
	if base <= 0 {
		base = 100 * time.Millisecond
	}
	if cap <= 0 {
		cap = 5 * time.Second
	}
	d := base
	for i := 0; i < attempt && d < cap; i++ {
		d *= 2
	}
	if d > cap {
		d = cap
	}
	var u float64
	if p.Jitter != nil {
		u = p.Jitter()
	} else {
		jitterMu.Lock()
		u = rand.Float64()
		jitterMu.Unlock()
	}
	return time.Duration(u * float64(d))
}

// Do runs op until it succeeds, returns a Permanent error, exhausts
// Attempts, or ctx is cancelled. Each attempt sees a context bounded by
// PerAttempt when set; between attempts Do sleeps the jittered backoff,
// aborting early if ctx is cancelled. The returned error is the last
// attempt's (unwrapped from Permanent), except that cancellation with no
// failed attempt yet returns ctx.Err().
func (p Policy) Do(ctx context.Context, op func(context.Context) error) error {
	var last error
	for attempt := 0; ; attempt++ {
		if err := ctx.Err(); err != nil {
			if last != nil {
				return last
			}
			return err
		}
		attemptCtx, cancel := ctx, context.CancelFunc(func() {})
		if p.PerAttempt > 0 {
			attemptCtx, cancel = context.WithTimeout(ctx, p.PerAttempt)
		}
		err := op(attemptCtx)
		cancel()
		if err == nil {
			return nil
		}
		var perm *permanentError
		if errors.As(err, &perm) {
			return perm.err
		}
		last = err
		if p.Attempts > 0 && attempt+1 >= p.Attempts {
			return fmt.Errorf("after %d attempts: %w", p.Attempts, last)
		}
		if !Sleep(ctx, p.Delay(attempt)) {
			return last
		}
	}
}

// Sleep waits for d or until ctx is cancelled, reporting whether the full
// duration elapsed.
func Sleep(ctx context.Context, d time.Duration) bool {
	if d <= 0 {
		return ctx.Err() == nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}
