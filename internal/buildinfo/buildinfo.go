// Package buildinfo reports the build's version and VCS revision, read from
// the Go build metadata stamped into the binary. Both CLIs print it under
// -version and the service serves it from /healthz, so a mixed-version fleet
// — a coordinator and workers built from different commits — is diagnosable
// from the outside instead of manifesting as silent protocol drift.
package buildinfo

import "runtime/debug"

// Version renders the build identity as "<module version>+<revision>[-dirty]".
// Binaries built outside a VCS checkout (and test binaries, which Go does not
// stamp) report "devel".
func Version() string {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return "unknown"
	}
	v := bi.Main.Version
	if v == "" || v == "(devel)" {
		v = "devel"
	}
	var rev, dirty string
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			if s.Value == "true" {
				dirty = "-dirty"
			}
		}
	}
	if len(rev) > 12 {
		rev = rev[:12]
	}
	if rev != "" {
		return v + "+" + rev + dirty
	}
	return v
}
