package spectral

import (
	"math"
	"testing"

	"dynamicrumor/internal/gen"
	"dynamicrumor/internal/graph"
	"dynamicrumor/internal/xrand"
)

func TestCutConductanceSimple(t *testing.T) {
	g := gen.Path(4) // 0-1-2-3
	phi, err := CutConductance(g, []bool{true, true, false, false})
	if err != nil {
		t.Fatal(err)
	}
	// cut = 1, vol(S) = 1+2 = 3, vol(S̄) = 3, so phi = 1/3.
	if math.Abs(phi-1.0/3) > 1e-12 {
		t.Fatalf("phi = %v, want 1/3", phi)
	}
}

func TestCutConductanceZeroVolumeSide(t *testing.T) {
	g := gen.Path(3)
	if _, err := CutConductance(g, []bool{false, false, false}); err == nil {
		t.Fatal("expected error for empty side")
	}
}

func TestExactConductanceClique(t *testing.T) {
	// For K_n the minimizing cut is the balanced bisection:
	// Φ(K_n) = ceil(n/2)*floor(n/2) / (floor(n/2)*(n-1)).
	for _, n := range []int{4, 5, 6, 8} {
		g := gen.Clique(n)
		phi, err := ExactConductance(g)
		if err != nil {
			t.Fatal(err)
		}
		lo, hi := n/2, (n+1)/2
		want := float64(lo*hi) / float64(lo*(n-1))
		if math.Abs(phi-want) > 1e-12 {
			t.Fatalf("Φ(K_%d) = %v, want %v", n, phi, want)
		}
	}
}

func TestExactConductanceCycle(t *testing.T) {
	// For an even cycle the minimizing cut is a half-cycle: 2 cut edges over
	// volume n, so Φ = 2/n.
	for _, n := range []int{6, 8, 10} {
		g := gen.Cycle(n)
		phi, err := ExactConductance(g)
		if err != nil {
			t.Fatal(err)
		}
		want := 2.0 / float64(n)
		if math.Abs(phi-want) > 1e-12 {
			t.Fatalf("Φ(C_%d) = %v, want %v", n, phi, want)
		}
	}
}

func TestExactConductanceStar(t *testing.T) {
	// For the star, any set S of k <= (n-1)/2 leaves has vol(S)=k and cut k,
	// so Φ = 1.
	g := gen.Star(9, 0)
	phi, err := ExactConductance(g)
	if err != nil {
		t.Fatal(err)
	}
	if phi != 1 {
		t.Fatalf("Φ(star) = %v, want 1", phi)
	}
}

func TestExactConductanceBarbell(t *testing.T) {
	// Two K_5 joined by one edge: the bridge cut has 1 edge and each side has
	// volume 5*4+1 = 21, so Φ = 1/21.
	g := gen.Barbell(5)
	phi, err := ExactConductance(g)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(phi-1.0/21) > 1e-12 {
		t.Fatalf("Φ(barbell) = %v, want 1/21", phi)
	}
}

func TestExactConductanceDisconnected(t *testing.T) {
	g := graph.FromEdges(4, []graph.Edge{{U: 0, V: 1}, {U: 2, V: 3}})
	phi, err := ExactConductance(g)
	if err != nil {
		t.Fatal(err)
	}
	if phi != 0 {
		t.Fatalf("Φ(disconnected) = %v, want 0", phi)
	}
}

func TestExactConductanceErrors(t *testing.T) {
	if _, err := ExactConductance(graph.FromEdges(3, nil)); err != ErrNoEdges {
		t.Fatalf("edgeless error = %v, want ErrNoEdges", err)
	}
	if _, err := ExactConductance(gen.Cycle(30)); err != ErrTooLarge {
		t.Fatalf("large graph error = %v, want ErrTooLarge", err)
	}
}

func TestEstimateMatchesExactOnSmallGraphs(t *testing.T) {
	rng := xrand.New(99)
	graphs := map[string]*graph.Graph{
		"clique8":   gen.Clique(8),
		"cycle12":   gen.Cycle(12),
		"star10":    gen.Star(10, 0),
		"hypercube": gen.Hypercube(4),
		"barbell6":  gen.Barbell(6),
		"er":        gen.RandomConnected(14, 0.4, rng),
	}
	for name, g := range graphs {
		exact, err := ExactConductance(g)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		est, err := EstimateConductance(g, 200)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		// Sweep cut is a genuine cut, so it upper-bounds the optimum.
		if est.SweepConductance < exact-1e-9 {
			t.Errorf("%s: sweep %v below exact %v", name, est.SweepConductance, exact)
		}
		// Cheeger lower bound must not exceed the true conductance (allow a
		// tiny numerical slack from power iteration).
		if est.LowerBound > exact+0.05 {
			t.Errorf("%s: spectral lower bound %v above exact %v", name, est.LowerBound, exact)
		}
		// Cheeger upper bound: exact <= sqrt(2*gap) when the gap estimate is
		// accurate; allow slack for power-iteration error.
		if exact > math.Sqrt(2*est.SpectralGap)+0.1 {
			t.Errorf("%s: exact %v above Cheeger upper bound %v", name, exact, math.Sqrt(2*est.SpectralGap))
		}
	}
}

func TestEstimateExpanderHasLargeConductance(t *testing.T) {
	rng := xrand.New(123)
	g := gen.Expander(500, 6, rng)
	est, err := EstimateConductance(g, 100)
	if err != nil {
		t.Fatal(err)
	}
	if est.SweepConductance < 0.05 {
		t.Fatalf("expander sweep conductance %v suspiciously small", est.SweepConductance)
	}
}

func TestEstimateBarbellHasSmallConductance(t *testing.T) {
	g := gen.Barbell(50)
	est, err := EstimateConductance(g, 300)
	if err != nil {
		t.Fatal(err)
	}
	// The true conductance is 1/(50*49+1) ≈ 4e-4; the sweep cut should find
	// something at most a small constant.
	if est.SweepConductance > 0.01 {
		t.Fatalf("barbell sweep conductance %v too large", est.SweepConductance)
	}
}

func TestEstimateErrors(t *testing.T) {
	if _, err := EstimateConductance(graph.FromEdges(5, nil), 10); err != ErrNoEdges {
		t.Fatalf("error = %v, want ErrNoEdges", err)
	}
}

func TestEstimateDefaultIterations(t *testing.T) {
	if _, err := EstimateConductance(gen.Cycle(10), 0); err != nil {
		t.Fatal(err)
	}
}

func TestSweepConductanceIsValidCutProperty(t *testing.T) {
	rng := xrand.New(321)
	for trial := 0; trial < 20; trial++ {
		g := gen.RandomConnected(30, 0.15, rng)
		est, err := EstimateConductance(g, 80)
		if err != nil {
			t.Fatal(err)
		}
		if est.SweepConductance < 0 || est.SweepConductance > 1+1e-9 {
			t.Fatalf("trial %d: sweep conductance %v outside [0,1]", trial, est.SweepConductance)
		}
		if est.SpectralGap < 0 || est.SpectralGap > 2 {
			t.Fatalf("trial %d: spectral gap %v outside [0,2]", trial, est.SpectralGap)
		}
	}
}
