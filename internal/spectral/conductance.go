// Package spectral computes graph conductance: exactly by enumeration for
// small graphs, and approximately via the spectral gap of the normalized
// adjacency operator (Cheeger's inequality) with a sweep cut for large graphs.
package spectral

import (
	"errors"
	"math"
	"sort"

	"dynamicrumor/internal/graph"
)

// ErrTooLarge is returned by ExactConductance for graphs beyond the
// enumeration limit.
var ErrTooLarge = errors.New("spectral: graph too large for exact conductance")

// ErrNoEdges is returned when conductance is undefined (no edges).
var ErrNoEdges = errors.New("spectral: conductance undefined for a graph with no edges")

// exactLimit is the largest vertex count for which ExactConductance will
// enumerate all cuts (2^n subsets).
const exactLimit = 22

// CutConductance returns |E(S, S̄)| / min(vol(S), vol(S̄)) for the vertex set
// marked true in member, following Equation (2) of the paper. It returns an
// error if either side has zero volume.
func CutConductance(g *graph.Graph, member []bool) (float64, error) {
	volS := g.VolumeOf(member)
	volC := g.Volume() - volS
	if volS == 0 || volC == 0 {
		return 0, errors.New("spectral: cut has a zero-volume side")
	}
	cut := g.CutSize(member)
	minVol := volS
	if volC < minVol {
		minVol = volC
	}
	return float64(cut) / float64(minVol), nil
}

// ExactConductance returns the conductance Φ(G) of Equation (2) by
// enumerating every nonempty proper vertex subset. It returns ErrTooLarge for
// graphs with more than 22 vertices and ErrNoEdges if the graph has no edges.
// A disconnected graph (with edges) has conductance 0.
func ExactConductance(g *graph.Graph) (float64, error) {
	n := g.N()
	if n > exactLimit {
		return 0, ErrTooLarge
	}
	if g.M() == 0 {
		return 0, ErrNoEdges
	}
	best := math.Inf(1)
	member := make([]bool, n)
	// Fix vertex n-1 outside S to halve the enumeration (S and S̄ give the
	// same conductance).
	for mask := 1; mask < 1<<uint(n-1); mask++ {
		for v := 0; v < n-1; v++ {
			member[v] = mask&(1<<uint(v)) != 0
		}
		member[n-1] = false
		phi, err := CutConductance(g, member)
		if err != nil {
			continue
		}
		if phi < best {
			best = phi
		}
	}
	if math.IsInf(best, 1) {
		// Every candidate cut had a zero-volume side (isolated vertices only).
		return 0, nil
	}
	return best, nil
}

// Estimate holds the result of the spectral conductance estimation.
type Estimate struct {
	// SweepConductance is the conductance of the best sweep cut; it is an
	// upper bound on Φ(G).
	SweepConductance float64
	// SpectralGap is 1 - λ2 of the normalized adjacency operator. By Cheeger's
	// inequality, SpectralGap/2 <= Φ(G) <= sqrt(2*SpectralGap).
	SpectralGap float64
	// LowerBound is SpectralGap/2.
	LowerBound float64
}

// EstimateConductance estimates Φ(G) for a connected graph using power
// iteration on the normalized adjacency matrix followed by a sweep cut.
// iterations controls the power-iteration length (64 is a reasonable default;
// pass 0 to use it). It returns ErrNoEdges for edgeless graphs.
func EstimateConductance(g *graph.Graph, iterations int) (Estimate, error) {
	if g.M() == 0 {
		return Estimate{}, ErrNoEdges
	}
	if iterations <= 0 {
		iterations = 64
	}
	lambda2, vec := secondEigen(g, iterations)
	gap := 1 - lambda2
	if gap < 0 {
		gap = 0
	}
	sweep := sweepCut(g, vec)
	return Estimate{SweepConductance: sweep, SpectralGap: gap, LowerBound: gap / 2}, nil
}

// secondEigen estimates the second-largest eigenvalue (and its eigenvector)
// of the normalized adjacency operator N = D^{-1/2} A D^{-1/2} using power
// iteration on the lazy operator (I+N)/2 with deflation of the known top
// eigenvector D^{1/2}·1.
func secondEigen(g *graph.Graph, iterations int) (float64, []float64) {
	n := g.N()
	sqrtDeg := make([]float64, n)
	for v := 0; v < n; v++ {
		sqrtDeg[v] = math.Sqrt(float64(g.Degree(v)))
	}
	// Top eigenvector of N (eigenvalue 1) is proportional to sqrtDeg.
	top := normalize(append([]float64(nil), sqrtDeg...))

	// Deterministic pseudo-random start vector (no global RNG dependency).
	x := make([]float64, n)
	state := uint64(0x243f6a8885a308d3)
	for v := 0; v < n; v++ {
		state = state*6364136223846793005 + 1442695040888963407
		x[v] = float64(int64(state>>33))/float64(1<<31) - 0.5
	}
	deflate(x, top)
	x = normalize(x)

	y := make([]float64, n)
	lambdaLazy := 0.0
	for it := 0; it < iterations; it++ {
		// y = (I + N)/2 * x  (lazy operator keeps eigenvalues in [0,1]).
		for v := 0; v < n; v++ {
			sum := 0.0
			for _, u := range g.Neighbors(v) {
				if sqrtDeg[u] > 0 {
					sum += x[u] / (sqrtDeg[v] * sqrtDeg[u])
				}
			}
			y[v] = 0.5*x[v] + 0.5*sum
		}
		deflate(y, top)
		norm := vectorNorm(y)
		if norm == 0 {
			// x was (numerically) in the span of the top eigenvector;
			// the graph is essentially complete from the walk's viewpoint.
			return 0, x
		}
		lambdaLazy = norm // after normalization of x, |y| approximates the eigenvalue
		for v := 0; v < n; v++ {
			x[v] = y[v] / norm
		}
	}
	// Lazy eigenvalue mu = (1+lambda)/2  =>  lambda = 2*mu - 1.
	lambda2 := 2*lambdaLazy - 1
	if lambda2 > 1 {
		lambda2 = 1
	}
	if lambda2 < -1 {
		lambda2 = -1
	}
	return lambda2, x
}

// sweepCut orders vertices by vec[v]/sqrt(deg(v)) and returns the best
// conductance among all prefix cuts.
func sweepCut(g *graph.Graph, vec []float64) float64 {
	n := g.N()
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	score := make([]float64, n)
	for v := 0; v < n; v++ {
		d := float64(g.Degree(v))
		if d > 0 {
			score[v] = vec[v] / math.Sqrt(d)
		}
	}
	sort.Slice(order, func(i, j int) bool { return score[order[i]] < score[order[j]] })

	member := make([]bool, n)
	volS := 0
	cut := 0
	best := math.Inf(1)
	totalVol := g.Volume()
	for idx := 0; idx < n-1; idx++ {
		v := order[idx]
		member[v] = true
		volS += g.Degree(v)
		for _, u := range g.Neighbors(v) {
			if member[u] {
				cut-- // edge now internal
			} else {
				cut++ // new cut edge
			}
		}
		volC := totalVol - volS
		if volS == 0 || volC == 0 {
			continue
		}
		minVol := volS
		if volC < minVol {
			minVol = volC
		}
		phi := float64(cut) / float64(minVol)
		if phi < best {
			best = phi
		}
	}
	if math.IsInf(best, 1) {
		return 0
	}
	return best
}

func normalize(x []float64) []float64 {
	norm := vectorNorm(x)
	if norm == 0 {
		return x
	}
	for i := range x {
		x[i] /= norm
	}
	return x
}

func vectorNorm(x []float64) float64 {
	sum := 0.0
	for _, v := range x {
		sum += v * v
	}
	return math.Sqrt(sum)
}

// deflate removes the component of x along the unit vector top.
func deflate(x, top []float64) {
	dot := 0.0
	for i := range x {
		dot += x[i] * top[i]
	}
	for i := range x {
		x[i] -= dot * top[i]
	}
}
