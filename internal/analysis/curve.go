// Package analysis aggregates spreading traces across Monte-Carlo runs into
// spread curves: the informed fraction as a function of time, quantiles of
// the time needed to reach a target fraction, and simple exponential-growth
// fits of the early phase. These are the plotting-ready series behind the
// figures of rumor-spreading papers.
package analysis

import (
	"errors"
	"math"
	"sort"

	"dynamicrumor/internal/sim"
	"dynamicrumor/internal/stats"
)

// ErrNoTraces is returned when no usable traces are supplied.
var ErrNoTraces = errors.New("analysis: no traces with recorded points")

// CurvePoint is one point of an aggregated spread curve.
type CurvePoint struct {
	Time float64
	// MeanFraction is the informed fraction averaged over the runs.
	MeanFraction float64
	// MinFraction and MaxFraction are the envelope over the runs.
	MinFraction float64
	MaxFraction float64
}

// Curve aggregates the traces of several runs (all on networks of the same
// size) into an informed-fraction curve sampled at `points` evenly spaced
// times between 0 and the largest completion time observed.
func Curve(results []*sim.Result, points int) ([]CurvePoint, error) {
	if points < 2 {
		points = 2
	}
	var maxTime float64
	usable := 0
	for _, r := range results {
		if r == nil || len(r.Trace) == 0 || r.N == 0 {
			continue
		}
		usable++
		if last := r.Trace[len(r.Trace)-1].Time; last > maxTime {
			maxTime = last
		}
	}
	if usable == 0 {
		return nil, ErrNoTraces
	}
	if maxTime == 0 {
		maxTime = 1
	}
	curve := make([]CurvePoint, points)
	for i := 0; i < points; i++ {
		t := maxTime * float64(i) / float64(points-1)
		sum, minF, maxF := 0.0, math.Inf(1), math.Inf(-1)
		for _, r := range results {
			if r == nil || len(r.Trace) == 0 || r.N == 0 {
				continue
			}
			f := fractionAt(r, t)
			sum += f
			if f < minF {
				minF = f
			}
			if f > maxF {
				maxF = f
			}
		}
		curve[i] = CurvePoint{
			Time:         t,
			MeanFraction: sum / float64(usable),
			MinFraction:  minF,
			MaxFraction:  maxF,
		}
	}
	return curve, nil
}

// fractionAt returns the informed fraction of one run at time t, using the
// run's trace (which records one point per newly informed vertex).
func fractionAt(r *sim.Result, t float64) float64 {
	// The trace is sorted by time; binary search for the last point <= t.
	idx := sort.Search(len(r.Trace), func(i int) bool { return r.Trace[i].Time > t })
	if idx == 0 {
		return 0
	}
	return float64(r.Trace[idx-1].Informed) / float64(r.N)
}

// TimeToFraction returns, for each run, the earliest traced time at which the
// informed fraction reached the target (runs that never reach it are
// skipped), together with the number of runs that did reach it.
func TimeToFraction(results []*sim.Result, fraction float64) (times []float64, reached int) {
	for _, r := range results {
		if r == nil || r.N == 0 {
			continue
		}
		target := int(math.Ceil(fraction * float64(r.N)))
		if target < 1 {
			target = 1
		}
		if t, ok := r.TimeToReach(target); ok {
			times = append(times, t)
			reached++
		}
	}
	return times, reached
}

// FractionQuantiles summarizes TimeToFraction into (median, q90). It returns
// an error if no run reached the target fraction.
func FractionQuantiles(results []*sim.Result, fraction float64) (median, q90 float64, err error) {
	times, reached := TimeToFraction(results, fraction)
	if reached == 0 {
		return 0, 0, ErrNoTraces
	}
	return stats.Quantile(times, 0.5), stats.Quantile(times, 0.9), nil
}

// ExponentialGrowthRate fits the early phase of a single run's trace
// (informed counts between 2 and n/2) to I(t) ≈ e^{λt} and returns λ. The
// asynchronous push-pull on a clique has λ ≈ 2 (push + pull both double the
// informed set); bottleneck networks have much smaller rates.
func ExponentialGrowthRate(r *sim.Result) (float64, error) {
	if r == nil || len(r.Trace) < 3 || r.N < 4 {
		return 0, ErrNoTraces
	}
	var ts, logs []float64
	for _, p := range r.Trace {
		if p.Informed >= 2 && p.Informed <= r.N/2 && p.Time > 0 {
			ts = append(ts, p.Time)
			logs = append(logs, math.Log(float64(p.Informed)))
		}
	}
	if len(ts) < 2 {
		return 0, ErrNoTraces
	}
	_, slope, err := stats.LinearFit(ts, logs)
	return slope, err
}
