package analysis

import (
	"math"
	"testing"

	"dynamicrumor/internal/dynamic"
	"dynamicrumor/internal/gen"
	"dynamicrumor/internal/sim"
	"dynamicrumor/internal/xrand"
)

func runTraced(t *testing.T, n, reps int, seed uint64) []*sim.Result {
	t.Helper()
	rng := xrand.New(seed)
	net := dynamic.NewStatic(gen.Clique(n))
	var results []*sim.Result
	for i := 0; i < reps; i++ {
		res, err := sim.RunAsync(net, sim.AsyncOptions{Start: 0, RecordTrace: true}, rng.Split(uint64(i)+1))
		if err != nil {
			t.Fatal(err)
		}
		results = append(results, res)
	}
	return results
}

func TestCurveBasicShape(t *testing.T) {
	results := runTraced(t, 100, 10, 1)
	curve, err := Curve(results, 20)
	if err != nil {
		t.Fatal(err)
	}
	if len(curve) != 20 {
		t.Fatalf("curve has %d points, want 20", len(curve))
	}
	if curve[0].Time != 0 || curve[0].MeanFraction > 0.02 {
		t.Fatalf("curve start wrong: %+v", curve[0])
	}
	last := curve[len(curve)-1]
	if last.MeanFraction < 0.99 {
		t.Fatalf("curve does not end fully informed: %+v", last)
	}
	for i := 1; i < len(curve); i++ {
		if curve[i].MeanFraction < curve[i-1].MeanFraction-1e-9 {
			t.Fatal("mean fraction is not monotone in time")
		}
		if curve[i].MinFraction > curve[i].MeanFraction+1e-9 || curve[i].MaxFraction < curve[i].MeanFraction-1e-9 {
			t.Fatal("envelope does not contain the mean")
		}
	}
}

func TestCurveErrorsWithoutTraces(t *testing.T) {
	if _, err := Curve(nil, 10); err != ErrNoTraces {
		t.Fatalf("error = %v, want ErrNoTraces", err)
	}
	if _, err := Curve([]*sim.Result{{N: 5}}, 10); err != ErrNoTraces {
		t.Fatalf("error = %v, want ErrNoTraces", err)
	}
}

func TestCurveMinimumPoints(t *testing.T) {
	results := runTraced(t, 20, 2, 2)
	curve, err := Curve(results, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(curve) != 2 {
		t.Fatalf("points should be clamped to 2, got %d", len(curve))
	}
}

func TestTimeToFraction(t *testing.T) {
	results := runTraced(t, 100, 8, 3)
	times, reached := TimeToFraction(results, 0.5)
	if reached != 8 || len(times) != 8 {
		t.Fatalf("reached = %d, want 8", reached)
	}
	for _, tm := range times {
		if tm <= 0 {
			t.Fatal("time to half coverage should be positive")
		}
	}
	// Full coverage takes longer than half coverage for every run.
	full, _ := TimeToFraction(results, 1.0)
	for i := range times {
		if full[i] < times[i] {
			t.Fatal("full coverage reached before half coverage")
		}
	}
	// A fraction of 0 clamps to a single vertex (already informed at t=0).
	zero, reachedZero := TimeToFraction(results, 0)
	if reachedZero != 8 || zero[0] != 0 {
		t.Fatal("zero fraction should be reached immediately")
	}
}

func TestFractionQuantiles(t *testing.T) {
	results := runTraced(t, 100, 8, 4)
	median, q90, err := FractionQuantiles(results, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if median <= 0 || q90 < median {
		t.Fatalf("quantiles wrong: median %v q90 %v", median, q90)
	}
	if _, _, err := FractionQuantiles(nil, 0.5); err != ErrNoTraces {
		t.Fatal("expected ErrNoTraces")
	}
}

func TestExponentialGrowthRateOnClique(t *testing.T) {
	// On the clique the informed set grows at rate ≈ 2 (push + pull) during
	// the early phase.
	results := runTraced(t, 2000, 1, 5)
	rate, err := ExponentialGrowthRate(results[0])
	if err != nil {
		t.Fatal(err)
	}
	if rate < 1 || rate > 3.5 {
		t.Fatalf("clique growth rate %v, want roughly 2", rate)
	}
}

func TestExponentialGrowthRateOnPathIsSmall(t *testing.T) {
	rng := xrand.New(6)
	net := dynamic.NewStatic(gen.Path(200))
	res, err := sim.RunAsync(net, sim.AsyncOptions{Start: 0, RecordTrace: true}, rng)
	if err != nil {
		t.Fatal(err)
	}
	pathRate, err := ExponentialGrowthRate(res)
	if err != nil {
		t.Fatal(err)
	}
	cliqueResults := runTraced(t, 200, 1, 7)
	cliqueRate, err := ExponentialGrowthRate(cliqueResults[0])
	if err != nil {
		t.Fatal(err)
	}
	if pathRate >= cliqueRate {
		t.Fatalf("path growth rate %v should be far below clique rate %v", pathRate, cliqueRate)
	}
}

func TestExponentialGrowthRateErrors(t *testing.T) {
	if _, err := ExponentialGrowthRate(nil); err != ErrNoTraces {
		t.Fatal("nil result should error")
	}
	if _, err := ExponentialGrowthRate(&sim.Result{N: 2, Trace: []sim.TracePoint{{Time: 0, Informed: 1}, {Time: 1, Informed: 2}}}); err == nil {
		t.Fatal("tiny result should error")
	}
}

func TestFractionAtInterpolation(t *testing.T) {
	r := &sim.Result{N: 4, Trace: []sim.TracePoint{
		{Time: 0, Informed: 1}, {Time: 1, Informed: 2}, {Time: 2, Informed: 3}, {Time: 3, Informed: 4}}}
	cases := []struct {
		t    float64
		want float64
	}{
		{-0.5, 0}, {0, 0.25}, {0.5, 0.25}, {1, 0.5}, {2.7, 0.75}, {10, 1},
	}
	for _, c := range cases {
		if got := fractionAt(r, c.t); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("fractionAt(%v) = %v, want %v", c.t, got, c.want)
		}
	}
}
