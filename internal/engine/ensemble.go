package engine

import (
	"context"

	"dynamicrumor/internal/analysis"
	"dynamicrumor/internal/sim"
	"dynamicrumor/internal/stats"
)

// Ensemble is the aggregated outcome of a batch run: the scenario that
// produced it and one Result per repetition, in repetition order. The
// aggregation methods absorb the free-standing helpers that used to live in
// rumor/analysis.go, so spread-time quantiles, completion rates and spread
// curves are one method call away from any batch run.
type Ensemble struct {
	// Scenario is the spec the batch executed.
	Scenario Scenario
	// Results holds one result per repetition, in repetition order.
	Results []*sim.Result
}

// Reps returns the number of repetitions in the ensemble.
func (e *Ensemble) Reps() int { return len(e.Results) }

// SpreadTimes returns the per-repetition spread times in repetition order.
// Repetitions that hit the time limit report the cutoff time; check
// CompletionRate when that distinction matters.
func (e *Ensemble) SpreadTimes() []float64 {
	out := make([]float64, len(e.Results))
	for i, r := range e.Results {
		out[i] = r.SpreadTime
	}
	return out
}

// CompletionRate returns the fraction of repetitions that informed every
// vertex before their limit.
func (e *Ensemble) CompletionRate() float64 {
	if len(e.Results) == 0 {
		return 0
	}
	done := 0
	for _, r := range e.Results {
		if r.Completed {
			done++
		}
	}
	return float64(done) / float64(len(e.Results))
}

// MeanSpreadTime returns the mean spread time across repetitions.
func (e *Ensemble) MeanSpreadTime() float64 { return stats.Mean(e.SpreadTimes()) }

// SpreadTimeQuantile returns the empirical q-quantile (q in [0, 1]) of the
// spread times.
func (e *Ensemble) SpreadTimeQuantile(q float64) float64 {
	return stats.Quantile(e.SpreadTimes(), q)
}

// MinMaxSpreadTime returns the extremes of the spread times; (0, 0) for an
// empty ensemble.
func (e *Ensemble) MinMaxSpreadTime() (min, max float64) {
	if len(e.Results) == 0 {
		return 0, 0
	}
	min, max = e.Results[0].SpreadTime, e.Results[0].SpreadTime
	for _, r := range e.Results[1:] {
		if r.SpreadTime < min {
			min = r.SpreadTime
		}
		if r.SpreadTime > max {
			max = r.SpreadTime
		}
	}
	return min, max
}

// SpreadCurve aggregates the repetition traces into an informed-fraction
// curve sampled at `points` evenly spaced times. The scenario must have been
// run with Trace enabled; it errors otherwise.
func (e *Ensemble) SpreadCurve(points int) ([]analysis.CurvePoint, error) {
	return analysis.Curve(e.Results, points)
}

// TimeToFraction returns, per repetition, the earliest traced time at which
// the informed fraction reached the target, plus how many repetitions
// reached it.
func (e *Ensemble) TimeToFraction(fraction float64) (times []float64, reached int) {
	return analysis.TimeToFraction(e.Results, fraction)
}

// TimeToFractionQuantiles summarizes TimeToFraction into its median and
// 0.9-quantile; it errors when no repetition reached the target.
func (e *Ensemble) TimeToFractionQuantiles(fraction float64) (median, q90 float64, err error) {
	return analysis.FractionQuantiles(e.Results, fraction)
}

// BatchStats is the O(1)-memory aggregate of a streaming batch run: exact
// running moments and extremes of the spread time, P² estimates for its
// median and 0.9-quantile, and the completion count. Unlike an Ensemble it
// retains no per-repetition results, so it is the right aggregate for
// 10⁵–10⁶-repetition runs.
type BatchStats struct {
	// SpreadTime accumulates every repetition's spread time: exact
	// mean/variance/min/max plus P² median and 0.9-quantile estimates
	// (QuantileEstimate(0) and (1) respectively).
	SpreadTime *stats.Stream
	// Completed counts repetitions that informed every vertex before their
	// limit.
	Completed int
	// Reps is the number of repetitions aggregated.
	Reps int
}

// CompletionRate returns the fraction of repetitions that completed.
func (b *BatchStats) CompletionRate() float64 {
	if b.Reps == 0 {
		return 0
	}
	return float64(b.Completed) / float64(b.Reps)
}

// RunStats executes reps repetitions through RunReduce and folds each result
// into a BatchStats as it is produced: memory is O(1) in reps while the
// repetitions themselves are bit-identical to RunBatch's. The exact
// statistics (mean, variance, min, max, completion rate) match a RunBatch
// aggregation up to floating-point accumulation order; the quantiles are P²
// estimates, not exact order statistics — callers needing exact quantiles
// over the full sample use RunReduce and collect the values themselves.
func (e Engine) RunStats(sc Scenario, reps int) (*BatchStats, error) {
	return e.RunStatsCtx(context.Background(), sc, reps)
}

// RunStatsCtx is RunStats under a context, with RunReduceCtx's cancellation
// semantics: a cancelled run returns ctx.Err() and no BatchStats.
func (e Engine) RunStatsCtx(ctx context.Context, sc Scenario, reps int) (*BatchStats, error) {
	b := &BatchStats{SpreadTime: stats.NewStream(0.5, 0.9)}
	err := e.RunReduceCtx(ctx, sc, reps, func(rep int, res *sim.Result) error {
		b.SpreadTime.Add(res.SpreadTime)
		if res.Completed {
			b.Completed++
		}
		b.Reps++
		return nil
	})
	if err != nil {
		return nil, err
	}
	return b, nil
}
