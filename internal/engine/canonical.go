package engine

import (
	"encoding/json"
	"fmt"

	"dynamicrumor/internal/gen"
	"dynamicrumor/internal/sim"
)

// Canonical renders the scenario in its canonical byte encoding: two
// scenarios that describe the same simulation — regardless of JSON key
// order, whitespace, number spelling (512 vs 5.12e2), or explicitly spelled
// defaults — canonicalize to identical bytes. This is what makes a content
// hash over the encoding a stable cache key (see internal/service).
//
// The encoding is compact JSON with a fixed field order, sorted params keys
// (encoding/json sorts map keys), and scenario-level defaults normalized:
//
//   - Name is dropped: it labels reports and never influences execution, so
//     two runs differing only in label share a cache entry.
//   - Protocol is always spelled out ("" normalizes to "async").
//   - Mode push-pull — the default — is dropped; push and pull are kept.
//   - ClockRate 1 is dropped (the simulators treat 0 and 1 identically).
//   - MaxTime/MaxRounds/Trace zero values are dropped.
//   - Stream 1 is dropped (0 and 1 both select the v1 discipline), so every
//     v1 scenario keeps the byte encoding it had before stream versions
//     existed; stream 2 is kept — v2 ensembles are statistically, not
//     byte-wise, equivalent, so they must not share a cache entry with v1.
//
// Params are canonicalized only at the spelling level (key order, float
// formatting); a family parameter explicitly set to its documented default
// is intentionally kept — defaults live in the family builders and are not
// re-derived here.
//
// Canonicalization is idempotent: Parse(Canonical(sc)) canonicalizes to the
// same bytes. Scenarios carrying a custom network factory are rejected with
// ErrNotSerializable, invalid scenarios with their validation error.
func Canonical(sc Scenario) ([]byte, error) {
	if sc.Network.Custom != nil {
		return nil, ErrNotSerializable
	}
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	form := canonicalForm{
		Network:   canonicalNetwork{Family: sc.Network.Family, Params: sc.Network.Params},
		Protocol:  sc.Protocol.Normalize(),
		Start:     sc.Start,
		ClockRate: sc.ClockRate,
		MaxTime:   sc.MaxTime,
		MaxRounds: sc.MaxRounds,
		Trace:     sc.Trace,
	}
	if m := sc.Mode; m != 0 && m != sim.PushPull {
		form.Mode = m
	}
	if form.ClockRate == 1 {
		form.ClockRate = 0
	}
	if sc.Stream >= sim.StreamV2 {
		form.Stream = sc.Stream
	}
	data, err := json.Marshal(form)
	if err != nil {
		return nil, fmt.Errorf("engine: canonicalize scenario: %w", err)
	}
	return data, nil
}

// CanonicalizeJSON parses a JSON scenario document (strictly — unknown
// fields are rejected, exactly as Parse rejects them) and returns the decoded
// scenario together with its canonical encoding.
func CanonicalizeJSON(data []byte) (Scenario, []byte, error) {
	sc, err := Parse(data)
	if err != nil {
		return Scenario{}, nil, err
	}
	canon, err := Canonical(sc)
	if err != nil {
		return Scenario{}, nil, err
	}
	return sc, canon, nil
}

// canonicalForm mirrors Scenario with the canonical field order and without
// the Name label. encoding/json emits struct fields in declaration order and
// map keys sorted, which together with the normalization in Canonical makes
// the marshalled bytes a canonical form.
type canonicalForm struct {
	Network   canonicalNetwork `json:"network"`
	Protocol  ProtocolKind     `json:"protocol"`
	Mode      sim.Mode         `json:"mode,omitempty"`
	Start     *int             `json:"start,omitempty"`
	ClockRate float64          `json:"clock_rate,omitempty"`
	MaxTime   float64          `json:"max_time,omitempty"`
	MaxRounds int              `json:"max_rounds,omitempty"`
	Trace     bool             `json:"trace,omitempty"`
	Stream    int              `json:"stream,omitempty"`
}

// canonicalNetwork is NetworkSpec without the (unserializable) custom
// factory.
type canonicalNetwork struct {
	Family string     `json:"family"`
	Params gen.Params `json:"params,omitempty"`
}
