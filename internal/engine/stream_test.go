package engine

import (
	"bytes"
	"strings"
	"testing"

	"dynamicrumor/internal/sim"
	"dynamicrumor/internal/stats"
)

func streamScenario(stream int) Scenario {
	return Scenario{
		Network: NetworkSpec{Family: "clique", Params: Params{"n": 24}},
		Stream:  stream,
	}
}

func TestStreamValidation(t *testing.T) {
	if err := streamScenario(1).Validate(); err != nil {
		t.Fatalf("stream 1: %v", err)
	}
	if err := streamScenario(2).Validate(); err != nil {
		t.Fatalf("stream 2: %v", err)
	}
	if err := streamScenario(3).Validate(); err == nil || !strings.Contains(err.Error(), "stream") {
		t.Fatalf("stream 3: got %v, want a stream-version error", err)
	}
	for _, kind := range []ProtocolKind{ProtocolSync, ProtocolFlooding} {
		sc := streamScenario(2)
		sc.Protocol = kind
		if err := sc.Validate(); err == nil || !strings.Contains(err.Error(), "stream") {
			t.Fatalf("%s with stream 2: got %v, want a stream-applies-to-async error", kind, err)
		}
	}
}

// TestStreamCanonicalStability pins the cache-key contract: stream 0 and
// stream 1 canonicalize to the exact bytes pre-stream scenarios produced
// (v1 cache entries survive the upgrade), while stream 2 gets its own key.
func TestStreamCanonicalStability(t *testing.T) {
	legacy, err := Canonical(streamScenario(0))
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(legacy, []byte("stream")) {
		t.Fatalf("v1 canonical form mentions stream: %s", legacy)
	}
	v1, err := Canonical(streamScenario(1))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(legacy, v1) {
		t.Fatalf("explicit stream 1 changed the canonical form:\n%s\n%s", legacy, v1)
	}
	v2, err := Canonical(streamScenario(2))
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(legacy, v2) {
		t.Fatal("stream 2 shares the v1 canonical form (cache collision)")
	}
	if !bytes.Contains(v2, []byte(`"stream":2`)) {
		t.Fatalf("v2 canonical form does not spell the stream version: %s", v2)
	}
}

// TestStreamV2DeterministicAcrossParallelismAndChunks: v2 changes the random
// stream, not the determinism contract — a v2 ensemble is bit-identical for
// every parallelism and chunk size.
func TestStreamV2DeterministicAcrossParallelismAndChunks(t *testing.T) {
	sc := streamScenario(2)
	const reps = 40
	ref, err := Engine{Parallelism: 1, Seed: 11}.RunBatch(sc, reps)
	if err != nil {
		t.Fatal(err)
	}
	for _, par := range []int{3, 8} {
		for _, chunk := range []int{0, 1, 5} {
			ens, err := Engine{Parallelism: par, Seed: 11, ChunkSize: chunk}.RunBatch(sc, reps)
			if err != nil {
				t.Fatal(err)
			}
			for i := range ens.Results {
				if ens.Results[i].SpreadTime != ref.Results[i].SpreadTime {
					t.Fatalf("par=%d chunk=%d: rep %d spread time %v, want %v",
						par, chunk, i, ens.Results[i].SpreadTime, ref.Results[i].SpreadTime)
				}
			}
			// The reduce path must agree rep for rep too — chunked reduction
			// with the recycled result ring is where a stale-slot bug would
			// show up.
			i := 0
			err = Engine{Parallelism: par, Seed: 11, ChunkSize: chunk}.RunReduce(sc, reps, func(rep int, res *sim.Result) error {
				if res.SpreadTime != ref.Results[rep].SpreadTime {
					t.Fatalf("par=%d chunk=%d: reduced rep %d spread time %v, want %v",
						par, chunk, rep, res.SpreadTime, ref.Results[rep].SpreadTime)
				}
				i++
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			if i != reps {
				t.Fatalf("par=%d chunk=%d: reduced %d reps, want %d", par, chunk, i, reps)
			}
		}
	}
}

// TestStreamV2StatisticallyMatchesV1AtEngineLevel is a fast engine-level
// sanity check that the two stream versions draw from the same spread-time
// law; the thorough multi-family gate lives in internal/statcheck.
func TestStreamV2StatisticallyMatchesV1AtEngineLevel(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical comparison is slow")
	}
	const reps = 300
	collect := func(stream int) []float64 {
		out := make([]float64, 0, reps)
		err := Engine{Parallelism: 1, Seed: 5}.RunReduce(streamScenario(stream), reps, func(rep int, res *sim.Result) error {
			out = append(out, res.SpreadTime)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	v1, v2 := collect(1), collect(2)
	if d := stats.KSDistance(v1, v2); d > 0.12 {
		t.Fatalf("KS distance between stream versions = %v (means %.3f vs %.3f)",
			d, stats.Mean(v1), stats.Mean(v2))
	}
}
