package engine

import (
	"runtime"
	"testing"

	"dynamicrumor/internal/dynamic"
	"dynamicrumor/internal/gen"
	"dynamicrumor/internal/sim"
	"dynamicrumor/internal/xrand"
)

// spreadTimes runs a batch and extracts the per-repetition spread times.
func spreadTimes(t *testing.T, eng Engine, sc Scenario, reps int) []float64 {
	t.Helper()
	ens, err := eng.RunBatch(sc, reps)
	if err != nil {
		t.Fatal(err)
	}
	return ens.SpreadTimes()
}

// TestSharedStaticMatchesPerRepBuild is the batch-compilation identity gate:
// a deterministic static family (compiled once, shared by every worker) must
// produce byte-identical ensembles to an equivalent custom factory that
// builds a fresh network every repetition — across seeds and parallelism
// levels.
func TestSharedStaticMatchesPerRepBuild(t *testing.T) {
	perRep := func(*xrand.RNG) (dynamic.Network, int, error) {
		return dynamic.NewStatic(gen.Cycle(96)), 0, nil
	}
	for _, seed := range []uint64{3, 20200424} {
		var want []float64
		for _, par := range []int{1, 3, 8} {
			eng := Engine{Seed: seed, Parallelism: par}
			shared := spreadTimes(t, eng, Scenario{
				Network: NetworkSpec{Family: "cycle", Params: gen.Params{"n": 96}},
			}, 24)
			fresh := spreadTimes(t, eng, Scenario{
				Network: NetworkSpec{Custom: perRep},
			}, 24)
			if len(shared) != len(fresh) {
				t.Fatal("rep count mismatch")
			}
			for i := range shared {
				if shared[i] != fresh[i] {
					t.Fatalf("seed %d parallelism %d rep %d: shared %v != per-rep %v",
						seed, par, i, shared[i], fresh[i])
				}
			}
			if want == nil {
				want = shared
			} else {
				for i := range shared {
					if shared[i] != want[i] {
						t.Fatalf("seed %d: parallelism %d diverged at rep %d", seed, par, i)
					}
				}
			}
		}
	}
}

// TestRecycledDynamicMatchesPerRepBuild pins the Reset reuse path: a dynamic
// family recycled through dynamic.Reusable must reproduce the
// build-per-repetition ensembles bit for bit.
func TestRecycledDynamicMatchesPerRepBuild(t *testing.T) {
	perRep := func(rng *xrand.RNG) (dynamic.Network, int, error) {
		net, err := dynamic.NewDichotomyG2(60, rng)
		if err != nil {
			return nil, 0, err
		}
		return net, net.StartVertex(), nil
	}
	for _, par := range []int{1, 4, 7} {
		eng := Engine{Seed: 11, Parallelism: par}
		recycled := spreadTimes(t, eng, Scenario{
			Network: NetworkSpec{Family: "dynamic-star", Params: gen.Params{"n": 61}},
		}, 20)
		fresh := spreadTimes(t, eng, Scenario{Network: NetworkSpec{Custom: perRep}}, 20)
		for i := range recycled {
			if recycled[i] != fresh[i] {
				t.Fatalf("parallelism %d rep %d: recycled %v != fresh %v", par, i, recycled[i], fresh[i])
			}
		}
	}
}

// TestRecycledRandomStaticMatchesPerRepBuild pins the worker-local builder
// path: a random static family rebuilt through gen.BuildInto must match a
// factory that allocates a fresh graph per repetition.
func TestRecycledRandomStaticMatchesPerRepBuild(t *testing.T) {
	perRep := func(rng *xrand.RNG) (dynamic.Network, int, error) {
		return dynamic.NewStatic(gen.ErdosRenyi(150, 0.05, rng)), 0, nil
	}
	for _, par := range []int{1, 3, 8} {
		eng := Engine{Seed: 7, Parallelism: par}
		recycled := spreadTimes(t, eng, Scenario{
			Network: NetworkSpec{Family: "er", Params: gen.Params{"n": 150, "p": 0.05}},
		}, 24)
		fresh := spreadTimes(t, eng, Scenario{Network: NetworkSpec{Custom: perRep}}, 24)
		for i := range recycled {
			if recycled[i] != fresh[i] {
				t.Fatalf("parallelism %d rep %d: recycled %v != fresh %v", par, i, recycled[i], fresh[i])
			}
		}
	}
}

// TestRunReduceMatchesRunBatch pins that the streaming entry point reduces
// exactly the results RunBatch materializes, in repetition order, at every
// parallelism.
func TestRunReduceMatchesRunBatch(t *testing.T) {
	scenarios := []Scenario{
		{Network: NetworkSpec{Family: "cycle", Params: gen.Params{"n": 64}}},
		{Network: NetworkSpec{Family: "er", Params: gen.Params{"n": 100, "p": 0.06}}, Protocol: ProtocolSync},
		{Network: NetworkSpec{Family: "dynamic-star", Params: gen.Params{"n": 41}}},
		{Network: NetworkSpec{Family: "torus", Params: gen.Params{"rows": 8, "cols": 8}}, Protocol: ProtocolFlooding},
	}
	for _, sc := range scenarios {
		want, err := Engine{Seed: 5}.RunBatch(sc, 12)
		if err != nil {
			t.Fatal(err)
		}
		for _, par := range []int{1, 4} {
			eng := Engine{Seed: 5, Parallelism: par}
			n := 0
			err := eng.RunReduce(sc, 12, func(rep int, res *sim.Result) error {
				w := want.Results[rep]
				if res.SpreadTime != w.SpreadTime || res.Informed != w.Informed ||
					res.Steps != w.Steps || res.Events != w.Events || res.Completed != w.Completed {
					t.Fatalf("%s parallelism %d rep %d: reduce saw %+v, want %+v",
						sc.Network.Family, par, rep, res, w)
				}
				if rep != n {
					t.Fatalf("reduce out of order: got rep %d, want %d", rep, n)
				}
				n++
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			if n != 12 {
				t.Fatalf("reduced %d reps, want 12", n)
			}
		}
	}
}

// TestRunStatsMatchesEnsembleAggregates checks the streaming aggregate
// against the materializing aggregation (exact fields only; quantiles are
// estimates and are checked for plausibility).
func TestRunStatsMatchesEnsembleAggregates(t *testing.T) {
	sc := Scenario{Network: NetworkSpec{Family: "clique", Params: gen.Params{"n": 200}}}
	ens, err := Engine{Seed: 2}.RunBatch(sc, 60)
	if err != nil {
		t.Fatal(err)
	}
	st, err := Engine{Seed: 2}.RunStats(sc, 60)
	if err != nil {
		t.Fatal(err)
	}
	if st.Reps != 60 || st.SpreadTime.N() != 60 {
		t.Fatalf("stats cover %d/%d reps, want 60", st.Reps, st.SpreadTime.N())
	}
	mean := ens.MeanSpreadTime()
	if d := st.SpreadTime.Mean() - mean; d > 1e-9 || d < -1e-9 {
		t.Fatalf("streaming mean %v != ensemble mean %v", st.SpreadTime.Mean(), mean)
	}
	min, max := ens.MinMaxSpreadTime()
	if st.SpreadTime.Min() != min || st.SpreadTime.Max() != max {
		t.Fatal("streaming extremes disagree with the ensemble")
	}
	if st.CompletionRate() != ens.CompletionRate() {
		t.Fatal("completion rates disagree")
	}
	med := st.SpreadTime.QuantileEstimate(0)
	if med < min || med > max {
		t.Fatalf("median estimate %v outside [%v, %v]", med, min, max)
	}
}

// TestRunReduceSteadyStateAllocsShared is the allocation gate for the shared
// deterministic-static path: growing the repetition count must not grow the
// allocation count, i.e. steady-state repetitions allocate nothing. Serial
// workers make the measurement exact.
func TestRunReduceSteadyStateAllocsShared(t *testing.T) {
	testRunReduceSteadyStateAllocs(t, Scenario{
		Network: NetworkSpec{Family: "cycle", Params: gen.Params{"n": 256}},
	})
}

// TestRunReduceSteadyStateAllocsRecycledRandom is the same gate for the
// recycled random-static path (worker-local builder + gen.BuildInto).
func TestRunReduceSteadyStateAllocsRecycledRandom(t *testing.T) {
	testRunReduceSteadyStateAllocs(t, Scenario{
		Network: NetworkSpec{Family: "er", Params: gen.Params{"n": 256, "p": 0.03}},
	})
}

// TestRunReduceSteadyStateAllocsRecycledExpander covers the emitter path
// that needs the per-worker permutation scratch.
func TestRunReduceSteadyStateAllocsRecycledExpander(t *testing.T) {
	testRunReduceSteadyStateAllocs(t, Scenario{
		Network: NetworkSpec{Family: "expander", Params: gen.Params{"n": 200, "degree": 6}},
	})
}

// TestRunReduceSteadyStateAllocsRecycledDynamic covers the dynamic
// Reset-reuse path.
func TestRunReduceSteadyStateAllocsRecycledDynamic(t *testing.T) {
	testRunReduceSteadyStateAllocs(t, Scenario{
		Network: NetworkSpec{Family: "dynamic-star", Params: gen.Params{"n": 129}},
	})
}

func testRunReduceSteadyStateAllocs(t *testing.T, sc Scenario) {
	t.Helper()
	eng := Engine{Seed: 31, Parallelism: 1}
	run := func(reps int) float64 {
		return testing.AllocsPerRun(3, func() {
			err := eng.RunReduce(sc, reps, func(int, *sim.Result) error { return nil })
			if err != nil {
				t.Fatal(err)
			}
		})
	}
	run(8) // warm any lazily sized buffers outside the measured runs
	base := run(32)
	grown := run(96)
	// 64 extra repetitions; random families may ratchet a buffer once in a
	// blue moon, so allow a hair of slack rather than exact equality.
	if grown-base > 2 {
		t.Fatalf("allocations grow with reps: %d reps -> %.1f allocs, %d reps -> %.1f allocs (per-rep %.3f, want ~0)",
			32, base, 96, grown, (grown-base)/64)
	}
}

// TestRunReduceConstantMemory is the memory-ceiling check of the streaming
// path: 10⁵ repetitions must complete without accumulating per-repetition
// garbage — total heap churn stays bounded by a constant, not by reps.
func TestRunReduceConstantMemory(t *testing.T) {
	if testing.Short() {
		t.Skip("10⁵-repetition memory ceiling is not a -short test")
	}
	sc := Scenario{Network: NetworkSpec{Family: "clique", Params: gen.Params{"n": 24}}}
	eng := Engine{Seed: 13, Parallelism: 1}
	reduce := func(int, *sim.Result) error { return nil }
	// Warm every lazily grown buffer, then measure cumulative allocation.
	if err := eng.RunReduce(sc, 100, reduce); err != nil {
		t.Fatal(err)
	}
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	if err := eng.RunReduce(sc, 100000, reduce); err != nil {
		t.Fatal(err)
	}
	runtime.ReadMemStats(&after)
	const ceiling = 1 << 20 // 1 MiB for compile + scratch warmup, vs ~2 GiB if results were retained
	if churn := after.TotalAlloc - before.TotalAlloc; churn > ceiling {
		t.Fatalf("10⁵-rep RunReduce allocated %d bytes total, want <= %d (O(1) in reps)", churn, ceiling)
	}
}
