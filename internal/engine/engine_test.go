package engine

import (
	"errors"
	"reflect"
	"testing"

	"dynamicrumor/internal/dynamic"
	"dynamicrumor/internal/gen"
	"dynamicrumor/internal/runner"
	"dynamicrumor/internal/sim"
	"dynamicrumor/internal/xrand"
)

// TestRunBatchDeterministicAcrossParallelism mirrors the PR 1 runner
// determinism test at the engine level: the same seed must produce
// bit-identical ensembles for every parallelism value, including traces.
func TestRunBatchDeterministicAcrossParallelism(t *testing.T) {
	scenarios := []Scenario{
		{Network: NetworkSpec{Family: "clique", Params: Params{"n": 64}}, Trace: true},
		{Network: NetworkSpec{Family: "expander", Params: Params{"n": 96, "degree": 6}}, Protocol: ProtocolSync},
		{Network: NetworkSpec{Family: "dynamic-star", Params: Params{"n": 48}}, Protocol: ProtocolAsync},
		{Network: NetworkSpec{Family: "edge-markovian", Params: Params{"n": 40, "p": 0.1, "q": 0.3}}, Protocol: ProtocolFlooding},
	}
	const reps = 12
	for _, sc := range scenarios {
		ref, err := Engine{Parallelism: 1, Seed: 42}.RunBatch(sc, reps)
		if err != nil {
			t.Fatalf("%s/%s serial: %v", sc.Network.Family, sc.Protocol, err)
		}
		for _, p := range []int{0, 2, 3, 8} {
			got, err := Engine{Parallelism: p, Seed: 42}.RunBatch(sc, reps)
			if err != nil {
				t.Fatalf("%s parallelism %d: %v", sc.Network.Family, p, err)
			}
			for i := range ref.Results {
				if !reflect.DeepEqual(ref.Results[i], got.Results[i]) {
					t.Fatalf("%s parallelism %d: rep %d diverged from serial run:\nserial   %+v\nparallel %+v",
						sc.Network.Family, p, i, ref.Results[i], got.Results[i])
				}
			}
		}
	}
}

// TestRunBatchMatchesHistoricalSerialLoop pins the RNG stream discipline:
// RunBatch must consume randomness exactly like the historical hand-written
// loop (network from sub.Split(1), protocol from sub.Split(2), sub = the
// rep's runner stream), so pre-engine results remain reproducible forever.
func TestRunBatchMatchesHistoricalSerialLoop(t *testing.T) {
	const (
		seed = 7
		n    = 80
		reps = 9
	)
	want := make([]float64, reps)
	base := xrand.New(seed)
	for rep := 0; rep < reps; rep++ {
		sub := base.Split(uint64(rep) + 1)
		g := gen.Expander(n, 6, sub.Split(1))
		res, err := sim.RunAsync(dynamic.NewStatic(g), sim.AsyncOptions{Start: 0}, sub.Split(2))
		if err != nil {
			t.Fatal(err)
		}
		want[rep] = res.SpreadTime
	}

	ens, err := Engine{Seed: seed}.RunBatch(Scenario{
		Network: NetworkSpec{Family: "expander", Params: Params{"n": n, "degree": 6}},
	}, reps)
	if err != nil {
		t.Fatal(err)
	}
	if got := ens.SpreadTimes(); !reflect.DeepEqual(got, want) {
		t.Fatalf("engine spread times %v\nwant (historical loop) %v", got, want)
	}
}

// TestScenarioJSONRoundTripIdenticalEnsemble proves the codec is lossless
// where it matters: Scenario → JSON → Scenario must produce a bit-identical
// ensemble under the same engine.
func TestScenarioJSONRoundTripIdenticalEnsemble(t *testing.T) {
	scenarios := []Scenario{
		{
			Name:    "clique-async-pushpull",
			Network: NetworkSpec{Family: "clique", Params: Params{"n": 72}},
			Mode:    sim.PushPull,
			Trace:   true,
		},
		{
			Name:      "gnrho-push-capped",
			Network:   NetworkSpec{Family: "gnrho", Params: Params{"n": 64, "rho": 0.5}},
			Protocol:  ProtocolAsync,
			Mode:      sim.PushOnly,
			ClockRate: 2,
			MaxTime:   500,
		},
		{
			Name:      "star-sync-pull-start0",
			Network:   NetworkSpec{Family: "star", Params: Params{"n": 65}},
			Protocol:  ProtocolSync,
			Mode:      sim.PullOnly,
			Start:     StartAt(0),
			MaxRounds: 300,
			Trace:     true,
		},
		{
			Name:     "mobile-flooding",
			Network:  NetworkSpec{Family: "mobile", Params: Params{"n": 50, "side": 4}},
			Protocol: ProtocolFlooding,
		},
	}
	eng := Engine{Parallelism: 3, Seed: 20200424}
	const reps = 8
	for _, sc := range scenarios {
		want, err := eng.RunBatch(sc, reps)
		if err != nil {
			t.Fatalf("%s: %v", sc.Name, err)
		}
		data, err := Encode(sc)
		if err != nil {
			t.Fatalf("%s: encode: %v", sc.Name, err)
		}
		back, err := Parse(data)
		if err != nil {
			t.Fatalf("%s: parse: %v\nJSON:\n%s", sc.Name, err, data)
		}
		if !reflect.DeepEqual(back, sc) {
			t.Fatalf("%s: scenario did not round-trip:\nbefore %+v\nafter  %+v\nJSON:\n%s", sc.Name, sc, back, data)
		}
		got, err := eng.RunBatch(back, reps)
		if err != nil {
			t.Fatalf("%s: rerun: %v", sc.Name, err)
		}
		if !reflect.DeepEqual(got.Results, want.Results) {
			t.Fatalf("%s: ensemble after JSON round-trip diverged", sc.Name)
		}
	}
}

// StartAt mirrors the public helper; defined here to keep the internal
// package free of the rumor facade.
func StartAt(v int) *int { return &v }

func TestRunEqualsFirstBatchResult(t *testing.T) {
	sc := Scenario{Network: NetworkSpec{Family: "cycle", Params: Params{"n": 40}}, Protocol: ProtocolSync}
	eng := Engine{Seed: 5}
	single, err := eng.Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	batch, err := eng.RunBatch(sc, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(single, batch.Results[0]) {
		t.Fatalf("Run = %+v, want first batch result %+v", single, batch.Results[0])
	}
}

func TestRunBatchCustomFactory(t *testing.T) {
	calls := 0
	sc := Scenario{Network: NetworkSpec{Custom: func(rng *xrand.RNG) (dynamic.Network, int, error) {
		calls++
		return dynamic.NewStatic(gen.Star(30, 0)), 1, nil
	}}}
	ens, err := Engine{Parallelism: 1, Seed: 3}.RunBatch(sc, 5)
	if err != nil {
		t.Fatal(err)
	}
	if calls != 5 {
		t.Fatalf("custom factory called %d times, want once per repetition (5)", calls)
	}
	if ens.CompletionRate() != 1 {
		t.Fatalf("completion rate %v, want 1", ens.CompletionRate())
	}
	if _, err := Encode(sc); err != ErrNotSerializable {
		t.Fatalf("Encode(custom scenario) error = %v, want ErrNotSerializable", err)
	}
}

func TestRunBatchErrors(t *testing.T) {
	eng := Engine{}
	if _, err := eng.RunBatch(Scenario{Network: NetworkSpec{Family: "clique", Params: Params{"n": 8}}}, 0); err == nil {
		t.Fatal("RunBatch with 0 reps must error")
	}
	if _, err := eng.RunBatch(Scenario{}, 4); err == nil {
		t.Fatal("RunBatch with an empty network spec must error")
	}
	if _, err := eng.RunBatch(Scenario{Network: NetworkSpec{Family: "no-such-family", Params: Params{"n": 8}}}, 4); err == nil {
		t.Fatal("RunBatch with an unknown family must error")
	}
	if _, err := eng.RunBatch(Scenario{
		Network:  NetworkSpec{Family: "clique", Params: Params{"n": 8}},
		Protocol: ProtocolKind("gossip"),
	}, 4); err == nil {
		t.Fatal("RunBatch with an unknown protocol must error")
	}
	// An out-of-range start surfaces the simulator's error wrapped in a
	// RepError identifying the repetition.
	_, err := eng.RunBatch(Scenario{
		Network: NetworkSpec{Family: "clique", Params: Params{"n": 8}},
		Start:   StartAt(99),
	}, 4)
	var re *runner.RepError
	if !errors.As(err, &re) {
		t.Fatalf("out-of-range start: error %v, want a *runner.RepError", err)
	}
	if !errors.Is(err, sim.ErrInvalidStart) {
		t.Fatalf("out-of-range start: error %v does not unwrap to sim.ErrInvalidStart", err)
	}
}

func TestFamiliesListsStaticAndDynamic(t *testing.T) {
	fams := Families()
	seen := map[string]bool{}
	for _, f := range fams {
		seen[f] = true
	}
	for _, want := range []string{"clique", "star", "expander", "er", "gnrho", "absgnrho", "dynamic-star", "dichotomy-g1", "edge-markovian", "mobile"} {
		if !seen[want] {
			t.Fatalf("Families() = %v, missing %q", fams, want)
		}
	}
}
