package engine

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dynamicrumor/internal/dynamic"
	"dynamicrumor/internal/sim"
	"dynamicrumor/internal/xrand"
)

// TestCanonicalIdempotentOverCorpus is the round-trip property test over the
// committed scenario corpus: decode → canonicalize must be idempotent, i.e.
// re-parsing the canonical bytes and canonicalizing again reproduces them.
func TestCanonicalIdempotentOverCorpus(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("..", "..", "examples", "scenarios", "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("no scenario corpus found under examples/scenarios")
	}
	for _, path := range files {
		t.Run(filepath.Base(path), func(t *testing.T) {
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			sc, c1, err := CanonicalizeJSON(data)
			if err != nil {
				t.Fatalf("canonicalize: %v", err)
			}
			sc2, c2, err := CanonicalizeJSON(c1)
			if err != nil {
				t.Fatalf("re-canonicalize: %v", err)
			}
			if !bytes.Equal(c1, c2) {
				t.Fatalf("not idempotent:\n first: %s\nsecond: %s", c1, c2)
			}
			// The canonical form must describe the same simulation: strip the
			// label and the spelled-out defaults the canonical form drops,
			// then compare the validated scenarios field by field.
			sc.Name = ""
			if sc.Mode == sim.PushPull {
				sc.Mode = 0
			}
			if sc.ClockRate == 1 {
				sc.ClockRate = 0
			}
			sc.Protocol = sc2.Protocol // "" and "async" are one protocol
			enc1, err := Encode(sc)
			if err != nil {
				t.Fatal(err)
			}
			enc2, err := Encode(sc2)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(enc1, enc2) {
				t.Fatalf("canonical round-trip changed the scenario:\n%s\nvs\n%s", enc1, enc2)
			}
		})
	}
}

// TestCanonicalSpellingEquivalence: equivalent JSON spellings — permuted
// keys, number formats, explicit defaults, labels — canonicalize to
// identical bytes, while a semantic change does not.
func TestCanonicalSpellingEquivalence(t *testing.T) {
	base := `{"network":{"family":"gnrho","params":{"n":1024,"rho":0.25}},"protocol":"async"}`
	equivalent := []string{
		// Permuted object keys at every level.
		`{"protocol":"async","network":{"params":{"rho":0.25,"n":1024},"family":"gnrho"}}`,
		// Number spellings.
		`{"network":{"family":"gnrho","params":{"n":1.024e3,"rho":2.5e-1}},"protocol":"async"}`,
		// Protocol defaulted instead of spelled out.
		`{"network":{"family":"gnrho","params":{"n":1024,"rho":0.25}}}`,
		// Explicit defaults: push-pull mode, clock rate 1.
		`{"network":{"family":"gnrho","params":{"n":1024,"rho":0.25}},"mode":"push-pull","clock_rate":1}`,
		// A label, which never influences execution.
		`{"name":"my favourite run","network":{"family":"gnrho","params":{"n":1024,"rho":0.25}}}`,
		// Whitespace.
		"{\n  \"network\": {\n    \"family\": \"gnrho\",\n    \"params\": {\"n\": 1024, \"rho\": 0.25}\n  }\n}",
	}
	_, want, err := CanonicalizeJSON([]byte(base))
	if err != nil {
		t.Fatal(err)
	}
	for i, spelling := range equivalent {
		_, got, err := CanonicalizeJSON([]byte(spelling))
		if err != nil {
			t.Fatalf("spelling %d: %v", i, err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("spelling %d canonicalized to\n%s\nwant\n%s", i, got, want)
		}
	}
	for _, changed := range []string{
		`{"network":{"family":"gnrho","params":{"n":1025,"rho":0.25}}}`,
		`{"network":{"family":"gnrho","params":{"n":1024,"rho":0.25}},"mode":"push"}`,
		`{"network":{"family":"gnrho","params":{"n":1024,"rho":0.25}},"trace":true}`,
	} {
		_, got, err := CanonicalizeJSON([]byte(changed))
		if err != nil {
			t.Fatal(err)
		}
		if bytes.Equal(got, want) {
			t.Errorf("semantically different scenario %s canonicalized to the same bytes", changed)
		}
	}
}

// TestCanonicalRejects: unknown fields, invalid scenarios and custom
// factories fail loudly instead of producing a bogus cache key.
func TestCanonicalRejects(t *testing.T) {
	if _, _, err := CanonicalizeJSON([]byte(`{"network":{"family":"clique","params":{"n":8}},"turbo":true}`)); err == nil {
		t.Error("unknown field accepted")
	} else if !strings.Contains(err.Error(), "turbo") {
		t.Errorf("unknown-field error does not name the field: %v", err)
	}
	if _, _, err := CanonicalizeJSON([]byte(`{"network":{"family":"warp","params":{"n":8}}}`)); err == nil {
		t.Error("unknown family accepted")
	}
	custom := Scenario{Network: NetworkSpec{Custom: func(rng *xrand.RNG) (dynamic.Network, int, error) {
		return nil, 0, nil
	}}}
	if _, err := Canonical(custom); err != ErrNotSerializable {
		t.Errorf("custom factory: got %v, want ErrNotSerializable", err)
	}
}

// TestFamilyInfos: every family name appears exactly once, sorted, tagged
// with a kind, and agrees with Families().
func TestFamilyInfos(t *testing.T) {
	infos := FamilyInfos()
	names := Families()
	if len(infos) != len(names) {
		t.Fatalf("FamilyInfos has %d entries, Families %d", len(infos), len(names))
	}
	for i, info := range infos {
		if info.Name != names[i] {
			t.Errorf("entry %d: name %q, want %q", i, info.Name, names[i])
		}
		if info.Kind != "static" && info.Kind != "dynamic" {
			t.Errorf("family %q has kind %q", info.Name, info.Kind)
		}
	}
	for _, want := range []struct{ name, kind string }{
		{"clique", "static"},
		{"dynamic-star", "dynamic"},
		{"gnrho", "dynamic"},
	} {
		found := false
		for _, info := range infos {
			if info.Name == want.name {
				found = info.Kind == want.kind
			}
		}
		if !found {
			t.Errorf("family %q missing or wrong kind (want %s)", want.name, want.kind)
		}
	}
}
