// Package engine provides the batch-first execution layer of the library:
// declarative, JSON-serializable Scenarios describing one simulation setup,
// and an Engine that fans Monte-Carlo repetitions of a scenario across the
// deterministic parallel runner and aggregates the outcomes into an Ensemble.
//
// The engine is the single execution path shared by the public rumor API,
// the E1–E12 experiment suite and cmd/rumorsim, so the determinism contract
// of internal/runner (parallelism is a throughput knob, never an output knob)
// holds everywhere at once.
package engine

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"

	"dynamicrumor/internal/gen"
	"dynamicrumor/internal/sim"
)

// ProtocolKind names one of the spreading algorithms a scenario can select.
type ProtocolKind string

// The spreading algorithms understood by scenarios.
const (
	// ProtocolAsync is the asynchronous push-pull process of Definition 1.
	ProtocolAsync ProtocolKind = "async"
	// ProtocolSync is the synchronous round-based push-pull process.
	ProtocolSync ProtocolKind = "sync"
	// ProtocolFlooding is synchronous flooding (Mode is ignored).
	ProtocolFlooding ProtocolKind = "flooding"
)

// Normalize maps the empty kind to the default ProtocolAsync.
func (k ProtocolKind) Normalize() ProtocolKind {
	if k == "" {
		return ProtocolAsync
	}
	return k
}

// valid reports whether the kind (after normalization) is known.
func (k ProtocolKind) valid() bool {
	switch k.Normalize() {
	case ProtocolAsync, ProtocolSync, ProtocolFlooding:
		return true
	default:
		return false
	}
}

// Scenario is a declarative description of one simulation setup: which
// network, which protocol, and every option the simulators accept. A scenario
// whose network is given by family name and parameters round-trips through
// JSON; the zero values of all optional fields select the simulator defaults,
// so `{"network": {"family": "clique", "params": {"n": 1000}}}` is a complete
// scenario.
type Scenario struct {
	// Name optionally labels the scenario in reports and files.
	Name string `json:"name,omitempty"`
	// Network selects the dynamic network, by registered family or custom
	// factory.
	Network NetworkSpec `json:"network"`
	// Protocol selects the spreading algorithm; empty means async.
	Protocol ProtocolKind `json:"protocol,omitempty"`
	// Mode selects push-pull (default), push-only or pull-only transfer.
	Mode sim.Mode `json:"mode,omitempty"`
	// Start overrides the family's default start vertex when non-nil.
	Start *int `json:"start,omitempty"`
	// ClockRate is the asynchronous Poisson clock rate (0 means 1).
	ClockRate float64 `json:"clock_rate,omitempty"`
	// MaxTime caps asynchronous simulated time (0 means the 16·n² default).
	MaxTime float64 `json:"max_time,omitempty"`
	// MaxRounds caps synchronous rounds (0 means the 16·n² default).
	MaxRounds int `json:"max_rounds,omitempty"`
	// Trace records a TracePoint per newly informed vertex, enabling
	// Ensemble.SpreadCurve and the time-to-fraction aggregations.
	Trace bool `json:"trace,omitempty"`
	// Stream selects the async sampling discipline: 0 or 1 is the frozen
	// seed-compatible v1 stream (the default — byte-identical outputs across
	// releases), 2 is the faster opt-in v2 discipline, statistically
	// equivalent but not byte-identical (see sim.StreamV2 and
	// internal/statcheck). Only the async protocol has stream versions.
	Stream int `json:"stream,omitempty"`
}

// Validate checks that the scenario is executable: a known protocol kind, a
// network given by known family or custom factory, and in-range options.
func (s Scenario) Validate() error {
	if !s.Protocol.valid() {
		return fmt.Errorf("engine: unknown protocol %q (want async, sync or flooding)", string(s.Protocol))
	}
	switch s.Mode {
	case 0, sim.PushPull, sim.PushOnly, sim.PullOnly:
	default:
		return fmt.Errorf("engine: invalid mode %d", int(s.Mode))
	}
	if s.Start != nil && *s.Start < 0 {
		return fmt.Errorf("engine: start vertex %d is negative", *s.Start)
	}
	if s.ClockRate < 0 {
		return fmt.Errorf("engine: clock rate %v is negative", s.ClockRate)
	}
	if s.MaxTime < 0 {
		return fmt.Errorf("engine: max time %v is negative", s.MaxTime)
	}
	if s.MaxRounds < 0 {
		return fmt.Errorf("engine: max rounds %d is negative", s.MaxRounds)
	}
	switch s.Stream {
	case 0, sim.StreamV1, sim.StreamV2:
	default:
		return fmt.Errorf("engine: unknown stream version %d (want 1 or 2)", s.Stream)
	}
	// Reject options the selected protocol would silently ignore — the same
	// fail-loudly stance the codec takes on unknown fields.
	switch kind := s.Protocol.Normalize(); kind {
	case ProtocolAsync:
		if s.MaxRounds != 0 {
			return fmt.Errorf("engine: max_rounds applies to sync and flooding, not %s (use max_time)", kind)
		}
	case ProtocolSync, ProtocolFlooding:
		if s.MaxTime != 0 {
			return fmt.Errorf("engine: max_time applies to async, not %s (use max_rounds)", kind)
		}
		if s.ClockRate != 0 {
			return fmt.Errorf("engine: clock_rate applies to async, not %s", kind)
		}
		if s.Stream != 0 {
			return fmt.Errorf("engine: stream applies to async, not %s", kind)
		}
		if kind == ProtocolFlooding && s.Mode != 0 {
			return fmt.Errorf("engine: mode applies to push-pull protocols, not flooding")
		}
	}
	return s.Network.validate()
}

// protocolFor assembles the sim.Protocol this scenario describes, with the
// concrete start vertex filled in.
func (s Scenario) protocolFor(start int) sim.Protocol {
	switch s.Protocol.Normalize() {
	case ProtocolSync:
		return sim.SyncProtocol{Opts: sim.SyncOptions{
			Start:       start,
			Mode:        s.Mode,
			MaxRounds:   s.MaxRounds,
			RecordTrace: s.Trace,
		}}
	case ProtocolFlooding:
		return sim.FloodingProtocol{Opts: sim.SyncOptions{
			Start:       start,
			MaxRounds:   s.MaxRounds,
			RecordTrace: s.Trace,
		}}
	default:
		return sim.AsyncProtocol{Opts: sim.AsyncOptions{
			Start:         start,
			Mode:          s.Mode,
			ClockRate:     s.ClockRate,
			MaxTime:       s.MaxTime,
			RecordTrace:   s.Trace,
			StreamVersion: s.Stream,
		}}
	}
}

// ErrNotSerializable is returned when encoding a scenario whose network uses
// a custom factory instead of a registered family.
var ErrNotSerializable = errors.New("engine: scenario with a custom network factory cannot be serialized")

// Encode renders the scenario as indented JSON. Scenarios carrying a custom
// network factory cannot round-trip and are rejected with ErrNotSerializable.
func Encode(s Scenario) ([]byte, error) {
	if s.Network.Custom != nil {
		return nil, ErrNotSerializable
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return json.MarshalIndent(s, "", "  ")
}

// Parse decodes and validates a JSON scenario. Unknown fields are rejected so
// that typos in hand-written scenario files fail loudly instead of silently
// selecting defaults.
func Parse(data []byte) (Scenario, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var s Scenario
	if err := dec.Decode(&s); err != nil {
		return Scenario{}, fmt.Errorf("engine: parse scenario: %w", err)
	}
	// One scenario per document: trailing content is a malformed edit
	// (a duplicated paste, a second object), not something to silently drop.
	if dec.More() {
		return Scenario{}, errors.New("engine: parse scenario: trailing content after the scenario object")
	}
	if err := s.Validate(); err != nil {
		return Scenario{}, err
	}
	return s, nil
}

// Load reads and parses a scenario file.
func Load(path string) (Scenario, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Scenario{}, fmt.Errorf("engine: load scenario: %w", err)
	}
	s, err := Parse(data)
	if err != nil {
		return Scenario{}, fmt.Errorf("engine: scenario %s: %w", path, err)
	}
	return s, nil
}

// Params re-exports the parameter map of network specs so callers need not
// import internal/gen.
type Params = gen.Params
