package engine

import (
	"context"
	"testing"

	"dynamicrumor/internal/sim"
)

// repRecord captures the reducer-visible facts of one repetition.
type repRecord struct {
	spread    float64
	completed bool
	informed  int
}

func recordOf(res *sim.Result) repRecord {
	return repRecord{spread: res.SpreadTime, completed: res.Completed, informed: res.Informed}
}

// TestRunReduceRangeMatchesFullRun: splitting an ensemble into ranges and
// executing each with its own engine (any parallelism, any chunking)
// reproduces the full run's per-repetition results bit for bit — the property
// the distributed coordinator's exact merge rests on.
func TestRunReduceRangeMatchesFullRun(t *testing.T) {
	scenarios := []Scenario{
		{Network: NetworkSpec{Family: "gnrho", Params: map[string]float64{"n": 64, "rho": 0.25}}},
		{Network: NetworkSpec{Family: "clique", Params: map[string]float64{"n": 48}}, Protocol: ProtocolSync},
		{Network: NetworkSpec{Family: "dynamic-star", Params: map[string]float64{"n": 40}}},
	}
	const reps = 37
	for _, sc := range scenarios {
		full := Engine{Parallelism: 1, Seed: 7}
		want := make([]repRecord, 0, reps)
		if err := full.RunReduceCtx(context.Background(), sc, reps, func(rep int, res *sim.Result) error {
			want = append(want, recordOf(res))
			return nil
		}); err != nil {
			t.Fatalf("%s: full run: %v", sc.Network.Family, err)
		}

		cuts := []int{0, 5, 6, 20, reps}
		for _, parallelism := range []int{1, 4} {
			got := make([]repRecord, 0, reps)
			for i := 0; i+1 < len(cuts); i++ {
				start, count := cuts[i], cuts[i+1]-cuts[i]
				eng := Engine{Parallelism: parallelism, Seed: 7, ChunkSize: 3}
				if err := eng.RunReduceRangeCtx(context.Background(), sc, start, count, func(rep int, res *sim.Result) error {
					if rep != len(got) {
						t.Fatalf("%s: reducer saw rep %d, want %d", sc.Network.Family, rep, len(got))
					}
					got = append(got, recordOf(res))
					return nil
				}); err != nil {
					t.Fatalf("%s: range [%d,%d): %v", sc.Network.Family, start, start+count, err)
				}
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("%s parallelism %d: rep %d = %+v, want %+v",
						sc.Network.Family, parallelism, i, got[i], want[i])
				}
			}
		}
	}
}

// TestRunReduceRangeValidation pins the argument contract.
func TestRunReduceRangeValidation(t *testing.T) {
	sc := Scenario{Network: NetworkSpec{Family: "clique", Params: map[string]float64{"n": 8}}}
	eng := Engine{Seed: 1}
	discard := func(int, *sim.Result) error { return nil }
	if err := eng.RunReduceRangeCtx(context.Background(), sc, -1, 4, discard); err == nil {
		t.Error("negative start accepted")
	}
	if err := eng.RunReduceRangeCtx(context.Background(), sc, 0, 0, discard); err == nil {
		t.Error("zero count accepted")
	}
}
