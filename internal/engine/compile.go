package engine

import (
	"sort"
	"strconv"
	"strings"
	"sync"

	"dynamicrumor/internal/dynamic"
)

// Compiled is a scenario compiled ahead of execution: validation done, the
// execution strategy selected, and — for deterministic and shareable
// families — the network materialized. A Compiled is immutable and safe for
// concurrent use; one value can back many batches (Engine.RunReduceCompiledCtx)
// without recompiling, which is what lets a parameter sweep pay the scenario
// compilation once per distinct cell shape instead of once per run.
type Compiled struct {
	cs *compiledScenario
}

// Scenario returns the scenario this value was compiled from.
func (c *Compiled) Scenario() Scenario { return c.cs.sc }

// Compile validates the scenario and compiles it for repeated execution.
// Compile(sc) followed by RunReduceCompiledCtx is bit-identical to
// RunReduceCtx(sc): compilation is the same step the engine performs
// internally, only hoisted out so callers can amortize it.
func Compile(sc Scenario) (*Compiled, error) {
	return NewCompileSet().Compile(sc)
}

// CompileSet compiles scenarios while sharing the expensive part — the
// read-only networks of deterministic static families and shareable dynamic
// families — across every scenario compiled through the same set. Two
// scenarios whose network specs are equal (same family, same parameters)
// reuse one built network no matter how they differ in protocol, stream,
// mode or any other execution option; the sweep planner leans on this to
// build each distinct grid network once for the whole sweep.
//
// Sharing is sound precisely because those constructions honor the no-draw
// contract (gen.Family.Deterministic, dynamicFamily.shareable): building
// them consumes no randomness and the built network is immutable, so whether
// one cell's workers or every cell's workers read it is invisible to every
// repetition's RNG stream. Non-shareable families (random static, stateful
// dynamic, custom factories) compile per scenario exactly as before.
//
// A CompileSet is safe for concurrent use.
type CompileSet struct {
	mu   sync.Mutex
	nets map[string]sharedNetwork
}

type sharedNetwork struct {
	net   dynamic.Network
	start int
}

// NewCompileSet returns an empty compile set.
func NewCompileSet() *CompileSet {
	return &CompileSet{nets: make(map[string]sharedNetwork)}
}

// Compile validates and compiles the scenario, reusing any shared network an
// earlier Compile on this set already built for the same network spec.
func (set *CompileSet) Compile(sc Scenario) (*Compiled, error) {
	cs, err := compileScenarioShared(sc, set)
	if err != nil {
		return nil, err
	}
	return &Compiled{cs: cs}, nil
}

// Networks reports how many distinct shared networks the set holds.
func (set *CompileSet) Networks() int {
	set.mu.Lock()
	defer set.mu.Unlock()
	return len(set.nets)
}

// lookupOrBuild returns the cached shared network for the spec, building and
// caching it on first use. A nil set (plain compileScenario) always builds.
func (set *CompileSet) lookupOrBuild(ns NetworkSpec, build func() (dynamic.Network, int, error)) (dynamic.Network, int, error) {
	if set == nil {
		return build()
	}
	key := networkKey(ns)
	set.mu.Lock()
	if e, ok := set.nets[key]; ok {
		set.mu.Unlock()
		return e.net, e.start, nil
	}
	set.mu.Unlock()
	// Build outside the lock: constructions can be large, and two concurrent
	// first builds of the same spec are merely redundant, never wrong — the
	// networks are deterministic, so last-writer-wins stores equal values.
	net, start, err := build()
	if err != nil {
		return nil, 0, err
	}
	set.mu.Lock()
	if e, ok := set.nets[key]; ok {
		// A concurrent build won the race; share its instance so every later
		// cell reads one network.
		net, start = e.net, e.start
	} else {
		set.nets[key] = sharedNetwork{net: net, start: start}
	}
	set.mu.Unlock()
	return net, start, nil
}

// networkKey renders a declarative network spec as a map key: the family
// name plus the sorted parameters in their shortest round-trip float
// spelling. Equal keys mean gen-level equal constructions.
func networkKey(ns NetworkSpec) string {
	keys := make([]string, 0, len(ns.Params))
	for k := range ns.Params {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteString(ns.Family)
	for _, k := range keys {
		b.WriteByte(0)
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(strconv.FormatFloat(ns.Params[k], 'g', -1, 64))
	}
	return b.String()
}
