package engine

import (
	"context"
	"testing"

	"dynamicrumor/internal/sim"
)

// TestCompileSetSharesDeterministicNetworks pins the sweep amortization
// contract: scenarios differing only in execution options (protocol, seed is
// external) compiled through one set share one built network instance, and
// distinct network specs do not.
func TestCompileSetSharesDeterministicNetworks(t *testing.T) {
	set := NewCompileSet()
	async := Scenario{Network: NetworkSpec{Family: "clique", Params: Params{"n": 64}}}
	sync := Scenario{Network: NetworkSpec{Family: "clique", Params: Params{"n": 64}}, Protocol: ProtocolSync}
	other := Scenario{Network: NetworkSpec{Family: "clique", Params: Params{"n": 128}}}

	ca, err := set.Compile(async)
	if err != nil {
		t.Fatal(err)
	}
	cb, err := set.Compile(sync)
	if err != nil {
		t.Fatal(err)
	}
	cc, err := set.Compile(other)
	if err != nil {
		t.Fatal(err)
	}
	if ca.cs.shared == nil || cb.cs.shared == nil {
		t.Fatal("deterministic family did not compile to a shared network")
	}
	if ca.cs.shared != cb.cs.shared {
		t.Fatal("equal network specs did not share one built network")
	}
	if ca.cs.shared == cc.cs.shared {
		t.Fatal("distinct network specs must not share a network")
	}
	if got := set.Networks(); got != 2 {
		t.Fatalf("set holds %d networks, want 2", got)
	}

	// The shareable dynamic family participates too.
	d1, err := set.Compile(Scenario{Network: NetworkSpec{Family: "dichotomy-g1", Params: Params{"n": 32}}})
	if err != nil {
		t.Fatal(err)
	}
	d2, err := set.Compile(Scenario{Network: NetworkSpec{Family: "dichotomy-g1", Params: Params{"n": 32}}, Protocol: ProtocolSync})
	if err != nil {
		t.Fatal(err)
	}
	if d1.cs.shared == nil || d1.cs.shared != d2.cs.shared {
		t.Fatal("shareable dynamic family did not share its network across the set")
	}
}

// TestCompileSetKeysDistinguishParams guards the network key: parameter
// values that differ must never collide onto one shared network.
func TestCompileSetKeysDistinguishParams(t *testing.T) {
	a := networkKey(NetworkSpec{Family: "torus", Params: Params{"rows": 8, "cols": 16}})
	b := networkKey(NetworkSpec{Family: "torus", Params: Params{"rows": 16, "cols": 8}})
	if a == b {
		t.Fatalf("key %q does not distinguish swapped params", a)
	}
	c := networkKey(NetworkSpec{Family: "torus", Params: Params{"cols": 16, "rows": 8}})
	if a != c {
		t.Fatal("key must not depend on map iteration order")
	}
}

// TestRunReduceCompiledByteIdentity pins the compiled entry point to the
// plain one: same scenario, same seed, bit-identical reductions — including
// when the compiled value came from a set that shared its network with other
// scenarios, and at several parallelism levels.
func TestRunReduceCompiledByteIdentity(t *testing.T) {
	scenarios := []Scenario{
		{Network: NetworkSpec{Family: "clique", Params: Params{"n": 48}}},
		{Network: NetworkSpec{Family: "clique", Params: Params{"n": 48}}, Protocol: ProtocolSync},
		{Network: NetworkSpec{Family: "gnrho", Params: Params{"n": 64, "rho": 0.5}}},
		{Network: NetworkSpec{Family: "expander", Params: Params{"n": 48, "degree": 4}}},
	}
	set := NewCompileSet()
	const reps = 12
	for si, sc := range scenarios {
		var want []float64
		eng := Engine{Parallelism: 1, Seed: 99}
		if err := eng.RunReduceCtx(context.Background(), sc, reps, func(rep int, res *sim.Result) error {
			want = append(want, res.SpreadTime)
			return nil
		}); err != nil {
			t.Fatalf("scenario %d: plain run: %v", si, err)
		}
		compiled, err := set.Compile(sc)
		if err != nil {
			t.Fatalf("scenario %d: compile: %v", si, err)
		}
		for _, par := range []int{1, 3, 8} {
			var got []float64
			eng := Engine{Parallelism: par, Seed: 99}
			if err := eng.RunReduceCompiledCtx(context.Background(), compiled, reps, func(rep int, res *sim.Result) error {
				got = append(got, res.SpreadTime)
				return nil
			}); err != nil {
				t.Fatalf("scenario %d: compiled run (par %d): %v", si, par, err)
			}
			if len(got) != len(want) {
				t.Fatalf("scenario %d par %d: %d reps reduced, want %d", si, par, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("scenario %d par %d rep %d: compiled %v != plain %v", si, par, i, got[i], want[i])
				}
			}
		}
	}
}
