package engine

import (
	"strings"
	"testing"

	"dynamicrumor/internal/sim"
)

func TestParseMinimalScenario(t *testing.T) {
	sc, err := Parse([]byte(`{"network": {"family": "clique", "params": {"n": 100}}}`))
	if err != nil {
		t.Fatal(err)
	}
	if sc.Protocol.Normalize() != ProtocolAsync {
		t.Fatalf("default protocol = %q, want async", sc.Protocol)
	}
	if sc.Mode != 0 || sc.Start != nil || sc.Trace {
		t.Fatalf("minimal scenario picked up non-defaults: %+v", sc)
	}
}

func TestParseRejectsUnknownFields(t *testing.T) {
	_, err := Parse([]byte(`{"network": {"family": "clique", "params": {"n": 10}}, "protocl": "async"}`))
	if err == nil || !strings.Contains(err.Error(), "protocl") {
		t.Fatalf("typo'd field must be rejected with a naming error, got %v", err)
	}
}

func TestParseRejectsTrailingContent(t *testing.T) {
	_, err := Parse([]byte(`{"network": {"family": "clique", "params": {"n": 10}}} {"network": {"family": "warp"}}`))
	if err == nil {
		t.Fatal("trailing content after the scenario object must be rejected")
	}
}

func TestParseRejectsInvalidScenarios(t *testing.T) {
	cases := []string{
		`{"network": {"family": "warp", "params": {"n": 10}}}`, // unknown family
		`{"network": {}}`, // no family
		`{"network": {"family": "clique"}, "protocol": "telepathy"}`,              // unknown protocol
		`{"network": {"family": "clique", "params": {"n": 10}}, "mode": "shout"}`, // unknown mode
		`{"network": {"family": "clique", "params": {"n": 10}}, "start": -3}`,
		`{"network": {"family": "clique", "params": {"n": 10}}, "max_time": -1}`,
		`{"network": {"family": "clique", "params": {"n": 10}}, "max_rounds": -1}`,
		`{"network": {"family": "clique", "params": {"n": 10}}, "clock_rate": -2}`,
		// Parameter keys the family does not accept fail loudly.
		`{"network": {"family": "gnrho", "params": {"n": 64, "Rho": 0.9}}}`,
		`{"network": {"family": "er", "params": {"n": 64, "prob": 0.1}}}`,
		// Options the selected protocol would silently ignore fail loudly.
		`{"network": {"family": "clique", "params": {"n": 10}}, "max_rounds": 5}`,
		`{"network": {"family": "clique", "params": {"n": 10}}, "protocol": "sync", "max_time": 5}`,
		`{"network": {"family": "clique", "params": {"n": 10}}, "protocol": "sync", "clock_rate": 2}`,
		`{"network": {"family": "clique", "params": {"n": 10}}, "protocol": "flooding", "mode": "push"}`,
	}
	for _, src := range cases {
		if _, err := Parse([]byte(src)); err == nil {
			t.Fatalf("Parse(%s) succeeded, want error", src)
		}
	}
}

func TestModeJSONRoundTrip(t *testing.T) {
	for _, m := range []sim.Mode{0, sim.PushPull, sim.PushOnly, sim.PullOnly} {
		sc := Scenario{
			Network: NetworkSpec{Family: "clique", Params: Params{"n": 10}},
			Mode:    m,
		}
		data, err := Encode(sc)
		if err != nil {
			t.Fatalf("mode %v: %v", m, err)
		}
		back, err := Parse(data)
		if err != nil {
			t.Fatalf("mode %v: %v\nJSON:\n%s", m, err, data)
		}
		if back.Mode != m {
			t.Fatalf("mode %v round-tripped to %v", m, back.Mode)
		}
		// The zero mode must be omitted, named modes must appear by name.
		if m == 0 && strings.Contains(string(data), "mode") {
			t.Fatalf("zero mode serialized: %s", data)
		}
		if m != 0 && !strings.Contains(string(data), m.String()) {
			t.Fatalf("mode %v not serialized by name: %s", m, data)
		}
	}
}

func TestEncodeRejectsInvalidScenario(t *testing.T) {
	if _, err := Encode(Scenario{Network: NetworkSpec{Family: "nope"}}); err == nil {
		t.Fatal("Encode must validate the scenario")
	}
}

func TestLoadMissingFile(t *testing.T) {
	if _, err := Load("/nonexistent/scenario.json"); err == nil {
		t.Fatal("Load of a missing file must error")
	}
}

func TestEnsembleAggregation(t *testing.T) {
	eng := Engine{Parallelism: 2, Seed: 11}
	ens, err := eng.RunBatch(Scenario{
		Network: NetworkSpec{Family: "clique", Params: Params{"n": 50}},
		Trace:   true,
	}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if ens.Reps() != 10 {
		t.Fatalf("Reps() = %d, want 10", ens.Reps())
	}
	if ens.CompletionRate() != 1 {
		t.Fatalf("CompletionRate() = %v, want 1 on a clique", ens.CompletionRate())
	}
	times := ens.SpreadTimes()
	min, max := ens.MinMaxSpreadTime()
	mean := ens.MeanSpreadTime()
	if min <= 0 || max < min || mean < min || mean > max {
		t.Fatalf("inconsistent aggregates: min=%v mean=%v max=%v times=%v", min, mean, max, times)
	}
	if q50, q90 := ens.SpreadTimeQuantile(0.5), ens.SpreadTimeQuantile(0.9); q50 > q90 {
		t.Fatalf("quantiles out of order: q50=%v > q90=%v", q50, q90)
	}
	curve, err := ens.SpreadCurve(16)
	if err != nil {
		t.Fatal(err)
	}
	if len(curve) != 16 {
		t.Fatalf("curve has %d points, want 16", len(curve))
	}
	if last := curve[len(curve)-1]; last.MeanFraction != 1 {
		t.Fatalf("curve must end fully informed, got %+v", last)
	}
	median, q90, err := ens.TimeToFractionQuantiles(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if median <= 0 || q90 < median {
		t.Fatalf("time-to-half quantiles inconsistent: median=%v q90=%v", median, q90)
	}
	if _, reached := ens.TimeToFraction(0.5); reached != 10 {
		t.Fatalf("reached = %d, want 10", reached)
	}
}

func TestEnsembleTracelessCurveErrors(t *testing.T) {
	ens, err := Engine{Seed: 2}.RunBatch(Scenario{
		Network: NetworkSpec{Family: "clique", Params: Params{"n": 20}},
	}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ens.SpreadCurve(8); err == nil {
		t.Fatal("SpreadCurve on a traceless ensemble must error")
	}
	if _, _, err := ens.TimeToFractionQuantiles(0.5); err == nil {
		t.Fatal("TimeToFractionQuantiles on a traceless ensemble must error")
	}
}
