package engine

import (
	"errors"
	"fmt"
	"sort"

	"dynamicrumor/internal/dynamic"
	"dynamicrumor/internal/gen"
	"dynamicrumor/internal/xrand"
)

// NetworkFactory builds a fresh network instance for one repetition and
// reports the family's default start vertex. Stateful adaptive networks must
// not be shared across repetitions, so the engine invokes the factory once
// per repetition with that repetition's private RNG stream.
type NetworkFactory func(rng *xrand.RNG) (dynamic.Network, int, error)

// NetworkSpec selects the dynamic network of a scenario. Exactly one of the
// two forms is used:
//
//   - declarative: Family names a registered network family and Params carries
//     its numeric parameters — this form is JSON-serializable;
//   - programmatic: Custom builds an arbitrary network in code (adaptive
//     adversaries, hand-built sequences) and wins over Family when set.
type NetworkSpec struct {
	// Family is a registered network family name (see Families).
	Family string `json:"family,omitempty"`
	// Params are the family's numeric parameters, e.g. {"n": 1024}.
	Params gen.Params `json:"params,omitempty"`
	// Custom overrides Family with an in-code network factory; such a spec
	// is not serializable.
	Custom NetworkFactory `json:"-"`
}

// validate checks that the spec names a known family and passes only
// parameters that family accepts — the same fail-loudly stance the scenario
// codec takes on unknown JSON fields.
func (ns NetworkSpec) validate() error {
	if ns.Custom != nil {
		return nil
	}
	if ns.Family == "" {
		return errors.New("engine: network spec needs a family name or a custom factory")
	}
	if fam, ok := dynamicFamilies[ns.Family]; ok {
		return ns.Params.CheckKeys(ns.Family, fam.keys)
	}
	if keys, ok := gen.AllowedKeys(ns.Family); ok {
		return ns.Params.CheckKeys(ns.Family, keys)
	}
	return fmt.Errorf("engine: unknown network family %q", ns.Family)
}

// dynamicFamily describes one of the genuinely dynamic network families:
// its builder, the parameter keys it accepts, and whether one built instance
// may be shared read-only by every repetition.
type dynamicFamily struct {
	keys  []string
	build func(p gen.Params, rng *xrand.RNG) (dynamic.Network, int, error)
	// shareable declares that build ignores its rng and the built network is
	// immutable — GraphAt neither draws nor mutates — so batch compilation
	// constructs it once and shares it across workers, like a deterministic
	// static family.
	shareable bool
}

// dynamicFamilies registers the dynamic constructions of the paper and the
// related-work baselines. Static graph families resolve through the
// internal/gen registry instead and are wrapped in dynamic.NewStatic.
var dynamicFamilies = map[string]dynamicFamily{
	// The adaptive dynamic star of Figure 1(b) on n vertices total.
	"dynamic-star": {keys: []string{"n"}, build: func(p gen.Params, rng *xrand.RNG) (dynamic.Network, int, error) {
		n, err := p.NeedInt("dynamic-star", "n", 2)
		if err != nil {
			return nil, 0, err
		}
		net, err := dynamic.NewDichotomyG2(n-1, rng)
		if err != nil {
			return nil, 0, err
		}
		return net, net.StartVertex(), nil
	}},
	// The clique-with-pendant → bridged-cliques network of Figure 1(a): both
	// step graphs are prebuilt and GraphAt only selects between them, so one
	// instance serves every repetition.
	"dichotomy-g1": {keys: []string{"n"}, shareable: true, build: func(p gen.Params, _ *xrand.RNG) (dynamic.Network, int, error) {
		n, err := p.NeedInt("dichotomy-g1", "n", 2)
		if err != nil {
			return nil, 0, err
		}
		net, err := dynamic.NewDichotomyG1(n - 1)
		if err != nil {
			return nil, 0, err
		}
		return net, net.StartVertex(), nil
	}},
	// The ρ-diligent network G(n, ρ) of Theorem 1.2.
	"gnrho": {keys: []string{"n", "rho", "k"}, build: func(p gen.Params, rng *xrand.RNG) (dynamic.Network, int, error) {
		n, err := p.NeedInt("gnrho", "n", 2)
		if err != nil {
			return nil, 0, err
		}
		net, err := dynamic.NewGNRho(n, p.Float("rho", 0.25), p.Int("k", 0), rng)
		if err != nil {
			return nil, 0, err
		}
		return net, net.StartVertex(), nil
	}},
	// The absolutely ρ-diligent network of Theorem 1.5.
	"absgnrho": {keys: []string{"n", "rho"}, build: func(p gen.Params, rng *xrand.RNG) (dynamic.Network, int, error) {
		n, err := p.NeedInt("absgnrho", "n", 2)
		if err != nil {
			return nil, 0, err
		}
		net, err := dynamic.NewAbsGNRho(n, p.Float("rho", 0.25), rng)
		if err != nil {
			return nil, 0, err
		}
		return net, net.StartVertex(), nil
	}},
	// The edge-Markovian evolving graph baseline, seeded with a cycle so the
	// network starts connected.
	"edge-markovian": {keys: []string{"n", "p", "q"}, build: func(p gen.Params, rng *xrand.RNG) (dynamic.Network, int, error) {
		n, err := p.NeedInt("edge-markovian", "n", 2)
		if err != nil {
			return nil, 0, err
		}
		net, err := dynamic.NewEdgeMarkovian(n, p.Float("p", 0.05), p.Float("q", 0.5), gen.Cycle(n), rng)
		if err != nil {
			return nil, 0, err
		}
		return net, 0, nil
	}},
	// Mobile agents on a torus grid; the side defaults to the smallest value
	// keeping the agent density at least 1/4 per cell.
	"mobile": {keys: []string{"n", "side"}, build: func(p gen.Params, rng *xrand.RNG) (dynamic.Network, int, error) {
		n, err := p.NeedInt("mobile", "n", 2)
		if err != nil {
			return nil, 0, err
		}
		side := p.Int("side", 0)
		if side <= 0 {
			side = 1
			for side*side*4 < n {
				side++
			}
		}
		net, err := dynamic.NewMobileAgents(n, side, rng)
		if err != nil {
			return nil, 0, err
		}
		return net, 0, nil
	}},
}

// Families returns every buildable family name — static graph families from
// the internal/gen registry plus the dynamic constructions — in sorted order.
func Families() []string {
	out := gen.Families()
	for name := range dynamicFamilies {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// FamilyInfo describes one registered network family for API consumers: its
// name, whether it is a static graph family or a genuinely dynamic
// construction, and the parameter keys its spec accepts.
type FamilyInfo struct {
	// Name is the family name a NetworkSpec selects.
	Name string `json:"name"`
	// Kind is "static" for graph families wrapped in dynamic.NewStatic and
	// "dynamic" for the evolving constructions.
	Kind string `json:"kind"`
	// Params are the accepted parameter keys, in registration order.
	Params []string `json:"params,omitempty"`
}

// FamilyInfos returns a FamilyInfo for every buildable family, sorted by
// name. It is the machine-readable companion of Families, serving the rumord
// GET /v1/scenarios/families endpoint.
func FamilyInfos() []FamilyInfo {
	var out []FamilyInfo
	for _, name := range gen.Families() {
		keys, _ := gen.AllowedKeys(name)
		out = append(out, FamilyInfo{Name: name, Kind: "static", Params: keys})
	}
	for name, fam := range dynamicFamilies {
		out = append(out, FamilyInfo{Name: name, Kind: "dynamic", Params: fam.keys})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
