package engine

import (
	"context"
	"fmt"

	"dynamicrumor/internal/dynamic"
	"dynamicrumor/internal/gen"
	"dynamicrumor/internal/graph"
	"dynamicrumor/internal/runner"
	"dynamicrumor/internal/sim"
	"dynamicrumor/internal/xrand"
)

// Engine executes scenarios. It holds the two execution-policy knobs —
// parallelism and the seed policy — and nothing about any particular
// scenario, so one engine can serve many scenarios.
//
// The zero value is ready to use: GOMAXPROCS workers, seed 0.
type Engine struct {
	// Parallelism is the number of worker goroutines for batch runs
	// (0 or negative means runtime.GOMAXPROCS(0)). Results are bit-identical
	// for every value; parallelism only changes wall-clock time.
	Parallelism int
	// Seed derives every repetition's private RNG stream. Equal seeds give
	// bit-identical ensembles.
	Seed uint64
	// ChunkSize is the number of consecutive repetitions a worker claims per
	// synchronization round (0 or negative selects an automatic size, see
	// runner.ChunkFor). Like Parallelism it is a pure throughput knob: results
	// are bit-identical for every value.
	ChunkSize int
}

// Run executes a scenario once and returns its result. It is equivalent to
// RunBatch with one repetition, so Run and RunBatch(…, 1) agree bit for bit.
func (e Engine) Run(sc Scenario) (*sim.Result, error) {
	ens, err := e.RunBatch(sc, 1)
	if err != nil {
		return nil, err
	}
	return ens.Results[0], nil
}

// RunBatch executes reps independent Monte-Carlo repetitions of the scenario
// and aggregates them into an Ensemble. Repetition i builds a fresh network
// instance and runs the protocol on it, both from private RNG streams derived
// from the engine seed, so the ensemble is bit-identical for every
// Parallelism value (see internal/runner).
func (e Engine) RunBatch(sc Scenario, reps int) (*Ensemble, error) {
	return e.RunBatchCtx(context.Background(), sc, reps)
}

// RunBatchCtx is RunBatch under a context: cancelling ctx stops the batch at
// the next repetition boundary (in-flight repetitions complete, no new ones
// start) and returns ctx.Err(). A batch that runs to completion is unaffected
// by its context, so RunBatchCtx(context.Background(), …) and RunBatch agree
// bit for bit.
func (e Engine) RunBatchCtx(ctx context.Context, sc Scenario, reps int) (*Ensemble, error) {
	return e.RunBatchFrom(ctx, sc, reps, xrand.New(e.Seed))
}

// RunBatchFrom is RunBatchCtx with an explicit base generator in place of the
// engine seed. It exists so callers that are themselves part of a larger
// deterministic experiment (the E1–E12 suite) can hand the engine a derived
// stream; most callers want RunBatch.
//
// The scenario is compiled once before the fan-out (see compileScenario):
// immutable networks are built a single time and shared read-only by every
// worker, and each worker recycles its builders, network instances and
// simulator scratch across all of its repetitions. Compilation never changes
// results — every repetition consumes exactly the RNG stream the historical
// build-per-repetition loop consumed.
//
// The base generator is advanced reps times over the course of the call —
// even when the run is cancelled — and must not be used concurrently with it.
func (e Engine) RunBatchFrom(ctx context.Context, sc Scenario, reps int, base *xrand.RNG) (*Ensemble, error) {
	cs, err := compileScenario(sc)
	if err != nil {
		return nil, err
	}
	if reps < 1 {
		return nil, fmt.Errorf("engine: reps must be >= 1, got %d", reps)
	}
	results, err := runner.MapLocalOpts(ctx, runner.Options{Parallelism: e.Parallelism, ChunkSize: e.ChunkSize}, reps, base, newWorkerState,
		func(rep int, sub *xrand.RNG, ws *workerState) (*sim.Result, error) {
			// Results are retained by the ensemble, so this path hands the
			// simulator a nil result and lets it allocate a fresh one.
			return cs.runRep(sub, ws, nil)
		})
	if err != nil {
		return nil, err
	}
	return &Ensemble{Scenario: sc, Results: results}, nil
}

// Reducer consumes one repetition's result. The engine calls it in strict
// repetition order (0, 1, 2, ...), never concurrently, so it can fold into
// plain accumulators without locking. The result is only valid for the
// duration of the call — the worker recycles it for its next repetition —
// so a reducer extracts what it needs and must not retain res or its trace.
type Reducer func(rep int, res *sim.Result) error

// RunReduce executes reps repetitions like RunBatch but streams each result
// into reduce instead of materializing an Ensemble: memory stays O(workers)
// no matter how large reps is, which is what makes 10⁵–10⁶-repetition
// ensembles practical. Repetition i's result is bit-identical to
// RunBatch's Results[i] — the two entry points share the compiled scenario
// and the per-repetition stream discipline — and the reduction order is the
// repetition order for every Parallelism value.
//
// A failing repetition (or a reducer error) aborts the run after every
// earlier repetition has been reduced; the returned error identifies the
// lowest failing repetition deterministically.
func (e Engine) RunReduce(sc Scenario, reps int, reduce Reducer) error {
	return e.RunReduceCtx(context.Background(), sc, reps, reduce)
}

// RunReduceCtx is RunReduce under a context: cancelling ctx stops the run at
// the next repetition boundary — every already-claimed repetition is still
// reduced, in order — and returns ctx.Err(). This is the entry point of
// long-lived callers (the rumord service) that must be able to abandon a
// batch without leaking its workers.
func (e Engine) RunReduceCtx(ctx context.Context, sc Scenario, reps int, reduce Reducer) error {
	return e.RunReduceFrom(ctx, sc, reps, xrand.New(e.Seed), reduce)
}

// RunReduceFrom is RunReduceCtx with an explicit base generator in place of
// the engine seed, mirroring RunBatchFrom.
func (e Engine) RunReduceFrom(ctx context.Context, sc Scenario, reps int, base *xrand.RNG, reduce Reducer) error {
	cs, err := compileScenario(sc)
	if err != nil {
		return err
	}
	return e.runReduceCompiled(ctx, cs, reps, base, reduce)
}

// RunReduceCompiledCtx is RunReduceCtx on an already-compiled scenario (see
// Compile and CompileSet): compilation — validation, strategy selection,
// deterministic network construction — is skipped, everything else is
// identical, so the reduction is bit-identical to RunReduceCtx on the same
// scenario. This is the hot entry point of sweep execution, where one
// compiled cell shape backs many runs.
func (e Engine) RunReduceCompiledCtx(ctx context.Context, c *Compiled, reps int, reduce Reducer) error {
	return e.runReduceCompiled(ctx, c.cs, reps, xrand.New(e.Seed), reduce)
}

// RunReduceFromCompiled is RunReduceCompiledCtx with an explicit base
// generator in place of the engine seed, mirroring RunReduceFrom.
func (e Engine) RunReduceFromCompiled(ctx context.Context, c *Compiled, reps int, base *xrand.RNG, reduce Reducer) error {
	return e.runReduceCompiled(ctx, c.cs, reps, base, reduce)
}

// runReduceCompiled is the shared streaming-reduction body behind every
// RunReduce entry point.
func (e Engine) runReduceCompiled(ctx context.Context, cs *compiledScenario, reps int, base *xrand.RNG, reduce Reducer) error {
	if reps < 1 {
		return fmt.Errorf("engine: reps must be >= 1, got %d", reps)
	}
	// Workers claim and compute whole chunks before any of a chunk is reduced,
	// so each worker needs one distinct result slot per repetition of a chunk:
	// a ring of ChunkFor slots, advanced round-robin, is exactly that (a chunk
	// is fully reduced before its worker claims the next one, so a slot is
	// never overwritten while the reducer can still see it).
	ringSize := runner.ChunkFor(e.ChunkSize, reps, e.Parallelism)
	return runner.MapReduceOpts(ctx, runner.Options{Parallelism: e.Parallelism, ChunkSize: e.ChunkSize}, reps, base, newWorkerState,
		func(rep int, sub *xrand.RNG, ws *workerState) (*sim.Result, error) {
			if ws.resRing == nil {
				ws.resRing = make([]sim.Result, ringSize)
			}
			res := &ws.resRing[ws.resCur]
			ws.resCur++
			if ws.resCur == len(ws.resRing) {
				ws.resCur = 0
			}
			return cs.runRep(sub, ws, res)
		},
		runner.Reducer[*sim.Result](reduce))
}

// RunReduceRangeCtx executes only the repetition range [start, start+count)
// of a larger ensemble: the reducer receives global repetition indices, and
// repetition i's result is bit-identical to what RunReduceCtx would have
// handed the reducer for repetition i of a full run with the same seed. This
// is the shard-execution entry point of the distributed service
// (internal/cluster): a worker needs nothing but (scenario, seed, start,
// count) to reproduce its slice of the ensemble exactly, so shards can be
// re-executed on any node — after a worker death, say — without changing the
// merged result.
func (e Engine) RunReduceRangeCtx(ctx context.Context, sc Scenario, start, count int, reduce Reducer) error {
	cs, err := compileScenario(sc)
	if err != nil {
		return err
	}
	if start < 0 {
		return fmt.Errorf("engine: range start must be >= 0, got %d", start)
	}
	if count < 1 {
		return fmt.Errorf("engine: range count must be >= 1, got %d", count)
	}
	ringSize := runner.ChunkFor(e.ChunkSize, count, e.Parallelism)
	return runner.MapReduceRangeOpts(ctx, runner.Options{Parallelism: e.Parallelism, ChunkSize: e.ChunkSize}, start, count, xrand.New(e.Seed), newWorkerState,
		func(rep int, sub *xrand.RNG, ws *workerState) (*sim.Result, error) {
			if ws.resRing == nil {
				ws.resRing = make([]sim.Result, ringSize)
			}
			res := &ws.resRing[ws.resCur]
			ws.resCur++
			if ws.resCur == len(ws.resRing) {
				ws.resCur = 0
			}
			return cs.runRep(sub, ws, res)
		},
		runner.Reducer[*sim.Result](reduce))
}

// compiledScenario is a scenario compiled for a batch: the validation and
// every piece of per-batch work is done once, and the per-repetition job is
// reduced to (derive streams, obtain network, run protocol). Exactly one of
// the four network strategies is set:
//
//   - shared: an immutable network (deterministic static family, or a
//     shareable dynamic family) built once and read concurrently by all
//     workers;
//   - staticFam: a random static family rebuilt every repetition through the
//     worker's recycled builder and graph buffer (gen.BuildInto);
//   - dynFam: a stateful dynamic family; each worker builds one instance and
//     re-initializes it per repetition via dynamic.Reusable when supported;
//   - custom: a programmatic factory, invoked once per repetition.
type compiledScenario struct {
	sc           Scenario
	shared       dynamic.Network
	sharedStart  int
	staticFam    string
	staticParams gen.Params
	dynFam       *dynamicFamily
	dynParams    gen.Params
	custom       NetworkFactory
}

// compileScenario validates the scenario and selects its execution strategy.
// Deterministic constructions are materialized here, before the fan-out; the
// no-draw contract of gen.Family.Deterministic and dynamicFamily.shareable is
// what makes sharing them invisible to every repetition's RNG stream.
func compileScenario(sc Scenario) (*compiledScenario, error) {
	return compileScenarioShared(sc, nil)
}

// compileScenarioShared is compileScenario with an optional CompileSet: when
// set is non-nil, the shared read-only networks it has already built for an
// equal network spec are reused instead of rebuilt, so a grid of scenarios
// over the same graph pays its construction once.
func compileScenarioShared(sc Scenario, set *CompileSet) (*compiledScenario, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	cs := &compiledScenario{sc: sc}
	ns := sc.Network
	switch {
	case ns.Custom != nil:
		cs.custom = ns.Custom
	case dynamicFamilies[ns.Family].build != nil:
		fam := dynamicFamilies[ns.Family]
		if fam.shareable {
			net, start, err := set.lookupOrBuild(ns, func() (dynamic.Network, int, error) {
				return fam.build(ns.Params, nil)
			})
			if err != nil {
				return nil, fmt.Errorf("build network: %w", err)
			}
			cs.shared, cs.sharedStart = net, start
		} else {
			cs.dynFam, cs.dynParams = &fam, ns.Params
		}
	case gen.IsDeterministic(ns.Family):
		net, start, err := set.lookupOrBuild(ns, func() (dynamic.Network, int, error) {
			// The nil rng makes a family that violates the no-draw contract
			// fail loudly instead of silently skewing sibling repetitions'
			// streams.
			g, err := gen.Build(ns.Family, ns.Params, nil)
			if err != nil {
				return nil, 0, err
			}
			return dynamic.NewStatic(g), gen.DefaultStart(ns.Family, ns.Params, g), nil
		})
		if err != nil {
			return nil, fmt.Errorf("build network: %w", err)
		}
		cs.shared, cs.sharedStart = net, start
	default:
		cs.staticFam, cs.staticParams = ns.Family, ns.Params
	}
	return cs, nil
}

// workerState is the recycled state one batch worker carries across all of
// its repetitions: simulator scratch, a result buffer (reduce path only),
// the two per-repetition RNG values, and the network recycling machinery of
// whichever strategy the compiled scenario selected. None of it influences
// results — it is storage reuse, not input.
type workerState struct {
	scratch *sim.Scratch
	// resRing holds the reduce path's recycled results — one slot per
	// repetition of a claim chunk, allocated lazily on the worker's first
	// repetition and advanced round-robin by resCur.
	resRing  []sim.Result
	resCur   int
	netRNG   xrand.RNG
	protoRNG xrand.RNG

	// Random static families: recycled builder + emitter scratch + graph +
	// wrapper.
	builder *graph.Builder
	emit    gen.EmitScratch
	g       *graph.Graph
	static  *dynamic.Static

	// Dynamic families: the worker's cached instance and its start vertex.
	dyn      dynamic.Network
	dynStart int

	// Cached protocol value, rebuilt only if the start vertex changes.
	proto      sim.Protocol
	protoStart int
	reuse      sim.ReusableProtocol
	reuseOK    bool
}

func newWorkerState() *workerState { return &workerState{scratch: sim.NewScratch()} }

// runRep executes one repetition. The stream discipline — Split(1) for the
// network, Split(2) for the protocol — is a compatibility contract: it
// reproduces the historical serial loops bit for bit. Do not reorder. Shared
// and recycled networks keep the discipline intact because deriving the
// network stream consumes exactly one base draw whether or not the network
// then uses it.
func (cs *compiledScenario) runRep(sub *xrand.RNG, ws *workerState, res *sim.Result) (*sim.Result, error) {
	sub.SplitInto(1, &ws.netRNG)
	var (
		net   dynamic.Network
		start int
		err   error
	)
	switch {
	case cs.shared != nil:
		net, start = cs.shared, cs.sharedStart
	case cs.custom != nil:
		net, start, err = cs.custom(&ws.netRNG)
	case cs.dynFam != nil:
		if r, ok := ws.dyn.(dynamic.Reusable); ok {
			err = r.Reset(&ws.netRNG)
			net, start = ws.dyn, ws.dynStart
		} else {
			net, start, err = cs.dynFam.build(cs.dynParams, &ws.netRNG)
			if err == nil {
				ws.dyn, ws.dynStart = net, start
			}
		}
	default:
		if ws.builder == nil {
			ws.builder = graph.NewBuilder(0)
		}
		var g *graph.Graph
		g, err = gen.BuildInto(cs.staticFam, cs.staticParams, &ws.netRNG, ws.builder, ws.g, &ws.emit)
		if err == nil {
			if ws.static == nil || g != ws.g {
				ws.static = dynamic.NewStatic(g)
			}
			ws.g = g
			net, start = ws.static, gen.DefaultStart(cs.staticFam, cs.staticParams, g)
		}
	}
	if err != nil {
		return nil, fmt.Errorf("build network: %w", err)
	}
	if cs.sc.Start != nil {
		start = *cs.sc.Start
	}
	if ws.proto == nil || start != ws.protoStart {
		ws.proto = cs.sc.protocolFor(start)
		ws.protoStart = start
		ws.reuse, ws.reuseOK = ws.proto.(sim.ReusableProtocol)
	}
	sub.SplitInto(2, &ws.protoRNG)
	// Every worker reuses one scratch (and, on the reduce path, one result)
	// across all of its repetitions; RunInto is contractually stream- and
	// output-identical to Run, so this is purely an allocation optimization.
	var out *sim.Result
	if ws.reuseOK {
		out, err = ws.reuse.RunInto(net, &ws.protoRNG, ws.scratch, res)
	} else {
		out, err = ws.proto.Run(net, &ws.protoRNG)
	}
	if err != nil {
		return nil, fmt.Errorf("%s run: %w", ws.proto.Kind(), err)
	}
	return out, nil
}
