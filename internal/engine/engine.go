package engine

import (
	"fmt"

	"dynamicrumor/internal/runner"
	"dynamicrumor/internal/sim"
	"dynamicrumor/internal/xrand"
)

// Engine executes scenarios. It holds the two execution-policy knobs —
// parallelism and the seed policy — and nothing about any particular
// scenario, so one engine can serve many scenarios.
//
// The zero value is ready to use: GOMAXPROCS workers, seed 0.
type Engine struct {
	// Parallelism is the number of worker goroutines for batch runs
	// (0 or negative means runtime.GOMAXPROCS(0)). Results are bit-identical
	// for every value; parallelism only changes wall-clock time.
	Parallelism int
	// Seed derives every repetition's private RNG stream. Equal seeds give
	// bit-identical ensembles.
	Seed uint64
}

// Run executes a scenario once and returns its result. It is equivalent to
// RunBatch with one repetition, so Run and RunBatch(…, 1) agree bit for bit.
func (e Engine) Run(sc Scenario) (*sim.Result, error) {
	ens, err := e.RunBatch(sc, 1)
	if err != nil {
		return nil, err
	}
	return ens.Results[0], nil
}

// RunBatch executes reps independent Monte-Carlo repetitions of the scenario
// and aggregates them into an Ensemble. Repetition i builds a fresh network
// instance and runs the protocol on it, both from private RNG streams derived
// from the engine seed, so the ensemble is bit-identical for every
// Parallelism value (see internal/runner).
func (e Engine) RunBatch(sc Scenario, reps int) (*Ensemble, error) {
	return e.RunBatchFrom(sc, reps, xrand.New(e.Seed))
}

// RunBatchFrom is RunBatch with an explicit base generator in place of the
// engine seed. It exists so callers that are themselves part of a larger
// deterministic experiment (the E1–E12 suite) can hand the engine a derived
// stream; most callers want RunBatch.
//
// The base generator is advanced reps times before any repetition starts and
// must not be used concurrently with this call.
func (e Engine) RunBatchFrom(sc Scenario, reps int, base *xrand.RNG) (*Ensemble, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	if reps < 1 {
		return nil, fmt.Errorf("engine: reps must be >= 1, got %d", reps)
	}
	results, err := runner.MapLocal(e.Parallelism, reps, base, sim.NewScratch,
		func(rep int, sub *xrand.RNG, scratch *sim.Scratch) (*sim.Result, error) {
			// The stream discipline below — Split(1) for the network, Split(2)
			// for the protocol — is a compatibility contract: it reproduces the
			// historical serial loops bit for bit. Do not reorder.
			net, start, err := buildNetwork(sc.Network, sub.Split(1))
			if err != nil {
				return nil, fmt.Errorf("build network: %w", err)
			}
			if sc.Start != nil {
				start = *sc.Start
			}
			proto := sc.protocolFor(start)
			// Every worker reuses one scratch across all of its repetitions;
			// RunInto is contractually stream- and output-identical to Run, so
			// this is purely an allocation optimization.
			var res *sim.Result
			if rp, ok := proto.(sim.ReusableProtocol); ok {
				res, err = rp.RunInto(net, sub.Split(2), scratch)
			} else {
				res, err = proto.Run(net, sub.Split(2))
			}
			if err != nil {
				return nil, fmt.Errorf("%s run: %w", proto.Kind(), err)
			}
			return res, nil
		})
	if err != nil {
		return nil, err
	}
	return &Ensemble{Scenario: sc, Results: results}, nil
}
