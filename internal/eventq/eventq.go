// Package eventq provides an indexed binary-heap priority queue keyed by
// float64 timestamps. It is the core scheduling structure of the naive
// asynchronous simulator, where each node owns a pending clock-tick event
// whose firing time must be updatable in place.
package eventq

// Queue is a min-heap of (id, time) pairs supporting O(log n) push, pop and
// decrease/increase-key by id. Each id may appear at most once.
// The zero value is an empty queue ready for use.
type Queue struct {
	ids   []int       // heap order
	times []float64   // parallel to ids
	pos   map[int]int // id -> index in ids
}

// New returns an empty queue with capacity for n elements.
func New(n int) *Queue {
	return &Queue{
		ids:   make([]int, 0, n),
		times: make([]float64, 0, n),
		pos:   make(map[int]int, n),
	}
}

// Len returns the number of queued events.
func (q *Queue) Len() int { return len(q.ids) }

// Contains reports whether id currently has a queued event.
func (q *Queue) Contains(id int) bool {
	if q.pos == nil {
		return false
	}
	_, ok := q.pos[id]
	return ok
}

// Push inserts an event for id at time t, or updates the existing event's
// time if id is already present.
func (q *Queue) Push(id int, t float64) {
	if q.pos == nil {
		q.pos = make(map[int]int)
	}
	if i, ok := q.pos[id]; ok {
		old := q.times[i]
		q.times[i] = t
		if t < old {
			q.up(i)
		} else {
			q.down(i)
		}
		return
	}
	q.ids = append(q.ids, id)
	q.times = append(q.times, t)
	q.pos[id] = len(q.ids) - 1
	q.up(len(q.ids) - 1)
}

// Peek returns the id and time of the earliest event without removing it.
// ok is false if the queue is empty.
func (q *Queue) Peek() (id int, t float64, ok bool) {
	if len(q.ids) == 0 {
		return 0, 0, false
	}
	return q.ids[0], q.times[0], true
}

// Pop removes and returns the earliest event. ok is false if the queue is
// empty.
func (q *Queue) Pop() (id int, t float64, ok bool) {
	if len(q.ids) == 0 {
		return 0, 0, false
	}
	id, t = q.ids[0], q.times[0]
	q.swap(0, len(q.ids)-1)
	q.ids = q.ids[:len(q.ids)-1]
	q.times = q.times[:len(q.times)-1]
	delete(q.pos, id)
	if len(q.ids) > 0 {
		q.down(0)
	}
	return id, t, true
}

// Remove deletes the event for id if present and reports whether it existed.
func (q *Queue) Remove(id int) bool {
	i, ok := q.pos[id]
	if !ok {
		return false
	}
	last := len(q.ids) - 1
	q.swap(i, last)
	q.ids = q.ids[:last]
	q.times = q.times[:last]
	delete(q.pos, id)
	if i < last {
		q.down(i)
		q.up(i)
	}
	return true
}

// Time returns the scheduled time for id. ok is false if id is not queued.
func (q *Queue) Time(id int) (float64, bool) {
	i, ok := q.pos[id]
	if !ok {
		return 0, false
	}
	return q.times[i], true
}

func (q *Queue) swap(i, j int) {
	q.ids[i], q.ids[j] = q.ids[j], q.ids[i]
	q.times[i], q.times[j] = q.times[j], q.times[i]
	q.pos[q.ids[i]] = i
	q.pos[q.ids[j]] = j
}

func (q *Queue) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if q.times[parent] <= q.times[i] {
			return
		}
		q.swap(i, parent)
		i = parent
	}
}

func (q *Queue) down(i int) {
	n := len(q.ids)
	for {
		left, right := 2*i+1, 2*i+2
		smallest := i
		if left < n && q.times[left] < q.times[smallest] {
			smallest = left
		}
		if right < n && q.times[right] < q.times[smallest] {
			smallest = right
		}
		if smallest == i {
			return
		}
		q.swap(i, smallest)
		i = smallest
	}
}
