package eventq

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"dynamicrumor/internal/xrand"
)

func TestEmptyQueue(t *testing.T) {
	var q Queue
	if q.Len() != 0 {
		t.Fatal("zero-value queue not empty")
	}
	if _, _, ok := q.Peek(); ok {
		t.Fatal("Peek on empty queue returned ok")
	}
	if _, _, ok := q.Pop(); ok {
		t.Fatal("Pop on empty queue returned ok")
	}
	if q.Contains(3) {
		t.Fatal("empty queue contains 3")
	}
	if q.Remove(3) {
		t.Fatal("Remove on empty queue returned true")
	}
}

func TestPushPopOrdered(t *testing.T) {
	q := New(8)
	times := []float64{5, 1, 3, 2, 4}
	for i, tm := range times {
		q.Push(i, tm)
	}
	prev := math.Inf(-1)
	for q.Len() > 0 {
		_, tm, ok := q.Pop()
		if !ok {
			t.Fatal("Pop failed on non-empty queue")
		}
		if tm < prev {
			t.Fatalf("Pop out of order: %v after %v", tm, prev)
		}
		prev = tm
	}
}

func TestPushUpdatesExisting(t *testing.T) {
	q := New(4)
	q.Push(1, 10)
	q.Push(2, 5)
	q.Push(1, 1) // decrease key
	id, tm, _ := q.Pop()
	if id != 1 || tm != 1 {
		t.Fatalf("Pop = (%d,%v), want (1,1)", id, tm)
	}
	if q.Len() != 1 {
		t.Fatalf("Len = %d, want 1", q.Len())
	}
}

func TestPushIncreaseKey(t *testing.T) {
	q := New(4)
	q.Push(1, 1)
	q.Push(2, 5)
	q.Push(1, 10) // increase key
	id, tm, _ := q.Pop()
	if id != 2 || tm != 5 {
		t.Fatalf("Pop = (%d,%v), want (2,5)", id, tm)
	}
}

func TestRemove(t *testing.T) {
	q := New(4)
	q.Push(1, 1)
	q.Push(2, 2)
	q.Push(3, 3)
	if !q.Remove(2) {
		t.Fatal("Remove(2) returned false")
	}
	if q.Contains(2) {
		t.Fatal("queue still contains 2 after Remove")
	}
	var got []int
	for q.Len() > 0 {
		id, _, _ := q.Pop()
		got = append(got, id)
	}
	if len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Fatalf("remaining order = %v, want [1 3]", got)
	}
}

func TestTime(t *testing.T) {
	q := New(2)
	q.Push(7, 3.5)
	if tm, ok := q.Time(7); !ok || tm != 3.5 {
		t.Fatalf("Time(7) = (%v,%v)", tm, ok)
	}
	if _, ok := q.Time(8); ok {
		t.Fatal("Time(8) found a missing id")
	}
}

func TestHeapPropertyRandomized(t *testing.T) {
	rng := xrand.New(99)
	q := New(128)
	inserted := map[int]float64{}
	for op := 0; op < 5000; op++ {
		switch rng.Intn(3) {
		case 0: // push
			id := rng.Intn(200)
			tm := rng.Float64() * 100
			q.Push(id, tm)
			inserted[id] = tm
		case 1: // remove
			id := rng.Intn(200)
			_, had := inserted[id]
			got := q.Remove(id)
			if got != had {
				t.Fatalf("Remove(%d) = %v, want %v", id, got, had)
			}
			delete(inserted, id)
		case 2: // pop
			if len(inserted) == 0 {
				continue
			}
			id, tm, ok := q.Pop()
			if !ok {
				t.Fatal("Pop failed while map non-empty")
			}
			// Must be the minimum over the tracked map.
			minID, minT := -1, math.Inf(1)
			for k, v := range inserted {
				if v < minT || (v == minT && k == id) {
					minID, minT = k, v
				}
			}
			if tm != minT {
				t.Fatalf("Pop time %v, want min %v (id %d vs %d)", tm, minT, id, minID)
			}
			delete(inserted, id)
		}
		if q.Len() != len(inserted) {
			t.Fatalf("length mismatch: queue %d, map %d", q.Len(), len(inserted))
		}
	}
}

func TestPopSortsArbitraryInput(t *testing.T) {
	if err := quick.Check(func(raw []float64) bool {
		times := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) {
				times = append(times, x)
			}
		}
		q := New(len(times))
		for i, tm := range times {
			q.Push(i, tm)
		}
		var popped []float64
		for q.Len() > 0 {
			_, tm, _ := q.Pop()
			popped = append(popped, tm)
		}
		if len(popped) != len(times) {
			return false
		}
		want := append([]float64(nil), times...)
		sort.Float64s(want)
		for i := range want {
			if popped[i] != want[i] {
				return false
			}
		}
		return true
	}, nil); err != nil {
		t.Error(err)
	}
}
