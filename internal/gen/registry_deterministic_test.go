package gen

import (
	"testing"

	"dynamicrumor/internal/graph"
	"dynamicrumor/internal/xrand"
)

// deterministicParams gives every Deterministic family a valid parameter set
// for the no-draw audit.
var deterministicParams = map[string]Params{
	"clique":             {"n": 17},
	"star":               {"n": 9, "center": 3},
	"path":               {"n": 11},
	"cycle":              {"n": 12},
	"hypercube":          {"n": 32},
	"torus":              {"rows": 4, "cols": 5},
	"grid":               {"rows": 3, "cols": 6},
	"complete-bipartite": {"a": 4, "b": 7},
	"barbell":            {"k": 6},
}

// TestDeterministicFamiliesNeverDraw enforces the contract behind graph
// sharing in batch compilation: a family flagged Deterministic must never
// draw from its rng, because the engine builds its graph once and shares it
// across every repetition — a single skipped draw would shift every sibling
// repetition's stream. Building with a nil rng turns any violation into a
// panic, and building twice must give the identical edge set.
func TestDeterministicFamiliesNeverDraw(t *testing.T) {
	audited := 0
	for _, name := range Families() {
		if !IsDeterministic(name) {
			continue
		}
		p, ok := deterministicParams[name]
		if !ok {
			t.Errorf("family %q is Deterministic but has no audit parameters; add it to deterministicParams", name)
			continue
		}
		g1, err := Build(name, p, nil)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		g2, err := Build(name, p, nil)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !sameEdges(g1, g2) {
			t.Errorf("family %q built two different graphs from equal parameters", name)
		}
		audited++
	}
	if audited < 9 {
		t.Fatalf("audited only %d deterministic families, expected at least 9", audited)
	}
}

// TestRandomFamiliesNotFlaggedDeterministic guards the inverse direction for
// the families known to draw.
func TestRandomFamiliesNotFlaggedDeterministic(t *testing.T) {
	for _, name := range []string{"er", "expander", "random-regular"} {
		if IsDeterministic(name) {
			t.Errorf("family %q draws from its rng but is flagged Deterministic", name)
		}
	}
}

// TestBuildIntoMatchesBuild pins the emitter contract: BuildInto through a
// recycled builder and graph must produce the identical graph to Build from
// an equal generator state, for both emitter-backed random families and the
// fallback path.
func TestBuildIntoMatchesBuild(t *testing.T) {
	cases := []struct {
		family string
		params Params
	}{
		{"er", Params{"n": 200, "p": 0.03}},
		{"er", Params{"n": 50, "p": 1.2}}, // clamped p >= 1 branch
		{"expander", Params{"n": 120, "degree": 6}},
		{"expander", Params{"n": 5, "degree": 6}},   // small-n clique branch
		{"cycle", Params{"n": 64}},                  // fallback: no emitter needed
		{"random-regular", Params{"n": 20, "d": 3}}, // fallback with draws
	}
	b := graph.NewBuilder(0)
	var dst *graph.Graph
	var sc EmitScratch
	for _, tc := range cases {
		want, err := Build(tc.family, tc.params, xrand.New(1234))
		if err != nil {
			t.Fatalf("%s Build: %v", tc.family, err)
		}
		got, err := BuildInto(tc.family, tc.params, xrand.New(1234), b, dst, &sc)
		if err != nil {
			t.Fatalf("%s BuildInto: %v", tc.family, err)
		}
		if !sameEdges(want, got) {
			t.Fatalf("%s: BuildInto diverged from Build", tc.family)
		}
		if err := got.Validate(); err != nil {
			t.Fatalf("%s: BuildInto graph invalid: %v", tc.family, err)
		}
		dst = got // recycle across families like a batch worker would
	}
}

// TestAppendErdosRenyiRecycles pins that the er emitter is allocation-free in
// a warm builder+graph pair — the steady state of a batch worker redrawing a
// random static network every repetition.
func TestAppendErdosRenyiRecycles(t *testing.T) {
	rng := xrand.New(5)
	b := graph.NewBuilder(0)
	var g *graph.Graph
	// Warm until the edge-count high-water mark stabilizes: each redraw has
	// a different edge count, and buffers only ratchet up to the largest seen.
	for i := 0; i < 50; i++ {
		AppendErdosRenyi(b, 300, 0.02, rng)
		g = b.BuildInto(g)
	}
	allocs := testing.AllocsPerRun(10, func() {
		AppendErdosRenyi(b, 300, 0.02, rng)
		if got := b.BuildInto(g); got != g {
			t.Fatal("BuildInto moved the graph")
		}
	})
	if allocs >= 1 {
		t.Fatalf("warm G(n,p) redraw allocates %.1f times, want ~0", allocs)
	}
}

// sameEdges reports whether two graphs have identical sorted edge lists.
func sameEdges(a, b *graph.Graph) bool {
	if a.N() != b.N() || a.M() != b.M() {
		return false
	}
	ae, be := a.Edges(), b.Edges()
	for i := range ae {
		if ae[i] != be[i] {
			return false
		}
	}
	return true
}
