package gen

import (
	"testing"

	"dynamicrumor/internal/xrand"
)

func splitAB(n, sizeA int) (a, b []int) {
	for v := 0; v < sizeA; v++ {
		a = append(a, v)
	}
	for v := sizeA; v < n; v++ {
		b = append(b, v)
	}
	return a, b
}

func TestNewHkdBasicStructure(t *testing.T) {
	rng := xrand.New(21)
	const n = 400
	a, b := splitAB(n, n/4)
	p := HkdParams{K: 3, Delta: 8, A: a, B: b}
	h, err := NewHkd(p, rng)
	if err != nil {
		t.Fatal(err)
	}
	g := h.Graph
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.N() != n {
		t.Fatalf("n = %d, want %d", g.N(), n)
	}
	if !g.IsConnected() {
		t.Fatal("Hkd graph disconnected")
	}
	if len(h.Clusters) != p.K+1 {
		t.Fatalf("clusters = %d, want %d", len(h.Clusters), p.K+1)
	}
	for i, c := range h.Clusters {
		if len(c) != p.Delta {
			t.Fatalf("cluster %d has %d vertices, want %d", i, len(c), p.Delta)
		}
	}
	// Interior cluster vertices (S_1..S_{k-1}) have degree exactly 2Δ.
	for i := 1; i < p.K; i++ {
		for _, v := range h.Clusters[i] {
			if g.Degree(v) != 2*p.Delta {
				t.Fatalf("interior cluster vertex %d has degree %d, want %d", v, g.Degree(v), 2*p.Delta)
			}
		}
	}
	// S_0 and S_k vertices have degree 2Δ as well (Δ into the string, Δ into
	// the expander).
	for _, v := range append(append([]int(nil), h.Clusters[0]...), h.Clusters[p.K]...) {
		if g.Degree(v) != 2*p.Delta {
			t.Fatalf("boundary cluster vertex %d has degree %d, want %d", v, g.Degree(v), 2*p.Delta)
		}
	}
}

func TestNewHkdExpanderDegreesStayConstant(t *testing.T) {
	rng := xrand.New(22)
	const n = 1000
	a, b := splitAB(n, n/4)
	delta := 16 // Δ ≈ √n/2
	h, err := NewHkd(HkdParams{K: 4, Delta: delta, A: a, B: b}, rng)
	if err != nil {
		t.Fatal(err)
	}
	// Expander vertices keep constant degree: 4-regular expander plus at most
	// a small additive constant from the cluster attachment.
	maxAllowed := 4 + (delta*delta)/len(h.ExpanderA) + 2
	for _, v := range h.ExpanderA {
		if d := h.Graph.Degree(v); d > maxAllowed {
			t.Fatalf("expander-A vertex %d has degree %d, want <= %d", v, d, maxAllowed)
		}
	}
	for _, v := range h.ExpanderB {
		if d := h.Graph.Degree(v); d > maxAllowed {
			t.Fatalf("expander-B vertex %d has degree %d, want <= %d", v, d, maxAllowed)
		}
	}
}

func TestNewHkdCutBetweenLayers(t *testing.T) {
	rng := xrand.New(23)
	const n = 300
	a, b := splitAB(n, n/2)
	p := HkdParams{K: 2, Delta: 5, A: a, B: b}
	h, err := NewHkd(p, rng)
	if err != nil {
		t.Fatal(err)
	}
	// The only edges between A and B go through S_0 x S_1: exactly Δ² of them.
	member := make([]bool, n)
	for _, v := range a {
		member[v] = true
	}
	if got := h.Graph.CutSize(member); got != p.Delta*p.Delta {
		t.Fatalf("A/B cut = %d, want %d", got, p.Delta*p.Delta)
	}
}

func TestNewHkdErrors(t *testing.T) {
	rng := xrand.New(24)
	a, b := splitAB(100, 25)
	cases := []HkdParams{
		{K: 0, Delta: 4, A: a, B: b},
		{K: 2, Delta: 0, A: a, B: b},
		{K: 2, Delta: 30, A: a, B: b}, // A too small
		{K: 40, Delta: 4, A: a, B: b}, // B too small
	}
	for i, p := range cases {
		if _, err := NewHkd(p, rng); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
	// Duplicate vertex across sides.
	dupA := []int{0, 1, 2, 3, 4, 5}
	dupB := []int{5, 6, 7, 8, 9, 10, 11}
	if _, err := NewHkd(HkdParams{K: 1, Delta: 2, A: dupA, B: dupB}, rng); err == nil {
		t.Error("duplicate vertex should fail")
	}
}

func TestHkdAnalyticScales(t *testing.T) {
	rng := xrand.New(25)
	a, b := splitAB(400, 100)
	h, err := NewHkd(HkdParams{K: 3, Delta: 10, A: a, B: b}, rng)
	if err != nil {
		t.Fatal(err)
	}
	phi := h.ConductanceScale()
	want := 100.0 / (3*100 + 400)
	if phi != want {
		t.Fatalf("ConductanceScale = %v, want %v", phi, want)
	}
	if rho := h.DiligenceScale(); rho != 0.1 {
		t.Fatalf("DiligenceScale = %v, want 0.1", rho)
	}
}

func TestDefaultK(t *testing.T) {
	if DefaultK(8) != 1 {
		t.Fatal("DefaultK for tiny n should be 1")
	}
	k1000 := DefaultK(1000)
	if k1000 < 2 || k1000 > 6 {
		t.Fatalf("DefaultK(1000) = %d, expected a small constant around log n / log log n", k1000)
	}
	if DefaultK(100000) <= DefaultK(100) {
		t.Fatal("DefaultK should grow with n")
	}
}
