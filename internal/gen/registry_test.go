package gen

import (
	"testing"

	"dynamicrumor/internal/xrand"
)

func TestRegistryBuildMatchesDirectConstructors(t *testing.T) {
	cases := []struct {
		family string
		params Params
		wantN  int
		wantM  int
	}{
		{"clique", Params{"n": 6}, 6, 15},
		{"star", Params{"n": 9}, 9, 8},
		{"path", Params{"n": 5}, 5, 4},
		{"cycle", Params{"n": 7}, 7, 7},
		{"hypercube", Params{"d": 3}, 8, 12},
		{"hypercube", Params{"n": 9}, 8, 12}, // largest cube fitting in 9
		{"torus", Params{"rows": 3, "cols": 4}, 12, 24},
		{"grid", Params{"rows": 2, "cols": 3}, 6, 7},
		{"complete-bipartite", Params{"a": 3, "b": 4}, 7, 12},
		{"barbell", Params{"k": 4}, 8, 13},
	}
	for _, c := range cases {
		g, err := Build(c.family, c.params, xrand.New(1))
		if err != nil {
			t.Fatalf("%s: %v", c.family, err)
		}
		if g.N() != c.wantN || g.M() != c.wantM {
			t.Fatalf("%s%v: got n=%d m=%d, want n=%d m=%d", c.family, c.params, g.N(), g.M(), c.wantN, c.wantM)
		}
	}
}

func TestRegistryRandomFamiliesAreSeedDeterministic(t *testing.T) {
	cases := map[string]Params{
		"expander":       {"n": 40, "degree": 6},
		"er":             {"n": 40, "p": 0.2},
		"random-regular": {"n": 40, "d": 4},
	}
	for family, params := range cases {
		a, err := Build(family, params, xrand.New(9))
		if err != nil {
			t.Fatalf("%s: %v", family, err)
		}
		b, err := Build(family, params, xrand.New(9))
		if err != nil {
			t.Fatalf("%s: %v", family, err)
		}
		if a.N() != b.N() || a.M() != b.M() {
			t.Fatalf("%s: same seed produced different graphs (n=%d/%d m=%d/%d)", family, a.N(), b.N(), a.M(), b.M())
		}
	}
}

func TestRegistryRejectsUnknownParamKeys(t *testing.T) {
	if _, err := Build("clique", Params{"n": 8, "degre": 3}, xrand.New(1)); err == nil {
		t.Fatal("misspelled parameter key must be rejected")
	}
	if _, err := Build("er", Params{"n": 8, "prob": 0.2}, xrand.New(1)); err == nil {
		t.Fatal("unknown parameter key must be rejected")
	}
}

func TestDefaultStart(t *testing.T) {
	star := Star(8, 0)
	if got := DefaultStart("star", Params{"n": 8}, star); got != 1 {
		t.Fatalf("star with center 0 must start at leaf 1, got %d", got)
	}
	offCenter := Star(8, 3)
	if got := DefaultStart("star", Params{"n": 8, "center": 3}, offCenter); got != 0 {
		t.Fatalf("star with center 3 must start at leaf 0, got %d", got)
	}
	if got := DefaultStart("clique", Params{"n": 8}, Clique(8)); got != 0 {
		t.Fatalf("families without a start designation default to 0, got %d", got)
	}
}

func TestRegistryErrors(t *testing.T) {
	if _, err := Build("no-such-family", Params{"n": 4}, xrand.New(1)); err == nil {
		t.Fatal("unknown family must error")
	}
	if _, err := Build("clique", nil, xrand.New(1)); err == nil {
		t.Fatal("clique without n must error")
	}
	if _, err := Build("clique", Params{"n": 0}, xrand.New(1)); err == nil {
		t.Fatal("clique with n=0 must error")
	}
	if _, err := Build("star", Params{"n": 4, "center": 9}, xrand.New(1)); err == nil {
		t.Fatal("star with out-of-range center must error")
	}
	if _, err := Build("torus", Params{"rows": 3}, xrand.New(1)); err == nil {
		t.Fatal("torus without cols must error")
	}
}

func TestFamiliesSortedAndNonEmpty(t *testing.T) {
	fams := Families()
	if len(fams) < 10 {
		t.Fatalf("expected at least 10 registered families, got %v", fams)
	}
	for i := 1; i < len(fams); i++ {
		if fams[i-1] >= fams[i] {
			t.Fatalf("Families() not sorted: %v", fams)
		}
	}
	if !IsFamily("clique") || IsFamily("no-such-family") {
		t.Fatal("IsFamily misreports registration")
	}
}
