package gen

import (
	"errors"
	"fmt"

	"dynamicrumor/internal/graph"
	"dynamicrumor/internal/xrand"
)

// ErrNoRegularGraph is returned when the requested (n, d) combination admits
// no simple d-regular graph (n*d odd, or d >= n).
var ErrNoRegularGraph = errors.New("gen: no simple regular graph with these parameters")

// RandomRegular returns a random d-regular simple graph on n vertices using
// the pairing (configuration) model followed by edge-switching repair:
// half-edges are paired uniformly at random, and any self-loop or multi-edge
// is removed by swapping it with a uniformly random other pair (a standard
// double-edge switch), which preserves all degrees. The repair converges
// quickly for every constant d, unlike whole-graph rejection which becomes
// hopeless already at d = 6.
func RandomRegular(n, d int, rng *xrand.RNG) (*graph.Graph, error) {
	if d < 0 || d >= n || (n*d)%2 != 0 {
		return nil, ErrNoRegularGraph
	}
	if d == 0 {
		return graph.FromEdges(n, nil), nil
	}
	const maxAttempts = 50
	for attempt := 0; attempt < maxAttempts; attempt++ {
		if g, ok := randomRegularAttempt(n, d, rng); ok {
			return g, nil
		}
	}
	return nil, fmt.Errorf("gen: random regular graph n=%d d=%d: %w", n, d,
		errors.New("pairing model with switching repair failed to produce a simple graph"))
}

// randomRegularAttempt makes one pairing and tries to repair it with random
// double-edge switches. It reports failure if the repair does not converge.
func randomRegularAttempt(n, d int, rng *xrand.RNG) (*graph.Graph, bool) {
	stubs := make([]int, n*d)
	for i := range stubs {
		stubs[i] = i / d
	}
	rng.Shuffle(stubs)
	m := len(stubs) / 2
	pairU := make([]int, m)
	pairV := make([]int, m)
	count := make(map[graph.Edge]int, m)
	key := func(u, v int) graph.Edge { return graph.Edge{U: u, V: v}.Canonical() }
	for i := 0; i < m; i++ {
		pairU[i], pairV[i] = stubs[2*i], stubs[2*i+1]
		if pairU[i] != pairV[i] {
			count[key(pairU[i], pairV[i])]++
		}
	}
	isBad := func(i int) bool {
		return pairU[i] == pairV[i] || count[key(pairU[i], pairV[i])] > 1
	}
	remove := func(i int) {
		if pairU[i] != pairV[i] {
			count[key(pairU[i], pairV[i])]--
		}
	}
	add := func(i int) {
		if pairU[i] != pairV[i] {
			count[key(pairU[i], pairV[i])]++
		}
	}
	// Repair loop: repeatedly pick a bad pair and switch it with a random
	// other pair. Each successful switch strictly reduces the number of bad
	// incidences in expectation; cap the work generously.
	maxSwitches := 200 * (m + 10)
	for iter := 0; iter < maxSwitches; iter++ {
		bad := -1
		for i := 0; i < m; i++ {
			if isBad(i) {
				bad = i
				break
			}
		}
		if bad == -1 {
			b := graph.NewBuilder(n)
			for i := 0; i < m; i++ {
				b.AddEdge(pairU[i], pairV[i])
			}
			g := b.Build()
			if ok, got := g.IsRegular(); ok && got == d {
				return g, true
			}
			return nil, false
		}
		other := rng.Intn(m)
		if other == bad {
			continue
		}
		// Propose the switch (u1,v1),(u2,v2) -> (u1,v2),(u2,v1).
		u1, v1 := pairU[bad], pairV[bad]
		u2, v2 := pairU[other], pairV[other]
		if u1 == v2 || u2 == v1 {
			continue
		}
		newA, newB := key(u1, v2), key(u2, v1)
		if count[newA] > 0 || count[newB] > 0 || newA == newB {
			continue
		}
		remove(bad)
		remove(other)
		pairV[bad], pairV[other] = v2, v1
		add(bad)
		add(other)
	}
	return nil, false
}

// CirculantRegular returns a deterministic connected d-regular graph on n
// vertices built from a circulant: offsets 1, 2, ..., d/2 (plus n/2 when d is
// odd and n is even). These graphs have constant conductance for constant d
// when the offsets are spread, but here they are primarily used as simple
// deterministic regular substrates; use Expander for Θ(1)-conductance graphs.
func CirculantRegular(n, d int) (*graph.Graph, error) {
	if d < 0 || d >= n || (n*d)%2 != 0 {
		return nil, ErrNoRegularGraph
	}
	if d == 0 {
		return graph.FromEdges(n, nil), nil
	}
	offsets := make([]int, 0, d/2+1)
	for o := 1; o <= d/2; o++ {
		offsets = append(offsets, o)
	}
	if d%2 == 1 {
		offsets = append(offsets, n/2)
	}
	g := Circulant(n, offsets)
	if ok, got := g.IsRegular(); !ok || got != d {
		return nil, fmt.Errorf("gen: circulant construction produced degree %d instead of %d", got, d)
	}
	return g, nil
}

// AppendCirculant emits the edges of the circulant graph on n vertices with
// the given offsets into b, renumbered through vmap (vmap[i] is the builder
// vertex id of circulant vertex i; a nil vmap is the identity). The edge set
// matches Circulant(n, offsets); duplicates are dropped by the builder.
func AppendCirculant(b *graph.Builder, vmap []int, n int, offsets []int) {
	id := func(v int) int {
		if vmap == nil {
			return v
		}
		return vmap[v]
	}
	for v := 0; v < n; v++ {
		for _, o := range offsets {
			o = ((o % n) + n) % n
			if o == 0 {
				continue
			}
			b.AddEdge(id(v), id((v+o)%n))
		}
	}
}

// Expander returns a connected graph with maximum degree at most maxDegree
// and conductance Θ(1): the union of maxDegree/2 independent uniformly random
// Hamiltonian cycles. A single random cycle already makes the graph connected
// and spanning; the union of two or more is an expander with high
// probability. For the paper's constructions the only requirements are
// constant average degree and Φ = Θ(1); tests verify the conductance
// empirically.
//
// If maxDegree < 4 it is raised to 4.
func Expander(n, maxDegree int, rng *xrand.RNG) *graph.Graph {
	b := graph.NewBuilder(n)
	AppendExpander(b, n, maxDegree, rng, nil)
	return b.Build()
}

// AppendExpander resets b to n vertices and emits one Expander(n, maxDegree)
// sample into it, consuming exactly the stream Expander consumes (which is
// implemented on top of it). perm is an optional permutation scratch slice;
// when its capacity is at least n the emission is allocation-free in a warm
// builder.
func AppendExpander(b *graph.Builder, n, maxDegree int, rng *xrand.RNG, perm *[]int) {
	b.Reset(n)
	if maxDegree < 4 {
		maxDegree = 4
	}
	if n <= maxDegree+1 {
		AppendClique(b, n)
		return
	}
	var scratch []int
	if perm != nil && cap(*perm) >= n {
		scratch = (*perm)[:n]
	} else {
		scratch = make([]int, n)
		if perm != nil {
			*perm = scratch
		}
	}
	cycles := maxDegree / 2
	for c := 0; c < cycles; c++ {
		rng.PermInto(scratch)
		for i := 0; i < n; i++ {
			b.AddEdge(scratch[i], scratch[(i+1)%n])
		}
	}
}

// NearRegular returns a connected graph on n vertices in which every vertex
// has degree baseDegree except vertex special which has degree specialDegree.
// This is the graph G(A, d1, d2) of Section 5.1. Both degrees must be even,
// 2 <= baseDegree < n, baseDegree <= specialDegree < n.
//
// Construction: start from the circulant with offsets 1..baseDegree/2 (every
// vertex has degree baseDegree and the graph is connected via offset 1), then
// add (specialDegree-baseDegree)/2 extra "chords" through the special vertex:
// for each extra pair, pick two distinct non-adjacent neighbors-to-be u,w of
// special that are adjacent to each other via a circulant edge not incident
// to special, remove {u,w} and add {special,u}, {special,w}. This keeps u and
// w at degree baseDegree and raises special by 2 per operation.
func NearRegular(n, baseDegree, specialDegree, special int) (*graph.Graph, error) {
	b := graph.NewBuilder(n)
	if err := AppendNearRegular(b, nil, n, baseDegree, specialDegree, special, nil, nil); err != nil {
		return nil, err
	}
	g := b.Build()
	if g.Degree(special) != specialDegree {
		return nil, fmt.Errorf("gen: NearRegular produced special degree %d, want %d", g.Degree(special), specialDegree)
	}
	return g, nil
}

// AppendNearRegular emits the edge set of NearRegular(n, baseDegree,
// specialDegree, special) into b, renumbered through vmap (nil vmap is the
// identity). removed1 and extraAdj are optional scratch slices of length >= n
// (allocated when nil or too short); their contents are overwritten. The
// rewiring plan is computed combinatorially over the circulant — every chord
// candidate is an offset-1 edge, and special's adjacency is circulant
// distance plus previously added chords — so no intermediate graphs are
// built and the emitted edges match the historical rebuild-per-rewire
// implementation exactly.
func AppendNearRegular(b *graph.Builder, vmap []int, n, baseDegree, specialDegree, special int, removed1, extraAdj []bool) error {
	if baseDegree < 2 || baseDegree%2 != 0 || specialDegree%2 != 0 ||
		baseDegree >= n || specialDegree >= n || specialDegree < baseDegree {
		return fmt.Errorf("gen: NearRegular invalid parameters n=%d base=%d special=%d",
			n, baseDegree, specialDegree)
	}
	if special < 0 || special >= n {
		return fmt.Errorf("gen: NearRegular special vertex %d out of range", special)
	}
	if len(removed1) < n {
		removed1 = make([]bool, n)
	}
	if len(extraAdj) < n {
		extraAdj = make([]bool, n)
	}
	for i := 0; i < n; i++ {
		removed1[i] = false
		extraAdj[i] = false
	}
	// hasCirc reports adjacency in the base circulant (offsets 1..base/2).
	hasCirc := func(a, c int) bool {
		d := c - a
		if d < 0 {
			d = -d
		}
		if n-d < d {
			d = n - d
		}
		return d >= 1 && d <= baseDegree/2
	}
	extra := (specialDegree - baseDegree) / 2
	removed := 0
	for shift := 2; removed < extra && shift < n-2; shift += 2 {
		u := (special + shift) % n
		w := (u + 1) % n
		if u == special || w == special {
			continue
		}
		// The chord {u, w} must still exist (it is the offset-1 circulant
		// edge at u; chords added to special never coincide with it since
		// u, w != special), and neither endpoint may already be adjacent to
		// special.
		if removed1[u] || hasCirc(special, u) || extraAdj[u] || hasCirc(special, w) || extraAdj[w] {
			continue
		}
		removed1[u] = true
		extraAdj[u] = true
		extraAdj[w] = true
		removed++
	}
	if removed < extra {
		return fmt.Errorf("gen: NearRegular could not reach degree %d (only %d rewires)", specialDegree, baseDegree+2*removed)
	}
	id := func(v int) int {
		if vmap == nil {
			return v
		}
		return vmap[v]
	}
	// Base circulant minus the removed offset-1 chords.
	for v := 0; v < n; v++ {
		for o := 1; o <= baseDegree/2; o++ {
			if o == 1 && removed1[v] {
				continue
			}
			b.AddEdge(id(v), id((v+o)%n))
		}
	}
	// The chords through the special vertex.
	for v := 0; v < n; v++ {
		if extraAdj[v] {
			b.AddEdge(id(special), id(v))
		}
	}
	return nil
}
