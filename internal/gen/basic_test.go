package gen

import (
	"testing"

	"dynamicrumor/internal/graph"
	"dynamicrumor/internal/xrand"
)

func validate(t *testing.T, g *graph.Graph) {
	t.Helper()
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestClique(t *testing.T) {
	g := Clique(5)
	validate(t, g)
	if g.N() != 5 || g.M() != 10 {
		t.Fatalf("K5 has n=%d m=%d", g.N(), g.M())
	}
	if ok, d := g.IsRegular(); !ok || d != 4 {
		t.Fatalf("K5 regularity = (%v,%d)", ok, d)
	}
	if g.Diameter() != 1 {
		t.Fatalf("K5 diameter = %d", g.Diameter())
	}
}

func TestCliqueSmall(t *testing.T) {
	if g := Clique(1); g.N() != 1 || g.M() != 0 {
		t.Fatal("K1 wrong")
	}
	if g := Clique(0); g.N() != 0 || g.M() != 0 {
		t.Fatal("K0 wrong")
	}
}

func TestStar(t *testing.T) {
	g := Star(6, 0)
	validate(t, g)
	if g.M() != 5 || g.Degree(0) != 5 {
		t.Fatalf("star m=%d deg(center)=%d", g.M(), g.Degree(0))
	}
	for v := 1; v < 6; v++ {
		if g.Degree(v) != 1 {
			t.Fatalf("leaf %d degree %d", v, g.Degree(v))
		}
	}
	g2 := Star(6, 3)
	if g2.Degree(3) != 5 {
		t.Fatal("star with non-zero center wrong")
	}
}

func TestStarPanicsBadCenter(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Star with bad center did not panic")
		}
	}()
	Star(3, 5)
}

func TestPathAndCycle(t *testing.T) {
	p := Path(5)
	validate(t, p)
	if p.M() != 4 || p.Diameter() != 4 {
		t.Fatalf("path m=%d diam=%d", p.M(), p.Diameter())
	}
	c := Cycle(6)
	validate(t, c)
	if c.M() != 6 || c.Diameter() != 3 {
		t.Fatalf("cycle m=%d diam=%d", c.M(), c.Diameter())
	}
	if ok, d := c.IsRegular(); !ok || d != 2 {
		t.Fatal("cycle not 2-regular")
	}
	if Cycle(2).M() != 1 {
		t.Fatal("Cycle(2) should be a single edge")
	}
	if Cycle(1).M() != 0 {
		t.Fatal("Cycle(1) should have no edges")
	}
}

func TestCompleteBipartite(t *testing.T) {
	g := CompleteBipartite(3, 4)
	validate(t, g)
	if g.N() != 7 || g.M() != 12 {
		t.Fatalf("K_{3,4} n=%d m=%d", g.N(), g.M())
	}
	for v := 0; v < 3; v++ {
		if g.Degree(v) != 4 {
			t.Fatalf("left vertex degree %d", g.Degree(v))
		}
	}
	for v := 3; v < 7; v++ {
		if g.Degree(v) != 3 {
			t.Fatalf("right vertex degree %d", g.Degree(v))
		}
	}
}

func TestGridAndTorus(t *testing.T) {
	g := Grid(3, 4)
	validate(t, g)
	if g.N() != 12 || g.M() != 3*3+4*2 {
		t.Fatalf("grid n=%d m=%d", g.N(), g.M())
	}
	if !g.IsConnected() {
		t.Fatal("grid disconnected")
	}
	tor := Torus(4, 5)
	validate(t, tor)
	if ok, d := tor.IsRegular(); !ok || d != 4 {
		t.Fatalf("torus regularity (%v,%d)", ok, d)
	}
	if tor.M() != 2*4*5 {
		t.Fatalf("torus m=%d", tor.M())
	}
}

func TestHypercube(t *testing.T) {
	g := Hypercube(4)
	validate(t, g)
	if g.N() != 16 || g.M() != 32 {
		t.Fatalf("Q4 n=%d m=%d", g.N(), g.M())
	}
	if ok, d := g.IsRegular(); !ok || d != 4 {
		t.Fatal("Q4 not 4-regular")
	}
	if g.Diameter() != 4 {
		t.Fatalf("Q4 diameter = %d", g.Diameter())
	}
	if Hypercube(0).N() != 1 {
		t.Fatal("Q0 should have a single vertex")
	}
}

func TestHypercubePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Hypercube(-1) did not panic")
		}
	}()
	Hypercube(-1)
}

func TestCirculant(t *testing.T) {
	g := Circulant(10, []int{1, 3})
	validate(t, g)
	if ok, d := g.IsRegular(); !ok || d != 4 {
		t.Fatalf("circulant regularity (%v,%d)", ok, d)
	}
	if !g.IsConnected() {
		t.Fatal("circulant disconnected")
	}
	// Offsets 0 and n are ignored.
	g2 := Circulant(5, []int{0, 5, 1})
	if ok, d := g2.IsRegular(); !ok || d != 2 {
		t.Fatalf("circulant with degenerate offsets (%v,%d)", ok, d)
	}
}

func TestBarbell(t *testing.T) {
	g := Barbell(5)
	validate(t, g)
	if g.N() != 10 || g.M() != 2*10+1 {
		t.Fatalf("barbell n=%d m=%d", g.N(), g.M())
	}
	if !g.IsConnected() {
		t.Fatal("barbell disconnected")
	}
	if !g.HasEdge(4, 5) {
		t.Fatal("barbell bridge missing")
	}
}

func TestCliqueWithPendant(t *testing.T) {
	g := CliqueWithPendant(6)
	validate(t, g)
	if g.N() != 7 || g.Degree(6) != 1 || g.Degree(0) != 6 {
		t.Fatalf("clique+pendant degrees wrong: n=%d deg(6)=%d deg(0)=%d", g.N(), g.Degree(6), g.Degree(0))
	}
	for v := 1; v < 6; v++ {
		if g.Degree(v) != 5 {
			t.Fatalf("clique vertex %d degree %d", v, g.Degree(v))
		}
	}
}

func TestTwoCliquesBridged(t *testing.T) {
	left := []int{0, 1, 2}
	right := []int{3, 4, 5}
	g := TwoCliquesBridged(6, left, right, 0, 5)
	validate(t, g)
	if g.M() != 3+3+1 {
		t.Fatalf("two cliques m=%d", g.M())
	}
	if !g.HasEdge(0, 5) {
		t.Fatal("bridge missing")
	}
	if !g.IsConnected() {
		t.Fatal("disconnected")
	}
}

func TestErdosRenyiEdgeCount(t *testing.T) {
	rng := xrand.New(5)
	const n = 200
	p := 0.05
	total := 0
	const reps = 20
	for i := 0; i < reps; i++ {
		g := ErdosRenyi(n, p, rng)
		validate(t, g)
		total += g.M()
	}
	mean := float64(total) / reps
	want := p * float64(n*(n-1)) / 2
	if mean < 0.85*want || mean > 1.15*want {
		t.Fatalf("ER mean edges %.1f, want about %.1f", mean, want)
	}
}

func TestErdosRenyiExtremes(t *testing.T) {
	rng := xrand.New(6)
	if g := ErdosRenyi(10, 0, rng); g.M() != 0 {
		t.Fatal("p=0 graph has edges")
	}
	if g := ErdosRenyi(10, 1, rng); g.M() != 45 {
		t.Fatal("p=1 graph is not complete")
	}
	if g := ErdosRenyi(1, 0.5, rng); g.N() != 1 || g.M() != 0 {
		t.Fatal("n=1 graph wrong")
	}
}

func TestRandomConnected(t *testing.T) {
	rng := xrand.New(7)
	g := RandomConnected(50, 0.05, rng)
	validate(t, g)
	if !g.IsConnected() {
		t.Fatal("RandomConnected returned a disconnected graph")
	}
	if RandomConnected(1, 0.5, rng).N() != 1 {
		t.Fatal("n=1 wrong")
	}
}

func TestRandomRegular(t *testing.T) {
	rng := xrand.New(8)
	for _, tc := range []struct{ n, d int }{{10, 3}, {20, 4}, {50, 5}, {16, 0}} {
		g, err := RandomRegular(tc.n, tc.d, rng)
		if err != nil {
			t.Fatalf("RandomRegular(%d,%d): %v", tc.n, tc.d, err)
		}
		validate(t, g)
		if ok, d := g.IsRegular(); !ok || d != tc.d {
			t.Fatalf("RandomRegular(%d,%d) gave degree %d (regular=%v)", tc.n, tc.d, d, ok)
		}
	}
}

func TestRandomRegularRejectsImpossible(t *testing.T) {
	rng := xrand.New(9)
	if _, err := RandomRegular(5, 3, rng); err == nil {
		t.Fatal("n*d odd should fail")
	}
	if _, err := RandomRegular(4, 4, rng); err == nil {
		t.Fatal("d >= n should fail")
	}
}

func TestCirculantRegular(t *testing.T) {
	for _, tc := range []struct{ n, d int }{{10, 4}, {12, 3}, {9, 2}, {8, 0}} {
		g, err := CirculantRegular(tc.n, tc.d)
		if err != nil {
			t.Fatalf("CirculantRegular(%d,%d): %v", tc.n, tc.d, err)
		}
		validate(t, g)
		if ok, d := g.IsRegular(); !ok || d != tc.d {
			t.Fatalf("CirculantRegular(%d,%d) degree %d regular=%v", tc.n, tc.d, d, ok)
		}
		if tc.d >= 2 && !g.IsConnected() {
			t.Fatalf("CirculantRegular(%d,%d) disconnected", tc.n, tc.d)
		}
	}
	if _, err := CirculantRegular(5, 3); err == nil {
		t.Fatal("odd n*d should fail")
	}
}

func TestExpanderConnectedAndSparse(t *testing.T) {
	rng := xrand.New(10)
	for _, n := range []int{10, 64, 257, 1000} {
		g := Expander(n, 4, rng)
		validate(t, g)
		if !g.IsConnected() {
			t.Fatalf("expander on %d vertices disconnected", n)
		}
		if g.MaxDegree() > 8 {
			t.Fatalf("expander max degree %d too large", g.MaxDegree())
		}
	}
}

func TestExpanderTinyFallsBackToClique(t *testing.T) {
	rng := xrand.New(11)
	g := Expander(3, 4, rng)
	if g.M() != 3 {
		t.Fatalf("tiny expander m=%d, want 3", g.M())
	}
}

func TestNearRegular(t *testing.T) {
	g, err := NearRegular(30, 4, 10, 7)
	if err != nil {
		t.Fatal(err)
	}
	validate(t, g)
	if !g.IsConnected() {
		t.Fatal("NearRegular disconnected")
	}
	if g.Degree(7) != 10 {
		t.Fatalf("special degree = %d, want 10", g.Degree(7))
	}
	for v := 0; v < 30; v++ {
		if v == 7 {
			continue
		}
		if g.Degree(v) != 4 {
			t.Fatalf("vertex %d degree %d, want 4", v, g.Degree(v))
		}
	}
}

func TestNearRegularEqualDegrees(t *testing.T) {
	g, err := NearRegular(20, 4, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ok, d := g.IsRegular(); !ok || d != 4 {
		t.Fatal("NearRegular with equal degrees should be regular")
	}
}

func TestNearRegularBadParams(t *testing.T) {
	cases := []struct{ n, d1, d2, s int }{
		{10, 3, 4, 0},   // odd base degree
		{10, 4, 5, 0},   // odd special degree
		{10, 4, 2, 0},   // special < base
		{10, 12, 14, 0}, // degree >= n
		{10, 4, 6, 20},  // special vertex out of range
	}
	for _, c := range cases {
		if _, err := NearRegular(c.n, c.d1, c.d2, c.s); err == nil {
			t.Errorf("NearRegular(%v) should have failed", c)
		}
	}
}
