package gen

import (
	"fmt"
	"math"

	"dynamicrumor/internal/graph"
	"dynamicrumor/internal/xrand"
)

// HkdParams describes the graph H_{k,Δ}(A,B) of Section 4 of the paper:
// a "string of complete bipartite graphs" S_0 - S_1 - ... - S_k bridging two
// constant-degree expanders, where S_0 ⊂ A and S_1,...,S_k ⊂ B.
type HkdParams struct {
	// K is the number of bipartite layers after S_0 (the string has k+1
	// clusters S_0..S_k). Must be >= 1.
	K int
	// Delta is the cluster size Δ = |S_i|. Must be >= 1.
	Delta int
	// A and B are the two sides of the vertex partition, given as disjoint
	// lists of vertex ids covering 0..n-1. |A| must be at least Delta+1 and
	// |B| at least K*Delta+1 so both expanders are non-empty.
	A, B []int
}

// Hkd is the constructed graph together with the bookkeeping the dynamic
// network of Theorem 1.2 and the experiments need: the cluster membership and
// the analytic conductance/diligence scales of Observation 4.1.
type Hkd struct {
	Graph  *graph.Graph
	Params HkdParams
	// Clusters[i] lists the vertices of S_i, for i = 0..K.
	Clusters [][]int
	// ExpanderA and ExpanderB list the vertices of A\S_0 and B\∪S_i.
	ExpanderA, ExpanderB []int
}

// NewHkd builds H_{k,Δ}(A,B). The expanders on A\S_0 and B\∪S_i are random
// 4-regular graphs (with a deterministic circulant fallback); every vertex of
// S_0 (resp. S_k) is additionally joined to Δ distinct vertices of the A-side
// (resp. B-side) expander, spreading those edges so each expander vertex gains
// at most a constant number of them, exactly as prescribed by the paper.
func NewHkd(p HkdParams, rng *xrand.RNG) (*Hkd, error) {
	if p.K < 1 || p.Delta < 1 {
		return nil, fmt.Errorf("gen: Hkd requires K >= 1 and Delta >= 1, got K=%d Delta=%d", p.K, p.Delta)
	}
	if len(p.A) < p.Delta+1 {
		return nil, fmt.Errorf("gen: Hkd side A has %d vertices, need at least Delta+1=%d", len(p.A), p.Delta+1)
	}
	if len(p.B) < p.K*p.Delta+1 {
		return nil, fmt.Errorf("gen: Hkd side B has %d vertices, need at least K*Delta+1=%d", len(p.B), p.K*p.Delta+1)
	}
	n := len(p.A) + len(p.B)
	seen := make([]bool, n)
	for _, v := range append(append([]int(nil), p.A...), p.B...) {
		if v < 0 || v >= n {
			return nil, fmt.Errorf("gen: Hkd vertex %d out of range for n=%d", v, n)
		}
		if seen[v] {
			return nil, fmt.Errorf("gen: Hkd vertex %d appears twice in A ∪ B", v)
		}
		seen[v] = true
	}

	h := &Hkd{Params: p}
	// Clusters: S_0 is the first Delta vertices of A; S_1..S_k take the first
	// K*Delta vertices of B.
	h.Clusters = make([][]int, p.K+1)
	h.Clusters[0] = append([]int(nil), p.A[:p.Delta]...)
	for i := 1; i <= p.K; i++ {
		start := (i - 1) * p.Delta
		h.Clusters[i] = append([]int(nil), p.B[start:start+p.Delta]...)
	}
	h.ExpanderA = append([]int(nil), p.A[p.Delta:]...)
	h.ExpanderB = append([]int(nil), p.B[p.K*p.Delta:]...)

	b := graph.NewBuilder(n)
	if err := AppendHkdEdges(b, p, rng, nil); err != nil {
		return nil, err
	}
	h.Graph = b.Build()
	return h, nil
}

// AppendHkdEdges emits the edges of H_{k,Δ}(A,B) into b, which must span
// len(A)+len(B) vertices. It performs the size validations of NewHkd but
// trusts the caller that A and B are disjoint and cover 0..n-1 (NewHkd checks
// that too). perm, when non-nil, is a reusable permutation scratch buffer so
// the adaptive dynamic network of Theorem 1.2 can rebuild its graph every
// step without allocating; the random stream consumed is identical either
// way.
func AppendHkdEdges(b *graph.Builder, p HkdParams, rng *xrand.RNG, perm *[]int) error {
	if p.K < 1 || p.Delta < 1 {
		return fmt.Errorf("gen: Hkd requires K >= 1 and Delta >= 1, got K=%d Delta=%d", p.K, p.Delta)
	}
	if len(p.A) < p.Delta+1 {
		return fmt.Errorf("gen: Hkd side A has %d vertices, need at least Delta+1=%d", len(p.A), p.Delta+1)
	}
	if len(p.B) < p.K*p.Delta+1 {
		return fmt.Errorf("gen: Hkd side B has %d vertices, need at least K*Delta+1=%d", len(p.B), p.K*p.Delta+1)
	}
	// Step 1: the string of complete bipartite graphs S_i x S_{i+1}, where
	// S_0 = A[:Δ] and S_i = B[(i-1)Δ:iΔ].
	cluster := func(i int) []int {
		if i == 0 {
			return p.A[:p.Delta]
		}
		return p.B[(i-1)*p.Delta : i*p.Delta]
	}
	for i := 0; i < p.K; i++ {
		for _, u := range cluster(i) {
			for _, v := range cluster(i + 1) {
				b.AddEdge(u, v)
			}
		}
	}
	// Step 2: constant-degree expanders on A\S_0 and B\∪S_i.
	expanderA := p.A[p.Delta:]
	expanderB := p.B[p.K*p.Delta:]
	addExpander(b, expanderA, rng, perm)
	addExpander(b, expanderB, rng, perm)
	// Attach S_0 to the A-side expander and S_k to the B-side expander:
	// each cluster vertex gets Delta distinct expander neighbors, spread so
	// every expander vertex gains O(Delta^2 / |expander|) = O(1) edges when
	// Delta = O(sqrt(n)).
	attachCluster(b, cluster(0), expanderA)
	attachCluster(b, cluster(p.K), expanderB)
	return nil
}

// addExpander adds a constant-degree expander over the given vertex ids:
// the same edge set (and random stream) as Expander(m, 4, rng) remapped
// through vertices, emitted directly into b so no intermediate graph is
// materialized. perm, when non-nil, recycles the permutation buffer.
func addExpander(b *graph.Builder, vertices []int, rng *xrand.RNG, perm *[]int) {
	m := len(vertices)
	if m <= 1 {
		return
	}
	if m <= 5 {
		for i := 0; i < m; i++ {
			for j := i + 1; j < m; j++ {
				b.AddEdge(vertices[i], vertices[j])
			}
		}
		return
	}
	// Expander(m, 4, rng) is the union of two uniformly random Hamiltonian
	// cycles; duplicates are dropped by the builder at Build time.
	var p []int
	if perm != nil {
		p = *perm
	}
	if cap(p) < m {
		p = make([]int, m, m+m/2)
	}
	p = p[:m]
	if perm != nil {
		*perm = p
	}
	for c := 0; c < 2; c++ {
		rng.PermInto(p)
		for i := 0; i < m; i++ {
			b.AddEdge(vertices[p[i]], vertices[p[(i+1)%m]])
		}
	}
}

// attachCluster joins every vertex of cluster to delta distinct vertices of
// target (delta = len(cluster)), spreading the edges round-robin so each
// target vertex gains at most ceil(delta^2/len(target)) + 1 edges.
func attachCluster(b *graph.Builder, cluster, target []int) {
	if len(target) == 0 {
		return
	}
	delta := len(cluster)
	pos := 0
	for _, u := range cluster {
		// delta distinct targets for u; if delta > len(target) the paper's
		// precondition Δ = O(√n) is violated, so cap at len(target).
		count := delta
		if count > len(target) {
			count = len(target)
		}
		for i := 0; i < count; i++ {
			b.AddEdge(u, target[(pos+i)%len(target)])
		}
		pos = (pos + count) % len(target)
	}
}

// ConductanceScale returns the analytic conductance scale of Observation 4.1,
// Φ(H_{k,Δ}) = Θ(Δ² / (kΔ² + n)).
func (h *Hkd) ConductanceScale() float64 {
	d := float64(h.Params.Delta)
	k := float64(h.Params.K)
	n := float64(h.Graph.N())
	return d * d / (k*d*d + n)
}

// DiligenceScale returns the analytic diligence scale of Observation 4.1,
// ρ(H_{k,Δ}) = Θ(1/Δ).
func (h *Hkd) DiligenceScale() float64 {
	return 1 / float64(h.Params.Delta)
}

// DefaultK returns the paper's choice k = Θ(log n / log log n) used by the
// Theorem 1.2 construction, always at least 1.
func DefaultK(n int) int {
	if n < 16 {
		return 1
	}
	k := int(math.Round(math.Log(float64(n)) / math.Log(math.Log(float64(n)))))
	if k < 1 {
		k = 1
	}
	return k
}
