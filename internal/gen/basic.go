// Package gen provides the graph generators used by the paper's
// constructions and by the experiment harness: standard families (cliques,
// stars, cycles, hypercubes, expanders, random regular graphs, ...) and the
// paper-specific constructions H_{k,Δ}(A,B) from Section 4 and the regular /
// near-regular graphs G(A,d) and G(A,d1,d2) from Section 5.1.
package gen

import (
	"fmt"

	"dynamicrumor/internal/graph"
)

// Clique returns the complete graph K_n.
func Clique(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	AppendClique(b, n)
	return b.Build()
}

// AppendClique emits the edges of the complete graph on vertices 0..n-1 into
// b (which must already accommodate n vertices). It is the shared emission
// primitive behind Clique and the degenerate complete-graph branches of the
// random-family emitters.
func AppendClique(b *graph.Builder, n int) {
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			b.AddEdge(u, v)
		}
	}
}

// Star returns the star K_{1,n-1} with the given center vertex.
// It panics if center is out of range.
func Star(n, center int) *graph.Graph {
	if center < 0 || center >= n {
		panic(fmt.Sprintf("gen: star center %d out of range for n=%d", center, n))
	}
	b := graph.NewBuilder(n)
	for v := 0; v < n; v++ {
		if v != center {
			b.AddEdge(center, v)
		}
	}
	return b.Build()
}

// Path returns the path 0-1-...-(n-1).
func Path(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for v := 0; v+1 < n; v++ {
		b.AddEdge(v, v+1)
	}
	return b.Build()
}

// Cycle returns the cycle on n vertices (n >= 3 gives a proper cycle; smaller
// n degenerates into a path or an edgeless graph).
func Cycle(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	if n >= 3 {
		for v := 0; v < n; v++ {
			b.AddEdge(v, (v+1)%n)
		}
	} else if n == 2 {
		b.AddEdge(0, 1)
	}
	return b.Build()
}

// CompleteBipartite returns K_{a,b} on a+b vertices: the first a vertices form
// one side and the remaining b vertices the other.
func CompleteBipartite(a, b int) *graph.Graph {
	bu := graph.NewBuilder(a + b)
	for u := 0; u < a; u++ {
		for v := a; v < a+b; v++ {
			bu.AddEdge(u, v)
		}
	}
	return bu.Build()
}

// Grid returns the rows x cols grid graph (4-neighbor lattice, no wraparound).
func Grid(rows, cols int) *graph.Graph {
	b := graph.NewBuilder(rows * cols)
	id := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				b.AddEdge(id(r, c), id(r, c+1))
			}
			if r+1 < rows {
				b.AddEdge(id(r, c), id(r+1, c))
			}
		}
	}
	return b.Build()
}

// Torus returns the rows x cols grid with wraparound in both dimensions,
// which is 4-regular for rows, cols >= 3.
func Torus(rows, cols int) *graph.Graph {
	b := graph.NewBuilder(rows * cols)
	id := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			b.AddEdge(id(r, c), id(r, (c+1)%cols))
			b.AddEdge(id(r, c), id((r+1)%rows, c))
		}
	}
	return b.Build()
}

// Hypercube returns the d-dimensional hypercube on 2^d vertices.
// It panics if d < 0 or d > 30.
func Hypercube(d int) *graph.Graph {
	if d < 0 || d > 30 {
		panic(fmt.Sprintf("gen: hypercube dimension %d out of range", d))
	}
	n := 1 << uint(d)
	b := graph.NewBuilder(n)
	for v := 0; v < n; v++ {
		for bit := 0; bit < d; bit++ {
			b.AddEdge(v, v^(1<<uint(bit)))
		}
	}
	return b.Build()
}

// Circulant returns the circulant graph on n vertices where each vertex v is
// connected to v±o (mod n) for every offset o in offsets. Offsets equal to 0
// or n are ignored.
func Circulant(n int, offsets []int) *graph.Graph {
	b := graph.NewBuilder(n)
	for v := 0; v < n; v++ {
		for _, o := range offsets {
			o = ((o % n) + n) % n
			if o == 0 {
				continue
			}
			b.AddEdge(v, (v+o)%n)
		}
	}
	return b.Build()
}

// Barbell returns two cliques of size k joined by a single edge between
// vertex k-1 (last vertex of the first clique) and vertex k (first vertex of
// the second clique). The total vertex count is 2k.
func Barbell(k int) *graph.Graph {
	b := graph.NewBuilder(2 * k)
	for u := 0; u < k; u++ {
		for v := u + 1; v < k; v++ {
			b.AddEdge(u, v)
			b.AddEdge(k+u, k+v)
		}
	}
	if k >= 1 {
		b.AddEdge(k-1, k)
	}
	return b.Build()
}

// CliqueWithPendant returns the n-node clique on vertices 0..n-1 plus a
// pendant vertex n attached to vertex 0, matching G^(0) of the dynamic
// network G1 in Figure 1(a) of the paper. The total vertex count is n+1.
func CliqueWithPendant(n int) *graph.Graph {
	b := graph.NewBuilder(n + 1)
	AppendClique(b, n)
	if n >= 1 {
		b.AddEdge(0, n)
	}
	return b.Build()
}

// TwoCliquesBridged returns two cliques over the vertex sets left and right
// joined by the single edge {bridgeLeft, bridgeRight}, matching G^(1) of the
// dynamic network G1 in Figure 1(a). n is the total number of vertices of the
// returned graph; left and right must partition a subset of 0..n-1 and the
// bridge endpoints must belong to the respective sides.
func TwoCliquesBridged(n int, left, right []int, bridgeLeft, bridgeRight int) *graph.Graph {
	b := graph.NewBuilder(n)
	addClique := func(vs []int) {
		for i := 0; i < len(vs); i++ {
			for j := i + 1; j < len(vs); j++ {
				b.AddEdge(vs[i], vs[j])
			}
		}
	}
	addClique(left)
	addClique(right)
	b.AddEdge(bridgeLeft, bridgeRight)
	return b.Build()
}
