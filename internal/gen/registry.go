package gen

import (
	"fmt"
	"math"
	"sort"

	"dynamicrumor/internal/graph"
	"dynamicrumor/internal/xrand"
)

// Params carries the numeric parameters of a serializable network spec.
// JSON numbers decode to float64, so the map is float-valued; Int rounds to
// the nearest integer when an integer parameter is read, so values computed
// with float error by external tools do not shift a size off by one.
type Params map[string]float64

// Has reports whether the parameter is present.
func (p Params) Has(key string) bool {
	_, ok := p[key]
	return ok
}

// Int returns the parameter as an integer (rounded to nearest), or def when
// absent.
func (p Params) Int(key string, def int) int {
	v, ok := p[key]
	if !ok {
		return def
	}
	return int(math.Round(v))
}

// Float returns the parameter, or def when absent.
func (p Params) Float(key string, def float64) float64 {
	v, ok := p[key]
	if !ok {
		return def
	}
	return v
}

// NeedInt returns the mandatory integer parameter key, at least min; the
// family name only labels the error.
func (p Params) NeedInt(family, key string, min int) (int, error) {
	if !p.Has(key) {
		return 0, fmt.Errorf("network family %q requires parameter %q", family, key)
	}
	v := p.Int(key, 0)
	if v < min {
		return 0, fmt.Errorf("network family %q requires %s >= %d, got %d", family, key, min, v)
	}
	return v, nil
}

// CheckKeys rejects parameters outside the accepted set, so a misspelled key
// fails loudly instead of silently selecting the family's default value.
func (p Params) CheckKeys(family string, accepted []string) error {
	var unknown []string
	for key := range p {
		ok := false
		for _, a := range accepted {
			if key == a {
				ok = true
				break
			}
		}
		if !ok {
			unknown = append(unknown, fmt.Sprintf("%q", key))
		}
	}
	if len(unknown) == 0 {
		return nil
	}
	sort.Strings(unknown)
	return fmt.Errorf("network family %q does not accept parameter(s) %s (accepted: %v)",
		family, joinComma(unknown), accepted)
}

func joinComma(xs []string) string {
	out := ""
	for i, x := range xs {
		if i > 0 {
			out += ", "
		}
		out += x
	}
	return out
}

// Factory builds a graph of one family from declarative parameters. Random
// families draw from rng; deterministic ones ignore it.
type Factory func(p Params, rng *xrand.RNG) (*graph.Graph, error)

// EmitScratch carries the recyclable working buffers an Emitter may need
// beyond the builder itself (currently a permutation slice). One scratch
// belongs to one batch worker; a nil scratch makes the emitter allocate
// fresh buffers.
type EmitScratch struct {
	// Perm is the permutation scratch of cycle-union constructions.
	Perm []int
}

// Emitter emits a family's edge set into a recycled builder (resetting the
// builder to the right vertex count first), so batch workers can rebuild a
// random family every repetition without allocating. An emitter must consume
// rng exactly as the family's Build does — draw for draw — so the two paths
// produce bit-identical graphs from equal generator states.
type Emitter func(b *graph.Builder, p Params, rng *xrand.RNG, sc *EmitScratch) error

// StartFunc designates the family's default start vertex for a built graph
// (e.g. a leaf of the star rather than its center).
type StartFunc func(p Params, g *graph.Graph) int

// Family describes one registered graph family: how to build it, which
// parameter keys it accepts, and (optionally) which vertex a rumor should
// start at by default.
type Family struct {
	// Build constructs the graph.
	Build Factory
	// Emit optionally emits the edge set into a recycled builder; nil means
	// the family only supports Build. When set, Emit and Build must agree
	// bit for bit (BuildInto uses Emit, Build may be implemented on top of
	// it).
	Emit Emitter
	// Keys lists the accepted parameter names; Build rejects others.
	Keys []string
	// Start designates the default start vertex; nil means vertex 0.
	Start StartFunc
	// Deterministic declares that Build never draws from its rng: equal
	// parameters always produce the identical graph. The batch engine relies
	// on this to build the graph once and share it read-only across every
	// repetition and worker — which cannot shift any repetition's RNG stream
	// precisely because no draws are skipped. The registry test suite
	// enforces the no-draw contract by building every deterministic family
	// with a nil rng.
	Deterministic bool
}

// families is the name → family registry behind serializable network specs.
var families = map[string]Family{}

// Register adds a graph family to the registry; it panics on duplicate names
// so two packages cannot silently fight over one.
func Register(name string, fam Family) {
	if _, dup := families[name]; dup {
		panic(fmt.Sprintf("gen: duplicate family %q", name))
	}
	if fam.Build == nil {
		panic(fmt.Sprintf("gen: family %q registered without a Build factory", name))
	}
	families[name] = fam
}

// Build constructs a graph of the named family, rejecting unknown parameter
// keys.
func Build(name string, p Params, rng *xrand.RNG) (*graph.Graph, error) {
	fam, ok := families[name]
	if !ok {
		return nil, fmt.Errorf("gen: unknown graph family %q", name)
	}
	if err := p.CheckKeys(name, fam.Keys); err != nil {
		return nil, err
	}
	return fam.Build(p, rng)
}

// BuildInto constructs a graph of the named family through a recycled
// builder and graph buffer when the family has an emitter, falling back to a
// fresh Build otherwise. b must not be nil; dst and sc may be nil (a graph
// resp. fresh emitter buffers are then allocated) and are only reused on the
// emitter path — callers check the returned pointer, exactly as with
// Builder.BuildInto. This is the batch engine's steady-state path for
// rebuilding random static families once per repetition without allocating.
func BuildInto(name string, p Params, rng *xrand.RNG, b *graph.Builder, dst *graph.Graph, sc *EmitScratch) (*graph.Graph, error) {
	fam, ok := families[name]
	if !ok {
		return nil, fmt.Errorf("gen: unknown graph family %q", name)
	}
	if err := p.CheckKeys(name, fam.Keys); err != nil {
		return nil, err
	}
	if fam.Emit == nil {
		return fam.Build(p, rng)
	}
	if err := fam.Emit(b, p, rng, sc); err != nil {
		return nil, err
	}
	return b.BuildInto(dst), nil
}

// IsDeterministic reports whether the named family declares the no-draw
// contract (see Family.Deterministic); false for unknown families.
func IsDeterministic(name string) bool {
	return families[name].Deterministic
}

// DefaultStart returns the family's designated start vertex for a graph
// built from the given parameters (vertex 0 unless the family declares
// otherwise).
func DefaultStart(name string, p Params, g *graph.Graph) int {
	fam, ok := families[name]
	if !ok || fam.Start == nil {
		return 0
	}
	return fam.Start(p, g)
}

// AllowedKeys returns the accepted parameter names of a family.
func AllowedKeys(name string) ([]string, bool) {
	fam, ok := families[name]
	return fam.Keys, ok
}

// IsFamily reports whether name is a registered graph family.
func IsFamily(name string) bool {
	_, ok := families[name]
	return ok
}

// Families returns the registered family names in sorted order.
func Families() []string {
	out := make([]string, 0, len(families))
	for name := range families {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// hypercubeDim derives the dimension from either an explicit "d" or the
// largest hypercube fitting inside "n" vertices (the CLI's historical rule).
func hypercubeDim(p Params) (int, error) {
	if p.Has("d") {
		d := p.Int("d", 0)
		if d < 0 || d > 30 {
			return 0, fmt.Errorf("gen: hypercube dimension %d out of range [0, 30]", d)
		}
		return d, nil
	}
	n, err := p.NeedInt("hypercube", "n", 1)
	if err != nil {
		return 0, err
	}
	d := 0
	for 1<<uint(d+1) <= n {
		d++
	}
	return d, nil
}

func init() {
	Register("clique", Family{Deterministic: true, Keys: []string{"n"}, Build: func(p Params, _ *xrand.RNG) (*graph.Graph, error) {
		n, err := p.NeedInt("clique", "n", 1)
		if err != nil {
			return nil, err
		}
		return Clique(n), nil
	}})
	Register("star", Family{
		Deterministic: true,
		Keys:          []string{"n", "center"},
		Build: func(p Params, _ *xrand.RNG) (*graph.Graph, error) {
			n, err := p.NeedInt("star", "n", 1)
			if err != nil {
				return nil, err
			}
			center := p.Int("center", 0)
			if center < 0 || center >= n {
				return nil, fmt.Errorf("gen: star center %d out of range [0, %d)", center, n)
			}
			return Star(n, center), nil
		},
		// A rumor started at the center trivializes the process; default to
		// a leaf (the historical CLI behaviour).
		Start: func(p Params, g *graph.Graph) int {
			if g.N() < 2 {
				return 0
			}
			if p.Int("center", 0) == 0 {
				return 1
			}
			return 0
		},
	})
	Register("path", Family{Deterministic: true, Keys: []string{"n"}, Build: func(p Params, _ *xrand.RNG) (*graph.Graph, error) {
		n, err := p.NeedInt("path", "n", 1)
		if err != nil {
			return nil, err
		}
		return Path(n), nil
	}})
	Register("cycle", Family{Deterministic: true, Keys: []string{"n"}, Build: func(p Params, _ *xrand.RNG) (*graph.Graph, error) {
		n, err := p.NeedInt("cycle", "n", 1)
		if err != nil {
			return nil, err
		}
		return Cycle(n), nil
	}})
	Register("hypercube", Family{Deterministic: true, Keys: []string{"n", "d"}, Build: func(p Params, _ *xrand.RNG) (*graph.Graph, error) {
		d, err := hypercubeDim(p)
		if err != nil {
			return nil, err
		}
		return Hypercube(d), nil
	}})
	Register("torus", Family{Deterministic: true, Keys: []string{"rows", "cols"}, Build: func(p Params, _ *xrand.RNG) (*graph.Graph, error) {
		rows, err := p.NeedInt("torus", "rows", 1)
		if err != nil {
			return nil, err
		}
		cols, err := p.NeedInt("torus", "cols", 1)
		if err != nil {
			return nil, err
		}
		return Torus(rows, cols), nil
	}})
	Register("grid", Family{Deterministic: true, Keys: []string{"rows", "cols"}, Build: func(p Params, _ *xrand.RNG) (*graph.Graph, error) {
		rows, err := p.NeedInt("grid", "rows", 1)
		if err != nil {
			return nil, err
		}
		cols, err := p.NeedInt("grid", "cols", 1)
		if err != nil {
			return nil, err
		}
		return Grid(rows, cols), nil
	}})
	Register("complete-bipartite", Family{Deterministic: true, Keys: []string{"a", "b"}, Build: func(p Params, _ *xrand.RNG) (*graph.Graph, error) {
		a, err := p.NeedInt("complete-bipartite", "a", 1)
		if err != nil {
			return nil, err
		}
		b, err := p.NeedInt("complete-bipartite", "b", 1)
		if err != nil {
			return nil, err
		}
		return CompleteBipartite(a, b), nil
	}})
	Register("barbell", Family{Deterministic: true, Keys: []string{"k"}, Build: func(p Params, _ *xrand.RNG) (*graph.Graph, error) {
		k, err := p.NeedInt("barbell", "k", 1)
		if err != nil {
			return nil, err
		}
		return Barbell(k), nil
	}})
	Register("expander", Family{
		Keys: []string{"n", "degree"},
		Build: func(p Params, rng *xrand.RNG) (*graph.Graph, error) {
			n, err := p.NeedInt("expander", "n", 1)
			if err != nil {
				return nil, err
			}
			return Expander(n, p.Int("degree", 6), rng), nil
		},
		Emit: func(b *graph.Builder, p Params, rng *xrand.RNG, sc *EmitScratch) error {
			n, err := p.NeedInt("expander", "n", 1)
			if err != nil {
				return err
			}
			var perm *[]int
			if sc != nil {
				perm = &sc.Perm
			}
			AppendExpander(b, n, p.Int("degree", 6), rng, perm)
			return nil
		},
	})
	Register("er", Family{
		Keys: []string{"n", "p"},
		Build: func(p Params, rng *xrand.RNG) (*graph.Graph, error) {
			n, err := p.NeedInt("er", "n", 1)
			if err != nil {
				return nil, err
			}
			return ErdosRenyi(n, p.Float("p", 0.05), rng), nil
		},
		Emit: func(b *graph.Builder, p Params, rng *xrand.RNG, _ *EmitScratch) error {
			n, err := p.NeedInt("er", "n", 1)
			if err != nil {
				return err
			}
			AppendErdosRenyi(b, n, p.Float("p", 0.05), rng)
			return nil
		},
	})
	Register("random-regular", Family{Keys: []string{"n", "d"}, Build: func(p Params, rng *xrand.RNG) (*graph.Graph, error) {
		n, err := p.NeedInt("random-regular", "n", 1)
		if err != nil {
			return nil, err
		}
		return RandomRegular(n, p.Int("d", 3), rng)
	}})
}
