package gen

import (
	"math"

	"dynamicrumor/internal/graph"
	"dynamicrumor/internal/xrand"
)

// ErdosRenyi returns a G(n, p) random graph: every unordered pair becomes an
// edge independently with probability p. It uses the skip-based sampler of
// Batagelj and Brandes, which runs in expected O(n + m) time.
func ErdosRenyi(n int, p float64, rng *xrand.RNG) *graph.Graph {
	b := graph.NewBuilder(n)
	AppendErdosRenyi(b, n, p, rng)
	return b.Build()
}

// AppendErdosRenyi resets b to n vertices and emits one G(n, p) sample into
// it, consuming exactly the stream ErdosRenyi consumes (which is implemented
// on top of it). The emission is allocation-free in a warm builder, so batch
// workers can redraw a fresh G(n, p) instance every repetition for free.
func AppendErdosRenyi(b *graph.Builder, n int, p float64, rng *xrand.RNG) {
	b.Reset(n)
	if n <= 1 || p <= 0 {
		return
	}
	if p >= 1 {
		AppendClique(b, n)
		return
	}
	logQ := math.Log(1 - p)
	v, w := 1, -1
	for v < n {
		r := rng.Float64()
		w = w + 1 + int(math.Log(1-r)/logQ)
		for w >= v && v < n {
			w -= v
			v++
		}
		if v < n {
			b.AddEdge(v, w)
		}
	}
}

// RandomConnected returns a connected Erdős–Rényi-style graph: it draws
// G(n, p) graphs until one is connected, raising p after repeated failures.
// Intended for tests and examples with modest n.
func RandomConnected(n int, p float64, rng *xrand.RNG) *graph.Graph {
	if n <= 1 {
		return graph.FromEdges(n, nil)
	}
	for attempt := 0; ; attempt++ {
		g := ErdosRenyi(n, p, rng)
		if g.IsConnected() {
			return g
		}
		if attempt%10 == 9 && p < 1 {
			p = math.Min(1, p*1.5)
		}
	}
}
