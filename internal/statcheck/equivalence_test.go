package statcheck_test

import (
	"fmt"
	"testing"

	"dynamicrumor/internal/engine"
	"dynamicrumor/internal/sim"
	"dynamicrumor/internal/statcheck"
)

// TestStreamV2EquivalenceSuite is the regression gate for the opt-in v2
// stream discipline (sim.StreamV2): across static and dynamic network
// families, spread-time ensembles drawn with stream v1 and stream v2 must be
// statistically indistinguishable under the documented statcheck thresholds.
// Seeds are fixed, so a failure is exactly reproducible; the engine runs with
// parallelism and chunking enabled so the suite also exercises the chunked
// reduce path under -race.
//
// This is the suite the acceptance criteria of the v2 discipline point at:
// any change to the v2 sampler (alias envelope, rebuild policy, batched
// variates) must keep every family below the gate.
func TestStreamV2EquivalenceSuite(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical equivalence suite is slow")
	}
	cases := []struct {
		name string
		spec engine.NetworkSpec
		mode sim.Mode
		reps int
		seed uint64
	}{
		// Static families: the dense regular case and a sparse random one.
		{"clique", engine.NetworkSpec{Family: "clique", Params: engine.Params{"n": 32}}, 0, 400, 101},
		{"expander", engine.NetworkSpec{Family: "expander", Params: engine.Params{"n": 48, "degree": 4}}, 0, 400, 102},
		// Dynamic families: the adaptive dynamic star of Figure 1(b) and the
		// ρ-diligent G(n, ρ) of Theorem 1.2.
		{"dynamic-star", engine.NetworkSpec{Family: "dynamic-star", Params: engine.Params{"n": 13}}, 0, 300, 103},
		{"gnrho", engine.NetworkSpec{Family: "gnrho", Params: engine.Params{"n": 32, "rho": 0.25}}, 0, 300, 104},
		// A non-default transfer mode, where the two disciplines weight the
		// informed set differently (push weights sit on informed vertices).
		{"clique-push", engine.NetworkSpec{Family: "clique", Params: engine.Params{"n": 32}}, sim.PushOnly, 400, 105},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			collect := func(stream int) []float64 {
				sc := engine.Scenario{Network: tc.spec, Mode: tc.mode, Stream: stream}
				eng := engine.Engine{Parallelism: 3, ChunkSize: 4, Seed: tc.seed}
				out := make([]float64, 0, tc.reps)
				err := eng.RunReduce(sc, tc.reps, func(rep int, res *sim.Result) error {
					if res.Informed != res.N {
						return fmt.Errorf("rep %d: only %d/%d informed — family must complete for spread times to be comparable", rep, res.Informed, res.N)
					}
					out = append(out, res.SpreadTime)
					return nil
				})
				if err != nil {
					t.Fatalf("stream %d: %v", stream, err)
				}
				return out
			}
			v1, v2 := collect(sim.StreamV1), collect(sim.StreamV2)
			r := statcheck.Compare(v1, v2, statcheck.Options{})
			if err := r.Err(); err != nil {
				t.Fatalf("v1 vs v2 on %s: %v", tc.name, err)
			}
			t.Logf("%s: KS %.4f (limit %.4f), median %.4g vs %.4g",
				tc.name, r.KS, r.KSLimit, r.Quantiles[0].A, r.Quantiles[0].B)
		})
	}
}
