// Package statcheck is the statistical-equivalence gate for changes that are
// allowed to alter random streams but not distributions. The v1 async stream
// discipline is frozen byte-for-byte; the opt-in v2 discipline (sim.StreamV2)
// redraws the same process with different randomness, so its contract is
// weaker — every observable must follow the same law — and that contract is
// what this package tests, with fixed seeds so a failure is reproducible.
//
// The gate compares two ensembles of a scalar observable (spread times, in
// the regression suite) with two complementary checks:
//
//   - A two-sample Kolmogorov–Smirnov test: the KS distance between the
//     empirical CDFs must stay below the asymptotic critical value
//     c(α)·sqrt((n+m)/(n·m)) with c(α) = sqrt(ln(2/α)/2). The default
//     α = 0.001 keeps the false-failure rate of a fixed-seed suite
//     negligible while still rejecting gross distributional drift: at
//     n = m = 400 the bound is ≈ 0.138, far below the ≈ 0.25 distance of,
//     say, exponentials whose rates differ by a factor of two.
//   - Quantile bands: at each checked quantile (default 0.5 and 0.9) the
//     relative gap |Qa−Qb| / max(|Qa|,|Qb|) must stay below a slack (default
//     0.15). The KS statistic is weak in the tails at these sample sizes;
//     the bands catch a scaled or shifted tail that KS alone would pass.
//     Low quantiles are deliberately not checked: where the density is thin
//     and the values small, the relative sampling error of an empirical
//     quantile at a few hundred reps is of the same order as the slack.
//     The band check presumes the samples are large enough that the
//     quantile's own relative sampling error sqrt(q(1−q)(1/n+1/m))/(f(Q)·Q)
//     is well below the slack — true for a few hundred reps of the
//     concentrated spread-time distributions this gate exists for, but a
//     heavy-tailed observable at small n needs more reps or a wider slack.
//
// Both thresholds are deliberately loose for honest sampling noise and tight
// for implementation bugs: a resampled identical law passes with large
// margin, while an off-by-one in the event loop, a biased sampler or a wrong
// holding-time rate moves median or mass enough to trip one of the checks.
package statcheck

import (
	"fmt"
	"math"
	"strings"

	"dynamicrumor/internal/stats"
)

// Default thresholds of the equivalence gate; see the package comment for
// the reasoning behind the numbers.
const (
	// DefaultAlpha is the per-comparison significance level of the KS check.
	DefaultAlpha = 0.001
	// DefaultQuantileSlack is the allowed relative gap at each checked
	// quantile.
	DefaultQuantileSlack = 0.15
)

// DefaultQuantiles are the probability levels checked by the quantile-band
// gate when Options.Quantiles is nil: median and upper tail.
func DefaultQuantiles() []float64 { return []float64{0.5, 0.9} }

// Options tunes the equivalence gate. The zero value selects the documented
// defaults.
type Options struct {
	// Alpha is the KS significance level; 0 means DefaultAlpha.
	Alpha float64
	// Quantiles are the probability levels for the band check; nil means
	// DefaultQuantiles(). An explicitly empty non-nil slice disables the
	// band check.
	Quantiles []float64
	// QuantileSlack is the allowed relative gap per quantile; 0 means
	// DefaultQuantileSlack.
	QuantileSlack float64
}

// KSLimit returns the asymptotic two-sample KS critical distance
// c(α)·sqrt((n+m)/(n·m)) with c(α) = sqrt(ln(2/α)/2).
func KSLimit(n, m int, alpha float64) float64 {
	c := math.Sqrt(math.Log(2/alpha) / 2)
	return c * math.Sqrt(float64(n+m)/(float64(n)*float64(m)))
}

// QuantileBand is the outcome of one quantile comparison.
type QuantileBand struct {
	Q      float64 // probability level
	A, B   float64 // empirical quantiles of the two samples
	RelGap float64 // |A−B| / max(|A|,|B|); 0 when both quantiles are 0
}

// Within reports whether the band holds at the given slack.
func (b QuantileBand) Within(slack float64) bool { return b.RelGap <= slack }

// Report is the full outcome of one equivalence comparison. Err() renders
// the verdict; the fields let tests and tools print margins.
type Report struct {
	N, M          int
	KS            float64
	KSLimit       float64
	Quantiles     []QuantileBand
	QuantileSlack float64
}

// Err returns nil when both checks pass, and an error naming every violated
// threshold otherwise.
func (r Report) Err() error {
	var fails []string
	if r.KS > r.KSLimit {
		fails = append(fails, fmt.Sprintf("KS distance %.4f exceeds limit %.4f (n=%d, m=%d)", r.KS, r.KSLimit, r.N, r.M))
	}
	for _, b := range r.Quantiles {
		if !b.Within(r.QuantileSlack) {
			fails = append(fails, fmt.Sprintf("q%.2f gap %.1f%% exceeds %.0f%% (%.4g vs %.4g)",
				b.Q, 100*b.RelGap, 100*r.QuantileSlack, b.A, b.B))
		}
	}
	if len(fails) == 0 {
		return nil
	}
	return fmt.Errorf("statcheck: distributions differ: %s", strings.Join(fails, "; "))
}

// Compare runs the equivalence gate on two samples of the same observable
// and returns the full report; Compare(a, b, o).Err() == nil is the pass
// condition. Both samples must be non-empty. The inputs are not modified.
func Compare(a, b []float64, opts Options) Report {
	if len(a) == 0 || len(b) == 0 {
		panic("statcheck: Compare needs non-empty samples")
	}
	alpha := opts.Alpha
	if alpha == 0 {
		alpha = DefaultAlpha
	}
	slack := opts.QuantileSlack
	if slack == 0 {
		slack = DefaultQuantileSlack
	}
	qs := opts.Quantiles
	if qs == nil {
		qs = DefaultQuantiles()
	}
	r := Report{
		N:             len(a),
		M:             len(b),
		KS:            stats.KSDistance(a, b),
		KSLimit:       KSLimit(len(a), len(b), alpha),
		QuantileSlack: slack,
	}
	for _, q := range qs {
		qa, qb := stats.Quantile(a, q), stats.Quantile(b, q)
		band := QuantileBand{Q: q, A: qa, B: qb}
		if denom := math.Max(math.Abs(qa), math.Abs(qb)); denom > 0 {
			band.RelGap = math.Abs(qa-qb) / denom
		}
		r.Quantiles = append(r.Quantiles, band)
	}
	return r
}
