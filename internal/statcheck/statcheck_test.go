package statcheck

import (
	"math"
	"strings"
	"testing"

	"dynamicrumor/internal/xrand"
)

// expSample draws n iid Exponential(rate) variates from a private stream.
func expSample(seed uint64, n int, rate float64) []float64 {
	rng := xrand.New(seed)
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = rng.Exp(rate)
	}
	return xs
}

func TestKSLimitMatchesFormula(t *testing.T) {
	// n = m = 400, α = 0.001: c = sqrt(ln(2000)/2) ≈ 1.9495,
	// limit = c·sqrt(800/160000) ≈ 0.13785 — the number quoted in the
	// package comment.
	got := KSLimit(400, 400, 0.001)
	if math.Abs(got-0.13785) > 1e-4 {
		t.Fatalf("KSLimit(400, 400, 0.001) = %v, want ≈ 0.13785", got)
	}
	if asym := KSLimit(100, 10000, 0.001); asym >= KSLimit(100, 100, 0.001) {
		t.Fatalf("growing one sample should tighten the limit, got %v", asym)
	}
}

// TestIdenticalLawPasses is the false-positive guard: independent resamples
// of the same distribution — exactly what the v2 stream discipline is — must
// pass the gate, across several disjoint seed pairs.
func TestIdenticalLawPasses(t *testing.T) {
	for trial, seed := range []uint64{1, 77, 4096, 20200424} {
		// 2000 samples per side: an Exp(1) median has ≈ 6.5%·sqrt(500/n)
		// relative error per sample, so the 15% band needs more than the few
		// hundred reps that suffice for concentrated spread-time ensembles.
		a := expSample(seed, 2000, 1)
		b := expSample(seed+1000, 2000, 1)
		r := Compare(a, b, Options{})
		if err := r.Err(); err != nil {
			t.Fatalf("trial %d: identical law rejected: %v", trial, err)
		}
		// The margin should be comfortable, not a coin flip: identical laws
		// sit far inside the α = 0.001 bound.
		if r.KS > 0.75*r.KSLimit {
			t.Fatalf("trial %d: KS %.4f uncomfortably close to limit %.4f", trial, r.KS, r.KSLimit)
		}
	}
}

// TestDetectsScaleDrift is the power check: halving the rate of an
// exponential (a gross bug, e.g. a doubled holding time) must trip both the
// KS check and the median band.
func TestDetectsScaleDrift(t *testing.T) {
	a := expSample(9, 500, 1)
	b := expSample(10, 500, 2)
	r := Compare(a, b, Options{})
	if r.KS <= r.KSLimit {
		t.Fatalf("KS %.4f did not exceed limit %.4f for a 2× rate drift", r.KS, r.KSLimit)
	}
	err := r.Err()
	if err == nil {
		t.Fatal("2× rate drift passed the gate")
	}
	if !strings.Contains(err.Error(), "q0.50") {
		t.Fatalf("median band did not trip on a 2× scale drift: %v", err)
	}
}

// TestQuantileBandCatchesTailDrift pins why the gate has two checks: an
// upper tail stretched by 25% moves the empirical CDFs by only ~0.07 — well
// inside the KS bound at these sample sizes — but shifts the 0.9-quantile by
// ~20%, so the band check must reject it.
func TestQuantileBandCatchesTailDrift(t *testing.T) {
	a := expSample(21, 800, 1)
	b := expSample(22, 800, 1)
	for i, x := range b {
		if x > 1.609 { // the Exp(1) 0.8-quantile, ln 5
			b[i] = 1.25 * x
		}
	}
	r := Compare(a, b, Options{})
	if r.KS > r.KSLimit {
		t.Fatalf("KS %.4f exceeded limit %.4f — tail drift was supposed to slip past KS", r.KS, r.KSLimit)
	}
	err := r.Err()
	if err == nil {
		t.Fatal("stretched tail passed the gate")
	}
	if !strings.Contains(err.Error(), "q0.90") {
		t.Fatalf("tail drift tripped the wrong check: %v", err)
	}
}

func TestOptionsDefaultsAndOverrides(t *testing.T) {
	a := expSample(31, 200, 1)
	b := expSample(32, 200, 1)
	r := Compare(a, b, Options{})
	if len(r.Quantiles) != len(DefaultQuantiles()) {
		t.Fatalf("default report has %d quantile bands, want %d", len(r.Quantiles), len(DefaultQuantiles()))
	}
	if r.QuantileSlack != DefaultQuantileSlack {
		t.Fatalf("default slack %v, want %v", r.QuantileSlack, DefaultQuantileSlack)
	}
	// An explicitly empty (non-nil) quantile list disables the band check.
	r = Compare(a, b, Options{Quantiles: []float64{}})
	if len(r.Quantiles) != 0 {
		t.Fatalf("explicit empty quantile list still produced %d bands", len(r.Quantiles))
	}
	// A 1000× slack accepts anything the KS check accepts.
	r = Compare(a, expSample(33, 200, 50), Options{QuantileSlack: 1000})
	if kerr := r.Err(); kerr == nil {
		t.Fatal("wildly different samples passed: KS check must still gate")
	} else if strings.Contains(kerr.Error(), "q0.") {
		t.Fatalf("quantile band tripped despite huge slack: %v", kerr)
	}
}

func TestCompareRejectsEmptySamples(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Compare accepted an empty sample")
		}
	}()
	Compare(nil, []float64{1}, Options{})
}

func TestZeroQuantilesHaveZeroGap(t *testing.T) {
	a := []float64{0, 0, 0, 5}
	b := []float64{0, 0, 0, 5}
	r := Compare(a, b, Options{})
	for _, band := range r.Quantiles {
		if band.RelGap != 0 {
			t.Fatalf("identical degenerate samples report gap %v at q%.2f", band.RelGap, band.Q)
		}
	}
	if err := r.Err(); err != nil {
		t.Fatalf("identical degenerate samples rejected: %v", err)
	}
}
