package service

import (
	"fmt"
	"net/http"
	"strconv"
	"strings"

	"dynamicrumor/internal/obs"
)

// Prometheus text exposition of the service metrics (ROADMAP item 5).
// Rendered by hand against the text format spec — the module deliberately
// carries no client library dependency — and kept in lockstep with the JSON
// Metrics document: both are views of the same snapshot.

// wantsPrometheus decides the /metrics representation from the Accept
// header: a client that asks for text/plain or OpenMetrics without also
// preferring JSON gets the exposition format. Prometheus scrapers send
// "text/plain;version=0.0.4" (older) or "application/openmetrics-text";
// curl's default "*/*" and absent headers keep the JSON document.
func wantsPrometheus(accept string) bool {
	a := strings.ToLower(accept)
	if strings.Contains(a, "application/json") {
		return false
	}
	return strings.Contains(a, "text/plain") || strings.Contains(a, "openmetrics")
}

// promContentType is the exposition format version we emit.
const promContentType = "text/plain; version=0.0.4; charset=utf-8"

// writePrometheus renders the metrics snapshot in exposition format.
func (s *Service) writePrometheus(w http.ResponseWriter) {
	m := s.metrics()
	var b strings.Builder

	gauge := func(name, help string, value string) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s gauge\n%s %s\n", name, help, name, name, value)
	}
	counter := func(name, help string, value string) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n%s %s\n", name, help, name, name, value)
	}
	f := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	i := func(v int64) string { return strconv.FormatInt(v, 10) }

	fmt.Fprintf(&b, "# HELP rumord_build_info Build identity of the serving binary.\n"+
		"# TYPE rumord_build_info gauge\nrumord_build_info{version=%q} 1\n", s.version)

	fmt.Fprintf(&b, "# HELP rumord_jobs Jobs by lifecycle state.\n# TYPE rumord_jobs gauge\n")
	for _, st := range []struct {
		label string
		n     int
	}{
		{"queued", m.Jobs.Queued},
		{"running", m.Jobs.Running},
		{"done", m.Jobs.Done},
		{"failed", m.Jobs.Failed},
		{"cancelled", m.Jobs.Cancelled},
	} {
		fmt.Fprintf(&b, "rumord_jobs{state=%q} %d\n", st.label, st.n)
	}

	counter("rumord_cache_hits_total", "Submissions answered from the result cache.", i(m.Cache.Hits))
	counter("rumord_cache_misses_total", "Submissions that had to execute.", i(m.Cache.Misses))
	counter("rumord_cache_coalesced_total", "Submissions deduplicated onto an identical in-flight run.", i(m.Cache.Coalesced))
	gauge("rumord_cache_entries", "Result cache entries resident.", i(int64(m.Cache.Entries)))

	gauge("rumord_budget_workers_total", "Engine worker goroutines in the shared budget.", i(int64(m.Budget.Total)))
	gauge("rumord_budget_workers_in_use", "Engine worker goroutines currently granted to jobs.", i(int64(m.Budget.InUse)))

	counter("rumord_reps_done_total", "Repetitions reduced, cancelled jobs included.", i(m.Throughput.RepsDone))
	counter("rumord_reps_finished_total", "Repetitions of jobs that ran to completion.", i(m.Throughput.FinishedReps))
	counter("rumord_busy_seconds_total", "Wall-clock seconds jobs spent running to completion.", f(m.Throughput.BusySeconds))

	if m.Cluster != nil {
		gauge("rumord_cluster_workers", "Registered, live cluster worker processes.", i(int64(m.Cluster.Workers)))
		gauge("rumord_cluster_leases_outstanding", "Rep-range leases currently held by workers.", i(int64(m.Cluster.LeasesOutstanding)))
		counter("rumord_cluster_leases_reassigned_total", "Leases reclaimed from dead workers and returned to the pool.", i(m.Cluster.LeasesReassigned))
		counter("rumord_cluster_runs_readopted_total", "In-flight runs re-adopted from the coordinator journal at startup.", i(m.Cluster.RunsReadopted))
		counter("rumord_cluster_shards_replayed_total", "Journalled shard uploads replayed through the exact merger during recovery.", i(m.Cluster.ShardsReplayed))
	}

	if m.Sweeps != nil {
		counter("rumord_sweeps_submitted_total", "Parameter sweeps accepted.", i(m.Sweeps.Submitted))
		counter("rumord_sweeps_recovered_total", "Sweeps re-adopted from the run ledger at startup.", i(m.Sweeps.Recovered))
		fmt.Fprintf(&b, "# HELP rumord_sweeps Sweeps by lifecycle state.\n# TYPE rumord_sweeps gauge\n")
		for _, st := range []struct {
			label string
			n     int
		}{
			{"active", m.Sweeps.Active},
			{"done", m.Sweeps.Done},
			{"failed", m.Sweeps.Failed},
			{"cancelled", m.Sweeps.Cancelled},
		} {
			fmt.Fprintf(&b, "rumord_sweeps{state=%q} %d\n", st.label, st.n)
		}
	}

	if m.RateLimit != nil {
		counter("rumord_rate_limited_total", "Submissions refused by the per-client rate limiter.", i(m.RateLimit.Rejected))
		gauge("rumord_rate_limit_clients", "Client token buckets currently tracked.", i(int64(m.RateLimit.Clients)))
	}

	if m.Durability != nil {
		counter("rumord_jobs_recovered_total", "Submissions re-adopted from the run ledger at startup.", i(m.Durability.JobsRecovered))
		gauge("rumord_journal_bytes", "Current size of the run ledger on disk.", i(m.Durability.JournalBytes))
		counter("rumord_journal_compactions_total", "Snapshot compactions of the run ledger.", i(m.Durability.JournalCompactions))
		if dc := m.Durability.DiskCache; dc != nil {
			counter("rumord_disk_cache_hits_total", "Persistent cache reads served.", i(dc.Hits))
			counter("rumord_disk_cache_misses_total", "Persistent cache reads that missed.", i(dc.Misses))
			counter("rumord_disk_cache_corrupt_total", "Corrupt persistent cache entries quarantined.", i(dc.Corrupt))
			counter("rumord_disk_cache_evictions_total", "Persistent cache entries evicted by the byte budget.", i(dc.Evictions))
			gauge("rumord_disk_cache_entries", "Persistent cache entries resident.", i(int64(dc.Entries)))
			gauge("rumord_disk_cache_bytes", "Persistent cache bytes resident.", i(dc.Bytes))
		}
	}

	for _, snap := range s.reg.Snapshots() {
		writePromHistogram(&b, "rumord_"+snap.Name+"_seconds", snap)
	}

	w.Header().Set("Content-Type", promContentType)
	w.WriteHeader(http.StatusOK)
	w.Write([]byte(b.String()))
}

// writePromHistogram renders one latency histogram as a classic Prometheus
// histogram family: cumulative _bucket series for every non-empty bucket plus
// the mandatory le="+Inf" bucket, then _sum (seconds) and _count. Empty
// buckets are elided — scrapers reconstruct them from the cumulative counts —
// which keeps the exposition proportional to observed spread, not to the 106
// fixed buckets.
func writePromHistogram(b *strings.Builder, name string, snap obs.Snapshot) {
	fmt.Fprintf(b, "# HELP %s %s\n# TYPE %s histogram\n", name, snap.Help, name)
	var cum uint64
	for i, c := range snap.Counts {
		cum += c
		if c == 0 {
			continue
		}
		bound := obs.BucketBound(i)
		if bound < 0 {
			// The overflow bucket is covered by the unconditional +Inf line.
			continue
		}
		le := strconv.FormatFloat(float64(bound)/1e9, 'g', -1, 64)
		fmt.Fprintf(b, "%s_bucket{le=%q} %d\n", name, le, cum)
	}
	fmt.Fprintf(b, "%s_bucket{le=\"+Inf\"} %d\n", name, snap.Total())
	fmt.Fprintf(b, "%s_sum %s\n", name, strconv.FormatFloat(float64(snap.SumNanos)/1e9, 'g', -1, 64))
	fmt.Fprintf(b, "%s_count %d\n", name, snap.Total())
}
