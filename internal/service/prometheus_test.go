package service

import (
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"dynamicrumor/internal/obs"
)

// TestWantsPrometheus pins the content-negotiation rule.
func TestWantsPrometheus(t *testing.T) {
	cases := []struct {
		accept string
		want   bool
	}{
		{"", false},
		{"*/*", false},
		{"application/json", false},
		{"application/json, text/plain", false}, // explicit JSON wins
		{"text/plain", true},
		{"text/plain;version=0.0.4;q=0.5,*/*;q=0.1", true}, // a Prometheus scraper
		{"application/openmetrics-text; version=1.0.0", true},
	}
	for _, c := range cases {
		if got := wantsPrometheus(c.accept); got != c.want {
			t.Errorf("wantsPrometheus(%q) = %v, want %v", c.accept, got, c.want)
		}
	}
}

// TestMetricsPrometheusText: a text/plain scrape of /metrics serves the
// exposition format with the service's gauges and counters; the default
// representation stays JSON.
func TestMetricsPrometheusText(t *testing.T) {
	_, ts := newTestServer(t, Config{Budget: 2})

	status, body := do(t, http.MethodPost, ts.URL+"/v1/runs", submitBody)
	if status != http.StatusAccepted {
		t.Fatalf("submit returned %d: %s", status, body)
	}
	waitState(t, ts.URL, decodeJob(t, body).ID, StateDone)

	req, err := http.NewRequest(http.MethodGet, ts.URL+"/metrics", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Accept", "text/plain;version=0.0.4")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("prometheus scrape served Content-Type %q", ct)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(raw)
	for _, want := range []string{
		`rumord_build_info{version="test"} 1`,
		`rumord_jobs{state="done"} 1`,
		"# TYPE rumord_cache_hits_total counter",
		"rumord_cache_misses_total 1",
		"rumord_budget_workers_total 2",
		"rumord_reps_done_total 4",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition output lacks %q:\n%s", want, text)
		}
	}
	// Every latency histogram the service registers must render as a full
	// classic-histogram family: _bucket (with the mandatory +Inf), _sum and
	// _count. The lease histogram is present even on a local backend — it is
	// registered up front so dashboards keep a stable metric set.
	for _, family := range []string{
		"rumord_queue_wait_seconds",
		"rumord_run_duration_seconds",
		"rumord_cache_lookup_seconds",
		"rumord_http_request_seconds",
		"rumord_lease_roundtrip_seconds",
	} {
		for _, suffix := range []string{`_bucket{le="+Inf"} `, "_sum ", "_count "} {
			if !strings.Contains(text, family+suffix) {
				t.Errorf("exposition output lacks %s%s series:\n%s", family, suffix, text)
			}
		}
		if !strings.Contains(text, "# TYPE "+family+" histogram") {
			t.Errorf("family %s is not declared as a histogram", family)
		}
	}
	if strings.Contains(text, "rumord_cluster_") {
		t.Error("local backend exported cluster gauges")
	}

	// No Accept header: the JSON document, unchanged.
	_, jsonBody := do(t, http.MethodGet, ts.URL+"/metrics", "")
	if !strings.HasPrefix(string(jsonBody), `{"jobs":`) {
		t.Errorf("default /metrics is not the JSON document: %s", jsonBody)
	}
}

// TestWritePromHistogram pins the exposition rendering of one histogram
// byte-for-byte: hand-fed observations land in known log-linear buckets, so
// the cumulative _bucket lines, _sum and _count are exact.
func TestWritePromHistogram(t *testing.T) {
	h := obs.NewHistogram("demo", "Demo histogram.")
	h.Observe(1 * time.Millisecond)
	h.Observe(1 * time.Millisecond)
	h.Observe(250 * time.Millisecond)
	h.Observe(3 * time.Second)

	var b strings.Builder
	writePromHistogram(&b, "rumord_demo_seconds", h.Snapshot())
	want := `# HELP rumord_demo_seconds Demo histogram.
# TYPE rumord_demo_seconds histogram
rumord_demo_seconds_bucket{le="0.001048576"} 2
rumord_demo_seconds_bucket{le="0.268435456"} 3
rumord_demo_seconds_bucket{le="3.221225472"} 4
rumord_demo_seconds_bucket{le="+Inf"} 4
rumord_demo_seconds_sum 3.252
rumord_demo_seconds_count 4
`
	if got := b.String(); got != want {
		t.Errorf("rendered exposition differs:\n got:\n%s\nwant:\n%s", got, want)
	}
}

// TestWritePromHistogramOverflow: an observation beyond the largest bucket
// bound appears only in the +Inf bucket — no bogus finite le line — while
// _sum and _count still account for it.
func TestWritePromHistogramOverflow(t *testing.T) {
	h := obs.NewHistogram("over", "Overflow histogram.")
	h.Observe(200 * time.Hour) // past the top octave (~68.7s * 1000)

	var b strings.Builder
	writePromHistogram(&b, "rumord_over_seconds", h.Snapshot())
	got := b.String()
	if strings.Count(got, "_bucket{") != 1 {
		t.Errorf("overflow rendered a finite bucket line:\n%s", got)
	}
	if !strings.Contains(got, `rumord_over_seconds_bucket{le="+Inf"} 1`) {
		t.Errorf("missing +Inf bucket:\n%s", got)
	}
	if !strings.Contains(got, "rumord_over_seconds_count 1") {
		t.Errorf("missing count:\n%s", got)
	}
}
