package service

import (
	"net/http"
	"strings"
	"testing"
)

// TestWantsPrometheus pins the content-negotiation rule.
func TestWantsPrometheus(t *testing.T) {
	cases := []struct {
		accept string
		want   bool
	}{
		{"", false},
		{"*/*", false},
		{"application/json", false},
		{"application/json, text/plain", false}, // explicit JSON wins
		{"text/plain", true},
		{"text/plain;version=0.0.4;q=0.5,*/*;q=0.1", true}, // a Prometheus scraper
		{"application/openmetrics-text; version=1.0.0", true},
	}
	for _, c := range cases {
		if got := wantsPrometheus(c.accept); got != c.want {
			t.Errorf("wantsPrometheus(%q) = %v, want %v", c.accept, got, c.want)
		}
	}
}

// TestMetricsPrometheusText: a text/plain scrape of /metrics serves the
// exposition format with the service's gauges and counters; the default
// representation stays JSON.
func TestMetricsPrometheusText(t *testing.T) {
	_, ts := newTestServer(t, Config{Budget: 2})

	status, body := do(t, http.MethodPost, ts.URL+"/v1/runs", submitBody)
	if status != http.StatusAccepted {
		t.Fatalf("submit returned %d: %s", status, body)
	}
	waitState(t, ts.URL, decodeJob(t, body).ID, StateDone)

	req, err := http.NewRequest(http.MethodGet, ts.URL+"/metrics", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Accept", "text/plain;version=0.0.4")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("prometheus scrape served Content-Type %q", ct)
	}
	buf := make([]byte, 1<<16)
	n, _ := resp.Body.Read(buf)
	text := string(buf[:n])
	for _, want := range []string{
		`rumord_build_info{version="test"} 1`,
		`rumord_jobs{state="done"} 1`,
		"# TYPE rumord_cache_hits_total counter",
		"rumord_cache_misses_total 1",
		"rumord_budget_workers_total 2",
		"rumord_reps_done_total 4",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition output lacks %q:\n%s", want, text)
		}
	}
	if strings.Contains(text, "rumord_cluster_") {
		t.Error("local backend exported cluster gauges")
	}

	// No Accept header: the JSON document, unchanged.
	_, jsonBody := do(t, http.MethodGet, ts.URL+"/metrics", "")
	if !strings.HasPrefix(string(jsonBody), `{"jobs":`) {
		t.Errorf("default /metrics is not the JSON document: %s", jsonBody)
	}
}
