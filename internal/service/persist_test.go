package service

import (
	"bytes"
	"context"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// testLogger routes structured service logs through the test log so failures
// carry the service's own account of what happened.
func testLogger(t *testing.T) *slog.Logger {
	t.Helper()
	return slog.New(slog.NewTextHandler(testLogWriter{t}, nil))
}

type testLogWriter struct{ t *testing.T }

func (w testLogWriter) Write(p []byte) (int, error) {
	w.t.Logf("%s", bytes.TrimRight(p, "\n"))
	return len(p), nil
}

// startPersistServer starts a service whose shutdown the test drives itself —
// the restart tests close one "process" and open the next over the same
// directories.
func startPersistServer(t *testing.T, cfg Config) (*Service, *httptest.Server) {
	t.Helper()
	if cfg.Clock == nil {
		cfg.Clock = testClock
	}
	if cfg.Version == "" {
		cfg.Version = "test"
	}
	svc, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return svc, httptest.NewServer(svc.Handler())
}

// stopPersistServer simulates the process dying: the listener goes away and
// the service shuts down. Shutdown cancellations are not journalled as
// settlements, so the ledger left behind is exactly a crash's.
func stopPersistServer(svc *Service, ts *httptest.Server) {
	ts.Close()
	svc.Close()
}

// TestDiskCacheSurvivesRestart: a summary computed before a restart is served
// byte-identically from the persistent cache by the next process.
func TestDiskCacheSurvivesRestart(t *testing.T) {
	cacheDir := t.TempDir()

	svc1, ts1 := startPersistServer(t, Config{Budget: 2, CacheDir: cacheDir})
	status, body := do(t, http.MethodPost, ts1.URL+"/v1/runs", submitBody)
	if status != http.StatusAccepted {
		t.Fatalf("submit returned %d: %s", status, body)
	}
	first := waitState(t, ts1.URL, decodeJob(t, body).ID, StateDone)
	if len(first.Summary) == 0 {
		t.Fatal("completed job has no summary")
	}
	stopPersistServer(svc1, ts1)

	svc2, ts2 := startPersistServer(t, Config{Budget: 2, CacheDir: cacheDir})
	defer stopPersistServer(svc2, ts2)
	status, body = do(t, http.MethodPost, ts2.URL+"/v1/runs", submitBody)
	if status != http.StatusOK {
		t.Fatalf("resubmit after restart returned %d, want 200 (cache hit): %s", status, body)
	}
	second := decodeJob(t, body)
	if !second.CacheHit {
		t.Error("resubmission after restart was not a cache hit")
	}
	if !bytes.Equal(first.Summary, second.Summary) {
		t.Errorf("summary changed across restart:\n was: %s\n now: %s", first.Summary, second.Summary)
	}
	m := svc2.metrics()
	if m.Durability == nil || m.Durability.DiskCache == nil {
		t.Fatal("durability metrics absent with a cache dir configured")
	}
	if m.Durability.DiskCache.Hits < 1 {
		t.Errorf("disk cache hits = %d, want >= 1", m.Durability.DiskCache.Hits)
	}
}

// TestDiskCacheCorruptionQuarantined: a flipped bit in a persisted entry must
// surface as a miss — the run re-executes — with the damaged file moved to
// the quarantine directory, never served.
func TestDiskCacheCorruptionQuarantined(t *testing.T) {
	cacheDir := t.TempDir()

	svc1, ts1 := startPersistServer(t, Config{Budget: 2, CacheDir: cacheDir})
	status, body := do(t, http.MethodPost, ts1.URL+"/v1/runs", submitBody)
	if status != http.StatusAccepted {
		t.Fatalf("submit returned %d: %s", status, body)
	}
	first := waitState(t, ts1.URL, decodeJob(t, body).ID, StateDone)
	stopPersistServer(svc1, ts1)

	// Flip one payload byte of the entry on disk.
	path := filepath.Join(cacheDir, first.Key)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0x01
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	svc2, ts2 := startPersistServer(t, Config{Budget: 2, CacheDir: cacheDir})
	defer stopPersistServer(svc2, ts2)
	status, body = do(t, http.MethodPost, ts2.URL+"/v1/runs", submitBody)
	if status != http.StatusAccepted {
		t.Fatalf("resubmit over a corrupt entry returned %d, want 202 (miss): %s", status, body)
	}
	second := waitState(t, ts2.URL, decodeJob(t, body).ID, StateDone)
	if second.CacheHit {
		t.Error("corrupt entry was served as a cache hit")
	}
	if !bytes.Equal(first.Summary, second.Summary) {
		t.Error("re-executed summary differs from the original")
	}
	m := svc2.metrics()
	if m.Durability.DiskCache.Corrupt < 1 {
		t.Errorf("corrupt_quarantined = %d, want >= 1", m.Durability.DiskCache.Corrupt)
	}
	if _, err := os.Stat(filepath.Join(cacheDir, "quarantine", first.Key)); err != nil {
		t.Errorf("corrupt entry not quarantined: %v", err)
	}
}

// gateBackend blocks every run until released, so a job can be pinned
// in-flight across a shutdown.
type gateBackend struct {
	release chan struct{}
}

func (b *gateBackend) Run(ctx context.Context, run BackendRun) (BackendResult, error) {
	select {
	case <-b.release:
	case <-ctx.Done():
		return BackendResult{}, ctx.Err()
	}
	return LocalBackend{}.Run(ctx, run)
}

// TestLedgerRecoversInflightJob: a job in flight when the process dies is
// re-adopted under its original ID on restart, runs to completion, and its
// summary is byte-identical to an uninterrupted run's.
func TestLedgerRecoversInflightJob(t *testing.T) {
	stateDir := t.TempDir()

	gate := &gateBackend{release: make(chan struct{})}
	svc1, ts1 := startPersistServer(t, Config{Budget: 2, StateDir: stateDir, Backend: gate, Logger: testLogger(t)})
	status, body := do(t, http.MethodPost, ts1.URL+"/v1/runs", submitBody)
	if status != http.StatusAccepted {
		t.Fatalf("submit returned %d: %s", status, body)
	}
	id := decodeJob(t, body).ID
	stopPersistServer(svc1, ts1) // dies with the job unfinished

	svc2, ts2 := startPersistServer(t, Config{Budget: 2, StateDir: stateDir, Logger: testLogger(t)})
	defer stopPersistServer(svc2, ts2)
	if keys := svc2.RecoveredKeys(); len(keys) != 1 {
		t.Fatalf("recovered %d run keys, want 1", len(keys))
	}
	recovered := waitState(t, ts2.URL, id, StateDone)
	if recovered.ID != id {
		t.Errorf("recovered job ID %s, want %s", recovered.ID, id)
	}
	if m := svc2.metrics(); m.Durability == nil || m.Durability.JobsRecovered != 1 {
		t.Errorf("jobs_recovered metric missing or wrong: %+v", m.Durability)
	}

	// Reference: the same submission on a fresh, undisturbed service.
	svc3, ts3 := startPersistServer(t, Config{Budget: 2})
	defer stopPersistServer(svc3, ts3)
	status, body = do(t, http.MethodPost, ts3.URL+"/v1/runs", submitBody)
	if status != http.StatusAccepted {
		t.Fatalf("reference submit returned %d: %s", status, body)
	}
	reference := waitState(t, ts3.URL, decodeJob(t, body).ID, StateDone)
	if !bytes.Equal(recovered.Summary, reference.Summary) {
		t.Errorf("recovered summary differs from an uninterrupted run:\n got: %s\nwant: %s", recovered.Summary, reference.Summary)
	}
}

// TestLedgerSettlesCancelledJob: an explicit client cancellation is a settled
// state — the job must NOT come back after a restart (unlike a shutdown
// cancellation, which is deliberately left open).
func TestLedgerSettlesCancelledJob(t *testing.T) {
	stateDir := t.TempDir()

	gate := &gateBackend{release: make(chan struct{})}
	svc1, ts1 := startPersistServer(t, Config{Budget: 1, StateDir: stateDir, Backend: gate})
	// Job A occupies the whole budget; job B stays queued.
	status, bodyA := do(t, http.MethodPost, ts1.URL+"/v1/runs", submitBody)
	if status != http.StatusAccepted {
		t.Fatalf("submit A returned %d: %s", status, bodyA)
	}
	bodyB := `{"scenario":{"network":{"family":"clique","params":{"n":32}}},"reps":4,"seed":2}`
	status, respB := do(t, http.MethodPost, ts1.URL+"/v1/runs", bodyB)
	if status != http.StatusAccepted {
		t.Fatalf("submit B returned %d: %s", status, respB)
	}
	idB := decodeJob(t, respB).ID
	if status, resp := do(t, http.MethodDelete, ts1.URL+"/v1/runs/"+idB, ""); status != http.StatusOK {
		t.Fatalf("cancel B returned %d: %s", status, resp)
	}
	stopPersistServer(svc1, ts1)

	svc2, ts2 := startPersistServer(t, Config{Budget: 2, StateDir: stateDir})
	defer stopPersistServer(svc2, ts2)
	// Job A (shutdown-cancelled, unsettled) comes back; job B (client-
	// cancelled, settled) must not.
	if keys := svc2.RecoveredKeys(); len(keys) != 1 {
		t.Fatalf("recovered %d run keys, want 1 (job A only)", len(keys))
	}
	if status, _ := do(t, http.MethodGet, ts2.URL+"/v1/runs/"+idB, ""); status != http.StatusNotFound {
		t.Errorf("cancelled job %s resurfaced after restart: status %d", idB, status)
	}
}

// unreadyBackend reports not-ready until flipped, mimicking a coordinator
// with no live workers.
type unreadyBackend struct {
	ready bool // guarded by the service mutex: Ready is only called under it
}

func (b *unreadyBackend) Run(ctx context.Context, run BackendRun) (BackendResult, error) {
	return LocalBackend{}.Run(ctx, run)
}

func (b *unreadyBackend) Ready() error {
	if b.ready {
		return nil
	}
	return &UnavailableError{Reason: "no live workers", RetryAfter: 7 * time.Second}
}

// TestSubmitUnavailableBackend: fresh work against a backend with no capacity
// fails fast with 503 and a Retry-After hint — but cache hits are exempt,
// because they need no backend at all.
func TestSubmitUnavailableBackend(t *testing.T) {
	backend := &unreadyBackend{}
	svc, ts := newTestServer(t, Config{Budget: 2, Backend: backend})

	status, body := do(t, http.MethodPost, ts.URL+"/v1/runs", submitBody)
	if status != http.StatusServiceUnavailable {
		t.Fatalf("submit to an unready backend returned %d, want 503: %s", status, body)
	}
	resp, err := http.Post(ts.URL+"/v1/runs", "application/json", strings.NewReader(submitBody))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("Retry-After"); got != "7" {
		t.Errorf("Retry-After = %q, want \"7\"", got)
	}

	// Capacity returns; the run completes and lands in the cache.
	svc.mu.Lock()
	backend.ready = true
	svc.mu.Unlock()
	status, body = do(t, http.MethodPost, ts.URL+"/v1/runs", submitBody)
	if status != http.StatusAccepted {
		t.Fatalf("submit after recovery returned %d: %s", status, body)
	}
	waitState(t, ts.URL, decodeJob(t, body).ID, StateDone)

	// Capacity vanishes again: the cached result must still be served.
	svc.mu.Lock()
	backend.ready = false
	svc.mu.Unlock()
	status, body = do(t, http.MethodPost, ts.URL+"/v1/runs", submitBody)
	if status != http.StatusOK || !decodeJob(t, body).CacheHit {
		t.Errorf("cache hit blocked by an unready backend: status %d, body %s", status, body)
	}
}

// TestSubmitBodyTooLarge: an oversized submission is refused with 413.
func TestSubmitBodyTooLarge(t *testing.T) {
	_, ts := newTestServer(t, Config{Budget: 2})
	huge := `{"scenario":{"name":"` + strings.Repeat("x", maxBodyBytes+1024) + `"}}`
	status, body := do(t, http.MethodPost, ts.URL+"/v1/runs", huge)
	if status != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized submission: status %d, body %.100s", status, body)
	}
}
