package service

import (
	"fmt"
	"math"
	"time"
)

// Per-client token-bucket rate limiting on the submission endpoints
// (POST /v1/runs and POST /v1/sweeps), enabled by Config.RatePerSec.
// Only submissions that create new work consume a token: cache hits and
// coalesced followers cost the service nothing and are always served, so a
// client replaying a settled grid is never throttled. Buckets are keyed by
// the client host (remote address with the port stripped) and refill
// continuously at the configured rate up to the burst capacity.

// rateLimiterMaxClients bounds the bucket map; beyond it, buckets that have
// refilled to capacity (an idle client) are dropped before admitting a new
// key, so an address-spraying client cannot grow daemon memory unboundedly.
const rateLimiterMaxClients = 4096

// rateLimiter is a token-bucket admission limiter. It is guarded by the
// service mutex: all calls happen inside submit paths that already hold it.
type rateLimiter struct {
	rate    float64 // tokens added per second
	burst   float64 // bucket capacity
	buckets map[string]*tokenBucket
}

type tokenBucket struct {
	tokens float64
	last   time.Time
}

// newRateLimiter builds a limiter admitting rate submissions per second with
// the given burst capacity (<= 0 selects twice the rate, at least 1).
func newRateLimiter(rate float64, burst int) *rateLimiter {
	b := float64(burst)
	if burst <= 0 {
		b = math.Ceil(2 * rate)
		if b < 1 {
			b = 1
		}
	}
	return &rateLimiter{rate: rate, burst: b, buckets: make(map[string]*tokenBucket)}
}

// allow consumes one token from the client's bucket. When the bucket is
// empty it reports the wait until the next token accrues.
func (l *rateLimiter) allow(client string, now time.Time) (time.Duration, bool) {
	b, ok := l.buckets[client]
	if !ok {
		if len(l.buckets) >= rateLimiterMaxClients {
			l.evictIdle(now)
		}
		b = &tokenBucket{tokens: l.burst, last: now}
		l.buckets[client] = b
	} else {
		b.tokens += now.Sub(b.last).Seconds() * l.rate
		if b.tokens > l.burst {
			b.tokens = l.burst
		}
		b.last = now
	}
	if b.tokens >= 1 {
		b.tokens--
		return 0, true
	}
	wait := time.Duration((1 - b.tokens) / l.rate * float64(time.Second))
	return wait, false
}

// evictIdle drops buckets that have refilled to capacity — clients idle long
// enough that forgetting them is indistinguishable from keeping them.
func (l *rateLimiter) evictIdle(now time.Time) {
	for k, b := range l.buckets {
		tokens := b.tokens + now.Sub(b.last).Seconds()*l.rate
		if tokens >= l.burst {
			delete(l.buckets, k)
		}
	}
}

// rateLimitedError reports a throttled submission; the API layer maps it to
// 429 with a Retry-After header.
type rateLimitedError struct {
	retryAfter time.Duration
}

func (e *rateLimitedError) Error() string {
	return fmt.Sprintf("submission rate limit exceeded, retry in %s", e.retryAfter.Round(time.Millisecond))
}

// allowLocked consults the rate limiter for a submission that creates new
// work; a nil limiter or an unidentified client admits everything. Callers
// hold the mutex.
func (s *Service) allowLocked(client string, now time.Time) error {
	if s.limiter == nil || client == "" {
		return nil
	}
	wait, ok := s.limiter.allow(client, now)
	if ok {
		return nil
	}
	s.rateLimited++
	return &rateLimitedError{retryAfter: wait}
}
