package service

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"dynamicrumor/internal/obs"
)

// -update regenerates the golden files from the live responses:
//
//	go test ./internal/service -run Golden -update
var update = flag.Bool("update", false, "rewrite golden files")

// testClock pins every timestamp so responses are byte-stable.
func testClock() time.Time { return time.Date(2026, 7, 28, 12, 0, 0, 0, time.UTC) }

// newTestServer starts a service with deterministic configuration and
// registers cleanup.
func newTestServer(t *testing.T, cfg Config) (*Service, *httptest.Server) {
	t.Helper()
	if cfg.Clock == nil {
		cfg.Clock = testClock
	}
	// Pin the build identity: test binaries carry no VCS stamp, and the
	// goldens must be byte-stable across environments.
	if cfg.Version == "" {
		cfg.Version = "test"
	}
	svc, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(func() {
		ts.Close()
		svc.Close()
	})
	return svc, ts
}

// do issues a request and returns status and body.
func do(t *testing.T, method, url string, body string) (int, []byte) {
	t.Helper()
	var rd io.Reader
	if body != "" {
		rd = strings.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, data
}

// decodeJob unmarshals a JobView response body.
func decodeJob(t *testing.T, data []byte) JobView {
	t.Helper()
	var v JobView
	if err := json.Unmarshal(data, &v); err != nil {
		t.Fatalf("decode job view %q: %v", data, err)
	}
	return v
}

// waitState polls the job until it reaches a terminal state or the wanted
// one, failing the test on deadline.
func waitState(t *testing.T, url string, id string, want JobState) JobView {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		status, body := do(t, http.MethodGet, url+"/v1/runs/"+id, "")
		if status != http.StatusOK {
			t.Fatalf("status poll returned %d: %s", status, body)
		}
		v := decodeJob(t, body)
		if v.State == want {
			return v
		}
		if v.State.Terminal() {
			t.Fatalf("job %s settled in state %s (error %q), want %s", id, v.State, v.Error, want)
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %s did not reach state %s in time", id, want)
	return JobView{}
}

// checkGolden compares a response body against the committed golden file.
func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden %s (regenerate with -update): %v", path, err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("response differs from %s:\n got: %s\nwant: %s", path, got, want)
	}
}

// stripLatency drops the latency block from a /metrics JSON document: its
// quantiles measure real wall-clock time, the one part of the response that
// cannot be pinned by the test clock. Everything else stays byte-comparable.
func stripLatency(t *testing.T, data []byte) []byte {
	t.Helper()
	var m Metrics
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatalf("decode metrics %q: %v", data, err)
	}
	m.Latency = nil
	out, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

const submitBody = `{"scenario":{"network":{"family":"clique","params":{"n":64}}},"reps":4,"seed":1}`

// An equivalent spelling of submitBody: permuted keys, explicit defaults, a
// label, a different number spelling — same canonical scenario, same seed
// and reps, so it must hit the cache.
const submitBodyRespelled = `{"seed":1,"reps":4,"scenario":{"name":"respelled","protocol":"async","mode":"push-pull","network":{"params":{"n":6.4e1},"family":"clique"}}}`

// TestLifecycleGolden drives submit → poll → done → cache hit and compares
// every deterministic response byte-for-byte against committed goldens.
func TestLifecycleGolden(t *testing.T) {
	_, ts := newTestServer(t, Config{Budget: 2})

	status, body := do(t, http.MethodPost, ts.URL+"/v1/runs", submitBody)
	if status != http.StatusAccepted {
		t.Fatalf("submit returned %d: %s", status, body)
	}
	checkGolden(t, "submit_queued.golden.json", body)
	id := decodeJob(t, body).ID

	waitState(t, ts.URL, id, StateDone)
	_, final := do(t, http.MethodGet, ts.URL+"/v1/runs/"+id, "")
	checkGolden(t, "job_done.golden.json", final)

	status, hitBody := do(t, http.MethodPost, ts.URL+"/v1/runs", submitBodyRespelled)
	if status != http.StatusOK {
		t.Fatalf("cache-hit submit returned %d: %s", status, hitBody)
	}
	checkGolden(t, "submit_cachehit.golden.json", hitBody)

	// The cache hit replays the original summary byte-identically.
	finalView, hitView := decodeJob(t, final), decodeJob(t, hitBody)
	if !hitView.CacheHit {
		t.Fatal("respelled submission did not hit the cache")
	}
	if !bytes.Equal(finalView.Summary, hitView.Summary) {
		t.Fatalf("cache hit summary differs:\n%s\nvs\n%s", finalView.Summary, hitView.Summary)
	}
	if finalView.Key != hitView.Key {
		t.Fatalf("keys differ: %s vs %s", finalView.Key, hitView.Key)
	}

	_, metrics := do(t, http.MethodGet, ts.URL+"/metrics", "")
	checkGolden(t, "metrics_lifecycle.golden.json", stripLatency(t, metrics))

	status, health := do(t, http.MethodGet, ts.URL+"/healthz", "")
	if status != http.StatusOK {
		t.Fatalf("healthz returned %d", status)
	}
	checkGolden(t, "healthz.golden.json", health)
}

// TestFamiliesGolden pins the family registry document.
func TestFamiliesGolden(t *testing.T) {
	_, ts := newTestServer(t, Config{Budget: 1})
	status, body := do(t, http.MethodGet, ts.URL+"/v1/scenarios/families", "")
	if status != http.StatusOK {
		t.Fatalf("families returned %d", status)
	}
	checkGolden(t, "families.golden.json", body)
}

// TestSummaryDeterministicAcrossBudgets: the same run executed under
// different worker budgets (different services, so no cache between them)
// produces byte-identical summaries — the property that makes the cache
// sound in the first place.
func TestSummaryDeterministicAcrossBudgets(t *testing.T) {
	summaries := make([][]byte, 0, 2)
	for _, budget := range []int{1, 7} {
		_, ts := newTestServer(t, Config{Budget: budget})
		_, body := do(t, http.MethodPost, ts.URL+"/v1/runs",
			`{"scenario":{"network":{"family":"gnrho","params":{"n":128,"rho":0.25}}},"reps":24,"seed":9}`)
		id := decodeJob(t, body).ID
		v := waitState(t, ts.URL, id, StateDone)
		summaries = append(summaries, v.Summary)
	}
	if !bytes.Equal(summaries[0], summaries[1]) {
		t.Fatalf("summaries differ across budgets:\n%s\nvs\n%s", summaries[0], summaries[1])
	}
}

// longJobBody is a submission that runs for minutes if never cancelled:
// cancellation tests rely on stopping it mid-flight.
const longJobBody = `{"scenario":{"network":{"family":"clique","params":{"n":512}}},"reps":1000000,"seed":3}`

// TestCancelRunning: DELETE on a running job settles it as cancelled within
// a repetition boundary, having executed only a fraction of its repetitions.
func TestCancelRunning(t *testing.T) {
	_, ts := newTestServer(t, Config{Budget: 2, Clock: time.Now})

	_, body := do(t, http.MethodPost, ts.URL+"/v1/runs", longJobBody)
	id := decodeJob(t, body).ID

	// Wait until it is genuinely mid-batch.
	deadline := time.Now().Add(60 * time.Second)
	for {
		_, b := do(t, http.MethodGet, ts.URL+"/v1/runs/"+id, "")
		v := decodeJob(t, b)
		if v.State == StateRunning && v.RepsDone > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job never started running: %s", b)
		}
		time.Sleep(2 * time.Millisecond)
	}

	status, cancelBody := do(t, http.MethodDelete, ts.URL+"/v1/runs/"+id, "")
	if status != http.StatusAccepted {
		t.Fatalf("cancel returned %d: %s", status, cancelBody)
	}
	if v := decodeJob(t, cancelBody); v.State != StateRunning || !v.CancelRequested {
		t.Fatalf("cancel response %s, want running with cancel_requested", cancelBody)
	}

	v := waitState(t, ts.URL, id, StateCancelled)
	if v.RepsDone <= 0 || v.RepsDone >= int64(v.Reps) {
		t.Fatalf("cancelled job reduced %d of %d repetitions, want a strict fraction", v.RepsDone, v.Reps)
	}
	if v.Summary != nil {
		t.Fatal("cancelled job carries a summary")
	}

	// Cancelling a settled job conflicts.
	status, conflict := do(t, http.MethodDelete, ts.URL+"/v1/runs/"+id, "")
	if status != http.StatusConflict {
		t.Fatalf("second cancel returned %d: %s", status, conflict)
	}
}

// TestCancelQueued: with the budget saturated, a queued job cancels
// synchronously and never runs; the head job is then cancelled too.
func TestCancelQueued(t *testing.T) {
	_, ts := newTestServer(t, Config{Budget: 1, Clock: time.Now})

	_, first := do(t, http.MethodPost, ts.URL+"/v1/runs", longJobBody)
	firstID := decodeJob(t, first).ID
	_, second := do(t, http.MethodPost, ts.URL+"/v1/runs",
		`{"scenario":{"network":{"family":"clique","params":{"n":64}}},"reps":8,"seed":1}`)
	secondID := decodeJob(t, second).ID

	status, body := do(t, http.MethodDelete, ts.URL+"/v1/runs/"+secondID, "")
	if status != http.StatusOK {
		t.Fatalf("queued cancel returned %d: %s", status, body)
	}
	if v := decodeJob(t, body); v.State != StateCancelled || v.RepsDone != 0 {
		t.Fatalf("queued cancel response %s, want immediate cancelled with 0 reps", body)
	}

	do(t, http.MethodDelete, ts.URL+"/v1/runs/"+firstID, "")
	waitState(t, ts.URL, firstID, StateCancelled)
}

// TestSharedBudget: concurrent submissions never exceed the global worker
// budget, and the budget is genuinely shared — a small job's leftover
// capacity lets the next job run alongside it.
func TestSharedBudget(t *testing.T) {
	svc, ts := newTestServer(t, Config{Budget: 3, Clock: time.Now})

	ids := make([]string, 0, 4)
	for i := 0; i < 4; i++ {
		_, body := do(t, http.MethodPost, ts.URL+"/v1/runs",
			fmt.Sprintf(`{"scenario":{"network":{"family":"gnrho","params":{"n":128,"rho":0.25}}},"reps":40,"seed":%d}`, i))
		ids = append(ids, decodeJob(t, body).ID)
	}

	overlapped := false
	deadline := time.Now().Add(120 * time.Second)
	for {
		m := svc.metrics()
		if m.Budget.InUse > m.Budget.Total {
			t.Fatalf("budget exceeded: %d in use of %d", m.Budget.InUse, m.Budget.Total)
		}
		if m.Jobs.Running > 1 {
			overlapped = true
		}
		if m.Jobs.Done == len(ids) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("jobs did not finish: %+v", m)
		}
		time.Sleep(time.Millisecond)
	}
	// With 40-rep jobs on a budget of 3, the first job is granted 3 workers
	// and later jobs wait — but each job releases its grant on completion,
	// so at least two jobs must have been observed running concurrently only
	// if a grant was ever partial. Do not require overlap; require that all
	// jobs completed and the budget never over-committed.
	_ = overlapped

	for _, id := range ids {
		v := waitState(t, ts.URL, id, StateDone)
		if v.RepsDone != int64(v.Reps) {
			t.Fatalf("job %s done with %d of %d reps", id, v.RepsDone, v.Reps)
		}
	}
}

// TestGrantWorkers pins the budget-sharing policy.
func TestGrantWorkers(t *testing.T) {
	cases := []struct{ reps, budget, inUse, want int }{
		{100, 8, 0, 8},  // big job takes the whole free budget
		{3, 8, 0, 3},    // small job takes only what it can use
		{100, 8, 6, 2},  // partial budget left → partial grant
		{100, 8, 8, 0},  // saturated → no grant (dispatcher waits)
		{1, 8, 7, 1},    // last slot
		{100, 8, 10, 0}, // over-committed guard
	}
	for _, c := range cases {
		if got := grantWorkers(c.reps, c.budget, c.inUse); got != c.want {
			t.Errorf("grantWorkers(%d, %d, %d) = %d, want %d", c.reps, c.budget, c.inUse, got, c.want)
		}
	}
}

// TestSubmitValidation: malformed submissions fail loudly with 400s and
// never create jobs.
func TestSubmitValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{Budget: 1})
	cases := []struct {
		name, body string
		status     int
	}{
		{"empty body", ``, http.StatusBadRequest},
		{"not json", `{`, http.StatusBadRequest},
		{"unknown envelope field", `{"scenario":{"network":{"family":"clique","params":{"n":8}}},"reps":1,"bogus":1}`, http.StatusBadRequest},
		{"trailing content", `{"scenario":{"network":{"family":"clique","params":{"n":8}}},"reps":1}{"reps":2}`, http.StatusBadRequest},
		{"missing scenario", `{"reps":4}`, http.StatusBadRequest},
		{"missing reps", `{"scenario":{"network":{"family":"clique","params":{"n":8}}}}`, http.StatusBadRequest},
		{"negative reps", `{"scenario":{"network":{"family":"clique","params":{"n":8}}},"reps":-1}`, http.StatusBadRequest},
		{"unknown scenario field", `{"scenario":{"network":{"family":"clique","params":{"n":8}},"turbo":9},"reps":1}`, http.StatusBadRequest},
		{"unknown family", `{"scenario":{"network":{"family":"warp","params":{"n":8}}},"reps":1}`, http.StatusBadRequest},
		{"unknown family param", `{"scenario":{"network":{"family":"clique","params":{"n":8,"w":1}}},"reps":1}`, http.StatusBadRequest},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			status, body := do(t, http.MethodPost, ts.URL+"/v1/runs", c.body)
			if status != c.status {
				t.Fatalf("got %d (%s), want %d", status, body, c.status)
			}
			var e struct {
				Error string `json:"error"`
			}
			if err := json.Unmarshal(body, &e); err != nil || e.Error == "" {
				t.Fatalf("error body %q is not {\"error\": ...}", body)
			}
		})
	}

	if status, _ := do(t, http.MethodGet, ts.URL+"/v1/runs/nope", ""); status != http.StatusNotFound {
		t.Fatalf("unknown job status returned %d", status)
	}
	if status, _ := do(t, http.MethodDelete, ts.URL+"/v1/runs/nope", ""); status != http.StatusNotFound {
		t.Fatalf("unknown job cancel returned %d", status)
	}

	status, body := do(t, http.MethodGet, ts.URL+"/v1/runs", "")
	if status != http.StatusOK {
		t.Fatalf("list returned %d", status)
	}
	var runs RunsResponse
	if err := json.Unmarshal(body, &runs); err != nil {
		t.Fatal(err)
	}
	if len(runs.Runs) != 0 {
		t.Fatalf("invalid submissions created %d jobs", len(runs.Runs))
	}
}

// TestQueueLimit: submissions beyond the queue bound are rejected with 429.
func TestQueueLimit(t *testing.T) {
	_, ts := newTestServer(t, Config{Budget: 1, QueueLimit: 1, Clock: time.Now})
	_, first := do(t, http.MethodPost, ts.URL+"/v1/runs", longJobBody)
	firstID := decodeJob(t, first).ID
	// Wait for dispatch so exactly one queue slot is free.
	deadline := time.Now().Add(60 * time.Second)
	for {
		_, b := do(t, http.MethodGet, ts.URL+"/v1/runs/"+firstID, "")
		if decodeJob(t, b).State == StateRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("first job never dispatched")
		}
		time.Sleep(time.Millisecond)
	}
	if status, body := do(t, http.MethodPost, ts.URL+"/v1/runs",
		`{"scenario":{"network":{"family":"clique","params":{"n":64}}},"reps":4,"seed":5}`); status != http.StatusAccepted {
		t.Fatalf("first queued submit returned %d: %s", status, body)
	}
	if status, _ := do(t, http.MethodPost, ts.URL+"/v1/runs",
		`{"scenario":{"network":{"family":"clique","params":{"n":64}}},"reps":4,"seed":6}`); status != http.StatusTooManyRequests {
		t.Fatalf("over-limit submit returned %d, want 429", status)
	}
	do(t, http.MethodDelete, ts.URL+"/v1/runs/"+firstID, "")
}

// TestMaxReps: the per-job repetition bound is enforced.
func TestMaxReps(t *testing.T) {
	_, ts := newTestServer(t, Config{Budget: 1, MaxReps: 10})
	status, _ := do(t, http.MethodPost, ts.URL+"/v1/runs",
		`{"scenario":{"network":{"family":"clique","params":{"n":8}}},"reps":11}`)
	if status != http.StatusBadRequest {
		t.Fatalf("over-limit reps returned %d, want 400", status)
	}
}

// TestCoalesceInFlight: identical submissions arriving while the first is
// still running never re-execute — they ride the leader and settle with the
// same summary bytes.
func TestCoalesceInFlight(t *testing.T) {
	svc, ts := newTestServer(t, Config{Budget: 1, Clock: time.Now})

	body := `{"scenario":{"network":{"family":"clique","params":{"n":256}}},"reps":2000,"seed":4}`
	_, first := do(t, http.MethodPost, ts.URL+"/v1/runs", body)
	leaderID := decodeJob(t, first).ID

	// Respelled but canonically identical — must coalesce, not enqueue.
	respelled := `{"seed":4,"reps":2000,"scenario":{"protocol":"async","network":{"params":{"n":2.56e2},"family":"clique"}}}`
	_, second := do(t, http.MethodPost, ts.URL+"/v1/runs", respelled)
	follower := decodeJob(t, second)
	if follower.State != StateQueued || follower.CoalescedWith != leaderID {
		t.Fatalf("follower response %s, want queued coalesced with %s", second, leaderID)
	}

	lv := waitState(t, ts.URL, leaderID, StateDone)
	fv := waitState(t, ts.URL, follower.ID, StateDone)
	if !bytes.Equal(lv.Summary, fv.Summary) {
		t.Fatalf("follower summary differs from leader:\n%s\nvs\n%s", lv.Summary, fv.Summary)
	}
	m := svc.metrics()
	if m.Cache.Coalesced != 1 {
		t.Fatalf("coalesced counter = %d, want 1", m.Cache.Coalesced)
	}
	if m.Throughput.RepsDone != 2000 {
		t.Fatalf("reps_done = %d, want 2000 (follower must not re-execute)", m.Throughput.RepsDone)
	}
}

// TestCancelLeaderPromotesFollower: DELETE on a coalesced leader cancels
// only that job — the first follower is promoted to a fresh queued leader,
// and can then be cancelled on its own.
func TestCancelLeaderPromotesFollower(t *testing.T) {
	_, ts := newTestServer(t, Config{Budget: 1, Clock: time.Now})

	_, first := do(t, http.MethodPost, ts.URL+"/v1/runs", longJobBody)
	leaderID := decodeJob(t, first).ID
	waitState(t, ts.URL, leaderID, StateRunning)

	_, second := do(t, http.MethodPost, ts.URL+"/v1/runs", longJobBody)
	followerID := decodeJob(t, second).ID
	if v := decodeJob(t, second); v.CoalescedWith != leaderID {
		t.Fatalf("second submission did not coalesce: %s", second)
	}

	do(t, http.MethodDelete, ts.URL+"/v1/runs/"+leaderID, "")
	waitState(t, ts.URL, leaderID, StateCancelled)

	// The follower survives as its own queued/running job.
	deadline := time.Now().Add(60 * time.Second)
	for {
		_, b := do(t, http.MethodGet, ts.URL+"/v1/runs/"+followerID, "")
		v := decodeJob(t, b)
		if v.State.Terminal() {
			t.Fatalf("follower died with its leader: %s", b)
		}
		if v.CoalescedWith == "" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("follower never promoted: %s", b)
		}
		time.Sleep(2 * time.Millisecond)
	}
	do(t, http.MethodDelete, ts.URL+"/v1/runs/"+followerID, "")
	waitState(t, ts.URL, followerID, StateCancelled)
}

// TestCancelFollowerLeavesLeader: cancelling a follower detaches it without
// touching the leader's run.
func TestCancelFollowerLeavesLeader(t *testing.T) {
	_, ts := newTestServer(t, Config{Budget: 1, Clock: time.Now})

	_, first := do(t, http.MethodPost, ts.URL+"/v1/runs", longJobBody)
	leaderID := decodeJob(t, first).ID
	waitState(t, ts.URL, leaderID, StateRunning)
	_, second := do(t, http.MethodPost, ts.URL+"/v1/runs", longJobBody)
	followerID := decodeJob(t, second).ID

	status, body := do(t, http.MethodDelete, ts.URL+"/v1/runs/"+followerID, "")
	if status != http.StatusOK {
		t.Fatalf("follower cancel returned %d: %s", status, body)
	}
	if v := decodeJob(t, body); v.State != StateCancelled {
		t.Fatalf("follower cancel response %s, want cancelled", body)
	}
	_, b := do(t, http.MethodGet, ts.URL+"/v1/runs/"+leaderID, "")
	if v := decodeJob(t, b); v.State != StateRunning {
		t.Fatalf("leader state %s after follower cancel, want running", v.State)
	}
	do(t, http.MethodDelete, ts.URL+"/v1/runs/"+leaderID, "")
	waitState(t, ts.URL, leaderID, StateCancelled)
}

// TestHistoryPruned: terminal job records beyond HistoryLimit are forgotten
// oldest-first, so the job map cannot grow with lifetime submissions.
func TestHistoryPruned(t *testing.T) {
	_, ts := newTestServer(t, Config{Budget: 1, HistoryLimit: 2, Clock: time.Now})
	ids := make([]string, 0, 4)
	for seed := 0; seed < 4; seed++ {
		_, body := do(t, http.MethodPost, ts.URL+"/v1/runs",
			fmt.Sprintf(`{"scenario":{"network":{"family":"clique","params":{"n":64}}},"reps":2,"seed":%d}`, seed))
		id := decodeJob(t, body).ID
		waitState(t, ts.URL, id, StateDone)
		ids = append(ids, id)
	}
	status, body := do(t, http.MethodGet, ts.URL+"/v1/runs", "")
	if status != http.StatusOK {
		t.Fatal("list failed")
	}
	var runs RunsResponse
	if err := json.Unmarshal(body, &runs); err != nil {
		t.Fatal(err)
	}
	if len(runs.Runs) != 2 {
		t.Fatalf("retained %d jobs, want 2", len(runs.Runs))
	}
	if runs.Runs[0].ID != ids[2] || runs.Runs[1].ID != ids[3] {
		t.Fatalf("retained %s/%s, want the two newest %s/%s",
			runs.Runs[0].ID, runs.Runs[1].ID, ids[2], ids[3])
	}
	for _, id := range ids[:2] {
		if status, _ := do(t, http.MethodGet, ts.URL+"/v1/runs/"+id, ""); status != http.StatusNotFound {
			t.Fatalf("pruned job %s still served status %d", id, status)
		}
	}
}

// TestTraceEndpoint: a completed run's flight-recorder timeline is served at
// /v1/runs/{id}/trace with the run's deterministic trace ID, the lifecycle
// phases in start order, and the X-Trace-Id response header set. Unknown
// runs 404.
func TestTraceEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{Budget: 2})

	status, body := do(t, http.MethodPost, ts.URL+"/v1/runs", submitBody)
	if status != http.StatusAccepted {
		t.Fatalf("submit returned %d: %s", status, body)
	}
	job := decodeJob(t, body)
	if want := "tr-" + job.ID; job.Trace != want {
		t.Errorf("submit response trace = %q, want %q", job.Trace, want)
	}
	waitState(t, ts.URL, job.ID, StateDone)

	resp, err := http.Get(ts.URL + "/v1/runs/" + job.ID + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("trace endpoint returned %d", resp.StatusCode)
	}
	if got := resp.Header.Get(obs.TraceHeader); got != "tr-"+job.ID {
		t.Errorf("X-Trace-Id header = %q, want %q", got, "tr-"+job.ID)
	}
	var view obs.TraceView
	if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
		t.Fatal(err)
	}
	if view.Trace != "tr-"+job.ID || view.Run != job.ID {
		t.Errorf("trace identity = (%q, %q), want (%q, %q)", view.Trace, view.Run, "tr-"+job.ID, job.ID)
	}
	have := make(map[string]bool, len(view.Spans))
	for _, sp := range view.Spans {
		have[sp.Name] = true
		if sp.DurationMS < 0 {
			t.Errorf("span %s has negative duration %v", sp.Name, sp.DurationMS)
		}
	}
	for _, name := range []string{"submitted", "queued", "execute", "run", "settled"} {
		if !have[name] {
			t.Errorf("timeline lacks a %q span: %+v", name, view.Spans)
		}
	}

	// A cache hit records its own (short) timeline under its own trace ID.
	status, hitBody := do(t, http.MethodPost, ts.URL+"/v1/runs", submitBodyRespelled)
	if status != http.StatusOK {
		t.Fatalf("cache-hit submit returned %d: %s", status, hitBody)
	}
	hit := decodeJob(t, hitBody)
	status, traceBody := do(t, http.MethodGet, ts.URL+"/v1/runs/"+hit.ID+"/trace", "")
	if status != http.StatusOK {
		t.Fatalf("cache-hit trace returned %d: %s", status, traceBody)
	}
	var hitView obs.TraceView
	if err := json.Unmarshal(traceBody, &hitView); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, sp := range hitView.Spans {
		if sp.Name == "cache-hit" {
			found = true
		}
	}
	if !found {
		t.Errorf("cache-hit timeline lacks a cache-hit span: %+v", hitView.Spans)
	}

	if status, _ := do(t, http.MethodGet, ts.URL+"/v1/runs/nope/trace", ""); status != http.StatusNotFound {
		t.Errorf("unknown run trace returned %d, want 404", status)
	}
}

// TestHealthzSubsystems: with durability configured, /healthz reports
// per-subsystem readiness alongside liveness; a bare service reports none.
func TestHealthzSubsystems(t *testing.T) {
	_, ts := newTestServer(t, Config{Budget: 1, StateDir: t.TempDir(), CacheDir: t.TempDir()})
	status, body := do(t, http.MethodGet, ts.URL+"/healthz", "")
	if status != http.StatusOK {
		t.Fatalf("healthz returned %d", status)
	}
	var h HealthResponse
	if err := json.Unmarshal(body, &h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" {
		t.Errorf("status = %q, want ok", h.Status)
	}
	for _, name := range []string{"journal", "disk_cache"} {
		sub, ok := h.Subsystems[name]
		if !ok {
			t.Errorf("healthz lacks subsystem %q: %s", name, body)
			continue
		}
		if !sub.Ready {
			t.Errorf("subsystem %q not ready: %+v", name, sub)
		}
	}

	_, bare := newTestServer(t, Config{Budget: 1})
	status, body = do(t, http.MethodGet, bare.URL+"/healthz", "")
	if status != http.StatusOK {
		t.Fatalf("bare healthz returned %d", status)
	}
	var bh HealthResponse
	if err := json.Unmarshal(body, &bh); err != nil {
		t.Fatal(err)
	}
	if bh.Subsystems != nil {
		t.Errorf("bare service reported subsystems: %s", body)
	}
}
