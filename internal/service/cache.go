package service

import "encoding/json"

// resultCache maps run keys to completed summary bytes. It is a plain
// insertion-order FIFO bounded at limit entries: summaries are tiny (a few
// hundred bytes) and equally cheap to recompute, so recency tracking would
// buy little — the cache's job is absorbing repeated submissions of the same
// scenario, which arrive close together.
//
// The cache is not self-locking; the service serializes access under its
// mutex.
type resultCache struct {
	limit   int
	entries map[string]json.RawMessage
	order   []string
}

func newResultCache(limit int) *resultCache {
	return &resultCache{limit: limit, entries: make(map[string]json.RawMessage)}
}

// get returns the cached summary bytes for the key.
func (c *resultCache) get(key string) (json.RawMessage, bool) {
	v, ok := c.entries[key]
	return v, ok
}

// put stores the summary under the key, evicting the oldest entries beyond
// the limit. Re-putting an existing key is a no-op: the engine guarantees an
// equal key means byte-identical bytes, so the first writer wins harmlessly.
func (c *resultCache) put(key string, summary json.RawMessage) {
	if _, ok := c.entries[key]; ok {
		return
	}
	for len(c.order) >= c.limit && len(c.order) > 0 {
		oldest := c.order[0]
		c.order = c.order[1:]
		delete(c.entries, oldest)
	}
	if c.limit <= 0 {
		return
	}
	c.entries[key] = summary
	c.order = append(c.order, key)
}

// len returns the number of cached entries.
func (c *resultCache) len() int { return len(c.entries) }
