package service

import (
	"context"
	"time"

	"dynamicrumor/internal/engine"
	"dynamicrumor/internal/obs"
	"dynamicrumor/internal/sim"
	"dynamicrumor/internal/stats"
)

// NewSummaryStream returns the stream every run summary is folded into: the
// exact Welford aggregates plus P² estimates for the median and 0.9-quantile.
// Every backend must fold into a stream with these levels — the summary
// document's byte-identity across backends depends on identical accumulator
// shapes — so the constructor is exported for the cluster coordinator and
// its workers.
func NewSummaryStream() *stats.Stream { return stats.NewStream(0.5, 0.9) }

// BackendRun describes one ensemble run for a Backend.
type BackendRun struct {
	// Scenario is the parsed scenario; Canonical its canonical encoding (the
	// form a distributed backend ships to workers, so every node executes the
	// same normalized document the cache key was derived from).
	Scenario  engine.Scenario
	Canonical []byte
	// Key is the run's cache key (sha256 over canonical + seed + reps). A
	// crash-recovering backend uses it to re-adopt journalled state for the
	// run without recomputing the hash.
	Key string
	// Reps and Seed are the ensemble inputs.
	Reps int
	Seed uint64
	// Workers is the job's grant from the service's local worker budget.
	// Backends that execute elsewhere (the cluster coordinator) may ignore it.
	Workers int
	// Observe, when non-nil, is called with repetition-count deltas as
	// repetitions finish, feeding the job's progress counters. It must be safe
	// to call from any goroutine.
	Observe func(delta int64)
	// Compile, when non-nil, is the compile set shared by every run of one
	// sweep: a locally-executing backend compiles the scenario through it so
	// deterministic networks are built once per distinct grid shape and read
	// concurrently by every cell over the same graph. Sharing never changes
	// results (see engine.CompileSet); backends that execute elsewhere ignore
	// it and compile on their own nodes.
	Compile *engine.CompileSet
	// Trace, when non-nil, receives the backend's phase spans (compilation,
	// execution, per-shard leases in cluster mode) on the job's
	// flight-recorder timeline. Purely observational: recording never alters
	// scheduling, RNG streams or reduction order.
	Trace *obs.Trace
}

// BackendResult is a completed run: the completion count and the folded
// per-repetition spread-time stream (a NewSummaryStream that received every
// repetition's observation in repetition order).
type BackendResult struct {
	Completed int
	Stream    *stats.Stream
}

// Backend executes ensemble runs for the scheduler. The contract every
// implementation must honor is the engine's determinism extended across
// execution topology: equal (canonical scenario, seed, reps) produce
// bit-identical BackendResults — and therefore byte-identical summary
// documents — whether the repetitions ran on one goroutine, a local worker
// pool, or a fleet of remote processes. Run must respect ctx: cancellation
// settles the run with ctx.Err() at the backend's earliest safe boundary.
type Backend interface {
	Run(ctx context.Context, run BackendRun) (BackendResult, error)
}

// UnavailableError is returned by a backend's Ready when it cannot execute
// new work right now but expects to again — a distributed backend with zero
// live workers, for instance. The API layer maps it to 503 with a
// Retry-After header, so clients fail fast instead of queueing into a
// backend that cannot drain.
type UnavailableError struct {
	// Reason is the operator-readable cause.
	Reason string
	// RetryAfter is the suggested wait before resubmitting.
	RetryAfter time.Duration
}

func (e *UnavailableError) Error() string { return e.Reason }

// readyChecker is implemented by backends that can be temporarily unable to
// execute new runs. Ready returns nil when submissions can be accepted and
// an *UnavailableError when they should be refused; the scheduler consults
// it only for submissions that need new work (cache hits and coalesced
// followers are served regardless).
type readyChecker interface {
	Ready() error
}

// LocalBackend executes runs in-process on the batch engine — the single-node
// deployment, and the reference any distributed backend is measured against
// byte for byte.
type LocalBackend struct{}

// Run executes the repetitions on Workers engine goroutines. A run carrying
// a sweep's compile set compiles through it, sharing deterministic networks
// with the sweep's other cells; compilation through a set is bit-identical
// to plain execution (see engine.CompileSet), so the two paths produce the
// same summary bytes.
func (LocalBackend) Run(ctx context.Context, run BackendRun) (BackendResult, error) {
	eng := engine.Engine{Parallelism: run.Workers, Seed: run.Seed}
	stream := NewSummaryStream()
	completed := 0
	reduce := func(rep int, res *sim.Result) error {
		stream.Add(res.SpreadTime)
		if res.Completed {
			completed++
		}
		if run.Observe != nil {
			run.Observe(1)
		}
		return nil
	}
	var err error
	start := time.Now()
	if run.Compile != nil {
		var compiled *engine.Compiled
		compiled, err = run.Compile.Compile(run.Scenario)
		run.Trace.Add(obs.Span{Name: "compiled", Start: start, End: time.Now()})
		if err == nil {
			e0 := time.Now()
			err = eng.RunReduceCompiledCtx(ctx, compiled, run.Reps, reduce)
			run.Trace.Add(obs.Span{Name: "execute", Start: e0, End: time.Now()})
		}
	} else {
		err = eng.RunReduceCtx(ctx, run.Scenario, run.Reps, reduce)
		run.Trace.Add(obs.Span{Name: "execute", Start: start, End: time.Now()})
	}
	if err != nil {
		return BackendResult{}, err
	}
	return BackendResult{Completed: completed, Stream: stream}, nil
}
