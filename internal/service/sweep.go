package service

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"dynamicrumor/internal/engine"
	"dynamicrumor/internal/obs"
)

// The sweep subsystem: one POST /v1/sweeps submission declares a parameter
// grid (family × n × params × protocol × stream × seed) that the service
// plans into cells — each cell an ordinary job with the ordinary sha256
// cache key, so prior single-run results are reused verbatim — and executes
// with cross-cell amortization: every cell of a sweep compiles its scenario
// through one engine.CompileSet, so the read-only network of a deterministic
// family is built once per distinct (family, params) shape and shared by
// every protocol/stream/seed cell over the same graph. Sharing never changes
// results (the no-draw contract, see engine.CompileSet), which is what keeps
// each cell's summary byte-identical to the equivalent standalone run.

// maxSweepCells bounds one sweep's planned grid; larger requests are
// rejected at planning time rather than flooding the queue.
const maxSweepCells = 4096

// SweepSpec declares the parameter grid of a sweep. The cell list is the
// cross product of every axis, in a deterministic order: n outermost, then
// the param grids in sorted key order, then protocol, stream, and seed
// innermost. Axes left empty contribute the base scenario's value as a
// single point, so a spec with only "n" sweeps sizes at fixed parameters.
type SweepSpec struct {
	// Name optionally labels the sweep in views and listings.
	Name string `json:"name,omitempty"`
	// Base is a declarative scenario template the cells are derived from
	// (strict: unknown fields are rejected). It supplies everything the axes
	// do not override — mode, clock rate, caps, fixed network params. Trace
	// recording is stripped exactly as POST /v1/runs strips it.
	Base json.RawMessage `json:"base,omitempty"`
	// Family is the network family every cell uses; defaults to the base
	// scenario's family. One of the two must name a family.
	Family string `json:"family,omitempty"`
	// N is the grid of network sizes, shorthand for Params["n"].
	N []int `json:"n,omitempty"`
	// Params maps family parameter names to their grids. A parameter present
	// here overrides the base scenario's value in every cell.
	Params map[string][]float64 `json:"params,omitempty"`
	// Protocols is the protocol axis ("async", "sync", "flooding");
	// defaults to the base scenario's protocol as a single point.
	Protocols []string `json:"protocols,omitempty"`
	// Streams is the async stream-discipline axis (1 or 2). Crossing it with
	// non-async protocols is rejected by cell validation, the same
	// fail-loudly stance single runs take.
	Streams []int `json:"streams,omitempty"`
	// Seeds is the ensemble-seed axis; defaults to the request's Seed as a
	// single point.
	Seeds []uint64 `json:"seeds,omitempty"`
}

// SweepRequest is the body of POST /v1/sweeps.
type SweepRequest struct {
	// Sweep declares the grid.
	Sweep SweepSpec `json:"sweep"`
	// Reps is the repetition count of every cell (required, >= 1).
	Reps int `json:"reps"`
	// Seed is the ensemble seed cells use when the spec has no Seeds axis.
	Seed uint64 `json:"seed"`
}

// plannedCell is one grid point the planner produced: a fully validated
// scenario plus the exact cache key a standalone POST /v1/runs of the same
// cell would compute.
type plannedCell struct {
	label     string
	sc        engine.Scenario
	canonical []byte
	seed      uint64
	key       string
}

// sweepAxis is one dimension of the planner's odometer.
type sweepAxis struct {
	key    string
	values []float64
}

// planSweep expands a sweep request into its cell list. Planning is pure and
// deterministic — equal (request, defaultStream) always yield the identical
// cell list — which is what lets crash recovery re-plan a journalled sweep
// and re-adopt its unfinished cells under their original identities.
func planSweep(req SweepRequest, defaultStream int) ([]plannedCell, error) {
	spec := req.Sweep
	var base engine.Scenario
	if len(spec.Base) > 0 {
		dec := json.NewDecoder(bytes.NewReader(spec.Base))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&base); err != nil {
			return nil, fmt.Errorf("decode base scenario: %w", err)
		}
		if dec.More() {
			return nil, errors.New("trailing content after the base scenario object")
		}
	}
	// The service reports summaries, never traces, and cell results must hit
	// the same cache entries standalone runs would.
	base.Name = ""
	base.Trace = false
	family := spec.Family
	if family == "" {
		family = base.Network.Family
	}
	if family == "" {
		return nil, errors.New(`sweep needs a "family" (or a base scenario naming one)`)
	}

	var axes []sweepAxis
	if len(spec.N) > 0 {
		vals := make([]float64, len(spec.N))
		for i, n := range spec.N {
			vals[i] = float64(n)
		}
		axes = append(axes, sweepAxis{key: "n", values: vals})
	}
	keys := make([]string, 0, len(spec.Params))
	for k := range spec.Params {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if k == "n" && len(spec.N) > 0 {
			return nil, errors.New(`parameter "n" given both as the "n" grid and in "params"`)
		}
		vs := spec.Params[k]
		if len(vs) == 0 {
			return nil, fmt.Errorf("parameter %q has an empty grid", k)
		}
		axes = append(axes, sweepAxis{key: k, values: vs})
	}

	protocols := spec.Protocols
	if len(protocols) == 0 {
		protocols = []string{string(base.Protocol)}
	}
	streams := spec.Streams
	if len(streams) == 0 {
		streams = []int{base.Stream}
	}
	seeds := spec.Seeds
	if len(seeds) == 0 {
		seeds = []uint64{req.Seed}
	}

	total := len(protocols) * len(streams) * len(seeds)
	for _, ax := range axes {
		total *= len(ax.values)
	}
	if total > maxSweepCells {
		return nil, fmt.Errorf("sweep plans %d cells, exceeding the limit of %d", total, maxSweepCells)
	}

	cells := make([]plannedCell, 0, total)
	idx := make([]int, len(axes))
	for {
		for _, proto := range protocols {
			for _, stream := range streams {
				for _, seed := range seeds {
					sc := base
					sc.Network.Family = family
					params := make(engine.Params, len(base.Network.Params)+len(axes))
					for k, v := range base.Network.Params {
						params[k] = v
					}
					var parts []string
					for ai, ax := range axes {
						v := ax.values[idx[ai]]
						params[ax.key] = v
						parts = append(parts, ax.key+"="+strconv.FormatFloat(v, 'g', -1, 64))
					}
					sc.Network.Params = params
					sc.Protocol = engine.ProtocolKind(proto)
					sc.Stream = stream
					// The configured default stream discipline applies to async
					// cells that do not pin one, before canonicalization —
					// exactly as POST /v1/runs applies it — so cell cache keys
					// match standalone submissions under the same daemon.
					if defaultStream != 0 && sc.Stream == 0 && sc.Protocol.Normalize() == engine.ProtocolAsync {
						sc.Stream = defaultStream
					}
					parts = append(parts, "protocol="+string(sc.Protocol.Normalize()))
					if sc.Stream != 0 {
						parts = append(parts, "stream="+strconv.Itoa(sc.Stream))
					}
					parts = append(parts, "seed="+strconv.FormatUint(seed, 10))
					label := strings.Join(parts, ",")
					canonical, err := engine.Canonical(sc)
					if err != nil {
						return nil, fmt.Errorf("cell %s: %w", label, err)
					}
					cells = append(cells, plannedCell{
						label:     label,
						sc:        sc,
						canonical: canonical,
						seed:      seed,
						key:       runKey(canonical, seed, req.Reps),
					})
				}
			}
		}
		// Advance the axis odometer, innermost (last) axis fastest.
		ai := len(axes) - 1
		for ; ai >= 0; ai-- {
			idx[ai]++
			if idx[ai] < len(axes[ai].values) {
				break
			}
			idx[ai] = 0
		}
		if ai < 0 {
			break
		}
	}
	return cells, nil
}

// sweep is the service-internal record of one planned grid. All fields are
// guarded by the service mutex.
type sweep struct {
	id      string
	name    string
	seq     int
	state   JobState // StateRunning until every cell settles
	request json.RawMessage
	// defaultStream is the service default captured at planning time; crash
	// recovery re-plans with it, so the re-planned cells carry the identical
	// cache keys even if the daemon restarts with a different -stream-default.
	defaultStream int
	reps          int
	total         int
	cells         []*job
	settled       int
	cacheHits     int
	// compile is the shared compile set every cell of this sweep routes its
	// scenario compilation through; released when the sweep finalizes.
	compile  *engine.CompileSet
	networks int
	// journaled marks a sweep recorded in the durable run ledger.
	journaled bool
	submitted time.Time
	finished  time.Time

	// events is the append-only SSE log: one "cell" event per settled cell
	// and a final "sweep" event. Subscribers replay it from their cursor and
	// then follow via their wake channel.
	events []sweepEvent
	subs   map[chan struct{}]struct{}
}

// sweepEvent is one rendered server-sent event.
type sweepEvent struct {
	id   int
	name string
	data []byte
}

// SweepCellView is one cell of the aggregate table.
type SweepCellView struct {
	// Cell is the planner's label for the grid point
	// ("n=1024,rho=0.1,protocol=async,seed=7").
	Cell string `json:"cell"`
	// Run is the cell's job ID; GET /v1/runs/{id} serves the full job view.
	Run   string   `json:"run"`
	State JobState `json:"state"`
	// Key is the cell's cache key — identical to the key a standalone
	// POST /v1/runs of the same scenario/seed/reps would compute.
	Key      string `json:"key"`
	Seed     uint64 `json:"seed"`
	CacheHit bool   `json:"cache_hit,omitempty"`
	// Trace is the cell's flight-recorder trace ID (GET /v1/runs/{id}/trace).
	Trace string `json:"trace,omitempty"`
	// QueueMS and RunMS summarize the cell's timeline in the aggregate table:
	// milliseconds spent queued and running. Zero (and omitted) until the
	// respective phase completes.
	QueueMS float64 `json:"queue_ms,omitempty"`
	RunMS   float64 `json:"run_ms,omitempty"`
	Error   string  `json:"error,omitempty"`
	// Summary holds the cell's result document once it is done,
	// byte-identical to the standalone run's summary.
	Summary json.RawMessage `json:"summary,omitempty"`
}

// SweepView is the API representation of a sweep.
type SweepView struct {
	ID    string   `json:"id"`
	Name  string   `json:"name,omitempty"`
	State JobState `json:"state"`
	Reps  int      `json:"reps"`
	// Total and Settled count the sweep's cells and how many have reached a
	// terminal state; CacheHits counts cells answered from the result cache.
	Total     int `json:"total"`
	Settled   int `json:"settled"`
	CacheHits int `json:"cache_hits"`
	// SharedNetworks counts the distinct read-only networks the sweep's
	// compile set built — the amortization the planner bought: cells minus
	// shared networks is the number of constructions a per-cell submission
	// loop would have paid extra.
	SharedNetworks int    `json:"shared_networks,omitempty"`
	SubmittedAt    string `json:"submitted_at"`
	FinishedAt     string `json:"finished_at,omitempty"`
	// Cells is the aggregate table in planning order (detail view only).
	Cells []SweepCellView `json:"cells,omitempty"`
}

// sweepCellEvent is the payload of a "cell" SSE event: one cell settled.
type sweepCellEvent struct {
	Sweep    string          `json:"sweep"`
	Cell     string          `json:"cell"`
	Run      string          `json:"run"`
	State    JobState        `json:"state"`
	Settled  int             `json:"settled"`
	Total    int             `json:"total"`
	CacheHit bool            `json:"cache_hit,omitempty"`
	Error    string          `json:"error,omitempty"`
	Summary  json.RawMessage `json:"summary,omitempty"`
}

// SweepsResponse is the body of GET /v1/sweeps.
type SweepsResponse struct {
	Sweeps []SweepView `json:"sweeps"`
}

// submitSweep registers a planned sweep and adopts its cells: each cell is
// served from the result cache, coalesced onto an identical in-flight run,
// or enqueued as an ordinary FIFO job — the same admission path single
// submissions take, so scheduling, budget, coalescing and durability
// behave identically for grid work.
func (s *Service) submitSweep(req SweepRequest, cells []plannedCell, client string) (SweepView, error) {
	reqDoc, err := json.Marshal(req)
	if err != nil {
		return SweepView{}, fmt.Errorf("encode sweep request: %w", err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return SweepView{}, errShutdown
	}
	now := s.clock()
	// Count the cells that need new work: cached and coalesced cells are
	// served regardless of backend readiness, queue capacity or rate limits,
	// exactly as cache-hit single submissions are.
	need := 0
	seen := make(map[string]bool, len(cells))
	for _, pc := range cells {
		if seen[pc.key] {
			continue
		}
		seen[pc.key] = true
		if _, ok := s.lookupCacheLocked(pc.key); ok {
			continue
		}
		if _, ok := s.inflight[pc.key]; ok {
			continue
		}
		need++
	}
	if need > 0 {
		if rc, ok := s.backend.(readyChecker); ok {
			if err := rc.Ready(); err != nil {
				return SweepView{}, err
			}
		}
		if len(s.queue)+need > s.queueLimit {
			return SweepView{}, errQueueFull
		}
		if err := s.allowLocked(client, now); err != nil {
			return SweepView{}, err
		}
	}
	s.nextSweepID++
	s.submitSeq++
	sw := &sweep{
		id:            fmt.Sprintf("s%08d", s.nextSweepID),
		name:          req.Sweep.Name,
		seq:           s.submitSeq,
		state:         StateRunning,
		request:       reqDoc,
		defaultStream: s.defaultStream,
		reps:          req.Reps,
		total:         len(cells),
		compile:       engine.NewCompileSet(),
		submitted:     now,
	}
	if err := s.journalSweepSubmitLocked(sw); err != nil {
		s.nextSweepID--
		s.submitSeq--
		return SweepView{}, fmt.Errorf("journal sweep submission: %w", err)
	}
	s.sweeps[sw.id] = sw
	s.sweepOrder = append(s.sweepOrder, sw.id)
	s.sweepsSubmitted++
	for i, pc := range cells {
		s.adoptCellLocked(sw, i, pc, now, false)
	}
	if sw.total == 0 {
		s.finalizeSweepLocked(sw)
	}
	return s.sweepViewLocked(sw, false), nil
}

// adoptCellLocked registers one planned cell as a job owned by the sweep and
// routes it through the standard admission ladder: cache hit, coalesce, or
// enqueue. Recovery re-adoption skips the hit/miss counters so restart does
// not inflate client-facing cache statistics. Callers hold the mutex.
func (s *Service) adoptCellLocked(sw *sweep, idx int, pc plannedCell, now time.Time, recovered bool) {
	j := &job{
		id:        fmt.Sprintf("%s.c%03d", sw.id, idx),
		scenario:  pc.sc,
		canonical: pc.canonical,
		key:       pc.key,
		reps:      sw.reps,
		seed:      pc.seed,
		submitted: now,
		sweep:     sw,
		cellLabel: pc.label,
		compile:   sw.compile,
	}
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
	sw.cells = append(sw.cells, j)
	s.startTraceLocked(j, now)
	if summary, ok := s.lookupCacheLocked(pc.key); ok {
		if !recovered {
			s.hits++
		}
		j.state = StateDone
		j.cacheHit = true
		j.started, j.finished = now, now
		j.summary = summary
		j.trace.Add(obs.Span{Name: "cache-hit", Start: now, End: now})
		s.markTerminalLocked(j)
		return
	}
	if leader, ok := s.inflight[pc.key]; ok {
		if !recovered {
			s.coalesced++
		}
		j.state = StateQueued
		j.leader = leader
		leader.followers = append(leader.followers, j)
		j.trace.Add(obs.Span{Name: "coalesced", Detail: "leader=" + leader.id, Start: now, End: now})
		return
	}
	if !recovered {
		s.misses++
	} else {
		s.recoveredKeys = append(s.recoveredKeys, pc.key)
	}
	j.state = StateQueued
	s.queue = append(s.queue, j)
	s.inflight[pc.key] = j
	s.cond.Signal()
}

// noteCellSettledLocked records one cell's terminal transition on its sweep:
// the cell event is appended, subscribers are woken, and the sweep finalizes
// once every cell has settled. Callers hold the mutex.
func (s *Service) noteCellSettledLocked(j *job) {
	sw := j.sweep
	if sw == nil {
		return
	}
	sw.settled++
	if j.cacheHit {
		sw.cacheHits++
	}
	j.compile = nil
	ev := sweepCellEvent{
		Sweep:    sw.id,
		Cell:     j.cellLabel,
		Run:      j.id,
		State:    j.state,
		Settled:  sw.settled,
		Total:    sw.total,
		CacheHit: j.cacheHit,
		Error:    j.errMsg,
		Summary:  j.summary,
	}
	s.appendSweepEventLocked(sw, "cell", ev)
	if sw.settled == sw.total {
		s.finalizeSweepLocked(sw)
	}
}

// finalizeSweepLocked settles a sweep whose cells have all reached terminal
// states: failed beats cancelled beats done, mirroring how a client would
// read the aggregate table. Callers hold the mutex.
func (s *Service) finalizeSweepLocked(sw *sweep) {
	state := StateDone
	for _, c := range sw.cells {
		switch c.state {
		case StateFailed:
			state = StateFailed
		case StateCancelled:
			if state != StateFailed {
				state = StateCancelled
			}
		}
	}
	sw.state = state
	sw.finished = s.clock()
	if sw.compile != nil {
		sw.networks = sw.compile.Networks()
		sw.compile = nil
	}
	s.sweepTerminal++
	if !(state == StateCancelled && s.closed) {
		// Shutdown cancellations are not settlements — the same contract
		// single runs honor — so a stopped daemon resumes the sweep's
		// unfinished cells on restart.
		s.journalSweepSettleLocked(sw)
	}
	s.appendSweepEventLocked(sw, "sweep", s.sweepViewLocked(sw, false))
	s.pruneSweepsLocked()
}

// appendSweepEventLocked renders one SSE event onto the sweep's log and
// wakes every subscriber. Callers hold the mutex.
func (s *Service) appendSweepEventLocked(sw *sweep, name string, v any) {
	data, err := json.Marshal(v)
	if err != nil {
		s.log.Error("service: encode sweep event failed", "sweep", sw.id, "event", name, "err", err)
		return
	}
	sw.events = append(sw.events, sweepEvent{id: len(sw.events) + 1, name: name, data: data})
	for ch := range sw.subs {
		select {
		case ch <- struct{}{}:
		default:
		}
	}
}

// sweepViewLocked renders a sweep for the API; the cell table is included
// only for the detail endpoint. Callers hold the mutex.
func (s *Service) sweepViewLocked(sw *sweep, withCells bool) SweepView {
	v := SweepView{
		ID:             sw.id,
		Name:           sw.name,
		State:          sw.state,
		Reps:           sw.reps,
		Total:          sw.total,
		Settled:        sw.settled,
		CacheHits:      sw.cacheHits,
		SharedNetworks: sw.networks,
		SubmittedAt:    rfc3339(sw.submitted),
		FinishedAt:     rfc3339(sw.finished),
	}
	if sw.compile != nil {
		v.SharedNetworks = sw.compile.Networks()
	}
	if !withCells {
		return v
	}
	v.Cells = make([]SweepCellView, 0, len(sw.cells))
	for _, c := range sw.cells {
		cv := SweepCellView{
			Cell:     c.cellLabel,
			Run:      c.id,
			State:    c.state,
			Key:      c.key,
			Seed:     c.seed,
			CacheHit: c.cacheHit,
			Trace:    c.trace.ID(),
			Error:    c.errMsg,
			Summary:  c.summary,
		}
		if !c.started.IsZero() {
			cv.QueueMS = float64(c.started.Sub(c.submitted)) / float64(time.Millisecond)
			if !c.finished.IsZero() {
				cv.RunMS = float64(c.finished.Sub(c.started)) / float64(time.Millisecond)
			}
		}
		v.Cells = append(v.Cells, cv)
	}
	return v
}

// sweepView fetches one sweep's detail view (with the cell table).
func (s *Service) sweepView(id string) (SweepView, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sw, ok := s.sweeps[id]
	if !ok {
		return SweepView{}, false
	}
	return s.sweepViewLocked(sw, true), true
}

// sweepViews lists every sweep in submission order, without cell tables.
func (s *Service) sweepViews() []SweepView {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]SweepView, 0, len(s.sweepOrder))
	for _, id := range s.sweepOrder {
		out = append(out, s.sweepViewLocked(s.sweeps[id], false))
	}
	return out
}

// cancelSweep cancels every non-terminal cell of a sweep; the sweep
// finalizes (as cancelled, unless a cell already failed) once running cells
// reach their next repetition boundary.
func (s *Service) cancelSweep(id string) (SweepView, error) {
	s.mu.Lock()
	sw, ok := s.sweeps[id]
	if !ok {
		s.mu.Unlock()
		return SweepView{}, errUnknownSweep
	}
	if sw.state.Terminal() {
		v := s.sweepViewLocked(sw, false)
		s.mu.Unlock()
		return v, errAlreadyTerminal
	}
	var ids []string
	for _, c := range sw.cells {
		if !c.state.Terminal() {
			ids = append(ids, c.id)
		}
	}
	s.mu.Unlock()
	for _, cid := range ids {
		// A cell settling concurrently surfaces as errAlreadyTerminal here;
		// that is a success for the sweep-wide cancel, not a failure.
		s.cancelJob(cid)
	}
	s.mu.Lock()
	v := s.sweepViewLocked(sw, false)
	s.mu.Unlock()
	return v, nil
}

// sweepEventsAfter snapshots the sweep's event log past the cursor, plus
// whether the stream is finished (sweep terminal or service closed). The
// returned slice aliases the append-only log, which is never mutated in
// place, so reading it without the lock is safe.
func (s *Service) sweepEventsAfter(id string, cursor int) (events []sweepEvent, finished, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sw, exists := s.sweeps[id]
	if !exists {
		return nil, false, false
	}
	if cursor < len(sw.events) {
		events = sw.events[cursor:]
	}
	return events, sw.state.Terminal() || s.closed, true
}

// subscribeSweep registers a wake channel on the sweep's event log.
func (s *Service) subscribeSweep(id string) (chan struct{}, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sw, ok := s.sweeps[id]
	if !ok {
		return nil, false
	}
	if sw.subs == nil {
		sw.subs = make(map[chan struct{}]struct{})
	}
	ch := make(chan struct{}, 1)
	sw.subs[ch] = struct{}{}
	return ch, true
}

// unsubscribeSweep removes a wake channel.
func (s *Service) unsubscribeSweep(id string, ch chan struct{}) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if sw, ok := s.sweeps[id]; ok {
		delete(sw.subs, ch)
	}
}

// pruneSweepsLocked forgets the oldest terminal sweeps — and their cell
// records — beyond the sweep history bound, keeping a long-lived daemon's
// memory proportional to configured history, not lifetime grids. Callers
// hold the mutex.
func (s *Service) pruneSweepsLocked() {
	limit := s.historyLimit / 8
	if limit < 16 {
		limit = 16
	}
	if s.sweepTerminal <= limit+limit/8 {
		return
	}
	excess := s.sweepTerminal - limit
	dead := make(map[string]bool)
	keepSweeps := s.sweepOrder[:0]
	for _, id := range s.sweepOrder {
		sw := s.sweeps[id]
		if excess > 0 && sw.state.Terminal() {
			// A terminal sweep's cells are all terminal (finalization requires
			// it), so dropping them cannot orphan queue or in-flight state.
			for _, c := range sw.cells {
				dead[c.id] = true
				delete(s.jobs, c.id)
			}
			delete(s.sweeps, id)
			s.sweepTerminal--
			excess--
			continue
		}
		keepSweeps = append(keepSweeps, id)
	}
	s.sweepOrder = keepSweeps
	if len(dead) == 0 {
		return
	}
	keep := s.order[:0]
	for _, id := range s.order {
		if !dead[id] {
			keep = append(keep, id)
		}
	}
	s.order = keep
}

// SweepStats are the sweep-subsystem counters of GET /metrics.
type SweepStats struct {
	// Submitted counts sweeps accepted over the daemon's lifetime.
	Submitted int64 `json:"submitted"`
	// Active counts sweeps with unsettled cells.
	Active int `json:"active"`
	// Done, Failed and Cancelled count retained terminal sweeps.
	Done      int `json:"done"`
	Failed    int `json:"failed"`
	Cancelled int `json:"cancelled"`
	// Recovered counts sweeps re-adopted from the run ledger at startup.
	Recovered int64 `json:"recovered"`
}

// parseSweepSeq extracts the numeric suffix of a sweep ID for nextSweepID
// bookkeeping during recovery.
func parseSweepSeq(id string) (int, bool) {
	n, err := strconv.Atoi(strings.TrimPrefix(id, "s"))
	if err != nil || n < 0 {
		return 0, false
	}
	return n, true
}

// errUnknownSweep is the sweep analogue of errUnknownJob.
var errUnknownSweep = errors.New("no such sweep")
