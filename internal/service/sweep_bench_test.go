package service

import (
	"fmt"
	"testing"
	"time"

	"dynamicrumor/internal/engine"
)

// The sweep-vs-separate anchor pair (tracked in BENCH_*.json, see the
// Makefile's bench-json target): the same deterministic 24-cell grid —
// clique n ∈ {1024, 2048} × 12 seeds, async, 1 rep per cell — executed once
// as a native sweep and once as 24 separate submissions against the same
// service. The native path plans the grid in one request and compiles every
// cell through one engine.CompileSet, so the n=1024 and n=2048 cliques are
// built once each and read concurrently by all 24 cells; the separate path
// parses, canonicalizes, admits, and compiles each submission on its own,
// rebuilding each clique 12 times. Both paths produce byte-identical
// per-cell summaries (pinned by TestSweepCellsByteIdenticalToStandaloneRuns);
// the pair measures only the amortization.

// benchSweepCells is the anchor grid size; the names below encode it so a
// drive-by edit of the grid cannot silently change what the anchor measures.
const benchSweepCells = 24

func benchSweepRequest() SweepRequest {
	seeds := make([]uint64, 12)
	for i := range seeds {
		seeds[i] = uint64(i + 1)
	}
	return SweepRequest{
		Sweep: SweepSpec{Family: "clique", N: []int{1024, 2048}, Seeds: seeds},
		Reps:  1,
	}
}

func newBenchService(b *testing.B) *Service {
	b.Helper()
	svc, err := New(Config{Budget: 2})
	if err != nil {
		b.Fatal(err)
	}
	return svc
}

func waitSweepTerminal(b *testing.B, svc *Service, id string) {
	b.Helper()
	for {
		svc.mu.Lock()
		sw := svc.sweeps[id]
		var state JobState
		if sw != nil {
			state = sw.state
		}
		svc.mu.Unlock()
		if sw == nil {
			b.Fatalf("sweep %s disappeared", id)
		}
		if state.Terminal() {
			if state != StateDone {
				b.Fatalf("sweep %s settled %s", id, state)
			}
			return
		}
		time.Sleep(200 * time.Microsecond)
	}
}

func waitJobsTerminal(b *testing.B, svc *Service, ids []string) {
	b.Helper()
	for {
		svc.mu.Lock()
		pending := false
		for _, id := range ids {
			j := svc.jobs[id]
			if j == nil {
				svc.mu.Unlock()
				b.Fatalf("job %s disappeared", id)
			}
			if !j.state.Terminal() {
				pending = true
				break
			}
			if j.state != StateDone {
				st := j.state
				svc.mu.Unlock()
				b.Fatalf("job %s settled %s", id, st)
			}
		}
		svc.mu.Unlock()
		if !pending {
			return
		}
		time.Sleep(200 * time.Microsecond)
	}
}

// BenchmarkSweepNative24Cells: one POST /v1/sweeps worth of work — plan the
// grid, admit it, share compiled networks across cells, run to completion.
func BenchmarkSweepNative24Cells(b *testing.B) {
	req := benchSweepRequest()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		svc := newBenchService(b)
		cells, err := planSweep(req, svc.defaultStream)
		if err != nil {
			b.Fatal(err)
		}
		if len(cells) != benchSweepCells {
			b.Fatalf("planned %d cells, want %d", len(cells), benchSweepCells)
		}
		view, err := svc.submitSweep(req, cells, "")
		if err != nil {
			b.Fatal(err)
		}
		waitSweepTerminal(b, svc, view.ID)
		svc.Close()
	}
}

// BenchmarkSweepSeparate24Cells: the same grid as 24 independent POST
// /v1/runs submissions — per-cell parse, canonicalization, admission, and
// network construction, exactly what a client looping over the grid incurs.
func BenchmarkSweepSeparate24Cells(b *testing.B) {
	req := benchSweepRequest()
	docs := make([][]byte, 0, benchSweepCells)
	seeds := make([]uint64, 0, benchSweepCells)
	for _, n := range req.Sweep.N {
		for _, seed := range req.Sweep.Seeds {
			docs = append(docs, []byte(fmt.Sprintf(
				`{"network":{"family":"clique","params":{"n":%d}}}`, n)))
			seeds = append(seeds, seed)
		}
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		svc := newBenchService(b)
		ids := make([]string, 0, len(docs))
		for k, doc := range docs {
			sc, err := engine.Parse(doc)
			if err != nil {
				b.Fatal(err)
			}
			canonical, err := engine.Canonical(sc)
			if err != nil {
				b.Fatal(err)
			}
			view, err := svc.submit(sc, canonical, req.Reps, seeds[k], "")
			if err != nil {
				b.Fatal(err)
			}
			ids = append(ids, view.ID)
		}
		waitJobsTerminal(b, svc, ids)
		svc.Close()
	}
}
