package service

import (
	"encoding/json"
	"fmt"
	"strconv"
	"strings"
	"time"

	"dynamicrumor/internal/engine"
	"dynamicrumor/internal/store"
)

// The service's durable run ledger (enabled by Config.StateDir): every
// accepted leader job is journalled at submission, and again when it reaches
// a client-visible terminal state. On restart, submissions without a
// settlement are re-adopted — re-created under their original IDs and
// re-enqueued in their original order — so a SIGKILL'd daemon resumes its
// in-flight work and clients polling GET /v1/runs/{id} pick up where they
// left off. Shutdown cancellations are deliberately NOT journalled as
// settlements: a graceful stop and a crash leave the same ledger, and both
// resume identically.
//
// Followers and cache hits are never journalled — a follower's result is
// its leader's, and a cache hit's result is already durable in the disk
// cache — so the ledger holds exactly the runs that own work.

// Journal record types of the service ledger.
const (
	recSubmit byte = 1 // a leader job was accepted
	recSettle byte = 2 // that job reached a client-visible terminal state
)

// journalCompactBytes is the ledger size that triggers snapshot compaction.
const journalCompactBytes = 1 << 20

// submitRecord is the recSubmit payload.
type submitRecord struct {
	ID          string          `json:"id"`
	Canonical   json.RawMessage `json:"canonical"`
	Reps        int             `json:"reps"`
	Seed        uint64          `json:"seed"`
	SubmittedAt time.Time       `json:"submitted_at"`
}

// settleRecord is the recSettle payload.
type settleRecord struct {
	ID string `json:"id"`
}

// openLedger opens the service journal under dir, replays it into the
// not-yet-settled submission list, and re-adopts those jobs. Called from
// New before the dispatcher starts; no locking needed.
func (s *Service) openLedger(path string) error {
	var order []string
	pending := make(map[string]submitRecord)
	j, err := store.OpenJournal(path, func(rec store.Record) error {
		switch rec.Type {
		case recSubmit:
			var sr submitRecord
			if err := json.Unmarshal(rec.Payload, &sr); err != nil {
				return fmt.Errorf("submit record: %w", err)
			}
			if _, ok := pending[sr.ID]; !ok {
				order = append(order, sr.ID)
			}
			pending[sr.ID] = sr
		case recSettle:
			var st settleRecord
			if err := json.Unmarshal(rec.Payload, &st); err != nil {
				return fmt.Errorf("settle record: %w", err)
			}
			delete(pending, st.ID)
		}
		// Unknown record types are skipped: an older binary replaying a newer
		// ledger recovers what it understands.
		return nil
	})
	if err != nil {
		return err
	}
	s.journal = j
	for _, id := range order {
		sr, ok := pending[id]
		if !ok {
			continue
		}
		s.recoverJob(sr)
	}
	// Compact at startup: settled pairs and any skipped records are dropped,
	// leaving one submit record per live job.
	return s.compactLedgerLocked()
}

// recoverJob re-adopts one journalled, unsettled submission: served from
// the (disk) cache if its result is already durable, coalesced onto an
// identical recovered run, or re-enqueued under its original ID.
func (s *Service) recoverJob(sr submitRecord) {
	sc, err := engine.Parse(sr.Canonical)
	if err != nil {
		// The ledger outlived a scenario schema change; dropping the job is
		// the only option that lets the daemon start.
		s.logf("service: recovery: job %s scenario no longer parses, dropping: %v", sr.ID, err)
		return
	}
	key := runKey(sr.Canonical, sr.Seed, sr.Reps)
	now := s.clock()
	j := &job{
		id:        sr.ID,
		scenario:  sc,
		canonical: sr.Canonical,
		key:       key,
		reps:      sr.Reps,
		seed:      sr.Seed,
		submitted: sr.SubmittedAt,
		journaled: true,
	}
	if j.submitted.IsZero() {
		j.submitted = now
	}
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
	if n, err := strconv.Atoi(strings.TrimPrefix(sr.ID, "j")); err == nil && n > s.nextID {
		s.nextID = n
	}
	s.jobsRecovered++

	if summary, ok := s.lookupCacheLocked(key); ok {
		// The run completed and its summary was durably cached before the
		// crash; only the settle record was lost. Settle it now, identically.
		j.state = StateDone
		j.cacheHit = true
		j.started, j.finished = now, now
		j.summary = summary
		s.terminal++
		s.logf("service: recovery: job %s settled from the durable cache", j.id)
		return
	}
	if leader, ok := s.inflight[key]; ok {
		j.state = StateQueued
		j.leader = leader
		leader.followers = append(leader.followers, j)
		s.logf("service: recovery: job %s coalesced onto recovered run %s", j.id, leader.id)
		return
	}
	j.state = StateQueued
	s.queue = append(s.queue, j)
	s.inflight[key] = j
	s.recoveredKeys = append(s.recoveredKeys, key)
	s.logf("service: recovery: job %s re-enqueued (%d reps, seed %d)", j.id, j.reps, j.seed)
}

// RecoveredKeys lists the run keys of jobs re-adopted into the queue at
// startup. A distributed backend prunes its own recovered run state against
// this set — a key the service no longer owns will never be re-submitted.
func (s *Service) RecoveredKeys() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]string(nil), s.recoveredKeys...)
}

// journalSubmitLocked durably records an accepted leader job. An append
// failure is surfaced to the submitter — acknowledging a run the ledger
// cannot replay would break the durability contract. Callers hold the mutex.
func (s *Service) journalSubmitLocked(j *job) error {
	if s.journal == nil {
		return nil
	}
	payload, err := json.Marshal(submitRecord{
		ID: j.id, Canonical: j.canonical, Reps: j.reps, Seed: j.seed, SubmittedAt: j.submitted,
	})
	if err != nil {
		return err
	}
	if err := s.journal.Append(store.Record{Type: recSubmit, Payload: payload}); err != nil {
		return err
	}
	j.journaled = true
	return nil
}

// journalSettleLocked records a client-visible terminal transition of a
// journalled job, then compacts the ledger if it has grown past the
// threshold. Settle-record loss is harmless — the run would be re-adopted
// and served from the durable cache — so failures are logged, not fatal.
// Callers hold the mutex.
func (s *Service) journalSettleLocked(j *job) {
	if s.journal == nil || !j.journaled {
		return
	}
	payload, err := json.Marshal(settleRecord{ID: j.id})
	if err == nil {
		err = s.journal.Append(store.Record{Type: recSettle, Payload: payload})
	}
	if err != nil {
		s.logf("service: journal settle of %s: %v", j.id, err)
		return
	}
	if s.journal.Size() > journalCompactBytes {
		if err := s.compactLedgerLocked(); err != nil {
			s.logf("service: journal compaction: %v", err)
		}
	}
}

// compactLedgerLocked rewrites the journal to one submit record per live
// journalled job — the snapshot that keeps the ledger's size proportional
// to in-flight work, not lifetime submissions. Callers hold the mutex (or
// are in single-threaded startup).
func (s *Service) compactLedgerLocked() error {
	if s.journal == nil {
		return nil
	}
	var records []store.Record
	for _, id := range s.order {
		j := s.jobs[id]
		if !j.journaled || j.state.Terminal() {
			continue
		}
		payload, err := json.Marshal(submitRecord{
			ID: j.id, Canonical: j.canonical, Reps: j.reps, Seed: j.seed, SubmittedAt: j.submitted,
		})
		if err != nil {
			return err
		}
		records = append(records, store.Record{Type: recSubmit, Payload: payload})
	}
	if err := s.journal.Rewrite(records); err != nil {
		return err
	}
	s.compactions++
	return nil
}
