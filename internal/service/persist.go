package service

import (
	"encoding/json"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"dynamicrumor/internal/engine"
	"dynamicrumor/internal/obs"
	"dynamicrumor/internal/store"
)

// The service's durable run ledger (enabled by Config.StateDir): every
// accepted leader job is journalled at submission, and again when it reaches
// a client-visible terminal state. On restart, submissions without a
// settlement are re-adopted — re-created under their original IDs and
// re-enqueued in their original order — so a SIGKILL'd daemon resumes its
// in-flight work and clients polling GET /v1/runs/{id} pick up where they
// left off. Shutdown cancellations are deliberately NOT journalled as
// settlements: a graceful stop and a crash leave the same ledger, and both
// resume identically.
//
// Followers and cache hits are never journalled — a follower's result is
// its leader's, and a cache hit's result is already durable in the disk
// cache — so the ledger holds exactly the runs that own work.

// Journal record types of the service ledger.
const (
	recSubmit      byte = 1 // a leader job was accepted
	recSettle      byte = 2 // a job or sweep reached a terminal state
	recSweepSubmit byte = 3 // a sweep was accepted (cells are re-planned)
)

// journalCompactBytes is the ledger size that triggers snapshot compaction.
const journalCompactBytes = 1 << 20

// submitRecord is the recSubmit payload.
type submitRecord struct {
	ID          string          `json:"id"`
	Canonical   json.RawMessage `json:"canonical"`
	Reps        int             `json:"reps"`
	Seed        uint64          `json:"seed"`
	SubmittedAt time.Time       `json:"submitted_at"`
}

// settleRecord is the recSettle payload. Job and sweep IDs share the record
// type — their prefixes ("j", "s") keep the namespaces disjoint.
type settleRecord struct {
	ID string `json:"id"`
}

// sweepRecord is the recSweepSubmit payload. The cells are not journalled —
// planning is pure and deterministic, so recovery re-plans the recorded
// request (with the default stream captured at submission time, in case the
// daemon restarted with a different -stream-default) and re-adopts every
// cell under its original identity and cache key.
type sweepRecord struct {
	ID            string          `json:"id"`
	Request       json.RawMessage `json:"request"`
	DefaultStream int             `json:"default_stream,omitempty"`
	SubmittedAt   time.Time       `json:"submitted_at"`
}

// openLedger opens the service journal under dir, replays it into the
// not-yet-settled submission list, and re-adopts those jobs. Called from
// New before the dispatcher starts; no locking needed.
func (s *Service) openLedger(path string) error {
	// pendingEntry holds either kind of unsettled submission; replay order
	// across jobs and sweeps is preserved so re-adoption re-creates the
	// original FIFO queue.
	type pendingEntry struct {
		job   *submitRecord
		sweep *sweepRecord
	}
	var order []string
	pending := make(map[string]pendingEntry)
	j, err := store.OpenJournal(path, func(rec store.Record) error {
		switch rec.Type {
		case recSubmit:
			var sr submitRecord
			if err := json.Unmarshal(rec.Payload, &sr); err != nil {
				return fmt.Errorf("submit record: %w", err)
			}
			if _, ok := pending[sr.ID]; !ok {
				order = append(order, sr.ID)
			}
			pending[sr.ID] = pendingEntry{job: &sr}
		case recSweepSubmit:
			var sr sweepRecord
			if err := json.Unmarshal(rec.Payload, &sr); err != nil {
				return fmt.Errorf("sweep record: %w", err)
			}
			if _, ok := pending[sr.ID]; !ok {
				order = append(order, sr.ID)
			}
			pending[sr.ID] = pendingEntry{sweep: &sr}
		case recSettle:
			var st settleRecord
			if err := json.Unmarshal(rec.Payload, &st); err != nil {
				return fmt.Errorf("settle record: %w", err)
			}
			delete(pending, st.ID)
		}
		// Unknown record types are skipped: an older binary replaying a newer
		// ledger recovers what it understands.
		return nil
	})
	if err != nil {
		return err
	}
	s.journal = j
	for _, id := range order {
		entry, ok := pending[id]
		switch {
		case !ok:
		case entry.job != nil:
			s.recoverJob(*entry.job)
		case entry.sweep != nil:
			s.recoverSweep(*entry.sweep)
		}
	}
	// Compact at startup: settled pairs and any skipped records are dropped,
	// leaving one submit record per live job or sweep.
	return s.compactLedgerLocked()
}

// recoverSweep re-adopts one journalled, unsettled sweep: the recorded
// request is re-planned (planning is deterministic, so the cells carry
// their original IDs, labels and cache keys) and every cell runs the
// standard re-adoption ladder — settled from the durable cache when its
// result survived the crash, coalesced onto an identical recovered run, or
// re-enqueued. Cells that all settle from the cache finalize the sweep
// immediately, exactly as a live sweep would.
func (s *Service) recoverSweep(sr sweepRecord) {
	var req SweepRequest
	if err := json.Unmarshal(sr.Request, &req); err != nil {
		s.log.Warn("service: recovery: sweep request no longer decodes, dropping", "sweep", sr.ID, "err", err)
		return
	}
	cells, err := planSweep(req, sr.DefaultStream)
	if err != nil {
		// The ledger outlived a planner or scenario schema change; dropping
		// the sweep is the only option that lets the daemon start.
		s.log.Warn("service: recovery: sweep no longer plans, dropping", "sweep", sr.ID, "err", err)
		return
	}
	now := s.clock()
	s.submitSeq++
	sw := &sweep{
		id:            sr.ID,
		name:          req.Sweep.Name,
		seq:           s.submitSeq,
		state:         StateRunning,
		request:       sr.Request,
		defaultStream: sr.DefaultStream,
		reps:          req.Reps,
		total:         len(cells),
		compile:       engine.NewCompileSet(),
		journaled:     true,
		submitted:     sr.SubmittedAt,
	}
	if sw.submitted.IsZero() {
		sw.submitted = now
	}
	s.sweeps[sw.id] = sw
	s.sweepOrder = append(s.sweepOrder, sw.id)
	if n, ok := parseSweepSeq(sr.ID); ok && n > s.nextSweepID {
		s.nextSweepID = n
	}
	s.sweepsRecovered++
	for i, pc := range cells {
		s.adoptCellLocked(sw, i, pc, now, true)
	}
	if sw.total == 0 {
		s.finalizeSweepLocked(sw)
	}
	s.log.Info("service: recovery: sweep re-adopted", "sweep", sw.id, "cells", sw.total, "settled", sw.settled)
}

// recoverJob re-adopts one journalled, unsettled submission: served from
// the (disk) cache if its result is already durable, coalesced onto an
// identical recovered run, or re-enqueued under its original ID.
func (s *Service) recoverJob(sr submitRecord) {
	sc, err := engine.Parse(sr.Canonical)
	if err != nil {
		// The ledger outlived a scenario schema change; dropping the job is
		// the only option that lets the daemon start.
		s.log.Warn("service: recovery: job scenario no longer parses, dropping", "job", sr.ID, "err", err)
		return
	}
	key := runKey(sr.Canonical, sr.Seed, sr.Reps)
	now := s.clock()
	s.submitSeq++
	j := &job{
		id:        sr.ID,
		scenario:  sc,
		canonical: sr.Canonical,
		key:       key,
		reps:      sr.Reps,
		seed:      sr.Seed,
		seq:       s.submitSeq,
		submitted: sr.SubmittedAt,
		journaled: true,
	}
	if j.submitted.IsZero() {
		j.submitted = now
	}
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
	s.startTraceLocked(j, j.submitted)
	j.trace.Add(obs.Span{Name: "recovered", Start: now, End: now})
	if n, err := strconv.Atoi(strings.TrimPrefix(sr.ID, "j")); err == nil && n > s.nextID {
		s.nextID = n
	}
	s.jobsRecovered++

	if summary, ok := s.lookupCacheLocked(key); ok {
		// The run completed and its summary was durably cached before the
		// crash; only the settle record was lost. Settle it now, identically.
		j.state = StateDone
		j.cacheHit = true
		j.started, j.finished = now, now
		j.summary = summary
		j.trace.Add(obs.Span{Name: "cache-hit", Start: now, End: now})
		s.terminal++
		s.log.Info("service: recovery: job settled from the durable cache", "job", j.id)
		return
	}
	if leader, ok := s.inflight[key]; ok {
		j.state = StateQueued
		j.leader = leader
		leader.followers = append(leader.followers, j)
		j.trace.Add(obs.Span{Name: "coalesced", Detail: "leader=" + leader.id, Start: now, End: now})
		s.log.Info("service: recovery: job coalesced onto recovered run", "job", j.id, "leader", leader.id)
		return
	}
	j.state = StateQueued
	s.queue = append(s.queue, j)
	s.inflight[key] = j
	s.recoveredKeys = append(s.recoveredKeys, key)
	s.log.Info("service: recovery: job re-enqueued", "job", j.id, "reps", j.reps, "seed", j.seed)
}

// RecoveredKeys lists the run keys of jobs re-adopted into the queue at
// startup. A distributed backend prunes its own recovered run state against
// this set — a key the service no longer owns will never be re-submitted.
func (s *Service) RecoveredKeys() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]string(nil), s.recoveredKeys...)
}

// journalSubmitLocked durably records an accepted leader job. An append
// failure is surfaced to the submitter — acknowledging a run the ledger
// cannot replay would break the durability contract. Callers hold the mutex.
func (s *Service) journalSubmitLocked(j *job) error {
	if s.journal == nil {
		return nil
	}
	payload, err := json.Marshal(submitRecord{
		ID: j.id, Canonical: j.canonical, Reps: j.reps, Seed: j.seed, SubmittedAt: j.submitted,
	})
	if err != nil {
		return err
	}
	if err := s.journal.Append(store.Record{Type: recSubmit, Payload: payload}); err != nil {
		return err
	}
	j.journaled = true
	return nil
}

// journalSettleLocked records a client-visible terminal transition of a
// journalled job, then compacts the ledger if it has grown past the
// threshold. Settle-record loss is harmless — the run would be re-adopted
// and served from the durable cache — so failures are logged, not fatal.
// Callers hold the mutex.
func (s *Service) journalSettleLocked(j *job) {
	if s.journal == nil || !j.journaled {
		return
	}
	payload, err := json.Marshal(settleRecord{ID: j.id})
	if err == nil {
		err = s.journal.Append(store.Record{Type: recSettle, Payload: payload})
	}
	if err != nil {
		s.log.Warn("service: journal settle failed", "job", j.id, "err", err)
		return
	}
	if s.journal.Size() > journalCompactBytes {
		if err := s.compactLedgerLocked(); err != nil {
			s.log.Warn("service: journal compaction failed", "err", err)
		}
	}
}

// journalSweepSubmitLocked durably records an accepted sweep. One fsync'd
// record covers the whole grid — cells are re-planned at recovery — so sweep
// admission pays a single journal append no matter how many cells it plans.
// Callers hold the mutex.
func (s *Service) journalSweepSubmitLocked(sw *sweep) error {
	if s.journal == nil {
		return nil
	}
	payload, err := json.Marshal(sweepRecord{
		ID: sw.id, Request: sw.request, DefaultStream: sw.defaultStream, SubmittedAt: sw.submitted,
	})
	if err != nil {
		return err
	}
	if err := s.journal.Append(store.Record{Type: recSweepSubmit, Payload: payload}); err != nil {
		return err
	}
	sw.journaled = true
	return nil
}

// journalSweepSettleLocked records a sweep's terminal transition. Like job
// settles, loss is harmless — the sweep would be re-adopted and its cells
// settled from the durable cache — so failures are logged, not fatal.
// Callers hold the mutex.
func (s *Service) journalSweepSettleLocked(sw *sweep) {
	if s.journal == nil || !sw.journaled {
		return
	}
	payload, err := json.Marshal(settleRecord{ID: sw.id})
	if err == nil {
		err = s.journal.Append(store.Record{Type: recSettle, Payload: payload})
	}
	if err != nil {
		s.log.Warn("service: journal settle failed", "sweep", sw.id, "err", err)
		return
	}
	if s.journal.Size() > journalCompactBytes {
		if err := s.compactLedgerLocked(); err != nil {
			s.log.Warn("service: journal compaction failed", "err", err)
		}
	}
}

// compactLedgerLocked rewrites the journal to one submit record per live
// journalled job or sweep — the snapshot that keeps the ledger's size
// proportional to in-flight work, not lifetime submissions. Records are
// written in submission-sequence order so a replay re-creates the original
// FIFO queue. Callers hold the mutex (or are in single-threaded startup).
func (s *Service) compactLedgerLocked() error {
	if s.journal == nil {
		return nil
	}
	type liveRecord struct {
		seq int
		rec store.Record
	}
	var live []liveRecord
	for _, id := range s.order {
		j := s.jobs[id]
		if !j.journaled || j.state.Terminal() {
			continue
		}
		payload, err := json.Marshal(submitRecord{
			ID: j.id, Canonical: j.canonical, Reps: j.reps, Seed: j.seed, SubmittedAt: j.submitted,
		})
		if err != nil {
			return err
		}
		live = append(live, liveRecord{seq: j.seq, rec: store.Record{Type: recSubmit, Payload: payload}})
	}
	for _, id := range s.sweepOrder {
		sw := s.sweeps[id]
		if !sw.journaled || sw.state.Terminal() {
			continue
		}
		payload, err := json.Marshal(sweepRecord{
			ID: sw.id, Request: sw.request, DefaultStream: sw.defaultStream, SubmittedAt: sw.submitted,
		})
		if err != nil {
			return err
		}
		live = append(live, liveRecord{seq: sw.seq, rec: store.Record{Type: recSweepSubmit, Payload: payload}})
	}
	sort.Slice(live, func(i, k int) bool { return live[i].seq < live[k].seq })
	records := make([]store.Record, 0, len(live))
	for _, lr := range live {
		records = append(records, lr.rec)
	}
	if err := s.journal.Rewrite(records); err != nil {
		return err
	}
	s.compactions++
	return nil
}
