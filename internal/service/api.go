package service

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"

	"dynamicrumor/internal/engine"
)

// maxBodyBytes bounds a submission body; scenarios are small declarative
// documents, so 1 MiB is generous.
const maxBodyBytes = 1 << 20

// SubmitRequest is the body of POST /v1/runs.
type SubmitRequest struct {
	// Scenario is a declarative engine scenario (strict: unknown fields are
	// rejected). Trace recording is stripped — the service reports summary
	// statistics, never per-repetition traces — so spellings differing only
	// in "trace" share a cache entry.
	Scenario json.RawMessage `json:"scenario"`
	// Reps is the repetition count (required, >= 1).
	Reps int `json:"reps"`
	// Seed is the ensemble seed (default 0). Equal scenario+seed+reps are
	// answered from the result cache, byte-identically.
	Seed uint64 `json:"seed"`
}

// FamiliesResponse is the body of GET /v1/scenarios/families.
type FamiliesResponse struct {
	Families []engine.FamilyInfo `json:"families"`
}

// RunsResponse is the body of GET /v1/runs.
type RunsResponse struct {
	Runs []JobView `json:"runs"`
}

// Handler returns the service's HTTP API:
//
//	POST   /v1/runs                submit a run (202; 200 on a cache hit)
//	GET    /v1/runs                list jobs in submission order
//	GET    /v1/runs/{id}           job status + summary when done
//	DELETE /v1/runs/{id}           cancel a queued or running job
//	GET    /v1/scenarios/families  the network family registry
//	GET    /healthz                liveness
//	GET    /metrics                job/cache/budget/throughput counters
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/runs", s.handleSubmit)
	mux.HandleFunc("GET /v1/runs", s.handleList)
	mux.HandleFunc("GET /v1/runs/{id}", s.handleStatus)
	mux.HandleFunc("DELETE /v1/runs/{id}", s.handleCancel)
	mux.HandleFunc("GET /v1/scenarios/families", s.handleFamilies)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return mux
}

func (s *Service) handleSubmit(w http.ResponseWriter, r *http.Request) {
	// MaxBytesReader (rather than a bare LimitReader) also closes the
	// connection after an oversized body, so a client cannot keep streaming
	// into a request that is already refused.
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeError(w, http.StatusRequestEntityTooLarge,
				fmt.Errorf("request body exceeds %d bytes", tooLarge.Limit))
			return
		}
		writeError(w, http.StatusBadRequest, fmt.Errorf("read body: %w", err))
		return
	}
	var req SubmitRequest
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decode request: %w", err))
		return
	}
	// One request per document, the same fail-loudly stance engine.Parse
	// takes: trailing content is a malformed edit, not something to drop.
	if dec.More() {
		writeError(w, http.StatusBadRequest, errors.New("trailing content after the request object"))
		return
	}
	if len(req.Scenario) == 0 {
		writeError(w, http.StatusBadRequest, errors.New(`"scenario" is required`))
		return
	}
	if req.Reps < 1 {
		writeError(w, http.StatusBadRequest, fmt.Errorf(`"reps" must be >= 1, got %d`, req.Reps))
		return
	}
	if req.Reps > s.maxReps {
		writeError(w, http.StatusBadRequest, fmt.Errorf(`"reps" %d exceeds the limit of %d`, req.Reps, s.maxReps))
		return
	}
	sc, err := engine.Parse(req.Scenario)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	// The service never records traces; strip the flag so the canonical
	// encoding — and therefore the cache key — ignores it.
	sc.Trace = false
	// Apply the configured default stream discipline to async scenarios that
	// do not pin one, before canonicalization: the cache key must reflect
	// the discipline that actually runs, and scenarios pinning an explicit
	// version keep it.
	if s.defaultStream != 0 && sc.Stream == 0 && sc.Protocol.Normalize() == engine.ProtocolAsync {
		sc.Stream = s.defaultStream
	}
	canonical, err := engine.Canonical(sc)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	view, err := s.submit(sc, canonical, req.Reps, req.Seed)
	var unavailable *UnavailableError
	switch {
	case err == nil:
	case errors.Is(err, errQueueFull):
		writeError(w, http.StatusTooManyRequests, err)
		return
	case errors.Is(err, errShutdown):
		writeError(w, http.StatusServiceUnavailable, err)
		return
	case errors.As(err, &unavailable):
		// Fail fast: the backend cannot execute new work right now (e.g. a
		// cluster with zero live workers). Tell the client when to come back.
		if unavailable.RetryAfter > 0 {
			w.Header().Set("Retry-After", fmt.Sprint(int(unavailable.RetryAfter.Seconds())))
		}
		writeError(w, http.StatusServiceUnavailable, err)
		return
	default:
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	status := http.StatusAccepted
	if view.CacheHit {
		status = http.StatusOK
	}
	writeJSON(w, status, view)
}

func (s *Service) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, RunsResponse{Runs: s.jobViews()})
}

func (s *Service) handleStatus(w http.ResponseWriter, r *http.Request) {
	view, ok := s.jobView(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, errUnknownJob)
		return
	}
	writeJSON(w, http.StatusOK, view)
}

func (s *Service) handleCancel(w http.ResponseWriter, r *http.Request) {
	view, err := s.cancelJob(r.PathValue("id"))
	switch {
	case errors.Is(err, errUnknownJob):
		writeError(w, http.StatusNotFound, err)
		return
	case errors.Is(err, errAlreadyTerminal):
		writeError(w, http.StatusConflict, fmt.Errorf("%w (state %s)", err, view.State))
		return
	}
	// A queued job is cancelled synchronously (200); a running one settles at
	// its next repetition boundary (202, poll the job until it is terminal —
	// normally "cancelled", but a cancel racing the final repetition can
	// still settle as "done").
	status := http.StatusOK
	if view.State == StateRunning {
		status = http.StatusAccepted
	}
	writeJSON(w, status, view)
}

func (s *Service) handleFamilies(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, FamiliesResponse{Families: engine.FamilyInfos()})
}

// HealthResponse is the body of GET /healthz. Version identifies the build
// (module version + VCS revision), so a mixed-version fleet is diagnosable
// by probing each node's /healthz.
type HealthResponse struct {
	Status  string `json:"status"`
	Version string `json:"version"`
}

func (s *Service) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, HealthResponse{Status: "ok", Version: s.version})
}

// handleMetrics negotiates the representation: JSON by default (and whenever
// the client asks for it), Prometheus text exposition when the Accept header
// prefers text/plain or OpenMetrics — which is exactly what a Prometheus
// scraper sends — so the same endpoint serves both humans and collectors.
func (s *Service) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if wantsPrometheus(r.Header.Get("Accept")) {
		s.writePrometheus(w)
		return
	}
	writeJSON(w, http.StatusOK, s.metrics())
}

// writeJSON renders a response document. Every body ends in a newline so
// curl output is readable.
func writeJSON(w http.ResponseWriter, status int, v any) {
	data, err := json.Marshal(v)
	if err != nil {
		http.Error(w, `{"error":"encode response"}`, http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(append(data, '\n'))
}

// writeError renders {"error": ...} with the status.
func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}
