package service

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"time"

	"dynamicrumor/internal/engine"
	"dynamicrumor/internal/obs"
)

// maxBodyBytes bounds a submission body; scenarios are small declarative
// documents, so 1 MiB is generous.
const maxBodyBytes = 1 << 20

// SubmitRequest is the body of POST /v1/runs.
type SubmitRequest struct {
	// Scenario is a declarative engine scenario (strict: unknown fields are
	// rejected). Trace recording is stripped — the service reports summary
	// statistics, never per-repetition traces — so spellings differing only
	// in "trace" share a cache entry.
	Scenario json.RawMessage `json:"scenario"`
	// Reps is the repetition count (required, >= 1).
	Reps int `json:"reps"`
	// Seed is the ensemble seed (default 0). Equal scenario+seed+reps are
	// answered from the result cache, byte-identically.
	Seed uint64 `json:"seed"`
}

// FamiliesResponse is the body of GET /v1/scenarios/families.
type FamiliesResponse struct {
	Families []engine.FamilyInfo `json:"families"`
}

// RunsResponse is the body of GET /v1/runs.
type RunsResponse struct {
	Runs []JobView `json:"runs"`
}

// Handler returns the service's HTTP API:
//
//	POST   /v1/runs                submit a run (202; 200 on a cache hit)
//	GET    /v1/runs                list jobs in submission order
//	GET    /v1/runs/{id}           job status + summary when done
//	GET    /v1/runs/{id}/trace     the run's flight-recorder timeline
//	DELETE /v1/runs/{id}           cancel a queued or running job
//	POST   /v1/sweeps              submit a parameter sweep (202; 200 if
//	                               every cell was served from the cache)
//	GET    /v1/sweeps              list sweeps in submission order
//	GET    /v1/sweeps/{id}         sweep status + per-cell aggregate table
//	GET    /v1/sweeps/{id}/events  SSE stream of per-cell summaries
//	DELETE /v1/sweeps/{id}         cancel a sweep's unfinished cells
//	GET    /v1/scenarios/families  the network family registry
//	GET    /healthz                liveness, uptime, subsystem readiness
//	GET    /metrics                job/cache/budget/throughput counters
//
// Every endpoint runs behind the obs.AccessLog middleware: the HTTP latency
// histogram always records, and with Config.LogRequests each request also
// emits one structured log line.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/runs", s.handleSubmit)
	mux.HandleFunc("GET /v1/runs", s.handleList)
	mux.HandleFunc("GET /v1/runs/{id}", s.handleStatus)
	mux.HandleFunc("GET /v1/runs/{id}/trace", s.handleTrace)
	mux.HandleFunc("DELETE /v1/runs/{id}", s.handleCancel)
	mux.HandleFunc("POST /v1/sweeps", s.handleSweepSubmit)
	mux.HandleFunc("GET /v1/sweeps", s.handleSweepList)
	mux.HandleFunc("GET /v1/sweeps/{id}", s.handleSweepStatus)
	mux.HandleFunc("GET /v1/sweeps/{id}/events", s.handleSweepEvents)
	mux.HandleFunc("DELETE /v1/sweeps/{id}", s.handleSweepCancel)
	mux.HandleFunc("GET /v1/scenarios/families", s.handleFamilies)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	al := obs.AccessLog{Latency: s.histHTTP}
	if s.logRequests {
		al.Logger = s.log
	}
	return al.Wrap(mux)
}

// clientKey identifies the submitting client for rate limiting: the remote
// host with the ephemeral port stripped, so one client's connections share
// one bucket.
func clientKey(r *http.Request) string {
	if host, _, err := net.SplitHostPort(r.RemoteAddr); err == nil {
		return host
	}
	return r.RemoteAddr
}

func (s *Service) handleSubmit(w http.ResponseWriter, r *http.Request) {
	// MaxBytesReader (rather than a bare LimitReader) also closes the
	// connection after an oversized body, so a client cannot keep streaming
	// into a request that is already refused.
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeError(w, http.StatusRequestEntityTooLarge,
				fmt.Errorf("request body exceeds %d bytes", tooLarge.Limit))
			return
		}
		writeError(w, http.StatusBadRequest, fmt.Errorf("read body: %w", err))
		return
	}
	var req SubmitRequest
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decode request: %w", err))
		return
	}
	// One request per document, the same fail-loudly stance engine.Parse
	// takes: trailing content is a malformed edit, not something to drop.
	if dec.More() {
		writeError(w, http.StatusBadRequest, errors.New("trailing content after the request object"))
		return
	}
	if len(req.Scenario) == 0 {
		writeError(w, http.StatusBadRequest, errors.New(`"scenario" is required`))
		return
	}
	if req.Reps < 1 {
		writeError(w, http.StatusBadRequest, fmt.Errorf(`"reps" must be >= 1, got %d`, req.Reps))
		return
	}
	if req.Reps > s.maxReps {
		writeError(w, http.StatusBadRequest, fmt.Errorf(`"reps" %d exceeds the limit of %d`, req.Reps, s.maxReps))
		return
	}
	sc, err := engine.Parse(req.Scenario)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	// The service never records traces; strip the flag so the canonical
	// encoding — and therefore the cache key — ignores it.
	sc.Trace = false
	// Apply the configured default stream discipline to async scenarios that
	// do not pin one, before canonicalization: the cache key must reflect
	// the discipline that actually runs, and scenarios pinning an explicit
	// version keep it.
	if s.defaultStream != 0 && sc.Stream == 0 && sc.Protocol.Normalize() == engine.ProtocolAsync {
		sc.Stream = s.defaultStream
	}
	canonical, err := engine.Canonical(sc)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	view, err := s.submit(sc, canonical, req.Reps, req.Seed, clientKey(r))
	if err != nil {
		writeSubmitError(w, err)
		return
	}
	status := http.StatusAccepted
	if view.CacheHit {
		status = http.StatusOK
	}
	setTraceHeader(w, view)
	writeJSON(w, status, view)
}

// setTraceHeader stamps a run response with the job's trace ID so the access
// log attributes the request and clients can follow the timeline.
func setTraceHeader(w http.ResponseWriter, view JobView) {
	if view.Trace != "" {
		w.Header().Set(obs.TraceHeader, view.Trace)
	}
}

// writeSubmitError maps the admission errors shared by the run and sweep
// submission endpoints to their HTTP statuses.
func writeSubmitError(w http.ResponseWriter, err error) {
	var unavailable *UnavailableError
	var limited *rateLimitedError
	switch {
	case errors.Is(err, errQueueFull):
		writeError(w, http.StatusTooManyRequests, err)
	case errors.As(err, &limited):
		// The client is submitting faster than the configured -rate; tell it
		// when the next token accrues.
		w.Header().Set("Retry-After", fmt.Sprint(retryAfterSeconds(limited.retryAfter)))
		writeError(w, http.StatusTooManyRequests, err)
	case errors.Is(err, errShutdown):
		writeError(w, http.StatusServiceUnavailable, err)
	case errors.As(err, &unavailable):
		// Fail fast: the backend cannot execute new work right now (e.g. a
		// cluster with zero live workers). Tell the client when to come back.
		if unavailable.RetryAfter > 0 {
			w.Header().Set("Retry-After", fmt.Sprint(retryAfterSeconds(unavailable.RetryAfter)))
		}
		writeError(w, http.StatusServiceUnavailable, err)
	default:
		writeError(w, http.StatusInternalServerError, err)
	}
}

// retryAfterSeconds renders a wait as whole Retry-After seconds, rounding up
// so a client honoring the header never retries before the wait elapses.
func retryAfterSeconds(d time.Duration) int {
	secs := int(math.Ceil(d.Seconds()))
	if secs < 1 {
		secs = 1
	}
	return secs
}

func (s *Service) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, RunsResponse{Runs: s.jobViews()})
}

func (s *Service) handleStatus(w http.ResponseWriter, r *http.Request) {
	view, ok := s.jobView(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, errUnknownJob)
		return
	}
	setTraceHeader(w, view)
	writeJSON(w, http.StatusOK, view)
}

// handleTrace serves the run's flight-recorder timeline: every phase span
// from submission to settlement, including per-shard lease/execute/upload
// spans when the run executed on the cluster backend.
func (s *Service) handleTrace(w http.ResponseWriter, r *http.Request) {
	view, ok := s.traceView(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, errUnknownJob)
		return
	}
	w.Header().Set(obs.TraceHeader, view.Trace)
	writeJSON(w, http.StatusOK, view)
}

func (s *Service) handleCancel(w http.ResponseWriter, r *http.Request) {
	view, err := s.cancelJob(r.PathValue("id"))
	switch {
	case errors.Is(err, errUnknownJob):
		writeError(w, http.StatusNotFound, err)
		return
	case errors.Is(err, errAlreadyTerminal):
		writeError(w, http.StatusConflict, fmt.Errorf("%w (state %s)", err, view.State))
		return
	}
	// A queued job is cancelled synchronously (200); a running one settles at
	// its next repetition boundary (202, poll the job until it is terminal —
	// normally "cancelled", but a cancel racing the final repetition can
	// still settle as "done").
	status := http.StatusOK
	if view.State == StateRunning {
		status = http.StatusAccepted
	}
	setTraceHeader(w, view)
	writeJSON(w, status, view)
}

func (s *Service) handleSweepSubmit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeError(w, http.StatusRequestEntityTooLarge,
				fmt.Errorf("request body exceeds %d bytes", tooLarge.Limit))
			return
		}
		writeError(w, http.StatusBadRequest, fmt.Errorf("read body: %w", err))
		return
	}
	var req SweepRequest
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decode request: %w", err))
		return
	}
	if dec.More() {
		writeError(w, http.StatusBadRequest, errors.New("trailing content after the request object"))
		return
	}
	if req.Reps < 1 {
		writeError(w, http.StatusBadRequest, fmt.Errorf(`"reps" must be >= 1, got %d`, req.Reps))
		return
	}
	if req.Reps > s.maxReps {
		writeError(w, http.StatusBadRequest, fmt.Errorf(`"reps" %d exceeds the limit of %d`, req.Reps, s.maxReps))
		return
	}
	cells, err := planSweep(req, s.defaultStream)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	view, err := s.submitSweep(req, cells, clientKey(r))
	if err != nil {
		writeSubmitError(w, err)
		return
	}
	// 200 when the whole grid was served without new work (every cell a
	// cache hit), mirroring the single-run endpoint's cache-hit status.
	status := http.StatusAccepted
	if view.State.Terminal() {
		status = http.StatusOK
	}
	writeJSON(w, status, view)
}

func (s *Service) handleSweepList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, SweepsResponse{Sweeps: s.sweepViews()})
}

func (s *Service) handleSweepStatus(w http.ResponseWriter, r *http.Request) {
	view, ok := s.sweepView(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, errUnknownSweep)
		return
	}
	writeJSON(w, http.StatusOK, view)
}

func (s *Service) handleSweepCancel(w http.ResponseWriter, r *http.Request) {
	view, err := s.cancelSweep(r.PathValue("id"))
	switch {
	case errors.Is(err, errUnknownSweep):
		writeError(w, http.StatusNotFound, err)
		return
	case errors.Is(err, errAlreadyTerminal):
		writeError(w, http.StatusConflict, fmt.Errorf("sweep already finished (state %s)", view.State))
		return
	}
	// Queued cells cancel synchronously; running cells settle at their next
	// repetition boundary, so the sweep may still read "running" here (202,
	// poll or stream events until it is terminal).
	status := http.StatusOK
	if !view.State.Terminal() {
		status = http.StatusAccepted
	}
	writeJSON(w, status, view)
}

// handleSweepEvents serves the sweep's event log as server-sent events: one
// "cell" event per settled cell (its summary byte-identical to the
// standalone run's), then one final "sweep" event with the aggregate view.
// A subscriber connecting mid-sweep replays the log from the start before
// following live settlements, so the stream is complete at any join time;
// the stream ends once the sweep is terminal.
func (s *Service) handleSweepEvents(w http.ResponseWriter, r *http.Request) {
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, errors.New("streaming unsupported"))
		return
	}
	id := r.PathValue("id")
	ch, ok := s.subscribeSweep(id)
	if !ok {
		writeError(w, http.StatusNotFound, errUnknownSweep)
		return
	}
	defer s.unsubscribeSweep(id, ch)
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	flusher.Flush()
	cursor := 0
	for {
		events, finished, ok := s.sweepEventsAfter(id, cursor)
		if !ok {
			// The sweep was pruned from history while the client streamed.
			return
		}
		for _, ev := range events {
			if _, err := fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", ev.id, ev.name, ev.data); err != nil {
				return
			}
		}
		if len(events) > 0 {
			cursor += len(events)
			flusher.Flush()
		}
		if finished {
			return
		}
		select {
		case <-r.Context().Done():
			return
		case <-ch:
		}
	}
}

func (s *Service) handleFamilies(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, FamiliesResponse{Families: engine.FamilyInfos()})
}

// HealthResponse is the body of GET /healthz. Version identifies the build
// (module version + VCS revision), so a mixed-version fleet is diagnosable
// by probing each node's /healthz. Status reads "ok" while every configured
// subsystem is ready and "degraded" otherwise — the endpoint always answers
// 200, because a degraded daemon is still alive; orchestrators that gate on
// readiness should inspect the body.
type HealthResponse struct {
	Status        string  `json:"status"`
	Version       string  `json:"version"`
	UptimeSeconds float64 `json:"uptime_seconds"`
	// Subsystems reports per-subsystem readiness: the run ledger ("journal"),
	// the persistent result cache ("disk_cache") and the distributed backend
	// ("cluster"), each present only when configured.
	Subsystems map[string]SubsystemHealth `json:"subsystems,omitempty"`
}

// SubsystemHealth is one subsystem's readiness line in /healthz.
type SubsystemHealth struct {
	Ready  bool   `json:"ready"`
	Detail string `json:"detail,omitempty"`
}

func (s *Service) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.health())
}

// handleMetrics negotiates the representation: JSON by default (and whenever
// the client asks for it), Prometheus text exposition when the Accept header
// prefers text/plain or OpenMetrics — which is exactly what a Prometheus
// scraper sends — so the same endpoint serves both humans and collectors.
func (s *Service) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if wantsPrometheus(r.Header.Get("Accept")) {
		s.writePrometheus(w)
		return
	}
	writeJSON(w, http.StatusOK, s.metrics())
}

// writeJSON renders a response document. Every body ends in a newline so
// curl output is readable.
func writeJSON(w http.ResponseWriter, status int, v any) {
	data, err := json.Marshal(v)
	if err != nil {
		http.Error(w, `{"error":"encode response"}`, http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(append(data, '\n'))
}

// writeError renders {"error": ...} with the status.
func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}
