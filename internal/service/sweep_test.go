package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"
	"time"

	"dynamicrumor/internal/store"
)

// decodeSweep unmarshals a SweepView response body.
func decodeSweep(t *testing.T, data []byte) SweepView {
	t.Helper()
	var v SweepView
	if err := json.Unmarshal(data, &v); err != nil {
		t.Fatalf("decode sweep view %q: %v", data, err)
	}
	return v
}

// waitSweep polls the sweep until it reaches the wanted terminal state.
func waitSweep(t *testing.T, url, id string, want JobState) SweepView {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		status, body := do(t, http.MethodGet, url+"/v1/sweeps/"+id, "")
		if status != http.StatusOK {
			t.Fatalf("sweep poll returned %d: %s", status, body)
		}
		v := decodeSweep(t, body)
		if v.State == want {
			return v
		}
		if v.State.Terminal() {
			t.Fatalf("sweep %s settled in state %s, want %s", id, v.State, want)
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("sweep %s did not reach state %s in time", id, want)
	return SweepView{}
}

// sweepBody is the canonical test grid: deterministic families so network
// construction is shared, two sizes, two seeds, async × sync.
const sweepBody = `{"sweep":{"family":"clique","n":[24,32],"protocols":["async","sync"],"seeds":[1,2]},"reps":3}`

// TestSweepPlannerGrid pins the planner's deterministic cell order (n
// outermost, sorted param keys, then protocol, stream, seed innermost) and
// the grid-point labels.
func TestSweepPlannerGrid(t *testing.T) {
	var req SweepRequest
	if err := json.Unmarshal([]byte(sweepBody), &req); err != nil {
		t.Fatal(err)
	}
	cells, err := planSweep(req, 0)
	if err != nil {
		t.Fatal(err)
	}
	var labels []string
	for _, c := range cells {
		labels = append(labels, c.label)
	}
	want := []string{
		"n=24,protocol=async,seed=1",
		"n=24,protocol=async,seed=2",
		"n=24,protocol=sync,seed=1",
		"n=24,protocol=sync,seed=2",
		"n=32,protocol=async,seed=1",
		"n=32,protocol=async,seed=2",
		"n=32,protocol=sync,seed=1",
		"n=32,protocol=sync,seed=2",
	}
	if fmt.Sprint(labels) != fmt.Sprint(want) {
		t.Errorf("planned cells:\n got %v\nwant %v", labels, want)
	}
	// Each cell's key must equal the standalone runKey of its canonical form.
	for _, c := range cells {
		if c.key != runKey(c.canonical, c.seed, req.Reps) {
			t.Errorf("cell %s key mismatch", c.label)
		}
	}
}

// TestSweepPlannerValidation: malformed grids fail loudly at planning time,
// naming the offending cell where one exists.
func TestSweepPlannerValidation(t *testing.T) {
	cases := []struct {
		name string
		body string
		want string
	}{
		{"no family", `{"sweep":{"n":[8]},"reps":1}`, `"family"`},
		{"n twice", `{"sweep":{"family":"clique","n":[8],"params":{"n":[8]}},"reps":1}`, `"n" given both`},
		{"empty param grid", `{"sweep":{"family":"gnrho","n":[8],"params":{"rho":[]}},"reps":1}`, "empty grid"},
		{"stream on sync cell", `{"sweep":{"family":"clique","n":[8],"protocols":["sync"],"streams":[2]},"reps":1}`, "stream applies to async"},
		{"unknown protocol", `{"sweep":{"family":"clique","n":[8],"protocols":["gossip"]},"reps":1}`, "unknown protocol"},
		{"too many cells", `{"sweep":{"family":"clique","n":[1],"seeds":[` + manySeeds(maxSweepCells+1) + `]},"reps":1}`, "exceeding the limit"},
	}
	for _, tc := range cases {
		var req SweepRequest
		if err := json.Unmarshal([]byte(tc.body), &req); err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		_, err := planSweep(req, 0)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %v, want substring %q", tc.name, err, tc.want)
		}
	}
}

func manySeeds(n int) string {
	parts := make([]string, n)
	for i := range parts {
		parts[i] = fmt.Sprint(i)
	}
	return strings.Join(parts, ",")
}

// TestSweepCellsByteIdenticalToStandaloneRuns is the tentpole pin: every
// cell summary of a native sweep — executed with shared compiled networks —
// is byte-identical to the equivalent standalone POST /v1/runs, at worker
// budgets 1, 3 and 8.
func TestSweepCellsByteIdenticalToStandaloneRuns(t *testing.T) {
	// Reference summaries from standalone runs on an untouched service.
	_, ref := newTestServer(t, Config{Budget: 2})
	reference := make(map[string]json.RawMessage)
	var refReq SweepRequest
	if err := json.Unmarshal([]byte(sweepBody), &refReq); err != nil {
		t.Fatal(err)
	}
	cells, err := planSweep(refReq, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range cells {
		body := fmt.Sprintf(`{"scenario":%s,"reps":%d,"seed":%d}`, c.canonical, refReq.Reps, c.seed)
		status, resp := do(t, http.MethodPost, ref.URL+"/v1/runs", body)
		if status != http.StatusAccepted && status != http.StatusOK {
			t.Fatalf("standalone submit of %s returned %d: %s", c.label, status, resp)
		}
		v := waitState(t, ref.URL, decodeJob(t, resp).ID, StateDone)
		reference[c.label] = v.Summary
	}

	for _, budget := range []int{1, 3, 8} {
		t.Run(fmt.Sprintf("budget%d", budget), func(t *testing.T) {
			_, ts := newTestServer(t, Config{Budget: budget})
			status, body := do(t, http.MethodPost, ts.URL+"/v1/sweeps", sweepBody)
			if status != http.StatusAccepted {
				t.Fatalf("sweep submit returned %d: %s", status, body)
			}
			sv := waitSweep(t, ts.URL, decodeSweep(t, body).ID, StateDone)
			if sv.Total != len(cells) || sv.Settled != sv.Total {
				t.Fatalf("sweep settled %d/%d cells, want %d", sv.Settled, sv.Total, len(cells))
			}
			// 2 distinct (family, n) shapes serve all 8 cells: one clique per
			// size, shared across both protocols and both seeds.
			if sv.SharedNetworks != 2 {
				t.Errorf("shared networks = %d, want 2", sv.SharedNetworks)
			}
			for _, cv := range sv.Cells {
				want, ok := reference[cv.Cell]
				if !ok {
					t.Fatalf("unplanned cell %q in aggregate table", cv.Cell)
				}
				if !bytes.Equal(cv.Summary, want) {
					t.Errorf("budget %d cell %s summary differs from standalone run:\n got: %s\nwant: %s",
						budget, cv.Cell, cv.Summary, want)
				}
			}
		})
	}
}

// TestSweepReusesResultCache: cells whose keys were already computed by
// standalone runs are served from the cache (the whole-grid case answers
// 200 with zero new work), and the cell views say so.
func TestSweepReusesResultCache(t *testing.T) {
	svc, ts := newTestServer(t, Config{Budget: 2})
	status, body := do(t, http.MethodPost, ts.URL+"/v1/sweeps", sweepBody)
	if status != http.StatusAccepted {
		t.Fatalf("first sweep returned %d: %s", status, body)
	}
	first := waitSweep(t, ts.URL, decodeSweep(t, body).ID, StateDone)

	status, body = do(t, http.MethodPost, ts.URL+"/v1/sweeps", sweepBody)
	if status != http.StatusOK {
		t.Fatalf("repeat sweep returned %d, want 200 (all cells cached): %s", status, body)
	}
	second := decodeSweep(t, body)
	if second.State != StateDone || second.CacheHits != second.Total {
		t.Fatalf("repeat sweep state %s with %d/%d cache hits, want done with all hits",
			second.State, second.CacheHits, second.Total)
	}
	detail, ok := svc.sweepView(second.ID)
	if !ok {
		t.Fatal("repeat sweep vanished")
	}
	for i, cv := range detail.Cells {
		if !cv.CacheHit {
			t.Errorf("repeat cell %s not marked as a cache hit", cv.Cell)
		}
		if !bytes.Equal(cv.Summary, first.Cells[i].Summary) {
			t.Errorf("cached cell %s summary differs from the first sweep's", cv.Cell)
		}
	}
	if m := svc.metrics(); m.Sweeps == nil || m.Sweeps.Submitted != 2 || m.Sweeps.Done != 2 {
		t.Errorf("sweep metrics wrong: %+v", svc.metrics().Sweeps)
	}
}

// TestSweepEventsGolden pins the SSE stream byte-for-byte: a subscriber
// joining after completion replays one "cell" event per cell, in settlement
// order, then the final "sweep" event — each cell summary identical to the
// aggregate table's.
func TestSweepEventsGolden(t *testing.T) {
	// Budget 1 serializes the cells in FIFO order, so settlement order —
	// and therefore the event log — is deterministic.
	_, ts := newTestServer(t, Config{Budget: 1})
	body := `{"sweep":{"family":"clique","n":[16,24],"seeds":[1]},"reps":2}`
	status, resp := do(t, http.MethodPost, ts.URL+"/v1/sweeps", body)
	if status != http.StatusAccepted {
		t.Fatalf("sweep submit returned %d: %s", status, resp)
	}
	id := decodeSweep(t, resp).ID
	waitSweep(t, ts.URL, id, StateDone)

	status, events := do(t, http.MethodGet, ts.URL+"/v1/sweeps/"+id+"/events", "")
	if status != http.StatusOK {
		t.Fatalf("events returned %d: %s", status, events)
	}
	checkGolden(t, "sweep_events.sse", events)

	status, detail := do(t, http.MethodGet, ts.URL+"/v1/sweeps/"+id, "")
	if status != http.StatusOK {
		t.Fatalf("sweep status returned %d: %s", status, detail)
	}
	checkGolden(t, "sweep_status.json", detail)
}

// TestSweepEventsFollowLive: a subscriber connected before the cells settle
// receives the same events as a post-completion replay.
func TestSweepEventsFollowLive(t *testing.T) {
	gate := &gateBackend{release: make(chan struct{})}
	_, ts := newTestServer(t, Config{Budget: 1, Backend: gate})
	body := `{"sweep":{"family":"clique","n":[16,24],"seeds":[1]},"reps":2}`
	status, resp := do(t, http.MethodPost, ts.URL+"/v1/sweeps", body)
	if status != http.StatusAccepted {
		t.Fatalf("sweep submit returned %d: %s", status, resp)
	}
	id := decodeSweep(t, resp).ID

	type result struct {
		body []byte
		err  error
	}
	done := make(chan result, 1)
	go func() {
		r, err := http.Get(ts.URL + "/v1/sweeps/" + id + "/events")
		if err != nil {
			done <- result{err: err}
			return
		}
		defer r.Body.Close()
		var buf bytes.Buffer
		_, err = buf.ReadFrom(r.Body)
		done <- result{body: buf.Bytes(), err: err}
	}()
	time.Sleep(20 * time.Millisecond) // let the subscriber attach mid-sweep
	close(gate.release)
	live := <-done
	if live.err != nil {
		t.Fatalf("live event stream: %v", live.err)
	}
	waitSweep(t, ts.URL, id, StateDone)
	_, replay := do(t, http.MethodGet, ts.URL+"/v1/sweeps/"+id+"/events", "")
	if !bytes.Equal(live.body, replay) {
		t.Errorf("live stream differs from replay:\nlive: %s\nreplay: %s", live.body, replay)
	}
	if n := strings.Count(string(replay), "event: cell"); n != 2 {
		t.Errorf("replay carries %d cell events, want 2", n)
	}
	if n := strings.Count(string(replay), "event: sweep"); n != 1 {
		t.Errorf("replay carries %d sweep events, want 1", n)
	}
}

// TestSweepCancel: DELETE cancels the unfinished cells and the sweep
// finalizes as cancelled; already-settled cells keep their results.
func TestSweepCancel(t *testing.T) {
	gate := &gateBackend{release: make(chan struct{})}
	_, ts := newTestServer(t, Config{Budget: 1, Backend: gate})
	status, resp := do(t, http.MethodPost, ts.URL+"/v1/sweeps", sweepBody)
	if status != http.StatusAccepted {
		t.Fatalf("sweep submit returned %d: %s", status, resp)
	}
	id := decodeSweep(t, resp).ID
	status, resp = do(t, http.MethodDelete, ts.URL+"/v1/sweeps/"+id, "")
	if status != http.StatusOK && status != http.StatusAccepted {
		t.Fatalf("sweep cancel returned %d: %s", status, resp)
	}
	close(gate.release)
	sv := waitSweep(t, ts.URL, id, StateCancelled)
	if sv.Settled != sv.Total {
		t.Errorf("cancelled sweep settled %d/%d cells", sv.Settled, sv.Total)
	}
	if status, _ := do(t, http.MethodDelete, ts.URL+"/v1/sweeps/"+id, ""); status != http.StatusConflict {
		t.Errorf("second cancel returned %d, want 409", status)
	}
	if status, _ := do(t, http.MethodDelete, ts.URL+"/v1/sweeps/snope", ""); status != http.StatusNotFound {
		t.Errorf("cancel of unknown sweep returned %d, want 404", status)
	}
}

// TestSweepRecoveryAfterKill is the crash pin: a daemon killed mid-sweep
// re-plans the journalled sweep on restart, re-adopts the unfinished cells
// under their original identities, and completes them with summaries
// byte-identical to an uninterrupted reference.
func TestSweepRecoveryAfterKill(t *testing.T) {
	stateDir := t.TempDir()
	body := `{"sweep":{"family":"clique","n":[16,24],"seeds":[1]},"reps":2}`

	gate := &gateBackend{release: make(chan struct{})}
	svc1, ts1 := startPersistServer(t, Config{Budget: 1, StateDir: stateDir, Backend: gate, Logger: testLogger(t)})
	status, resp := do(t, http.MethodPost, ts1.URL+"/v1/sweeps", body)
	if status != http.StatusAccepted {
		t.Fatalf("sweep submit returned %d: %s", status, resp)
	}
	id := decodeSweep(t, resp).ID
	stopPersistServer(svc1, ts1) // dies with every cell unfinished

	svc2, ts2 := startPersistServer(t, Config{Budget: 2, StateDir: stateDir, Logger: testLogger(t)})
	defer stopPersistServer(svc2, ts2)
	if keys := svc2.RecoveredKeys(); len(keys) != 2 {
		t.Fatalf("recovered %d run keys, want 2 (one per cell)", len(keys))
	}
	recovered := waitSweep(t, ts2.URL, id, StateDone)
	if m := svc2.metrics(); m.Sweeps == nil || m.Sweeps.Recovered != 1 {
		t.Errorf("sweeps_recovered metric missing or wrong: %+v", svc2.metrics().Sweeps)
	}
	// Cell jobs resurface under their original IDs.
	if status, _ := do(t, http.MethodGet, ts2.URL+"/v1/runs/"+id+".c000", ""); status != http.StatusOK {
		t.Errorf("recovered cell %s.c000 not found: status %d", id, status)
	}

	// Reference: the same sweep on a fresh, undisturbed service.
	svc3, ts3 := startPersistServer(t, Config{Budget: 2})
	defer stopPersistServer(svc3, ts3)
	status, resp = do(t, http.MethodPost, ts3.URL+"/v1/sweeps", body)
	if status != http.StatusAccepted {
		t.Fatalf("reference sweep returned %d: %s", status, resp)
	}
	reference := waitSweep(t, ts3.URL, decodeSweep(t, resp).ID, StateDone)
	for i := range reference.Cells {
		if !bytes.Equal(recovered.Cells[i].Summary, reference.Cells[i].Summary) {
			t.Errorf("recovered cell %s summary differs from uninterrupted run:\n got: %s\nwant: %s",
				recovered.Cells[i].Cell, recovered.Cells[i].Summary, reference.Cells[i].Summary)
		}
	}
}

// TestSweepRecoverySettlesFromDurableCache: cells whose results were durably
// cached before the crash settle immediately at restart — the sweep
// finalizes during replay without re-executing anything.
func TestSweepRecoverySettlesFromDurableCache(t *testing.T) {
	stateDir, cacheDir := t.TempDir(), t.TempDir()
	body := `{"sweep":{"family":"clique","n":[16,24],"seeds":[1]},"reps":2}`

	svc1, ts1 := startPersistServer(t, Config{Budget: 2, StateDir: stateDir, CacheDir: cacheDir})
	status, resp := do(t, http.MethodPost, ts1.URL+"/v1/sweeps", body)
	if status != http.StatusAccepted {
		t.Fatalf("sweep submit returned %d: %s", status, resp)
	}
	id := decodeSweep(t, resp).ID
	first := waitSweep(t, ts1.URL, id, StateDone)
	// Kill AFTER completion but simulate a lost sweep settle record by
	// rewriting the journal to just the sweep submit record.
	svc1.mu.Lock()
	sw := svc1.sweeps[id]
	payload, _ := json.Marshal(sweepRecord{ID: sw.id, Request: sw.request, DefaultStream: sw.defaultStream, SubmittedAt: sw.submitted})
	if err := svc1.journal.Rewrite([]store.Record{{Type: recSweepSubmit, Payload: payload}}); err != nil {
		svc1.mu.Unlock()
		t.Fatal(err)
	}
	svc1.mu.Unlock()
	stopPersistServer(svc1, ts1)

	svc2, ts2 := startPersistServer(t, Config{Budget: 2, StateDir: stateDir, CacheDir: cacheDir, Logger: testLogger(t)})
	defer stopPersistServer(svc2, ts2)
	if keys := svc2.RecoveredKeys(); len(keys) != 0 {
		t.Fatalf("recovered %d run keys, want 0 (all cells durably cached)", len(keys))
	}
	status, resp = do(t, http.MethodGet, ts2.URL+"/v1/sweeps/"+id, "")
	if status != http.StatusOK {
		t.Fatalf("recovered sweep not found: %d: %s", status, resp)
	}
	second := decodeSweep(t, resp)
	if second.State != StateDone || second.CacheHits != second.Total {
		t.Fatalf("recovered sweep state %s with %d/%d cache hits, want done with all", second.State, second.CacheHits, second.Total)
	}
	for i := range first.Cells {
		if !bytes.Equal(first.Cells[i].Summary, second.Cells[i].Summary) {
			t.Errorf("cell %s summary changed across restart", first.Cells[i].Cell)
		}
	}
}

// TestRateLimitSubmissions: with -rate configured, work-creating submissions
// beyond the burst are refused with 429 + Retry-After, while cache hits pass
// untouched. The pinned test clock never refills the bucket, making the
// outcome deterministic.
func TestRateLimitSubmissions(t *testing.T) {
	_, ts := newTestServer(t, Config{Budget: 2, RatePerSec: 1, RateBurst: 2})

	submit := func(n int) (int, []byte, string) {
		body := fmt.Sprintf(`{"scenario":{"network":{"family":"clique","params":{"n":%d}}},"reps":2,"seed":1}`, n)
		req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/runs", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		return resp.StatusCode, buf.Bytes(), resp.Header.Get("Retry-After")
	}

	// Burst of 2 admits two novel submissions.
	for i, n := range []int{16, 24} {
		if status, body, _ := submit(n); status != http.StatusAccepted {
			t.Fatalf("submission %d returned %d: %s", i, status, body)
		}
	}
	// The third is over budget: 429 with a Retry-After hint.
	status, body, retry := submit(32)
	if status != http.StatusTooManyRequests {
		t.Fatalf("over-rate submission returned %d, want 429: %s", status, body)
	}
	if retry == "" {
		t.Error("429 response carries no Retry-After header")
	}
	if !strings.Contains(string(body), "rate limit") {
		t.Errorf("429 body %s does not mention the rate limit", body)
	}
	// Cache hits are exempt: wait out one admitted run, then resubmit it.
	var v JobView
	for _, id := range []string{"j00000001"} {
		v = waitState(t, ts.URL, id, StateDone)
	}
	_ = v
	if status, body, _ := submit(16); status != http.StatusOK {
		t.Fatalf("cache-hit resubmission returned %d, want 200 (exempt): %s", status, body)
	}
	// Sweeps consult the same limiter.
	status, resp := do(t, http.MethodPost, ts.URL+"/v1/sweeps", sweepBody)
	if status != http.StatusTooManyRequests {
		t.Fatalf("over-rate sweep returned %d, want 429: %s", status, resp)
	}
}
