// Package service is the long-lived simulation service behind cmd/rumord: a
// job model and bounded FIFO scheduler on top of the batch engine, a
// scenario-hash result cache, and the JSON HTTP API that exposes them.
//
// A job is one ensemble run: a declarative engine.Scenario plus a repetition
// count and seed. Jobs move through a small state machine
//
//	queued → running → done | failed | cancelled
//	queued → cancelled                 (cancelled before dispatch)
//
// and never leave a terminal state. Because the engine is deterministic —
// equal (scenario, seed, reps) produce bit-identical ensembles at any
// parallelism — a completed run is fully described by its inputs, which is
// what makes the result cache sound: the cache key is a content hash of the
// canonical scenario encoding (see engine.Canonical) plus seed and reps, and
// a hit replays the stored summary bytes verbatim.
package service

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"sync/atomic"
	"time"

	"dynamicrumor/internal/engine"
	"dynamicrumor/internal/obs"
	"dynamicrumor/internal/stats"
)

// JobState names one vertex of the job lifecycle state machine.
type JobState string

// The job states. Done, Failed and Cancelled are terminal.
const (
	// StateQueued: accepted, waiting for worker budget in FIFO order.
	StateQueued JobState = "queued"
	// StateRunning: repetitions are executing on granted workers.
	StateRunning JobState = "running"
	// StateDone: all repetitions reduced; Summary holds the result.
	StateDone JobState = "done"
	// StateFailed: a repetition or the reducer returned an error.
	StateFailed JobState = "failed"
	// StateCancelled: cancelled by DELETE or by service shutdown.
	StateCancelled JobState = "cancelled"
)

// Terminal reports whether the state is final.
func (s JobState) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// job is the service-internal job record. All fields are guarded by the
// service mutex except repsDone, which the reducer updates without the lock.
type job struct {
	id        string
	state     JobState
	scenario  engine.Scenario
	canonical []byte
	key       string
	reps      int
	seed      uint64
	seq       int
	cacheHit  bool
	// journaled marks a job recorded in the durable run ledger; its terminal
	// transition must be journalled too, or a restart re-runs it.
	journaled bool

	// sweep/cellLabel/compile mark a sweep cell: the owning sweep, the
	// planner's grid-point label, and the sweep-wide compile set the backend
	// routes scenario compilation through so deterministic networks are
	// shared across cells. Cells are not journalled individually — the sweep
	// record re-plans them — and are pruned with their sweep.
	sweep     *sweep
	cellLabel string
	compile   *engine.CompileSet

	// trace is the job's flight-recorder timeline (see internal/obs): phase
	// spans from submission to settlement, plus per-shard spans in cluster
	// mode. Never nil after newJobLocked / recovery.
	trace *obs.Trace

	workers         int
	repsDone        atomic.Int64
	cancelRequested bool
	cancel          context.CancelFunc

	// leader/followers implement in-flight coalescing: a submission whose key
	// matches a queued or running job becomes a follower of that leader and
	// settles together with it, never executing its own repetitions.
	leader    *job
	followers []*job

	submitted time.Time
	started   time.Time
	finished  time.Time

	summary json.RawMessage
	errMsg  string
}

// runKey is the cache key of one ensemble run: a SHA-256 over the canonical
// scenario bytes, the seed and the repetition count. Two submissions collide
// exactly when the engine would produce bit-identical ensembles for them.
func runKey(canonical []byte, seed uint64, reps int) string {
	h := sha256.New()
	h.Write(canonical)
	var tail [17]byte
	binary.LittleEndian.PutUint64(tail[1:9], seed)
	binary.LittleEndian.PutUint64(tail[9:17], uint64(reps))
	h.Write(tail[:])
	return hex.EncodeToString(h.Sum(nil))
}

// RunSummary is the result document of a completed job, kept deliberately
// small and deterministic: marshalling it with encoding/json yields identical
// bytes for identical runs, so summaries can be cached and replayed verbatim.
type RunSummary struct {
	// Key is the run's cache key (canonical scenario + seed + reps hash).
	Key string `json:"key"`
	// Reps and Seed echo the run inputs.
	Reps int    `json:"reps"`
	Seed uint64 `json:"seed"`
	// Completed counts repetitions that informed every vertex in time.
	Completed int `json:"completed"`
	// CompletionRate is Completed / Reps.
	CompletionRate float64 `json:"completion_rate"`
	// SpreadTime summarizes the per-repetition spread times: exact
	// mean/std/min/max plus P² median and 0.9-quantile estimates.
	SpreadTime stats.StreamSummary `json:"spread_time"`
}

// buildSummary renders the deterministic summary bytes of a finished run.
func buildSummary(key string, reps int, seed uint64, completed int, stream *stats.Stream) (json.RawMessage, error) {
	sum := RunSummary{
		Key:            key,
		Reps:           reps,
		Seed:           seed,
		Completed:      completed,
		CompletionRate: float64(completed) / float64(reps),
		SpreadTime:     stream.Summary(),
	}
	return json.Marshal(sum)
}

// JobView is the API representation of a job.
type JobView struct {
	ID    string   `json:"id"`
	State JobState `json:"state"`
	// Key identifies the run for caching; equal keys mean equal results.
	Key string `json:"key"`
	// Scenario is the canonical encoding of the submitted scenario.
	Scenario json.RawMessage `json:"scenario"`
	Reps     int             `json:"reps"`
	Seed     uint64          `json:"seed"`
	// CacheHit marks a job answered from the result cache without running.
	CacheHit bool `json:"cache_hit,omitempty"`
	// CoalescedWith names the in-flight job this submission was deduplicated
	// onto; the job settles together with it.
	CoalescedWith string `json:"coalesced_with,omitempty"`
	// CancelRequested marks a running job whose cancellation is in flight.
	CancelRequested bool `json:"cancel_requested,omitempty"`
	// Workers is the worker-budget share granted to the running job.
	Workers int `json:"workers,omitempty"`
	// Sweep and Cell identify a sweep cell: the owning sweep's ID and the
	// planner's grid-point label. Absent on plain submissions.
	Sweep string `json:"sweep,omitempty"`
	Cell  string `json:"cell,omitempty"`
	// Trace is the run's flight-recorder trace ID; GET /v1/runs/{id}/trace
	// serves the timeline.
	Trace string `json:"trace,omitempty"`
	// RepsDone counts reduced repetitions (= Reps once done).
	RepsDone    int64  `json:"reps_done"`
	SubmittedAt string `json:"submitted_at"`
	StartedAt   string `json:"started_at,omitempty"`
	FinishedAt  string `json:"finished_at,omitempty"`
	Error       string `json:"error,omitempty"`
	// Summary holds the result document once the job is done.
	Summary json.RawMessage `json:"summary,omitempty"`
}

// view renders the job for the API. Callers hold the service mutex.
func (j *job) view() JobView {
	v := JobView{
		ID:              j.id,
		State:           j.state,
		Key:             j.key,
		Scenario:        j.canonical,
		Reps:            j.reps,
		Seed:            j.seed,
		CacheHit:        j.cacheHit,
		CoalescedWith:   coalescedID(j),
		CancelRequested: j.cancelRequested && j.state == StateRunning,
		Cell:            j.cellLabel,
		Trace:           j.trace.ID(),
		RepsDone:        j.repsDone.Load(),
		SubmittedAt:     rfc3339(j.submitted),
		StartedAt:       rfc3339(j.started),
		FinishedAt:      rfc3339(j.finished),
		Error:           j.errMsg,
		Summary:         j.summary,
	}
	if j.sweep != nil {
		v.Sweep = j.sweep.id
	}
	if j.state == StateRunning {
		v.Workers = j.workers
	}
	if j.state == StateDone {
		// A cache hit never executed its repetitions; report the logical
		// count so "done" always reads as reps_done == reps.
		v.RepsDone = int64(j.reps)
	}
	return v
}

// coalescedID names a follower's leader for the API; empty otherwise.
func coalescedID(j *job) string {
	if j.leader != nil {
		return j.leader.id
	}
	return ""
}

// rfc3339 formats a timestamp for the API; the zero time renders empty (and
// is dropped by omitempty).
func rfc3339(t time.Time) string {
	if t.IsZero() {
		return ""
	}
	return t.UTC().Format(time.RFC3339Nano)
}
