package service

import (
	"fmt"
	"net/http"
	"testing"
)

// streamSubmit renders a submission of a small clique scenario, with or
// without an explicit stream version.
func streamSubmit(stream int) string {
	scenario := `{"network":{"family":"clique","params":{"n":16}}`
	if stream != 0 {
		scenario += fmt.Sprintf(`,"stream":%d`, stream)
	}
	scenario += `}`
	return fmt.Sprintf(`{"scenario":%s,"reps":8,"seed":3}`, scenario)
}

// submitKey submits and returns the job's cache key, waiting for completion
// so follow-up submissions hit the result cache rather than coalescing.
func submitKey(t *testing.T, url, body string) string {
	t.Helper()
	status, resp := do(t, http.MethodPost, url+"/v1/runs", body)
	if status != http.StatusAccepted && status != http.StatusOK {
		t.Fatalf("submit returned %d: %s", status, resp)
	}
	view := decodeJob(t, resp)
	waitState(t, url, view.ID, StateDone)
	return view.Key
}

// TestDefaultStreamRewritesCacheKey pins the DefaultStream contract: on a
// v2-default service an unpinned scenario runs — and is cached — as stream 2,
// while an explicit version always wins over the default.
func TestDefaultStreamRewritesCacheKey(t *testing.T) {
	_, v2Server := newTestServer(t, Config{Budget: 2, DefaultStream: 2})
	unpinned := submitKey(t, v2Server.URL, streamSubmit(0))
	pinnedV2 := submitKey(t, v2Server.URL, streamSubmit(2))
	pinnedV1 := submitKey(t, v2Server.URL, streamSubmit(1))
	if unpinned != pinnedV2 {
		t.Fatalf("unpinned scenario did not adopt the v2 default: key %s vs explicit v2 key %s", unpinned, pinnedV2)
	}
	if unpinned == pinnedV1 {
		t.Fatalf("explicit stream 1 shares the v2 default's cache key %s", unpinned)
	}

	// Without a default, unpinned and explicit-v1 submissions share the
	// legacy v1 key — upgrading the daemon must not orphan old cache entries.
	_, v1Server := newTestServer(t, Config{Budget: 2})
	legacy := submitKey(t, v1Server.URL, streamSubmit(0))
	explicitV1 := submitKey(t, v1Server.URL, streamSubmit(1))
	if legacy != explicitV1 {
		t.Fatalf("explicit stream 1 changed the cache key: %s vs %s", explicitV1, legacy)
	}
	if legacy != pinnedV1 {
		t.Fatalf("v1 key differs across service configurations: %s vs %s", legacy, pinnedV1)
	}
}

// TestDefaultStreamOnlyTouchesAsync: sync scenarios have no stream versions;
// a v2-default service must leave them alone instead of failing validation.
func TestDefaultStreamOnlyTouchesAsync(t *testing.T) {
	_, ts := newTestServer(t, Config{Budget: 2, DefaultStream: 2})
	body := `{"scenario":{"network":{"family":"clique","params":{"n":16}},"protocol":"sync"},"reps":4,"seed":1}`
	status, resp := do(t, http.MethodPost, ts.URL+"/v1/runs", body)
	if status != http.StatusAccepted && status != http.StatusOK {
		t.Fatalf("sync submission on a v2-default service returned %d: %s", status, resp)
	}
	view := decodeJob(t, resp)
	waitState(t, ts.URL, view.ID, StateDone)
}

func TestInvalidDefaultStreamRejected(t *testing.T) {
	if _, err := New(Config{DefaultStream: 7}); err == nil {
		t.Fatal("New accepted DefaultStream 7")
	}
}
