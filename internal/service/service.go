package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"dynamicrumor/internal/buildinfo"
	"dynamicrumor/internal/engine"
	"dynamicrumor/internal/obs"
	"dynamicrumor/internal/runner"
	"dynamicrumor/internal/sim"
	"dynamicrumor/internal/store"
)

// Config carries the service policy knobs. The zero value selects sensible
// defaults everywhere.
type Config struct {
	// Budget is the total number of engine worker goroutines shared by every
	// running job (<= 0 selects runtime.GOMAXPROCS(0)). The scheduler grants
	// each dispatched job a slice of the budget and never exceeds it in
	// aggregate, so the service's CPU footprint is bounded no matter how many
	// jobs are in flight.
	Budget int
	// QueueLimit bounds the number of queued jobs; submissions beyond it are
	// rejected with 429 (<= 0 selects 256).
	QueueLimit int
	// CacheLimit bounds the result cache entries (<= 0 selects 1024).
	CacheLimit int
	// MaxReps bounds a single job's repetition count (<= 0 selects 10⁷).
	MaxReps int
	// DefaultStream, when non-zero, is the async stream discipline applied to
	// submitted scenarios that do not pin one (sim.StreamV1 or sim.StreamV2;
	// other values panic in New). It is applied before canonicalization, so
	// the cache key always reflects the discipline that actually runs — a v2
	// default never serves results from v1 cache entries. Scenarios that
	// spell an explicit stream version, and non-async scenarios, are left
	// untouched.
	DefaultStream int
	// HistoryLimit bounds the retained terminal job records (<= 0 selects
	// 4096): beyond it the oldest finished jobs are forgotten, so a
	// long-lived daemon's memory does not grow with lifetime submissions.
	// Queued and running jobs are never evicted, and the bound is amortized —
	// the history may transiently overshoot by up to 1/8 before a prune.
	HistoryLimit int
	// Backend executes dispatched runs (nil selects LocalBackend — in-process
	// execution on the batch engine). The cluster coordinator plugs in here to
	// shard runs across remote workers; every backend is bound by the same
	// determinism contract, so the cache, coalescing and summary byte-identity
	// hold regardless of where repetitions execute.
	Backend Backend
	// Version is the build identity served by /healthz and /metrics (empty
	// selects buildinfo.Version()).
	Version string
	// CacheDir, when set, layers a disk-backed persistent result cache under
	// the in-memory one: completed summaries are written through (atomic,
	// checksummed, content-addressed by run key), survive restarts, and are
	// replayed byte-identically. Corrupt entries are quarantined and treated
	// as misses, never served.
	CacheDir string
	// CacheMaxBytes bounds the disk cache's total size; least-recently-used
	// entries are evicted beyond it (<= 0 selects 256 MiB).
	CacheMaxBytes int64
	// StateDir, when set, enables the durable run ledger: accepted jobs are
	// journalled (fsync'd before the submission is acknowledged) and
	// re-adopted on restart, so in-flight runs survive SIGKILL. A cluster
	// coordinator sharing the directory keeps its own journal there too.
	StateDir string
	// RatePerSec, when positive, enables per-client token-bucket rate
	// limiting of the submission endpoints: each client host is admitted
	// RatePerSec work-creating submissions per second. Cache hits and
	// coalesced submissions are exempt — they cost nothing to serve.
	RatePerSec float64
	// RateBurst is the token-bucket capacity (<= 0 selects twice the rate,
	// at least 1). Ignored unless RatePerSec is positive.
	RateBurst int
	// Logger, when non-nil, receives the service's structured log events
	// (durability, recovery, scheduling); nil discards them. Every line
	// carries the relevant run/sweep/trace IDs as attributes.
	Logger *slog.Logger
	// Observe, when non-nil, is the shared latency-histogram registry; nil
	// selects a private one. cmd/rumord hands the service and the cluster
	// coordinator the same registry so lease round-trip latency lands in the
	// same /metrics document.
	Observe *obs.Registry
	// LogRequests enables the structured HTTP access log on every endpoint
	// (one line per request with method, path, status, bytes, duration and
	// trace ID). The HTTP latency histogram records regardless.
	LogRequests bool
	// Clock overrides the time source (tests pin it for golden responses).
	Clock func() time.Time
}

// Service schedules ensemble runs onto the batch engine and caches their
// results. Create one with New, expose it with Handler, stop it with Close.
type Service struct {
	budget        int
	queueLimit    int
	maxReps       int
	historyLimit  int
	defaultStream int
	backend       Backend
	version       string
	clock         func() time.Time
	log           *slog.Logger
	logRequests   bool

	// Observability (see internal/obs): the shared histogram registry, the
	// bounded flight recorder of run timelines, and the hot-path histograms.
	reg           *obs.Registry
	rec           *obs.Recorder
	histQueueWait *obs.Histogram
	histRun       *obs.Histogram
	histCacheGet  *obs.Histogram
	histHTTP      *obs.Histogram

	baseCtx    context.Context
	baseCancel context.CancelFunc

	mu        sync.Mutex
	cond      *sync.Cond
	queue     []*job
	jobs      map[string]*job
	order     []string
	inflight  map[string]*job
	terminal  int
	nextID    int
	inUse     int
	closed    bool
	cache     *resultCache
	hits      int64
	misses    int64
	coalesced int64
	started   time.Time

	// Sweep subsystem (see sweep.go). submitSeq totally orders submissions
	// across jobs and sweeps so ledger compaction preserves replay order.
	sweeps          map[string]*sweep
	sweepOrder      []string
	nextSweepID     int
	sweepTerminal   int
	submitSeq       int
	sweepsSubmitted int64
	sweepsRecovered int64

	// Rate limiting (nil unless Config.RatePerSec is positive).
	limiter     *rateLimiter
	rateLimited int64

	// Durability layer (nil / zero when CacheDir / StateDir are unset).
	disk          *store.Cache
	journal       *store.Journal
	jobsRecovered int64
	recoveredKeys []string
	compactions   int64

	// repsDone counts every reduced repetition, including those of jobs that
	// were later cancelled; finishedReps/busy only aggregate jobs that ran to
	// completion, so reps-per-second is a throughput of useful work.
	repsDone     atomic.Int64
	finishedReps int64
	busy         time.Duration

	wg sync.WaitGroup
}

// New starts a service (its dispatcher goroutine runs until Close). With
// Config.StateDir it replays the run ledger first, re-adopting every
// submission that had not settled when the previous process died; with
// Config.CacheDir it opens the persistent result cache. Either failing to
// open is a startup error — running without the durability the operator
// asked for would be a silent downgrade.
func New(cfg Config) (*Service, error) {
	switch cfg.DefaultStream {
	case 0, sim.StreamV1, sim.StreamV2:
	default:
		return nil, fmt.Errorf("service: invalid DefaultStream %d (want 0, 1 or 2)", cfg.DefaultStream)
	}
	s := &Service{
		budget:        runner.Parallelism(cfg.Budget),
		queueLimit:    cfg.QueueLimit,
		maxReps:       cfg.MaxReps,
		historyLimit:  cfg.HistoryLimit,
		defaultStream: cfg.DefaultStream,
		backend:       cfg.Backend,
		version:       cfg.Version,
		clock:         cfg.Clock,
		log:           cfg.Logger,
		logRequests:   cfg.LogRequests,
		reg:           cfg.Observe,
	}
	if s.backend == nil {
		s.backend = LocalBackend{}
	}
	if s.version == "" {
		s.version = buildinfo.Version()
	}
	if s.queueLimit <= 0 {
		s.queueLimit = 256
	}
	if s.maxReps <= 0 {
		s.maxReps = 10_000_000
	}
	if s.historyLimit <= 0 {
		s.historyLimit = 4096
	}
	if s.clock == nil {
		s.clock = time.Now
	}
	if s.log == nil {
		s.log = obs.NopLogger()
	}
	if s.reg == nil {
		s.reg = obs.NewRegistry()
	}
	// Register every histogram at startup — including the lease round-trip
	// one the coordinator records into when it shares this registry — so the
	// /metrics document exposes the full set in every deployment mode.
	s.rec = obs.NewRecorder(0)
	s.histQueueWait = s.reg.Histogram("queue_wait", "Seconds jobs spent queued before dispatch.")
	s.histRun = s.reg.Histogram("run_duration", "Seconds dispatched jobs spent running to done.")
	s.histCacheGet = s.reg.Histogram("cache_lookup", "Seconds spent in result cache lookups (memory, then disk).")
	s.reg.Histogram("lease_roundtrip", "Seconds from cluster lease grant to its settled result upload.")
	s.histHTTP = s.reg.Histogram("http_request", "Seconds serving HTTP requests across every endpoint.")
	cacheLimit := cfg.CacheLimit
	if cacheLimit <= 0 {
		cacheLimit = 1024
	}
	s.cache = newResultCache(cacheLimit)
	s.cond = sync.NewCond(&s.mu)
	s.jobs = make(map[string]*job)
	s.inflight = make(map[string]*job)
	s.sweeps = make(map[string]*sweep)
	if cfg.RatePerSec > 0 {
		s.limiter = newRateLimiter(cfg.RatePerSec, cfg.RateBurst)
	}
	s.baseCtx, s.baseCancel = context.WithCancel(context.Background())
	s.started = s.clock()
	if cfg.CacheDir != "" {
		disk, err := store.OpenCache(cfg.CacheDir, cfg.CacheMaxBytes)
		if err != nil {
			return nil, err
		}
		s.disk = disk
	}
	if cfg.StateDir != "" {
		// Replay and re-adoption happen before the dispatcher exists, so the
		// recovered queue is complete before anything is granted workers.
		if err := s.openLedger(filepath.Join(cfg.StateDir, "service.journal")); err != nil {
			return nil, err
		}
	}
	s.wg.Add(1)
	go s.dispatch()
	return s, nil
}

// Close stops the service: queued jobs are cancelled, running jobs are
// cancelled at their next repetition boundary, and Close returns once every
// goroutine has settled. The HTTP handlers reject new submissions afterwards.
func (s *Service) Close() {
	s.mu.Lock()
	s.closed = true
	now := s.clock()
	for _, j := range s.queue {
		j.state = StateCancelled
		j.errMsg = "cancelled: service shutting down"
		j.finished = now
		s.markTerminalLocked(j)
		s.settleFollowersLocked(j)
	}
	s.queue = nil
	s.baseCancel()
	s.cond.Broadcast()
	s.mu.Unlock()
	s.wg.Wait()
	if s.journal != nil {
		if err := s.journal.Close(); err != nil {
			s.log.Error("service: journal close failed", "err", err)
		}
	}
}

// submit validates a submission and either answers it from the cache or
// enqueues a job. The returned view is rendered atomically with the
// enqueue, so a submit response always reads "queued" (or "done" for a
// cache hit) even if the dispatcher picks the job up immediately. The
// client identifies the submitter for rate limiting; cache hits and
// coalesced submissions are served without consulting the limiter.
func (s *Service) submit(sc engine.Scenario, canonical []byte, reps int, seed uint64, client string) (JobView, error) {
	key := runKey(canonical, seed, reps)
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return JobView{}, errShutdown
	}
	now := s.clock()
	if summary, ok := s.lookupCacheLocked(key); ok {
		s.hits++
		j := s.newJobLocked(sc, canonical, key, reps, seed, now)
		j.state = StateDone
		j.cacheHit = true
		j.started, j.finished = now, now
		j.summary = summary
		j.trace.Add(obs.Span{Name: "cache-hit", Start: now, End: now})
		s.markTerminalLocked(j)
		s.pruneHistoryLocked()
		return j.view(), nil
	}
	// Coalesce onto an identical in-flight run: the engine would compute
	// bit-identical results, so the follower just rides the leader and
	// settles with it, consuming no queue slot and no worker budget.
	if leader, ok := s.inflight[key]; ok {
		s.coalesced++
		j := s.newJobLocked(sc, canonical, key, reps, seed, now)
		j.state = StateQueued
		j.leader = leader
		leader.followers = append(leader.followers, j)
		j.trace.Add(obs.Span{Name: "coalesced", Detail: "leader=" + leader.id, Start: now, End: now})
		return j.view(), nil
	}
	// Only submissions that need new work consult backend readiness: cache
	// hits and coalesced followers are served above even when the backend
	// has nothing to execute on.
	if rc, ok := s.backend.(readyChecker); ok {
		if err := rc.Ready(); err != nil {
			return JobView{}, err
		}
	}
	if len(s.queue) >= s.queueLimit {
		return JobView{}, errQueueFull
	}
	if err := s.allowLocked(client, now); err != nil {
		return JobView{}, err
	}
	s.misses++
	j := s.newJobLocked(sc, canonical, key, reps, seed, now)
	j.state = StateQueued
	if err := s.journalSubmitLocked(j); err != nil {
		// The ledger could not durably record the job; un-register it and
		// refuse the submission rather than acknowledge a run a restart
		// would silently forget.
		delete(s.jobs, j.id)
		s.order = s.order[:len(s.order)-1]
		s.nextID--
		return JobView{}, fmt.Errorf("journal submission: %w", err)
	}
	s.queue = append(s.queue, j)
	s.inflight[key] = j
	s.cond.Signal()
	return j.view(), nil
}

// lookupCacheLocked consults the in-memory result cache and, on a miss, the
// disk-backed one, promoting a disk hit back into memory. Callers hold the
// mutex. Lookup latency — dominated by the disk tier on memory misses —
// feeds the cache_lookup histogram.
func (s *Service) lookupCacheLocked(key string) (json.RawMessage, bool) {
	t0 := time.Now()
	defer func() { s.histCacheGet.Observe(time.Since(t0)) }()
	if summary, ok := s.cache.get(key); ok {
		return summary, true
	}
	if s.disk == nil {
		return nil, false
	}
	payload, ok := s.disk.Get(key)
	if !ok {
		return nil, false
	}
	s.cache.put(key, payload)
	return payload, true
}

// pruneHistoryLocked forgets the oldest terminal job records beyond the
// history limit, bounding the service's memory over its lifetime. Queued,
// running and coalesced-in-flight jobs are never evicted, and sweep cells
// are excluded — their lifetime is their sweep's, bounded separately by
// pruneSweepsLocked. Callers hold the mutex.
func (s *Service) pruneHistoryLocked() {
	// The terminal counter makes the common case O(1); the O(jobs)
	// compaction walk is amortized by letting the history overshoot the
	// limit by 1/8 before paying for it.
	if s.terminal <= s.historyLimit+s.historyLimit/8 {
		return
	}
	excess := s.terminal - s.historyLimit
	keep := s.order[:0]
	for _, id := range s.order {
		j := s.jobs[id]
		if excess > 0 && j.sweep == nil && j.state.Terminal() {
			delete(s.jobs, id)
			s.terminal--
			excess--
			continue
		}
		keep = append(keep, id)
	}
	s.order = keep
}

// markTerminalLocked records a job's entry into a terminal state: plain jobs
// feed the history accounting, sweep cells feed their sweep's settlement
// tracking instead (cells are retained and pruned with the sweep, so they
// never count against the plain-job history bound). Callers hold the mutex,
// and call this exactly once per job, at its terminal transition.
func (s *Service) markTerminalLocked(j *job) {
	if j.sweep == nil {
		s.terminal++
	}
	s.noteCellSettledLocked(j)
}

// newJobLocked allocates and registers a job record. Callers hold the mutex.
func (s *Service) newJobLocked(sc engine.Scenario, canonical []byte, key string, reps int, seed uint64, now time.Time) *job {
	s.nextID++
	s.submitSeq++
	j := &job{
		id:        fmt.Sprintf("j%08d", s.nextID),
		seq:       s.submitSeq,
		scenario:  sc,
		canonical: canonical,
		key:       key,
		reps:      reps,
		seed:      seed,
		submitted: now,
	}
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
	s.startTraceLocked(j, now)
	return j
}

// startTraceLocked opens the job's flight-recorder timeline. Trace IDs are
// deterministic — "tr-" plus the job ID — so golden responses stay stable
// and a cluster worker's spans stitch into the same timeline by ID alone.
// Callers hold the mutex.
func (s *Service) startTraceLocked(j *job, now time.Time) {
	j.trace = s.rec.Start("tr-"+j.id, j.id)
	j.trace.Add(obs.Span{
		Name:   "submitted",
		Detail: fmt.Sprintf("reps=%d seed=%d", j.reps, j.seed),
		Start:  now,
		End:    now,
	})
}

// grantWorkers decides a dispatched job's share of the worker budget: every
// free worker, capped by the job's repetition count (more workers than
// repetitions would idle). The dispatcher only calls it with free capacity,
// so the grant is always at least 1; a later job can start alongside a
// running one whenever the head job left budget unused.
func grantWorkers(reps, budget, inUse int) int {
	free := budget - inUse
	if free <= 0 {
		return 0
	}
	if reps < free {
		return reps
	}
	return free
}

// dispatch is the scheduler loop: strictly FIFO — the head job waits for
// free budget and nothing overtakes it — with each dispatched job granted
// grantWorkers of the shared budget for its whole run.
func (s *Service) dispatch() {
	defer s.wg.Done()
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		for !s.closed && (len(s.queue) == 0 || s.inUse >= s.budget) {
			s.cond.Wait()
		}
		if s.closed {
			return
		}
		j := s.queue[0]
		s.queue = s.queue[1:]
		workers := grantWorkers(j.reps, s.budget, s.inUse)
		s.inUse += workers
		j.workers = workers
		j.state = StateRunning
		j.started = s.clock()
		j.trace.Add(obs.Span{Name: "queued", Start: j.submitted, End: j.started})
		s.histQueueWait.Observe(j.started.Sub(j.submitted))
		ctx, cancel := context.WithCancel(s.baseCtx)
		j.cancel = cancel
		s.wg.Add(1)
		go s.runJob(j, ctx, cancel, workers)
	}
}

// runJob executes one job through the backend and settles its terminal
// state. The backend's determinism contract means the summary depends only on
// (canonical scenario, seed, reps) — never on the worker grant or on which
// nodes executed which repetitions — which is what makes the result cacheable.
func (s *Service) runJob(j *job, ctx context.Context, cancel context.CancelFunc, workers int) {
	defer s.wg.Done()
	// Release the context on every exit path: a finished job must not stay
	// registered in the base context's children, or daemon memory would grow
	// with lifetime jobs despite the bounded history.
	defer cancel()
	res, err := s.backend.Run(ctx, BackendRun{
		Scenario:  j.scenario,
		Canonical: j.canonical,
		Key:       j.key,
		Reps:      j.reps,
		Seed:      j.seed,
		Workers:   workers,
		Observe: func(delta int64) {
			j.repsDone.Add(delta)
			s.repsDone.Add(delta)
		},
		Compile: j.compile,
		Trace:   j.trace,
	})
	var summary []byte
	if err == nil {
		summary, err = buildSummary(j.key, j.reps, j.seed, res.Completed, res.Stream)
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	s.inUse -= workers
	s.cond.Broadcast()
	j.finished = s.clock()
	j.cancel = nil
	switch {
	case err == nil:
		j.state = StateDone
		j.summary = summary
		s.cache.put(j.key, summary)
		if s.disk != nil {
			// Write through before the settle record: once the ledger calls a
			// run settled, its result must be durably replayable.
			if derr := s.disk.Put(j.key, summary); derr != nil {
				s.log.Warn("service: disk cache write failed", "job", j.id, "key", j.key, "err", derr)
			}
		}
		s.finishedReps += int64(j.reps)
		s.busy += j.finished.Sub(j.started)
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		j.state = StateCancelled
		j.errMsg = "cancelled after " + fmt.Sprint(j.repsDone.Load()) + " repetitions"
	default:
		j.state = StateFailed
		j.errMsg = err.Error()
	}
	j.trace.Add(obs.Span{Name: "run", Detail: fmt.Sprintf("workers=%d", workers), Start: j.started, End: j.finished})
	j.trace.Add(obs.Span{Name: "settled", Detail: string(j.state), Start: j.finished, End: j.finished})
	if j.state == StateDone {
		s.histRun.Observe(j.finished.Sub(j.started))
	}
	s.markTerminalLocked(j)
	if !(j.state == StateCancelled && s.closed) {
		// Shutdown cancellations are not settlements: a gracefully stopped
		// daemon leaves the same ledger a crashed one would, and both resume
		// the run on restart.
		s.journalSettleLocked(j)
	}
	s.settleFollowersLocked(j)
	s.pruneHistoryLocked()
}

// settleFollowersLocked resolves a settled leader's coalesced followers: a
// done or failed leader settles them identically (the engine would have
// produced bit-identical results for them), while a cancelled leader hands
// the run over — the first follower is promoted to a fresh queued leader so
// one client's DELETE cannot kill another client's submission. Callers hold
// the mutex.
func (s *Service) settleFollowersLocked(leader *job) {
	if s.inflight[leader.key] == leader {
		delete(s.inflight, leader.key)
	}
	followers := leader.followers
	leader.followers = nil
	if len(followers) == 0 {
		return
	}
	now := s.clock()
	switch leader.state {
	case StateDone, StateFailed:
		for _, f := range followers {
			f.leader = nil
			f.state = leader.state
			f.summary = leader.summary
			f.errMsg = leader.errMsg
			f.started, f.finished = now, now
			s.markTerminalLocked(f)
			// Recovered followers carry their own ledger entries; settle them.
			s.journalSettleLocked(f)
		}
	case StateCancelled:
		if s.closed {
			for _, f := range followers {
				f.leader = nil
				f.state = StateCancelled
				f.errMsg = "cancelled: service shutting down"
				f.finished = now
				s.markTerminalLocked(f)
			}
			return
		}
		next := followers[0]
		next.leader = nil
		next.followers = followers[1:]
		for _, f := range next.followers {
			f.leader = next
		}
		if !next.journaled && next.sweep == nil {
			// The promoted follower now owns the run; record it so a restart
			// resumes it. Best effort — the submission was already accepted.
			// Sweep cells are never journalled individually: their sweep's
			// record re-plans them, and a duplicate submit record would
			// re-adopt the cell twice.
			if err := s.journalSubmitLocked(next); err != nil {
				s.log.Warn("service: journal promoted follower failed", "job", next.id, "err", err)
			}
		}
		s.queue = append(s.queue, next)
		s.inflight[next.key] = next
		s.cond.Signal()
	}
}

// cancelJob requests cancellation of a job. Queued jobs cancel immediately;
// running jobs have their context cancelled and settle at the next
// repetition boundary. Terminal jobs are rejected with errAlreadyTerminal.
func (s *Service) cancelJob(id string) (JobView, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return JobView{}, errUnknownJob
	}
	switch j.state {
	case StateQueued:
		if j.leader != nil {
			// A coalesced follower detaches from its leader and cancels
			// alone; the leader keeps running.
			for i, f := range j.leader.followers {
				if f == j {
					j.leader.followers = append(j.leader.followers[:i], j.leader.followers[i+1:]...)
					break
				}
			}
			j.leader = nil
		}
		for i, q := range s.queue {
			if q == j {
				s.queue = append(s.queue[:i], s.queue[i+1:]...)
				break
			}
		}
		j.state = StateCancelled
		j.errMsg = "cancelled before start"
		j.finished = s.clock()
		s.markTerminalLocked(j)
		s.journalSettleLocked(j)
		s.settleFollowersLocked(j)
		s.pruneHistoryLocked()
		return j.view(), nil
	case StateRunning:
		if !j.cancelRequested {
			j.cancelRequested = true
			j.cancel()
		}
		return j.view(), nil
	default:
		return j.view(), errAlreadyTerminal
	}
}

// Service-level sentinel errors, mapped to HTTP statuses by the API layer.
var (
	errShutdown        = errors.New("service is shutting down")
	errQueueFull       = errors.New("job queue is full")
	errUnknownJob      = errors.New("no such job")
	errAlreadyTerminal = errors.New("job already finished")
)

// jobView fetches one job's API view.
func (s *Service) jobView(id string) (JobView, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return JobView{}, false
	}
	return j.view(), true
}

// jobViews lists every job in submission order.
func (s *Service) jobViews() []JobView {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]JobView, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.jobs[id].view())
	}
	return out
}

// Metrics is the document served by GET /metrics.
type Metrics struct {
	Jobs struct {
		Queued    int `json:"queued"`
		Running   int `json:"running"`
		Done      int `json:"done"`
		Failed    int `json:"failed"`
		Cancelled int `json:"cancelled"`
	} `json:"jobs"`
	Cache struct {
		Hits   int64 `json:"hits"`
		Misses int64 `json:"misses"`
		// Coalesced counts submissions deduplicated onto an identical
		// in-flight run (neither a hit nor a miss).
		Coalesced int64   `json:"coalesced"`
		HitRate   float64 `json:"hit_rate"`
		Entries   int     `json:"entries"`
	} `json:"cache"`
	Budget struct {
		Total int `json:"total"`
		InUse int `json:"in_use"`
	} `json:"budget"`
	Throughput struct {
		// RepsDone counts every reduced repetition, cancelled jobs included.
		RepsDone int64 `json:"reps_done"`
		// FinishedReps and BusySeconds aggregate jobs that ran to completion;
		// RepsPerSecond is their ratio — per-job-second engine throughput.
		FinishedReps  int64   `json:"finished_reps"`
		BusySeconds   float64 `json:"busy_seconds"`
		RepsPerSecond float64 `json:"reps_per_second"`
	} `json:"throughput"`
	// Cluster carries the coordinator gauges when the backend is distributed;
	// absent under the local backend.
	Cluster *ClusterStats `json:"cluster,omitempty"`
	// Durability carries the persistent-cache and crash-recovery counters
	// when -cache-dir or -state-dir is configured; absent otherwise.
	Durability *DurabilityStats `json:"durability,omitempty"`
	// Sweeps carries the sweep-subsystem counters once a sweep has been
	// submitted or recovered; absent before.
	Sweeps *SweepStats `json:"sweeps,omitempty"`
	// RateLimit carries the admission-limiter counters when -rate is
	// configured; absent otherwise.
	RateLimit *RateLimitStats `json:"rate_limit,omitempty"`
	// Latency summarizes the latency histograms (queue wait, run duration,
	// cache lookup, lease round-trip, HTTP handler) by name; the Prometheus
	// rendering of /metrics exposes the full bucket series.
	Latency map[string]LatencyStats `json:"latency,omitempty"`
}

// LatencyStats is the JSON summary of one latency histogram.
type LatencyStats struct {
	Count      uint64  `json:"count"`
	SumSeconds float64 `json:"sum_seconds"`
	P50Ms      float64 `json:"p50_ms"`
	P90Ms      float64 `json:"p90_ms"`
	P99Ms      float64 `json:"p99_ms"`
}

// RateLimitStats are the per-client admission limiter counters.
type RateLimitStats struct {
	// Rejected counts submissions refused with 429 over the daemon's
	// lifetime.
	Rejected int64 `json:"rejected"`
	// Clients is the number of client buckets currently tracked.
	Clients int `json:"clients"`
}

// DurabilityStats are the persistent-cache and crash-recovery counters.
type DurabilityStats struct {
	// DiskCache holds the persistent result cache counters (nil without
	// -cache-dir).
	DiskCache *store.CacheStats `json:"disk_cache,omitempty"`
	// JobsRecovered counts submissions re-adopted from the run ledger at the
	// last startup.
	JobsRecovered int64 `json:"jobs_recovered"`
	// JournalBytes is the current size of the run ledger on disk.
	JournalBytes int64 `json:"journal_bytes"`
	// JournalCompactions counts snapshot compactions of the run ledger over
	// the daemon's lifetime.
	JournalCompactions int64 `json:"journal_compactions"`
}

// ClusterStats are the coordinator-side gauges of a distributed backend.
type ClusterStats struct {
	// Workers is the number of registered, live worker processes.
	Workers int `json:"workers"`
	// LeasesOutstanding counts rep-range leases currently held by workers.
	LeasesOutstanding int `json:"leases_outstanding"`
	// LeasesReassigned counts leases reclaimed from dead or unresponsive
	// workers and returned to the pool over the coordinator's lifetime.
	LeasesReassigned int64 `json:"leases_reassigned"`
	// RunsReadopted counts in-flight runs re-adopted from the coordinator
	// journal at the last startup.
	RunsReadopted int64 `json:"runs_readopted"`
	// ShardsReplayed counts journalled shard uploads replayed through the
	// exact merger during crash recovery.
	ShardsReplayed int64 `json:"shards_replayed"`
}

// clusterStatser is implemented by distributed backends that export
// coordinator gauges (the cluster.Coordinator).
type clusterStatser interface {
	ClusterStats() ClusterStats
}

// metrics snapshots the service counters.
func (s *Service) metrics() Metrics {
	s.mu.Lock()
	defer s.mu.Unlock()
	var m Metrics
	for _, j := range s.jobs {
		switch j.state {
		case StateQueued:
			m.Jobs.Queued++
		case StateRunning:
			m.Jobs.Running++
		case StateDone:
			m.Jobs.Done++
		case StateFailed:
			m.Jobs.Failed++
		case StateCancelled:
			m.Jobs.Cancelled++
		}
	}
	m.Cache.Hits = s.hits
	m.Cache.Misses = s.misses
	m.Cache.Coalesced = s.coalesced
	if total := s.hits + s.misses; total > 0 {
		m.Cache.HitRate = float64(s.hits) / float64(total)
	}
	m.Cache.Entries = s.cache.len()
	m.Budget.Total = s.budget
	m.Budget.InUse = s.inUse
	m.Throughput.RepsDone = s.repsDone.Load()
	m.Throughput.FinishedReps = s.finishedReps
	m.Throughput.BusySeconds = s.busy.Seconds()
	if s.busy > 0 {
		m.Throughput.RepsPerSecond = float64(s.finishedReps) / s.busy.Seconds()
	}
	if cs, ok := s.backend.(clusterStatser); ok {
		stats := cs.ClusterStats()
		m.Cluster = &stats
	}
	if s.sweepsSubmitted > 0 || s.sweepsRecovered > 0 {
		sw := &SweepStats{
			Submitted: s.sweepsSubmitted,
			Recovered: s.sweepsRecovered,
		}
		for _, id := range s.sweepOrder {
			switch s.sweeps[id].state {
			case StateDone:
				sw.Done++
			case StateFailed:
				sw.Failed++
			case StateCancelled:
				sw.Cancelled++
			default:
				sw.Active++
			}
		}
		m.Sweeps = sw
	}
	if s.limiter != nil {
		m.RateLimit = &RateLimitStats{
			Rejected: s.rateLimited,
			Clients:  len(s.limiter.buckets),
		}
	}
	if s.disk != nil || s.journal != nil {
		d := &DurabilityStats{
			JobsRecovered:      s.jobsRecovered,
			JournalCompactions: s.compactions,
		}
		if s.disk != nil {
			st := s.disk.Stats()
			d.DiskCache = &st
		}
		if s.journal != nil {
			d.JournalBytes = s.journal.Size()
		}
		m.Durability = d
	}
	m.Latency = make(map[string]LatencyStats)
	for _, snap := range s.reg.Snapshots() {
		m.Latency[snap.Name] = LatencyStats{
			Count:      snap.Total(),
			SumSeconds: float64(snap.SumNanos) / 1e9,
			P50Ms:      snap.Quantile(0.5) * 1e3,
			P90Ms:      snap.Quantile(0.9) * 1e3,
			P99Ms:      snap.Quantile(0.99) * 1e3,
		}
	}
	return m
}

// health snapshots the /healthz document: uptime, build identity, and the
// readiness of each configured subsystem. A subsystem that cannot take new
// work (a cluster backend with zero live workers) degrades the status without
// failing the probe — the daemon itself is still alive.
func (s *Service) health() HealthResponse {
	s.mu.Lock()
	defer s.mu.Unlock()
	h := HealthResponse{
		Status:        "ok",
		Version:       s.version,
		UptimeSeconds: s.clock().Sub(s.started).Seconds(),
		Subsystems:    make(map[string]SubsystemHealth),
	}
	if s.journal != nil {
		h.Subsystems["journal"] = SubsystemHealth{
			Ready:  true,
			Detail: fmt.Sprintf("%d bytes", s.journal.Size()),
		}
	}
	if s.disk != nil {
		h.Subsystems["disk_cache"] = SubsystemHealth{
			Ready:  true,
			Detail: fmt.Sprintf("%d entries", s.disk.Stats().Entries),
		}
	}
	if rc, ok := s.backend.(readyChecker); ok {
		sub := SubsystemHealth{Ready: true}
		if err := rc.Ready(); err != nil {
			sub.Ready = false
			sub.Detail = err.Error()
			h.Status = "degraded"
		}
		h.Subsystems["cluster"] = sub
	}
	if len(h.Subsystems) == 0 {
		h.Subsystems = nil
	}
	return h
}

// traceView fetches one run's flight-recorder timeline by job ID. The trace
// lives on the job record, so it is available as long as the job is — the
// recorder's FIFO bound only governs lookups by bare trace ID.
func (s *Service) traceView(id string) (obs.TraceView, bool) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok || j.trace == nil {
		return obs.TraceView{}, false
	}
	return j.trace.View(), true
}
