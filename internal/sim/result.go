// Package sim implements the rumor-spreading processes studied by the paper:
// the asynchronous push-pull algorithm (Definition 1) simulated exactly via
// its informative-contact rates, a naive clock-tick simulator used for
// cross-validation, the synchronous push-pull algorithm, push-only and
// pull-only variants, and flooding.
package sim

import "sort"

// TracePoint records the number of informed vertices at a point in time.
type TracePoint struct {
	Time     float64
	Informed int
}

// Result describes one execution of a rumor-spreading process.
type Result struct {
	// SpreadTime is the time at which the last vertex became informed.
	// For synchronous processes it is the (integer) number of rounds.
	SpreadTime float64
	// Informed is the number of informed vertices when the run ended.
	Informed int
	// N is the number of vertices in the network.
	N int
	// Completed is true if every vertex was informed before the time limit.
	Completed bool
	// Steps is the number of integer time boundaries crossed (i.e. how many
	// graphs of the dynamic network were exposed to the process).
	Steps int
	// Events is the number of informative contacts (asynchronous processes)
	// or the total number of newly informed vertices (synchronous processes).
	Events int
	// Trace, if recorded, holds one point per newly informed vertex.
	Trace []TracePoint
}

// Coverage returns the fraction of informed vertices at the end of the run.
func (r *Result) Coverage() float64 {
	if r.N == 0 {
		return 0
	}
	return float64(r.Informed) / float64(r.N)
}

// TimeToReach returns the earliest traced time at which at least count
// vertices were informed, and whether that count was reached. It requires the
// run to have been executed with trace recording enabled. Informed counts are
// non-decreasing along the trace, so the lookup binary-searches in O(log n).
func (r *Result) TimeToReach(count int) (float64, bool) {
	idx := sort.Search(len(r.Trace), func(i int) bool { return r.Trace[i].Informed >= count })
	if idx == len(r.Trace) {
		return 0, false
	}
	return r.Trace[idx].Time, true
}
