package sim

import (
	"testing"

	"dynamicrumor/internal/dynamic"
	"dynamicrumor/internal/gen"
	"dynamicrumor/internal/stats"
	"dynamicrumor/internal/xrand"
)

func TestRunAsyncNaiveCompletes(t *testing.T) {
	rng := xrand.New(1)
	nets := map[string]dynamic.Network{
		"clique": dynamic.NewStatic(gen.Clique(12)),
		"star":   dynamic.NewStatic(gen.Star(12, 0)),
		"cycle":  dynamic.NewStatic(gen.Cycle(12)),
	}
	for name, net := range nets {
		res, err := RunAsyncNaive(net, AsyncOptions{Start: 0, RecordTrace: true}, rng)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !res.Completed || res.Informed != net.N() {
			t.Fatalf("%s: incomplete run %+v", name, res)
		}
		if res.SpreadTime <= 0 {
			t.Fatalf("%s: non-positive spread time", name)
		}
	}
}

func TestRunAsyncNaiveSingleVertex(t *testing.T) {
	net := dynamic.NewStatic(gen.Clique(1))
	res, err := RunAsyncNaive(net, AsyncOptions{Start: 0}, xrand.New(2))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed || res.SpreadTime != 0 {
		t.Fatalf("unexpected result %+v", res)
	}
}

func TestRunAsyncNaiveMaxTime(t *testing.T) {
	net := dynamic.NewStatic(gen.Path(100))
	res, err := RunAsyncNaive(net, AsyncOptions{Start: 0, MaxTime: 0.5}, xrand.New(3))
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed {
		t.Fatal("naive run should have been cut off")
	}
}

func TestRunAsyncNaiveModes(t *testing.T) {
	rng := xrand.New(4)
	net := dynamic.NewStatic(gen.Clique(10))
	for _, mode := range []Mode{PushOnly, PullOnly, PushPull} {
		res, err := RunAsyncNaive(net, AsyncOptions{Start: 0, Mode: mode}, rng)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Completed {
			t.Fatalf("mode %v did not complete", mode)
		}
	}
}

func TestRunAsyncNaiveTwoVertexMeanIsHalf(t *testing.T) {
	// Two vertices joined by an edge: each has a rate-1 clock and always
	// contacts the other, so the first contact happens at an Exp(2) time with
	// mean 1/2. This checks the clock mechanics of the naive simulator (and,
	// via the cross-validation test, of the fast simulator too).
	net := dynamic.NewStatic(gen.Path(2))
	rng := xrand.New(5)
	var times []float64
	for rep := 0; rep < 4000; rep++ {
		res, err := RunAsyncNaive(net, AsyncOptions{Start: 0}, rng)
		if err != nil {
			t.Fatal(err)
		}
		times = append(times, res.SpreadTime)
	}
	mean := stats.Mean(times)
	if mean < 0.45 || mean > 0.55 {
		t.Fatalf("two-vertex mean spread time %v, want about 0.5", mean)
	}
}

func TestRunAsyncFastTwoVertexMeanIsHalf(t *testing.T) {
	net := dynamic.NewStatic(gen.Path(2))
	rng := xrand.New(6)
	var times []float64
	for rep := 0; rep < 4000; rep++ {
		res, err := RunAsync(net, AsyncOptions{Start: 0}, rng)
		if err != nil {
			t.Fatal(err)
		}
		times = append(times, res.SpreadTime)
	}
	mean := stats.Mean(times)
	if mean < 0.45 || mean > 0.55 {
		t.Fatalf("two-vertex mean spread time %v, want about 0.5", mean)
	}
}

func TestRunAsyncNaiveStepsAdvanceWithDynamicNetwork(t *testing.T) {
	// A path that only becomes a clique at step 3: the naive simulator must
	// cross at least 3 boundaries when started from an end of the path.
	rng := xrand.New(7)
	slow := gen.Path(6)
	fast := gen.Clique(6)
	seq := dynamic.NewSequence(repeatGraphs(slow, 3, fast))
	res, err := RunAsyncNaive(seq, AsyncOptions{Start: 0}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatal("did not complete")
	}
	if res.Steps < 1 {
		t.Fatal("expected at least one boundary crossing")
	}
}
