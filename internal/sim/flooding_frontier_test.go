package sim

import (
	"testing"

	"dynamicrumor/internal/dynamic"
	"dynamicrumor/internal/graph"
	"dynamicrumor/internal/xrand"
)

// referenceFlooding is the pre-frontier scan-every-vertex implementation,
// kept verbatim as the oracle for the frontier rewrite.
func referenceFlooding(net dynamic.Network, opts SyncOptions) *Result {
	n := net.N()
	maxRounds := opts.MaxRounds
	if maxRounds <= 0 {
		maxRounds = 16 * n * n
	}
	informed := make([]bool, n)
	next := make([]bool, n)
	informed[opts.Start] = true
	res := &Result{N: n, Informed: 1}
	if opts.RecordTrace {
		res.Trace = append(res.Trace, TracePoint{Time: 0, Informed: 1})
	}
	if n == 1 {
		res.Completed = true
		return res
	}
	for round := 0; round < maxRounds; round++ {
		g := net.GraphAt(round, informed)
		res.Steps++
		copy(next, informed)
		newCount := 0
		for v := 0; v < n; v++ {
			if !informed[v] {
				continue
			}
			for _, u := range g.Neighbors(v) {
				if !next[u] {
					next[u] = true
					newCount++
				}
			}
		}
		copy(informed, next)
		res.Informed += newCount
		res.Events += newCount
		res.SpreadTime = float64(round + 1)
		if opts.RecordTrace && newCount > 0 {
			res.Trace = append(res.Trace, TracePoint{Time: res.SpreadTime, Informed: res.Informed})
		}
		if res.Informed == n {
			res.Completed = true
			return res
		}
	}
	return res
}

// floodingNets builds a bestiary of static and dynamic networks covering the
// frontier fast path (stable graph pointer), the rebuild-every-step full
// rescan, and mixes of the two.
func floodingNets(t *testing.T) map[string]func() dynamic.Network {
	t.Helper()
	return map[string]func() dynamic.Network{
		"static-ring": func() dynamic.Network {
			return dynamic.NewStatic(ringGraph(257))
		},
		"static-star": func() dynamic.Network {
			return dynamic.NewStatic(graph.StarInto(nil, 64, 5))
		},
		"alternating": func() dynamic.Network {
			// Pointer changes every round: exercises the permanent full-rescan
			// branch, including rounds where the new graph reconnects stale
			// informed vertices to fresh ones.
			return dynamic.NewAlternating([]*graph.Graph{
				ringGraph(120),
				graph.StarInto(nil, 120, 7),
			})
		},
		"adaptive-star": func() dynamic.Network {
			// The dynamic star: long same-pointer stretches punctuated by
			// center moves, driven by the informed set.
			net, err := dynamic.NewDichotomyG2(80, xrand.New(3))
			if err != nil {
				t.Fatal(err)
			}
			return net
		},
		"disconnected": func() dynamic.Network {
			// Two components: flooding stalls with a permanently empty
			// frontier and must hit the round cap with identical counts.
			b := graph.NewBuilder(10)
			for v := 0; v < 4; v++ {
				b.AddEdge(v, (v+1)%5)
			}
			for v := 5; v < 9; v++ {
				b.AddEdge(v, v+1)
			}
			return dynamic.NewStatic(b.Build())
		},
	}
}

// TestFloodingFrontierMatchesReference is the old-vs-new equivalence gate for
// the frontier rewrite: every field of the result, including the trace, must
// be identical on every network shape. Flooding consumes no randomness, so
// this is an exact, deterministic comparison.
func TestFloodingFrontierMatchesReference(t *testing.T) {
	sc := NewScratch()
	var reused Result
	for name, build := range floodingNets(t) {
		opts := SyncOptions{Start: 1, RecordTrace: true}
		if name == "disconnected" {
			opts.MaxRounds = 40
		}
		want := referenceFlooding(build(), opts)
		got, err := RunFloodingInto(build(), opts, xrand.New(1), sc, &reused)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if got.SpreadTime != want.SpreadTime || got.Informed != want.Informed ||
			got.Steps != want.Steps || got.Events != want.Events ||
			got.Completed != want.Completed || got.N != want.N {
			t.Fatalf("%s: frontier flooding diverged: got %+v, want %+v", name, got, want)
		}
		if len(got.Trace) != len(want.Trace) {
			t.Fatalf("%s: trace length %d, want %d", name, len(got.Trace), len(want.Trace))
		}
		for i := range want.Trace {
			if got.Trace[i] != want.Trace[i] {
				t.Fatalf("%s: trace point %d differs: got %+v, want %+v", name, i, got.Trace[i], want.Trace[i])
			}
		}
	}
}
