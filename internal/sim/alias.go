package sim

import "dynamicrumor/internal/xrand"

// aliasTable is a Walker/Vose alias table over non-negative weights: O(n)
// build, O(1) weighted sampling (one Intn plus one Float64 per draw). Unlike
// the Fenwick tree it cannot be updated incrementally, so the v2 stream
// discipline uses it as a frozen snapshot inside a rejection envelope and
// rebuilds it wholesale when the live weights drift too far (see
// asyncStateV2). Zero-weight indices are never returned: every cell's
// acceptance threshold is exactly 0 when its weight is 0, and its alias
// always points at a positively weighted index.
type aliasTable struct {
	prob   []float64 // acceptance threshold per cell, in [0, 1]
	alias  []int32   // fallback index per cell
	weight []float64 // the snapshot weights the table was built from
	total  float64
	// small and large are the build's worklists, retained across rebuilds so
	// a steady-state rebuild allocates nothing.
	small, large []int32
}

// build constructs the table from the given weights (negative weights are
// treated as 0), reusing every backing array. It is O(len(weights)).
func (a *aliasTable) build(weights []float64) {
	n := len(weights)
	a.prob = growFloats(a.prob, n)
	a.weight = growFloats(a.weight, n)
	a.alias = growInt32s(a.alias, n)
	a.small = a.small[:0]
	a.large = a.large[:0]
	a.total = 0
	for i, w := range weights {
		if w < 0 {
			w = 0
		}
		a.weight[i] = w
		a.total += w
	}
	if a.total <= 0 || n == 0 {
		a.total = 0
		for i := range a.prob {
			a.prob[i] = 0
			a.alias[i] = 0
		}
		return
	}
	// Vose's method: scale every weight to mean 1, then pair each deficient
	// ("small") cell with a surplus ("large") cell so each cell holds at most
	// two indices. prob is reused as the scaled-weight scratch during the
	// build; each cell's final threshold is written exactly once, when the
	// cell is popped from a worklist.
	scale := float64(n) / a.total
	fallback := int32(-1) // any positively weighted index
	for i, w := range a.weight {
		a.prob[i] = w * scale
		if a.prob[i] < 1 {
			a.small = append(a.small, int32(i))
		} else {
			a.large = append(a.large, int32(i))
			fallback = int32(i)
		}
	}
	for len(a.small) > 0 && len(a.large) > 0 {
		s := a.small[len(a.small)-1]
		a.small = a.small[:len(a.small)-1]
		l := a.large[len(a.large)-1]
		a.alias[s] = l
		// a.prob[s] is already its final threshold. The large cell absorbs the
		// small cell's deficit.
		a.prob[l] -= 1 - a.prob[s]
		if a.prob[l] < 1 {
			a.large = a.large[:len(a.large)-1]
			a.small = append(a.small, l)
		}
	}
	// Leftovers are a rounding artifact: their scaled weight is 1 up to
	// floating-point error. Positively weighted leftovers accept
	// unconditionally; a zero-weight leftover (possible only through rounding
	// exhausting the large list early) must keep threshold 0 and a positive
	// alias so the support stays exact.
	for _, ls := range [][]int32{a.large, a.small} {
		for _, i := range ls {
			if a.weight[i] > 0 {
				a.prob[i] = 1
				a.alias[i] = i
				fallback = i
			}
		}
	}
	for _, ls := range [][]int32{a.large, a.small} {
		for _, i := range ls {
			if a.weight[i] <= 0 {
				a.prob[i] = 0
				a.alias[i] = fallback
			}
		}
	}
	a.small = a.small[:0]
	a.large = a.large[:0]
}

// sample draws an index proportionally to the build weights, consuming one
// Intn draw and one Float64 draw. It returns -1 when every weight is zero.
func (a *aliasTable) sample(rng *xrand.RNG) int {
	if a.total <= 0 {
		return -1
	}
	i := rng.Intn(len(a.prob))
	if rng.Float64() < a.prob[i] {
		return i
	}
	return int(a.alias[i])
}

// growFloats returns a slice of length n reusing s's backing array when
// possible, mirroring growBools/growInts in scratch.go.
func growFloats(s []float64, n int) []float64 {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]float64, n)
}

func growInt32s(s []int32, n int) []int32 {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]int32, n)
}
