package sim

import (
	"math"
	"testing"

	"dynamicrumor/internal/dynamic"
	"dynamicrumor/internal/gen"
	"dynamicrumor/internal/stats"
	"dynamicrumor/internal/xrand"
)

func TestRunSyncSingleVertex(t *testing.T) {
	net := dynamic.NewStatic(gen.Clique(1))
	res, err := RunSync(net, SyncOptions{Start: 0}, xrand.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed || res.SpreadTime != 0 {
		t.Fatalf("unexpected result %+v", res)
	}
}

func TestRunSyncInvalidStart(t *testing.T) {
	net := dynamic.NewStatic(gen.Clique(4))
	if _, err := RunSync(net, SyncOptions{Start: 4}, xrand.New(1)); err != ErrInvalidStart {
		t.Fatalf("error = %v, want ErrInvalidStart", err)
	}
	if _, err := RunFlooding(net, SyncOptions{Start: -1}, xrand.New(1)); err != ErrInvalidStart {
		t.Fatalf("flooding error = %v, want ErrInvalidStart", err)
	}
}

func TestRunSyncCliqueLogarithmicRounds(t *testing.T) {
	rng := xrand.New(2)
	const n = 256
	net := dynamic.NewStatic(gen.Clique(n))
	var rounds []float64
	for rep := 0; rep < 20; rep++ {
		res, err := RunSync(net, SyncOptions{Start: 0}, rng)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Completed {
			t.Fatal("did not complete")
		}
		rounds = append(rounds, res.SpreadTime)
	}
	mean := stats.Mean(rounds)
	log2n := math.Log2(float64(n))
	if mean < log2n/2 || mean > 4*log2n {
		t.Fatalf("clique sync rounds %v, want Θ(log n) ≈ %v", mean, log2n)
	}
}

func TestRunSyncTwoVertices(t *testing.T) {
	// Two vertices joined by an edge: the first round always informs the
	// other vertex (push or pull), so the spread time is exactly 1.
	net := dynamic.NewStatic(gen.Path(2))
	for seed := uint64(0); seed < 10; seed++ {
		res, err := RunSync(net, SyncOptions{Start: 0}, xrand.New(seed))
		if err != nil {
			t.Fatal(err)
		}
		if res.SpreadTime != 1 {
			t.Fatalf("seed %d: spread time %v, want 1", seed, res.SpreadTime)
		}
	}
}

func TestRunSyncStartOfRoundSemantics(t *testing.T) {
	// Path 0-1-2, start at 0. In round 1 vertex 1 gets informed (push from 0
	// or pull by 1), but vertex 2 cannot learn in the same round because
	// exchanges use the start-of-round informed set. So the spread time is at
	// least 2.
	net := dynamic.NewStatic(gen.Path(3))
	for seed := uint64(0); seed < 20; seed++ {
		res, err := RunSync(net, SyncOptions{Start: 0}, xrand.New(seed))
		if err != nil {
			t.Fatal(err)
		}
		if res.SpreadTime < 2 {
			t.Fatalf("seed %d: spread time %v < 2 violates round semantics", seed, res.SpreadTime)
		}
	}
}

func TestRunSyncDynamicStarTakesExactlyNRounds(t *testing.T) {
	// Theorem 1.7(ii): on the dynamic star G2 the synchronous algorithm needs
	// exactly n rounds (one new vertex per round).
	for _, n := range []int{8, 16, 32} {
		rng := xrand.New(uint64(n))
		net, err := dynamic.NewDichotomyG2(n, rng.Split(1))
		if err != nil {
			t.Fatal(err)
		}
		res, err := RunSync(net, SyncOptions{Start: net.StartVertex()}, rng.Split(2))
		if err != nil {
			t.Fatal(err)
		}
		if !res.Completed {
			t.Fatalf("n=%d: did not complete", n)
		}
		if res.SpreadTime != float64(n) {
			t.Fatalf("n=%d: sync spread time %v, want exactly n", n, res.SpreadTime)
		}
	}
}

func TestRunSyncMaxRounds(t *testing.T) {
	rng := xrand.New(3)
	net := dynamic.NewStatic(gen.Path(100))
	res, err := RunSync(net, SyncOptions{Start: 0, MaxRounds: 3}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed {
		t.Fatal("should not have completed in 3 rounds on a long path")
	}
	if res.SpreadTime != 3 {
		t.Fatalf("spread time %v, want 3 (the cutoff)", res.SpreadTime)
	}
}

func TestRunSyncModes(t *testing.T) {
	rng := xrand.New(4)
	net := dynamic.NewStatic(gen.Clique(32))
	for _, mode := range []Mode{PushOnly, PullOnly, PushPull} {
		res, err := RunSync(net, SyncOptions{Start: 0, Mode: mode, RecordTrace: true}, rng)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Completed {
			t.Fatalf("mode %v did not complete", mode)
		}
		if len(res.Trace) == 0 {
			t.Fatalf("mode %v: trace empty", mode)
		}
	}
}

func TestRunSyncPushOnlySlowerThanPushPullOnStar(t *testing.T) {
	// On a static star started at a leaf, push-only needs the center to
	// contact every leaf (coupon collector, Θ(n log n) rounds), while
	// push-pull needs Θ(log n) because leaves pull. Compare medians.
	const n = 24
	net := dynamic.NewStatic(gen.Star(n, 0))
	median := func(mode Mode, seed uint64) float64 {
		rng := xrand.New(seed)
		var rounds []float64
		for rep := 0; rep < 15; rep++ {
			res, err := RunSync(net, SyncOptions{Start: 1, Mode: mode}, rng)
			if err != nil {
				t.Fatal(err)
			}
			rounds = append(rounds, res.SpreadTime)
		}
		return stats.Quantile(rounds, 0.5)
	}
	pushOnly := median(PushOnly, 10)
	pushPull := median(PushPull, 20)
	if pushOnly <= pushPull {
		t.Fatalf("push-only median %v should exceed push-pull median %v on a star", pushOnly, pushPull)
	}
}

func TestRunFloodingPath(t *testing.T) {
	// Flooding on a path from one end takes exactly n-1 rounds.
	const n = 17
	net := dynamic.NewStatic(gen.Path(n))
	res, err := RunFlooding(net, SyncOptions{Start: 0}, xrand.New(5))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed || res.SpreadTime != float64(n-1) {
		t.Fatalf("flooding on path: %+v, want spread time %d", res, n-1)
	}
}

func TestRunFloodingClique(t *testing.T) {
	net := dynamic.NewStatic(gen.Clique(10))
	res, err := RunFlooding(net, SyncOptions{Start: 3}, xrand.New(6))
	if err != nil {
		t.Fatal(err)
	}
	if res.SpreadTime != 1 {
		t.Fatalf("flooding on clique took %v rounds, want 1", res.SpreadTime)
	}
}

func TestRunFloodingMaxRounds(t *testing.T) {
	net := dynamic.NewStatic(gen.Path(50))
	res, err := RunFlooding(net, SyncOptions{Start: 0, MaxRounds: 5, RecordTrace: true}, xrand.New(7))
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed || res.Informed != 6 {
		t.Fatalf("flooding cut off: %+v, want 6 informed after 5 rounds", res)
	}
}

func TestRunFloodingSingleVertex(t *testing.T) {
	net := dynamic.NewStatic(gen.Clique(1))
	res, err := RunFlooding(net, SyncOptions{Start: 0}, xrand.New(8))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatal("single vertex should complete immediately")
	}
}

func TestRunSyncFasterThanAsyncOnG1(t *testing.T) {
	// Theorem 1.7(i): on G1 the synchronous algorithm is Θ(log n) while the
	// asynchronous one takes Ω(n) time with constant probability (whenever
	// the pendant edge stays silent during [0,1)). Check that a constant
	// fraction of async runs reach the Ω(n) scale while every sync run stays
	// logarithmic.
	const n = 200
	const reps = 30
	slowAsync := 0
	var syncTimes []float64
	for rep := 0; rep < reps; rep++ {
		rng := xrand.New(uint64(100 + rep))
		net, err := dynamic.NewDichotomyG1(n)
		if err != nil {
			t.Fatal(err)
		}
		rs, err := RunSync(net, SyncOptions{Start: net.StartVertex()}, rng.Split(1))
		if err != nil {
			t.Fatal(err)
		}
		syncTimes = append(syncTimes, rs.SpreadTime)

		net2, err := dynamic.NewDichotomyG1(n)
		if err != nil {
			t.Fatal(err)
		}
		ra, err := RunAsync(net2, AsyncOptions{Start: net2.StartVertex()}, rng.Split(2))
		if err != nil {
			t.Fatal(err)
		}
		if ra.SpreadTime >= float64(n)/20 {
			slowAsync++
		}
	}
	if slowAsync < 3 {
		t.Fatalf("only %d of %d async runs reached the Ω(n) scale on G1", slowAsync, reps)
	}
	if m := stats.Mean(syncTimes); m > 4*math.Log2(float64(n))+5 {
		t.Fatalf("sync mean %v on G1 is not Θ(log n)", m)
	}
}

func TestRunAsyncFasterThanSyncOnG2(t *testing.T) {
	// Theorem 1.7(ii): on the dynamic star the asynchronous algorithm is
	// Θ(log n) while the synchronous one needs n rounds.
	const n = 64
	var syncTimes, asyncTimes []float64
	for rep := 0; rep < 10; rep++ {
		rng := xrand.New(uint64(200 + rep))
		netS, err := dynamic.NewDichotomyG2(n, rng.Split(1))
		if err != nil {
			t.Fatal(err)
		}
		rs, err := RunSync(netS, SyncOptions{Start: netS.StartVertex()}, rng.Split(2))
		if err != nil {
			t.Fatal(err)
		}
		syncTimes = append(syncTimes, rs.SpreadTime)

		netA, err := dynamic.NewDichotomyG2(n, rng.Split(3))
		if err != nil {
			t.Fatal(err)
		}
		ra, err := RunAsync(netA, AsyncOptions{Start: netA.StartVertex()}, rng.Split(4))
		if err != nil {
			t.Fatal(err)
		}
		asyncTimes = append(asyncTimes, ra.SpreadTime)
	}
	if stats.Mean(asyncTimes) >= stats.Mean(syncTimes) {
		t.Fatalf("async mean %v should be far below sync mean %v on the dynamic star",
			stats.Mean(asyncTimes), stats.Mean(syncTimes))
	}
}
