package sim

import (
	"testing"

	"dynamicrumor/internal/graph"
	"dynamicrumor/internal/xrand"
)

// buildString returns a string of complete bipartite graphs S_0-...-S_k with
// layer size delta, plus the layer structure.
func buildString(k, delta int) (*graph.Graph, [][]int) {
	n := (k + 1) * delta
	b := graph.NewBuilder(n)
	layers := make([][]int, k+1)
	for i := 0; i <= k; i++ {
		for j := 0; j < delta; j++ {
			layers[i] = append(layers[i], i*delta+j)
		}
	}
	for i := 0; i < k; i++ {
		for _, u := range layers[i] {
			for _, v := range layers[i+1] {
				b.AddEdge(u, v)
			}
		}
	}
	return b.Build(), layers
}

func TestForwardTwoPushBasic(t *testing.T) {
	g, layers := buildString(3, 4)
	rng := xrand.New(1)
	res, err := RunForwardTwoPush(g, LayeredOptions{Layers: layers, Horizon: 100}, rng)
	if err != nil {
		t.Fatal(err)
	}
	// With a huge horizon the rumor certainly reaches the last layer.
	if !res.ReachedLast {
		t.Fatal("forward 2-push did not reach the last layer despite a huge horizon")
	}
	if res.FirstReachTime <= 0 || res.FirstReachTime > 100 {
		t.Fatalf("first reach time %v out of range", res.FirstReachTime)
	}
	if res.InformedPerLayer[0] != 4 {
		t.Fatalf("layer 0 informed = %d, want 4", res.InformedPerLayer[0])
	}
}

func TestForwardTwoPushLayerZeroOnlyGrowsForward(t *testing.T) {
	g, layers := buildString(2, 3)
	rng := xrand.New(2)
	res, err := RunForwardTwoPush(g, LayeredOptions{Layers: layers, Horizon: 0.2}, rng)
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range res.InformedPerLayer {
		if c > len(layers[i]) {
			t.Fatalf("layer %d informed %d exceeds its size %d", i, c, len(layers[i]))
		}
	}
}

func TestTwoPushOnLayersBasic(t *testing.T) {
	g, layers := buildString(3, 4)
	rng := xrand.New(3)
	res, err := RunTwoPushOnLayers(g, LayeredOptions{Layers: layers, Horizon: 200}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if !res.ReachedLast {
		t.Fatal("2-push did not reach the last layer despite a huge horizon")
	}
}

func TestLayeredBadInput(t *testing.T) {
	g, layers := buildString(2, 3)
	rng := xrand.New(4)
	if _, err := RunForwardTwoPush(g, LayeredOptions{Layers: layers[:1]}, rng); err != ErrBadLayers {
		t.Fatalf("single layer error = %v, want ErrBadLayers", err)
	}
	if _, err := RunTwoPushOnLayers(g, LayeredOptions{Layers: [][]int{{0}, {}}}, rng); err != ErrBadLayers {
		t.Fatalf("empty layer error = %v, want ErrBadLayers", err)
	}
	if _, err := RunForwardTwoPush(g, LayeredOptions{Layers: [][]int{{0}, {99}}}, rng); err != ErrBadLayers {
		t.Fatalf("out-of-range vertex error = %v, want ErrBadLayers", err)
	}
	if _, err := RunForwardTwoPush(g, LayeredOptions{Layers: [][]int{{0, 1}, {1}}}, rng); err != ErrBadLayers {
		t.Fatalf("duplicated vertex error = %v, want ErrBadLayers", err)
	}
}

func TestLemma42ExpectedInformedAtLastLayer(t *testing.T) {
	// Lemma 4.2: for the forward 2-push over k layers of size Δ, starting
	// with S_0 fully informed, E[I(1,k)] <= (2^k / k!) · Δ.
	if testing.Short() {
		t.Skip("Monte-Carlo bound check")
	}
	const k, delta, reps = 5, 8, 3000
	g, layers := buildString(k, delta)
	rng := xrand.New(5)
	sum := 0.0
	for rep := 0; rep < reps; rep++ {
		res, err := RunForwardTwoPush(g, LayeredOptions{Layers: layers, Horizon: 1}, rng)
		if err != nil {
			t.Fatal(err)
		}
		sum += float64(res.InformedPerLayer[k])
	}
	mean := sum / reps
	wantBound := (32.0 / 120.0) * delta // 2^5/5! · Δ ≈ 2.13
	// Allow Monte-Carlo slack of 3 standard errors on top of the bound.
	if mean > wantBound*1.15+0.1 {
		t.Fatalf("E[I(1,%d)] ≈ %.3f exceeds the Lemma 4.2 bound %.3f", k, mean, wantBound)
	}
}

func TestClaim43ForwardDominatesTwoPushAtLastLayer(t *testing.T) {
	// Claim 4.3: the probability that the 2-push reaches the last layer
	// within one unit of time is at most the probability that the forward
	// 2-push does. Compare empirical frequencies.
	if testing.Short() {
		t.Skip("Monte-Carlo coupling check")
	}
	const k, delta, reps = 3, 6, 2500
	g, layers := buildString(k, delta)
	rngF := xrand.New(6)
	rngT := xrand.New(7)
	reachedForward, reachedTwoPush := 0, 0
	for rep := 0; rep < reps; rep++ {
		rf, err := RunForwardTwoPush(g, LayeredOptions{Layers: layers, Horizon: 1}, rngF)
		if err != nil {
			t.Fatal(err)
		}
		if rf.ReachedLast {
			reachedForward++
		}
		rt, err := RunTwoPushOnLayers(g, LayeredOptions{Layers: layers, Horizon: 1}, rngT)
		if err != nil {
			t.Fatal(err)
		}
		if rt.ReachedLast {
			reachedTwoPush++
		}
	}
	pF := float64(reachedForward) / reps
	pT := float64(reachedTwoPush) / reps
	// Allow 3 standard errors of slack (~0.03 at these probabilities).
	if pT > pF+0.04 {
		t.Fatalf("2-push reach probability %.3f exceeds forward 2-push %.3f, contradicting Claim 4.3", pT, pF)
	}
}

func TestForwardTwoPushGrowthMatchesInduction(t *testing.T) {
	// The inductive bound in the proof of Lemma 4.2 gives
	// E[I(1, i)] <= 2^i/i! · Δ for every layer i; check a couple of layers.
	if testing.Short() {
		t.Skip("Monte-Carlo bound check")
	}
	const k, delta, reps = 4, 6, 3000
	g, layers := buildString(k, delta)
	rng := xrand.New(8)
	sums := make([]float64, k+1)
	for rep := 0; rep < reps; rep++ {
		res, err := RunForwardTwoPush(g, LayeredOptions{Layers: layers, Horizon: 1}, rng)
		if err != nil {
			t.Fatal(err)
		}
		for i, c := range res.InformedPerLayer {
			sums[i] += float64(c)
		}
	}
	factorial := 1.0
	power := 1.0
	for i := 1; i <= k; i++ {
		factorial *= float64(i)
		power *= 2
		mean := sums[i] / reps
		boundVal := power / factorial * delta
		if mean > boundVal*1.15+0.1 {
			t.Errorf("layer %d: mean %.3f exceeds the inductive bound %.3f", i, mean, boundVal)
		}
	}
}
