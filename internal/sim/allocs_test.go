package sim

import (
	"testing"

	"dynamicrumor/internal/dynamic"
	"dynamicrumor/internal/graph"
	"dynamicrumor/internal/xrand"
)

// ringGraph builds a small circulant so the tests do not depend on gen
// (which would be an import cycle).
func ringGraph(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for v := 0; v < n; v++ {
		b.AddEdge(v, (v+1)%n)
		b.AddEdge(v, (v+2)%n)
	}
	return b.Build()
}

// TestRunAsyncIntoAllocFree is the per-repetition allocation gate of the
// simulate loop: with a warmed scratch and a recycled result, a full
// asynchronous repetition on a prebuilt network performs zero steady-state
// heap allocations. (A Monte-Carlo worker also rebuilds its network per
// repetition — that cost is the network family's business and is gated by
// the dynamic package's per-step tests.)
func TestRunAsyncIntoAllocFree(t *testing.T) {
	net := dynamic.NewStatic(ringGraph(512))
	rng := xrand.New(9)
	sc := NewScratch()
	var res Result
	run := func() {
		if _, err := RunAsyncInto(net, AsyncOptions{Start: 0}, rng, sc, &res); err != nil {
			t.Fatal(err)
		}
		if !res.Completed {
			t.Fatal("run did not complete")
		}
	}
	run() // warm up the scratch arrays
	if allocs := testing.AllocsPerRun(20, run); allocs != 0 {
		t.Fatalf("async repetition allocates %.2f times, want 0", allocs)
	}
}

// TestRunSyncIntoAllocFree is the synchronous equivalent.
func TestRunSyncIntoAllocFree(t *testing.T) {
	net := dynamic.NewStatic(ringGraph(512))
	rng := xrand.New(10)
	sc := NewScratch()
	var res Result
	run := func() {
		if _, err := RunSyncInto(net, SyncOptions{Start: 0}, rng, sc, &res); err != nil {
			t.Fatal(err)
		}
	}
	run()
	if allocs := testing.AllocsPerRun(20, run); allocs != 0 {
		t.Fatalf("sync repetition allocates %.2f times, want 0", allocs)
	}
}

// TestRunFloodingIntoAllocFree covers the flooding baseline.
func TestRunFloodingIntoAllocFree(t *testing.T) {
	net := dynamic.NewStatic(ringGraph(512))
	rng := xrand.New(11)
	sc := NewScratch()
	var res Result
	run := func() {
		if _, err := RunFloodingInto(net, SyncOptions{Start: 0}, rng, sc, &res); err != nil {
			t.Fatal(err)
		}
	}
	run()
	if allocs := testing.AllocsPerRun(20, run); allocs != 0 {
		t.Fatalf("flooding repetition allocates %.2f times, want 0", allocs)
	}
}

// TestRunIntoMatchesRun pins the recycling contract: Run and RunInto must
// consume the same stream and produce identical results, including when one
// scratch and result are reused across runs of different sizes and modes.
func TestRunIntoMatchesRun(t *testing.T) {
	sc := NewScratch()
	var reused Result
	for trial, n := range []int{5, 97, 31, 256, 8} {
		g := ringGraph(n)
		net := dynamic.NewStatic(g)
		opts := AsyncOptions{Start: trial % n, RecordTrace: true}
		want, err := RunAsync(net, opts, xrand.New(uint64(trial)))
		if err != nil {
			t.Fatal(err)
		}
		got, err := RunAsyncInto(net, opts, xrand.New(uint64(trial)), sc, &reused)
		if err != nil {
			t.Fatal(err)
		}
		if got.SpreadTime != want.SpreadTime || got.Informed != want.Informed ||
			got.Steps != want.Steps || got.Events != want.Events ||
			got.Completed != want.Completed || len(got.Trace) != len(want.Trace) {
			t.Fatalf("n=%d: RunAsyncInto diverged from RunAsync: got %+v, want %+v", n, got, want)
		}
		for i := range want.Trace {
			if got.Trace[i] != want.Trace[i] {
				t.Fatalf("n=%d: trace point %d differs", n, i)
			}
		}

		sopts := SyncOptions{Start: trial % n, RecordTrace: true}
		wantS, err := RunSync(net, sopts, xrand.New(uint64(trial)+100))
		if err != nil {
			t.Fatal(err)
		}
		gotS, err := RunSyncInto(net, sopts, xrand.New(uint64(trial)+100), sc, &reused)
		if err != nil {
			t.Fatal(err)
		}
		if gotS.SpreadTime != wantS.SpreadTime || gotS.Informed != wantS.Informed || len(gotS.Trace) != len(wantS.Trace) {
			t.Fatalf("n=%d: RunSyncInto diverged from RunSync", n)
		}
	}
}
