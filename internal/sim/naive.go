package sim

import (
	"dynamicrumor/internal/dynamic"
	"dynamicrumor/internal/eventq"
	"dynamicrumor/internal/xrand"
)

// RunAsyncNaive simulates the asynchronous algorithm by explicitly generating
// every clock tick of every vertex, exactly as in Definition 1: each vertex
// owns an exponential clock (rate opts.ClockRate, default 1) and contacts a
// uniformly random neighbor of the graph exposed at ⌊τ⌋ on each tick.
//
// This simulator is Θ(n · spread time) and exists to cross-validate the fast
// cut-rate simulator (RunAsync) on small instances; they sample the same
// process, so their spread-time distributions must agree.
func RunAsyncNaive(net dynamic.Network, opts AsyncOptions, rng *xrand.RNG) (*Result, error) {
	n := net.N()
	if opts.Start < 0 || opts.Start >= n {
		return nil, ErrInvalidStart
	}
	mode := opts.Mode
	if mode == 0 {
		mode = PushPull
	}
	clockRate := opts.ClockRate
	if clockRate <= 0 {
		clockRate = 1
	}
	maxTime := opts.MaxTime
	if maxTime <= 0 {
		maxTime = 16 * float64(n) * float64(n)
	}

	informed := make([]bool, n)
	informed[opts.Start] = true
	res := &Result{N: n, Informed: 1}
	if opts.RecordTrace {
		res.Trace = append(res.Trace, TracePoint{Time: 0, Informed: 1})
	}
	if n <= 1 {
		res.Completed = true
		return res, nil
	}

	// Schedule the first tick of every vertex.
	q := eventq.New(n)
	for v := 0; v < n; v++ {
		q.Push(v, rng.Exp(clockRate))
	}

	step := 0
	g := net.GraphAt(0, informed)
	for res.Informed < n {
		v, tick, ok := q.Pop()
		if !ok || tick > maxTime {
			res.SpreadTime = tick
			return res, nil
		}
		// Expose all graphs up to ⌊tick⌋.
		for float64(step+1) <= tick {
			step++
			res.Steps++
			g = net.GraphAt(step, informed)
		}
		// v contacts a uniformly random neighbor.
		if d := g.Degree(v); d > 0 {
			u := g.Neighbor(v, rng.Intn(d))
			transferred := false
			switch {
			case informed[v] && !informed[u] && mode != PullOnly:
				informed[u] = true
				transferred = true
			case !informed[v] && informed[u] && mode != PushOnly:
				informed[v] = true
				transferred = true
			}
			if transferred {
				res.Informed++
				res.Events++
				if opts.RecordTrace {
					res.Trace = append(res.Trace, TracePoint{Time: tick, Informed: res.Informed})
				}
				if res.Informed == n {
					res.SpreadTime = tick
					res.Completed = true
					return res, nil
				}
			}
		}
		q.Push(v, tick+rng.Exp(clockRate))
	}
	res.Completed = true
	return res, nil
}
