package sim

import (
	"math"
	"testing"

	"dynamicrumor/internal/xrand"
)

// aliasCellProbability returns the exact probability the table assigns to
// index i: a uniform cell choice lands on i directly with prob[i], and on i
// via the alias of any cell that rejects into it.
func aliasCellProbability(a *aliasTable, i int) float64 {
	n := float64(len(a.prob))
	p := a.prob[i] / n
	for j := range a.prob {
		if int(a.alias[j]) == i && a.prob[j] < 1 {
			p += (1 - a.prob[j]) / n
		}
	}
	return p
}

// randomWeightVectors is the shared corpus for the alias-vs-Fenwick property
// tests: randomized vectors plus the degenerate shapes the issue calls out
// (single-node, zero weights, uniform).
func randomWeightVectors(rng *xrand.RNG) [][]float64 {
	vectors := [][]float64{
		{3},                   // single node
		{0, 0, 0, 7, 0},       // one positive among zeros
		{1, 1, 1, 1},          // uniform
		{0.5, 0, 2.5, 0, 1},   // zeros interleaved
		{1e-9, 1, 1e9},        // extreme dynamic range
		{2, 2, 2, 2, 2, 2, 2}, // uniform, odd length
	}
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(64)
		w := make([]float64, n)
		for i := range w {
			switch rng.Intn(4) {
			case 0:
				w[i] = 0 // sprinkle degenerate zero-weight entries
			default:
				w[i] = rng.Exp(1)
			}
		}
		vectors = append(vectors, w)
	}
	return vectors
}

// TestAliasMatchesFenwickExactly is the deterministic half of the property
// test: for every weight vector the alias table's analytically computed
// per-index probability matches the Fenwick reference distribution
// (weight/total) to floating-point tolerance, and the two samplers have
// identical support.
func TestAliasMatchesFenwickExactly(t *testing.T) {
	rng := xrand.New(101)
	var a aliasTable
	for vi, w := range randomWeightVectors(rng) {
		f := newFenwick(len(w))
		for i, x := range w {
			f.Set(i, x)
		}
		a.build(w)
		total := f.Total()
		if math.Abs(a.total-total) > 1e-9*math.Max(1, total) {
			t.Fatalf("vector %d: alias total %v, fenwick total %v", vi, a.total, total)
		}
		for i := range w {
			want := 0.0
			if total > 0 {
				want = f.Get(i) / total
			}
			got := aliasCellProbability(&a, i)
			if a.total <= 0 {
				got = 0
			}
			if math.Abs(got-want) > 1e-9 {
				t.Fatalf("vector %d index %d: alias probability %v, fenwick %v", vi, i, got, want)
			}
			// Support identity: zero-weight indices are unreachable.
			if w[i] <= 0 && got != 0 {
				t.Fatalf("vector %d index %d: zero weight but reachable with probability %v", vi, i, got)
			}
		}
	}
}

// TestAliasSupportUnderSampling draws from both samplers and checks no draw
// ever lands outside the positive-weight support.
func TestAliasSupportUnderSampling(t *testing.T) {
	rng := xrand.New(202)
	var a aliasTable
	for vi, w := range randomWeightVectors(rng) {
		f := newFenwick(len(w))
		for i, x := range w {
			f.Set(i, x)
		}
		a.build(w)
		for draw := 0; draw < 2000; draw++ {
			i := a.sample(rng)
			j := f.Sample(rng.Float64() * f.Total())
			if f.Total() <= 0 {
				if i != -1 || j != -1 {
					t.Fatalf("vector %d: zero-total sampling returned %d / %d, want -1 / -1", vi, i, j)
				}
				break
			}
			if i < 0 || i >= len(w) || w[i] <= 0 {
				t.Fatalf("vector %d: alias sampled index %d outside the positive support", vi, i)
			}
			if j < 0 || j >= len(w) || w[j] <= 0 {
				t.Fatalf("vector %d: fenwick sampled index %d outside the positive support", vi, j)
			}
		}
	}
}

// TestAliasChiSquare is the statistical half: empirical alias-sampler counts
// against the Fenwick reference distribution pass a chi-square tolerance.
// Seeds are fixed, so the test is deterministic.
func TestAliasChiSquare(t *testing.T) {
	rng := xrand.New(303)
	sampleRNG := xrand.New(404)
	var a aliasTable
	for vi, w := range randomWeightVectors(rng) {
		f := newFenwick(len(w))
		total := 0.0
		for i, x := range w {
			f.Set(i, x)
			total += x
		}
		if total <= 0 {
			continue
		}
		a.build(w)
		const draws = 100000
		counts := make([]int, len(w))
		for d := 0; d < draws; d++ {
			counts[a.sample(sampleRNG)]++
		}
		chi2 := 0.0
		df := -1 // one constraint: counts sum to draws
		for i := range w {
			expected := float64(draws) * f.Get(i) / total
			if expected == 0 {
				if counts[i] != 0 {
					t.Fatalf("vector %d index %d: %d draws on an expected-zero cell", vi, i, counts[i])
				}
				continue
			}
			// Cells expecting fewer than ~5 draws make chi-square unreliable;
			// they are covered by the exact-distribution test above.
			if expected < 5 {
				continue
			}
			d := float64(counts[i]) - expected
			chi2 += d * d / expected
			df++
		}
		if df < 1 {
			continue
		}
		// A chi-square variate with df degrees of freedom has mean df and
		// variance 2·df; df + 5·sqrt(2·df) sits far beyond the 0.999 quantile
		// for every df, so with fixed seeds this never flakes while still
		// catching a mis-built table (whose chi2 grows linearly in draws).
		limit := float64(df) + 5*math.Sqrt(2*float64(df))
		if chi2 > limit {
			t.Fatalf("vector %d: chi-square %.1f exceeds tolerance %.1f (df=%d)", vi, chi2, limit, df)
		}
	}
}

// TestAliasRebuildReusesStorage pins the recycling contract: rebuilding at
// equal-or-smaller size allocates nothing.
func TestAliasRebuildReusesStorage(t *testing.T) {
	var a aliasTable
	w := make([]float64, 512)
	rng := xrand.New(7)
	for i := range w {
		w[i] = rng.Exp(1)
	}
	a.build(w)
	allocs := testing.AllocsPerRun(100, func() {
		a.build(w)
	})
	if allocs != 0 {
		t.Fatalf("steady-state rebuild allocates %v times per run, want 0", allocs)
	}
}
