package sim

import (
	"dynamicrumor/internal/dynamic"
	"dynamicrumor/internal/graph"
	"dynamicrumor/internal/xrand"
)

// Stream-discipline selectors for AsyncOptions.StreamVersion.
const (
	// StreamV1 is the frozen, seed-compatible discipline: Fenwick-tree
	// sampling and scalar variate draws, bit-identical to every historical
	// release. It is the default (a zero StreamVersion selects it too).
	StreamV1 = 1
	// StreamV2 is the opt-in fast discipline: batched variate generation,
	// structure-of-arrays state, and a density-adaptive sampler that
	// switches to alias-snapshot rejection sampling on dense graphs. It
	// consumes a different random stream, so its results are statistically
	// equivalent to v1 — the law of the simulated process is identical —
	// but not byte-identical. The equivalence is enforced by
	// internal/statcheck.
	StreamV2 = 2
)

// v2BufLen and v2BufMin bound the batch size of the v2 variate buffers: a
// run's first fill draws v2BufMin variates and every refill doubles the
// batch up to v2BufLen, so long runs amortize the per-call cost of the Fill
// routines while short runs (small n, where per-rep overhead dominates)
// waste at most a few dozen draws when they end mid-batch.
const (
	v2BufLen = 256
	v2BufMin = 32
)

// v2DenseDegree is the average-degree threshold above which the v2 sampler
// uses the alias-snapshot envelope instead of a live Fenwick tree. The
// envelope pays off exactly when one inform changes many weights (its
// per-weight update is O(1) against the Fenwick tree's O(log n)); on sparse
// graphs an inform touches only deg+1 weights and the Fenwick tree's exact
// O(log n) draws beat the envelope's rejection loop and periodic O(n)
// snapshot rebuilds.
const v2DenseDegree = 16

// v2Headroom scales the frozen snapshot into the envelope: a vertex's bound
// is v2Headroom × its snapshot weight, so a weight has to *double* past its
// snapshot before the vertex carries surplus and joins the changed list.
// Without headroom, one inform on a dense graph nudges every neighbor's
// weight above an exact snapshot and forces an O(n) rebuild per event;
// with it, the i-th rebuild happens only after the mass doubled again —
// O(log) rebuilds per run. The price is acceptance 1/v2Headroom right after
// a rebuild, i.e. an expected ≤ v2Headroom O(1) proposals per draw.
const v2Headroom = 2.0

// v2MaxEnvelope triggers a rebuild when envelope > v2MaxEnvelope × live
// total, bounding expected proposals per draw by v2MaxEnvelope. It must
// exceed v2Headroom (the envelope starts at v2Headroom × total) or every
// draw would rebuild.
const v2MaxEnvelope = 4.0

// asyncStateV2 is the structure-of-arrays state of the v2 asynchronous
// simulator. It tracks the same per-vertex informative rates as asyncState
// (see that type for the model) but draws its variates in batches and picks
// its weighted sampler by graph density:
//
//   - sparse graphs (average degree < v2DenseDegree) use a live Fenwick
//     tree exactly like v1: an inform updates only deg+1 weights, so the
//     O(log n) point updates and exact O(log n) draws are already optimal;
//
//   - dense graphs use a two-part envelope: a Walker alias table built over
//     a frozen snapshot of the weights gives O(1) proposals for the bulk of
//     the mass (with v2Headroom× headroom so slowly rising weights stay
//     under their bound), and vertices whose live weight rose above the
//     bound keep the excess in a "surplus" component sampled by a linear
//     walk over the capped list of such vertices. A proposal from the
//     mixture is distributed proportionally to the envelope
//     ŵ(v) = max(v2Headroom·snapshot(v), live(v)) and accepted with
//     probability live(v)/ŵ(v), which makes the accepted vertex exactly
//     proportional to the live weights — the same law the Fenwick tree
//     samples. The snapshot is rebuilt (O(n)) when the envelope's total
//     exceeds v2MaxEnvelope × the live total or the surplus list outgrows
//     its cap, which bounds the expected proposals per accepted sample by
//     v2MaxEnvelope. The win is the update path: an inform on a dense graph
//     changes Θ(n) weights, each a constant-time bound check here versus a
//     Θ(log n) tree update in v1.
type asyncStateV2 struct {
	n        int
	mode     Mode
	rate     float64
	informed []bool
	g        *graph.Graph
	// counts[v] is the number of uninformed neighbors if v is informed, and
	// the number of informed neighbors if v is uninformed.
	counts []int32
	// cur[v] is the live informative rate of v; curTotal is its running sum
	// (resynced on every snapshot rebuild to stop floating-point drift).
	cur      []float64
	curTotal float64

	// dense selects the sampling backend for the currently loaded graph:
	// the alias-snapshot envelope below when true, the live Fenwick tree fen
	// when false. Chosen per graph in loadGraph, so a dynamic network may
	// alternate backends across exposures.
	dense bool
	// fen is the sparse backend: a Fenwick tree over the live weights.
	fen fenwick
	// alias is the dense backend's snapshot sampler; alias.weight is the
	// snapshot itself.
	alias        aliasTable
	snapTotal    float64
	surplusTotal float64
	// changed lists the vertices whose live weight ever exceeded their
	// headroomed bound v2Headroom·snapshot since the last rebuild (inChanged
	// deduplicates membership). Only entries still above the bound carry
	// surplus mass; ones that dropped back ride along until the next rebuild.
	changed   []int32
	inChanged []bool

	// Batched variates: unit exponentials for waiting times and uniforms for
	// proposals/acceptance, refilled v2BufLen at a time.
	expBuf []float64
	expPos int
	expLen int // current fill width, doubling v2BufMin → v2BufLen
	uniBuf []float64
	uniPos int
	uniLen int
}

// prepare re-targets the state to a run on n vertices, recycling every
// backing array and invalidating the variate buffers (each run has its own
// RNG stream, so leftovers from a previous repetition must never leak in).
func (st *asyncStateV2) prepare(n int, mode Mode, rate float64) {
	st.n = n
	st.mode = mode
	st.rate = rate
	st.g = nil
	st.informed = growBools(st.informed, n)
	st.counts = growInt32s(st.counts, n)
	st.cur = growFloats(st.cur, n)
	st.inChanged = growBools(st.inChanged, n)
	st.changed = st.changed[:0]
	st.expBuf = growFloats(st.expBuf, v2BufLen)
	st.uniBuf = growFloats(st.uniBuf, v2BufLen)
	st.expPos, st.expLen = 0, 0
	st.uniPos, st.uniLen = 0, 0
}

// nextExp returns the next batched unit exponential.
func (st *asyncStateV2) nextExp(rng *xrand.RNG) float64 {
	if st.expPos >= st.expLen {
		st.expLen *= 2
		if st.expLen < v2BufMin {
			st.expLen = v2BufMin
		} else if st.expLen > v2BufLen {
			st.expLen = v2BufLen
		}
		rng.ExpFill(1, st.expBuf[:st.expLen])
		st.expPos = 0
	}
	v := st.expBuf[st.expPos]
	st.expPos++
	return v
}

// nextUni returns the next batched uniform in [0, 1).
func (st *asyncStateV2) nextUni(rng *xrand.RNG) float64 {
	if st.uniPos >= st.uniLen {
		st.uniLen *= 2
		if st.uniLen < v2BufMin {
			st.uniLen = v2BufMin
		} else if st.uniLen > v2BufLen {
			st.uniLen = v2BufLen
		}
		rng.Float64Fill(st.uniBuf[:st.uniLen])
		st.uniPos = 0
	}
	v := st.uniBuf[st.uniPos]
	st.uniPos++
	return v
}

// changedCap returns the changed-list size that forces a snapshot rebuild:
// past it, the linear surplus walk would stop being cheap.
func (st *asyncStateV2) changedCap() int { return 16 + st.n/4 }

// loadGraph recomputes counts and live weights for a freshly exposed graph,
// picks the sampling backend for its density, and (re)builds that backend;
// the counting pass mirrors asyncState.loadGraph.
func (st *asyncStateV2) loadGraph(g *graph.Graph) {
	st.g = g
	informed := st.informed
	mode, rate := st.mode, st.rate
	degSum := 0
	for v := 0; v < st.n; v++ {
		cnt := int32(0)
		inf := informed[v]
		nb := g.Neighbors(v)
		degSum += len(nb)
		for _, u := range nb {
			if informed[u] != inf {
				cnt++
			}
		}
		st.counts[v] = cnt
		w := 0.0
		if cnt != 0 {
			if inf {
				if mode != PullOnly {
					w = rate * float64(cnt) / float64(len(nb))
				}
			} else if mode != PushOnly {
				w = rate * float64(cnt) / float64(len(nb))
			}
		}
		st.cur[v] = w
	}
	st.dense = degSum >= v2DenseDegree*st.n
	if st.dense {
		st.rebuildSnapshot()
		return
	}
	// Sparse backend: bulk-load the live weights into the Fenwick tree and
	// retire any envelope state left over from a dense exposure.
	st.fen.Resize(st.n)
	total := 0.0
	for v := 0; v < st.n; v++ {
		if w := st.cur[v]; w > 0 {
			st.fen.Add(v, w)
			total += w
		}
	}
	st.curTotal = total
	st.snapTotal = 0
	st.surplusTotal = 0
	for _, v := range st.changed {
		st.inChanged[v] = false
	}
	st.changed = st.changed[:0]
}

// rebuildSnapshot freezes the live weights into a fresh alias table (the
// envelope carries v2Headroom× that mass), empties the surplus component,
// and resyncs the running total against the exact sum.
func (st *asyncStateV2) rebuildSnapshot() {
	st.alias.build(st.cur[:st.n])
	st.snapTotal = v2Headroom * st.alias.total
	st.curTotal = st.alias.total
	st.surplusTotal = 0
	for _, v := range st.changed {
		st.inChanged[v] = false
	}
	st.changed = st.changed[:0]
}

// setWeight updates v's live weight and the backend bookkeeping.
func (st *asyncStateV2) setWeight(v int, w float64) {
	old := st.cur[v]
	if w == old {
		return
	}
	st.cur[v] = w
	st.curTotal += w - old
	if !st.dense {
		st.fen.Set(v, w)
		return
	}
	bound := v2Headroom * st.alias.weight[v]
	oldSurplus := old - bound
	if oldSurplus < 0 {
		oldSurplus = 0
	}
	newSurplus := w - bound
	if newSurplus < 0 {
		newSurplus = 0
	}
	if newSurplus == oldSurplus {
		return // still under the headroomed bound: no envelope change
	}
	st.surplusTotal += newSurplus - oldSurplus
	if st.surplusTotal < 0 {
		// Accumulated rounding; the component is empty.
		st.surplusTotal = 0
	}
	if newSurplus > 0 && !st.inChanged[v] {
		st.inChanged[v] = true
		st.changed = append(st.changed, int32(v))
	}
}

// maybeRebuild rebuilds the dense backend's snapshot when the envelope has
// drifted too far from the live weights (acceptance below 1/v2MaxEnvelope)
// or the surplus list outgrew its cap. The sparse backend is always exact.
func (st *asyncStateV2) maybeRebuild() {
	if !st.dense {
		return
	}
	if len(st.changed) > st.changedCap() ||
		(st.curTotal > 0 && st.snapTotal+st.surplusTotal > v2MaxEnvelope*st.curTotal) {
		st.rebuildSnapshot()
	}
}

// total returns the aggregate live rate used for waiting times and draws:
// the Fenwick tree's exact sum on sparse graphs (mirroring v1, which also
// resums the tree every event), the running scalar on dense ones (where the
// rejection loop tolerates its drift and resyncs on every rebuild).
func (st *asyncStateV2) total() float64 {
	if !st.dense {
		return st.fen.Total()
	}
	return st.curTotal
}

// sampleVertex draws a vertex proportionally to the live weights — exactly
// via the Fenwick tree on sparse graphs, via the envelope rejection loop on
// dense ones — or -1 when the live total is (numerically) empty. total must
// be the caller's st.total(), already computed for the waiting-time draw.
func (st *asyncStateV2) sampleVertex(rng *xrand.RNG, total float64) int {
	if total <= 0 {
		return -1
	}
	if !st.dense {
		return st.fen.Sample(st.nextUni(rng) * total)
	}
	for attempt := 0; attempt <= 64; attempt++ {
		if attempt == 32 {
			// Pathological rounding: force the envelope tight, after which
			// every proposal with positive live weight accepts.
			st.rebuildSnapshot()
			if st.curTotal <= 0 {
				return -1
			}
		}
		env := st.snapTotal + st.surplusTotal
		if env <= 0 {
			return -1
		}
		var x int
		if st.surplusTotal > 0 {
			u := st.nextUni(rng) * env
			if u < st.snapTotal {
				x = st.alias.sample(rng)
			} else {
				x = st.sampleSurplus(u - st.snapTotal)
			}
		} else {
			x = st.alias.sample(rng)
		}
		if x < 0 {
			continue
		}
		w := st.cur[x]
		if w <= 0 {
			continue
		}
		bound := v2Headroom * st.alias.weight[x]
		if w > bound {
			bound = w
		}
		if w >= bound || st.nextUni(rng)*bound < w {
			return x
		}
	}
	return -1
}

// sampleSurplus walks the changed list accumulating surplus mass until it
// covers target. Rounding at the upper boundary falls back to the last
// positive-surplus vertex.
func (st *asyncStateV2) sampleSurplus(target float64) int {
	last := -1
	for _, vi := range st.changed {
		v := int(vi)
		s := st.cur[v] - v2Headroom*st.alias.weight[v]
		if s <= 0 {
			continue
		}
		last = v
		target -= s
		if target < 0 {
			return v
		}
	}
	return last
}

// sampleNewlyInformed draws the vertex informed by the next informative
// contact, mirroring asyncState.sampleNewlyInformed on the v2 state.
func (st *asyncStateV2) sampleNewlyInformed(rng *xrand.RNG, total float64) int {
	x := st.sampleVertex(rng, total)
	if x < 0 {
		return -1
	}
	if !st.informed[x] {
		// x pulled the rumor from one of its informed neighbors.
		return x
	}
	// x pushed the rumor to a uniformly random uninformed neighbor.
	target := rng.Intn(int(st.counts[x]))
	seen := 0
	for _, u := range st.g.Neighbors(x) {
		if !st.informed[u] {
			if seen == target {
				return u
			}
			seen++
		}
	}
	return -1
}

// inform marks v as informed and updates counts, live weights and the
// sampling backend; the update pattern mirrors asyncState.inform.
func (st *asyncStateV2) inform(v int) {
	if st.informed[v] {
		return
	}
	st.informed[v] = true
	nb := st.g.Neighbors(v)
	cnt := int32(0)
	for _, u := range nb {
		if !st.informed[u] {
			cnt++
		}
	}
	st.counts[v] = cnt
	mode, rate := st.mode, st.rate
	w := 0.0
	if cnt != 0 && mode != PullOnly {
		w = rate * float64(cnt) / float64(len(nb))
	}
	st.setWeight(v, w)
	for _, u := range nb {
		cu := st.counts[u]
		inf := st.informed[u]
		if inf {
			cu-- // u lost an uninformed neighbor
		} else {
			cu++ // u gained an informed neighbor
		}
		st.counts[u] = cu
		var wu float64
		if cu != 0 {
			if inf {
				if mode != PullOnly {
					wu = rate * float64(cu) / float64(st.g.Degree(u))
				}
			} else if mode != PushOnly {
				wu = rate * float64(cu) / float64(st.g.Degree(u))
			}
		}
		st.setWeight(u, wu)
	}
	st.maybeRebuild()
}

// runAsyncV2Into is the v2 simulate loop: identical control flow to
// RunAsyncInto (unit intervals, informative-contact events, boundary
// advances) over the density-adaptive sampler and batched variates. Options
// have already been validated by the dispatching entry point.
func runAsyncV2Into(net dynamic.Network, opts AsyncOptions, rng *xrand.RNG, sc *Scratch, res *Result) (*Result, error) {
	n := net.N()
	if opts.Start < 0 || opts.Start >= n {
		return nil, ErrInvalidStart
	}
	if res == nil {
		res = &Result{}
	}
	if n == 0 {
		res.reset(0)
		res.Informed = 0
		res.Completed = true
		return res, nil
	}
	mode := opts.Mode.normalize()
	clockRate := opts.ClockRate
	if clockRate <= 0 {
		clockRate = 1
	}
	maxTime := opts.MaxTime
	if maxTime <= 0 {
		maxTime = 16 * float64(n) * float64(n)
	}
	if sc == nil {
		sc = NewScratch()
	}

	st := &sc.asyncV2
	st.prepare(n, mode, clockRate)
	st.informed[opts.Start] = true
	res.reset(n)
	if opts.RecordTrace {
		res.Trace = append(res.Trace, TracePoint{Time: 0, Informed: 1})
	}

	now := 0.0
	step := 0
	g := net.GraphAt(step, st.informed)
	st.loadGraph(g)

	for res.Informed < n {
		if now >= maxTime {
			res.SpreadTime = now
			return res, nil
		}
		boundary := float64(step + 1)
		advance := false
		total := st.total()
		if total <= 0 {
			advance = true
		} else {
			wait := st.nextExp(rng) / total
			if now+wait >= boundary {
				advance = true
			} else {
				now += wait
				v := st.sampleNewlyInformed(rng, total)
				if v < 0 {
					// Numerically empty cut; treat like a zero-rate interval.
					advance = true
				} else {
					st.inform(v)
					res.Informed++
					res.Events++
					if opts.RecordTrace {
						res.Trace = append(res.Trace, TracePoint{Time: now, Informed: res.Informed})
					}
					continue
				}
			}
		}
		if advance {
			now = boundary
			step++
			res.Steps++
			next := net.GraphAt(step, st.informed)
			if next != g {
				g = next
				st.loadGraph(g)
			}
		}
	}
	res.SpreadTime = now
	res.Completed = true
	return res, nil
}
