package sim

import (
	"math"
	"testing"

	"dynamicrumor/internal/xrand"
)

func TestFenwickTotalAndGet(t *testing.T) {
	f := newFenwick(5)
	f.Set(0, 1)
	f.Set(2, 2.5)
	f.Set(4, 0.5)
	if got := f.Total(); math.Abs(got-4) > 1e-12 {
		t.Fatalf("Total = %v, want 4", got)
	}
	if f.Get(2) != 2.5 || f.Get(1) != 0 {
		t.Fatal("Get wrong")
	}
	f.Set(2, 1) // decrease
	if got := f.Total(); math.Abs(got-2.5) > 1e-12 {
		t.Fatalf("Total after decrease = %v, want 2.5", got)
	}
	if f.Len() != 5 {
		t.Fatalf("Len = %d", f.Len())
	}
}

func TestFenwickNegativeClamped(t *testing.T) {
	f := newFenwick(3)
	f.Set(1, -5)
	if f.Get(1) != 0 || f.Total() != 0 {
		t.Fatal("negative weight should clamp to 0")
	}
}

func TestFenwickSampleBoundaries(t *testing.T) {
	f := newFenwick(4)
	f.Set(1, 2)
	f.Set(3, 3)
	cases := []struct {
		target float64
		want   int
	}{
		{0, 1}, {1.9, 1}, {2.0, 3}, {4.9, 3}, {-1, 1},
	}
	for _, c := range cases {
		if got := f.Sample(c.target); got != c.want {
			t.Errorf("Sample(%v) = %d, want %d", c.target, got, c.want)
		}
	}
}

func TestFenwickSampleAllZero(t *testing.T) {
	f := newFenwick(3)
	if got := f.Sample(0); got != -1 {
		t.Fatalf("Sample over empty weights = %d, want -1", got)
	}
}

func TestFenwickSampleProportional(t *testing.T) {
	rng := xrand.New(7)
	f := newFenwick(3)
	f.Set(0, 1)
	f.Set(1, 2)
	f.Set(2, 7)
	counts := make([]int, 3)
	const draws = 100000
	for i := 0; i < draws; i++ {
		counts[f.Sample(rng.Float64()*f.Total())]++
	}
	wants := []float64{0.1, 0.2, 0.7}
	for i, w := range wants {
		got := float64(counts[i]) / draws
		if math.Abs(got-w) > 0.01 {
			t.Errorf("index %d frequency %v, want %v", i, got, w)
		}
	}
}

func TestFenwickReset(t *testing.T) {
	f := newFenwick(4)
	f.Set(2, 5)
	f.Reset()
	if f.Total() != 0 || f.Get(2) != 0 {
		t.Fatal("Reset did not clear weights")
	}
}

func TestFenwickRandomizedAgainstNaive(t *testing.T) {
	rng := xrand.New(11)
	const n = 32
	f := newFenwick(n)
	naive := make([]float64, n)
	for op := 0; op < 2000; op++ {
		i := rng.Intn(n)
		w := rng.Float64() * 10
		f.Set(i, w)
		naive[i] = w
		total := 0.0
		for _, x := range naive {
			total += x
		}
		if math.Abs(f.Total()-total) > 1e-9 {
			t.Fatalf("op %d: total %v vs naive %v", op, f.Total(), total)
		}
		// Spot-check sampling: the returned index must be consistent with the
		// prefix sums.
		target := rng.Float64() * total
		idx := f.Sample(target)
		prefix := 0.0
		want := -1
		for j := 0; j < n; j++ {
			if target < prefix+naive[j] && naive[j] > 0 {
				want = j
				break
			}
			prefix += naive[j]
		}
		if want != -1 && idx != want {
			t.Fatalf("op %d: Sample(%v) = %d, want %d", op, target, idx, want)
		}
	}
}
