package sim

import (
	"testing"

	"dynamicrumor/internal/dynamic"
	"dynamicrumor/internal/gen"
	"dynamicrumor/internal/stats"
	"dynamicrumor/internal/xrand"
)

func v2Opts(start int) AsyncOptions {
	return AsyncOptions{Start: start, StreamVersion: StreamV2}
}

func TestRunAsyncV2SingleVertex(t *testing.T) {
	net := dynamic.NewStatic(gen.Clique(1))
	res, err := RunAsync(net, v2Opts(0), xrand.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed || res.SpreadTime != 0 || res.Informed != 1 {
		t.Fatalf("unexpected result %+v", res)
	}
}

func TestRunAsyncV2InvalidStart(t *testing.T) {
	net := dynamic.NewStatic(gen.Clique(4))
	if _, err := RunAsync(net, v2Opts(9), xrand.New(1)); err != ErrInvalidStart {
		t.Fatalf("error = %v, want ErrInvalidStart", err)
	}
}

func TestRunAsyncV2CompletesOnBasicGraphs(t *testing.T) {
	rng := xrand.New(2)
	nets := map[string]dynamic.Network{
		"clique": dynamic.NewStatic(gen.Clique(40)),
		"star":   dynamic.NewStatic(gen.Star(40, 0)),
		"cycle":  dynamic.NewStatic(gen.Cycle(40)),
		"path":   dynamic.NewStatic(gen.Path(40)),
	}
	for name, net := range nets {
		for _, mode := range []Mode{PushPull, PushOnly, PullOnly} {
			opts := v2Opts(0)
			opts.Mode = mode
			res, err := RunAsync(net, opts, rng)
			if err != nil {
				t.Fatalf("%s/%v: %v", name, mode, err)
			}
			if !res.Completed || res.Informed != net.N() {
				t.Fatalf("%s/%v: incomplete result %+v", name, mode, res)
			}
			if res.SpreadTime <= 0 {
				t.Fatalf("%s/%v: non-positive spread time", name, mode)
			}
		}
	}
}

func TestRunAsyncV2DisconnectedNeverCompletes(t *testing.T) {
	net := dynamic.NewStatic(isolatedVertexGraph())
	opts := v2Opts(0)
	opts.MaxTime = 50
	res, err := RunAsync(net, opts, xrand.New(3))
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed {
		t.Fatal("isolated vertex was reached")
	}
	if res.Informed != 4 {
		t.Fatalf("informed %d vertices, want the 4-clique", res.Informed)
	}
	if res.SpreadTime < 50 {
		t.Fatalf("aborted at %v, want MaxTime 50", res.SpreadTime)
	}
}

func TestRunAsyncV2TraceRecorded(t *testing.T) {
	net := dynamic.NewStatic(gen.Clique(12))
	opts := v2Opts(0)
	opts.RecordTrace = true
	res, err := RunAsync(net, opts, xrand.New(4))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trace) != 12 {
		t.Fatalf("trace has %d points, want 12", len(res.Trace))
	}
	for i := 1; i < len(res.Trace); i++ {
		if res.Trace[i].Time < res.Trace[i-1].Time || res.Trace[i].Informed != res.Trace[i-1].Informed+1 {
			t.Fatalf("trace not monotone at %d: %+v -> %+v", i, res.Trace[i-1], res.Trace[i])
		}
	}
}

// TestRunAsyncV2Deterministic pins that v2, like v1, is a pure function of
// (net, opts, seed): recycled scratch/result runs reproduce fresh runs bit
// for bit.
func TestRunAsyncV2Deterministic(t *testing.T) {
	net := dynamic.NewStatic(gen.Star(30, 0))
	fresh, err := RunAsync(net, v2Opts(3), xrand.New(99))
	if err != nil {
		t.Fatal(err)
	}
	sc := NewScratch()
	var res Result
	// Run twice through the same scratch: the second run must not be polluted
	// by leftover state (variate buffers, changed lists) from the first.
	for i := 0; i < 2; i++ {
		got, err := RunAsyncInto(net, v2Opts(3), xrand.New(99), sc, &res)
		if err != nil {
			t.Fatal(err)
		}
		if got.SpreadTime != fresh.SpreadTime || got.Events != fresh.Events || got.Steps != fresh.Steps {
			t.Fatalf("run %d: recycled state changed the result: %+v vs %+v", i, got, fresh)
		}
	}
}

// TestCrossValidationV1VsV2 compares the spread-time distributions of the
// two stream disciplines on static and dynamic instances: same process law,
// different random streams, so the ensembles must agree statistically. The
// full-size equivalence gate lives in internal/statcheck; this is the
// small-instance smoke that catches gross v2 sampler bugs close to home.
func TestCrossValidationV1VsV2(t *testing.T) {
	if testing.Short() {
		t.Skip("cross-validation is slow")
	}
	cases := map[string]dynamic.Network{
		"clique10": dynamic.NewStatic(gen.Clique(10)),
		"star10":   dynamic.NewStatic(gen.Star(10, 0)),
		"cycle12":  dynamic.NewStatic(gen.Cycle(12)),
		"path8":    dynamic.NewStatic(gen.Path(8)),
	}
	const reps = 400
	for name, net := range cases {
		rngA := xrand.New(1000)
		rngB := xrand.New(2000)
		var v1, v2 []float64
		for i := 0; i < reps; i++ {
			ra, err := RunAsync(net, AsyncOptions{Start: 0}, rngA)
			if err != nil {
				t.Fatal(err)
			}
			rb, err := RunAsync(net, v2Opts(0), rngB)
			if err != nil {
				t.Fatal(err)
			}
			v1 = append(v1, ra.SpreadTime)
			v2 = append(v2, rb.SpreadTime)
		}
		d := stats.KSDistance(v1, v2)
		// With 400 samples per side, a KS distance above ~0.12 would reject
		// equality at far beyond the 1% level.
		if d > 0.12 {
			t.Errorf("%s: KS distance between v1 and v2 = %v (means %.3f vs %.3f)",
				name, d, stats.Mean(v1), stats.Mean(v2))
		}
	}
}

// TestCrossValidationV1VsV2Dynamic repeats the comparison on a rebuilding
// dynamic network, which exercises the v2 snapshot-rebuild path every unit
// interval.
func TestCrossValidationV1VsV2Dynamic(t *testing.T) {
	if testing.Short() {
		t.Skip("cross-validation is slow")
	}
	const reps = 300
	var v1, v2 []float64
	for i := 0; i < reps; i++ {
		rng := xrand.New(uint64(3000 + i))
		netA, err := dynamic.NewDichotomyG2(12, rng.Split(1))
		if err != nil {
			t.Fatal(err)
		}
		ra, err := RunAsync(netA, AsyncOptions{Start: netA.StartVertex()}, rng.Split(2))
		if err != nil {
			t.Fatal(err)
		}
		v1 = append(v1, ra.SpreadTime)

		rng2 := xrand.New(uint64(9000 + i))
		netB, err := dynamic.NewDichotomyG2(12, rng2.Split(1))
		if err != nil {
			t.Fatal(err)
		}
		rb, err := RunAsync(netB, v2Opts(netB.StartVertex()), rng2.Split(2))
		if err != nil {
			t.Fatal(err)
		}
		v2 = append(v2, rb.SpreadTime)
	}
	if d := stats.KSDistance(v1, v2); d > 0.15 {
		t.Errorf("dynamic: KS distance %v (means %.3f vs %.3f)",
			d, stats.Mean(v1), stats.Mean(v2))
	}
}
