package sim

import (
	"errors"

	"dynamicrumor/internal/graph"
	"dynamicrumor/internal/xrand"
)

// ErrBadLayers is returned when the layer description passed to the layered
// push simulators is inconsistent with the graph.
var ErrBadLayers = errors.New("sim: invalid layer description")

// LayeredOptions configures the coupling algorithms of Section 4 (Lemma 4.2):
// the asynchronous 2-push and the forward 2-push processes running on a
// "string of complete bipartite graphs" S_0 - S_1 - ... - S_k.
type LayeredOptions struct {
	// Layers lists the vertices of S_0..S_k. Every listed vertex must exist
	// in the graph; vertices outside the layers are ignored by the forward
	// process.
	Layers [][]int
	// ClockRate is the per-vertex clock rate (the paper uses 2). 0 means 2.
	ClockRate float64
	// Horizon is the simulated time budget (the paper analyses one unit of
	// time). 0 means 1.
	Horizon float64
}

// LayeredResult reports the outcome of a layered push run.
type LayeredResult struct {
	// InformedPerLayer[i] is the number of informed vertices of layer i at
	// the end of the horizon.
	InformedPerLayer []int
	// ReachedLast is true if any vertex of the last layer became informed.
	ReachedLast bool
	// FirstReachTime is the time at which the last layer was first reached
	// (meaningful only when ReachedLast is true).
	FirstReachTime float64
}

// RunForwardTwoPush simulates the "forward 2-push" coupling of Lemma 4.2:
// every vertex of S_0..S_{k-1} carries an exponential clock of rate
// ClockRate; when the clock of an informed vertex of S_i rings it pushes the
// rumor to a uniformly random neighbor in S_{i+1}. All of S_0 starts
// informed. The run stops at the horizon.
//
// The paper proves E[I(1, k)] <= 2^k/k! · Δ for this process, which upper
// bounds the probability that the original algorithm crosses the whole string
// within one time unit (Claim 4.3); experiment E12 validates that bound.
func RunForwardTwoPush(g *graph.Graph, opts LayeredOptions, rng *xrand.RNG) (*LayeredResult, error) {
	layers, _, err := checkLayers(g, opts.Layers)
	if err != nil {
		return nil, err
	}
	rate := opts.ClockRate
	if rate <= 0 {
		rate = 2
	}
	horizon := opts.Horizon
	if horizon <= 0 {
		horizon = 1
	}

	k := len(layers) - 1
	informed := make(map[int]bool, len(layers[0]))
	informedPerLayer := make([]int, len(layers))
	for _, v := range layers[0] {
		informed[v] = true
	}
	informedPerLayer[0] = len(layers[0])

	res := &LayeredResult{}
	// Event-driven simulation over the informed vertices only: the aggregate
	// informative rate from layer i is rate · informed(i) · (fraction of
	// S_{i+1} neighbors that are uninformed is handled per push, uninformative
	// pushes are kept because the target is chosen uniformly from S_{i+1}).
	now := 0.0
	for {
		totalRate := 0.0
		for i := 0; i < k; i++ {
			totalRate += rate * float64(informedPerLayer[i])
		}
		if totalRate <= 0 {
			break
		}
		now += rng.Exp(totalRate)
		if now > horizon {
			break
		}
		// Pick the pushing layer proportionally to its informed count, then a
		// uniformly random informed vertex of that layer, then a uniformly
		// random neighbor in the next layer.
		target := rng.Float64() * totalRate
		layer := 0
		for ; layer < k; layer++ {
			w := rate * float64(informedPerLayer[layer])
			if target < w {
				break
			}
			target -= w
		}
		if layer >= k {
			layer = k - 1
		}
		next := layers[layer+1]
		dst := next[rng.Intn(len(next))]
		if !informed[dst] {
			informed[dst] = true
			informedPerLayer[layer+1]++
			if layer+1 == k && !res.ReachedLast {
				res.ReachedLast = true
				res.FirstReachTime = now
			}
		}
	}
	res.InformedPerLayer = informedPerLayer
	return res, nil
}

// RunTwoPushOnLayers simulates the plain asynchronous 2-push of Lemma 4.2 on
// the subgraph induced by the layers: every vertex of every layer has a clock
// of rate ClockRate and, when informed, pushes to a uniformly random neighbor
// (restricted to vertices that belong to some layer). All of S_0 starts
// informed. Claim 4.3 states that the forward 2-push reaches the last layer
// at least as often; experiment E12 checks that ordering empirically.
func RunTwoPushOnLayers(g *graph.Graph, opts LayeredOptions, rng *xrand.RNG) (*LayeredResult, error) {
	layers, layerOf, err := checkLayers(g, opts.Layers)
	if err != nil {
		return nil, err
	}
	rate := opts.ClockRate
	if rate <= 0 {
		rate = 2
	}
	horizon := opts.Horizon
	if horizon <= 0 {
		horizon = 1
	}
	k := len(layers) - 1

	// Precompute the layer-restricted adjacency once (a CSR over the graph's
	// vertex ids, preserving neighbor order) instead of re-filtering and
	// re-allocating a candidate slice on every push event: pushes are the hot
	// loop and the filter result never changes.
	layerIndex := make([]int, g.N())
	for v := range layerIndex {
		layerIndex[v] = -1
	}
	for v, i := range layerOf {
		layerIndex[v] = i
	}
	candOff := make([]int, g.N()+1)
	for v := 0; v < g.N(); v++ {
		cnt := 0
		if layerIndex[v] >= 0 {
			for _, u := range g.Neighbors(v) {
				if layerIndex[u] >= 0 {
					cnt++
				}
			}
		}
		candOff[v+1] = candOff[v] + cnt
	}
	cands := make([]int, candOff[g.N()])
	for v := 0; v < g.N(); v++ {
		if layerIndex[v] < 0 {
			continue
		}
		fill := candOff[v]
		for _, u := range g.Neighbors(v) {
			if layerIndex[u] >= 0 {
				cands[fill] = u
				fill++
			}
		}
	}

	informed := make([]bool, g.N())
	var informedList []int
	for _, v := range layers[0] {
		informed[v] = true
		informedList = append(informedList, v)
	}
	res := &LayeredResult{InformedPerLayer: make([]int, len(layers))}
	res.InformedPerLayer[0] = len(layers[0])

	now := 0.0
	for {
		totalRate := rate * float64(len(informedList))
		if totalRate <= 0 {
			break
		}
		now += rng.Exp(totalRate)
		if now > horizon {
			break
		}
		src := informedList[rng.Intn(len(informedList))]
		// Push to a uniformly random neighbor that belongs to a layer.
		candidates := cands[candOff[src]:candOff[src+1]]
		if len(candidates) == 0 {
			continue
		}
		dst := candidates[rng.Intn(len(candidates))]
		if !informed[dst] {
			informed[dst] = true
			informedList = append(informedList, dst)
			li := layerIndex[dst]
			res.InformedPerLayer[li]++
			if li == k && !res.ReachedLast {
				res.ReachedLast = true
				res.FirstReachTime = now
			}
		}
	}
	return res, nil
}

// checkLayers validates the layer description and returns the layers plus a
// vertex-to-layer index.
func checkLayers(g *graph.Graph, layers [][]int) ([][]int, map[int]int, error) {
	if len(layers) < 2 {
		return nil, nil, ErrBadLayers
	}
	layerOf := make(map[int]int)
	for i, layer := range layers {
		if len(layer) == 0 {
			return nil, nil, ErrBadLayers
		}
		for _, v := range layer {
			if v < 0 || v >= g.N() {
				return nil, nil, ErrBadLayers
			}
			if _, dup := layerOf[v]; dup {
				return nil, nil, ErrBadLayers
			}
			layerOf[v] = i
		}
	}
	return layers, layerOf, nil
}
