package sim

import (
	"reflect"
	"testing"

	"dynamicrumor/internal/dynamic"
	"dynamicrumor/internal/gen"
	"dynamicrumor/internal/xrand"
)

// TestProtocolsMatchFreeFunctions pins the unification contract: each
// Protocol implementation must be a pure repackaging of its historical free
// function, consuming randomness identically.
func TestProtocolsMatchFreeFunctions(t *testing.T) {
	g := gen.Expander(120, 6, xrand.New(3))
	net := dynamic.NewStatic(g)

	aOpts := AsyncOptions{Start: 0, RecordTrace: true}
	want, err := RunAsync(net, aOpts, xrand.New(17))
	if err != nil {
		t.Fatal(err)
	}
	got, err := AsyncProtocol{Opts: aOpts}.Run(net, xrand.New(17))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatal("AsyncProtocol.Run diverged from RunAsync")
	}

	sOpts := SyncOptions{Start: 0, RecordTrace: true}
	wantS, err := RunSync(net, sOpts, xrand.New(17))
	if err != nil {
		t.Fatal(err)
	}
	gotS, err := SyncProtocol{Opts: sOpts}.Run(net, xrand.New(17))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(wantS, gotS) {
		t.Fatal("SyncProtocol.Run diverged from RunSync")
	}

	wantF, err := RunFlooding(net, sOpts, xrand.New(17))
	if err != nil {
		t.Fatal(err)
	}
	gotF, err := FloodingProtocol{Opts: sOpts}.Run(net, xrand.New(17))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(wantF, gotF) {
		t.Fatal("FloodingProtocol.Run diverged from RunFlooding")
	}
}

func TestProtocolKinds(t *testing.T) {
	for _, c := range []struct {
		p    Protocol
		want string
	}{
		{AsyncProtocol{}, "async"},
		{SyncProtocol{}, "sync"},
		{FloodingProtocol{}, "flooding"},
	} {
		if got := c.p.Kind(); got != c.want {
			t.Fatalf("Kind() = %q, want %q", got, c.want)
		}
	}
}

func TestModeNormalize(t *testing.T) {
	if Mode(0).normalize() != PushPull {
		t.Fatal("zero mode must normalize to PushPull")
	}
	for _, m := range []Mode{PushPull, PushOnly, PullOnly} {
		if m.normalize() != m {
			t.Fatalf("mode %v must normalize to itself", m)
		}
	}
}

func TestModeTextRoundTrip(t *testing.T) {
	for _, m := range []Mode{0, PushPull, PushOnly, PullOnly} {
		text, err := m.MarshalText()
		if err != nil {
			t.Fatalf("mode %d: %v", int(m), err)
		}
		var back Mode
		if err := back.UnmarshalText(text); err != nil {
			t.Fatalf("mode %d: %v", int(m), err)
		}
		if back != m {
			t.Fatalf("mode %d round-tripped to %d via %q", int(m), int(back), text)
		}
	}
	if _, err := Mode(99).MarshalText(); err == nil {
		t.Fatal("invalid mode must not marshal")
	}
	if _, err := ParseMode("telegraph"); err == nil {
		t.Fatal("unknown mode name must not parse")
	}
	for name, want := range map[string]Mode{
		"push-pull": PushPull, "pushpull": PushPull,
		"push": PushOnly, "push-only": PushOnly,
		"pull": PullOnly, "pull-only": PullOnly,
		"": 0,
	} {
		got, err := ParseMode(name)
		if err != nil || got != want {
			t.Fatalf("ParseMode(%q) = (%v, %v), want %v", name, got, err, want)
		}
	}
}
