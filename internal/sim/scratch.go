package sim

// Scratch holds the reusable per-worker state of the simulators: the
// asynchronous cut-rate bookkeeping (informed set, neighbor counts, Fenwick
// tree) and the synchronous round buffers. A single Scratch serves runs of
// any vertex count — the backing arrays grow to the largest n seen and are
// then recycled — so a Monte-Carlo worker carries one Scratch across all of
// its repetitions and the simulate loop stops allocating in steady state.
//
// A Scratch must not be shared between concurrent runs; the runner hands each
// worker goroutine its own (see runner.MapLocal and engine.RunBatchFrom).
// All Run*Into entry points accept a nil Scratch and fall back to a
// throwaway one, which is exactly what the historical RunAsync/RunSync/
// RunFlooding wrappers do.
type Scratch struct {
	async    asyncState
	asyncV2  asyncStateV2 // v2 stream discipline (AsyncOptions.StreamVersion)
	informed []bool       // synchronous informed set
	next     []bool       // synchronous next-round buffer
	frontier []int        // flooding: vertices informed in the previous round
	spread   []int        // flooding: vertices informed in the current round
}

// frontierBuffers returns the emptied (frontier, spread) vertex lists for the
// flooding simulator, reusing their capacity.
func (sc *Scratch) frontierBuffers() (frontier, spread []int) {
	return sc.frontier[:0], sc.spread[:0]
}

// NewScratch returns an empty scratch; arrays are sized on first use.
func NewScratch() *Scratch { return &Scratch{} }

// syncBuffers returns the zeroed (informed, next) round buffers for a run on
// n vertices.
func (sc *Scratch) syncBuffers(n int) (informed, next []bool) {
	return sc.informedBuffer(n), sc.nextBuffer(n)
}

// informedBuffer returns the zeroed informed set for a run on n vertices.
// Flooding uses only this one — its frontier rewrite has no next-round
// buffer, so preparing one would be an O(n) clear per repetition for
// nothing.
func (sc *Scratch) informedBuffer(n int) []bool {
	sc.informed = growBools(sc.informed, n)
	return sc.informed
}

// nextBuffer returns the zeroed next-round buffer for a run on n vertices.
func (sc *Scratch) nextBuffer(n int) []bool {
	sc.next = growBools(sc.next, n)
	return sc.next
}

// growBools returns s resized to length n with every entry false, reusing
// capacity when possible.
func growBools(s []bool, n int) []bool {
	if cap(s) >= n {
		s = s[:n]
	} else {
		s = make([]bool, n)
	}
	for i := range s {
		s[i] = false
	}
	return s
}

// growInts returns s resized to length n, reusing capacity when possible.
// Contents are unspecified — stale entries from a previous run survive on
// the reuse path; callers must overwrite every entry before reading.
func growInts(s []int, n int) []int {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]int, n)
}

// reset re-initializes a Result for a fresh run on n vertices, recycling the
// trace backing array.
func (r *Result) reset(n int) {
	trace := r.Trace[:0]
	*r = Result{N: n, Informed: 1, Trace: trace}
}
