package sim

import "fmt"

// Mode selects which contacts can transfer the rumor.
type Mode int

const (
	// PushPull is the standard algorithm of Definition 1: a contact transfers
	// the rumor if at least one endpoint knows it.
	PushPull Mode = iota + 1
	// PushOnly transfers the rumor only from the calling (informed) vertex.
	PushOnly
	// PullOnly transfers the rumor only to the calling (uninformed) vertex.
	PullOnly
)

// normalize maps the zero value to the default PushPull so that every
// simulator and protocol shares one defaulting rule.
func (m Mode) normalize() Mode {
	if m == 0 {
		return PushPull
	}
	return m
}

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case PushPull:
		return "push-pull"
	case PushOnly:
		return "push"
	case PullOnly:
		return "pull"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// MarshalText implements encoding.TextMarshaler so scenario JSON carries the
// human-readable mode name. The zero value marshals to the empty string (and
// is dropped by omitempty struct tags).
func (m Mode) MarshalText() ([]byte, error) {
	switch m {
	case 0:
		return nil, nil
	case PushPull, PushOnly, PullOnly:
		return []byte(m.String()), nil
	default:
		return nil, fmt.Errorf("sim: cannot marshal invalid Mode(%d)", int(m))
	}
}

// UnmarshalText implements encoding.TextUnmarshaler, accepting the names
// produced by MarshalText plus common aliases.
func (m *Mode) UnmarshalText(text []byte) error {
	v, err := ParseMode(string(text))
	if err != nil {
		return err
	}
	*m = v
	return nil
}

// ParseMode converts a mode name to a Mode. The empty string parses to the
// zero value, which every simulator treats as PushPull.
func ParseMode(s string) (Mode, error) {
	switch s {
	case "":
		return 0, nil
	case "push-pull", "pushpull":
		return PushPull, nil
	case "push", "push-only":
		return PushOnly, nil
	case "pull", "pull-only":
		return PullOnly, nil
	default:
		return 0, fmt.Errorf("sim: unknown mode %q (want push-pull, push or pull)", s)
	}
}
