package sim

import (
	"errors"

	"dynamicrumor/internal/dynamic"
	"dynamicrumor/internal/graph"
	"dynamicrumor/internal/xrand"
)

// ErrInvalidStart is returned when the start vertex is out of range.
var ErrInvalidStart = errors.New("sim: start vertex out of range")

// AsyncOptions configures the asynchronous simulator.
type AsyncOptions struct {
	// Start is the initially informed vertex.
	Start int
	// Mode selects push-pull (default), push-only or pull-only transfer.
	Mode Mode
	// ClockRate is the Poisson rate of every vertex's clock; 0 means 1, the
	// paper's standard model. The asynchronous "2-push" coupling of Section 4
	// corresponds to Mode PushOnly with ClockRate 2.
	ClockRate float64
	// MaxTime aborts the run once simulated time exceeds it (0 means the
	// generous default 16·n², beyond the paper's worst-case O(n²) bound).
	MaxTime float64
	// RecordTrace stores a TracePoint per newly informed vertex.
	RecordTrace bool
	// StreamVersion selects the sampling discipline: 0 or StreamV1 is the
	// frozen seed-compatible v1 stream (Fenwick sampling, scalar variates);
	// StreamV2 is the opt-in fast discipline (alias-snapshot rejection
	// sampling, batched variates). v2 simulates the identical process law but
	// consumes a different random stream, so its results are statistically
	// equivalent — not byte-identical — to v1; see internal/statcheck.
	StreamVersion int
}

// RunAsync simulates the asynchronous rumor-spreading process on a dynamic
// network. The simulation is exact: within a unit interval the graph is
// fixed, every vertex holds an independent Poisson clock and contacts a
// uniformly random neighbor on each tick; only informative contacts change
// state, so the simulator samples the next informative contact directly from
// the aggregate informative-contact rate (the λ(τ) of Equation 1), which by
// the memorylessness of exponential clocks has the same law as simulating
// every tick.
func RunAsync(net dynamic.Network, opts AsyncOptions, rng *xrand.RNG) (*Result, error) {
	return RunAsyncInto(net, opts, rng, nil, nil)
}

// RunAsyncInto is RunAsync with recycled state: sc provides the simulator's
// working arrays and res the result to fill (either may be nil, in which
// case a fresh one is used). The run consumes exactly the same random stream
// and produces exactly the same result as RunAsync; with both arguments
// recycled the steady-state loop performs zero heap allocations (traces
// reuse the result's backing array once it has grown).
func RunAsyncInto(net dynamic.Network, opts AsyncOptions, rng *xrand.RNG, sc *Scratch, res *Result) (*Result, error) {
	if opts.StreamVersion >= StreamV2 {
		return runAsyncV2Into(net, opts, rng, sc, res)
	}
	n := net.N()
	if opts.Start < 0 || opts.Start >= n {
		return nil, ErrInvalidStart
	}
	if res == nil {
		res = &Result{}
	}
	if n == 0 {
		res.reset(0)
		res.Informed = 0
		res.Completed = true
		return res, nil
	}
	mode := opts.Mode.normalize()
	clockRate := opts.ClockRate
	if clockRate <= 0 {
		clockRate = 1
	}
	maxTime := opts.MaxTime
	if maxTime <= 0 {
		maxTime = 16 * float64(n) * float64(n)
	}
	if sc == nil {
		sc = NewScratch()
	}

	st := &sc.async
	st.prepare(n, mode, clockRate)
	st.informed[opts.Start] = true
	res.reset(n)
	if opts.RecordTrace {
		res.Trace = append(res.Trace, TracePoint{Time: 0, Informed: 1})
	}

	now := 0.0
	step := 0
	g := net.GraphAt(step, st.informed)
	st.loadGraph(g)

	for res.Informed < n {
		if now >= maxTime {
			res.SpreadTime = now
			return res, nil
		}
		boundary := float64(step + 1)
		// An interval ends without an informative contact when the aggregate
		// rate is zero (the exposed graph disconnects informed from
		// uninformed vertices), when the sampled waiting time overshoots the
		// unit boundary, or when rounding empties the cut; in each case the
		// clock jumps to the boundary and the next graph is exposed. If the
		// dynamic network returns the same *graph.Graph the incremental
		// state is still valid and the O(n+m) reload is skipped.
		advance := false
		total := st.weights.Total()
		if total <= 0 {
			advance = true
		} else {
			wait := rng.Exp(total)
			if now+wait >= boundary {
				advance = true
			} else {
				now += wait
				v := st.sampleNewlyInformed(rng, total)
				if v < 0 {
					// Numerically empty cut; treat like a zero-rate interval.
					advance = true
				} else {
					st.inform(v)
					res.Informed++
					res.Events++
					if opts.RecordTrace {
						res.Trace = append(res.Trace, TracePoint{Time: now, Informed: res.Informed})
					}
					continue
				}
			}
		}
		if advance {
			now = boundary
			step++
			res.Steps++
			next := net.GraphAt(step, st.informed)
			if next != g {
				g = next
				st.loadGraph(g)
			}
		}
	}
	res.SpreadTime = now
	res.Completed = true
	return res, nil
}

// asyncState holds the incremental bookkeeping of the cut-rate simulator.
//
// For every vertex it maintains an "informative rate":
//   - an informed vertex u contributes pushRate(u) = rate·(#uninformed
//     neighbors of u)/deg(u) when pushing is allowed;
//   - an uninformed vertex v contributes pullRate(v) = rate·(#informed
//     neighbors of v)/deg(v) when pulling is allowed.
//
// The sum of these weights is exactly λ(τ) of Equation (1) (for the standard
// push-pull with rate 1), and sampling a vertex proportionally to its weight
// followed by the appropriate neighbor choice reproduces the law of the next
// informative contact.
type asyncState struct {
	n        int
	mode     Mode
	rate     float64
	informed []bool
	g        *graph.Graph
	// counts[v] is the number of uninformed neighbors if v is informed, and
	// the number of informed neighbors if v is uninformed.
	counts  []int
	weights fenwick
}

// prepare re-targets the state to a run on n vertices, recycling every
// backing array.
func (st *asyncState) prepare(n int, mode Mode, rate float64) {
	st.n = n
	st.mode = mode
	st.rate = rate
	st.g = nil
	st.informed = growBools(st.informed, n)
	st.counts = growInts(st.counts, n)
	st.weights.Resize(n)
}

// loadGraph recomputes all counts and weights for a freshly exposed graph.
// The fused pass is bit-identical to the straightforward
// Reset-then-Set-per-vertex rebuild: weights are accumulated into the
// Fenwick tree in the same ascending vertex order (see fenwick.Add), the
// weight formula is vertexWeight inlined, and zero weights touch nothing —
// the pass only avoids the per-neighbor closure and the Set delta
// bookkeeping, which dominate graph reloads on rebuilding dynamic networks.
func (st *asyncState) loadGraph(g *graph.Graph) {
	st.g = g
	st.weights.Reset()
	informed := st.informed
	mode, rate := st.mode, st.rate
	for v := 0; v < st.n; v++ {
		cnt := 0
		inf := informed[v]
		nb := g.Neighbors(v)
		for _, u := range nb {
			if informed[u] != inf {
				cnt++
			}
		}
		st.counts[v] = cnt
		if cnt == 0 {
			continue
		}
		if inf {
			if mode == PullOnly {
				continue
			}
		} else if mode == PushOnly {
			continue
		}
		st.weights.Add(v, rate*float64(cnt)/float64(len(nb)))
	}
}

// vertexWeight returns the informative-contact rate contributed by v.
func (st *asyncState) vertexWeight(v int) float64 {
	d := st.g.Degree(v)
	if d == 0 || st.counts[v] == 0 {
		return 0
	}
	if st.informed[v] {
		if st.mode == PullOnly {
			return 0
		}
	} else {
		if st.mode == PushOnly {
			return 0
		}
	}
	return st.rate * float64(st.counts[v]) / float64(d)
}

// sampleNewlyInformed draws the vertex that becomes informed by the next
// informative contact. total must be the current weights.Total(), which the
// simulate loop has already computed for the waiting-time draw. It returns
// -1 if no contact is possible.
func (st *asyncState) sampleNewlyInformed(rng *xrand.RNG, total float64) int {
	if total <= 0 {
		return -1
	}
	x := st.weights.Sample(rng.Float64() * total)
	if x < 0 {
		return -1
	}
	if !st.informed[x] {
		// x pulled the rumor from one of its informed neighbors.
		return x
	}
	// x pushed the rumor to a uniformly random uninformed neighbor.
	target := rng.Intn(st.counts[x])
	seen := 0
	for _, u := range st.g.Neighbors(x) {
		if !st.informed[u] {
			if seen == target {
				return u
			}
			seen++
		}
	}
	return -1
}

// inform marks v as informed and updates all incremental structures.
func (st *asyncState) inform(v int) {
	if st.informed[v] {
		return
	}
	st.informed[v] = true
	// v's own count switches meaning: it now counts uninformed neighbors.
	nb := st.g.Neighbors(v)
	cnt := 0
	for _, u := range nb {
		if !st.informed[u] {
			cnt++
		}
	}
	st.counts[v] = cnt
	st.weights.Set(v, st.vertexWeight(v))
	// Every neighbor's count changes by one. The weight formula is
	// vertexWeight inlined, minus the degree-zero branch (a neighbor has
	// degree >= 1 by construction); the informing of a hub vertex updates
	// every leaf here, so this loop is the hottest edge of the simulator.
	mode, rate := st.mode, st.rate
	for _, u := range nb {
		cu := st.counts[u]
		inf := st.informed[u]
		if inf {
			// u lost an uninformed neighbor.
			cu--
		} else {
			// u gained an informed neighbor.
			cu++
		}
		st.counts[u] = cu
		var w float64
		if cu != 0 {
			if inf {
				if mode != PullOnly {
					w = rate * float64(cu) / float64(st.g.Degree(u))
				}
			} else if mode != PushOnly {
				w = rate * float64(cu) / float64(st.g.Degree(u))
			}
		}
		st.weights.Set(u, w)
	}
}
