package sim

import (
	"dynamicrumor/internal/dynamic"
	"dynamicrumor/internal/xrand"
)

// Protocol is a rumor-spreading process ready to execute on a network: the
// algorithm (asynchronous push-pull, synchronous push-pull, flooding) together
// with all of its options. It is the single execution contract shared by the
// batch engine, the experiment suite and the CLI; the three historical
// entry points RunAsync, RunSync and RunFlooding are its implementations.
//
// Run must be deterministic given (net, rng) and must not retain net or rng
// after returning, so distinct repetitions can run concurrently as long as
// each receives its own network instance and RNG stream.
type Protocol interface {
	// Run executes the process once and reports the outcome.
	Run(net dynamic.Network, rng *xrand.RNG) (*Result, error)
	// Kind returns the protocol's stable name ("async", "sync", "flooding"),
	// used by scenario serialization and error messages.
	Kind() string
}

// ReusableProtocol is the optional extension a Protocol implements when its
// simulator can recycle per-worker state: RunInto must behave exactly like
// Run (same stream, same result) while drawing its working arrays from sc
// and filling res instead of allocating a result when res is non-nil. The
// engine's Monte-Carlo workers detect it and carry one Scratch (and, on the
// streaming-reduction path, one Result) across all repetitions, which
// removes every per-repetition state allocation.
type ReusableProtocol interface {
	Protocol
	// RunInto executes the process once, reusing sc (which must not be nil)
	// and res (which may be nil for a freshly allocated result).
	RunInto(net dynamic.Network, rng *xrand.RNG, sc *Scratch, res *Result) (*Result, error)
}

// AsyncProtocol runs the asynchronous push-pull process of Definition 1.
type AsyncProtocol struct {
	Opts AsyncOptions
}

var _ ReusableProtocol = AsyncProtocol{}

// Run implements Protocol.
func (p AsyncProtocol) Run(net dynamic.Network, rng *xrand.RNG) (*Result, error) {
	return RunAsync(net, p.Opts, rng)
}

// RunInto implements ReusableProtocol.
func (p AsyncProtocol) RunInto(net dynamic.Network, rng *xrand.RNG, sc *Scratch, res *Result) (*Result, error) {
	return RunAsyncInto(net, p.Opts, rng, sc, res)
}

// Kind implements Protocol.
func (AsyncProtocol) Kind() string { return "async" }

// SyncProtocol runs the synchronous round-based push-pull process.
type SyncProtocol struct {
	Opts SyncOptions
}

var _ ReusableProtocol = SyncProtocol{}

// Run implements Protocol.
func (p SyncProtocol) Run(net dynamic.Network, rng *xrand.RNG) (*Result, error) {
	return RunSync(net, p.Opts, rng)
}

// RunInto implements ReusableProtocol.
func (p SyncProtocol) RunInto(net dynamic.Network, rng *xrand.RNG, sc *Scratch, res *Result) (*Result, error) {
	return RunSyncInto(net, p.Opts, rng, sc, res)
}

// Kind implements Protocol.
func (SyncProtocol) Kind() string { return "sync" }

// FloodingProtocol runs synchronous flooding; its Mode option is ignored.
type FloodingProtocol struct {
	Opts SyncOptions
}

var _ ReusableProtocol = FloodingProtocol{}

// Run implements Protocol.
func (p FloodingProtocol) Run(net dynamic.Network, rng *xrand.RNG) (*Result, error) {
	return RunFlooding(net, p.Opts, rng)
}

// RunInto implements ReusableProtocol.
func (p FloodingProtocol) RunInto(net dynamic.Network, rng *xrand.RNG, sc *Scratch, res *Result) (*Result, error) {
	return RunFloodingInto(net, p.Opts, rng, sc, res)
}

// Kind implements Protocol.
func (FloodingProtocol) Kind() string { return "flooding" }
