package sim

import (
	"dynamicrumor/internal/dynamic"
	"dynamicrumor/internal/graph"
	"dynamicrumor/internal/xrand"
)

// SyncOptions configures the synchronous round-based simulators.
type SyncOptions struct {
	// Start is the initially informed vertex.
	Start int
	// Mode selects push-pull (default), push-only or pull-only exchanges.
	Mode Mode
	// MaxRounds aborts the run after this many rounds (0 means 16·n²).
	MaxRounds int
	// RecordTrace stores one TracePoint per round in which the informed set
	// grew.
	RecordTrace bool
}

// RunSync simulates the synchronous rumor-spreading algorithm: in every round
// each vertex contacts a uniformly random neighbor in the current graph, and
// exchanges are evaluated against the informed set from the beginning of the
// round (so a vertex informed in round t starts spreading in round t+1).
// The network's step counter coincides with the round number, matching the
// paper's convention that the synchronous algorithm is synchronized with the
// network dynamics.
func RunSync(net dynamic.Network, opts SyncOptions, rng *xrand.RNG) (*Result, error) {
	return RunSyncInto(net, opts, rng, nil, nil)
}

// RunSyncInto is RunSync with recycled round buffers and result (either may
// be nil for a fresh one); stream and output are identical to RunSync.
func RunSyncInto(net dynamic.Network, opts SyncOptions, rng *xrand.RNG, sc *Scratch, res *Result) (*Result, error) {
	n := net.N()
	if opts.Start < 0 || opts.Start >= n {
		return nil, ErrInvalidStart
	}
	mode := opts.Mode.normalize()
	maxRounds := opts.MaxRounds
	if maxRounds <= 0 {
		maxRounds = 16 * n * n
	}
	if sc == nil {
		sc = NewScratch()
	}
	if res == nil {
		res = &Result{}
	}

	informed, next := sc.syncBuffers(n)
	informed[opts.Start] = true
	res.reset(n)
	if opts.RecordTrace {
		res.Trace = append(res.Trace, TracePoint{Time: 0, Informed: 1})
	}
	if n == 1 {
		res.Completed = true
		return res, nil
	}

	for round := 0; round < maxRounds; round++ {
		g := net.GraphAt(round, informed)
		res.Steps++
		copy(next, informed)
		newCount := 0
		for v := 0; v < n; v++ {
			d := g.Degree(v)
			if d == 0 {
				continue
			}
			u := g.Neighbor(v, rng.Intn(d))
			// v calls u: push if v knows the rumor, pull if u knows it,
			// evaluated on the start-of-round informed set.
			if informed[v] && !informed[u] && mode != PullOnly {
				if !next[u] {
					next[u] = true
					newCount++
				}
			}
			if !informed[v] && informed[u] && mode != PushOnly {
				if !next[v] {
					next[v] = true
					newCount++
				}
			}
		}
		copy(informed, next)
		res.Informed += newCount
		res.Events += newCount
		res.SpreadTime = float64(round + 1)
		if opts.RecordTrace && newCount > 0 {
			res.Trace = append(res.Trace, TracePoint{Time: res.SpreadTime, Informed: res.Informed})
		}
		if res.Informed == n {
			res.Completed = true
			return res, nil
		}
	}
	return res, nil
}

// RunFlooding simulates synchronous flooding: in every round each informed
// vertex informs all of its neighbors in the current graph. This is the
// baseline process studied in the related work on Markovian evolving graphs.
func RunFlooding(net dynamic.Network, opts SyncOptions, rng *xrand.RNG) (*Result, error) {
	return RunFloodingInto(net, opts, rng, nil, nil)
}

// RunFloodingInto is RunFlooding with recycled round buffers and result
// (either may be nil for a fresh one).
//
// The scan is frontier-based: in a round whose graph is unchanged from the
// previous round (pointer equality, which the rebuilding dynamic networks
// guarantee is reliable), only the vertices informed in the previous round
// probe their neighbors — an older informed vertex already informed its
// whole neighborhood the round it was on the frontier, so scanning it again
// cannot add anything. When the network exposes a different graph the
// frontier is rebuilt as the full informed set, because any informed vertex
// may have gained uninformed neighbors. Flooding is deterministic and
// consumes no randomness, so the informed set, counts and trace are provably
// identical to the historical scan-everyone loop; only the work changes —
// O(volume of the frontier) instead of O(n + m) per round on static graphs.
func RunFloodingInto(net dynamic.Network, opts SyncOptions, rng *xrand.RNG, sc *Scratch, res *Result) (*Result, error) {
	n := net.N()
	if opts.Start < 0 || opts.Start >= n {
		return nil, ErrInvalidStart
	}
	maxRounds := opts.MaxRounds
	if maxRounds <= 0 {
		maxRounds = 16 * n * n
	}
	_ = rng // flooding is deterministic given the network; kept for symmetry
	if sc == nil {
		sc = NewScratch()
	}
	if res == nil {
		res = &Result{}
	}

	informed := sc.informedBuffer(n)
	informed[opts.Start] = true
	res.reset(n)
	if opts.RecordTrace {
		res.Trace = append(res.Trace, TracePoint{Time: 0, Informed: 1})
	}
	if n == 1 {
		res.Completed = true
		return res, nil
	}

	frontier, spread := sc.frontierBuffers()
	frontier = append(frontier, opts.Start)
	var prev *graph.Graph
	for round := 0; round < maxRounds; round++ {
		g := net.GraphAt(round, informed)
		res.Steps++
		if g != prev && round > 0 {
			// New graph: every informed vertex may have new uninformed
			// neighbors, so this round floods from the full informed set.
			frontier = frontier[:0]
			for v := 0; v < n; v++ {
				if informed[v] {
					frontier = append(frontier, v)
				}
			}
		}
		prev = g
		spread = spread[:0]
		for _, v := range frontier {
			for _, u := range g.Neighbors(v) {
				if !informed[u] {
					informed[u] = true
					spread = append(spread, u)
				}
			}
		}
		newCount := len(spread)
		frontier, spread = spread, frontier
		res.Informed += newCount
		res.Events += newCount
		res.SpreadTime = float64(round + 1)
		if opts.RecordTrace && newCount > 0 {
			res.Trace = append(res.Trace, TracePoint{Time: res.SpreadTime, Informed: res.Informed})
		}
		if res.Informed == n {
			res.Completed = true
			break
		}
	}
	sc.frontier, sc.spread = frontier, spread
	return res, nil
}
