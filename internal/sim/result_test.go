package sim

import (
	"testing"
)

// linearTimeToReach is the historical reference implementation.
func linearTimeToReach(r *Result, count int) (float64, bool) {
	for _, p := range r.Trace {
		if p.Informed >= count {
			return p.Time, true
		}
	}
	return 0, false
}

// largeTrace builds a monotone trace with duplicate-free informed counts and
// irregular time gaps, large enough that a linear scan and a binary search
// disagree immediately if the search is off by one anywhere.
func largeTrace(n int) *Result {
	r := &Result{N: n, Informed: n, Completed: true}
	t := 0.0
	for i := 1; i <= n; i++ {
		t += 0.25 + float64(i%7)*0.125
		r.Trace = append(r.Trace, TracePoint{Time: t, Informed: i})
	}
	r.SpreadTime = t
	return r
}

func TestTimeToReachMatchesLinearScanOnLargeTrace(t *testing.T) {
	const n = 200_000
	r := largeTrace(n)
	for _, count := range []int{0, 1, 2, 3, n / 3, n / 2, n - 1, n, n + 1, 2 * n} {
		wantT, wantOK := linearTimeToReach(r, count)
		gotT, gotOK := r.TimeToReach(count)
		if gotT != wantT || gotOK != wantOK {
			t.Fatalf("TimeToReach(%d) = (%v, %v), linear reference = (%v, %v)", count, gotT, gotOK, wantT, wantOK)
		}
	}
}

func TestTimeToReachWithPlateaus(t *testing.T) {
	// Synchronous traces only record rounds where the informed set grew, so
	// counts can jump; the earliest point at or above the target must win.
	r := &Result{N: 10, Trace: []TracePoint{
		{Time: 0, Informed: 1},
		{Time: 3, Informed: 4},
		{Time: 5, Informed: 9},
		{Time: 9, Informed: 10},
	}}
	for _, c := range []struct {
		count  int
		wantT  float64
		wantOK bool
	}{
		{1, 0, true}, {2, 3, true}, {4, 3, true}, {5, 5, true},
		{9, 5, true}, {10, 9, true}, {11, 0, false},
	} {
		gotT, gotOK := r.TimeToReach(c.count)
		if gotT != c.wantT || gotOK != c.wantOK {
			t.Fatalf("TimeToReach(%d) = (%v, %v), want (%v, %v)", c.count, gotT, gotOK, c.wantT, c.wantOK)
		}
	}
}

func TestTimeToReachEmptyTrace(t *testing.T) {
	r := &Result{N: 5, Informed: 5}
	if _, ok := r.TimeToReach(1); ok {
		t.Fatal("TimeToReach on a traceless result must report not-reached")
	}
}

func BenchmarkTimeToReach(b *testing.B) {
	r := largeTrace(1_000_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.TimeToReach(999_999)
	}
}
