package sim

import (
	"math"
	"testing"

	"dynamicrumor/internal/dynamic"
	"dynamicrumor/internal/gen"
	"dynamicrumor/internal/graph"
	"dynamicrumor/internal/stats"
	"dynamicrumor/internal/xrand"
)

// isolatedVertexGraph returns K4 on vertices 0..3 plus the isolated vertex 4.
func isolatedVertexGraph() *graph.Graph {
	b := graph.NewBuilder(5)
	for u := 0; u < 4; u++ {
		for v := u + 1; v < 4; v++ {
			b.AddEdge(u, v)
		}
	}
	return b.Build()
}

// repeatGraphs returns a sequence with `first` repeated `times` times followed
// by `last`.
func repeatGraphs(first *graph.Graph, times int, last *graph.Graph) []*graph.Graph {
	var out []*graph.Graph
	for i := 0; i < times; i++ {
		out = append(out, first)
	}
	return append(out, last)
}

func TestRunAsyncSingleVertex(t *testing.T) {
	net := dynamic.NewStatic(gen.Clique(1))
	res, err := RunAsync(net, AsyncOptions{Start: 0}, xrand.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed || res.SpreadTime != 0 || res.Informed != 1 {
		t.Fatalf("unexpected result %+v", res)
	}
}

func TestRunAsyncInvalidStart(t *testing.T) {
	net := dynamic.NewStatic(gen.Clique(4))
	if _, err := RunAsync(net, AsyncOptions{Start: 9}, xrand.New(1)); err != ErrInvalidStart {
		t.Fatalf("error = %v, want ErrInvalidStart", err)
	}
	if _, err := RunAsyncNaive(net, AsyncOptions{Start: -1}, xrand.New(1)); err != ErrInvalidStart {
		t.Fatalf("naive error = %v, want ErrInvalidStart", err)
	}
}

func TestRunAsyncCompletesOnBasicGraphs(t *testing.T) {
	rng := xrand.New(2)
	nets := map[string]dynamic.Network{
		"clique":    dynamic.NewStatic(gen.Clique(40)),
		"star":      dynamic.NewStatic(gen.Star(40, 0)),
		"cycle":     dynamic.NewStatic(gen.Cycle(40)),
		"path":      dynamic.NewStatic(gen.Path(40)),
		"hypercube": dynamic.NewStatic(gen.Hypercube(6)),
	}
	for name, net := range nets {
		res, err := RunAsync(net, AsyncOptions{Start: 0, RecordTrace: true}, rng)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !res.Completed {
			t.Fatalf("%s: did not complete", name)
		}
		if res.Informed != net.N() {
			t.Fatalf("%s: informed %d of %d", name, res.Informed, net.N())
		}
		if res.Events != net.N()-1 {
			t.Fatalf("%s: events = %d, want n-1 = %d", name, res.Events, net.N()-1)
		}
		if res.Coverage() != 1 {
			t.Fatalf("%s: coverage %v", name, res.Coverage())
		}
		// Trace is strictly increasing in informed count and non-decreasing in
		// time.
		for i := 1; i < len(res.Trace); i++ {
			if res.Trace[i].Informed != res.Trace[i-1].Informed+1 {
				t.Fatalf("%s: trace informed counts not consecutive", name)
			}
			if res.Trace[i].Time < res.Trace[i-1].Time {
				t.Fatalf("%s: trace times decrease", name)
			}
		}
	}
}

func TestRunAsyncCliqueLogarithmicSpread(t *testing.T) {
	// On the complete graph the asynchronous push-pull finishes in Θ(log n)
	// time; check that the measured mean is close to that scale and far from
	// linear.
	rng := xrand.New(3)
	const n = 200
	net := dynamic.NewStatic(gen.Clique(n))
	var times []float64
	for rep := 0; rep < 30; rep++ {
		res, err := RunAsync(net, AsyncOptions{Start: rep % n}, rng)
		if err != nil {
			t.Fatal(err)
		}
		times = append(times, res.SpreadTime)
	}
	mean := stats.Mean(times)
	logn := math.Log(float64(n))
	if mean < logn/2 || mean > 6*logn {
		t.Fatalf("clique mean spread time %v, want Θ(log n) ≈ %v", mean, logn)
	}
}

func TestRunAsyncPathLinearSpread(t *testing.T) {
	// On the path the rumor must travel hop by hop: expected time Θ(n).
	rng := xrand.New(4)
	const n = 60
	net := dynamic.NewStatic(gen.Path(n))
	var times []float64
	for rep := 0; rep < 10; rep++ {
		res, err := RunAsync(net, AsyncOptions{Start: 0}, rng)
		if err != nil {
			t.Fatal(err)
		}
		times = append(times, res.SpreadTime)
	}
	mean := stats.Mean(times)
	if mean < float64(n)/4 || mean > 4*float64(n) {
		t.Fatalf("path mean spread time %v, want Θ(n) ≈ %v", mean, float64(n))
	}
}

func TestRunAsyncMaxTimeAborts(t *testing.T) {
	rng := xrand.New(5)
	net := dynamic.NewStatic(gen.Path(200))
	res, err := RunAsync(net, AsyncOptions{Start: 0, MaxTime: 1}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed {
		t.Fatal("run should have been cut off by MaxTime")
	}
	if res.Informed >= 200 {
		t.Fatal("everything informed despite MaxTime=1 on a long path")
	}
}

func TestRunAsyncDisconnectedNeverCompletes(t *testing.T) {
	rng := xrand.New(6)
	iso := dynamic.NewStatic(isolatedVertexGraph())
	res, err := RunAsync(iso, AsyncOptions{Start: 0, MaxTime: 50}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed {
		t.Fatal("disconnected graph cannot be fully informed")
	}
	if res.Informed != 4 {
		t.Fatalf("informed = %d, want 4 (the connected component)", res.Informed)
	}
}

func TestRunAsyncPushOnlyAndPullOnly(t *testing.T) {
	rng := xrand.New(7)
	net := dynamic.NewStatic(gen.Clique(30))
	for _, mode := range []Mode{PushOnly, PullOnly, PushPull} {
		res, err := RunAsync(net, AsyncOptions{Start: 0, Mode: mode}, rng)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Completed {
			t.Fatalf("mode %v did not complete", mode)
		}
	}
}

func TestRunAsyncPushOnlyStarFromLeaf(t *testing.T) {
	// Push-only from a leaf of a star: the leaf can only push to the center,
	// then the center pushes to every other leaf; still completes.
	rng := xrand.New(8)
	net := dynamic.NewStatic(gen.Star(20, 0))
	res, err := RunAsync(net, AsyncOptions{Start: 5, Mode: PushOnly}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatal("push-only on star did not complete")
	}
}

func TestRunAsyncClockRateScalesTime(t *testing.T) {
	// Doubling every clock rate should roughly halve the spread time.
	const n = 100
	net := dynamic.NewStatic(gen.Clique(n))
	mean := func(rate float64, seed uint64) float64 {
		rng := xrand.New(seed)
		var times []float64
		for rep := 0; rep < 40; rep++ {
			res, err := RunAsync(net, AsyncOptions{Start: 0, ClockRate: rate}, rng)
			if err != nil {
				t.Fatal(err)
			}
			times = append(times, res.SpreadTime)
		}
		return stats.Mean(times)
	}
	m1 := mean(1, 100)
	m2 := mean(2, 200)
	ratio := m1 / m2
	if ratio < 1.5 || ratio > 2.7 {
		t.Fatalf("rate-1 vs rate-2 mean ratio %v, want about 2", ratio)
	}
}

func TestRunAsyncModeString(t *testing.T) {
	if PushPull.String() != "push-pull" || PushOnly.String() != "push" || PullOnly.String() != "pull" {
		t.Fatal("Mode.String wrong")
	}
	if Mode(42).String() == "" {
		t.Fatal("unknown mode should still stringify")
	}
}

func TestRunAsyncDynamicSequence(t *testing.T) {
	// A network that is a disconnected matching for the first 3 steps and then
	// a clique: the spread time must be at least 3.
	rng := xrand.New(9)
	matching := isolatedVertexGraph() // K4 plus isolated vertex 4
	clique := gen.Clique(5)
	seq := dynamic.NewSequence(repeatGraphs(matching, 3, clique))
	res, err := RunAsync(seq, AsyncOptions{Start: 4}, rng) // start at the isolated vertex
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatal("did not complete after the clique appeared")
	}
	if res.SpreadTime < 3 {
		t.Fatalf("spread time %v, but the start vertex was isolated until t=3", res.SpreadTime)
	}
}

func TestCrossValidationAsyncVsNaive(t *testing.T) {
	// The cut-rate simulator and the tick-by-tick simulator sample the same
	// process; compare their spread-time distributions on several graphs.
	if testing.Short() {
		t.Skip("cross-validation is slow")
	}
	cases := map[string]dynamic.Network{
		"clique10": dynamic.NewStatic(gen.Clique(10)),
		"star10":   dynamic.NewStatic(gen.Star(10, 0)),
		"cycle12":  dynamic.NewStatic(gen.Cycle(12)),
		"path8":    dynamic.NewStatic(gen.Path(8)),
	}
	const reps = 400
	for name, net := range cases {
		rngA := xrand.New(1000)
		rngB := xrand.New(2000)
		var fast, naive []float64
		for i := 0; i < reps; i++ {
			ra, err := RunAsync(net, AsyncOptions{Start: 0}, rngA)
			if err != nil {
				t.Fatal(err)
			}
			rb, err := RunAsyncNaive(net, AsyncOptions{Start: 0}, rngB)
			if err != nil {
				t.Fatal(err)
			}
			fast = append(fast, ra.SpreadTime)
			naive = append(naive, rb.SpreadTime)
		}
		d := stats.KSDistance(fast, naive)
		// With 400 samples per side, a KS distance above ~0.12 would reject
		// equality at far beyond the 1% level.
		if d > 0.12 {
			t.Errorf("%s: KS distance between simulators = %v (means %.3f vs %.3f)",
				name, d, stats.Mean(fast), stats.Mean(naive))
		}
	}
}

func TestCrossValidationOnDynamicStar(t *testing.T) {
	if testing.Short() {
		t.Skip("cross-validation is slow")
	}
	const reps = 300
	var fast, naive []float64
	for i := 0; i < reps; i++ {
		rng := xrand.New(uint64(3000 + i))
		netA, err := dynamic.NewDichotomyG2(12, rng.Split(1))
		if err != nil {
			t.Fatal(err)
		}
		ra, err := RunAsync(netA, AsyncOptions{Start: netA.StartVertex()}, rng.Split(2))
		if err != nil {
			t.Fatal(err)
		}
		fast = append(fast, ra.SpreadTime)

		rng2 := xrand.New(uint64(9000 + i))
		netB, err := dynamic.NewDichotomyG2(12, rng2.Split(1))
		if err != nil {
			t.Fatal(err)
		}
		rb, err := RunAsyncNaive(netB, AsyncOptions{Start: netB.StartVertex()}, rng2.Split(2))
		if err != nil {
			t.Fatal(err)
		}
		naive = append(naive, rb.SpreadTime)
	}
	if d := stats.KSDistance(fast, naive); d > 0.15 {
		t.Errorf("dynamic star: KS distance %v (means %.3f vs %.3f)",
			d, stats.Mean(fast), stats.Mean(naive))
	}
}

func TestResultTimeToReach(t *testing.T) {
	r := &Result{Trace: []TracePoint{{0, 1}, {1.5, 2}, {2.5, 3}}, N: 3}
	if tm, ok := r.TimeToReach(2); !ok || tm != 1.5 {
		t.Fatalf("TimeToReach(2) = (%v,%v)", tm, ok)
	}
	if _, ok := r.TimeToReach(5); ok {
		t.Fatal("TimeToReach(5) should fail")
	}
}
