package sim

// fenwick is a Fenwick (binary indexed) tree over non-negative float64
// weights supporting point updates, prefix sums and sampling an index
// proportionally to its weight, all in O(log n). It is the weighted-sampling
// backbone of the asynchronous simulator.
type fenwick struct {
	tree   []float64
	weight []float64
}

func newFenwick(n int) *fenwick {
	return &fenwick{tree: make([]float64, n+1), weight: make([]float64, n)}
}

// Len returns the number of indices.
func (f *fenwick) Len() int { return len(f.weight) }

// Set assigns weight w to index i.
func (f *fenwick) Set(i int, w float64) {
	if w < 0 {
		w = 0
	}
	delta := w - f.weight[i]
	if delta == 0 {
		return
	}
	f.weight[i] = w
	for j := i + 1; j < len(f.tree); j += j & (-j) {
		f.tree[j] += delta
	}
}

// Add assigns weight w > 0 to index i, which must currently have weight 0
// (the state right after Reset or Resize). It is Set without the delta
// bookkeeping: the tree nodes receive exactly the same additions in exactly
// the same order, so a Reset-then-Add rebuild is bit-identical to a
// Reset-then-Set rebuild — this is the bulk-load fast path of the
// asynchronous simulator's graph reloads.
func (f *fenwick) Add(i int, w float64) {
	f.weight[i] = w
	for j := i + 1; j < len(f.tree); j += j & (-j) {
		f.tree[j] += w
	}
}

// Get returns the weight of index i.
func (f *fenwick) Get(i int) float64 { return f.weight[i] }

// Total returns the sum of all weights.
func (f *fenwick) Total() float64 {
	return f.prefix(len(f.weight))
}

// prefix returns the sum of weights of indices < i.
func (f *fenwick) prefix(i int) float64 {
	sum := 0.0
	for j := i; j > 0; j -= j & (-j) {
		sum += f.tree[j]
	}
	return sum
}

// Sample returns the smallest index i such that the prefix sum through i
// exceeds target (0 <= target < Total()). Weights accumulated by floating
// point may leave target marginally above the total; in that case the last
// positively weighted index is returned. It returns -1 if all weights are 0.
func (f *fenwick) Sample(target float64) int {
	if target < 0 {
		target = 0
	}
	idx := 0
	bit := 1
	for bit*2 <= len(f.weight) {
		bit *= 2
	}
	remaining := target
	for ; bit > 0; bit /= 2 {
		next := idx + bit
		if next < len(f.tree) && f.tree[next] <= remaining {
			remaining -= f.tree[next]
			idx = next
		}
	}
	// idx is now the count of indices whose cumulative weight is <= target.
	if idx >= len(f.weight) {
		idx = len(f.weight) - 1
	}
	// Skip any zero-weight indices caused by rounding at the boundary.
	for idx >= 0 && f.weight[idx] == 0 {
		idx--
	}
	if idx < 0 {
		for i := len(f.weight) - 1; i >= 0; i-- {
			if f.weight[i] > 0 {
				return i
			}
		}
		return -1
	}
	return idx
}

// Reset sets every weight to zero.
func (f *fenwick) Reset() {
	for i := range f.tree {
		f.tree[i] = 0
	}
	for i := range f.weight {
		f.weight[i] = 0
	}
}

// Resize re-targets the tree to n indices with all weights zero, reusing the
// backing arrays when their capacity suffices. It is the recycling form of
// newFenwick used by the pooled simulator scratch.
func (f *fenwick) Resize(n int) {
	if cap(f.tree) >= n+1 && cap(f.weight) >= n {
		f.tree = f.tree[:n+1]
		f.weight = f.weight[:n]
		f.Reset()
		return
	}
	f.tree = make([]float64, n+1)
	f.weight = make([]float64, n)
}
