package faults

import (
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// TestParsePlanRoundTrip: the spec syntax parses into the expected plan and
// String renders back an equivalent spec.
func TestParsePlanRoundTrip(t *testing.T) {
	p, err := ParsePlan("seed=7,drop=0.05,error=0.1,delay=30ms:0.2,stall=2s:0.01")
	if err != nil {
		t.Fatal(err)
	}
	want := Plan{Seed: 7, Drop: 0.05, Error: 0.1, Delay: 0.2, DelayFor: 30 * time.Millisecond, Stall: 0.01, StallFor: 2 * time.Second}
	if p != want {
		t.Fatalf("ParsePlan = %+v, want %+v", p, want)
	}
	p2, err := ParsePlan(p.String())
	if err != nil {
		t.Fatal(err)
	}
	if p2 != p {
		t.Errorf("String round trip = %+v, want %+v", p2, p)
	}
}

// TestParsePlanRejects: malformed specs fail loudly.
func TestParsePlanRejects(t *testing.T) {
	for _, spec := range []string{
		"drop",               // no value
		"drop=1.5",           // probability out of range
		"delay=0.5",          // missing duration
		"delay=abc:0.5",      // bad duration
		"warp=0.5",           // unknown mode
		"drop=0.6,error=0.6", // over-full distribution
	} {
		if _, err := ParsePlan(spec); err == nil {
			t.Errorf("ParsePlan(%q) accepted a malformed spec", spec)
		}
	}
	if p, err := ParsePlan(""); err != nil || !p.zero() {
		t.Errorf("empty spec = %+v, %v; want the zero plan", p, err)
	}
}

// TestInjectorDeterminism: two injectors with the same plan make the same
// decision sequence.
func TestInjectorDeterminism(t *testing.T) {
	plan := Plan{Seed: 42, Drop: 0.2, Error: 0.3}
	a, b := New(plan), New(plan)
	for i := 0; i < 500; i++ {
		if da, db := a.decide(), b.decide(); da != db {
			t.Fatalf("decision %d diverged: %v vs %v", i, da, db)
		}
	}
	sa, sb := a.Stats(), b.Stats()
	if sa != sb {
		t.Errorf("stats diverged: %+v vs %+v", sa, sb)
	}
	if sa.Dropped == 0 || sa.Errored == 0 {
		t.Errorf("500 draws at p=0.2/0.3 injected nothing: %+v", sa)
	}
}

// TestInjectorFaultModes: errors surface as 500s, drops as transport
// errors, and clean requests pass through.
func TestInjectorFaultModes(t *testing.T) {
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "ok")
	})

	// Always-error plan.
	ts := httptest.NewServer(New(Plan{Seed: 1, Error: 1}).Wrap(inner))
	resp, err := http.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Errorf("error mode served status %d, want 500", resp.StatusCode)
	}
	ts.Close()

	// Always-drop plan: the client sees a transport failure, not a status.
	ts = httptest.NewServer(New(Plan{Seed: 1, Drop: 1}).Wrap(inner))
	if resp, err := http.Get(ts.URL); err == nil {
		resp.Body.Close()
		t.Error("drop mode returned a response, want a severed connection")
	}
	ts.Close()

	// Zero plan: passthrough, byte for byte.
	ts = httptest.NewServer(New(Plan{Seed: 1}).Wrap(inner))
	defer ts.Close()
	resp, err = http.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if string(body) != "ok" {
		t.Errorf("zero plan served %q, want ok", body)
	}
}

// TestInjectorDelayServes: a delayed request is still served correctly
// after the hold.
func TestInjectorDelayServes(t *testing.T) {
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "late")
	})
	ts := httptest.NewServer(New(Plan{Seed: 1, Delay: 1, DelayFor: 10 * time.Millisecond}).Wrap(inner))
	defer ts.Close()
	start := time.Now()
	resp, err := http.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if string(body) != "late" {
		t.Errorf("delayed request served %q", body)
	}
	if elapsed := time.Since(start); elapsed < 10*time.Millisecond {
		t.Errorf("delay mode served after %v, want >= 10ms", elapsed)
	}
}
