// Package faults is a deterministic, seedable fault injector for the
// cluster HTTP boundary. An Injector wraps an http.Handler and, per request,
// draws from a seeded RNG to decide whether to serve it cleanly, delay it,
// answer 500, stall it, or drop the connection outright — the failure modes
// a real network inflicts on the coordinator/worker protocol, produced on
// demand so the recovery paths (retry with backoff, lease expiry, upload
// replay, crash recovery) are exercised by tests and smoke tooling instead
// of trusted.
//
// Determinism is sequence-level: given the same plan (including its seed)
// and the same arrival order of requests, the injector makes the same
// decisions. Tests that serialize their requests get fully reproducible
// fault schedules; concurrent smoke runs get a reproducible distribution.
package faults

import (
	"fmt"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Plan is a fault schedule: independent probabilities for each fault mode,
// drawn per request. Probabilities are in [0, 1]; modes are checked in the
// order drop, stall, error, delay, and at most one fires per request
// (delay excepted — a delayed request is then served normally).
type Plan struct {
	// Seed seeds the decision RNG; equal plans make equal decisions.
	Seed uint64
	// Drop is the probability the connection is severed with no response —
	// the client sees a reset, not a status.
	Drop float64
	// Stall is the probability the request hangs for StallFor (bounded by
	// the client's patience) and is then severed. Models a half-dead peer.
	Stall    float64
	StallFor time.Duration
	// Error is the probability of an immediate 500 response.
	Error float64
	// Delay is the probability the request is held for DelayFor before
	// being served normally. Models latency spikes.
	Delay    float64
	DelayFor time.Duration
}

// zero reports whether the plan injects nothing.
func (p Plan) zero() bool {
	return p.Drop == 0 && p.Stall == 0 && p.Error == 0 && p.Delay == 0
}

// String renders the plan in the spec syntax ParsePlan accepts.
func (p Plan) String() string {
	parts := []string{fmt.Sprintf("seed=%d", p.Seed)}
	if p.Drop > 0 {
		parts = append(parts, fmt.Sprintf("drop=%g", p.Drop))
	}
	if p.Stall > 0 {
		parts = append(parts, fmt.Sprintf("stall=%s:%g", p.StallFor, p.Stall))
	}
	if p.Error > 0 {
		parts = append(parts, fmt.Sprintf("error=%g", p.Error))
	}
	if p.Delay > 0 {
		parts = append(parts, fmt.Sprintf("delay=%s:%g", p.DelayFor, p.Delay))
	}
	return strings.Join(parts, ",")
}

// ParsePlan parses a comma-separated fault spec, the -chaos flag syntax:
//
//	seed=N            RNG seed (default 1)
//	drop=P            sever the connection with probability P
//	error=P           answer 500 with probability P
//	delay=DUR:P       hold the request DUR with probability P, then serve
//	stall=DUR:P       hang DUR with probability P, then sever
//
// Example: "seed=7,drop=0.05,error=0.1,delay=30ms:0.2,stall=2s:0.01".
func ParsePlan(spec string) (Plan, error) {
	p := Plan{Seed: 1}
	for _, field := range strings.Split(spec, ",") {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		k, v, ok := strings.Cut(field, "=")
		if !ok {
			return Plan{}, fmt.Errorf("faults: %q is not key=value", field)
		}
		switch k {
		case "seed":
			n, err := strconv.ParseUint(v, 10, 64)
			if err != nil {
				return Plan{}, fmt.Errorf("faults: seed %q: %w", v, err)
			}
			p.Seed = n
		case "drop":
			prob, err := parseProb(v)
			if err != nil {
				return Plan{}, err
			}
			p.Drop = prob
		case "error":
			prob, err := parseProb(v)
			if err != nil {
				return Plan{}, err
			}
			p.Error = prob
		case "delay":
			d, prob, err := parseTimedProb(v)
			if err != nil {
				return Plan{}, err
			}
			p.DelayFor, p.Delay = d, prob
		case "stall":
			d, prob, err := parseTimedProb(v)
			if err != nil {
				return Plan{}, err
			}
			p.StallFor, p.Stall = d, prob
		default:
			return Plan{}, fmt.Errorf("faults: unknown fault mode %q", k)
		}
	}
	if sum := p.Drop + p.Stall + p.Error + p.Delay; sum > 1 {
		return Plan{}, fmt.Errorf("faults: mode probabilities sum to %g > 1", sum)
	}
	return p, nil
}

func parseProb(v string) (float64, error) {
	prob, err := strconv.ParseFloat(v, 64)
	if err != nil || prob < 0 || prob > 1 {
		return 0, fmt.Errorf("faults: probability %q is not in [0, 1]", v)
	}
	return prob, nil
}

func parseTimedProb(v string) (time.Duration, float64, error) {
	ds, ps, ok := strings.Cut(v, ":")
	if !ok {
		return 0, 0, fmt.Errorf("faults: %q is not duration:probability", v)
	}
	d, err := time.ParseDuration(ds)
	if err != nil || d < 0 {
		return 0, 0, fmt.Errorf("faults: duration %q: %v", ds, err)
	}
	prob, err := parseProb(ps)
	if err != nil {
		return 0, 0, err
	}
	return d, prob, nil
}

// Stats counts injected faults by mode.
type Stats struct {
	Requests int64 `json:"requests"`
	Dropped  int64 `json:"dropped"`
	Stalled  int64 `json:"stalled"`
	Errored  int64 `json:"errored"`
	Delayed  int64 `json:"delayed"`
}

// Injector injects a Plan's faults into a wrapped handler. Safe for
// concurrent use; decisions are serialized on one seeded RNG, so the
// decision sequence is a pure function of the plan and arrival order.
type Injector struct {
	plan Plan

	mu    sync.Mutex
	rng   *rand.Rand
	stats Stats
}

// New returns an injector for the plan.
func New(plan Plan) *Injector {
	return &Injector{plan: plan, rng: rand.New(rand.NewSource(int64(plan.Seed)))}
}

// decision is one fault draw.
type decision int

const (
	serve decision = iota
	drop
	stall
	errorOut
	delay
)

// decide draws the next fault decision.
func (i *Injector) decide() decision {
	i.mu.Lock()
	defer i.mu.Unlock()
	i.stats.Requests++
	u := i.rng.Float64()
	p := i.plan
	switch {
	case u < p.Drop:
		i.stats.Dropped++
		return drop
	case u < p.Drop+p.Stall:
		i.stats.Stalled++
		return stall
	case u < p.Drop+p.Stall+p.Error:
		i.stats.Errored++
		return errorOut
	case u < p.Drop+p.Stall+p.Error+p.Delay:
		i.stats.Delayed++
		return delay
	}
	return serve
}

// Stats snapshots the injection counters.
func (i *Injector) Stats() Stats {
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.stats
}

// Wrap returns h with the plan's faults injected in front of it. A zero
// plan returns h unchanged.
func (i *Injector) Wrap(h http.Handler) http.Handler {
	if i.plan.zero() {
		return h
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch i.decide() {
		case drop:
			// ErrAbortHandler severs the connection without a response — the
			// sanctioned way to make net/http hang up mid-request.
			panic(http.ErrAbortHandler)
		case stall:
			wait(r, i.plan.StallFor)
			panic(http.ErrAbortHandler)
		case errorOut:
			http.Error(w, `{"error":"injected fault"}`, http.StatusInternalServerError)
		case delay:
			wait(r, i.plan.DelayFor)
			h.ServeHTTP(w, r)
		default:
			h.ServeHTTP(w, r)
		}
	})
}

// wait sleeps d or until the client gives up on the request.
func wait(r *http.Request, d time.Duration) {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-r.Context().Done():
	case <-t.C:
	}
}
