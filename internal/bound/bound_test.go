package bound

import (
	"math"
	"testing"

	"dynamicrumor/internal/gen"
	"dynamicrumor/internal/graph"
)

func TestTheorem11Constant(t *testing.T) {
	c := Theorem11Constant(1)
	want := 30 / C0
	if math.Abs(c-want) > 1e-9 {
		t.Fatalf("C(1) = %v, want %v", c, want)
	}
	// c below 1 is clamped to 1.
	if Theorem11Constant(0.5) != c {
		t.Fatal("c < 1 should clamp to c = 1")
	}
	if Theorem11Constant(2) <= c {
		t.Fatal("constant should grow with c")
	}
}

func TestTheorem11ConstantProfile(t *testing.T) {
	// With Φ·ρ = 0.5 per step, the bound is reached at
	// t = ceil(C log n / 0.5) - 1 steps.
	n := 100
	p := ConstantProfile(StepProfile{Phi: 1, Rho: 0.5, Connected: true})
	got, err := Theorem11(p, n, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	threshold := Theorem11Constant(1) * math.Log(float64(n))
	want := int(math.Ceil(threshold/0.5)) - 1
	if got != want {
		t.Fatalf("Theorem11 = %d, want %d", got, want)
	}
}

func TestTheorem11TinyN(t *testing.T) {
	p := ConstantProfile(StepProfile{Phi: 1, Rho: 1})
	got, err := Theorem11(p, 1, 1, 0)
	if err != nil || got != 0 {
		t.Fatalf("Theorem11(n=1) = (%d, %v), want (0, nil)", got, err)
	}
}

func TestTheorem11NotReached(t *testing.T) {
	p := ConstantProfile(StepProfile{Phi: 0, Rho: 0})
	if _, err := Theorem11(p, 50, 1, 100); err != ErrNotReached {
		t.Fatalf("error = %v, want ErrNotReached", err)
	}
}

func TestTheorem11NormalizedSmallerThanFull(t *testing.T) {
	n := 200
	p := ConstantProfile(StepProfile{Phi: 0.1, Rho: 0.5})
	full, err := Theorem11(p, n, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	norm, err := Theorem11Normalized(p, n, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if norm >= full {
		t.Fatalf("normalized bound %d should be below the full-constant bound %d", norm, full)
	}
	if _, err := Theorem11Normalized(ConstantProfile(StepProfile{}), 50, 1, 10); err != ErrNotReached {
		t.Fatal("unreachable normalized bound should error")
	}
	if got, _ := Theorem11Normalized(p, 1, 1, 0); got != 0 {
		t.Fatal("n=1 should be 0")
	}
}

func TestTheorem13(t *testing.T) {
	// Connected, ρ̄ = 0.25 per step: threshold 2n reached after 8n-1 steps.
	n := 30
	p := ConstantProfile(StepProfile{AbsRho: 0.25, Connected: true})
	got, err := Theorem13(p, n, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got != 8*n-1 {
		t.Fatalf("Theorem13 = %d, want %d", got, 8*n-1)
	}
}

func TestTheorem13SkipsDisconnectedSteps(t *testing.T) {
	// Alternate connected/disconnected: only half the steps count.
	n := 10
	p := func(t int) StepProfile {
		if t%2 == 0 {
			return StepProfile{AbsRho: 1, Connected: true}
		}
		return StepProfile{AbsRho: 1, Connected: false}
	}
	got, err := Theorem13(p, n, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Needs 2n = 20 connected steps; they are steps 0,2,...,38.
	if got != 38 {
		t.Fatalf("Theorem13 = %d, want 38", got)
	}
}

func TestTheorem13NotReached(t *testing.T) {
	p := ConstantProfile(StepProfile{AbsRho: 1, Connected: false})
	if _, err := Theorem13(p, 20, 50); err != ErrNotReached {
		t.Fatalf("error = %v, want ErrNotReached", err)
	}
	if got, _ := Theorem13(p, 1, 0); got != 0 {
		t.Fatal("n=1 should be 0")
	}
}

func TestCorollary16PicksMinimum(t *testing.T) {
	n := 50
	// Profile where the absolute bound is much better: Φ·ρ tiny but ρ̄ = 1.
	p := ConstantProfile(StepProfile{Phi: 1e-6, Rho: 1e-6, AbsRho: 1, Connected: true})
	got, err := Corollary16(p, n, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	t13, _ := Theorem13(p, n, 0)
	if got != t13 {
		t.Fatalf("Corollary16 = %d, want the Theorem 1.3 value %d", got, t13)
	}
	// Profile where Theorem 1.1 is better.
	p2 := ConstantProfile(StepProfile{Phi: 1, Rho: 1, AbsRho: 1e-9, Connected: true})
	got2, err := Corollary16(p2, n, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	t11, _ := Theorem11(p2, n, 1, 0)
	if got2 != t11 {
		t.Fatalf("Corollary16 = %d, want the Theorem 1.1 value %d", got2, t11)
	}
}

func TestCorollary16OnlyOneReached(t *testing.T) {
	n := 20
	// Only the absolute bound is reachable within the small budget.
	p := ConstantProfile(StepProfile{Phi: 1e-9, Rho: 1e-9, AbsRho: 1, Connected: true})
	got, err := Corollary16(p, n, 1, 3*n)
	if err != nil {
		t.Fatal(err)
	}
	if got != 2*n-1 {
		t.Fatalf("Corollary16 = %d, want %d", got, 2*n-1)
	}
	// Neither reachable.
	if _, err := Corollary16(ConstantProfile(StepProfile{}), n, 1, 10); err != ErrNotReached {
		t.Fatal("want ErrNotReached")
	}
}

func TestRemark14WorstCase(t *testing.T) {
	if got := Remark14WorstCase(10); got != 180 {
		t.Fatalf("Remark14WorstCase(10) = %v, want 180", got)
	}
	if Remark14WorstCase(1) != 0 {
		t.Fatal("n=1 should be 0")
	}
}

func TestGiakkoupisSyncCarriesMFactor(t *testing.T) {
	// Same conductance profile, different M: the bound scales linearly in M.
	n := 100
	p := ConstantProfile(StepProfile{Phi: 0.5})
	small, err := GiakkoupisSync(p, n, 1, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	big, err := GiakkoupisSync(p, n, 50, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if big < 40*small {
		t.Fatalf("M=50 bound %d should be about 50x the M=1 bound %d", big, small)
	}
	if _, err := GiakkoupisSync(ConstantProfile(StepProfile{}), n, 1, 1, 10); err != ErrNotReached {
		t.Fatal("want ErrNotReached")
	}
	if got, _ := GiakkoupisSync(p, 1, 1, 1, 0); got != 0 {
		t.Fatal("n=1 should be 0")
	}
}

func TestStaticAsync(t *testing.T) {
	got, err := StaticAsync(100, 0.5, 2)
	if err != nil {
		t.Fatal(err)
	}
	want := 2 * math.Log(100) / 0.5
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("StaticAsync = %v, want %v", got, want)
	}
	if _, err := StaticAsync(100, 0, 1); err == nil {
		t.Fatal("zero conductance should error")
	}
	if got, _ := StaticAsync(1, 0.5, 1); got != 0 {
		t.Fatal("n=1 should be 0")
	}
	// Default constant.
	d, err := StaticAsync(100, 0.5, 0)
	if err != nil || d <= 0 {
		t.Fatal("default constant should work")
	}
}

func TestLemma22Bound(t *testing.T) {
	// The bound is decreasing in r and equals 1 at r=0.
	if Lemma22Bound(0) != 1 {
		t.Fatal("Lemma22Bound(0) should be 1")
	}
	if Lemma22Bound(10) >= Lemma22Bound(5) {
		t.Fatal("bound should decrease with r")
	}
	if Lemma22Bound(100) > 2e-6 {
		t.Fatalf("Lemma22Bound(100) = %v, want < 2e-6", Lemma22Bound(100))
	}
}

func TestMeasureProfileSmallGraphs(t *testing.T) {
	// Star: Φ = 1, ρ = 1, ρ̄ = 1.
	p := MeasureProfile(gen.Star(9, 0))
	if !p.Connected || p.Phi != 1 || p.Rho != 1 || p.AbsRho != 1 {
		t.Fatalf("star profile %+v", p)
	}
	// Cycle on 10 vertices: Φ = 0.2, ρ = 1, ρ̄ = 0.5.
	p = MeasureProfile(gen.Cycle(10))
	if math.Abs(p.Phi-0.2) > 1e-9 || math.Abs(p.Rho-1) > 1e-9 || p.AbsRho != 0.5 {
		t.Fatalf("cycle profile %+v", p)
	}
	// Disconnected graph.
	p = MeasureProfile(graph.FromEdges(4, []graph.Edge{{U: 0, V: 1}, {U: 2, V: 3}}))
	if p.Connected || p.Phi != 0 || p.Rho != 0 {
		t.Fatalf("disconnected profile %+v", p)
	}
}

func TestMeasureProfileLargeGraphUsesEstimates(t *testing.T) {
	p := MeasureProfile(gen.Cycle(100))
	if !p.Connected {
		t.Fatal("cycle should be connected")
	}
	if p.Phi <= 0 || p.Phi > 0.2 {
		t.Fatalf("estimated Φ = %v, want in (0, 0.2] for C_100", p.Phi)
	}
	if p.AbsRho != 0.5 {
		t.Fatalf("ρ̄ = %v, want 0.5", p.AbsRho)
	}
	if p.Rho <= 0 || p.Rho > 1 {
		t.Fatalf("ρ stand-in = %v, want in (0,1]", p.Rho)
	}
}

func TestNetworkProfilerCaches(t *testing.T) {
	calls := 0
	np := NewNetworkProfiler(func(t int) *graph.Graph {
		calls++
		return gen.Cycle(8)
	})
	f := np.Func()
	a := f(0)
	b := f(0)
	if calls != 1 {
		t.Fatalf("graphAt called %d times, want 1 (cached)", calls)
	}
	if a != b {
		t.Fatal("cached profiles differ")
	}
	f(1)
	if calls != 2 {
		t.Fatalf("graphAt called %d times, want 2", calls)
	}
}

func TestTheorem11WithMeasuredStarProfile(t *testing.T) {
	// The dynamic star is 1-diligent with Φ = 1, so Theorem 1.1 gives an
	// O(log n) bound; with the measured profile the bound must be well below n.
	n := 101
	np := NewNetworkProfiler(func(int) *graph.Graph { return gen.Star(n, 0) })
	got, err := Theorem11(np.Func(), n, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	ceilLog := Theorem11Constant(1) * math.Log(float64(n))
	if got > int(ceilLog)+1 {
		t.Fatalf("Theorem11 on star = %d, want <= C log n ≈ %v", got, ceilLog)
	}
	// The normalized (constant-free) bound exposes the Θ(log n) shape: it must
	// be far below n.
	norm, err := Theorem11Normalized(np.Func(), n, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if norm >= n/2 {
		t.Fatalf("normalized Theorem 1.1 bound on star = %d, should be Θ(log n) ≪ n = %d", norm, n)
	}
}
