package bound

import (
	"dynamicrumor/internal/diligence"
	"dynamicrumor/internal/graph"
	"dynamicrumor/internal/spectral"
)

// MeasureProfile computes a StepProfile for a concrete graph. For graphs with
// at most 22 vertices it uses exact enumeration of conductance and diligence;
// for larger graphs it uses the spectral sweep-cut conductance (an upper
// bound on Φ, which makes the resulting Theorem 1.1 bound conservative in the
// right direction is not guaranteed — treat large-graph profiles as
// estimates) and the absolute diligence as a lower-bound stand-in for ρ.
func MeasureProfile(g *graph.Graph) StepProfile {
	p := StepProfile{
		AbsRho:    diligence.Absolute(g),
		Connected: g.M() > 0 && g.IsConnected(),
	}
	if !p.Connected {
		return p
	}
	if phi, err := spectral.ExactConductance(g); err == nil {
		p.Phi = phi
	} else if est, err := spectral.EstimateConductance(g, 0); err == nil {
		p.Phi = est.SweepConductance
	}
	if rho, err := diligence.Exact(g); err == nil {
		p.Rho = rho
	} else {
		// ρ(G) >= ρ̄(G)·d̄(S) / d̄(S) relationships are not exact in general;
		// the absolute diligence is the safe, always-computable stand-in the
		// experiments use for large graphs, and it is exact for regular
		// graphs up to the d̄ factor.
		p.Rho = p.AbsRho * g.AverageDegree()
		if p.Rho > 1 {
			p.Rho = 1
		}
	}
	return p
}

// NetworkProfiler builds a ProfileFunc that measures the profile of the graph
// a dynamic network would expose at step t assuming a fixed informed set
// (nil for oblivious networks). Results are cached per step. This is meant
// for oblivious networks (Static, Sequence, Alternating, EdgeMarkovian ...);
// adaptive constructions should use their analytic profiles instead.
type NetworkProfiler struct {
	graphAt func(t int) *graph.Graph
	cache   map[int]StepProfile
}

// NewNetworkProfiler wraps a step-to-graph function.
func NewNetworkProfiler(graphAt func(t int) *graph.Graph) *NetworkProfiler {
	return &NetworkProfiler{graphAt: graphAt, cache: make(map[int]StepProfile)}
}

// Profile returns the (cached) measured profile of step t.
func (np *NetworkProfiler) Profile(t int) StepProfile {
	if p, ok := np.cache[t]; ok {
		return p
	}
	p := MeasureProfile(np.graphAt(t))
	np.cache[t] = p
	return p
}

// Func returns the ProfileFunc form of the profiler.
func (np *NetworkProfiler) Func() ProfileFunc {
	return func(t int) StepProfile { return np.Profile(t) }
}
