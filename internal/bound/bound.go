// Package bound evaluates the theoretical spread-time bounds of the paper and
// of the related work the paper compares against:
//
//   - Theorem 1.1: T(G, c), the conductance·diligence bound for the
//     asynchronous algorithm in dynamic networks.
//   - Theorem 1.3: T_abs(G), the absolute-diligence bound (and the O(n²)
//     corollary of Remark 1.4).
//   - Corollary 1.6: min{T(G,c), T_abs(G)}.
//   - The Giakkoupis–Sauerwald–Stauffer bound for the synchronous algorithm,
//     which carries the M(G) = max_u Δ_u/δ_u factor (Section 1.2).
//   - The static-network O(log n / Φ) bound of Chierichetti et al.
package bound

import (
	"errors"
	"math"
)

// ErrNotReached is returned when the bound's threshold is not reached within
// the step budget, e.g. because the profile keeps returning zeros.
var ErrNotReached = errors.New("bound: threshold not reached within the step budget")

// C0 is the constant c0 = 1/2 - 1/e appearing in Lemma 2.2 and Theorem 1.1.
const C0 = 0.5 - 1/math.E

// StepProfile describes the graph parameters of one step of a dynamic
// network, as needed by the bounds.
type StepProfile struct {
	// Phi is the conductance Φ(G^(t)) (0 if disconnected).
	Phi float64
	// Rho is the diligence ρ(G^(t)) (0 if disconnected).
	Rho float64
	// AbsRho is the absolute diligence ρ̄(G^(t)) (0 if the graph is empty).
	AbsRho float64
	// Connected reports whether G^(t) is connected (the ⌈Φ⌉ factor of
	// Theorem 1.3).
	Connected bool
}

// ProfileFunc returns the profile of step t. Implementations may be analytic
// (for the paper's constructions) or measured (exact/spectral computation on
// recorded graphs).
type ProfileFunc func(t int) StepProfile

// Theorem11Constant returns C = (10c + 20)/c0, the constant of Theorem 1.1
// for failure probability n^{-c}.
func Theorem11Constant(c float64) float64 {
	if c < 1 {
		c = 1
	}
	return (10*c + 20) / C0
}

// Theorem11 returns T(G, c) = min{ t : Σ_{p=0}^t Φ(G^(p))·ρ(p) ≥ C·log n },
// the Theorem 1.1 upper bound on the spread time of the asynchronous
// algorithm. maxSteps bounds the search (0 means 64·n²).
func Theorem11(profile ProfileFunc, n int, c float64, maxSteps int) (int, error) {
	if n < 2 {
		return 0, nil
	}
	if maxSteps <= 0 {
		maxSteps = 64 * n * n
	}
	threshold := Theorem11Constant(c) * math.Log(float64(n))
	sum := 0.0
	for t := 0; t <= maxSteps; t++ {
		p := profile(t)
		sum += p.Phi * p.Rho
		if sum >= threshold {
			return t, nil
		}
	}
	return 0, ErrNotReached
}

// Theorem11Normalized returns the first step at which Σ Φ·ρ exceeds
// factor·log n. It exposes the structure of the bound without the large
// worst-case constant of the proof, which is what the experiments use to
// compare growth shapes (the constant only shifts the bound by a fixed
// multiplicative amount).
func Theorem11Normalized(profile ProfileFunc, n int, factor float64, maxSteps int) (int, error) {
	if n < 2 {
		return 0, nil
	}
	if factor <= 0 {
		factor = 1
	}
	if maxSteps <= 0 {
		maxSteps = 64 * n * n
	}
	threshold := factor * math.Log(float64(n))
	sum := 0.0
	for t := 0; t <= maxSteps; t++ {
		p := profile(t)
		sum += p.Phi * p.Rho
		if sum >= threshold {
			return t, nil
		}
	}
	return 0, ErrNotReached
}

// Theorem13 returns T_abs(G) = min{ t : Σ_{p=0}^t ⌈Φ(G^(p))⌉·ρ̄(p) ≥ 2n },
// the Theorem 1.3 upper bound. maxSteps bounds the search (0 means 64·n²).
func Theorem13(profile ProfileFunc, n int, maxSteps int) (int, error) {
	if n < 2 {
		return 0, nil
	}
	if maxSteps <= 0 {
		maxSteps = 64 * n * n
	}
	threshold := 2 * float64(n)
	sum := 0.0
	for t := 0; t <= maxSteps; t++ {
		p := profile(t)
		if p.Connected {
			sum += p.AbsRho
		}
		if sum >= threshold {
			return t, nil
		}
	}
	return 0, ErrNotReached
}

// Corollary16 returns min{T(G,c), T_abs(G)} (Corollary 1.6). If only one of
// the two bounds is reached within maxSteps, that one is returned.
func Corollary16(profile ProfileFunc, n int, c float64, maxSteps int) (int, error) {
	t1, err1 := Theorem11(profile, n, c, maxSteps)
	t2, err2 := Theorem13(profile, n, maxSteps)
	switch {
	case err1 == nil && err2 == nil:
		if t1 < t2 {
			return t1, nil
		}
		return t2, nil
	case err1 == nil:
		return t1, nil
	case err2 == nil:
		return t2, nil
	default:
		return 0, ErrNotReached
	}
}

// Remark14WorstCase returns the O(n²) bound of Remark 1.4: a connected
// dynamic network is absolutely 1/(n-1)-diligent, so T_abs ≤ 2n(n-1).
func Remark14WorstCase(n int) float64 {
	if n < 2 {
		return 0
	}
	return 2 * float64(n) * float64(n-1)
}

// GiakkoupisSync returns the related-work upper bound for the synchronous
// push-pull algorithm in dynamic networks (Giakkoupis, Sauerwald, Stauffer;
// Section 1.2): min{ t : Σ_{p=0}^t Φ(G^(p)) ≥ factor·M·log n }, where
// M = max_u Δ_u/δ_u is the global degree-fluctuation ratio. factor plays the
// role of the (unspecified) constant in the Ω(·) threshold; pass 1 to compare
// shapes.
func GiakkoupisSync(profile ProfileFunc, n int, maxDegreeRatio, factor float64, maxSteps int) (int, error) {
	if n < 2 {
		return 0, nil
	}
	if factor <= 0 {
		factor = 1
	}
	if maxDegreeRatio < 1 {
		maxDegreeRatio = 1
	}
	if maxSteps <= 0 {
		maxSteps = 64 * n * n
	}
	threshold := factor * maxDegreeRatio * math.Log(float64(n))
	sum := 0.0
	for t := 0; t <= maxSteps; t++ {
		sum += profile(t).Phi
		if sum >= threshold {
			return t, nil
		}
	}
	return 0, ErrNotReached
}

// StaticAsync returns the O(log n / Φ) bound of Chierichetti et al. for the
// push-pull algorithm on a static network with conductance phi, with the
// given leading constant.
func StaticAsync(n int, phi, constant float64) (float64, error) {
	if phi <= 0 {
		return 0, errors.New("bound: static bound needs positive conductance")
	}
	if constant <= 0 {
		constant = 1
	}
	if n < 2 {
		return 0, nil
	}
	return constant * math.Log(float64(n)) / phi, nil
}

// ConstantProfile returns a ProfileFunc that reports the same profile at
// every step; convenient for static networks and for constructions whose
// per-step parameters do not change.
func ConstantProfile(p StepProfile) ProfileFunc {
	return func(int) StepProfile { return p }
}

// Lemma22Bound returns the Poisson tail bound of Lemma 2.2:
// Pr[X ≤ r/2] ≤ e^{r(1/e + 1/2 - 1)} for X ~ Poisson(r).
func Lemma22Bound(r float64) float64 {
	return math.Exp(r * (1/math.E + 0.5 - 1))
}
