package obs

import (
	"fmt"
	"io"
	"log/slog"
	"strings"
)

// Structured-logging construction for the rumord binaries: one place maps
// the -log-format/-log-level flags to a *slog.Logger, so every role of the
// binary (service, coordinator, worker) logs the same shape.

// NewLogger builds a logger writing to w. format selects the handler —
// "text" (the default when empty) or "json" — and level the minimum
// severity: "debug", "info" (default), "warn" or "error".
func NewLogger(w io.Writer, format, level string) (*slog.Logger, error) {
	var lv slog.Level
	switch strings.ToLower(level) {
	case "", "info":
		lv = slog.LevelInfo
	case "debug":
		lv = slog.LevelDebug
	case "warn", "warning":
		lv = slog.LevelWarn
	case "error":
		lv = slog.LevelError
	default:
		return nil, fmt.Errorf("obs: unknown log level %q (want debug, info, warn or error)", level)
	}
	opts := &slog.HandlerOptions{Level: lv}
	switch strings.ToLower(format) {
	case "", "text":
		return slog.New(slog.NewTextHandler(w, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(w, opts)), nil
	default:
		return nil, fmt.Errorf("obs: unknown log format %q (want text or json)", format)
	}
}

// NopLogger returns a logger that discards everything — the default for
// library configs whose caller supplied none, so call sites never need nil
// guards.
func NopLogger() *slog.Logger {
	return slog.New(slog.DiscardHandler)
}
