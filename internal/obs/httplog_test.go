package obs

import (
	"bytes"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestAccessLogJSONRoundTrip pins the access-log line shape: one request
// through the middleware with a JSON logger must produce a line that decodes
// back into the documented fields.
func TestAccessLogJSONRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	logger, err := NewLogger(&buf, "json", "info")
	if err != nil {
		t.Fatal(err)
	}
	hist := NewHistogram("http_request", "")
	h := AccessLog{Logger: logger, Latency: hist}.Wrap(
		http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set(TraceHeader, "tr00000042")
			w.WriteHeader(http.StatusAccepted)
			io.WriteString(w, `{"ok":true}`)
		}))
	req := httptest.NewRequest(http.MethodPost, "/v1/runs", strings.NewReader("{}"))
	rw := httptest.NewRecorder()
	h.ServeHTTP(rw, req)

	if rw.Code != http.StatusAccepted {
		t.Fatalf("status = %d, want 202", rw.Code)
	}
	var line struct {
		Level    string  `json:"level"`
		Msg      string  `json:"msg"`
		Method   string  `json:"method"`
		Path     string  `json:"path"`
		Status   int     `json:"status"`
		Bytes    int64   `json:"bytes"`
		Duration float64 `json:"duration"`
		Trace    string  `json:"trace"`
		Remote   string  `json:"remote"`
	}
	if err := json.Unmarshal(buf.Bytes(), &line); err != nil {
		t.Fatalf("access log line does not round-trip as JSON: %v\nline: %s", err, buf.String())
	}
	if line.Msg != "http request" || line.Level != "INFO" {
		t.Errorf("msg/level = %q/%q", line.Msg, line.Level)
	}
	if line.Method != "POST" || line.Path != "/v1/runs" {
		t.Errorf("method/path = %q/%q", line.Method, line.Path)
	}
	if line.Status != http.StatusAccepted {
		t.Errorf("status = %d, want 202", line.Status)
	}
	if line.Bytes != int64(len(`{"ok":true}`)) {
		t.Errorf("bytes = %d, want %d", line.Bytes, len(`{"ok":true}`))
	}
	if line.Trace != "tr00000042" {
		t.Errorf("trace = %q, want tr00000042", line.Trace)
	}
	if line.Remote == "" {
		t.Error("remote is empty")
	}
	if got := hist.Snapshot().Total(); got != 1 {
		t.Errorf("latency observations = %d, want 1", got)
	}
}

// TestAccessLogWithoutLoggerStillObserves pins the -log-requests gating: a
// nil logger silences lines but the latency histogram keeps recording.
func TestAccessLogWithoutLoggerStillObserves(t *testing.T) {
	hist := NewHistogram("http_request", "")
	h := AccessLog{Latency: hist}.Wrap(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	rw := httptest.NewRecorder()
	h.ServeHTTP(rw, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if got := hist.Snapshot().Total(); got != 1 {
		t.Errorf("latency observations = %d, want 1", got)
	}
}

// TestAccessLogRequestTraceFallback: with no response trace header, the
// request's (a worker upload) attributes the line.
func TestAccessLogRequestTraceFallback(t *testing.T) {
	var buf bytes.Buffer
	logger, _ := NewLogger(&buf, "json", "info")
	h := AccessLog{Logger: logger}.Wrap(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	req := httptest.NewRequest(http.MethodPost, "/v1/cluster/result", nil)
	req.Header.Set(TraceHeader, "tr00000007")
	h.ServeHTTP(httptest.NewRecorder(), req)
	if !strings.Contains(buf.String(), `"trace":"tr00000007"`) {
		t.Errorf("request-header trace not logged: %s", buf.String())
	}
}

// TestAccessLogPreservesFlusher: the SSE handler type-asserts http.Flusher
// on the wrapped writer.
func TestAccessLogPreservesFlusher(t *testing.T) {
	flushed := false
	h := AccessLog{}.Wrap(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		f, ok := w.(http.Flusher)
		if !ok {
			t.Fatal("wrapped writer lost http.Flusher")
		}
		f.Flush()
		flushed = true
	}))
	h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest(http.MethodGet, "/v1/sweeps/s1/events", nil))
	if !flushed {
		t.Error("handler did not run")
	}
}

func TestNewLoggerValidation(t *testing.T) {
	if _, err := NewLogger(io.Discard, "yaml", "info"); err == nil {
		t.Error("bad format accepted")
	}
	if _, err := NewLogger(io.Discard, "text", "loud"); err == nil {
		t.Error("bad level accepted")
	}
	logger, err := NewLogger(io.Discard, "", "")
	if err != nil || logger == nil {
		t.Fatalf("defaults rejected: %v", err)
	}
	if logger.Enabled(nil, slog.LevelDebug) {
		t.Error("default level admits debug")
	}
	debug, err := NewLogger(io.Discard, "text", "debug")
	if err != nil {
		t.Fatal(err)
	}
	if !debug.Enabled(nil, slog.LevelDebug) {
		t.Error("debug level rejects debug")
	}
}
