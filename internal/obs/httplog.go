package obs

import (
	"log/slog"
	"net/http"
	"time"
)

// TraceHeader carries a run's trace ID over HTTP: the service sets it on run
// responses, workers set it on result uploads, and the access log records it
// — so one trace ID threads client → service → coordinator → worker lines.
const TraceHeader = "X-Trace-Id"

// AccessLog is the HTTP middleware: every request's latency feeds Latency
// (when non-nil), and every request emits one structured line through Logger
// (when non-nil — the -log-requests gate leaves it nil when off, so the
// histogram keeps recording even with request logging disabled).
type AccessLog struct {
	Logger  *slog.Logger
	Latency *Histogram
}

// Wrap instruments a handler.
func (a AccessLog) Wrap(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		lw := &loggingWriter{ResponseWriter: w}
		next.ServeHTTP(lw, r)
		dur := time.Since(start)
		a.Latency.Observe(dur)
		if a.Logger == nil {
			return
		}
		status := lw.status
		if status == 0 {
			status = http.StatusOK
		}
		// The trace attribution prefers the response header (the service
		// stamps run endpoints with the job's trace) and falls back to the
		// request header (workers stamp uploads with the lease's trace).
		trace := lw.Header().Get(TraceHeader)
		if trace == "" {
			trace = r.Header.Get(TraceHeader)
		}
		a.Logger.LogAttrs(r.Context(), slog.LevelInfo, "http request",
			slog.String("method", r.Method),
			slog.String("path", r.URL.Path),
			slog.Int("status", status),
			slog.Int64("bytes", lw.bytes),
			slog.Duration("duration", dur),
			slog.String("trace", trace),
			slog.String("remote", r.RemoteAddr),
		)
	})
}

// loggingWriter captures status and byte count. It implements http.Flusher
// by delegation — the SSE sweep-events handler type-asserts the writer — and
// Unwrap for http.ResponseController users.
type loggingWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (w *loggingWriter) WriteHeader(status int) {
	if w.status == 0 {
		w.status = status
	}
	w.ResponseWriter.WriteHeader(status)
}

func (w *loggingWriter) Write(p []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(p)
	w.bytes += int64(n)
	return n, err
}

func (w *loggingWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

func (w *loggingWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }
