package obs

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestTraceViewSortsDeterministically(t *testing.T) {
	base := time.Date(2026, 7, 28, 12, 0, 0, 0, time.UTC)
	rec := NewRecorder(4)
	tr := rec.Start("tr1", "j1")

	// Append shard spans from concurrent goroutines in racing order; the
	// rendered view must come out identical to the sequential ordering.
	const shards = 64
	var wg sync.WaitGroup
	for i := 0; i < shards; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tr.Add(Span{
				Name:   "lease",
				Worker: fmt.Sprintf("w%02d", i%4),
				Detail: fmt.Sprintf("[%04d,%04d)", i*10, i*10+10),
				Start:  base.Add(time.Duration(i%8) * time.Millisecond),
				End:    base.Add(time.Duration(i%8+1) * time.Millisecond),
			})
		}(i)
	}
	wg.Wait()

	v1 := tr.View()
	v2 := tr.View()
	if len(v1.Spans) != shards {
		t.Fatalf("spans = %d, want %d", len(v1.Spans), shards)
	}
	for i := range v1.Spans {
		if v1.Spans[i] != v2.Spans[i] {
			t.Fatalf("view not deterministic at span %d: %+v vs %+v", i, v1.Spans[i], v2.Spans[i])
		}
	}
	parse := func(s string) time.Time {
		ts, err := time.Parse(time.RFC3339Nano, s)
		if err != nil {
			t.Fatalf("bad span timestamp %q: %v", s, err)
		}
		return ts
	}
	for i := 1; i < len(v1.Spans); i++ {
		a, b := v1.Spans[i-1], v1.Spans[i]
		as, bs := parse(a.Start), parse(b.Start)
		if as.After(bs) {
			t.Fatalf("spans out of start order at %d: %s > %s", i, a.Start, b.Start)
		}
		if as.Equal(bs) && a.Worker > b.Worker {
			t.Fatalf("equal-start spans out of worker order at %d", i)
		}
		if as.Equal(bs) && a.Worker == b.Worker && a.Detail > b.Detail {
			t.Fatalf("spans out of detail order at %d", i)
		}
	}
	if v1.Spans[0].DurationMS != 1 {
		t.Errorf("duration_ms = %g, want 1", v1.Spans[0].DurationMS)
	}
}

func TestTraceSpanCap(t *testing.T) {
	tr := NewRecorder(1).Start("tr1", "j1")
	for i := 0; i < maxSpansPerTrace+10; i++ {
		tr.Add(Span{Name: "s"})
	}
	v := tr.View()
	if len(v.Spans) != maxSpansPerTrace {
		t.Errorf("spans = %d, want cap %d", len(v.Spans), maxSpansPerTrace)
	}
	if v.DroppedSpans != 10 {
		t.Errorf("dropped = %d, want 10", v.DroppedSpans)
	}
}

func TestRecorderEvictsOldest(t *testing.T) {
	rec := NewRecorder(3)
	for i := 1; i <= 5; i++ {
		rec.Start(fmt.Sprintf("tr%d", i), fmt.Sprintf("j%d", i))
	}
	if rec.Len() != 3 {
		t.Fatalf("Len = %d, want 3", rec.Len())
	}
	if rec.Lookup("tr1") != nil || rec.Lookup("tr2") != nil {
		t.Error("oldest traces not evicted")
	}
	for i := 3; i <= 5; i++ {
		if rec.Lookup(fmt.Sprintf("tr%d", i)) == nil {
			t.Errorf("tr%d evicted, want retained", i)
		}
	}
	// An evicted trace held elsewhere keeps accepting spans.
	old := rec.Start("a", "j")
	for i := 0; i < 10; i++ {
		rec.Start(fmt.Sprintf("b%d", i), "j")
	}
	old.Add(Span{Name: "late"})
	if got := len(old.View().Spans); got != 1 {
		t.Errorf("evicted trace spans = %d, want 1", got)
	}
}

func TestNilTraceIsSafe(t *testing.T) {
	var tr *Trace
	tr.Add(Span{Name: "x"})
	if tr.ID() != "" {
		t.Errorf("nil ID = %q, want empty", tr.ID())
	}
	v := tr.View()
	if len(v.Spans) != 0 {
		t.Errorf("nil view spans = %d, want 0", len(v.Spans))
	}
}
