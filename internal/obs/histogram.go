// Package obs is the zero-dependency observability layer of the rumord
// service and cluster: mergeable log-linear latency histograms, a bounded
// in-memory flight recorder of per-run phase spans, structured-logging
// construction on log/slog, and the HTTP access-log middleware.
//
// The layer observes timing strictly outside the repetition math: nothing in
// it touches the deterministic RNG streams or the reduction order, so the
// engine's byte-identity contract — equal (canonical scenario, seed, reps)
// produce bit-identical summaries at any parallelism or topology — holds
// unchanged with instrumentation enabled. The existing byte-identity suites
// pin that.
package obs

import (
	"math/bits"
	"sync"
	"sync/atomic"
	"time"
)

// The bucket layout: a log-linear grid over int64 nanoseconds, like the
// HDR/OpenTelemetry exponential schemes but with fixed compile-time bounds
// so the record path is two shifts and a bits.Len64 — no float math, no
// allocation, no lock. Each power-of-two octave [2^e, 2^(e+1)) is split into
// subCount linear sub-buckets, giving <= 25% relative bucket width.
//
// Octaves run from 2^minExp ns (~1 µs) to 2^maxExp ns (~68.7 s): bucket 0
// catches everything below ~1 µs, the last bucket everything at or above
// ~68.7 s (the +Inf bucket in Prometheus terms). A bucket holds values in
// [lower, upper) — a value exactly on a bound counts in the next bucket,
// the same half-open convention the exponential-histogram exporters use.
const (
	subBits  = 2
	subCount = 1 << subBits // linear sub-buckets per octave
	minExp   = 10           // 2^10 ns ≈ 1 µs
	maxExp   = 36           // 2^36 ns ≈ 68.7 s

	// NumBuckets = underflow + (maxExp-minExp)*subCount finite buckets +
	// overflow.
	NumBuckets = 1 + (maxExp-minExp)*subCount + 1
)

// bucketIndex maps a duration in nanoseconds to its bucket.
func bucketIndex(v int64) int {
	if v < 0 {
		v = 0
	}
	u := uint64(v)
	if u < 1<<minExp {
		return 0
	}
	exp := bits.Len64(u) - 1 // position of the leading one: minExp..63
	if exp >= maxExp {
		return NumBuckets - 1
	}
	sub := (u >> (uint(exp) - subBits)) & (subCount - 1)
	return 1 + (exp-minExp)*subCount + int(sub)
}

// BucketBound returns the exclusive upper bound, in nanoseconds, of bucket i.
// The last bucket is unbounded and returns -1 (+Inf).
func BucketBound(i int) int64 {
	switch {
	case i <= 0:
		return 1 << minExp
	case i >= NumBuckets-1:
		return -1
	}
	k := i - 1
	exp := minExp + k/subCount
	sub := k % subCount
	return 1<<uint(exp) + int64(sub+1)<<(uint(exp)-subBits)
}

// Histogram is one latency distribution: a fixed array of atomic counters
// plus the running sum, so Observe is wait-free and safe from any goroutine.
// Snapshots are mergeable the way stats.Merger chunks are — bucket counts
// and sums add — which is what lets a coordinator fold worker-side
// distributions into its own.
type Histogram struct {
	name string // short name, e.g. "queue_wait"; see Snapshot.PromName
	help string

	counts [NumBuckets]atomic.Uint64
	sum    atomic.Int64 // nanoseconds
}

// NewHistogram returns an unregistered histogram (tests use it directly;
// production code gets histograms from a Registry).
func NewHistogram(name, help string) *Histogram {
	return &Histogram{name: name, help: help}
}

// Name returns the histogram's short name.
func (h *Histogram) Name() string { return h.name }

// Observe records one duration. Nil-safe: a nil histogram drops the
// observation, so call sites need no guards.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	v := int64(d)
	h.counts[bucketIndex(v)].Add(1)
	if v > 0 {
		h.sum.Add(v)
	}
}

// Merge folds a snapshot's counts into the histogram (coordinator-side
// aggregation of worker distributions). Snapshots from a different layout
// are ignored rather than misfiled.
func (h *Histogram) Merge(s Snapshot) {
	if h == nil || len(s.Counts) != NumBuckets {
		return
	}
	for i, c := range s.Counts {
		if c != 0 {
			h.counts[i].Add(c)
		}
	}
	if s.SumNanos > 0 {
		h.sum.Add(s.SumNanos)
	}
}

// Snapshot reads the current counts. Under concurrent Observe calls the
// counts and sum may tear by a few in-flight observations — acceptable for
// monitoring, and the derived totals are always internally consistent
// (Total is the sum of Counts).
func (h *Histogram) Snapshot() Snapshot {
	s := Snapshot{
		Name:     h.name,
		Help:     h.help,
		Counts:   make([]uint64, NumBuckets),
		SumNanos: h.sum.Load(),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}

// Snapshot is a point-in-time copy of a histogram, safe to render, merge or
// ship without further synchronization.
type Snapshot struct {
	Name     string
	Help     string
	Counts   []uint64
	SumNanos int64
}

// Total is the observation count.
func (s Snapshot) Total() uint64 {
	var t uint64
	for _, c := range s.Counts {
		t += c
	}
	return t
}

// Quantile estimates the q-quantile (0 < q <= 1) in seconds by linear
// interpolation within the covering bucket. The overflow bucket reports its
// lower bound; an empty snapshot reports 0.
func (s Snapshot) Quantile(q float64) float64 {
	total := s.Total()
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	var cum float64
	for i, c := range s.Counts {
		if c == 0 {
			continue
		}
		next := cum + float64(c)
		if next < rank && i < len(s.Counts)-1 {
			cum = next
			continue
		}
		lower := int64(0)
		if i > 0 {
			lower = BucketBound(i - 1)
		}
		upper := BucketBound(i)
		if upper < 0 { // overflow bucket: no upper bound to interpolate to
			return float64(lower) / 1e9
		}
		frac := (rank - cum) / float64(c)
		if frac < 0 {
			frac = 0
		} else if frac > 1 {
			frac = 1
		}
		return (float64(lower) + frac*float64(upper-lower)) / 1e9
	}
	return 0
}

// Registry is an ordered name → histogram table. Get-or-create semantics let
// independently constructed subsystems (service, cluster coordinator) share
// one histogram when they are handed the same registry, and rendering in
// registration order keeps /metrics output deterministic.
type Registry struct {
	mu    sync.Mutex
	order []string
	hists map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{hists: make(map[string]*Histogram)}
}

// Histogram returns the named histogram, creating it on first use. The help
// text of the first creation wins.
func (r *Registry) Histogram(name, help string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := r.hists[name]; ok {
		return h
	}
	h := NewHistogram(name, help)
	r.hists[name] = h
	r.order = append(r.order, name)
	return h
}

// Snapshots returns every histogram's snapshot in registration order.
func (r *Registry) Snapshots() []Snapshot {
	r.mu.Lock()
	names := append([]string(nil), r.order...)
	hists := make([]*Histogram, len(names))
	for i, n := range names {
		hists[i] = r.hists[n]
	}
	r.mu.Unlock()
	out := make([]Snapshot, len(hists))
	for i, h := range hists {
		out[i] = h.Snapshot()
	}
	return out
}
