package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// TestNewLoggerJSONRoundTrip: a line emitted by the json handler decodes
// back to its message, level and attributes — the property log shippers
// depend on.
func TestNewLoggerJSONRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	logger, err := NewLogger(&buf, "json", "info")
	if err != nil {
		t.Fatal(err)
	}
	logger.Info("service: job settled", "job", "j00000001", "trace", "tr-j00000001", "reps", 64)

	var line map[string]any
	if err := json.Unmarshal(buf.Bytes(), &line); err != nil {
		t.Fatalf("log line is not one JSON object: %q: %v", buf.String(), err)
	}
	if line["msg"] != "service: job settled" {
		t.Errorf("msg = %v", line["msg"])
	}
	if line["level"] != "INFO" {
		t.Errorf("level = %v", line["level"])
	}
	if line["job"] != "j00000001" || line["trace"] != "tr-j00000001" {
		t.Errorf("attrs lost: %v", line)
	}
	if line["reps"] != float64(64) {
		t.Errorf("reps = %v", line["reps"])
	}
	if _, ok := line["time"]; !ok {
		t.Error("line carries no timestamp")
	}
}

// TestNewLoggerLevels: the level flag gates emission, "warning" aliases
// "warn", and case is ignored.
func TestNewLoggerLevels(t *testing.T) {
	var buf bytes.Buffer
	logger, err := NewLogger(&buf, "text", "WARNING")
	if err != nil {
		t.Fatal(err)
	}
	logger.Info("suppressed")
	logger.Warn("emitted")
	out := buf.String()
	if strings.Contains(out, "suppressed") {
		t.Errorf("info line leaked past warn level: %q", out)
	}
	if !strings.Contains(out, "emitted") {
		t.Errorf("warn line missing: %q", out)
	}
}

// TestNewLoggerRejectsUnknown: bad flag values fail loudly at startup, not
// silently at the first log line.
func TestNewLoggerRejectsUnknown(t *testing.T) {
	if _, err := NewLogger(&bytes.Buffer{}, "yaml", "info"); err == nil {
		t.Error("unknown format accepted")
	}
	if _, err := NewLogger(&bytes.Buffer{}, "json", "loud"); err == nil {
		t.Error("unknown level accepted")
	}
}

// TestNopLoggerDiscards: the nil-config default emits nothing and never
// panics.
func TestNopLoggerDiscards(t *testing.T) {
	NopLogger().Error("dropped", "key", "value")
}
