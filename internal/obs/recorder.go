package obs

import (
	"sort"
	"sync"
	"time"
)

// The flight recorder: every run gets a Trace at submission, phases append
// Spans as they happen, and GET /v1/runs/{id}/trace replays the timeline.
// Both dimensions are bounded — the recorder retains the newest traces up to
// its capacity (FIFO eviction of the oldest), and a trace caps its span
// count, counting overflow instead of growing — so a long-lived daemon's
// trace memory is O(capacity · maxSpans) no matter how many runs it serves.

// maxSpansPerTrace bounds one trace's timeline. A plain run records a
// handful of spans; a large cluster run records a few per shard, so 1024
// covers hundreds of shards before overflow counting starts.
const maxSpansPerTrace = 1024

// Span is one timed phase of a run. Point events carry Start == End.
type Span struct {
	// Name is the phase: submitted, queued, compile, execute, run, lease,
	// upload, settled, ...
	Name string
	// Worker names the executing node for cluster-side spans.
	Worker string
	// Detail is free-form context (rep range, worker grant, terminal state).
	Detail string
	Start  time.Time
	End    time.Time
}

// Trace is one run's span timeline. Appends are cheap and safe from any
// goroutine (coordinator settle path, local backend, scheduler); the nil
// trace swallows appends so instrumented code needs no guards.
type Trace struct {
	mu      sync.Mutex
	id      string
	run     string
	spans   []Span
	dropped int
}

// ID returns the trace identifier ("" for a nil trace).
func (t *Trace) ID() string {
	if t == nil {
		return ""
	}
	return t.id
}

// Add appends a span, counting instead of appending beyond the cap.
func (t *Trace) Add(s Span) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.spans) >= maxSpansPerTrace {
		t.dropped++
		return
	}
	t.spans = append(t.spans, s)
}

// TraceView is the JSON representation of a timeline, served by
// GET /v1/runs/{id}/trace.
type TraceView struct {
	Trace string `json:"trace"`
	Run   string `json:"run"`
	// DroppedSpans counts spans discarded beyond the per-trace cap.
	DroppedSpans int        `json:"dropped_spans,omitempty"`
	Spans        []SpanView `json:"spans"`
}

// SpanView is one rendered span.
type SpanView struct {
	Name       string  `json:"name"`
	Worker     string  `json:"worker,omitempty"`
	Detail     string  `json:"detail,omitempty"`
	Start      string  `json:"start"`
	End        string  `json:"end"`
	DurationMS float64 `json:"duration_ms"`
}

// View renders the timeline. Spans are sorted by (start, name, worker,
// detail) — concurrent appenders (shards settling in any order) race only
// for slice position, so the sort makes the rendered timeline a pure
// function of the set of spans recorded.
func (t *Trace) View() TraceView {
	if t == nil {
		return TraceView{Spans: []SpanView{}}
	}
	t.mu.Lock()
	spans := append([]Span(nil), t.spans...)
	v := TraceView{Trace: t.id, Run: t.run, DroppedSpans: t.dropped}
	t.mu.Unlock()
	sort.SliceStable(spans, func(i, j int) bool {
		a, b := spans[i], spans[j]
		if !a.Start.Equal(b.Start) {
			return a.Start.Before(b.Start)
		}
		if a.Name != b.Name {
			return a.Name < b.Name
		}
		if a.Worker != b.Worker {
			return a.Worker < b.Worker
		}
		return a.Detail < b.Detail
	})
	v.Spans = make([]SpanView, len(spans))
	for i, s := range spans {
		v.Spans[i] = SpanView{
			Name:       s.Name,
			Worker:     s.Worker,
			Detail:     s.Detail,
			Start:      s.Start.UTC().Format(time.RFC3339Nano),
			End:        s.End.UTC().Format(time.RFC3339Nano),
			DurationMS: float64(s.End.Sub(s.Start)) / float64(time.Millisecond),
		}
	}
	return v
}

// Recorder is the bounded trace store.
type Recorder struct {
	mu       sync.Mutex
	capacity int
	traces   map[string]*Trace
	order    []string // insertion order, oldest first
}

// NewRecorder returns a recorder retaining up to capacity traces
// (<= 0 selects 512).
func NewRecorder(capacity int) *Recorder {
	if capacity <= 0 {
		capacity = 512
	}
	return &Recorder{capacity: capacity, traces: make(map[string]*Trace)}
}

// Start registers a new trace for a run, evicting the oldest beyond
// capacity. Holders of an evicted *Trace keep using it safely — eviction
// only drops the recorder's own reference.
func (r *Recorder) Start(id, run string) *Trace {
	t := &Trace{id: id, run: run}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.traces[id]; !ok {
		r.order = append(r.order, id)
	}
	r.traces[id] = t
	for len(r.order) > r.capacity {
		delete(r.traces, r.order[0])
		r.order = r.order[1:]
	}
	return t
}

// Lookup finds a retained trace by ID (nil when unknown or evicted).
func (r *Recorder) Lookup(id string) *Trace {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.traces[id]
}

// Len reports the retained trace count.
func (r *Recorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.order)
}
