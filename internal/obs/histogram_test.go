package obs

import (
	"math"
	"sync"
	"testing"
	"time"
)

// referenceIndex is the straightforward linear-search bucketer the shift
// arithmetic must agree with.
func referenceIndex(v int64) int {
	if v < 0 {
		v = 0
	}
	for i := 0; i < NumBuckets-1; i++ {
		if v < BucketBound(i) {
			return i
		}
	}
	return NumBuckets - 1
}

func TestBucketIndexMatchesReference(t *testing.T) {
	values := []int64{0, 1, 1023, 1024, 1025, 1279, 1280, 1535, 1536, 2047, 2048}
	for e := minExp; e <= maxExp+2 && e < 63; e++ {
		base := int64(1) << uint(e)
		values = append(values, base-1, base, base+1, base+base/4, base+base/2, base+3*base/4, 2*base-1)
	}
	values = append(values, math.MaxInt64, -5)
	for _, v := range values {
		if got, want := bucketIndex(v), referenceIndex(v); got != want {
			t.Errorf("bucketIndex(%d) = %d, want %d", v, got, want)
		}
	}
}

func TestBucketBoundsContiguousAndIncreasing(t *testing.T) {
	if BucketBound(0) != 1<<minExp {
		t.Errorf("underflow bound = %d, want %d", BucketBound(0), int64(1)<<minExp)
	}
	for i := 1; i < NumBuckets-1; i++ {
		lo, hi := BucketBound(i-1), BucketBound(i)
		if hi <= lo {
			t.Fatalf("bucket %d: bound %d not above previous %d", i, hi, lo)
		}
		// A value just below the bound lands here; the bound itself in the
		// next bucket (half-open intervals).
		if got := bucketIndex(hi - 1); got != i {
			t.Errorf("bucketIndex(%d) = %d, want %d", hi-1, got, i)
		}
		if got := bucketIndex(hi); got != i+1 {
			t.Errorf("bucketIndex(%d) = %d, want %d", hi, got, i+1)
		}
	}
	if last := BucketBound(NumBuckets - 1); last != -1 {
		t.Errorf("overflow bound = %d, want -1", last)
	}
	if top := BucketBound(NumBuckets - 2); top != 1<<maxExp {
		t.Errorf("top finite bound = %d, want %d", top, int64(1)<<maxExp)
	}
}

func TestHistogramObserveAndSnapshot(t *testing.T) {
	h := NewHistogram("test", "help")
	durations := []time.Duration{500 * time.Nanosecond, 3 * time.Microsecond,
		2 * time.Millisecond, 2 * time.Millisecond, 150 * time.Millisecond, 90 * time.Second}
	for _, d := range durations {
		h.Observe(d)
	}
	s := h.Snapshot()
	if got := s.Total(); got != uint64(len(durations)) {
		t.Fatalf("Total = %d, want %d", got, len(durations))
	}
	var wantSum int64
	for _, d := range durations {
		wantSum += int64(d)
	}
	if s.SumNanos != wantSum {
		t.Errorf("SumNanos = %d, want %d", s.SumNanos, wantSum)
	}
	if s.Counts[0] != 1 {
		t.Errorf("underflow count = %d, want 1", s.Counts[0])
	}
	if s.Counts[NumBuckets-1] != 1 {
		t.Errorf("overflow count = %d, want 1", s.Counts[NumBuckets-1])
	}
	if got := s.Counts[bucketIndex(int64(2*time.Millisecond))]; got != 2 {
		t.Errorf("2ms bucket count = %d, want 2", got)
	}
}

func TestHistogramMerge(t *testing.T) {
	a, b := NewHistogram("a", ""), NewHistogram("b", "")
	for i := 0; i < 10; i++ {
		a.Observe(time.Millisecond)
		b.Observe(time.Second)
	}
	a.Merge(b.Snapshot())
	s := a.Snapshot()
	if got := s.Total(); got != 20 {
		t.Fatalf("merged Total = %d, want 20", got)
	}
	want := 10*int64(time.Millisecond) + 10*int64(time.Second)
	if s.SumNanos != want {
		t.Errorf("merged SumNanos = %d, want %d", s.SumNanos, want)
	}
	// A mismatched layout must be ignored, not misfiled.
	a.Merge(Snapshot{Counts: []uint64{1, 2, 3}, SumNanos: 99})
	if got := a.Snapshot().Total(); got != 20 {
		t.Errorf("after bad merge Total = %d, want 20", got)
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram("q", "")
	// 100 observations at ~1ms, 100 at ~100ms: the median straddles the
	// boundary between the two populations and p99 must sit near 100ms.
	for i := 0; i < 100; i++ {
		h.Observe(time.Millisecond)
		h.Observe(100 * time.Millisecond)
	}
	s := h.Snapshot()
	p25 := s.Quantile(0.25)
	if p25 < 0.0005 || p25 > 0.002 {
		t.Errorf("p25 = %g s, want ~0.001", p25)
	}
	p99 := s.Quantile(0.99)
	if p99 < 0.05 || p99 > 0.2 {
		t.Errorf("p99 = %g s, want ~0.1", p99)
	}
	if got := (Snapshot{Counts: make([]uint64, NumBuckets)}).Quantile(0.5); got != 0 {
		t.Errorf("empty quantile = %g, want 0", got)
	}
	// Every observation in the overflow bucket: quantiles report its lower
	// bound rather than infinity.
	o := NewHistogram("o", "")
	o.Observe(5 * time.Minute)
	if got, want := o.Snapshot().Quantile(0.5), float64(int64(1)<<maxExp)/1e9; got != want {
		t.Errorf("overflow quantile = %g, want %g", got, want)
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	h := NewHistogram("c", "")
	const goroutines, per = 8, 1000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(time.Duration(g+1) * time.Millisecond)
			}
		}(g)
	}
	wg.Wait()
	if got := h.Snapshot().Total(); got != goroutines*per {
		t.Fatalf("Total = %d, want %d", got, goroutines*per)
	}
}

func TestNilHistogramIsSafe(t *testing.T) {
	var h *Histogram
	h.Observe(time.Second) // must not panic
	h.Merge(Snapshot{})
}

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	a := r.Histogram("queue_wait", "first help")
	b := r.Histogram("queue_wait", "ignored")
	if a != b {
		t.Fatal("same name returned distinct histograms")
	}
	r.Histogram("run_duration", "")
	a.Observe(time.Millisecond)
	snaps := r.Snapshots()
	if len(snaps) != 2 {
		t.Fatalf("Snapshots len = %d, want 2", len(snaps))
	}
	if snaps[0].Name != "queue_wait" || snaps[1].Name != "run_duration" {
		t.Errorf("registration order not preserved: %q, %q", snaps[0].Name, snaps[1].Name)
	}
	if snaps[0].Help != "first help" {
		t.Errorf("help = %q, want the first creation's", snaps[0].Help)
	}
	if snaps[0].Total() != 1 {
		t.Errorf("queue_wait Total = %d, want 1", snaps[0].Total())
	}
}
