package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewDeterministic(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("generators with the same seed diverged at step %d", i)
		}
	}
}

func TestNewDifferentSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 64; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds produced %d identical outputs out of 64", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	r := New(7)
	a := r.Split(1)
	b := r.Split(2)
	if a.Uint64() == b.Uint64() && a.Uint64() == b.Uint64() {
		t.Fatal("split streams with different labels look identical")
	}
}

func TestZeroSeedValid(t *testing.T) {
	r := New(0)
	seen := map[uint64]bool{}
	for i := 0; i < 32; i++ {
		seen[r.Uint64()] = true
	}
	if len(seen) < 30 {
		t.Fatalf("zero-seeded generator produced only %d distinct values in 32 draws", len(seen))
	}
}

func TestIntnRange(t *testing.T) {
	r := New(3)
	if err := quick.Check(func(raw uint8) bool {
		n := int(raw%100) + 1
		v := r.Intn(n)
		return v >= 0 && v < n
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntnUniform(t *testing.T) {
	r := New(11)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Intn(n)]++
	}
	want := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("bucket %d: got %d, want about %.0f", i, c, want)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(5)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(9)
	sum := 0.0
	const draws = 200000
	for i := 0; i < draws; i++ {
		sum += r.Float64()
	}
	mean := sum / draws
	if math.Abs(mean-0.5) > 0.005 {
		t.Fatalf("Float64 mean = %v, want about 0.5", mean)
	}
}

func TestExpMean(t *testing.T) {
	r := New(13)
	for _, rate := range []float64{0.5, 1, 2, 10} {
		sum := 0.0
		const draws = 100000
		for i := 0; i < draws; i++ {
			sum += r.Exp(rate)
		}
		mean := sum / draws
		want := 1 / rate
		if math.Abs(mean-want) > 0.05*want {
			t.Errorf("Exp(%v) mean = %v, want about %v", rate, mean, want)
		}
	}
}

func TestExpNonNegative(t *testing.T) {
	r := New(17)
	if err := quick.Check(func(raw uint16) bool {
		rate := float64(raw%1000)/100 + 0.01
		return r.Exp(rate) >= 0
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestExpPanicsOnBadRate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Exp(0) did not panic")
		}
	}()
	New(1).Exp(0)
}

func TestPoissonMeanAndVariance(t *testing.T) {
	r := New(19)
	for _, mean := range []float64{0.5, 3, 20, 100, 1000} {
		const draws = 50000
		sum, sumSq := 0.0, 0.0
		for i := 0; i < draws; i++ {
			v := float64(r.Poisson(mean))
			sum += v
			sumSq += v * v
		}
		m := sum / draws
		variance := sumSq/draws - m*m
		tol := 4 * math.Sqrt(mean/draws) * math.Sqrt(mean) // ~4 sigma on the mean, loose
		if tol < 0.05 {
			tol = 0.05
		}
		if math.Abs(m-mean) > tol+0.02*mean {
			t.Errorf("Poisson(%v) mean = %v", mean, m)
		}
		if math.Abs(variance-mean) > 0.1*mean+0.1 {
			t.Errorf("Poisson(%v) variance = %v, want about %v", mean, variance, mean)
		}
	}
}

func TestPoissonZeroMean(t *testing.T) {
	if got := New(1).Poisson(0); got != 0 {
		t.Fatalf("Poisson(0) = %d, want 0", got)
	}
}

func TestGeometricMean(t *testing.T) {
	r := New(23)
	for _, p := range []float64{0.1, 0.5, 0.9} {
		const draws = 100000
		sum := 0.0
		for i := 0; i < draws; i++ {
			sum += float64(r.Geometric(p))
		}
		mean := sum / draws
		want := (1 - p) / p
		if math.Abs(mean-want) > 0.05*want+0.02 {
			t.Errorf("Geometric(%v) mean = %v, want about %v", p, mean, want)
		}
	}
}

func TestGeometricPOne(t *testing.T) {
	if got := New(1).Geometric(1); got != 0 {
		t.Fatalf("Geometric(1) = %d, want 0", got)
	}
}

func TestGeometricPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Geometric(0) did not panic")
		}
	}()
	New(1).Geometric(0)
}

func TestBernoulliFrequency(t *testing.T) {
	r := New(29)
	const draws = 100000
	hits := 0
	for i := 0; i < draws; i++ {
		if r.Bernoulli(0.3) {
			hits++
		}
	}
	freq := float64(hits) / draws
	if math.Abs(freq-0.3) > 0.01 {
		t.Fatalf("Bernoulli(0.3) frequency = %v", freq)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(31)
	if err := quick.Check(func(raw uint8) bool {
		n := int(raw % 64)
		p := r.Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestPermUniformFirstElement(t *testing.T) {
	r := New(37)
	const n, draws = 5, 50000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Perm(n)[0]]++
	}
	want := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 6*math.Sqrt(want) {
			t.Errorf("Perm first element %d appeared %d times, want about %.0f", i, c, want)
		}
	}
}

func TestSampleDistinct(t *testing.T) {
	r := New(41)
	if err := quick.Check(func(a, b uint8) bool {
		n := int(a%50) + 1
		k := int(b) % (n + 1)
		s := r.Sample(n, k)
		if len(s) != k {
			return false
		}
		seen := map[int]bool{}
		for _, v := range s {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestSamplePanicsOnBadK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Sample(2,3) did not panic")
		}
	}()
	New(1).Sample(2, 3)
}

func TestSampleZero(t *testing.T) {
	if got := New(1).Sample(5, 0); got != nil {
		t.Fatalf("Sample(5,0) = %v, want nil", got)
	}
}

func TestShuffleKeepsElements(t *testing.T) {
	r := New(43)
	p := []int{9, 8, 7, 6, 5}
	r.Shuffle(p)
	sum := 0
	for _, v := range p {
		sum += v
	}
	if sum != 35 {
		t.Fatalf("Shuffle changed the multiset, sum=%d", sum)
	}
}

func TestMul64(t *testing.T) {
	cases := []struct {
		x, y, hi, lo uint64
	}{
		{0, 0, 0, 0},
		{1, 1, 0, 1},
		{math.MaxUint64, 2, 1, math.MaxUint64 - 1},
		{1 << 32, 1 << 32, 1, 0},
	}
	for _, c := range cases {
		hi, lo := mul64(c.x, c.y)
		if hi != c.hi || lo != c.lo {
			t.Errorf("mul64(%d,%d) = (%d,%d), want (%d,%d)", c.x, c.y, hi, lo, c.hi, c.lo)
		}
	}
}
