// Package xrand provides a small, deterministic pseudo-random number
// generator and the distribution samplers used by the rumor-spreading
// simulators.
//
// The generator is xoshiro256** seeded via SplitMix64. It is not
// cryptographically secure; it is fast, has a 256-bit state and passes the
// statistical tests relevant for Monte-Carlo simulation. Every simulator in
// this repository takes an explicit *xrand.RNG so experiments are
// reproducible from a single seed.
package xrand

import "math"

// RNG is a deterministic pseudo-random number generator (xoshiro256**).
// The zero value is not valid; use New.
type RNG struct {
	s [4]uint64
}

// New returns a generator seeded deterministically from seed using SplitMix64,
// as recommended by the xoshiro authors.
func New(seed uint64) *RNG {
	r := &RNG{}
	r.Seed(seed)
	return r
}

// Seed re-initializes the generator in place exactly as New(seed) would,
// without allocating. It is the recycling form used by the Monte-Carlo
// machinery to derive per-repetition streams into reusable RNG values.
func (r *RNG) Seed(seed uint64) {
	sm := seed
	for i := 0; i < 4; i++ {
		sm, r.s[i] = splitMix64(sm)
	}
	// Avoid the all-zero state (probability ~2^-256, but cheap to guard).
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
}

// splitMix64 advances the SplitMix64 state and returns (nextState, output).
func splitMix64(state uint64) (uint64, uint64) {
	state += 0x9e3779b97f4a7c15
	z := state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return state, z
}

// Split returns a new generator deterministically derived from r and the
// stream label. Distinct labels yield statistically independent streams, so
// repetitions of an experiment can run in parallel with reproducible results.
// Split advances r by exactly one Uint64 draw.
func (r *RNG) Split(label uint64) *RNG {
	return New(r.Uint64() ^ (label*0x9e3779b97f4a7c15 + 0x6a09e667f3bcc909))
}

// SplitInto derives the same generator Split(label) would return into dst,
// without allocating. Like Split it advances r by exactly one Uint64 draw, so
// Split and SplitInto are interchangeable draw for draw.
func (r *RNG) SplitInto(label uint64, dst *RNG) {
	dst.Seed(r.Uint64() ^ (label*0x9e3779b97f4a7c15 + 0x6a09e667f3bcc909))
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns a uniformly distributed 64-bit value.
func (r *RNG) Uint64() uint64 {
	s := &r.s
	result := rotl(s[1]*5, 7) * 9
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = rotl(s[3], 45)
	return result
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn called with non-positive n")
	}
	return int(r.boundedUint64(uint64(n)))
}

// boundedUint64 returns a uniform value in [0, bound) using Lemire's
// nearly-divisionless method with rejection to remove modulo bias.
func (r *RNG) boundedUint64(bound uint64) uint64 {
	for {
		v := r.Uint64()
		hi, lo := mul64(v, bound)
		if lo < bound {
			threshold := -bound % bound
			if lo < threshold {
				continue
			}
		}
		return hi
	}
}

// mul64 returns the 128-bit product of x and y as (hi, lo).
func mul64(x, y uint64) (hi, lo uint64) {
	const mask32 = 1<<32 - 1
	x0, x1 := x&mask32, x>>32
	y0, y1 := y&mask32, y>>32
	w0 := x0 * y0
	t := x1*y0 + w0>>32
	w1 := t & mask32
	w2 := t >> 32
	w1 += x0 * y1
	hi = x1*y1 + w2 + w1>>32
	lo = x * y
	return hi, lo
}

// Float64 returns a uniform value in [0, 1) with 53 bits of precision.
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Exp returns an exponentially distributed value with the given rate
// (mean 1/rate). It panics if rate <= 0.
func (r *RNG) Exp(rate float64) float64 {
	if rate <= 0 {
		panic("xrand: Exp called with non-positive rate")
	}
	// -log(U) with U in (0,1]. 1-Float64() is in (0,1].
	return -math.Log(1-r.Float64()) / rate
}

// Poisson returns a Poisson-distributed value with the given mean.
// For small means it uses Knuth's multiplication method; for large means it
// uses the PTRS transformed-rejection method of Hörmann (1993), which runs in
// O(1) expected time for any mean.
func (r *RNG) Poisson(mean float64) int {
	switch {
	case mean <= 0:
		return 0
	case mean < 30:
		return r.poissonKnuth(mean)
	default:
		return r.poissonPTRS(mean)
	}
}

func (r *RNG) poissonKnuth(mean float64) int {
	l := math.Exp(-mean)
	k := 0
	p := 1.0
	for {
		p *= r.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

func (r *RNG) poissonPTRS(mean float64) int {
	b := 0.931 + 2.53*math.Sqrt(mean)
	a := -0.059 + 0.02483*b
	invAlpha := 1.1239 + 1.1328/(b-3.4)
	vr := 0.9277 - 3.6224/(b-2)
	for {
		u := r.Float64() - 0.5
		v := r.Float64()
		us := 0.5 - math.Abs(u)
		k := math.Floor((2*a/us+b)*u + mean + 0.43)
		if us >= 0.07 && v <= vr {
			return int(k)
		}
		if k < 0 || (us < 0.013 && v > us) {
			continue
		}
		lg, _ := math.Lgamma(k + 1)
		if math.Log(v*invAlpha/(a/(us*us)+b)) <= k*math.Log(mean)-mean-lg {
			return int(k)
		}
	}
}

// Geometric returns the number of failures before the first success in a
// sequence of Bernoulli(p) trials (support {0, 1, 2, ...}).
// It panics if p is not in (0, 1].
func (r *RNG) Geometric(p float64) int {
	if p <= 0 || p > 1 {
		panic("xrand: Geometric called with p outside (0,1]")
	}
	if p == 1 {
		return 0
	}
	u := 1 - r.Float64() // in (0,1]
	return int(math.Floor(math.Log(u) / math.Log(1-p)))
}

// Bernoulli returns true with probability p.
func (r *RNG) Bernoulli(p float64) bool {
	return r.Float64() < p
}

// Perm returns a uniformly random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	r.PermInto(p)
	return p
}

// PermInto fills p with a uniformly random permutation of [0, len(p)),
// consuming exactly the same random stream as Perm(len(p)). It is the
// allocation-free form used by generators that rebuild graphs every step.
func (r *RNG) PermInto(p []int) {
	for i := range p {
		p[i] = i
	}
	r.Shuffle(p)
}

// Shuffle permutes the slice in place (Fisher–Yates).
func (r *RNG) Shuffle(p []int) {
	for i := len(p) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
}

// Sample returns k distinct values drawn uniformly from [0, n) in random
// order. It panics if k > n or k < 0.
func (r *RNG) Sample(n, k int) []int {
	if k < 0 || k > n {
		panic("xrand: Sample called with k outside [0, n]")
	}
	if k == 0 {
		return nil
	}
	// Partial Fisher–Yates over an index map keeps this O(k) memory when k≪n
	// is not needed here; experiments use modest n so the simple O(n) variant
	// is clearer and still linear.
	p := r.Perm(n)
	out := make([]int, k)
	copy(out, p[:k])
	return out
}
