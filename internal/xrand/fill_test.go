package xrand

import "testing"

// TestFloat64FillMatchesScalar pins the batch contract: Float64Fill is
// draw-for-draw identical to sequential Float64 calls, for several buffer
// sizes including empty.
func TestFloat64FillMatchesScalar(t *testing.T) {
	for _, n := range []int{0, 1, 7, 256} {
		a, b := New(13), New(13)
		got := make([]float64, n)
		a.Float64Fill(got)
		for i := 0; i < n; i++ {
			if want := b.Float64(); got[i] != want {
				t.Fatalf("n=%d: Float64Fill[%d] = %v, want %v", n, i, got[i], want)
			}
		}
		if a.Uint64() != b.Uint64() {
			t.Fatalf("n=%d: Float64Fill advanced the stream differently from scalar calls", n)
		}
	}
}

func TestExpFillMatchesScalar(t *testing.T) {
	for _, rate := range []float64{0.25, 1, 3.5} {
		a, b := New(29), New(29)
		got := make([]float64, 100)
		a.ExpFill(rate, got)
		for i := range got {
			if want := b.Exp(rate); got[i] != want {
				t.Fatalf("rate=%v: ExpFill[%d] = %v, want %v", rate, i, got[i], want)
			}
		}
		if a.Uint64() != b.Uint64() {
			t.Fatalf("rate=%v: ExpFill advanced the stream differently from scalar calls", rate)
		}
	}
}

func TestGeometricFillMatchesScalar(t *testing.T) {
	for _, p := range []float64{0.01, 0.5, 0.99, 1} {
		a, b := New(31), New(31)
		got := make([]int, 200)
		a.GeometricFill(p, got)
		for i := range got {
			if want := b.Geometric(p); got[i] != want {
				t.Fatalf("p=%v: GeometricFill[%d] = %d, want %d", p, i, got[i], want)
			}
		}
		if a.Uint64() != b.Uint64() {
			t.Fatalf("p=%v: GeometricFill advanced the stream differently from scalar calls", p)
		}
	}
}

func TestFillPanics(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	r := New(1)
	mustPanic("ExpFill(0)", func() { r.ExpFill(0, make([]float64, 1)) })
	mustPanic("GeometricFill(0)", func() { r.GeometricFill(0, make([]int, 1)) })
	mustPanic("GeometricFill(1.5)", func() { r.GeometricFill(1.5, make([]int, 1)) })
}
