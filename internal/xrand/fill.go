package xrand

import "math"

// The Fill variants below generate variates in batches. Each is draw-for-draw
// identical to calling its scalar counterpart len(dst) times — same stream
// consumption, same values — so a simulator can switch between scalar and
// batched generation freely without changing its output. Batching exists
// because the v2 stream discipline consumes unit exponentials and uniforms in
// bulk: filling a buffer amortizes the per-call overhead and keeps the hot
// loop free of function-call-per-variate costs.

// Float64Fill fills dst with uniform values in [0, 1), consuming exactly
// len(dst) Uint64 draws — the same stream Float64 would consume called
// len(dst) times.
func (r *RNG) Float64Fill(dst []float64) {
	s := &r.s
	for i := range dst {
		// Inlined Uint64: xoshiro256** next().
		result := rotl(s[1]*5, 7) * 9
		t := s[1] << 17
		s[2] ^= s[0]
		s[3] ^= s[1]
		s[1] ^= s[2]
		s[0] ^= s[3]
		s[2] ^= t
		s[3] = rotl(s[3], 45)
		dst[i] = float64(result>>11) / (1 << 53)
	}
}

// ExpFill fills dst with exponentially distributed values of the given rate,
// draw-for-draw identical to len(dst) sequential Exp(rate) calls. It panics
// if rate <= 0.
func (r *RNG) ExpFill(rate float64, dst []float64) {
	if rate <= 0 {
		panic("xrand: ExpFill called with non-positive rate")
	}
	r.Float64Fill(dst)
	// Divide rather than multiply by a precomputed reciprocal: the batch must
	// be bit-identical to the scalar Exp, which divides.
	for i, u := range dst {
		dst[i] = -math.Log(1-u) / rate
	}
}

// GeometricFill fills dst with geometric variates (failures before the first
// success of Bernoulli(p) trials), draw-for-draw identical to len(dst)
// sequential Geometric(p) calls. It panics if p is outside (0, 1].
func (r *RNG) GeometricFill(p float64, dst []int) {
	if p <= 0 || p > 1 {
		panic("xrand: GeometricFill called with p outside (0,1]")
	}
	if p == 1 {
		// Geometric(1) consumes no draws, so neither does its batch.
		for i := range dst {
			dst[i] = 0
		}
		return
	}
	invLog := 1 / math.Log(1-p)
	for i := range dst {
		u := 1 - r.Float64()
		dst[i] = int(math.Floor(math.Log(u) * invLog))
	}
}
