package cluster

import "encoding/json"

// Wire types of the /v1/cluster protocol. Every request is a POST with a
// JSON body; unknown fields are rejected so protocol drift fails loudly.
// A request naming a worker ID the coordinator does not know (never
// registered, or swept after going silent) is answered with 404 and the
// worker must re-register.

// RegisterRequest announces a worker and its capabilities.
type RegisterRequest struct {
	// Name optionally labels the worker in logs and diagnostics.
	Name string `json:"name,omitempty"`
	// CPUs is the worker's engine parallelism — the number of repetitions it
	// executes concurrently within a lease.
	CPUs int `json:"cpus"`
	// Families restricts the worker to runs over the named network families;
	// empty means every family.
	Families []string `json:"families,omitempty"`
}

// RegisterResponse assigns the worker its identity and cadence.
type RegisterResponse struct {
	// WorkerID names the worker in every subsequent request.
	WorkerID string `json:"worker_id"`
	// LeaseTTLMillis is the lease validity window; the worker must heartbeat
	// well within it or its leases are reclaimed.
	LeaseTTLMillis int64 `json:"lease_ttl_ms"`
	// PollMillis is the suggested idle polling interval for lease requests.
	PollMillis int64 `json:"poll_ms"`
}

// LeaseRequest asks for work.
type LeaseRequest struct {
	WorkerID string `json:"worker_id"`
}

// Lease is one repetition range of one run, granted to one worker until it
// expires or the worker uploads its result.
type Lease struct {
	// ID names the lease in heartbeats and the result upload.
	ID string `json:"id"`
	// Run names the coordinator-side run the range belongs to (diagnostics;
	// the result upload is keyed by lease ID alone).
	Run string `json:"run"`
	// Scenario is the run's canonical scenario document — the exact bytes the
	// cache key was derived from, so every worker executes the same
	// normalized scenario.
	Scenario json.RawMessage `json:"scenario"`
	// Seed is the run's ensemble seed. Repetition i of the range draws its
	// RNG stream from this seed exactly as repetition i of a single-node run
	// would.
	Seed uint64 `json:"seed"`
	// Start and Count delimit the repetition range [Start, Start+Count).
	Start int `json:"start"`
	Count int `json:"count"`
	// Trace is the run's flight-recorder trace ID. The worker stamps its
	// result upload with it (the X-Trace-Id header and the spans below), so
	// per-shard worker timing stitches into the coordinator-side timeline.
	Trace string `json:"trace,omitempty"`
}

// LeaseResponse carries the granted lease, or null when no work is pending
// (or none the worker's families cover) — the worker sleeps PollMillis and
// asks again.
type LeaseResponse struct {
	Lease *Lease `json:"lease"`
}

// HeartbeatRequest renews the worker's liveness and the named leases.
type HeartbeatRequest struct {
	WorkerID string `json:"worker_id"`
	// LeaseIDs are the leases the worker still holds and is executing.
	LeaseIDs []string `json:"lease_ids,omitempty"`
}

// HeartbeatResponse reconciles the two lease views: Expired lists reported
// leases the coordinator no longer recognizes as held by this worker
// (reclaimed after a missed window, or belonging to a cancelled run). The
// worker must abandon them — their uploads would be discarded as stale.
type HeartbeatResponse struct {
	Expired []string `json:"expired,omitempty"`
}

// ResultRequest uploads one executed range. Values carries the raw
// per-repetition observations — Values[j] is the spread time of repetition
// Start+j — which the coordinator replays through its merger for the exact
// merge. Stream is the serialized stats.Stream snapshot of exactly those
// observations, used as an end-to-end integrity check on the upload. Error,
// when non-empty, reports that the range failed to execute and fails the run.
type ResultRequest struct {
	WorkerID  string    `json:"worker_id"`
	LeaseID   string    `json:"lease_id"`
	Values    []float64 `json:"values,omitempty"`
	Completed int       `json:"completed"`
	Stream    []byte    `json:"stream,omitempty"`
	Error     string    `json:"error,omitempty"`
	// Spans carries the worker-side timing of the range (its execute span,
	// measured on the worker's own clock) for the run's flight-recorder
	// timeline. Purely observational: the coordinator never derives merge or
	// settlement decisions from them.
	Spans []TraceSpan `json:"spans,omitempty"`
}

// TraceSpan is one flight-recorder span on the wire. Timestamps travel as
// Unix nanoseconds of the originating node's clock; cross-node skew shifts a
// worker span within the timeline but never affects results.
type TraceSpan struct {
	Name          string `json:"name"`
	Worker        string `json:"worker,omitempty"`
	Detail        string `json:"detail,omitempty"`
	StartUnixNano int64  `json:"start_unix_nano"`
	EndUnixNano   int64  `json:"end_unix_nano"`
}

// ResultResponse acknowledges an upload. Stale reports that the lease had
// already been reclaimed or its run settled — the upload was discarded and
// the worker should simply move on.
type ResultResponse struct {
	Stale bool `json:"stale"`
}
