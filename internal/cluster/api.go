package cluster

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
)

// maxResultBytes bounds a protocol request body. Result uploads dominate:
// a shard's raw observations serialize to ~20 bytes per repetition, so 8 MiB
// covers shards far larger than any sane lease.
const maxResultBytes = 8 << 20

// Mount registers the worker-facing protocol on mux. The patterns live under
// /v1/cluster/, disjoint from the service API, so a coordinator process
// serves both from one listener.
func (c *Coordinator) Mount(mux *http.ServeMux) {
	mux.HandleFunc("POST /v1/cluster/register", c.handleRegister)
	mux.HandleFunc("POST /v1/cluster/lease", c.handleLease)
	mux.HandleFunc("POST /v1/cluster/heartbeat", c.handleHeartbeat)
	mux.HandleFunc("POST /v1/cluster/result", c.handleResult)
}

func (c *Coordinator) handleRegister(w http.ResponseWriter, r *http.Request) {
	var req RegisterRequest
	if !decodeBody(w, r, &req) {
		return
	}
	writeJSON(w, http.StatusOK, c.register(req))
}

func (c *Coordinator) handleLease(w http.ResponseWriter, r *http.Request) {
	var req LeaseRequest
	if !decodeBody(w, r, &req) {
		return
	}
	lease, err := c.grantLease(req.WorkerID)
	if err != nil {
		writeProtocolError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, LeaseResponse{Lease: lease})
}

func (c *Coordinator) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	var req HeartbeatRequest
	if !decodeBody(w, r, &req) {
		return
	}
	resp, err := c.heartbeat(req)
	if err != nil {
		writeProtocolError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (c *Coordinator) handleResult(w http.ResponseWriter, r *http.Request) {
	var req ResultRequest
	if !decodeBody(w, r, &req) {
		return
	}
	resp, err := c.result(req)
	if err != nil {
		writeProtocolError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// decodeBody reads and strictly decodes a protocol request body, answering
// the request itself on failure. MaxBytesReader (rather than a bare
// LimitReader) also closes the connection after an oversized body, so a
// misbehaving worker cannot keep streaming into a refused request.
func decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxResultBytes))
	if err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeError(w, http.StatusRequestEntityTooLarge,
				fmt.Errorf("request body exceeds %d bytes", tooLarge.Limit))
			return false
		}
		writeError(w, http.StatusBadRequest, fmt.Errorf("read body: %w", err))
		return false
	}
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decode request: %w", err))
		return false
	}
	if dec.More() {
		writeError(w, http.StatusBadRequest, errors.New("trailing content after the request object"))
		return false
	}
	return true
}

// writeProtocolError maps coordinator errors to statuses: an unknown worker
// gets 404 (the signal to re-register), anything else 500.
func writeProtocolError(w http.ResponseWriter, err error) {
	if errors.Is(err, errUnknownWorker) {
		writeError(w, http.StatusNotFound, err)
		return
	}
	writeError(w, http.StatusInternalServerError, err)
}

// writeJSON renders a response document, newline-terminated like the
// service API's documents.
func writeJSON(w http.ResponseWriter, status int, v any) {
	data, err := json.Marshal(v)
	if err != nil {
		http.Error(w, `{"error":"encode response"}`, http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(append(data, '\n'))
}

// writeError renders {"error": ...} with the status.
func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}
