package cluster

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"log/slog"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"dynamicrumor/internal/obs"
	"dynamicrumor/internal/service"
	"dynamicrumor/internal/stats"
	"dynamicrumor/internal/store"
)

// Config carries the coordinator policy knobs. The zero value selects
// defaults suitable for a LAN cluster.
type Config struct {
	// LeaseTTL is the lease validity window (<= 0 selects 15s). A worker that
	// neither heartbeats nor uploads within it is presumed dead: its leases
	// return to the pool and its registration is forgotten.
	LeaseTTL time.Duration
	// PollInterval is the idle polling cadence suggested to workers
	// (<= 0 selects 500ms).
	PollInterval time.Duration
	// ShardSize is the repetition count per lease (<= 0 selects an automatic
	// size: a batch of engine chunks large enough to amortize the HTTP round
	// trip, see shardFor). Like every scheduling knob it never changes
	// outputs — the merge is exact for any sharding.
	ShardSize int
	// StateDir, when set, enables crash recovery: run starts and settled
	// shard uploads are journalled (fsync'd) so a SIGKILLed coordinator can
	// re-adopt its in-flight runs on restart, replaying completed shards
	// through the exact merger and re-leasing only the unfinished ranges.
	StateDir string
	// Logger, when non-nil, receives coordinator lifecycle events (worker
	// registration, lease reclaim, run settlement, recovery) as structured
	// log lines; nil discards them.
	Logger *slog.Logger
	// Observe, when non-nil, is the shared latency-histogram registry the
	// lease round-trip histogram records into; nil selects a private one.
	// cmd/rumord hands the coordinator the service's registry so the
	// histogram appears in the same /metrics document.
	Observe *obs.Registry
}

// Coordinator shards ensemble runs across registered workers and merges
// their partial results exactly. It implements service.Backend, so it plugs
// into the rumord scheduler as a drop-in replacement for LocalBackend;
// Mount exposes its worker-facing protocol. Create with New, stop with Close.
type Coordinator struct {
	ttl       time.Duration
	poll      time.Duration
	shardSize int
	log       *slog.Logger
	histLease *obs.Histogram

	mu         sync.Mutex
	workers    map[string]*workerState
	runs       map[string]*clusterRun
	runOrder   []string
	leases     map[string]*lease
	nextWorker int
	nextRun    int
	nextLease  int
	reassigned int64
	closed     bool

	// Crash-recovery journal state (nil / empty without Config.StateDir).
	journal        *store.Journal
	recovered      map[string]*recoveredRun
	recoveredOrder []string
	runsReadopted  int64
	shardsReplayed int64

	sweepStop chan struct{}
	sweepDone chan struct{}
}

// workerState is the registry record of one worker.
type workerState struct {
	id       string
	name     string
	cpus     int
	families map[string]bool // empty means every family
	lastSeen time.Time
	leases   map[string]bool
}

// shard is a pending repetition range of a run.
type shard struct {
	start, count int
}

// clusterRun is one in-flight ensemble run.
type clusterRun struct {
	id        string
	key       string // service run key; empty disables journaling for the run
	canonical []byte
	family    string
	seed      uint64
	reps      int
	observe   func(delta int64)
	// trace is the service job's flight-recorder timeline (nil-safe); the
	// coordinator appends per-shard lease/upload spans and workers' execute
	// spans to it as uploads settle.
	trace *obs.Trace
	// records retains the run's journal frames (run start + settled shards)
	// so compaction can rewrite them; cleared at run end.
	records []store.Record

	pending     []shard // sorted by start; lowest granted first
	outstanding int     // leased shards not yet settled
	merger      *stats.Merger
	stream      *stats.Stream
	completed   int
	err         error
	finished    bool
	done        chan struct{}
}

// lease is the coordinator-side record of a granted range.
type lease struct {
	id       string
	workerID string
	run      *clusterRun
	shard    shard
	granted  time.Time
	expires  time.Time
}

// errUnknownWorker marks requests from a worker the coordinator does not
// know; the API layer maps it to 404 and the worker re-registers.
var errUnknownWorker = errors.New("cluster: unknown worker")

// New starts a coordinator (its lease-expiry sweeper runs until Close).
// With Config.StateDir it replays the recovery journal first; failing to
// open it is a startup error, because running without the durability the
// operator asked for would be a silent downgrade.
func New(cfg Config) (*Coordinator, error) {
	c := &Coordinator{
		ttl:       cfg.LeaseTTL,
		poll:      cfg.PollInterval,
		shardSize: cfg.ShardSize,
		log:       cfg.Logger,
		workers:   make(map[string]*workerState),
		runs:      make(map[string]*clusterRun),
		leases:    make(map[string]*lease),
		recovered: make(map[string]*recoveredRun),
		sweepStop: make(chan struct{}),
		sweepDone: make(chan struct{}),
	}
	if c.ttl <= 0 {
		c.ttl = 15 * time.Second
	}
	if c.poll <= 0 {
		c.poll = 500 * time.Millisecond
	}
	if c.log == nil {
		c.log = obs.NopLogger()
	}
	reg := cfg.Observe
	if reg == nil {
		reg = obs.NewRegistry()
	}
	c.histLease = reg.Histogram("lease_roundtrip", "Seconds from cluster lease grant to its settled result upload.")
	if cfg.StateDir != "" {
		if err := c.openJournal(filepath.Join(cfg.StateDir, "cluster.journal")); err != nil {
			return nil, err
		}
	}
	go c.sweep()
	return c, nil
}

// Close stops the expiry sweeper. In-flight Run calls are settled by their
// contexts (the service cancels them on shutdown), not by Close.
func (c *Coordinator) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	c.mu.Unlock()
	close(c.sweepStop)
	<-c.sweepDone
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.journal != nil {
		if err := c.journal.Close(); err != nil {
			c.log.Error("cluster: journal close failed", "err", err)
		}
	}
}

// shardFor decides the repetitions per lease: the explicit size when set,
// otherwise about 64 shards per run — enough slices that any worker fleet
// load-balances and a reclaimed lease forfeits little work — floored at 16
// repetitions so one HTTP round trip carries meaningful work. Deliberately
// independent of the coordinator's own CPU count: workers join dynamically,
// so the run is sliced for a fleet, not for this host. A pure throughput
// knob — the merge is exact for any value.
func shardFor(shardSize, reps int) int {
	if shardSize > 0 {
		return shardSize
	}
	s := (reps + 63) / 64
	if s < 16 {
		s = 16
	}
	if s > reps {
		s = reps
	}
	return s
}

// Run implements service.Backend: it shards the run, waits for workers to
// execute every range, and returns the exactly merged result. The summary
// depends only on (canonical scenario, seed, reps) — never on which workers
// ran which ranges or how many leases were reclaimed and re-executed.
func (c *Coordinator) Run(ctx context.Context, run service.BackendRun) (service.BackendResult, error) {
	if run.Reps < 1 {
		return service.BackendResult{}, fmt.Errorf("cluster: reps must be >= 1, got %d", run.Reps)
	}
	if len(run.Canonical) == 0 {
		return service.BackendResult{}, errors.New("cluster: run has no canonical scenario")
	}
	r := &clusterRun{
		key:       run.Key,
		canonical: run.Canonical,
		family:    run.Scenario.Network.Family,
		seed:      run.Seed,
		reps:      run.Reps,
		observe:   run.Observe,
		trace:     run.Trace,
		stream:    service.NewSummaryStream(),
		done:      make(chan struct{}),
	}
	r.merger = stats.NewMerger(r.stream)
	size := shardFor(c.shardSize, run.Reps)
	r.pending = appendShardRanges(nil, 0, run.Reps, size)
	shards := len(r.pending)

	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return service.BackendResult{}, errors.New("cluster: coordinator is closed")
	}
	c.nextRun++
	r.id = fmt.Sprintf("r%06d", c.nextRun)
	c.runs[r.id] = r
	c.runOrder = append(c.runOrder, r.id)
	var replayed int64
	if rec, ok := c.recovered[run.Key]; ok {
		// The service resubmitted a run the previous coordinator process had
		// in flight: fold the journalled shards back in and lease only the
		// unfinished ranges.
		delete(c.recovered, run.Key)
		c.dropRecoveredOrder(run.Key)
		if err := c.readoptLocked(r, rec, size); err != nil {
			// Inconsistent journal state is discarded — re-executing from
			// scratch is always correct, just slower.
			c.log.Warn("cluster: journalled state unusable, running from scratch", "run", r.id, "err", err)
			r.stream = service.NewSummaryStream()
			r.merger = stats.NewMerger(r.stream)
			r.completed = 0
			r.records = nil
			r.pending = appendShardRanges(nil, 0, run.Reps, size)
			if cerr := c.compactJournalLocked(); cerr != nil {
				c.log.Warn("cluster: journal compaction failed", "err", cerr)
			}
			c.journalRunStartLocked(r, run.Canonical)
		} else {
			replayed = int64(r.merger.Next())
		}
	} else {
		c.journalRunStartLocked(r, run.Canonical)
	}
	if r.merger.Next() == r.reps {
		// Every shard was already journalled: the run finished before the
		// crash and only its end record was lost. Settle without a worker.
		r.finished = true
		c.removeRunLocked(r)
		c.journalRunEndLocked(r)
		close(r.done)
		c.log.Info("cluster: run complete from journal alone", "run", r.id, "trace", r.trace.ID(), "reps", r.reps)
	}
	c.mu.Unlock()
	if replayed > 0 && run.Observe != nil {
		run.Observe(replayed)
	}
	c.log.Info("cluster: run sharded", "run", r.id, "trace", r.trace.ID(), "reps", run.Reps, "shards", shards, "shard_size", size)

	select {
	case <-ctx.Done():
		c.abandonRun(r)
		return service.BackendResult{}, ctx.Err()
	case <-r.done:
		if r.err != nil {
			return service.BackendResult{}, r.err
		}
		return service.BackendResult{Completed: r.completed, Stream: r.stream}, nil
	}
}

// abandonRun withdraws a cancelled run: pending shards are dropped and its
// outstanding leases revoked, so late uploads settle as stale.
func (c *Coordinator) abandonRun(r *clusterRun) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if r.finished {
		return
	}
	r.finished = true
	c.removeRunLocked(r)
	c.log.Info("cluster: run abandoned", "run", r.id, "trace", r.trace.ID())
}

// removeRunLocked unregisters a settled run and revokes its leases.
// Callers hold the mutex and have set r.finished.
func (c *Coordinator) removeRunLocked(r *clusterRun) {
	delete(c.runs, r.id)
	for i, id := range c.runOrder {
		if id == r.id {
			c.runOrder = append(c.runOrder[:i], c.runOrder[i+1:]...)
			break
		}
	}
	for id, l := range c.leases {
		if l.run == r {
			delete(c.leases, id)
			if w, ok := c.workers[l.workerID]; ok {
				delete(w.leases, id)
			}
		}
	}
	r.pending = nil
	r.outstanding = 0
}

// failRunLocked settles a run with an error. Callers hold the mutex.
func (c *Coordinator) failRunLocked(r *clusterRun, err error) {
	if r.finished {
		return
	}
	r.err = err
	r.finished = true
	c.removeRunLocked(r)
	c.journalRunEndLocked(r)
	close(r.done)
	c.log.Warn("cluster: run failed", "run", r.id, "trace", r.trace.ID(), "err", err)
}

// register adds a worker to the registry.
func (c *Coordinator) register(req RegisterRequest) RegisterResponse {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.nextWorker++
	w := &workerState{
		id:       fmt.Sprintf("w%06d", c.nextWorker),
		name:     req.Name,
		cpus:     req.CPUs,
		lastSeen: time.Now(),
		leases:   make(map[string]bool),
	}
	if len(req.Families) > 0 {
		w.families = make(map[string]bool, len(req.Families))
		for _, f := range req.Families {
			w.families[f] = true
		}
	}
	c.workers[w.id] = w
	c.log.Info("cluster: worker registered", "worker", w.id, "name", req.Name, "cpus", req.CPUs, "families", len(req.Families))
	return RegisterResponse{
		WorkerID:       w.id,
		LeaseTTLMillis: c.ttl.Milliseconds(),
		PollMillis:     c.poll.Milliseconds(),
	}
}

// grantLease hands the worker the lowest-start pending shard of the oldest
// compatible run. Granting lowest start first keeps uploads near the merge
// frontier, bounding the merger's buffer of ahead-of-frontier chunks.
func (c *Coordinator) grantLease(workerID string) (*Lease, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	w, ok := c.workers[workerID]
	if !ok {
		return nil, errUnknownWorker
	}
	now := time.Now()
	w.lastSeen = now
	for _, runID := range c.runOrder {
		r := c.runs[runID]
		if len(r.pending) == 0 {
			continue
		}
		if w.families != nil && !w.families[r.family] {
			continue
		}
		sh := r.pending[0]
		r.pending = r.pending[1:]
		r.outstanding++
		c.nextLease++
		l := &lease{
			id:       fmt.Sprintf("l%08d", c.nextLease),
			workerID: workerID,
			run:      r,
			shard:    sh,
			granted:  now,
			expires:  now.Add(c.ttl),
		}
		c.leases[l.id] = l
		w.leases[l.id] = true
		return &Lease{
			ID:       l.id,
			Run:      r.id,
			Scenario: r.canonical,
			Seed:     r.seed,
			Start:    sh.start,
			Count:    sh.count,
			Trace:    r.trace.ID(),
		}, nil
	}
	return nil, nil
}

// heartbeat renews the worker and the leases it reports holding, and tells
// it which reported leases are no longer its to execute.
func (c *Coordinator) heartbeat(req HeartbeatRequest) (HeartbeatResponse, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	w, ok := c.workers[req.WorkerID]
	if !ok {
		return HeartbeatResponse{}, errUnknownWorker
	}
	now := time.Now()
	w.lastSeen = now
	var resp HeartbeatResponse
	for _, id := range req.LeaseIDs {
		if l, ok := c.leases[id]; ok && l.workerID == req.WorkerID {
			l.expires = now.Add(c.ttl)
			continue
		}
		resp.Expired = append(resp.Expired, id)
	}
	return resp, nil
}

// result settles one uploaded range. Stale uploads — the lease was reclaimed
// or its run already settled — are acknowledged and discarded, which is what
// makes duplicate execution after a reclaim harmless.
func (c *Coordinator) result(req ResultRequest) (ResultResponse, error) {
	var notify func()
	c.mu.Lock()
	w, ok := c.workers[req.WorkerID]
	if !ok {
		c.mu.Unlock()
		return ResultResponse{}, errUnknownWorker
	}
	w.lastSeen = time.Now()
	l, ok := c.leases[req.LeaseID]
	if !ok || l.workerID != req.WorkerID {
		c.mu.Unlock()
		return ResultResponse{Stale: true}, nil
	}
	delete(c.leases, l.id)
	delete(w.leases, l.id)
	r := l.run
	r.outstanding--
	switch err := c.settleUploadLocked(r, l, req); {
	case err != nil:
		c.failRunLocked(r, err)
	default:
		// Journal before acknowledging: once the worker is told its upload
		// settled, the coordinator must be able to replay it after a crash.
		c.journalShardLocked(r, l.shard, req)
		c.recordShardSpansLocked(r, l, req)
		if r.observe != nil {
			delta := int64(l.shard.count)
			observe := r.observe
			notify = func() { observe(delta) }
		}
		if r.merger.Next() == r.reps {
			r.finished = true
			c.removeRunLocked(r)
			c.journalRunEndLocked(r)
			close(r.done)
			c.log.Info("cluster: run complete", "run", r.id, "trace", r.trace.ID(), "reps", r.reps)
		}
	}
	c.mu.Unlock()
	if notify != nil {
		notify()
	}
	return ResultResponse{}, nil
}

// recordShardSpansLocked settles a shard's observability: the lease
// round-trip histogram and the run timeline get the lease span (grant →
// settled upload, on the coordinator's clock), the worker's own spans from
// the upload (its clock — skew shifts them within the timeline but never
// results), and a synthesized upload span from the worker's last span end to
// settlement. Callers hold the mutex.
func (c *Coordinator) recordShardSpansLocked(r *clusterRun, l *lease, req ResultRequest) {
	now := time.Now()
	c.histLease.Observe(now.Sub(l.granted))
	if r.trace == nil {
		return
	}
	rng := fmt.Sprintf("[%d,%d)", l.shard.start, l.shard.start+l.shard.count)
	r.trace.Add(obs.Span{
		Name:   "lease",
		Worker: l.workerID,
		Detail: rng,
		Start:  l.granted,
		End:    now,
	})
	var lastEnd time.Time
	for _, sp := range req.Spans {
		end := time.Unix(0, sp.EndUnixNano)
		if end.After(lastEnd) {
			lastEnd = end
		}
		r.trace.Add(obs.Span{
			Name:   sp.Name,
			Worker: sp.Worker,
			Detail: sp.Detail,
			Start:  time.Unix(0, sp.StartUnixNano),
			End:    end,
		})
	}
	if !lastEnd.IsZero() && lastEnd.Before(now) {
		r.trace.Add(obs.Span{
			Name:   "upload",
			Worker: l.workerID,
			Detail: rng,
			Start:  lastEnd,
			End:    now,
		})
	}
}

// settleUploadLocked validates one upload and folds it into the run's
// merger. Any validation failure is a protocol or integrity violation and
// fails the whole run — silently resampling a corrupted range would break
// the byte-identity contract. Callers hold the mutex.
func (c *Coordinator) settleUploadLocked(r *clusterRun, l *lease, req ResultRequest) error {
	if req.Error != "" {
		return fmt.Errorf("cluster: worker %s failed range [%d,%d): %s", req.WorkerID, l.shard.start, l.shard.start+l.shard.count, req.Error)
	}
	if len(req.Values) != l.shard.count {
		return fmt.Errorf("cluster: worker %s uploaded %d values for range [%d,%d)", req.WorkerID, len(req.Values), l.shard.start, l.shard.start+l.shard.count)
	}
	if req.Completed < 0 || req.Completed > l.shard.count {
		return fmt.Errorf("cluster: worker %s reported %d completions for a %d-rep range", req.WorkerID, req.Completed, l.shard.count)
	}
	// Integrity cross-check: replaying the raw values must reproduce the
	// worker's own stream snapshot bit for bit. A mismatch means the
	// observations were corrupted in flight (or the worker's accumulator
	// diverged), either of which would silently poison the exact merge.
	check := service.NewSummaryStream()
	for _, v := range req.Values {
		check.Add(v)
	}
	want, err := check.MarshalBinary()
	if err != nil {
		return fmt.Errorf("cluster: snapshot check: %w", err)
	}
	if !bytes.Equal(want, req.Stream) {
		return fmt.Errorf("cluster: worker %s: range [%d,%d) snapshot does not match its values", req.WorkerID, l.shard.start, l.shard.start+l.shard.count)
	}
	if err := r.merger.Add(stats.Chunk{Start: l.shard.start, Values: req.Values}); err != nil {
		return err
	}
	r.completed += req.Completed
	return nil
}

// sweep is the expiry loop: four times per TTL it reclaims leases whose
// window lapsed and forgets workers that went silent. Reclaimed shards
// return to their run's pending pool in start order, so a reassigned range
// is re-executed deterministically by whoever claims it next.
func (c *Coordinator) sweep() {
	defer close(c.sweepDone)
	tick := time.NewTicker(c.ttl / 4)
	defer tick.Stop()
	for {
		select {
		case <-c.sweepStop:
			return
		case <-tick.C:
			c.sweepOnce(time.Now())
		}
	}
}

// sweepOnce performs one expiry pass.
func (c *Coordinator) sweepOnce(now time.Time) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for id, l := range c.leases {
		if now.Before(l.expires) {
			continue
		}
		delete(c.leases, id)
		if w, ok := c.workers[l.workerID]; ok {
			delete(w.leases, id)
		}
		l.run.outstanding--
		c.requeueShardLocked(l.run, l.shard)
		c.reassigned++
		c.log.Warn("cluster: lease expired; range returned to pool",
			"lease", id, "worker", l.workerID, "run", l.run.id, "trace", l.run.trace.ID(),
			"start", l.shard.start, "end", l.shard.start+l.shard.count)
	}
	for id, w := range c.workers {
		if now.Sub(w.lastSeen) <= c.ttl {
			continue
		}
		delete(c.workers, id)
		c.log.Warn("cluster: worker presumed dead", "worker", id, "name", w.name, "silence", c.ttl)
	}
}

// requeueShardLocked reinserts a reclaimed shard into the run's pending
// pool, keeping it sorted by start. Callers hold the mutex.
func (c *Coordinator) requeueShardLocked(r *clusterRun, sh shard) {
	if r.finished {
		return
	}
	i := sort.Search(len(r.pending), func(i int) bool { return r.pending[i].start >= sh.start })
	r.pending = append(r.pending, shard{})
	copy(r.pending[i+1:], r.pending[i:])
	r.pending[i] = sh
}

// ClusterStats exports the coordinator gauges into the service /metrics
// document (the service discovers this method by interface assertion).
func (c *Coordinator) ClusterStats() service.ClusterStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return service.ClusterStats{
		Workers:           len(c.workers),
		LeasesOutstanding: len(c.leases),
		LeasesReassigned:  c.reassigned,
		RunsReadopted:     c.runsReadopted,
		ShardsReplayed:    c.shardsReplayed,
	}
}

// Ready implements the service's backend readiness check: with zero live
// workers a new submission would sit in the queue until one joined, holding
// a scheduler slot and the client's patience for work that cannot start.
// Failing fast with Retry-After lets clients back off and resubmit once the
// fleet is back. Cache hits, coalesced followers and crash-recovered jobs
// are exempt — the service only consults Ready for fresh work.
func (c *Coordinator) Ready() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.workers) == 0 {
		return &service.UnavailableError{
			Reason:     "cluster: no live workers joined; retry once a worker registers",
			RetryAfter: c.ttl,
		}
	}
	return nil
}
