package cluster

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"math"
	"sort"

	"dynamicrumor/internal/service"
	"dynamicrumor/internal/stats"
	"dynamicrumor/internal/store"
)

// The coordinator's crash-recovery journal (enabled by Config.StateDir):
// every run is journalled when it starts, every settled shard upload is
// journalled — raw values plus the worker's stats.Stream snapshot, the same
// integrity pair the upload itself carried — and a run's end is journalled
// when it completes or fails. On restart, a run resubmitted by the service
// under the same run key re-adopts the journalled state: completed shards
// are replayed through the exact merger in repetition order (producing the
// byte-identical accumulator a crash-free run would hold) and only the
// unfinished ranges are re-leased to workers.
//
// Abandoned runs (cancelled contexts, shutdown) deliberately get no runEnd
// record: the service's own ledger decides on restart which runs are still
// owned, and RetainRecovered prunes the coordinator state of everything it
// no longer claims.

// Journal record types of the coordinator journal.
const (
	crRunStart  byte = 1 // a keyed run began sharded execution
	crShardDone byte = 2 // one shard's upload settled into the merger
	crRunEnd    byte = 3 // the run completed or failed
)

// clusterCompactBytes is the journal size that triggers snapshot compaction.
const clusterCompactBytes = 4 << 20

// runStartRecord is the crRunStart payload.
type runStartRecord struct {
	Key       string          `json:"key"`
	Canonical json.RawMessage `json:"canonical"`
	Seed      uint64          `json:"seed"`
	Reps      int             `json:"reps"`
}

// recoveredShard is one journalled settled shard.
type recoveredShard struct {
	start     int
	completed int
	values    []float64
}

// recoveredRun is a journalled run awaiting re-adoption: the service
// resubmits it by key, and Run folds this state back in.
type recoveredRun struct {
	start  runStartRecord
	shards []recoveredShard
	// records retains the raw journal frames so compaction can rewrite them.
	records []store.Record
}

// encodeShardRecord renders a crShardDone payload:
//
//	64-byte hex key | uint32 start | uint32 count | uint32 completed |
//	count × float64 bits | uint32 stream length | stream snapshot
//
// Values are stored as raw IEEE-754 bits — the exact-merge contract is
// bit-level, so the journal must round-trip observations exactly. The
// snapshot (the worker's own stats.Stream serialization) is re-verified on
// replay just as settleUploadLocked verified it on upload.
func encodeShardRecord(key string, start, completed int, values []float64, stream []byte) []byte {
	buf := make([]byte, 0, len(key)+12+len(values)*8+4+len(stream))
	buf = append(buf, key...)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(start))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(values)))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(completed))
	for _, v := range values {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
	}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(stream)))
	return append(buf, stream...)
}

// decodeShardRecord parses and integrity-checks a crShardDone payload.
func decodeShardRecord(p []byte) (string, recoveredShard, error) {
	const keyLen = 64
	if len(p) < keyLen+12 {
		return "", recoveredShard{}, fmt.Errorf("cluster: shard record of %d bytes is too short", len(p))
	}
	key := string(p[:keyLen])
	start := int(binary.LittleEndian.Uint32(p[keyLen:]))
	count := int(binary.LittleEndian.Uint32(p[keyLen+4:]))
	sh := recoveredShard{start: start, completed: int(binary.LittleEndian.Uint32(p[keyLen+8:]))}
	rest := p[keyLen+12:]
	if count < 0 || len(rest) < count*8+4 {
		return "", recoveredShard{}, fmt.Errorf("cluster: shard record truncated (%d values, %d bytes left)", count, len(rest))
	}
	sh.values = make([]float64, count)
	for i := range sh.values {
		sh.values[i] = math.Float64frombits(binary.LittleEndian.Uint64(rest[i*8:]))
	}
	rest = rest[count*8:]
	streamLen := int(binary.LittleEndian.Uint32(rest))
	if len(rest) != 4+streamLen {
		return "", recoveredShard{}, fmt.Errorf("cluster: shard record stream truncated")
	}
	// The same cross-check the live upload passed: replaying the values must
	// reproduce the recorded stream snapshot bit for bit.
	check := service.NewSummaryStream()
	for _, v := range sh.values {
		check.Add(v)
	}
	want, err := check.MarshalBinary()
	if err != nil {
		return "", recoveredShard{}, err
	}
	if !bytes.Equal(want, rest[4:]) {
		return "", recoveredShard{}, fmt.Errorf("cluster: shard record [%d,%d) snapshot does not match its values", start, start+count)
	}
	return key, sh, nil
}

// openJournal opens the coordinator journal, replaying journalled run state
// into the recovered set. Called from New before the sweeper starts.
// Individually damaged records are logged and skipped rather than failing
// startup — a dropped shard record only means its range is re-executed, which
// the exact merge makes harmless.
func (c *Coordinator) openJournal(path string) error {
	j, err := store.OpenJournal(path, func(rec store.Record) error {
		switch rec.Type {
		case crRunStart:
			var rs runStartRecord
			if err := json.Unmarshal(rec.Payload, &rs); err != nil {
				c.log.Warn("cluster: recovery: unreadable run start record skipped", "err", err)
				return nil
			}
			if _, ok := c.recovered[rs.Key]; !ok {
				c.recoveredOrder = append(c.recoveredOrder, rs.Key)
			}
			c.recovered[rs.Key] = &recoveredRun{start: rs, records: []store.Record{rec}}
		case crShardDone:
			key, sh, err := decodeShardRecord(rec.Payload)
			if err != nil {
				c.log.Warn("cluster: recovery: shard record skipped; range will be re-executed", "err", err)
				return nil
			}
			r, ok := c.recovered[key]
			if !ok {
				// A shard of a run whose start record was compacted away after
				// it ended; nothing to recover.
				return nil
			}
			r.shards = append(r.shards, sh)
			r.records = append(r.records, rec)
		case crRunEnd:
			key := string(rec.Payload)
			if _, ok := c.recovered[key]; ok {
				delete(c.recovered, key)
				c.dropRecoveredOrder(key)
			}
		}
		// Unknown record types are skipped so an older binary can replay a
		// newer journal.
		return nil
	})
	if err != nil {
		return err
	}
	c.journal = j
	for _, key := range c.recoveredOrder {
		r := c.recovered[key]
		c.log.Info("cluster: recovery: journalled run found", "key", key[:12], "reps", r.start.Reps, "shards", len(r.shards))
	}
	// Startup compaction drops ended runs' records immediately.
	return c.compactJournalLocked()
}

// dropRecoveredOrder removes key from the recovered ordering.
func (c *Coordinator) dropRecoveredOrder(key string) {
	for i, k := range c.recoveredOrder {
		if k == key {
			c.recoveredOrder = append(c.recoveredOrder[:i], c.recoveredOrder[i+1:]...)
			return
		}
	}
}

// RetainRecovered prunes the recovered run state to the given keys — the
// runs the service's own ledger still owns. Called once at startup, after
// the service has replayed its ledger: a run the service settled or no
// longer knows will never be resubmitted, so its journalled shards are dead
// weight (and would leak across restarts).
func (c *Coordinator) RetainRecovered(keys []string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.journal == nil || len(c.recovered) == 0 {
		return
	}
	keep := make(map[string]bool, len(keys))
	for _, k := range keys {
		keep[k] = true
	}
	pruned := false
	for key := range c.recovered {
		if keep[key] {
			continue
		}
		delete(c.recovered, key)
		c.dropRecoveredOrder(key)
		pruned = true
		c.log.Info("cluster: recovery: run key no longer owned by the service, dropped", "key", key[:12])
	}
	if pruned {
		if err := c.compactJournalLocked(); err != nil {
			c.log.Warn("cluster: journal compaction failed", "err", err)
		}
	}
}

// journalableKey reports whether a run key fits the journal's fixed-width
// shard-record framing — the service's sha256 hex keys always do; anything
// else simply runs without crash recovery.
func journalableKey(key string) bool {
	return len(key) == 64
}

// journalRunStartLocked records a keyed run's start. Journal failures
// degrade durability, not correctness — the run still executes, and on a
// crash the service would simply resubmit it from scratch — so they are
// logged, never surfaced. Callers hold the mutex.
func (c *Coordinator) journalRunStartLocked(r *clusterRun, canonical []byte) {
	if c.journal == nil || !journalableKey(r.key) {
		return
	}
	payload, err := json.Marshal(runStartRecord{Key: r.key, Canonical: canonical, Seed: r.seed, Reps: r.reps})
	if err != nil {
		c.log.Warn("cluster: journal run start failed", "run", r.id, "err", err)
		return
	}
	rec := store.Record{Type: crRunStart, Payload: payload}
	if err := c.journal.Append(rec); err != nil {
		c.log.Warn("cluster: journal run start failed", "run", r.id, "err", err)
		return
	}
	r.records = append(r.records, rec)
}

// journalShardLocked records one settled shard upload. Callers hold the
// mutex and have already folded the shard into the merger.
func (c *Coordinator) journalShardLocked(r *clusterRun, sh shard, req ResultRequest) {
	if c.journal == nil || !journalableKey(r.key) || len(r.records) == 0 {
		return
	}
	rec := store.Record{Type: crShardDone, Payload: encodeShardRecord(r.key, sh.start, req.Completed, req.Values, req.Stream)}
	if err := c.journal.Append(rec); err != nil {
		c.log.Warn("cluster: journal shard failed", "run", r.id, "start", sh.start, "end", sh.start+sh.count, "err", err)
		return
	}
	r.records = append(r.records, rec)
}

// journalRunEndLocked records a run's completion or failure and compacts
// the journal once it outgrows the threshold. Abandons are deliberately not
// recorded — see the package comment. Callers hold the mutex.
func (c *Coordinator) journalRunEndLocked(r *clusterRun) {
	if c.journal == nil || !journalableKey(r.key) || len(r.records) == 0 {
		return
	}
	r.records = nil
	if err := c.journal.Append(store.Record{Type: crRunEnd, Payload: []byte(r.key)}); err != nil {
		c.log.Warn("cluster: journal run end failed", "run", r.id, "err", err)
		return
	}
	if c.journal.Size() > clusterCompactBytes {
		if err := c.compactJournalLocked(); err != nil {
			c.log.Warn("cluster: journal compaction failed", "err", err)
		}
	}
}

// compactJournalLocked rewrites the journal to exactly the live state: the
// retained frames of every active keyed run and every still-unclaimed
// recovered run. Callers hold the mutex (or are in single-threaded startup).
func (c *Coordinator) compactJournalLocked() error {
	if c.journal == nil {
		return nil
	}
	var records []store.Record
	for _, key := range c.recoveredOrder {
		records = append(records, c.recovered[key].records...)
	}
	for _, id := range c.runOrder {
		records = append(records, c.runs[id].records...)
	}
	return c.journal.Rewrite(records)
}

// appendShardRanges slices [start, start+count) into size-bounded pending
// shards appended to pending.
func appendShardRanges(pending []shard, start, count, size int) []shard {
	for count > 0 {
		n := size
		if n > count {
			n = count
		}
		pending = append(pending, shard{start: start, count: n})
		start += n
		count -= n
	}
	return pending
}

// readoptLocked folds a recovered run's journalled shards into a fresh
// clusterRun: settled ranges replay through the exact merger in repetition
// order — reproducing bit for bit the accumulator state the crashed
// coordinator held — and only the gaps between them are sliced into pending
// shards for workers. Returns an error if the journalled state is
// internally inconsistent, in which case the caller falls back to running
// from scratch. Callers hold the mutex.
func (c *Coordinator) readoptLocked(r *clusterRun, rec *recoveredRun, size int) error {
	shards := append([]recoveredShard(nil), rec.shards...)
	sort.Slice(shards, func(i, j int) bool { return shards[i].start < shards[j].start })
	var pending []shard
	next := 0
	for _, sh := range shards {
		if sh.start < next {
			return fmt.Errorf("cluster: journalled shards overlap at rep %d", sh.start)
		}
		if sh.start+len(sh.values) > r.reps {
			return fmt.Errorf("cluster: journalled shard [%d,%d) exceeds %d reps", sh.start, sh.start+len(sh.values), r.reps)
		}
		pending = appendShardRanges(pending, next, sh.start-next, size)
		if err := r.merger.Add(stats.Chunk{Start: sh.start, Values: sh.values}); err != nil {
			return err
		}
		r.completed += sh.completed
		next = sh.start + len(sh.values)
		c.shardsReplayed++
	}
	r.pending = appendShardRanges(pending, next, r.reps-next, size)
	r.records = rec.records
	c.runsReadopted++
	c.log.Info("cluster: run re-adopted", "run", r.id, "trace", r.trace.ID(), "key", r.key[:12],
		"shards_replayed", len(shards), "reps_merged", r.merger.Next())
	return nil
}
