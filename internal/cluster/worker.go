package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"sync"
	"time"

	"dynamicrumor/internal/engine"
	"dynamicrumor/internal/obs"
	"dynamicrumor/internal/retry"
	"dynamicrumor/internal/runner"
	"dynamicrumor/internal/service"
	"dynamicrumor/internal/sim"
)

// WorkerConfig configures a cluster worker.
type WorkerConfig struct {
	// Coordinator is the coordinator's base URL, e.g. "http://host:8080".
	Coordinator string
	// Name optionally labels the worker in coordinator logs.
	Name string
	// CPUs is the engine parallelism within a lease (<= 0 selects
	// GOMAXPROCS). Announced to the coordinator as the worker's CPU budget.
	CPUs int
	// Families restricts the worker to the named network families; nil
	// announces support for every family.
	Families []string
	// Client overrides the HTTP client (nil selects one with a 30s timeout).
	Client *http.Client
	// Logger, when non-nil, receives worker lifecycle events as structured
	// log lines; nil discards them.
	Logger *slog.Logger
}

// Worker executes leased repetition ranges for a coordinator. Create with
// NewWorker and drive with Run; the worker registers itself, heartbeats, and
// re-registers transparently if the coordinator forgets it.
type Worker struct {
	base     string
	name     string
	cpus     int
	families []string
	client   *http.Client
	log      *slog.Logger

	mu   sync.Mutex
	id   string
	ttl  time.Duration
	poll time.Duration
	held map[string]context.CancelFunc // lease ID -> abandon
}

// NewWorker returns an unstarted worker.
func NewWorker(cfg WorkerConfig) *Worker {
	w := &Worker{
		base:     cfg.Coordinator,
		name:     cfg.Name,
		cpus:     runner.Parallelism(cfg.CPUs),
		families: cfg.Families,
		client:   cfg.Client,
		log:      cfg.Logger,
		held:     make(map[string]context.CancelFunc),
	}
	if w.client == nil {
		w.client = &http.Client{Timeout: 30 * time.Second}
	}
	if w.log == nil {
		w.log = obs.NopLogger()
	}
	return w
}

// errStaleWorker marks a 404 from the coordinator: the registration lapsed
// (or never happened) and the worker must register again.
var errStaleWorker = errors.New("cluster: coordinator does not know this worker")

// Run is the worker loop: register, heartbeat in the background, and
// poll-execute-upload leases until ctx is cancelled. It returns ctx.Err()
// on cancellation; transient coordinator failures are retried with backoff,
// never surfaced.
func (w *Worker) Run(ctx context.Context) error {
	if err := w.register(ctx); err != nil {
		return err
	}

	hbCtx, hbCancel := context.WithCancel(ctx)
	defer hbCancel()
	var hbDone sync.WaitGroup
	hbDone.Add(1)
	go func() {
		defer hbDone.Done()
		w.heartbeatLoop(hbCtx)
	}()
	defer hbDone.Wait()

	// Consecutive lease-poll failures back off with full jitter instead of
	// hammering a coordinator that is down or restarting; any success (or a
	// quiet "no work" answer) resets the sequence.
	leaseRetry := retry.Policy{Base: 100 * time.Millisecond, Cap: 5 * time.Second}
	failures := 0
	// next is the double-buffered lease: while a shard executes, one request
	// for the following lease is in flight, so the worker moves from upload
	// straight into the next range instead of idling a round trip. At most
	// two leases are ever outstanding — the executing one and the prefetched
	// one — and the prefetched lease is registered in held immediately, so
	// heartbeats renew it and coordinator-reported expiry abandons it before
	// it starts, exactly as for an executing lease.
	var next *heldLease
	defer func() {
		if next != nil {
			w.release(next)
		}
	}()
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		hl := next
		next = nil
		if hl == nil {
			lease, err := w.requestLease(ctx)
			switch {
			case errors.Is(err, errStaleWorker):
				failures = 0
				if err := w.register(ctx); err != nil {
					return err
				}
				continue
			case err != nil:
				if ctx.Err() != nil {
					return ctx.Err()
				}
				failures++
				w.log.Warn("worker: lease request failed", "err", err)
				if !retry.Sleep(ctx, leaseRetry.Delay(failures-1)) {
					return ctx.Err()
				}
				continue
			case lease == nil:
				failures = 0
				if !retry.Sleep(ctx, w.pollInterval()) {
					return ctx.Err()
				}
				continue
			}
			hl = w.acquire(ctx, lease)
		}
		failures = 0
		prefetched := make(chan *heldLease, 1)
		go w.prefetchLease(ctx, prefetched)
		w.execute(ctx, hl)
		next = <-prefetched
	}
}

// heldLease is a lease the worker owns, with the context its execution (and
// abandonment) runs under. Acquired at claim time — before execution starts
// for prefetched leases — so the heartbeat loop renews it from the moment
// the coordinator granted it.
type heldLease struct {
	lease  *Lease
	ctx    context.Context
	cancel context.CancelFunc
}

// acquire registers a granted lease in the held set.
func (w *Worker) acquire(ctx context.Context, lease *Lease) *heldLease {
	leaseCtx, cancel := context.WithCancel(ctx)
	w.mu.Lock()
	w.held[lease.ID] = cancel
	w.mu.Unlock()
	return &heldLease{lease: lease, ctx: leaseCtx, cancel: cancel}
}

// release removes a lease from the held set and cancels its context.
func (w *Worker) release(hl *heldLease) {
	w.mu.Lock()
	delete(w.held, hl.lease.ID)
	w.mu.Unlock()
	hl.cancel()
}

// prefetchLease makes one (non-retried) claim attempt for the next lease
// while the current shard executes. Failures and empty answers deliver nil
// and the main loop falls back to its ordinary polling path, with its usual
// backoff and re-registration handling.
func (w *Worker) prefetchLease(ctx context.Context, out chan<- *heldLease) {
	lease, err := w.requestLease(ctx)
	if err != nil || lease == nil {
		out <- nil
		return
	}
	out <- w.acquire(ctx, lease)
}

// register announces the worker, retrying with jittered backoff until it
// succeeds or ctx is cancelled — a worker outliving its coordinator's crash
// keeps knocking until the restarted coordinator answers.
func (w *Worker) register(ctx context.Context) error {
	policy := retry.Policy{Base: 100 * time.Millisecond, Cap: 5 * time.Second, PerAttempt: 10 * time.Second}
	err := policy.Do(ctx, func(ctx context.Context) error {
		var resp RegisterResponse
		err := w.post(ctx, "/v1/cluster/register", RegisterRequest{
			Name:     w.name,
			CPUs:     w.cpus,
			Families: w.families,
		}, &resp)
		if err != nil {
			if ctx.Err() == nil {
				w.log.Warn("worker: register failed", "err", err)
			}
			return err
		}
		w.mu.Lock()
		w.id = resp.WorkerID
		w.ttl = time.Duration(resp.LeaseTTLMillis) * time.Millisecond
		w.poll = time.Duration(resp.PollMillis) * time.Millisecond
		w.mu.Unlock()
		w.log.Info("worker: registered", "worker", resp.WorkerID, "lease_ttl_ms", resp.LeaseTTLMillis)
		return nil
	})
	if err != nil && ctx.Err() != nil {
		return ctx.Err()
	}
	return err
}

// heartbeatLoop renews the registration and held leases at a third of the
// TTL. A 404 means the coordinator forgot us; the main loop discovers that
// on its next request and re-registers, so here it is only logged. Leases
// the coordinator reports expired are abandoned immediately.
func (w *Worker) heartbeatLoop(ctx context.Context) {
	for {
		interval := w.leaseTTL() / 3
		if interval <= 0 {
			interval = time.Second
		}
		if !retry.Sleep(ctx, interval) {
			return
		}
		id, leaseIDs := w.snapshot()
		if id == "" {
			continue
		}
		var resp HeartbeatResponse
		err := w.post(ctx, "/v1/cluster/heartbeat", HeartbeatRequest{WorkerID: id, LeaseIDs: leaseIDs}, &resp)
		if err != nil {
			if ctx.Err() == nil {
				w.log.Warn("worker: heartbeat failed", "err", err)
			}
			continue
		}
		for _, leaseID := range resp.Expired {
			w.abandon(leaseID)
		}
	}
}

// execute runs one lease on the local engine and uploads the result. The
// repetition range reproduces exactly the streams a single-node run would
// have drawn for those indices, so the uploaded observations are
// bit-identical to that run's slice.
func (w *Worker) execute(ctx context.Context, hl *heldLease) {
	lease, leaseCtx := hl.lease, hl.ctx
	defer w.release(hl)

	result := ResultRequest{LeaseID: lease.ID}
	e0 := time.Now()
	values, completed, err := w.executeRange(leaseCtx, lease)
	e1 := time.Now()
	switch {
	case err != nil && leaseCtx.Err() != nil && ctx.Err() == nil:
		// The lease was abandoned (coordinator reported it expired): the
		// range is someone else's now; uploading would only be discarded.
		w.log.Info("worker: lease abandoned mid-range", "lease", lease.ID, "trace", lease.Trace)
		return
	case err != nil && ctx.Err() != nil:
		return
	case err != nil:
		result.Error = err.Error()
	default:
		snapshot := service.NewSummaryStream()
		for _, v := range values {
			snapshot.Add(v)
		}
		blob, merr := snapshot.MarshalBinary()
		if merr != nil {
			result.Error = merr.Error()
		} else {
			result.Values = values
			result.Completed = completed
			result.Stream = blob
		}
	}
	if lease.Trace != "" {
		// Worker-clock timing of the range for the run's flight-recorder
		// timeline; skew shifts the span, never the merged result.
		result.Spans = []TraceSpan{{
			Name:          "execute",
			Worker:        w.workerID(),
			Detail:        fmt.Sprintf("[%d,%d)", lease.Start, lease.Start+lease.Count),
			StartUnixNano: e0.UnixNano(),
			EndUnixNano:   e1.UnixNano(),
		}}
	}
	w.upload(ctx, result, lease.Trace)
}

// executeRange runs the lease's repetition range, collecting the raw
// spread-time observations in repetition order.
func (w *Worker) executeRange(ctx context.Context, lease *Lease) ([]float64, int, error) {
	sc, err := engine.Parse(lease.Scenario)
	if err != nil {
		return nil, 0, err
	}
	eng := engine.Engine{Parallelism: w.cpus, Seed: lease.Seed}
	values := make([]float64, 0, lease.Count)
	completed := 0
	err = eng.RunReduceRangeCtx(ctx, sc, lease.Start, lease.Count, func(rep int, res *sim.Result) error {
		values = append(values, res.SpreadTime)
		if res.Completed {
			completed++
		}
		return nil
	})
	if err != nil {
		return nil, 0, err
	}
	return values, completed, nil
}

// upload posts a result with jittered, bounded retries; a stale
// acknowledgement or a lapsed registration permanently drops the result —
// the coordinator has already rearranged the work.
func (w *Worker) upload(ctx context.Context, result ResultRequest, trace string) {
	policy := retry.Policy{Base: 100 * time.Millisecond, Cap: 5 * time.Second, Attempts: 4, PerAttempt: 15 * time.Second}
	err := policy.Do(ctx, func(ctx context.Context) error {
		result.WorkerID = w.workerID()
		var resp ResultResponse
		err := w.postTraced(ctx, "/v1/cluster/result", result, &resp, trace)
		switch {
		case errors.Is(err, errStaleWorker):
			w.log.Warn("worker: registration lapsed; dropping lease result", "lease", result.LeaseID)
			return retry.Permanent(err)
		case err != nil:
			if ctx.Err() == nil {
				w.log.Warn("worker: lease upload failed", "lease", result.LeaseID, "err", err)
			}
			return err
		case resp.Stale:
			w.log.Info("worker: lease result was stale", "lease", result.LeaseID)
			return nil
		default:
			return nil
		}
	})
	if err != nil && ctx.Err() == nil && !errors.Is(err, errStaleWorker) {
		w.log.Warn("worker: giving up on lease result", "lease", result.LeaseID, "err", err)
	}
}

// requestLease polls the coordinator for work.
func (w *Worker) requestLease(ctx context.Context) (*Lease, error) {
	var resp LeaseResponse
	if err := w.post(ctx, "/v1/cluster/lease", LeaseRequest{WorkerID: w.workerID()}, &resp); err != nil {
		return nil, err
	}
	return resp.Lease, nil
}

// abandon cancels a held lease's execution.
func (w *Worker) abandon(leaseID string) {
	w.mu.Lock()
	cancel, ok := w.held[leaseID]
	w.mu.Unlock()
	if ok {
		w.log.Info("worker: abandoning expired lease", "lease", leaseID)
		cancel()
	}
}

// snapshot reads the worker's identity and held lease IDs.
func (w *Worker) snapshot() (string, []string) {
	w.mu.Lock()
	defer w.mu.Unlock()
	ids := make([]string, 0, len(w.held))
	for id := range w.held {
		ids = append(ids, id)
	}
	return w.id, ids
}

func (w *Worker) workerID() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.id
}

func (w *Worker) leaseTTL() time.Duration {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.ttl
}

func (w *Worker) pollInterval() time.Duration {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.poll <= 0 {
		return 500 * time.Millisecond
	}
	return w.poll
}

// post sends one protocol request and decodes the response into out.
func (w *Worker) post(ctx context.Context, path string, in, out any) error {
	return w.postTraced(ctx, path, in, out, "")
}

// postTraced is post with an optional X-Trace-Id header, so result uploads
// announce the run timeline they belong to.
func (w *Worker) postTraced(ctx context.Context, path string, in, out any, trace string) error {
	body, err := json.Marshal(in)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, w.base+path, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	if trace != "" {
		req.Header.Set(obs.TraceHeader, trace)
	}
	resp, err := w.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, maxResultBytes))
	if err != nil {
		return err
	}
	if resp.StatusCode == http.StatusNotFound {
		return errStaleWorker
	}
	if resp.StatusCode != http.StatusOK {
		var apiErr struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(data, &apiErr) == nil && apiErr.Error != "" {
			return fmt.Errorf("cluster: %s: %s (status %d)", path, apiErr.Error, resp.StatusCode)
		}
		return fmt.Errorf("cluster: %s: status %d", path, resp.StatusCode)
	}
	return json.Unmarshal(data, out)
}
