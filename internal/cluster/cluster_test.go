package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dynamicrumor/internal/engine"
	"dynamicrumor/internal/obs"
	"dynamicrumor/internal/service"
)

// testLogger routes structured coordinator logs through the test log so
// failures carry the coordinator's own account of what happened.
func testLogger(t *testing.T) *slog.Logger {
	t.Helper()
	return slog.New(slog.NewTextHandler(testLogWriter{t}, nil))
}

type testLogWriter struct{ t *testing.T }

func (w testLogWriter) Write(p []byte) (int, error) {
	w.t.Logf("%s", bytes.TrimRight(p, "\n"))
	return len(p), nil
}

// testRun builds a BackendRun for a clique scenario.
func testRun(t *testing.T, n, reps int, seed uint64) service.BackendRun {
	t.Helper()
	doc := `{"network":{"family":"clique","params":{"n":` + itoa(n) + `}}}`
	sc, err := engine.Parse([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	canonical, err := engine.Canonical(sc)
	if err != nil {
		t.Fatal(err)
	}
	return service.BackendRun{Scenario: sc, Canonical: canonical, Reps: reps, Seed: seed}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

// newTestCoordinator starts a coordinator or fails the test.
func newTestCoordinator(t *testing.T, cfg Config) *Coordinator {
	t.Helper()
	coord, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return coord
}

// localResult runs the same ensemble on the single-node reference backend.
func localResult(t *testing.T, run service.BackendRun) service.BackendResult {
	t.Helper()
	run.Workers = 4
	res, err := service.LocalBackend{}.Run(context.Background(), run)
	if err != nil {
		t.Fatalf("local backend: %v", err)
	}
	return res
}

// mustMarshal snapshots a result's stream.
func mustMarshal(t *testing.T, res service.BackendResult) []byte {
	t.Helper()
	b, err := res.Stream.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// startWorkers launches n workers against url and returns a stop function
// that waits for them to exit.
func startWorkers(t *testing.T, url string, n int) func() {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{}, n)
	for i := 0; i < n; i++ {
		w := NewWorker(WorkerConfig{Coordinator: url, Name: "test-worker", CPUs: 2})
		go func() {
			defer func() { done <- struct{}{} }()
			w.Run(ctx)
		}()
	}
	return func() {
		cancel()
		for i := 0; i < n; i++ {
			<-done
		}
	}
}

// TestClusterMatchesLocal: a 2-worker distributed run produces a stream
// byte-identical to the single-node reference backend, and the coordinator
// observes every repetition exactly once.
func TestClusterMatchesLocal(t *testing.T) {
	coord := newTestCoordinator(t, Config{LeaseTTL: 5 * time.Second, PollInterval: 5 * time.Millisecond, ShardSize: 7})
	defer coord.Close()
	mux := http.NewServeMux()
	coord.Mount(mux)
	ts := httptest.NewServer(mux)
	defer ts.Close()
	stop := startWorkers(t, ts.URL, 2)
	defer stop()

	run := testRun(t, 48, 100, 42)
	var observed atomic.Int64
	run.Observe = func(delta int64) { observed.Add(delta) }
	res, err := coord.Run(context.Background(), run)
	if err != nil {
		t.Fatalf("cluster run: %v", err)
	}
	if got := observed.Load(); got != 100 {
		t.Errorf("observed %d repetitions, want 100", got)
	}

	want := localResult(t, testRun(t, 48, 100, 42))
	if res.Completed != want.Completed {
		t.Errorf("completed = %d, want %d", res.Completed, want.Completed)
	}
	if !bytes.Equal(mustMarshal(t, res), mustMarshal(t, want)) {
		t.Error("cluster stream differs from single-node stream")
	}
}

// TestClusterLeaseExpiryReassignment kills a worker mid-run: a hand-driven
// worker registers, leases the range at the merge frontier, heartbeats its
// liveness but never its lease, and never uploads. The lease must expire,
// return to the pool, and be re-executed by a live worker — and the merged
// result must still be byte-identical to the single-node run. The dead
// worker's late upload must be discarded as stale.
func TestClusterLeaseExpiryReassignment(t *testing.T) {
	const ttl = 300 * time.Millisecond
	coord := newTestCoordinator(t, Config{LeaseTTL: ttl, PollInterval: 5 * time.Millisecond, ShardSize: 25, Logger: testLogger(t)})
	defer coord.Close()
	mux := http.NewServeMux()
	coord.Mount(mux)
	ts := httptest.NewServer(mux)
	defer ts.Close()

	// The vanishing worker grabs the first shard before any live worker
	// exists, so the merge frontier is deterministically blocked on it.
	dead := coord.register(RegisterRequest{Name: "vanishing", CPUs: 1})

	run := testRun(t, 48, 400, 7)
	type outcome struct {
		res service.BackendResult
		err error
	}
	runDone := make(chan outcome, 1)
	go func() {
		res, err := coord.Run(context.Background(), run)
		runDone <- outcome{res, err}
	}()

	var lease *Lease
	for deadline := time.Now().Add(5 * time.Second); lease == nil; {
		var err error
		lease, err = coord.grantLease(dead.WorkerID)
		if err != nil {
			t.Fatalf("grant to vanishing worker: %v", err)
		}
		if lease == nil {
			if time.Now().After(deadline) {
				t.Fatal("run never offered a lease")
			}
			time.Sleep(time.Millisecond)
		}
	}
	if lease.Start != 0 {
		t.Fatalf("vanishing worker leased [%d,%d), want the frontier shard [0,25)", lease.Start, lease.Start+lease.Count)
	}

	// Keep the worker's registration alive without renewing the lease, so
	// the reclaim is a lease expiry, not a worker sweep, and the late
	// upload exercises the stale path rather than 404.
	hbStop := make(chan struct{})
	hbDone := make(chan struct{})
	go func() {
		defer close(hbDone)
		tick := time.NewTicker(ttl / 4)
		defer tick.Stop()
		for {
			select {
			case <-hbStop:
				return
			case <-tick.C:
				coord.heartbeat(HeartbeatRequest{WorkerID: dead.WorkerID})
			}
		}
	}()
	defer func() { close(hbStop); <-hbDone }()

	stop := startWorkers(t, ts.URL, 2)
	defer stop()

	var got outcome
	select {
	case got = <-runDone:
	case <-time.After(30 * time.Second):
		t.Fatal("distributed run did not finish")
	}
	if got.err != nil {
		t.Fatalf("cluster run: %v", got.err)
	}
	if n := coord.ClusterStats().LeasesReassigned; n < 1 {
		t.Errorf("leases_reassigned = %d, want >= 1", n)
	}

	want := localResult(t, testRun(t, 48, 400, 7))
	if got.res.Completed != want.Completed {
		t.Errorf("completed = %d, want %d", got.res.Completed, want.Completed)
	}
	if !bytes.Equal(mustMarshal(t, got.res), mustMarshal(t, want)) {
		t.Error("stream after lease reassignment differs from single-node stream")
	}

	// The range was re-executed by someone else; the original lease is gone
	// and the dead worker's upload must change nothing.
	resp, err := coord.result(ResultRequest{WorkerID: dead.WorkerID, LeaseID: lease.ID, Values: make([]float64, lease.Count)})
	if err != nil {
		t.Fatalf("late upload: %v", err)
	}
	if !resp.Stale {
		t.Error("late upload of a reclaimed lease was not reported stale")
	}
}

// TestClusterFamilyGating: a worker restricted to another family is never
// offered the run; an unrestricted worker is.
func TestClusterFamilyGating(t *testing.T) {
	coord := newTestCoordinator(t, Config{LeaseTTL: 5 * time.Second, PollInterval: 5 * time.Millisecond, ShardSize: 10})
	defer coord.Close()

	gated := coord.register(RegisterRequest{Name: "gated", CPUs: 1, Families: []string{"gnrho"}})
	open := coord.register(RegisterRequest{Name: "open", CPUs: 1})

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	runDone := make(chan error, 1)
	go func() {
		_, err := coord.Run(ctx, testRun(t, 48, 10, 1))
		runDone <- err
	}()

	// Wait until the run is offering leases at all...
	var probe *Lease
	for deadline := time.Now().Add(5 * time.Second); probe == nil; {
		var err error
		probe, err = coord.grantLease(open.WorkerID)
		if err != nil {
			t.Fatal(err)
		}
		if probe == nil && time.Now().After(deadline) {
			t.Fatal("run never offered a lease")
		}
	}
	// ...then confirm the gated worker is still refused.
	if l, err := coord.grantLease(gated.WorkerID); err != nil || l != nil {
		t.Errorf("gated worker got lease %v, err %v; want none", l, err)
	}
	cancel()
	if err := <-runDone; err == nil {
		t.Error("cancelled run returned nil error")
	}
}

// TestClusterIntegrityCheck: an upload whose stream snapshot does not match
// its raw values fails the run loudly instead of poisoning the merge.
func TestClusterIntegrityCheck(t *testing.T) {
	coord := newTestCoordinator(t, Config{LeaseTTL: 5 * time.Second, ShardSize: 100})
	defer coord.Close()
	w := coord.register(RegisterRequest{Name: "corrupt", CPUs: 1})

	runDone := make(chan error, 1)
	go func() {
		_, err := coord.Run(context.Background(), testRun(t, 48, 10, 1))
		runDone <- err
	}()
	var lease *Lease
	for deadline := time.Now().Add(5 * time.Second); lease == nil; {
		var err error
		lease, err = coord.grantLease(w.WorkerID)
		if err != nil {
			t.Fatal(err)
		}
		if lease == nil && time.Now().After(deadline) {
			t.Fatal("run never offered a lease")
		}
	}
	resp, err := coord.result(ResultRequest{
		WorkerID:  w.WorkerID,
		LeaseID:   lease.ID,
		Values:    make([]float64, lease.Count),
		Completed: lease.Count,
		Stream:    []byte("not a snapshot"),
	})
	if err != nil || resp.Stale {
		t.Fatalf("upload: resp %+v, err %v", resp, err)
	}
	runErr := <-runDone
	if runErr == nil || !strings.Contains(runErr.Error(), "snapshot") {
		t.Errorf("run error = %v, want a snapshot integrity failure", runErr)
	}
}

// TestClusterUnknownWorker: protocol requests naming an unknown worker are
// answered 404 — the re-register signal.
func TestClusterUnknownWorker(t *testing.T) {
	coord := newTestCoordinator(t, Config{})
	defer coord.Close()
	mux := http.NewServeMux()
	coord.Mount(mux)
	ts := httptest.NewServer(mux)
	defer ts.Close()

	resp, err := http.Post(ts.URL+"/v1/cluster/lease", "application/json", strings.NewReader(`{"worker_id":"w999999"}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("lease for unknown worker: status %d, want 404", resp.StatusCode)
	}
}

// TestWorkerPipelinesLeaseClaims pins the double-buffered claim loop: while
// one shard executes, the claim for the next lease is already in flight, so
// the coordinator sees the claim for lease k+1 before lease k's result
// upload — and the worker never holds more than two leases at once. The fake
// coordinator enforces the ordering by refusing to acknowledge any upload
// until the second claim has arrived; a strictly serial worker would
// deadlock here and trip the watchdog timeouts.
func TestWorkerPipelinesLeaseClaims(t *testing.T) {
	doc := []byte(`{"network":{"family":"clique","params":{"n":32}}}`)
	sc, err := engine.Parse(doc)
	if err != nil {
		t.Fatal(err)
	}
	canonical, err := engine.Canonical(sc)
	if err != nil {
		t.Fatal(err)
	}

	var mu sync.Mutex
	granted, resolved, maxHeld := 0, 0, 0
	secondClaim := make(chan struct{})

	mux := http.NewServeMux()
	mux.HandleFunc("/v1/cluster/register", func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(RegisterResponse{WorkerID: "w1", LeaseTTLMillis: 60_000, PollMillis: 5})
	})
	mux.HandleFunc("/v1/cluster/heartbeat", func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(HeartbeatResponse{})
	})
	mux.HandleFunc("/v1/cluster/lease", func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		granted++
		id := granted
		if held := granted - resolved; held > maxHeld {
			maxHeld = held
		}
		if id == 2 {
			close(secondClaim)
		}
		mu.Unlock()
		json.NewEncoder(w).Encode(LeaseResponse{Lease: &Lease{
			ID: "L" + itoa(id), Run: "r1", Scenario: canonical, Seed: 1,
			Start: (id - 1) * 4, Count: 4,
		}})
	})
	mux.HandleFunc("/v1/cluster/result", func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-secondClaim:
		case <-time.After(10 * time.Second):
		}
		mu.Lock()
		resolved++
		mu.Unlock()
		json.NewEncoder(w).Encode(ResultResponse{})
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()

	ctx, cancel := context.WithCancel(context.Background())
	wk := NewWorker(WorkerConfig{Coordinator: ts.URL, Name: "pipeline-test", CPUs: 2})
	done := make(chan struct{})
	go func() { defer close(done); wk.Run(ctx) }()

	select {
	case <-secondClaim:
	case <-time.After(5 * time.Second):
		t.Fatal("no prefetch claim arrived while the first shard was outstanding")
	}
	// Let the loop run a few steady-state rounds before stopping.
	deadline := time.After(5 * time.Second)
	for {
		mu.Lock()
		r := resolved
		mu.Unlock()
		if r >= 3 {
			break
		}
		select {
		case <-deadline:
			t.Fatal("worker did not complete 3 leases in time")
		case <-time.After(2 * time.Millisecond):
		}
	}
	cancel()
	<-done

	mu.Lock()
	defer mu.Unlock()
	if maxHeld > 2 {
		t.Errorf("worker held %d leases at once, want at most 2", maxHeld)
	}
}

// TestClusterTraceStitching: a distributed run's flight-recorder timeline
// carries both coordinator-side lease spans and the workers' own execute
// spans, stitched under the one trace ID minted at submission — one lease
// and one worker execute span per shard, plus a synthesized upload span.
func TestClusterTraceStitching(t *testing.T) {
	coord := newTestCoordinator(t, Config{LeaseTTL: 5 * time.Second, PollInterval: 5 * time.Millisecond, ShardSize: 7})
	defer coord.Close()
	mux := http.NewServeMux()
	coord.Mount(mux)
	ts := httptest.NewServer(mux)
	defer ts.Close()
	stop := startWorkers(t, ts.URL, 2)
	defer stop()

	rec := obs.NewRecorder(0)
	run := testRun(t, 48, 100, 42)
	run.Trace = rec.Start("tr-stitch", "jstitch")
	if _, err := coord.Run(context.Background(), run); err != nil {
		t.Fatalf("cluster run: %v", err)
	}

	view := run.Trace.View()
	if view.Trace != "tr-stitch" {
		t.Fatalf("trace ID = %q, want tr-stitch", view.Trace)
	}
	const shards = 15 // ceil(100/7)
	counts := make(map[string]int)
	for _, sp := range view.Spans {
		counts[sp.Name]++
		switch sp.Name {
		case "lease", "execute":
			if sp.Worker == "" {
				t.Errorf("%s span lacks a worker ID: %+v", sp.Name, sp)
			}
		}
		start, err0 := time.Parse(time.RFC3339Nano, sp.Start)
		end, err1 := time.Parse(time.RFC3339Nano, sp.End)
		if err0 != nil || err1 != nil {
			t.Errorf("span %s has unparseable timestamps: %+v", sp.Name, sp)
		} else if end.Before(start) {
			t.Errorf("span %s ends before it starts: %+v", sp.Name, sp)
		}
	}
	if counts["lease"] != shards {
		t.Errorf("lease spans = %d, want %d", counts["lease"], shards)
	}
	if counts["execute"] != shards {
		t.Errorf("worker execute spans = %d, want %d", counts["execute"], shards)
	}
	if counts["upload"] == 0 {
		t.Error("no synthesized upload spans")
	}
	// The range detail lets a timeline reader attribute shards: every
	// execute span names its [start,end) repetition range.
	for _, sp := range view.Spans {
		if sp.Name == "execute" && !strings.HasPrefix(sp.Detail, "[") {
			t.Errorf("execute span detail %q does not name its range", sp.Detail)
		}
	}
}
