package cluster

import (
	"bytes"
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"dynamicrumor/internal/engine"
	"dynamicrumor/internal/service"
	"dynamicrumor/internal/sim"
)

// testKey is a syntactically valid (64-hex) run key; the coordinator treats
// keys opaquely, so any fixed one exercises the journal paths.
const testKey = "ab12ab12ab12ab12ab12ab12ab12ab12ab12ab12ab12ab12ab12ab12ab12ab12"

// recoveryConfig is the coordinator configuration shared by the crashed and
// restarted processes in the recovery tests.
func recoveryConfig(t *testing.T, stateDir string) Config {
	return Config{
		LeaseTTL:     5 * time.Second,
		PollInterval: 5 * time.Millisecond,
		ShardSize:    10,
		StateDir:     stateDir,
		Logger:       testLogger(t),
	}
}

// executeLease runs a lease's repetition range exactly as a worker would and
// renders the upload request (raw values plus stream snapshot).
func executeLease(t *testing.T, lease *Lease) ResultRequest {
	t.Helper()
	sc, err := engine.Parse(lease.Scenario)
	if err != nil {
		t.Fatal(err)
	}
	eng := engine.Engine{Parallelism: 2, Seed: lease.Seed}
	values := make([]float64, 0, lease.Count)
	completed := 0
	err = eng.RunReduceRangeCtx(context.Background(), sc, lease.Start, lease.Count, func(rep int, res *sim.Result) error {
		values = append(values, res.SpreadTime)
		if res.Completed {
			completed++
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	snapshot := service.NewSummaryStream()
	for _, v := range values {
		snapshot.Add(v)
	}
	blob, err := snapshot.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	return ResultRequest{LeaseID: lease.ID, Values: values, Completed: completed, Stream: blob}
}

// waitLease polls grantLease until the coordinator offers work.
func waitLease(t *testing.T, coord *Coordinator, workerID string) *Lease {
	t.Helper()
	for deadline := time.Now().Add(5 * time.Second); ; {
		lease, err := coord.grantLease(workerID)
		if err != nil {
			t.Fatal(err)
		}
		if lease != nil {
			return lease
		}
		if time.Now().After(deadline) {
			t.Fatal("run never offered a lease")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestCoordinatorCrashRecovery is the headline durability test: a coordinator
// settles two shards of a keyed run, dies (its run abandoned un-ended, the
// ledger's crash signature), and a fresh coordinator over the same state dir
// re-adopts the run on resubmission — replaying the journalled shards through
// the exact merger and re-leasing only the remainder — to produce a summary
// byte-identical to the single-node reference.
func TestCoordinatorCrashRecovery(t *testing.T) {
	stateDir := t.TempDir()
	run := testRun(t, 48, 60, 9)
	run.Key = testKey

	coord1 := newTestCoordinator(t, recoveryConfig(t, stateDir))
	pre := coord1.register(RegisterRequest{Name: "pre-crash", CPUs: 2})
	ctx, cancel := context.WithCancel(context.Background())
	runDone := make(chan error, 1)
	go func() {
		_, err := coord1.Run(ctx, run)
		runDone <- err
	}()

	// Settle the first two shards ([0,10) and [10,20) — leases are granted in
	// start order), then "crash": cancel the run (the service dying cancels
	// its backend contexts; no run-end record is journalled) and close.
	for i := 0; i < 2; i++ {
		lease := waitLease(t, coord1, pre.WorkerID)
		req := executeLease(t, lease)
		req.WorkerID = pre.WorkerID
		if resp, err := coord1.result(req); err != nil || resp.Stale {
			t.Fatalf("upload %d: resp %+v, err %v", i, resp, err)
		}
	}
	cancel()
	if err := <-runDone; err == nil {
		t.Fatal("abandoned run returned a nil error")
	}
	coord1.Close()

	// Restart over the same state dir. The service's ledger still owns the
	// key, so RetainRecovered keeps it, and the resubmitted run re-adopts the
	// journalled shards.
	coord2 := newTestCoordinator(t, recoveryConfig(t, stateDir))
	defer coord2.Close()
	coord2.RetainRecovered([]string{run.Key})

	mux := http.NewServeMux()
	coord2.Mount(mux)
	ts := httptest.NewServer(mux)
	defer ts.Close()
	stop := startWorkers(t, ts.URL, 2)
	defer stop()

	var observed atomic.Int64
	run.Observe = func(delta int64) { observed.Add(delta) }
	res, err := coord2.Run(context.Background(), run)
	if err != nil {
		t.Fatalf("recovered run: %v", err)
	}

	st := coord2.ClusterStats()
	if st.RunsReadopted != 1 {
		t.Errorf("runs_readopted = %d, want 1", st.RunsReadopted)
	}
	if st.ShardsReplayed != 2 {
		t.Errorf("shards_replayed = %d, want 2", st.ShardsReplayed)
	}
	if got := observed.Load(); got != 60 {
		t.Errorf("observed %d repetitions across replay and execution, want 60", got)
	}

	want := localResult(t, testRun(t, 48, 60, 9))
	if res.Completed != want.Completed {
		t.Errorf("completed = %d, want %d", res.Completed, want.Completed)
	}
	if !bytes.Equal(mustMarshal(t, res), mustMarshal(t, want)) {
		t.Error("recovered stream differs from the single-node stream")
	}
}

// TestCoordinatorRecoveryCompleteFromJournal: when every shard settled before
// the crash and only the run-end record was lost, the resubmitted run settles
// from the journal alone — no worker needed.
func TestCoordinatorRecoveryCompleteFromJournal(t *testing.T) {
	stateDir := t.TempDir()
	run := testRun(t, 48, 20, 3)
	run.Key = testKey

	coord1 := newTestCoordinator(t, recoveryConfig(t, stateDir))
	w := coord1.register(RegisterRequest{Name: "thorough", CPUs: 2})
	ctx, cancel := context.WithCancel(context.Background())
	runDone := make(chan error, 1)
	go func() {
		_, err := coord1.Run(ctx, run)
		runDone <- err
	}()
	// Settle the first shard, crash before the second completes the run: the
	// journal then holds runStart + one shard. To journal ALL shards yet keep
	// the run un-ended we would have to crash between the last shard's append
	// and its run-end append — instead settle all but verify the partial path
	// separately, and drive the complete-from-journal path by re-journalling
	// below.
	lease1 := waitLease(t, coord1, w.WorkerID)
	req1 := executeLease(t, lease1)
	req1.WorkerID = w.WorkerID
	if _, err := coord1.result(req1); err != nil {
		t.Fatal(err)
	}
	// Grab the second (final) lease and compute its upload, but "crash" before
	// delivering it; then append its shard record directly, simulating a crash
	// after the journal fsync but before the run settled.
	lease2 := waitLease(t, coord1, w.WorkerID)
	req2 := executeLease(t, lease2)
	coord1.mu.Lock()
	r := coord1.runs[lease2.Run]
	coord1.journalShardLocked(r, shard{start: lease2.Start, count: lease2.Count}, req2)
	coord1.mu.Unlock()
	cancel()
	<-runDone
	coord1.Close()

	coord2 := newTestCoordinator(t, recoveryConfig(t, stateDir))
	defer coord2.Close()
	coord2.RetainRecovered([]string{run.Key})

	// No workers are registered: completion must come from the journal alone.
	done := make(chan struct{})
	var res service.BackendResult
	var err error
	go func() {
		defer close(done)
		res, err = coord2.Run(context.Background(), run)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("journal-complete run did not settle without workers")
	}
	if err != nil {
		t.Fatalf("journal-complete run: %v", err)
	}
	want := localResult(t, testRun(t, 48, 20, 3))
	if res.Completed != want.Completed {
		t.Errorf("completed = %d, want %d", res.Completed, want.Completed)
	}
	if !bytes.Equal(mustMarshal(t, res), mustMarshal(t, want)) {
		t.Error("journal-complete stream differs from the single-node stream")
	}
}

// TestRetainRecoveredPrunes: recovered state whose key the service no longer
// owns is dropped at startup and the journal compacted, so abandoned runs do
// not leak across restarts.
func TestRetainRecoveredPrunes(t *testing.T) {
	stateDir := t.TempDir()
	run := testRun(t, 48, 20, 5)
	run.Key = testKey

	coord1 := newTestCoordinator(t, recoveryConfig(t, stateDir))
	ctx, cancel := context.WithCancel(context.Background())
	runDone := make(chan error, 1)
	go func() {
		_, err := coord1.Run(ctx, run)
		runDone <- err
	}()
	// Wait until the run is registered (its start record journalled), then die.
	for deadline := time.Now().Add(5 * time.Second); ; {
		coord1.mu.Lock()
		n := len(coord1.runOrder)
		coord1.mu.Unlock()
		if n > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("run never registered")
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	<-runDone
	coord1.Close()

	coord2 := newTestCoordinator(t, recoveryConfig(t, stateDir))
	coord2.mu.Lock()
	recoveredBefore := len(coord2.recovered)
	coord2.mu.Unlock()
	if recoveredBefore != 1 {
		t.Fatalf("recovered %d runs from the journal, want 1", recoveredBefore)
	}
	coord2.RetainRecovered(nil) // the service ledger owns nothing
	coord2.mu.Lock()
	recoveredAfter := len(coord2.recovered)
	journalSize := coord2.journal.Size()
	coord2.mu.Unlock()
	coord2.Close()
	if recoveredAfter != 0 {
		t.Errorf("recovered state not pruned: %d runs remain", recoveredAfter)
	}
	if journalSize != 0 {
		t.Errorf("journal not compacted after pruning: %d bytes", journalSize)
	}

	// A third process over the same dir starts with a clean slate.
	coord3 := newTestCoordinator(t, recoveryConfig(t, stateDir))
	defer coord3.Close()
	coord3.mu.Lock()
	defer coord3.mu.Unlock()
	if len(coord3.recovered) != 0 {
		t.Errorf("pruned run resurfaced after restart")
	}
}

// TestShardRecordRoundTrip pins the crShardDone codec: values survive as raw
// IEEE-754 bits and the snapshot integrity check rejects tampering.
func TestShardRecordRoundTrip(t *testing.T) {
	values := []float64{1.25, 3.5, 0.0078125, 42}
	snapshot := service.NewSummaryStream()
	for _, v := range values {
		snapshot.Add(v)
	}
	blob, err := snapshot.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	payload := encodeShardRecord(testKey, 30, 3, values, blob)

	key, sh, err := decodeShardRecord(payload)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if key != testKey || sh.start != 30 || sh.completed != 3 {
		t.Errorf("decoded key %q start %d completed %d", key, sh.start, sh.completed)
	}
	if len(sh.values) != len(values) {
		t.Fatalf("decoded %d values, want %d", len(sh.values), len(values))
	}
	for i, v := range values {
		if sh.values[i] != v {
			t.Errorf("value %d = %v, want %v", i, sh.values[i], v)
		}
	}

	// Tampered values must fail the snapshot cross-check.
	tampered := encodeShardRecord(testKey, 30, 3, []float64{1.25, 3.5, 0.0078125, 43}, blob)
	if _, _, err := decodeShardRecord(tampered); err == nil || !strings.Contains(err.Error(), "snapshot") {
		t.Errorf("tampered record decoded without a snapshot error: %v", err)
	}
	// Truncated payloads must error, not panic.
	for cut := 0; cut < len(payload); cut += 7 {
		if _, _, err := decodeShardRecord(payload[:cut]); err == nil {
			t.Errorf("truncated record of %d bytes decoded", cut)
		}
	}
}

// TestCoordinatorReady: the readiness probe fails with a retryable
// unavailability while no workers are registered and clears once one joins.
func TestCoordinatorReady(t *testing.T) {
	coord := newTestCoordinator(t, Config{LeaseTTL: time.Second})
	defer coord.Close()

	err := coord.Ready()
	var unavailable *service.UnavailableError
	if !errors.As(err, &unavailable) {
		t.Fatalf("Ready with no workers = %v, want *service.UnavailableError", err)
	}
	if unavailable.RetryAfter <= 0 {
		t.Errorf("RetryAfter = %v, want > 0", unavailable.RetryAfter)
	}

	coord.register(RegisterRequest{Name: "joined", CPUs: 1})
	if err := coord.Ready(); err != nil {
		t.Errorf("Ready with a live worker = %v, want nil", err)
	}
}

// TestClusterBodyTooLarge: an oversized protocol body is refused with 413
// before it can be buffered.
func TestClusterBodyTooLarge(t *testing.T) {
	coord := newTestCoordinator(t, Config{})
	defer coord.Close()
	mux := http.NewServeMux()
	coord.Mount(mux)
	ts := httptest.NewServer(mux)
	defer ts.Close()

	huge := strings.NewReader(`{"worker_id":"` + strings.Repeat("x", maxResultBytes+1024) + `"}`)
	resp, err := http.Post(ts.URL+"/v1/cluster/lease", "application/json", huge)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized body: status %d, want 413", resp.StatusCode)
	}
}
