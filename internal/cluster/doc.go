// Package cluster distributes rumord ensemble runs across worker processes
// while preserving the engine's determinism contract byte for byte.
//
// The split is coordinator/worker. The coordinator implements
// service.Backend: the rumord scheduler hands it whole runs, and it shards
// each run into contiguous repetition ranges, leases the ranges to registered
// workers, and folds the uploaded partial results back together. Workers are
// plain rumord processes started with -worker -join <coordinator>; each
// executes its leased range on the local batch engine via
// engine.RunReduceRangeCtx, which reproduces exactly the repetition streams a
// single-node run would have used for those indices.
//
// # Protocol
//
// Workers speak JSON over HTTP to four coordinator endpoints:
//
//	POST /v1/cluster/register   announce capabilities, obtain a worker ID
//	POST /v1/cluster/lease      request a repetition-range lease
//	POST /v1/cluster/heartbeat  renew liveness and held leases
//	POST /v1/cluster/result     upload a completed range
//
// Leases carry the run's canonical scenario document, its seed, and a
// [start, start+count) repetition range. A lease is valid for the
// coordinator's TTL and is renewed by heartbeats that name it; a lease whose
// worker goes silent past the TTL is reclaimed — returned to the pending pool
// and granted to the next worker that asks. Reclaimed leases make uploads
// from the original worker stale: the coordinator acknowledges and discards
// them, so a network partition or slow worker can cause duplicate execution
// but never duplicate merging.
//
// # Exact merge
//
// Welford and P² accumulator states cannot be merged exactly from summaries,
// so workers ship the raw per-repetition observations of their range and the
// coordinator replays them through stats.Merger in repetition-index order.
// The merged stream is therefore bit-identical to a serial loop over the full
// ensemble — the same spread-time summary, to the last bit, regardless of how
// many workers participated, how ranges were assigned, or how many leases
// died and were re-executed along the way. Each upload also carries the
// serialized stats.Stream snapshot of its own range; the coordinator replays
// the raw values and byte-compares against the snapshot, rejecting any upload
// whose observations were corrupted in flight.
package cluster
