package graph

import "testing"

// TestStarIntoMatchesBuilder pins StarInto to the builder path: identical
// edge lists, adjacency, degrees and volume for every center.
func TestStarIntoMatchesBuilder(t *testing.T) {
	for _, n := range []int{1, 2, 3, 7, 64} {
		for center := 0; center < n; center++ {
			want := func() *Graph {
				b := NewBuilder(n)
				for v := 0; v < n; v++ {
					if v != center {
						b.AddEdge(center, v)
					}
				}
				return b.Build()
			}()
			got := StarInto(nil, n, center)
			if err := got.Validate(); err != nil {
				t.Fatalf("n=%d center=%d: %v", n, center, err)
			}
			if got.N() != want.N() || got.M() != want.M() || got.Volume() != want.Volume() {
				t.Fatalf("n=%d center=%d: size mismatch", n, center)
			}
			we, ge := want.Edges(), got.Edges()
			for i := range we {
				if we[i] != ge[i] {
					t.Fatalf("n=%d center=%d: edge %d: got %v, want %v", n, center, i, ge[i], we[i])
				}
			}
			for v := 0; v < n; v++ {
				if got.Degree(v) != want.Degree(v) {
					t.Fatalf("n=%d center=%d: degree of %d differs", n, center, v)
				}
				wn, gn := want.Neighbors(v), got.Neighbors(v)
				for i := range wn {
					if wn[i] != gn[i] {
						t.Fatalf("n=%d center=%d: neighbors of %d differ", n, center, v)
					}
				}
			}
		}
	}
}

// TestStarIntoRecyclesBuffers checks the double-buffer contract of the
// dynamic-star adversary: rebuilding into a retired graph reuses its arrays
// and allocates nothing once warm.
func TestStarIntoRecyclesBuffers(t *testing.T) {
	g := StarInto(nil, 300, 0)
	center := 0
	allocs := testing.AllocsPerRun(50, func() {
		center = (center + 7) % 300
		if got := StarInto(g, 300, center); got != g {
			t.Fatal("StarInto moved the graph")
		}
	})
	if allocs != 0 {
		t.Fatalf("warm star rebuild allocates %.1f times, want 0", allocs)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestStarIntoPanicsOutOfRange mirrors the builder's range checking.
func TestStarIntoPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range center")
		}
	}()
	StarInto(nil, 5, 5)
}
