package graph

import (
	"sort"
	"testing"

	"dynamicrumor/internal/xrand"
)

// mapReferenceGraph is the historical map-dedup + comparison-sort
// construction the counting-sort builder replaced; the property tests below
// pin the new path to it bit for bit.
func mapReferenceGraph(n int, edges []Edge) *Graph {
	seen := make(map[Edge]struct{}, len(edges))
	var clean []Edge
	for _, e := range edges {
		if e.U == e.V {
			continue
		}
		c := e.Canonical()
		if _, dup := seen[c]; dup {
			continue
		}
		seen[c] = struct{}{}
		clean = append(clean, c)
	}
	sort.Slice(clean, func(i, j int) bool {
		if clean[i].U != clean[j].U {
			return clean[i].U < clean[j].U
		}
		return clean[i].V < clean[j].V
	})
	g := &Graph{n: n, edges: clean}
	g.degree = make([]int, n)
	for _, e := range clean {
		g.degree[e.U]++
		g.degree[e.V]++
	}
	g.adjOff = make([]int, n+1)
	for v := 0; v < n; v++ {
		g.adjOff[v+1] = g.adjOff[v] + g.degree[v]
	}
	g.adj = make([]int, 2*len(clean))
	fill := make([]int, n)
	copy(fill, g.adjOff[:n])
	for _, e := range clean {
		g.adj[fill[e.U]] = e.V
		fill[e.U]++
		g.adj[fill[e.V]] = e.U
		fill[e.V]++
	}
	for v := 0; v < n; v++ {
		nb := g.adj[g.adjOff[v]:g.adjOff[v+1]]
		sort.Ints(nb)
		g.volume += g.degree[v]
	}
	return g
}

// requireSameGraph asserts that got and want agree on every observable:
// edge list, degrees, adjacency (content and order) and validity.
func requireSameGraph(t *testing.T, got, want *Graph) {
	t.Helper()
	if got.N() != want.N() || got.M() != want.M() || got.Volume() != want.Volume() {
		t.Fatalf("shape mismatch: got n=%d m=%d vol=%d, want n=%d m=%d vol=%d",
			got.N(), got.M(), got.Volume(), want.N(), want.M(), want.Volume())
	}
	if len(got.Edges()) != len(want.Edges()) {
		t.Fatalf("edge count mismatch: %d vs %d", len(got.Edges()), len(want.Edges()))
	}
	for i, e := range want.Edges() {
		if got.Edges()[i] != e {
			t.Fatalf("edge %d mismatch: got %v, want %v", i, got.Edges()[i], e)
		}
	}
	for v := 0; v < want.N(); v++ {
		if got.Degree(v) != want.Degree(v) {
			t.Fatalf("degree of %d: got %d, want %d", v, got.Degree(v), want.Degree(v))
		}
		gn, wn := got.Neighbors(v), want.Neighbors(v)
		if len(gn) != len(wn) {
			t.Fatalf("neighbor list length of %d: got %d, want %d", v, len(gn), len(wn))
		}
		for i := range wn {
			if gn[i] != wn[i] {
				t.Fatalf("neighbor order of %d differs at %d: got %v, want %v", v, i, gn, wn)
			}
		}
	}
	if err := got.Validate(); err != nil {
		t.Fatalf("built graph invalid: %v", err)
	}
}

// TestBuilderMatchesMapReference is the property test of the CSR-direct
// builder: for random edge multisets with duplicates and self-loops the
// counting-sort construction must produce a graph identical to the
// historical map-based path in every observable.
func TestBuilderMatchesMapReference(t *testing.T) {
	rng := xrand.New(20200424)
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(40)
		m := rng.Intn(4 * n)
		edges := make([]Edge, 0, m+m/3)
		for i := 0; i < m; i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			edges = append(edges, Edge{U: u, V: v}) // may be a self-loop
			if i%3 == 0 {
				edges = append(edges, Edge{U: v, V: u}) // reversed duplicate
			}
		}
		got := FromEdges(n, edges)
		want := mapReferenceGraph(n, edges)
		requireSameGraph(t, got, want)

		// The same multiset through the incremental builder.
		b := NewBuilder(n)
		for _, e := range edges {
			b.AddEdge(e.U, e.V)
		}
		if b.NumEdges() != want.M() {
			t.Fatalf("NumEdges = %d, want %d", b.NumEdges(), want.M())
		}
		requireSameGraph(t, b.Build(), want)
	}
}

// TestBuilderResetRecycles checks that Reset drops pending edges, re-targets
// the vertex count, and that repeated Reset/Build cycles on one builder keep
// producing correct graphs.
func TestBuilderResetRecycles(t *testing.T) {
	b := NewBuilder(3)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	g1 := b.Build()
	if g1.M() != 2 {
		t.Fatalf("first build m=%d, want 2", g1.M())
	}
	b.Reset(5)
	if b.NumEdges() != 0 {
		t.Fatal("Reset did not drop pending edges")
	}
	b.AddEdge(3, 4)
	g2 := b.Build()
	if g2.N() != 5 || g2.M() != 1 || !g2.HasEdge(3, 4) {
		t.Fatalf("post-Reset build wrong: n=%d m=%d", g2.N(), g2.M())
	}
	// The first graph must be untouched by the recycled builder.
	if g1.N() != 3 || g1.M() != 2 || !g1.HasEdge(0, 1) || !g1.HasEdge(1, 2) {
		t.Fatal("Build result mutated by a later Reset/Build cycle")
	}
}

// TestBuildIntoReusesBuffers checks BuildInto's recycling contract: the
// rebuilt graph is correct, and with stable sizes the second rebuild into a
// retired buffer performs zero allocations.
func TestBuildIntoReusesBuffers(t *testing.T) {
	rng := xrand.New(7)
	b := NewBuilder(64)
	star := func(center int) {
		b.Reset(64)
		for v := 0; v < 64; v++ {
			if v != center {
				b.AddEdge(center, v)
			}
		}
	}
	var bufs [2]*Graph
	cur := 0
	star(0)
	bufs[0] = b.BuildInto(nil)
	star(1)
	bufs[1] = b.BuildInto(nil)
	// Warmed up: alternating rebuilds must not allocate.
	allocs := testing.AllocsPerRun(100, func() {
		center := rng.Intn(64)
		star(center)
		cur ^= 1
		bufs[cur] = b.BuildInto(bufs[cur])
		if bufs[cur].Degree(center) != 63 {
			t.Fatal("rebuilt star wrong")
		}
	})
	if allocs != 0 {
		t.Fatalf("BuildInto steady state allocates %.1f times per rebuild, want 0", allocs)
	}
	if err := bufs[cur].Validate(); err != nil {
		t.Fatal(err)
	}
	// BuildInto(dst) must return dst itself so callers can double-buffer.
	star(2)
	if got := b.BuildInto(bufs[0]); got != bufs[0] {
		t.Fatal("BuildInto did not return dst")
	}
}
