package graph

// BFS runs a breadth-first search from source and returns the distance (in
// hops) to every vertex, with -1 for unreachable vertices.
func (g *Graph) BFS(source int) []int {
	dist := make([]int, g.n)
	for i := range dist {
		dist[i] = -1
	}
	if source < 0 || source >= g.n {
		return dist
	}
	dist[source] = 0
	queue := make([]int, 0, g.n)
	queue = append(queue, source)
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, u := range g.Neighbors(v) {
			if dist[u] == -1 {
				dist[u] = dist[v] + 1
				queue = append(queue, u)
			}
		}
	}
	return dist
}

// IsConnected reports whether the graph is connected. Graphs with zero or one
// vertex are connected; a graph with isolated vertices is not.
func (g *Graph) IsConnected() bool {
	if g.n <= 1 {
		return true
	}
	dist := g.BFS(0)
	for _, d := range dist {
		if d == -1 {
			return false
		}
	}
	return true
}

// Components returns the connected components as a vertex labelling
// (component id per vertex, ids are 0..k-1 in order of discovery) and the
// number of components.
func (g *Graph) Components() ([]int, int) {
	comp := make([]int, g.n)
	for i := range comp {
		comp[i] = -1
	}
	next := 0
	for s := 0; s < g.n; s++ {
		if comp[s] != -1 {
			continue
		}
		comp[s] = next
		stack := []int{s}
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, u := range g.Neighbors(v) {
				if comp[u] == -1 {
					comp[u] = next
					stack = append(stack, u)
				}
			}
		}
		next++
	}
	return comp, next
}

// Diameter returns the largest shortest-path distance between any two
// vertices. It returns -1 if the graph is disconnected or has no vertices.
// This is an O(n·m) computation intended for tests and small graphs.
func (g *Graph) Diameter() int {
	if g.n == 0 {
		return -1
	}
	diam := 0
	for s := 0; s < g.n; s++ {
		dist := g.BFS(s)
		for _, d := range dist {
			if d == -1 {
				return -1
			}
			if d > diam {
				diam = d
			}
		}
	}
	return diam
}
