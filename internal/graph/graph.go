// Package graph implements the static undirected simple graphs on which the
// rumor-spreading processes run: adjacency structure, degrees, volumes, cut
// sets and basic traversals.
//
// Vertices are the integers 0..n-1. Graphs are immutable after Build; the
// dynamic-network packages expose a fresh *Graph per time step (possibly
// recycling the backing arrays of a retired step via Builder.BuildInto).
package graph

import (
	"fmt"
	"sort"
)

// Edge is an undirected edge {U, V} with U < V in canonical form.
type Edge struct {
	U, V int
}

// Canonical returns the edge with endpoints ordered U <= V.
func (e Edge) Canonical() Edge {
	if e.U > e.V {
		return Edge{U: e.V, V: e.U}
	}
	return e
}

// Builder accumulates edges and produces an immutable Graph.
//
// The builder is allocation-free in steady state: AddEdge appends to a
// reusable edge buffer (duplicates and all), and Build deduplicates with two
// stable counting-sort passes over vertex ids — no hash map, no
// comparison sort. Reset recycles the builder (and its internal scratch) for
// the next graph, which is what the dynamic networks do every time step.
type Builder struct {
	n  int
	eu []int // canonical endpoints (eu[i] < ev[i]) of every added edge,
	ev []int // duplicates allowed; deduplicated at Build time

	// Build scratch, reused across builds.
	count []int // counting-sort histogram, length n+1
	su    []int // radix pass 1 output (sorted by V)
	sv    []int
	tu    []int // radix pass 2 output (sorted by U, then V)
	tv    []int
}

// NewBuilder returns a builder for a graph on n vertices.
// It panics if n < 0.
func NewBuilder(n int) *Builder {
	if n < 0 {
		panic("graph: negative vertex count")
	}
	return &Builder{n: n}
}

// Reset re-targets the builder to a graph on n vertices, dropping all pending
// edges while keeping the internal buffers for reuse. It panics if n < 0.
func (b *Builder) Reset(n int) {
	if n < 0 {
		panic("graph: negative vertex count")
	}
	b.n = n
	b.eu = b.eu[:0]
	b.ev = b.ev[:0]
}

// Grow reserves room for at least edges additional AddEdge calls, so a
// caller that knows the emission volume up front (the paper constructions
// do) skips the append doubling series on a cold builder.
func (b *Builder) Grow(edges int) {
	if need := len(b.eu) + edges; cap(b.eu) < need {
		eu := make([]int, len(b.eu), need)
		copy(eu, b.eu)
		b.eu = eu
		ev := make([]int, len(b.ev), need)
		copy(ev, b.ev)
		b.ev = ev
	}
}

// AddEdge records the undirected edge {u, v}. Self-loops and duplicate edges
// are ignored (the graph is simple). It panics if either endpoint is out of
// range.
func (b *Builder) AddEdge(u, v int) {
	if u < 0 || u >= b.n || v < 0 || v >= b.n {
		panic(fmt.Sprintf("graph: edge (%d,%d) out of range for n=%d", u, v, b.n))
	}
	if u == v {
		return
	}
	if u > v {
		u, v = v, u
	}
	b.eu = append(b.eu, u)
	b.ev = append(b.ev, v)
}

// HasEdge reports whether {u,v} has been added. It scans the pending edge
// buffer in O(edges added); callers that need many membership queries during
// construction should keep their own bitmap.
func (b *Builder) HasEdge(u, v int) bool {
	if u > v {
		u, v = v, u
	}
	for i, eu := range b.eu {
		if eu == u && b.ev[i] == v {
			return true
		}
	}
	return false
}

// NumEdges returns the number of distinct edges added so far. Like Build it
// runs the counting-sort dedup pass, so it is O(n + edges added).
func (b *Builder) NumEdges() int { return b.sortUnique() }

// Build produces the immutable graph. The builder remains usable and keeps
// its accumulated edges.
func (b *Builder) Build() *Graph { return b.BuildInto(nil) }

// BuildInto is Build recycling the backing arrays of dst (which must no
// longer be in use) instead of allocating fresh ones when their capacity
// suffices. A nil dst behaves like Build. It returns the built graph (dst
// itself when dst is non-nil).
//
// Dynamic networks use this with two alternating buffers so that a steady
// stream of rebuilt graphs allocates nothing, while the graph returned for
// step t stays valid until the rebuild for step t+2.
func (b *Builder) BuildInto(dst *Graph) *Graph {
	m := b.sortUnique()
	if dst == nil {
		dst = &Graph{}
	}
	dst.n = b.n
	if cap(dst.edges) >= m {
		dst.edges = dst.edges[:m]
	} else {
		dst.edges = make([]Edge, m)
	}
	for i := 0; i < m; i++ {
		dst.edges[i] = Edge{U: b.tu[i], V: b.tv[i]}
	}
	dst.rebuildCSR()
	return dst
}

// sortUnique sorts the pending edge buffer into (tu, tv) by (U, V) with two
// stable counting-sort passes and returns the number of distinct edges, which
// occupy tu[:m], tv[:m] afterwards.
func (b *Builder) sortUnique() int {
	n, m := b.n, len(b.eu)
	b.count = growInts(b.count, n+1)
	b.su = growInts(b.su, m)
	b.sv = growInts(b.sv, m)
	b.tu = growInts(b.tu, m)
	b.tv = growInts(b.tv, m)
	count := b.count
	// Pass 1: stable counting sort by V into (su, sv).
	for i := range count {
		count[i] = 0
	}
	for _, v := range b.ev {
		count[v]++
	}
	sum := 0
	for v := 0; v <= n; v++ {
		c := count[v]
		count[v] = sum
		sum += c
	}
	for i := 0; i < m; i++ {
		v := b.ev[i]
		j := count[v]
		count[v]++
		b.su[j] = b.eu[i]
		b.sv[j] = v
	}
	// Pass 2: stable counting sort by U into (tu, tv); the result is sorted
	// by (U, V) because pass 1 was stable.
	for i := range count {
		count[i] = 0
	}
	for _, u := range b.su[:m] {
		count[u]++
	}
	sum = 0
	for u := 0; u <= n; u++ {
		c := count[u]
		count[u] = sum
		sum += c
	}
	for i := 0; i < m; i++ {
		u := b.su[i]
		j := count[u]
		count[u]++
		b.tu[j] = u
		b.tv[j] = b.sv[i]
	}
	// Drop adjacent duplicates.
	uniq := 0
	for i := 0; i < m; i++ {
		if i > 0 && b.tu[i] == b.tu[i-1] && b.tv[i] == b.tv[i-1] {
			continue
		}
		b.tu[uniq] = b.tu[i]
		b.tv[uniq] = b.tv[i]
		uniq++
	}
	return uniq
}

// growInts returns s resized to length n, reusing its capacity when possible
// and growing amortized (append-style) otherwise. Contents are unspecified.
func growInts(s []int, n int) []int {
	if cap(s) >= n {
		return s[:n]
	}
	return append(s[:cap(s)], make([]int, n-cap(s))...)
}

// Graph is an immutable undirected simple graph in compressed adjacency form.
type Graph struct {
	n      int
	edges  []Edge
	adjOff []int // adjacency offsets, length n+1
	adj    []int // concatenated sorted neighbor lists, length 2m
	degree []int
	volume int // sum of degrees = 2m
}

// FromEdges builds a graph on n vertices from a list of edges. Duplicate
// edges and self-loops are removed. It panics if any endpoint is out of range.
func FromEdges(n int, edges []Edge) *Graph {
	b := NewBuilder(n)
	for _, e := range edges {
		b.AddEdge(e.U, e.V)
	}
	return b.Build()
}

// fromSortedUniqueEdges builds a graph taking ownership of edges, which must
// already be canonical (U < V), strictly sorted by (U, V), distinct and in
// range — the invariants Graph.Edges() guarantees, so slices derived from an
// existing graph (e.g. by InducedSubgraph's monotone renumbering) qualify
// without a dedup pass.
func fromSortedUniqueEdges(n int, edges []Edge) *Graph {
	g := &Graph{n: n, edges: edges}
	g.rebuildCSR()
	return g
}

// rebuildCSR recomputes degree, adjOff, adj and volume from g.edges, which
// must be canonical, sorted and distinct. Backing arrays are reused when
// their capacity suffices. Neighbor lists come out sorted without an explicit
// sort: scanning edges in (U,V) order appends the below-v neighbors of every
// vertex v in increasing U order first and the above-v neighbors in
// increasing V order after them.
func (g *Graph) rebuildCSR() {
	n, m := g.n, len(g.edges)
	g.degree = growInts(g.degree, n)
	for v := range g.degree {
		g.degree[v] = 0
	}
	for _, e := range g.edges {
		g.degree[e.U]++
		g.degree[e.V]++
	}
	g.adjOff = growInts(g.adjOff, n+1)
	g.adjOff[0] = 0
	for v := 0; v < n; v++ {
		g.adjOff[v+1] = g.adjOff[v] + g.degree[v]
	}
	g.adj = growInts(g.adj, 2*m)
	// Reuse degree as the fill cursor and restore it afterwards from adjOff.
	copy(g.degree, g.adjOff[:n])
	for _, e := range g.edges {
		g.adj[g.degree[e.U]] = e.V
		g.degree[e.U]++
		g.adj[g.degree[e.V]] = e.U
		g.degree[e.V]++
	}
	for v := 0; v < n; v++ {
		g.degree[v] = g.adjOff[v+1] - g.adjOff[v]
	}
	g.volume = 2 * m
}

// StarInto builds the star K_{1,n-1} with the given center directly in
// compressed form, recycling dst's backing arrays (nil dst allocates a fresh
// graph). It produces exactly the graph the builder would for the same edge
// set — canonical sorted edges, sorted neighbor lists — but in one O(n) fill
// with no counting-sort passes, which makes it the rebuild primitive of the
// dynamic-star adversary where the star is re-emitted every time step.
// It panics if center is out of range.
func StarInto(dst *Graph, n, center int) *Graph {
	if center < 0 || center >= n {
		panic(fmt.Sprintf("graph: star center %d out of range for n=%d", center, n))
	}
	if dst == nil {
		dst = &Graph{}
	}
	m := n - 1
	dst.n = n
	if cap(dst.edges) >= m {
		dst.edges = dst.edges[:m]
	} else {
		dst.edges = make([]Edge, m)
	}
	dst.degree = growInts(dst.degree, n)
	dst.adjOff = growInts(dst.adjOff, n+1)
	dst.adj = growInts(dst.adj, 2*m)
	// Canonical sorted edge list: {v, center} for v < center, then {center, v}
	// for v > center.
	for v := 0; v < center; v++ {
		dst.edges[v] = Edge{U: v, V: center}
	}
	for v := center + 1; v < n; v++ {
		dst.edges[v-1] = Edge{U: center, V: v}
	}
	// CSR: every leaf's neighbor list is [center]; the center's list is every
	// other vertex in increasing order.
	off := 0
	for v := 0; v < n; v++ {
		dst.adjOff[v] = off
		if v == center {
			dst.degree[v] = m
			for u := 0; u < n; u++ {
				if u != center {
					dst.adj[off] = u
					off++
				}
			}
		} else {
			dst.degree[v] = 1
			dst.adj[off] = center
			off++
		}
	}
	dst.adjOff[n] = off
	dst.volume = 2 * m
	return dst
}

// N returns the number of vertices.
func (g *Graph) N() int { return g.n }

// M returns the number of edges.
func (g *Graph) M() int { return len(g.edges) }

// Degree returns the degree of vertex v.
func (g *Graph) Degree(v int) int { return g.degree[v] }

// Volume returns the sum of all degrees, i.e. 2*M().
func (g *Graph) Volume() int { return g.volume }

// Neighbors returns the sorted neighbor list of v. The returned slice aliases
// internal storage and must not be modified.
func (g *Graph) Neighbors(v int) []int {
	return g.adj[g.adjOff[v]:g.adjOff[v+1]]
}

// ForEachNeighbor calls fn for every neighbor of v in sorted order. It is the
// allocation-free traversal the hot loops use: the compiler keeps the single
// bounds-checked reslice outside the loop, and no neighbor slice header
// escapes.
func (g *Graph) ForEachNeighbor(v int, fn func(u int)) {
	for _, u := range g.adj[g.adjOff[v]:g.adjOff[v+1]] {
		fn(u)
	}
}

// Neighbor returns the i-th neighbor of v (0-based, in sorted order).
func (g *Graph) Neighbor(v, i int) int {
	return g.adj[g.adjOff[v]+i]
}

// Edges returns all edges in canonical sorted order. The returned slice
// aliases internal storage and must not be modified.
func (g *Graph) Edges() []Edge { return g.edges }

// HasEdge reports whether {u,v} is an edge (binary search over the sorted
// neighbor list of the lower-degree endpoint).
func (g *Graph) HasEdge(u, v int) bool {
	if u < 0 || u >= g.n || v < 0 || v >= g.n || u == v {
		return false
	}
	if g.degree[u] > g.degree[v] {
		u, v = v, u
	}
	nb := g.Neighbors(u)
	i := sort.SearchInts(nb, v)
	return i < len(nb) && nb[i] == v
}

// MaxDegree returns the maximum vertex degree (0 for an empty graph).
func (g *Graph) MaxDegree() int {
	max := 0
	for _, d := range g.degree {
		if d > max {
			max = d
		}
	}
	return max
}

// MinDegree returns the minimum vertex degree (0 for a graph with no
// vertices).
func (g *Graph) MinDegree() int {
	if g.n == 0 {
		return 0
	}
	min := g.degree[0]
	for _, d := range g.degree[1:] {
		if d < min {
			min = d
		}
	}
	return min
}

// AverageDegree returns Volume()/N() (0 for an empty graph).
func (g *Graph) AverageDegree() float64 {
	if g.n == 0 {
		return 0
	}
	return float64(g.volume) / float64(g.n)
}

// IsRegular reports whether every vertex has the same degree, and that degree.
func (g *Graph) IsRegular() (bool, int) {
	if g.n == 0 {
		return true, 0
	}
	d := g.degree[0]
	for _, dd := range g.degree[1:] {
		if dd != d {
			return false, 0
		}
	}
	return true, d
}

// VolumeOf returns the sum of degrees over the vertices marked true in member.
// member must have length N().
func (g *Graph) VolumeOf(member []bool) int {
	vol := 0
	for v, in := range member {
		if in {
			vol += g.degree[v]
		}
	}
	return vol
}

// AppendCutEdges appends the edges with exactly one endpoint in the set
// marked true in member to dst and returns the extended slice. member must
// have length N(). Callers that re-derive cuts per step pass a recycled dst
// to keep the scan allocation-free.
func (g *Graph) AppendCutEdges(dst []Edge, member []bool) []Edge {
	for _, e := range g.edges {
		if member[e.U] != member[e.V] {
			dst = append(dst, e)
		}
	}
	return dst
}

// CutEdges returns the edges with exactly one endpoint in the set marked true
// in member. member must have length N().
func (g *Graph) CutEdges(member []bool) []Edge {
	return g.AppendCutEdges(nil, member)
}

// CutSize returns the number of edges crossing the set marked true in member.
func (g *Graph) CutSize(member []bool) int {
	count := 0
	for _, e := range g.edges {
		if member[e.U] != member[e.V] {
			count++
		}
	}
	return count
}

// InducedSubgraph returns the subgraph induced by the vertices marked true in
// member, together with the mapping from new vertex ids to original ids.
//
// Because g.edges is sorted and the renumbering is monotone, the surviving
// edges are already sorted and distinct, so the subgraph is assembled
// directly in compressed form without the dedup pass.
func (g *Graph) InducedSubgraph(member []bool) (*Graph, []int) {
	oldToNew := make([]int, g.n)
	var newToOld []int
	for v := 0; v < g.n; v++ {
		if member[v] {
			oldToNew[v] = len(newToOld)
			newToOld = append(newToOld, v)
		} else {
			oldToNew[v] = -1
		}
	}
	var edges []Edge
	for _, e := range g.edges {
		if member[e.U] && member[e.V] {
			edges = append(edges, Edge{U: oldToNew[e.U], V: oldToNew[e.V]})
		}
	}
	return fromSortedUniqueEdges(len(newToOld), edges), newToOld
}

// Validate checks internal invariants; it returns a descriptive error if any
// is violated. A nil error means the structure is consistent.
func (g *Graph) Validate() error {
	if len(g.degree) != g.n || len(g.adjOff) != g.n+1 {
		return fmt.Errorf("graph: inconsistent slice lengths")
	}
	sumDeg := 0
	for v := 0; v < g.n; v++ {
		sumDeg += g.degree[v]
		if g.adjOff[v+1]-g.adjOff[v] != g.degree[v] {
			return fmt.Errorf("graph: adjacency offsets disagree with degree at %d", v)
		}
	}
	if sumDeg != 2*len(g.edges) {
		return fmt.Errorf("graph: degree sum %d != 2m %d", sumDeg, 2*len(g.edges))
	}
	if g.volume != sumDeg {
		return fmt.Errorf("graph: cached volume %d != degree sum %d", g.volume, sumDeg)
	}
	for v := 0; v < g.n; v++ {
		nb := g.Neighbors(v)
		for i, u := range nb {
			if u == v {
				return fmt.Errorf("graph: self-loop at %d", v)
			}
			if i > 0 && nb[i-1] >= u {
				return fmt.Errorf("graph: neighbor list of %d not strictly sorted", v)
			}
			if !g.HasEdge(u, v) {
				return fmt.Errorf("graph: asymmetric adjacency %d-%d", v, u)
			}
		}
	}
	return nil
}
