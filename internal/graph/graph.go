// Package graph implements the static undirected simple graphs on which the
// rumor-spreading processes run: adjacency structure, degrees, volumes, cut
// sets and basic traversals.
//
// Vertices are the integers 0..n-1. Graphs are immutable after Build; the
// dynamic-network packages expose a fresh *Graph per time step.
package graph

import (
	"fmt"
	"sort"
)

// Edge is an undirected edge {U, V} with U < V in canonical form.
type Edge struct {
	U, V int
}

// Canonical returns the edge with endpoints ordered U <= V.
func (e Edge) Canonical() Edge {
	if e.U > e.V {
		return Edge{U: e.V, V: e.U}
	}
	return e
}

// Builder accumulates edges and produces an immutable Graph.
type Builder struct {
	n     int
	edges map[Edge]struct{}
}

// NewBuilder returns a builder for a graph on n vertices.
// It panics if n < 0.
func NewBuilder(n int) *Builder {
	if n < 0 {
		panic("graph: negative vertex count")
	}
	return &Builder{n: n, edges: make(map[Edge]struct{})}
}

// AddEdge records the undirected edge {u, v}. Self-loops and duplicate edges
// are ignored (the graph is simple). It panics if either endpoint is out of
// range.
func (b *Builder) AddEdge(u, v int) {
	if u < 0 || u >= b.n || v < 0 || v >= b.n {
		panic(fmt.Sprintf("graph: edge (%d,%d) out of range for n=%d", u, v, b.n))
	}
	if u == v {
		return
	}
	b.edges[Edge{U: u, V: v}.Canonical()] = struct{}{}
}

// HasEdge reports whether {u,v} has been added.
func (b *Builder) HasEdge(u, v int) bool {
	_, ok := b.edges[Edge{U: u, V: v}.Canonical()]
	return ok
}

// NumEdges returns the number of distinct edges added so far.
func (b *Builder) NumEdges() int { return len(b.edges) }

// Build produces the immutable graph. The builder remains usable.
func (b *Builder) Build() *Graph {
	edges := make([]Edge, 0, len(b.edges))
	for e := range b.edges {
		edges = append(edges, e)
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].U != edges[j].U {
			return edges[i].U < edges[j].U
		}
		return edges[i].V < edges[j].V
	})
	return FromEdges(b.n, edges)
}

// Graph is an immutable undirected simple graph in compressed adjacency form.
type Graph struct {
	n      int
	edges  []Edge
	adjOff []int // adjacency offsets, length n+1
	adj    []int // concatenated sorted neighbor lists, length 2m
	degree []int
	volume int // sum of degrees = 2m
}

// FromEdges builds a graph on n vertices from a list of edges. Duplicate
// edges and self-loops are removed. It panics if any endpoint is out of range.
func FromEdges(n int, edges []Edge) *Graph {
	seen := make(map[Edge]struct{}, len(edges))
	clean := make([]Edge, 0, len(edges))
	for _, e := range edges {
		if e.U < 0 || e.U >= n || e.V < 0 || e.V >= n {
			panic(fmt.Sprintf("graph: edge (%d,%d) out of range for n=%d", e.U, e.V, n))
		}
		if e.U == e.V {
			continue
		}
		c := e.Canonical()
		if _, dup := seen[c]; dup {
			continue
		}
		seen[c] = struct{}{}
		clean = append(clean, c)
	}
	sort.Slice(clean, func(i, j int) bool {
		if clean[i].U != clean[j].U {
			return clean[i].U < clean[j].U
		}
		return clean[i].V < clean[j].V
	})

	g := &Graph{n: n, edges: clean}
	g.degree = make([]int, n)
	for _, e := range clean {
		g.degree[e.U]++
		g.degree[e.V]++
	}
	g.adjOff = make([]int, n+1)
	for v := 0; v < n; v++ {
		g.adjOff[v+1] = g.adjOff[v] + g.degree[v]
	}
	g.adj = make([]int, 2*len(clean))
	fill := make([]int, n)
	copy(fill, g.adjOff[:n])
	for _, e := range clean {
		g.adj[fill[e.U]] = e.V
		fill[e.U]++
		g.adj[fill[e.V]] = e.U
		fill[e.V]++
	}
	for v := 0; v < n; v++ {
		nb := g.adj[g.adjOff[v]:g.adjOff[v+1]]
		sort.Ints(nb)
		g.volume += g.degree[v]
	}
	return g
}

// N returns the number of vertices.
func (g *Graph) N() int { return g.n }

// M returns the number of edges.
func (g *Graph) M() int { return len(g.edges) }

// Degree returns the degree of vertex v.
func (g *Graph) Degree(v int) int { return g.degree[v] }

// Volume returns the sum of all degrees, i.e. 2*M().
func (g *Graph) Volume() int { return g.volume }

// Neighbors returns the sorted neighbor list of v. The returned slice aliases
// internal storage and must not be modified.
func (g *Graph) Neighbors(v int) []int {
	return g.adj[g.adjOff[v]:g.adjOff[v+1]]
}

// Neighbor returns the i-th neighbor of v (0-based, in sorted order).
func (g *Graph) Neighbor(v, i int) int {
	return g.adj[g.adjOff[v]+i]
}

// Edges returns all edges in canonical sorted order. The returned slice
// aliases internal storage and must not be modified.
func (g *Graph) Edges() []Edge { return g.edges }

// HasEdge reports whether {u,v} is an edge (binary search over the sorted
// neighbor list of the lower-degree endpoint).
func (g *Graph) HasEdge(u, v int) bool {
	if u < 0 || u >= g.n || v < 0 || v >= g.n || u == v {
		return false
	}
	if g.degree[u] > g.degree[v] {
		u, v = v, u
	}
	nb := g.Neighbors(u)
	i := sort.SearchInts(nb, v)
	return i < len(nb) && nb[i] == v
}

// MaxDegree returns the maximum vertex degree (0 for an empty graph).
func (g *Graph) MaxDegree() int {
	max := 0
	for _, d := range g.degree {
		if d > max {
			max = d
		}
	}
	return max
}

// MinDegree returns the minimum vertex degree (0 for a graph with no
// vertices).
func (g *Graph) MinDegree() int {
	if g.n == 0 {
		return 0
	}
	min := g.degree[0]
	for _, d := range g.degree[1:] {
		if d < min {
			min = d
		}
	}
	return min
}

// AverageDegree returns Volume()/N() (0 for an empty graph).
func (g *Graph) AverageDegree() float64 {
	if g.n == 0 {
		return 0
	}
	return float64(g.volume) / float64(g.n)
}

// IsRegular reports whether every vertex has the same degree, and that degree.
func (g *Graph) IsRegular() (bool, int) {
	if g.n == 0 {
		return true, 0
	}
	d := g.degree[0]
	for _, dd := range g.degree[1:] {
		if dd != d {
			return false, 0
		}
	}
	return true, d
}

// VolumeOf returns the sum of degrees over the vertices marked true in member.
// member must have length N().
func (g *Graph) VolumeOf(member []bool) int {
	vol := 0
	for v, in := range member {
		if in {
			vol += g.degree[v]
		}
	}
	return vol
}

// CutEdges returns the edges with exactly one endpoint in the set marked true
// in member. member must have length N().
func (g *Graph) CutEdges(member []bool) []Edge {
	var cut []Edge
	for _, e := range g.edges {
		if member[e.U] != member[e.V] {
			cut = append(cut, e)
		}
	}
	return cut
}

// CutSize returns the number of edges crossing the set marked true in member.
func (g *Graph) CutSize(member []bool) int {
	count := 0
	for _, e := range g.edges {
		if member[e.U] != member[e.V] {
			count++
		}
	}
	return count
}

// InducedSubgraph returns the subgraph induced by the vertices marked true in
// member, together with the mapping from new vertex ids to original ids.
func (g *Graph) InducedSubgraph(member []bool) (*Graph, []int) {
	oldToNew := make([]int, g.n)
	var newToOld []int
	for v := 0; v < g.n; v++ {
		if member[v] {
			oldToNew[v] = len(newToOld)
			newToOld = append(newToOld, v)
		} else {
			oldToNew[v] = -1
		}
	}
	var edges []Edge
	for _, e := range g.edges {
		if member[e.U] && member[e.V] {
			edges = append(edges, Edge{U: oldToNew[e.U], V: oldToNew[e.V]})
		}
	}
	return FromEdges(len(newToOld), edges), newToOld
}

// Validate checks internal invariants; it returns a descriptive error if any
// is violated. A nil error means the structure is consistent.
func (g *Graph) Validate() error {
	if len(g.degree) != g.n || len(g.adjOff) != g.n+1 {
		return fmt.Errorf("graph: inconsistent slice lengths")
	}
	sumDeg := 0
	for v := 0; v < g.n; v++ {
		sumDeg += g.degree[v]
		if g.adjOff[v+1]-g.adjOff[v] != g.degree[v] {
			return fmt.Errorf("graph: adjacency offsets disagree with degree at %d", v)
		}
	}
	if sumDeg != 2*len(g.edges) {
		return fmt.Errorf("graph: degree sum %d != 2m %d", sumDeg, 2*len(g.edges))
	}
	if g.volume != sumDeg {
		return fmt.Errorf("graph: cached volume %d != degree sum %d", g.volume, sumDeg)
	}
	for v := 0; v < g.n; v++ {
		nb := g.Neighbors(v)
		for i, u := range nb {
			if u == v {
				return fmt.Errorf("graph: self-loop at %d", v)
			}
			if i > 0 && nb[i-1] >= u {
				return fmt.Errorf("graph: neighbor list of %d not strictly sorted", v)
			}
			if !g.HasEdge(u, v) {
				return fmt.Errorf("graph: asymmetric adjacency %d-%d", v, u)
			}
		}
	}
	return nil
}
