package graph

import (
	"testing"
	"testing/quick"

	"dynamicrumor/internal/xrand"
)

func triangle() *Graph {
	return FromEdges(3, []Edge{{0, 1}, {1, 2}, {0, 2}})
}

func path4() *Graph {
	return FromEdges(4, []Edge{{0, 1}, {1, 2}, {2, 3}})
}

func TestBuilderBasic(t *testing.T) {
	b := NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(1, 0) // duplicate in the other direction
	b.AddEdge(2, 3)
	b.AddEdge(2, 2) // self loop, ignored
	if b.NumEdges() != 2 {
		t.Fatalf("NumEdges = %d, want 2", b.NumEdges())
	}
	if !b.HasEdge(1, 0) || b.HasEdge(0, 2) {
		t.Fatal("HasEdge gave wrong answer")
	}
	g := b.Build()
	if g.N() != 4 || g.M() != 2 {
		t.Fatalf("built graph n=%d m=%d, want 4,2", g.N(), g.M())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestBuilderPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("AddEdge out of range did not panic")
		}
	}()
	NewBuilder(2).AddEdge(0, 2)
}

func TestNewBuilderPanicsNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewBuilder(-1) did not panic")
		}
	}()
	NewBuilder(-1)
}

func TestFromEdgesDeduplicates(t *testing.T) {
	g := FromEdges(3, []Edge{{0, 1}, {1, 0}, {0, 1}, {2, 2}})
	if g.M() != 1 {
		t.Fatalf("M = %d, want 1", g.M())
	}
}

func TestFromEdgesPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("FromEdges out of range did not panic")
		}
	}()
	FromEdges(2, []Edge{{0, 5}})
}

func TestDegreesAndVolume(t *testing.T) {
	g := triangle()
	for v := 0; v < 3; v++ {
		if g.Degree(v) != 2 {
			t.Fatalf("Degree(%d) = %d, want 2", v, g.Degree(v))
		}
	}
	if g.Volume() != 6 {
		t.Fatalf("Volume = %d, want 6", g.Volume())
	}
	if g.AverageDegree() != 2 {
		t.Fatalf("AverageDegree = %v, want 2", g.AverageDegree())
	}
}

func TestNeighborsSorted(t *testing.T) {
	g := FromEdges(5, []Edge{{4, 0}, {2, 0}, {0, 3}})
	nb := g.Neighbors(0)
	want := []int{2, 3, 4}
	if len(nb) != 3 {
		t.Fatalf("len(Neighbors) = %d", len(nb))
	}
	for i := range want {
		if nb[i] != want[i] {
			t.Fatalf("Neighbors(0) = %v, want %v", nb, want)
		}
	}
	if g.Neighbor(0, 1) != 3 {
		t.Fatalf("Neighbor(0,1) = %d, want 3", g.Neighbor(0, 1))
	}
}

func TestHasEdge(t *testing.T) {
	g := path4()
	cases := []struct {
		u, v int
		want bool
	}{
		{0, 1, true}, {1, 0, true}, {0, 2, false}, {3, 2, true},
		{0, 0, false}, {-1, 0, false}, {0, 4, false},
	}
	for _, c := range cases {
		if got := g.HasEdge(c.u, c.v); got != c.want {
			t.Errorf("HasEdge(%d,%d) = %v, want %v", c.u, c.v, got, c.want)
		}
	}
}

func TestMinMaxDegree(t *testing.T) {
	g := FromEdges(4, []Edge{{0, 1}, {0, 2}, {0, 3}})
	if g.MaxDegree() != 3 {
		t.Fatalf("MaxDegree = %d", g.MaxDegree())
	}
	if g.MinDegree() != 1 {
		t.Fatalf("MinDegree = %d", g.MinDegree())
	}
}

func TestIsRegular(t *testing.T) {
	if ok, d := triangle().IsRegular(); !ok || d != 2 {
		t.Fatalf("triangle IsRegular = (%v,%d)", ok, d)
	}
	if ok, _ := path4().IsRegular(); ok {
		t.Fatal("path4 reported regular")
	}
	empty := FromEdges(0, nil)
	if ok, d := empty.IsRegular(); !ok || d != 0 {
		t.Fatalf("empty IsRegular = (%v,%d)", ok, d)
	}
}

func TestVolumeOfAndCut(t *testing.T) {
	g := path4()
	member := []bool{true, true, false, false}
	if got := g.VolumeOf(member); got != 3 { // deg(0)=1, deg(1)=2
		t.Fatalf("VolumeOf = %d, want 3", got)
	}
	cut := g.CutEdges(member)
	if len(cut) != 1 || cut[0] != (Edge{1, 2}) {
		t.Fatalf("CutEdges = %v", cut)
	}
	if g.CutSize(member) != 1 {
		t.Fatalf("CutSize = %d, want 1", g.CutSize(member))
	}
}

func TestInducedSubgraph(t *testing.T) {
	g := FromEdges(5, []Edge{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}})
	member := []bool{true, true, true, false, false}
	sub, mapping := g.InducedSubgraph(member)
	if sub.N() != 3 || sub.M() != 2 {
		t.Fatalf("induced subgraph n=%d m=%d, want 3,2", sub.N(), sub.M())
	}
	if len(mapping) != 3 || mapping[0] != 0 || mapping[2] != 2 {
		t.Fatalf("mapping = %v", mapping)
	}
	if err := sub.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestEdgeCanonical(t *testing.T) {
	e := Edge{U: 5, V: 2}.Canonical()
	if e.U != 2 || e.V != 5 {
		t.Fatalf("Canonical = %+v", e)
	}
}

func TestBFSPath(t *testing.T) {
	g := path4()
	dist := g.BFS(0)
	want := []int{0, 1, 2, 3}
	for i := range want {
		if dist[i] != want[i] {
			t.Fatalf("BFS dist = %v, want %v", dist, want)
		}
	}
}

func TestBFSUnreachable(t *testing.T) {
	g := FromEdges(3, []Edge{{0, 1}})
	dist := g.BFS(0)
	if dist[2] != -1 {
		t.Fatalf("dist to isolated vertex = %d, want -1", dist[2])
	}
}

func TestBFSBadSource(t *testing.T) {
	g := triangle()
	dist := g.BFS(-1)
	for _, d := range dist {
		if d != -1 {
			t.Fatal("BFS from invalid source should mark everything unreachable")
		}
	}
}

func TestIsConnected(t *testing.T) {
	if !triangle().IsConnected() {
		t.Fatal("triangle not connected")
	}
	if FromEdges(3, []Edge{{0, 1}}).IsConnected() {
		t.Fatal("graph with isolated vertex reported connected")
	}
	if !FromEdges(1, nil).IsConnected() {
		t.Fatal("single vertex not connected")
	}
	if !FromEdges(0, nil).IsConnected() {
		t.Fatal("empty graph not connected")
	}
}

func TestComponents(t *testing.T) {
	g := FromEdges(5, []Edge{{0, 1}, {2, 3}})
	comp, k := g.Components()
	if k != 3 {
		t.Fatalf("components = %d, want 3", k)
	}
	if comp[0] != comp[1] || comp[2] != comp[3] || comp[0] == comp[2] || comp[4] == comp[0] {
		t.Fatalf("component labels = %v", comp)
	}
}

func TestDiameter(t *testing.T) {
	if got := path4().Diameter(); got != 3 {
		t.Fatalf("path diameter = %d, want 3", got)
	}
	if got := triangle().Diameter(); got != 1 {
		t.Fatalf("triangle diameter = %d, want 1", got)
	}
	if got := FromEdges(3, []Edge{{0, 1}}).Diameter(); got != -1 {
		t.Fatalf("disconnected diameter = %d, want -1", got)
	}
	if got := FromEdges(0, nil).Diameter(); got != -1 {
		t.Fatalf("empty diameter = %d, want -1", got)
	}
}

// randomGraph builds a random graph for property tests.
func randomGraph(rng *xrand.RNG, maxN int) *Graph {
	n := rng.Intn(maxN) + 1
	b := NewBuilder(n)
	m := rng.Intn(3 * n)
	for i := 0; i < m; i++ {
		b.AddEdge(rng.Intn(n), rng.Intn(n))
	}
	return b.Build()
}

func TestRandomGraphInvariants(t *testing.T) {
	rng := xrand.New(1234)
	for trial := 0; trial < 200; trial++ {
		g := randomGraph(rng, 40)
		if err := g.Validate(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if g.Volume() != 2*g.M() {
			t.Fatalf("trial %d: volume %d != 2m %d", trial, g.Volume(), 2*g.M())
		}
		// Cut of the full vertex set and empty set are both empty.
		all := make([]bool, g.N())
		for i := range all {
			all[i] = true
		}
		if g.CutSize(all) != 0 || g.CutSize(make([]bool, g.N())) != 0 {
			t.Fatalf("trial %d: nonzero cut for trivial sets", trial)
		}
	}
}

func TestCutComplementSymmetryProperty(t *testing.T) {
	rng := xrand.New(77)
	if err := quick.Check(func(seed uint32) bool {
		g := randomGraph(rng.Split(uint64(seed)), 30)
		member := make([]bool, g.N())
		complement := make([]bool, g.N())
		r2 := rng.Split(uint64(seed) + 1)
		for i := range member {
			member[i] = r2.Bernoulli(0.5)
			complement[i] = !member[i]
		}
		return g.CutSize(member) == g.CutSize(complement)
	}, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestVolumeSplitProperty(t *testing.T) {
	rng := xrand.New(88)
	if err := quick.Check(func(seed uint32) bool {
		g := randomGraph(rng.Split(uint64(seed)), 30)
		member := make([]bool, g.N())
		complement := make([]bool, g.N())
		r2 := rng.Split(uint64(seed) + 7)
		for i := range member {
			member[i] = r2.Bernoulli(0.3)
			complement[i] = !member[i]
		}
		return g.VolumeOf(member)+g.VolumeOf(complement) == g.Volume()
	}, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
