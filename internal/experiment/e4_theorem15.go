package experiment

import (
	"fmt"

	"dynamicrumor/internal/bound"
	"dynamicrumor/internal/dynamic"
	"dynamicrumor/internal/xrand"
)

// RunE4 reproduces Theorem 1.5: on the absolutely ρ-diligent dynamic network
// the asynchronous spread time is Θ(n/ρ) — it sits between the Ω(n·Δ/40)
// lower bound of the proof and the T_abs = 2n(Δ+1) upper bound of
// Theorem 1.3, for every ρ in the sweep.
func RunE4(cfg Config) (*Table, error) {
	t := &Table{
		ID:    "E4",
		Title: "Theorem 1.5: absolutely ρ-diligent network with spread time Θ(n/ρ)",
		Columns: []string{"n", "rho", "Delta", "async mean", "lower nΔ/40",
			"T_abs=2n(Δ+1)", "meas/(nΔ)"},
	}
	n := 200
	rhoSweep := []float64{0.05, 0.1, 0.2, 0.5}
	reps := cfg.reps(8)
	if cfg.Quick {
		n = 60
		rhoSweep = []float64{0.2, 0.5}
		reps = cfg.reps(4)
	}

	passed := true
	var normalized []float64
	for i, rho := range rhoSweep {
		if rho < 10/float64(n) {
			// The Theorem 1.5 construction requires rho >= 10/n.
			continue
		}
		rng := cfg.rng(uint64(400 + i))
		probe, err := dynamic.NewAbsGNRho(n, rho, rng.Split(1))
		if err != nil {
			return nil, fmt.Errorf("AbsGNRho(n=%d, rho=%v): %w", n, rho, err)
		}
		factory := func(r *xrand.RNG) (dynamic.Network, int, error) {
			net, err := dynamic.NewAbsGNRho(n, rho, r)
			if err != nil {
				return nil, 0, err
			}
			return net, net.StartVertex(), nil
		}
		times, err := measureAsync(cfg, factory, reps, rng.Split(2), 0)
		if err != nil {
			return nil, fmt.Errorf("AbsGNRho(n=%d, rho=%v): %w", n, rho, err)
		}
		mean, _ := summary(times)

		lower := probe.LowerBoundSpreadTime()
		profile := bound.ConstantProfile(bound.StepProfile{
			AbsRho:    probe.AbsoluteDiligenceValue(),
			Connected: true,
		})
		tabs, err := bound.Theorem13(profile, n, 0)
		if err != nil {
			return nil, fmt.Errorf("T_abs: %w", err)
		}
		nd := float64(n) * float64(probe.Delta())
		t.AddRow(n, rho, probe.Delta(), mean, lower, tabs, ratio(mean, nd))
		normalized = append(normalized, ratio(mean, nd))
		if mean < 0.7*lower {
			passed = false
			t.AddNote("VIOLATION: rho=%.2f measured %.1f below the Ω(nΔ/40) lower bound %.1f", rho, mean, lower)
		}
		if mean > float64(tabs) {
			passed = false
			t.AddNote("VIOLATION: rho=%.2f measured %.1f above T_abs=%d", rho, mean, tabs)
		}
	}
	// Θ(n/ρ) = Θ(nΔ): the normalized ratios should agree within a small
	// constant factor across the sweep.
	if len(normalized) > 1 {
		min, max := normalized[0], normalized[0]
		for _, v := range normalized[1:] {
			if v < min {
				min = v
			}
			if v > max {
				max = v
			}
		}
		if min > 0 && max/min > 6 {
			passed = false
			t.AddNote("VIOLATION: measured/(nΔ) varies by factor %.1f across rho, expected Θ(1)", max/min)
		} else {
			t.AddNote("measured/(nΔ) stays within a factor %.1f across the rho sweep, matching Θ(n/ρ)", max/min)
		}
	}
	t.Passed = passed
	return t, nil
}
