package experiment

import (
	"fmt"

	"dynamicrumor/internal/bound"
	"dynamicrumor/internal/dynamic"
	"dynamicrumor/internal/gen"
	"dynamicrumor/internal/graph"
	"dynamicrumor/internal/xrand"
)

// e1Family is one network family of the E1 sweep together with the profile
// used to evaluate the Theorem 1.1 bound.
type e1Family struct {
	name    string
	factory func(n int, rng *xrand.RNG) (networkFactory, bound.ProfileFunc, error)
}

// RunE1 reproduces Theorem 1.1: on every family the measured asynchronous
// spread time must lie below the T(G, c=1) upper bound, and the bound (with
// its proof constant stripped) must track the measured time within a
// polylogarithmic factor.
func RunE1(cfg Config) (*Table, error) {
	t := &Table{
		ID:    "E1",
		Title: "Theorem 1.1: conductance·diligence upper bound T(G,c) vs measured async spread time",
		Columns: []string{"family", "n", "async mean", "async q90",
			"T(G,1)", "T normalized", "bound/measured"},
	}
	sizes := []int{64, 128, 256}
	reps := cfg.reps(16)
	if cfg.Quick {
		sizes = []int{32, 64}
		reps = cfg.reps(6)
	}

	families := []e1Family{
		{name: "clique", factory: func(n int, _ *xrand.RNG) (networkFactory, bound.ProfileFunc, error) {
			net := dynamic.NewStatic(gen.Clique(n))
			prof := bound.NewNetworkProfiler(func(int) *graph.Graph { return gen.Clique(n) })
			return staticFactory(net, 0), prof.Func(), nil
		}},
		{name: "star", factory: func(n int, _ *xrand.RNG) (networkFactory, bound.ProfileFunc, error) {
			net := dynamic.NewStatic(gen.Star(n, 0))
			// Φ(star) = 1, ρ(star) = 1 (the paper's own example).
			return staticFactory(net, 1), bound.ConstantProfile(bound.StepProfile{
				Phi: 1, Rho: 1, AbsRho: 1, Connected: true}), nil
		}},
		{name: "hypercube", factory: func(n int, _ *xrand.RNG) (networkFactory, bound.ProfileFunc, error) {
			d := 0
			for 1<<uint(d+1) <= n {
				d++
			}
			g := gen.Hypercube(d)
			// Φ(Q_d) = 1/d (dimension cut), ρ = 1 (regular).
			return staticFactory(dynamic.NewStatic(g), 0), bound.ConstantProfile(bound.StepProfile{
				Phi: 1 / float64(d), Rho: 1, AbsRho: 1 / float64(d), Connected: true}), nil
		}},
		{name: "expander", factory: func(n int, rng *xrand.RNG) (networkFactory, bound.ProfileFunc, error) {
			g := gen.Expander(n, 6, rng)
			prof := bound.NewNetworkProfiler(func(int) *graph.Graph { return g })
			return staticFactory(dynamic.NewStatic(g), 0), prof.Func(), nil
		}},
		{name: "alt-expander-cycle", factory: func(n int, rng *xrand.RNG) (networkFactory, bound.ProfileFunc, error) {
			exp := gen.Expander(n, 6, rng)
			cyc := gen.Cycle(n)
			net := dynamic.NewAlternating([]*graph.Graph{exp, cyc})
			prof := bound.NewNetworkProfiler(func(t int) *graph.Graph { return net.GraphAt(t, nil) })
			return staticFactory(net, 0), prof.Func(), nil
		}},
		{name: "dynamic-star", factory: func(n int, _ *xrand.RNG) (networkFactory, bound.ProfileFunc, error) {
			factory := func(r *xrand.RNG) (dynamic.Network, int, error) {
				net, err := dynamic.NewDichotomyG2(n-1, r)
				if err != nil {
					return nil, 0, err
				}
				return net, net.StartVertex(), nil
			}
			// Every step is a star: Φ = 1, ρ = 1.
			return factory, bound.ConstantProfile(bound.StepProfile{
				Phi: 1, Rho: 1, AbsRho: 1, Connected: true}), nil
		}},
	}

	passed := true
	for _, fam := range families {
		err := sweepOver(cfg, 100, sizes, func(sizeIdx, n int, rng *xrand.RNG) error {
			factory, profile, err := fam.factory(n, rng.Split(3))
			if err != nil {
				return fmt.Errorf("family %s n=%d: %w", fam.name, n, err)
			}
			times, err := measureAsync(cfg, factory, reps, rng.Split(4), 0)
			if err != nil {
				return fmt.Errorf("family %s n=%d: %w", fam.name, n, err)
			}
			mean, q90 := summary(times)

			full, err := bound.Theorem11(profile, n, 1, 0)
			if err != nil {
				return fmt.Errorf("family %s n=%d bound: %w", fam.name, n, err)
			}
			norm, err := bound.Theorem11Normalized(profile, n, 1, 0)
			if err != nil {
				return fmt.Errorf("family %s n=%d normalized bound: %w", fam.name, n, err)
			}
			t.AddRow(fam.name, n, mean, q90, full, norm, ratio(float64(full), mean))
			// Theorem 1.1 guarantees measured <= T(G,1) with probability
			// 1 - 1/n; the q90 over the repetitions must respect it.
			if q90 > float64(full) {
				passed = false
				t.AddNote("VIOLATION: %s n=%d q90 spread %.2f exceeds T(G,1)=%d", fam.name, n, q90, full)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	if passed {
		t.AddNote("measured q90 spread time <= T(G,1) for every family and size, as Theorem 1.1 predicts")
	}
	t.Passed = passed
	return t, nil
}
