package experiment

import (
	"fmt"

	"dynamicrumor/internal/diligence"
	"dynamicrumor/internal/gen"
	"dynamicrumor/internal/spectral"
)

// RunE8 reproduces Observation 4.1: for the graph H_{k,Δ}(A,B),
// Φ = Θ(Δ²/(kΔ²+n)) and ρ = Θ(1/Δ). Small instances are checked exactly
// (brute-force conductance and diligence); larger ones via the spectral
// sweep-cut estimate.
func RunE8(cfg Config) (*Table, error) {
	t := &Table{
		ID:    "E8",
		Title: "Observation 4.1: conductance and diligence of H_{k,Δ}(A,B)",
		Columns: []string{"n", "k", "Delta", "method", "Phi", "Phi scale", "Phi ratio",
			"rho", "rho scale=1/Δ", "rho ratio"},
	}
	type instance struct {
		n, sizeA, k, delta int
		exact              bool
	}
	instances := []instance{
		{n: 18, sizeA: 5, k: 1, delta: 2, exact: true},
		{n: 20, sizeA: 5, k: 2, delta: 2, exact: true},
		{n: 22, sizeA: 6, k: 2, delta: 3, exact: true},
		{n: 400, sizeA: 100, k: 3, delta: 10, exact: false},
		{n: 1000, sizeA: 250, k: 4, delta: 16, exact: false},
	}
	if cfg.Quick {
		instances = instances[:3]
	}

	passed := true
	for i, inst := range instances {
		rng := cfg.rng(uint64(800 + i))
		var a, b []int
		for v := 0; v < inst.sizeA; v++ {
			a = append(a, v)
		}
		for v := inst.sizeA; v < inst.n; v++ {
			b = append(b, v)
		}
		h, err := gen.NewHkd(gen.HkdParams{K: inst.k, Delta: inst.delta, A: a, B: b}, rng)
		if err != nil {
			return nil, fmt.Errorf("Hkd n=%d: %w", inst.n, err)
		}
		phiScale := h.ConductanceScale()
		rhoScale := h.DiligenceScale()

		var phi, rho float64
		method := "exact"
		if inst.exact {
			phi, err = spectral.ExactConductance(h.Graph)
			if err != nil {
				return nil, fmt.Errorf("exact conductance n=%d: %w", inst.n, err)
			}
			rho, err = diligence.Exact(h.Graph)
			if err != nil {
				return nil, fmt.Errorf("exact diligence n=%d: %w", inst.n, err)
			}
		} else {
			method = "spectral/absolute"
			est, err := spectral.EstimateConductance(h.Graph, 128)
			if err != nil {
				return nil, fmt.Errorf("spectral n=%d: %w", inst.n, err)
			}
			phi = est.SweepConductance
			// For H_{k,Δ} the minimizing cuts run through the bipartite
			// string, where every vertex has degree 2Δ, so the absolute
			// diligence rescaled by the constant average degree is a faithful
			// stand-in for ρ on large instances.
			rho = diligence.Absolute(h.Graph) * h.Graph.AverageDegree()
			if rho > 1 {
				rho = 1
			}
		}
		phiRatio := ratio(phi, phiScale)
		rhoRatio := ratio(rho, rhoScale)
		t.AddRow(inst.n, inst.k, inst.delta, method, phi, phiScale, phiRatio, rho, rhoScale, rhoRatio)
		if !allPositive(phi, rho) {
			passed = false
			t.AddNote("VIOLATION: n=%d produced non-positive Φ or ρ", inst.n)
			continue
		}
		if phiRatio < 1.0/16 || phiRatio > 16 {
			passed = false
			t.AddNote("VIOLATION: n=%d Φ ratio %.2f outside the Θ(1) window", inst.n, phiRatio)
		}
		if rhoRatio < 1.0/16 || rhoRatio > 16 {
			passed = false
			t.AddNote("VIOLATION: n=%d ρ ratio %.2f outside the Θ(1) window", inst.n, rhoRatio)
		}
	}
	if passed {
		t.AddNote("measured Φ and ρ stay within constant factors of Δ²/(kΔ²+n) and 1/Δ, as Observation 4.1 states")
	}
	t.Passed = passed
	return t, nil
}
