package experiment

import (
	"context"

	"reflect"
	"testing"

	"dynamicrumor/internal/dynamic"
	"dynamicrumor/internal/gen"
	"dynamicrumor/internal/runner"
	"dynamicrumor/internal/sim"
	"dynamicrumor/internal/xrand"
)

// TestMeasureHelpersMatchHistoricalLoop pins the measure* helpers to the
// pre-engine serial loops: network built from stream Split(1), simulator run
// from Split(2). If the engine migration ever changes the stream discipline,
// every historical table would silently shift; this test makes that loud.
func TestMeasureHelpersMatchHistoricalLoop(t *testing.T) {
	const (
		n    = 60
		reps = 7
	)
	cfg := Config{Parallelism: 3}
	factory := func(rng *xrand.RNG) (dynamic.Network, int, error) {
		return dynamic.NewStatic(gen.Expander(n, 6, rng)), 0, nil
	}

	historicalAsync := func(base *xrand.RNG) []float64 {
		out, err := runner.Map(context.Background(), 1, reps, base, func(rep int, sub *xrand.RNG) (float64, error) {
			net, start, err := factory(sub.Split(1))
			if err != nil {
				return 0, err
			}
			res, err := sim.RunAsync(net, sim.AsyncOptions{Start: start}, sub.Split(2))
			if err != nil {
				return 0, err
			}
			return res.SpreadTime, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	want := historicalAsync(xrand.New(99))
	got, err := measureAsync(cfg, factory, reps, xrand.New(99), 0)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("measureAsync = %v\nhistorical loop = %v", got, want)
	}

	historicalSync := func(base *xrand.RNG) []float64 {
		out, err := runner.Map(context.Background(), 1, reps, base, func(rep int, sub *xrand.RNG) (float64, error) {
			net, start, err := factory(sub.Split(1))
			if err != nil {
				return 0, err
			}
			res, err := sim.RunSync(net, sim.SyncOptions{Start: start}, sub.Split(2))
			if err != nil {
				return 0, err
			}
			return res.SpreadTime, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	wantS := historicalSync(xrand.New(5))
	gotS, err := measureSync(cfg, factory, reps, xrand.New(5), 0)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotS, wantS) {
		t.Fatalf("measureSync = %v\nhistorical loop = %v", gotS, wantS)
	}
}

func TestMeasureFlooding(t *testing.T) {
	const reps = 5
	cfg := Config{Parallelism: 2}
	factory := staticFactory(dynamic.NewStatic(gen.Cycle(32)), 0)
	times, err := measureFlooding(cfg, factory, reps, xrand.New(1), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(times) != reps {
		t.Fatalf("got %d times, want %d", len(times), reps)
	}
	// Flooding on a cycle informs exactly two new vertices per round:
	// ceil((n-1)/2) = 16 rounds, deterministically, for every repetition.
	for i, x := range times {
		if x != 16 {
			t.Fatalf("rep %d: flooding on C_32 took %v rounds, want 16", i, x)
		}
	}
}
