package experiment

import (
	"fmt"
	"math"

	"dynamicrumor/internal/bound"
	"dynamicrumor/internal/dynamic"
	"dynamicrumor/internal/xrand"
)

// RunE2 reproduces Theorem 1.2: on the ρ-diligent dynamic network G(n, ρ)
// built from H_{k,Δ}(A_t, B_t) the asynchronous spread time is Ω(n/(ρ̂·k))
// with ρ̂ = 1/Δ, while Theorem 1.1 upper-bounds it by O((ρn + k/ρ)·log n);
// the two differ by at most an o(log² n) factor.
func RunE2(cfg Config) (*Table, error) {
	t := &Table{
		ID:    "E2",
		Title: "Theorem 1.2: tightness of T(G,c) on the ρ-diligent network G(n,ρ)",
		Columns: []string{"n", "rho", "Delta", "k", "async mean",
			"lower n/(4kΔ)", "T normalized", "T(G,1)", "meas/lower", "upper/meas"},
	}
	n := 1024
	reps := cfg.reps(8)
	if cfg.Quick {
		n = 256
		reps = cfg.reps(4)
	}
	rhoSweep := []float64{1 / math.Sqrt(float64(n)), 0.1, 0.25, 0.5, 1}
	if cfg.Quick {
		rhoSweep = []float64{0.25, 1}
	}

	passed := true
	err := sweepOver(cfg, 200, rhoSweep, func(i int, rho float64, rng *xrand.RNG) error {
		// Build one instance just to read the parameters and the analytic
		// profile (all instances share them).
		probe, err := dynamic.NewGNRho(n, rho, 0, rng.Split(1))
		if err != nil {
			return fmt.Errorf("GNRho(n=%d, rho=%v): %w", n, rho, err)
		}
		factory := func(r *xrand.RNG) (dynamic.Network, int, error) {
			net, err := dynamic.NewGNRho(n, rho, 0, r)
			if err != nil {
				return nil, 0, err
			}
			return net, net.StartVertex(), nil
		}
		times, err := measureAsync(cfg, factory, reps, rng.Split(2), 0)
		if err != nil {
			return fmt.Errorf("GNRho(n=%d, rho=%v): %w", n, rho, err)
		}
		mean, _ := summary(times)

		lower := probe.LowerBoundSpreadTime()
		profile := bound.ConstantProfile(bound.StepProfile{
			Phi:       probe.ConductanceScale(),
			Rho:       probe.DiligenceScale(),
			AbsRho:    probe.DiligenceScale(),
			Connected: true,
		})
		norm, err := bound.Theorem11Normalized(profile, n, 1, 4*n*n)
		if err != nil {
			return fmt.Errorf("normalized bound rho=%v: %w", rho, err)
		}
		full, err := bound.Theorem11(profile, n, 1, 0)
		if err != nil {
			return fmt.Errorf("full bound rho=%v: %w", rho, err)
		}
		t.AddRow(n, rho, probe.Delta(), probe.K(), mean, lower, norm, full,
			ratio(mean, lower), ratio(float64(full), mean))

		// Shape checks: the measured time respects the lower bound (up to a
		// small constant slack from the finite-n adversary) and the upper
		// bound of Theorem 1.1.
		if mean < 0.2*lower {
			passed = false
			t.AddNote("VIOLATION: rho=%.3f measured %.1f below the Ω(n/(4kΔ)) lower bound %.1f", rho, mean, lower)
		}
		if mean > float64(full) {
			passed = false
			t.AddNote("VIOLATION: rho=%.3f measured %.1f above T(G,1)=%d", rho, mean, full)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	if passed {
		t.AddNote("for every rho: lower bound <~ measured <= T(G,1); gap between bounds is the predicted O(log^2 n) factor")
	}
	t.Passed = passed
	return t, nil
}
