// Package experiment contains the harness that regenerates every result of
// the paper's evaluation: one experiment per theorem/observation/figure
// (E1–E12, see DESIGN.md), each producing a table that can be rendered as
// text or CSV and compared against the paper's predicted shape.
package experiment

import (
	"fmt"
	"strings"
)

// Table is a rendered experiment result.
type Table struct {
	// ID is the experiment identifier (e.g. "E5").
	ID string
	// Title is a human-readable description referencing the paper result.
	Title string
	// Columns are the column headers.
	Columns []string
	// Rows hold the formatted cells, one slice per row.
	Rows [][]string
	// Notes are free-form remarks (e.g. which inequality was checked and
	// whether it held).
	Notes []string
	// Passed reports whether the experiment's shape checks all held.
	Passed bool
}

// AddRow appends a row, formatting each cell with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = formatFloat(v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// AddNote appends a formatted note.
func (t *Table) AddNote(format string, args ...interface{}) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

func formatFloat(v float64) string {
	switch {
	case v == 0:
		return "0"
	case v >= 1000 || v <= -1000:
		return fmt.Sprintf("%.0f", v)
	case v >= 10 || v <= -10:
		return fmt.Sprintf("%.1f", v)
	case v >= 0.01 || v <= -0.01:
		return fmt.Sprintf("%.3f", v)
	default:
		return fmt.Sprintf("%.2e", v)
	}
}

// Text renders the table as aligned plain text.
func (t *Table) Text() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s — %s\n", t.ID, t.Title)
	if len(t.Columns) == 0 {
		return sb.String()
	}
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], cell)
		}
		sb.WriteString("\n")
	}
	writeRow(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, note := range t.Notes {
		fmt.Fprintf(&sb, "note: %s\n", note)
	}
	if t.Passed {
		sb.WriteString("check: PASSED\n")
	} else {
		sb.WriteString("check: FAILED\n")
	}
	return sb.String()
}

// CSV renders the table as comma-separated values (header + rows).
func (t *Table) CSV() string {
	var sb strings.Builder
	escape := func(s string) string {
		if strings.ContainsAny(s, ",\"\n") {
			return "\"" + strings.ReplaceAll(s, "\"", "\"\"") + "\""
		}
		return s
	}
	cells := make([]string, len(t.Columns))
	for i, c := range t.Columns {
		cells[i] = escape(c)
	}
	sb.WriteString(strings.Join(cells, ","))
	sb.WriteString("\n")
	for _, row := range t.Rows {
		cells = cells[:0]
		for _, c := range row {
			cells = append(cells, escape(c))
		}
		sb.WriteString(strings.Join(cells, ","))
		sb.WriteString("\n")
	}
	return sb.String()
}
