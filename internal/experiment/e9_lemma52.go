package experiment

import (
	"context"

	"fmt"

	"dynamicrumor/internal/dynamic"
	"dynamicrumor/internal/gen"
	"dynamicrumor/internal/runner"
	"dynamicrumor/internal/sim"
	"dynamicrumor/internal/stats"
	"dynamicrumor/internal/xrand"
)

// RunE9 reproduces Lemma 5.2: on a Δ-regular graph, starting from a single
// informed vertex, the number of vertices informed by the asynchronous
// algorithm within one unit of time has constant mean and constant variance —
// independent of both Δ and n.
func RunE9(cfg Config) (*Table, error) {
	t := &Table{
		ID:      "E9",
		Title:   "Lemma 5.2: informed vertices within unit time on a Δ-regular graph are Θ(1) in mean and variance",
		Columns: []string{"n", "Delta", "mean I_1", "var I_1", "max I_1"},
	}
	type instance struct{ n, delta int }
	instances := []instance{
		{n: 256, delta: 4}, {n: 256, delta: 16}, {n: 1024, delta: 4},
		{n: 1024, delta: 16}, {n: 1024, delta: 64},
	}
	reps := cfg.reps(300)
	if cfg.Quick {
		instances = []instance{{n: 128, delta: 4}, {n: 128, delta: 16}}
		reps = cfg.reps(100)
	}

	passed := true
	var means []float64
	for i, inst := range instances {
		rng := cfg.rng(uint64(900 + i))
		g, err := gen.CirculantRegular(inst.n, inst.delta)
		if err != nil {
			return nil, fmt.Errorf("regular graph n=%d d=%d: %w", inst.n, inst.delta, err)
		}
		net := dynamic.NewStatic(g)
		counts, err := runner.MapLocal(context.Background(), cfg.Parallelism, reps, rng, newRepScratch,
			func(rep int, sub *xrand.RNG, rs *repScratch) (float64, error) {
				res, err := sim.RunAsyncInto(net, sim.AsyncOptions{Start: rep % inst.n, MaxTime: 1}, sub, rs.sc, &rs.res)
				if err != nil {
					return 0, fmt.Errorf("async run: %w", err)
				}
				return float64(res.Informed), nil
			})
		if err != nil {
			return nil, err
		}
		maxSeen := 0.0
		for _, c := range counts {
			if c > maxSeen {
				maxSeen = c
			}
		}
		mean := stats.Mean(counts)
		variance := stats.Variance(counts)
		means = append(means, mean)
		t.AddRow(inst.n, inst.delta, mean, variance, maxSeen)
		// Θ(1): the mean must be a small constant, far below any polynomial
		// in n or Δ.
		if mean < 1.5 || mean > 40 {
			passed = false
			t.AddNote("VIOLATION: n=%d Δ=%d mean I_1 = %.2f outside the Θ(1) window [1.5, 40]", inst.n, inst.delta, mean)
		}
	}
	// Constancy across the sweep: the means must agree within a small factor.
	if len(means) > 1 {
		min, max := means[0], means[0]
		for _, m := range means[1:] {
			if m < min {
				min = m
			}
			if m > max {
				max = m
			}
		}
		t.AddNote("mean I_1 ranges over [%.2f, %.2f] across all (n, Δ) — independent of both, as Lemma 5.2 predicts", min, max)
		if min > 0 && max/min > 3 {
			passed = false
			t.AddNote("VIOLATION: mean I_1 varies by factor %.1f across the sweep", max/min)
		}
	}
	t.Passed = passed
	return t, nil
}
