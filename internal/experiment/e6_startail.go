package experiment

import (
	"math"

	"dynamicrumor/internal/engine"
	"dynamicrumor/internal/gen"
	"dynamicrumor/internal/stats"
)

// RunE6 reproduces Theorem 1.7(iii): on the dynamic star the asynchronous
// algorithm finishes within 2k time with probability at least
// 1 - e^{-k/2-o(1)} - e^{-k-o(1)}. We estimate Pr[T > 2k] empirically and
// compare it against the bound e^{-k/2} + e^{-k}.
func RunE6(cfg Config) (*Table, error) {
	t := &Table{
		ID:      "E6",
		Title:   "Theorem 1.7(iii): tail of the async spread time on the dynamic star",
		Columns: []string{"k", "2k", "empirical Pr[T>2k]", "bound e^{-k/2}+e^{-k}", "status"},
	}
	n := 500
	reps := cfg.reps(400)
	if cfg.Quick {
		n = 100
		reps = cfg.reps(120)
	}

	// The declarative dynamic-star family (n+1 total vertices, rumor at leaf
	// 1) is exactly the historical NewDichotomyG2(n)-per-repetition loop, but
	// through the engine's batch compilation each worker recycles one star
	// instance across all of its repetitions — same streams, same times.
	rng := cfg.rng(600)
	times, err := measure(cfg, nil, reps, rng, engine.Scenario{
		Network: engine.NetworkSpec{Family: "dynamic-star", Params: gen.Params{"n": float64(n + 1)}},
	})
	if err != nil {
		return nil, err
	}

	// Theorem 1.7(iii) carries -o(1) corrections in both exponents: at finite
	// n the asynchronous spread time concentrates around log n (every leaf's
	// clock must tick after the centre is informed), so the bound only becomes
	// binding once 2k clears that scale. Rows below the concentration point
	// are reported for completeness but not gated.
	kMin := int(math.Ceil(math.Log(float64(n))/2)) + 1
	passed := true
	for k := 2; k <= kMin+4; k++ {
		empirical := 1 - stats.EmpiricalCDF(times, 2*float64(k))
		theoretical := math.Exp(-float64(k)/2) + math.Exp(-float64(k))
		// Standard error of the empirical tail probability.
		se := math.Sqrt(theoretical*(1-theoretical)/float64(reps)) + 1e-9
		gated := k >= kMin
		ok := !gated || empirical <= theoretical+3*se
		status := "ok"
		if !gated {
			status = "below log n scale (o(1) regime)"
		} else if !ok {
			status = "VIOLATION"
		}
		t.AddRow(k, 2*k, empirical, theoretical, status)
		if gated && !ok {
			passed = false
			t.AddNote("VIOLATION: k=%d empirical tail %.4f exceeds the bound %.4f", k, empirical, theoretical)
		}
	}
	mean := stats.Mean(times)
	t.AddNote("mean async spread time on the dynamic star (n=%d): %.2f ≈ Θ(log n) = %.2f", n, mean, math.Log(float64(n)))
	t.AddNote("rows with k < %d sit below the Θ(log n) concentration point, where the theorem's o(1) corrections dominate", kMin)
	if passed {
		t.AddNote("for every k at or above the log n scale the empirical tail stays below e^{-k/2}+e^{-k}, as Theorem 1.7(iii) predicts")
	}
	t.Passed = passed
	return t, nil
}
