package experiment

import (
	"fmt"
	"sort"

	"dynamicrumor/internal/xrand"
)

// Config controls the cost/fidelity trade-off of every experiment.
type Config struct {
	// Seed makes every experiment deterministic.
	Seed uint64
	// Reps is the number of Monte-Carlo repetitions per configuration
	// (0 means the experiment's default).
	Reps int
	// Quick selects reduced problem sizes, suitable for unit tests and CI.
	Quick bool
	// Parallelism is the number of worker goroutines used for Monte-Carlo
	// repetitions (0 or negative means runtime.GOMAXPROCS(0)). Results are
	// bit-identical for every value: each repetition draws from a private
	// RNG stream derived from Seed, so parallelism only affects wall-clock
	// time (see internal/runner and DESIGN.md).
	Parallelism int
}

// DefaultConfig returns the configuration used by cmd/experiments for the
// full reproduction run.
func DefaultConfig() Config {
	return Config{Seed: 20200424, Reps: 0} // the seed is the paper's date
}

// QuickConfig returns a reduced configuration for tests.
func QuickConfig() Config {
	return Config{Seed: 7, Reps: 6, Quick: true}
}

// reps returns the repetition count, with a default.
func (c Config) reps(def int) int {
	if c.Reps > 0 {
		return c.Reps
	}
	return def
}

// rng derives a deterministic generator for a named experiment.
func (c Config) rng(label uint64) *xrand.RNG {
	return xrand.New(c.Seed).Split(label)
}

// Runner is the signature shared by all experiments.
type Runner func(Config) (*Table, error)

// registry maps experiment IDs to runners; populated in registry.go.
var registry = map[string]registration{}

type registration struct {
	title  string
	runner Runner
}

// register adds an experiment to the registry (called from init-free setup in
// registry.go via the package-level variable initializer).
func register(id, title string, r Runner) struct{} {
	registry[id] = registration{title: title, runner: r}
	return struct{}{}
}

// IDs returns the registered experiment IDs in sorted order.
func IDs() []string {
	out := make([]string, 0, len(registry))
	for id := range registry {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool {
		// Numeric-aware ordering: E1, E2, ..., E10, E11.
		return idOrder(out[i]) < idOrder(out[j])
	})
	return out
}

func idOrder(id string) int {
	n := 0
	for _, r := range id {
		if r >= '0' && r <= '9' {
			n = n*10 + int(r-'0')
		}
	}
	return n
}

// Title returns the registered title of an experiment.
func Title(id string) (string, bool) {
	r, ok := registry[id]
	return r.title, ok
}

// Run executes one experiment by ID.
func Run(id string, cfg Config) (*Table, error) {
	r, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("experiment: unknown id %q", id)
	}
	return r.runner(cfg)
}

// RunAll executes every registered experiment in ID order.
func RunAll(cfg Config) ([]*Table, error) {
	var tables []*Table
	for _, id := range IDs() {
		t, err := Run(id, cfg)
		if err != nil {
			return tables, fmt.Errorf("experiment %s: %w", id, err)
		}
		tables = append(tables, t)
	}
	return tables, nil
}
