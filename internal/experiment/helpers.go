package experiment

import (
	"fmt"

	"dynamicrumor/internal/dynamic"
	"dynamicrumor/internal/runner"
	"dynamicrumor/internal/sim"
	"dynamicrumor/internal/stats"
	"dynamicrumor/internal/xrand"
)

// networkFactory builds a fresh network instance (stateful adaptive networks
// must not be reused across repetitions) and reports the start vertex.
type networkFactory func(rng *xrand.RNG) (dynamic.Network, int, error)

// measureAsync runs the asynchronous simulator reps times — fanned out over
// cfg.Parallelism workers — and returns the spread times in repetition order.
// maxTime of 0 uses the simulator default. For runs that hit the cutoff the
// cutoff time is recorded; callers decide whether that matters.
func measureAsync(cfg Config, factory networkFactory, reps int, rng *xrand.RNG, maxTime float64) ([]float64, error) {
	return runner.Map(cfg.Parallelism, reps, rng, func(rep int, sub *xrand.RNG) (float64, error) {
		net, start, err := factory(sub.Split(1))
		if err != nil {
			return 0, fmt.Errorf("build network: %w", err)
		}
		res, err := sim.RunAsync(net, sim.AsyncOptions{Start: start, MaxTime: maxTime}, sub.Split(2))
		if err != nil {
			return 0, fmt.Errorf("async run: %w", err)
		}
		return res.SpreadTime, nil
	})
}

// measureSync runs the synchronous simulator reps times — fanned out over
// cfg.Parallelism workers — and returns the round counts in repetition order.
func measureSync(cfg Config, factory networkFactory, reps int, rng *xrand.RNG, maxRounds int) ([]float64, error) {
	return runner.Map(cfg.Parallelism, reps, rng, func(rep int, sub *xrand.RNG) (float64, error) {
		net, start, err := factory(sub.Split(1))
		if err != nil {
			return 0, fmt.Errorf("build network: %w", err)
		}
		res, err := sim.RunSync(net, sim.SyncOptions{Start: start, MaxRounds: maxRounds}, sub.Split(2))
		if err != nil {
			return 0, fmt.Errorf("sync run: %w", err)
		}
		return res.SpreadTime, nil
	})
}

// summary condenses a sample into (mean, 0.9-quantile).
func summary(times []float64) (mean, q90 float64) {
	return stats.Mean(times), stats.Quantile(times, 0.9)
}

// staticFactory wraps a fixed network (safe only for stateless networks).
func staticFactory(net dynamic.Network, start int) networkFactory {
	return func(*xrand.RNG) (dynamic.Network, int, error) { return net, start, nil }
}

// ratio returns a/b, or 0 when b is 0 (avoids Inf cells in tables).
func ratio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

// allPositive reports whether every value is strictly positive.
func allPositive(xs ...float64) bool {
	for _, x := range xs {
		if x <= 0 {
			return false
		}
	}
	return true
}
