package experiment

import (
	"fmt"

	"dynamicrumor/internal/dynamic"
	"dynamicrumor/internal/sim"
	"dynamicrumor/internal/stats"
	"dynamicrumor/internal/xrand"
)

// networkFactory builds a fresh network instance (stateful adaptive networks
// must not be reused across repetitions) and reports the start vertex.
type networkFactory func(rng *xrand.RNG) (dynamic.Network, int, error)

// measureAsync runs the asynchronous simulator reps times and returns the
// spread times. maxTime of 0 uses the simulator default.
func measureAsync(factory networkFactory, reps int, rng *xrand.RNG, maxTime float64) ([]float64, error) {
	times := make([]float64, 0, reps)
	for rep := 0; rep < reps; rep++ {
		sub := rng.Split(uint64(rep) + 1)
		net, start, err := factory(sub.Split(1))
		if err != nil {
			return nil, fmt.Errorf("build network: %w", err)
		}
		res, err := sim.RunAsync(net, sim.AsyncOptions{Start: start, MaxTime: maxTime}, sub.Split(2))
		if err != nil {
			return nil, fmt.Errorf("async run: %w", err)
		}
		if !res.Completed {
			// Record the cutoff time; callers decide whether that matters.
			times = append(times, res.SpreadTime)
			continue
		}
		times = append(times, res.SpreadTime)
	}
	return times, nil
}

// measureSync runs the synchronous simulator reps times and returns the round
// counts.
func measureSync(factory networkFactory, reps int, rng *xrand.RNG, maxRounds int) ([]float64, error) {
	times := make([]float64, 0, reps)
	for rep := 0; rep < reps; rep++ {
		sub := rng.Split(uint64(rep) + 1)
		net, start, err := factory(sub.Split(1))
		if err != nil {
			return nil, fmt.Errorf("build network: %w", err)
		}
		res, err := sim.RunSync(net, sim.SyncOptions{Start: start, MaxRounds: maxRounds}, sub.Split(2))
		if err != nil {
			return nil, fmt.Errorf("sync run: %w", err)
		}
		times = append(times, res.SpreadTime)
	}
	return times, nil
}

// summary condenses a sample into (mean, 0.9-quantile).
func summary(times []float64) (mean, q90 float64) {
	return stats.Mean(times), stats.Quantile(times, 0.9)
}

// staticFactory wraps a fixed network (safe only for stateless networks).
func staticFactory(net dynamic.Network, start int) networkFactory {
	return func(*xrand.RNG) (dynamic.Network, int, error) { return net, start, nil }
}

// ratio returns a/b, or 0 when b is 0 (avoids Inf cells in tables).
func ratio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

// allPositive reports whether every value is strictly positive.
func allPositive(xs ...float64) bool {
	for _, x := range xs {
		if x <= 0 {
			return false
		}
	}
	return true
}
