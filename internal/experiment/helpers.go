package experiment

import (
	"context"

	"dynamicrumor/internal/dynamic"
	"dynamicrumor/internal/engine"
	"dynamicrumor/internal/sim"
	"dynamicrumor/internal/stats"
	"dynamicrumor/internal/xrand"
)

// networkFactory builds a fresh network instance (stateful adaptive networks
// must not be reused across repetitions) and reports the start vertex. It is
// the engine's factory type; experiments plug it into a scenario's Custom
// network slot.
type networkFactory = engine.NetworkFactory

// measure fans reps repetitions of the scenario out over cfg.Parallelism
// workers via the shared engine and returns the spread times in repetition
// order. The engine reproduces the historical serial loops bit for bit
// (network from stream Split(1), protocol from Split(2)), so tables are
// unchanged by the migration. For runs that hit the cutoff the cutoff time is
// recorded; callers decide whether that matters.
//
// The batch streams through Engine.RunReduceFrom: only the spread-time
// scalars survive a repetition, so memory is one float64 per repetition
// instead of a retained sim.Result — the experiments only ever aggregate
// spread times, and exact (not estimated) quantiles over the full sample are
// what keeps the tables byte-identical.
func measure(cfg Config, factory networkFactory, reps int, rng *xrand.RNG, sc engine.Scenario) ([]float64, error) {
	if factory != nil {
		sc.Network = engine.NetworkSpec{Custom: factory}
	}
	eng := engine.Engine{Parallelism: cfg.Parallelism}
	times := make([]float64, reps)
	err := eng.RunReduceFrom(context.Background(), sc, reps, rng, func(rep int, res *sim.Result) error {
		times[rep] = res.SpreadTime
		return nil
	})
	if err != nil {
		return nil, err
	}
	return times, nil
}

// measureAsync runs the asynchronous simulator reps times and returns the
// spread times in repetition order. maxTime of 0 uses the simulator default.
func measureAsync(cfg Config, factory networkFactory, reps int, rng *xrand.RNG, maxTime float64) ([]float64, error) {
	return measure(cfg, factory, reps, rng, engine.Scenario{
		Protocol: engine.ProtocolAsync,
		MaxTime:  maxTime,
	})
}

// measureSync runs the synchronous simulator reps times and returns the round
// counts in repetition order.
func measureSync(cfg Config, factory networkFactory, reps int, rng *xrand.RNG, maxRounds int) ([]float64, error) {
	return measure(cfg, factory, reps, rng, engine.Scenario{
		Protocol:  engine.ProtocolSync,
		MaxRounds: maxRounds,
	})
}

// measureFlooding runs the flooding baseline reps times and returns the round
// counts in repetition order.
func measureFlooding(cfg Config, factory networkFactory, reps int, rng *xrand.RNG, maxRounds int) ([]float64, error) {
	return measure(cfg, factory, reps, rng, engine.Scenario{
		Protocol:  engine.ProtocolFlooding,
		MaxRounds: maxRounds,
	})
}

// The experiment drivers are parameter sweeps, planned with the same shape
// the service's sweep planner uses (internal/service): one outermost grid
// axis, one cell per grid point, and a deterministic per-cell RNG stream.
// The stream discipline is exactly what the historical hand-rolled loops
// did — cell i draws from cfg.rng(base + i), and each measurement within a
// cell from consecutive rng.Split labels — so a driver rebuilt on these
// helpers reproduces its tables byte for byte.

// sweepOver drives one grid axis: cell i receives its axis value and the
// cell's base RNG (stream base+i). An error from a cell aborts the sweep.
func sweepOver[T any](cfg Config, base uint64, axis []T, cell func(i int, v T, rng *xrand.RNG) error) error {
	for i, v := range axis {
		if err := cell(i, v, cfg.rng(base+uint64(i))); err != nil {
			return err
		}
	}
	return nil
}

// measureCell measures one grid cell under several protocols — the per-cell
// protocol fan-out a sweep plans. Protocol k's ensemble draws from
// rng.Split(first+k), the consecutive-split layout of the historical loops;
// the zero MaxTime/MaxRounds select the simulator defaults, as the loops'
// explicit zeros did.
func measureCell(cfg Config, factory networkFactory, reps int, rng *xrand.RNG, first uint64, protocols ...engine.ProtocolKind) ([][]float64, error) {
	out := make([][]float64, len(protocols))
	for k, p := range protocols {
		times, err := measure(cfg, factory, reps, rng.Split(first+uint64(k)), engine.Scenario{Protocol: p})
		if err != nil {
			return nil, err
		}
		out[k] = times
	}
	return out, nil
}

// repScratch bundles the recycled simulator state and result one Monte-Carlo
// worker carries across all of its repetitions in the experiments that drive
// the simulators directly (E6, E9) rather than through the engine. Only the
// scalar extracted from the result survives a repetition, so reusing the
// result struct itself is safe.
type repScratch struct {
	sc  *sim.Scratch
	res sim.Result
}

func newRepScratch() *repScratch { return &repScratch{sc: sim.NewScratch()} }

// summary condenses a sample into (mean, 0.9-quantile).
func summary(times []float64) (mean, q90 float64) {
	return stats.Mean(times), stats.Quantile(times, 0.9)
}

// staticFactory wraps a fixed network (safe only for stateless networks).
func staticFactory(net dynamic.Network, start int) networkFactory {
	return func(*xrand.RNG) (dynamic.Network, int, error) { return net, start, nil }
}

// ratio returns a/b, or 0 when b is 0 (avoids Inf cells in tables).
func ratio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

// allPositive reports whether every value is strictly positive.
func allPositive(xs ...float64) bool {
	for _, x := range xs {
		if x <= 0 {
			return false
		}
	}
	return true
}
