package experiment

import (
	"dynamicrumor/internal/bound"
)

// RunE7 reproduces Lemma 2.2: for X ~ Poisson(r),
// Pr[X <= r/2] <= e^{r(1/e + 1/2 - 1)}. We estimate the left-hand side by
// Monte-Carlo sampling and verify the inequality across a rate sweep.
func RunE7(cfg Config) (*Table, error) {
	t := &Table{
		ID:      "E7",
		Title:   "Lemma 2.2: Poisson lower-tail bound Pr[X ≤ r/2] ≤ e^{r(1/e+1/2-1)}",
		Columns: []string{"rate r", "empirical Pr[X≤r/2]", "bound", "ratio emp/bound", "ok"},
	}
	samples := 200000
	if cfg.Quick {
		samples = 30000
	}
	rates := []float64{1, 2, 5, 10, 20, 50, 100}
	if cfg.Quick {
		rates = []float64{2, 10, 50}
	}

	rng := cfg.rng(700)
	passed := true
	for _, r := range rates {
		hits := 0
		for i := 0; i < samples; i++ {
			if float64(rng.Poisson(r)) <= r/2 {
				hits++
			}
		}
		empirical := float64(hits) / float64(samples)
		theoretical := bound.Lemma22Bound(r)
		ok := empirical <= theoretical*1.02+3.0/float64(samples)
		t.AddRow(r, empirical, theoretical, ratio(empirical, theoretical), ok)
		if !ok {
			passed = false
			t.AddNote("VIOLATION: rate %.0f empirical tail %.5f exceeds the Lemma 2.2 bound %.5f", r, empirical, theoretical)
		}
	}
	if passed {
		t.AddNote("the Monte-Carlo tail stays below the Lemma 2.2 bound for every rate")
	}
	t.Passed = passed
	return t, nil
}
