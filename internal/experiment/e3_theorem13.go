package experiment

import (
	"fmt"

	"dynamicrumor/internal/bound"
	"dynamicrumor/internal/dynamic"
	"dynamicrumor/internal/stats"
	"dynamicrumor/internal/xrand"
)

// RunE3 reproduces Theorem 1.3 and Remark 1.4: the absolute-diligence bound
// T_abs(G) holds on the hardest connected dynamic networks, and with
// ρ̄ = Θ(1/n) the measured spread time grows quadratically in n while staying
// below the universal O(n²) bound.
func RunE3(cfg Config) (*Table, error) {
	t := &Table{
		ID:    "E3",
		Title: "Theorem 1.3 / Remark 1.4: absolute-diligence bound T_abs and the O(n²) worst case",
		Columns: []string{"n", "Delta", "async mean", "T_abs", "2n(n-1)",
			"meas/T_abs", "meas/n^2"},
	}
	sizes := []int{60, 90, 120, 180}
	reps := cfg.reps(8)
	if cfg.Quick {
		sizes = []int{48, 96}
		reps = cfg.reps(4)
	}

	passed := true
	var ns, means []float64
	err := sweepOver(cfg, 300, sizes, func(i, n int, rng *xrand.RNG) error {
		rho := 10.0 / float64(n) // the hardest admissible absolute diligence
		probe, err := dynamic.NewAbsGNRho(n, rho, rng.Split(1))
		if err != nil {
			return fmt.Errorf("AbsGNRho(n=%d): %w", n, err)
		}
		factory := func(r *xrand.RNG) (dynamic.Network, int, error) {
			net, err := dynamic.NewAbsGNRho(n, rho, r)
			if err != nil {
				return nil, 0, err
			}
			return net, net.StartVertex(), nil
		}
		times, err := measureAsync(cfg, factory, reps, rng.Split(2), 0)
		if err != nil {
			return fmt.Errorf("AbsGNRho(n=%d): %w", n, err)
		}
		mean, _ := summary(times)

		profile := bound.ConstantProfile(bound.StepProfile{
			AbsRho:    probe.AbsoluteDiligenceValue(),
			Connected: true,
		})
		tabs, err := bound.Theorem13(profile, n, 0)
		if err != nil {
			return fmt.Errorf("T_abs(n=%d): %w", n, err)
		}
		worst := bound.Remark14WorstCase(n)
		t.AddRow(n, probe.Delta(), mean, tabs, worst,
			ratio(mean, float64(tabs)), ratio(mean, float64(n*n)))
		ns = append(ns, float64(n))
		means = append(means, mean)
		if mean > float64(tabs) {
			passed = false
			t.AddNote("VIOLATION: n=%d measured %.1f exceeds T_abs=%d", n, mean, tabs)
		}
		if mean > worst {
			passed = false
			t.AddNote("VIOLATION: n=%d measured %.1f exceeds the Remark 1.4 bound %.0f", n, mean, worst)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	alpha, err := stats.GrowthExponent(ns, means)
	if err == nil {
		t.AddNote("measured spread time grows like n^%.2f (Remark 1.4 worst case predicts exponent 2)", alpha)
		// The exponent fit needs the full size sweep to be meaningful; at
		// quick scale (two nearby sizes, few repetitions) it is reported but
		// not gated.
		if !cfg.Quick && (alpha < 1.4 || alpha > 2.6) {
			passed = false
			t.AddNote("VIOLATION: growth exponent %.2f outside [1.4, 2.6]", alpha)
		}
	}
	if passed {
		t.AddNote("measured spread <= T_abs <= 2n(n-1) on every size, with near-quadratic growth")
	}
	t.Passed = passed
	return t, nil
}
