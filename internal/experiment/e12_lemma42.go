package experiment

import (
	"context"

	"fmt"
	"math"

	"dynamicrumor/internal/graph"
	"dynamicrumor/internal/runner"
	"dynamicrumor/internal/sim"
	"dynamicrumor/internal/xrand"
)

// RunE12 reproduces Lemma 4.2 and Claim 4.3: on the string of complete
// bipartite layers S_0 - ... - S_k inside H_{k,Δ}, with all of S_0 informed,
// the expected number of vertices of S_k informed by the forward 2-push
// within one unit of time is at most (2^k / k!)·Δ, and the plain 2-push
// reaches S_k no more often than the forward 2-push. These are the two
// ingredients that make the adversary of Theorem 1.2 lose at most kΔ vertices
// of B per time step.
func RunE12(cfg Config) (*Table, error) {
	t := &Table{
		ID:    "E12",
		Title: "Lemma 4.2 / Claim 4.3: crossing the bipartite string within one time unit",
		Columns: []string{"k", "Delta", "E[I(1,k)] fwd", "bound 2^k/k!·Δ",
			"Pr reach (2-push)", "Pr reach (forward)", "ok"},
	}
	type instance struct{ k, delta int }
	instances := []instance{{2, 6}, {3, 6}, {4, 8}, {5, 8}, {6, 10}}
	reps := cfg.reps(2000)
	if cfg.Quick {
		instances = []instance{{2, 4}, {4, 6}}
		reps = cfg.reps(400)
	}

	passed := true
	for idx, inst := range instances {
		rng := cfg.rng(uint64(1200 + idx))
		g, layers, err := bipartiteString(inst.k, inst.delta)
		if err != nil {
			return nil, err
		}
		type crossing struct {
			last         float64
			fwd, twoPush bool
		}
		crossings, err := runner.Map(context.Background(), cfg.Parallelism, reps, rng, func(rep int, sub *xrand.RNG) (crossing, error) {
			fw, err := sim.RunForwardTwoPush(g, sim.LayeredOptions{Layers: layers, Horizon: 1}, sub.Split(1))
			if err != nil {
				return crossing{}, fmt.Errorf("forward 2-push: %w", err)
			}
			tp, err := sim.RunTwoPushOnLayers(g, sim.LayeredOptions{Layers: layers, Horizon: 1}, sub.Split(2))
			if err != nil {
				return crossing{}, fmt.Errorf("2-push: %w", err)
			}
			return crossing{
				last:    float64(fw.InformedPerLayer[inst.k]),
				fwd:     fw.ReachedLast,
				twoPush: tp.ReachedLast,
			}, nil
		})
		if err != nil {
			return nil, err
		}
		var sumLast float64
		reachedFwd, reachedTwoPush := 0, 0
		for _, c := range crossings {
			sumLast += c.last
			if c.fwd {
				reachedFwd++
			}
			if c.twoPush {
				reachedTwoPush++
			}
		}
		meanLast := sumLast / float64(reps)
		factorial := 1.0
		for i := 2; i <= inst.k; i++ {
			factorial *= float64(i)
		}
		lemmaBound := math.Pow(2, float64(inst.k)) / factorial * float64(inst.delta)
		pFwd := float64(reachedFwd) / float64(reps)
		pTwoPush := float64(reachedTwoPush) / float64(reps)
		// Monte-Carlo slack: three standard errors on each estimate.
		seMean := 3 * math.Sqrt(lemmaBound/float64(reps))
		seP := 3 * math.Sqrt(0.25/float64(reps))
		ok := meanLast <= lemmaBound+seMean && pTwoPush <= pFwd+seP
		t.AddRow(inst.k, inst.delta, meanLast, lemmaBound, pTwoPush, pFwd, ok)
		if !ok {
			passed = false
			if meanLast > lemmaBound+seMean {
				t.AddNote("VIOLATION: k=%d E[I(1,k)] = %.3f exceeds the Lemma 4.2 bound %.3f", inst.k, meanLast, lemmaBound)
			}
			if pTwoPush > pFwd+seP {
				t.AddNote("VIOLATION: k=%d 2-push reach probability %.3f exceeds forward 2-push %.3f (Claim 4.3)", inst.k, pTwoPush, pFwd)
			}
		}
	}
	if passed {
		t.AddNote("E[I(1,k)] stays below (2^k/k!)·Δ and the forward coupling dominates, as Lemma 4.2 / Claim 4.3 state")
	}
	t.Passed = passed
	return t, nil
}

// bipartiteString builds the string S_0-...-S_k of complete bipartite layers
// used by the Lemma 4.2 analysis, with every layer of size delta.
func bipartiteString(k, delta int) (*graph.Graph, [][]int, error) {
	if k < 1 || delta < 1 {
		return nil, nil, fmt.Errorf("experiment: bipartiteString needs k >= 1 and delta >= 1")
	}
	n := (k + 1) * delta
	builder := graph.NewBuilder(n)
	layers := make([][]int, k+1)
	for i := 0; i <= k; i++ {
		for j := 0; j < delta; j++ {
			layers[i] = append(layers[i], i*delta+j)
		}
	}
	for i := 0; i < k; i++ {
		for _, u := range layers[i] {
			for _, v := range layers[i+1] {
				builder.AddEdge(u, v)
			}
		}
	}
	return builder.Build(), layers, nil
}
