package experiment

import (
	"strings"
	"testing"
)

func TestRegistryContainsAllExperiments(t *testing.T) {
	ids := IDs()
	want := []string{"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10", "E11", "E12"}
	if len(ids) != len(want) {
		t.Fatalf("registry has %d experiments, want %d: %v", len(ids), len(want), ids)
	}
	for i, id := range want {
		if ids[i] != id {
			t.Fatalf("IDs() = %v, want numeric order %v", ids, want)
		}
		if _, ok := Title(id); !ok {
			t.Fatalf("Title(%s) missing", id)
		}
	}
}

func TestRunUnknownID(t *testing.T) {
	if _, err := Run("E99", QuickConfig()); err == nil {
		t.Fatal("unknown experiment should error")
	}
	if _, ok := Title("E99"); ok {
		t.Fatal("Title should report missing experiments")
	}
}

func TestTableRendering(t *testing.T) {
	tbl := &Table{ID: "T", Title: "demo", Columns: []string{"a", "b"}}
	tbl.AddRow(1, 2.5)
	tbl.AddRow("x,y", 1e-5)
	tbl.AddNote("hello %d", 7)
	tbl.Passed = true
	text := tbl.Text()
	if !strings.Contains(text, "demo") || !strings.Contains(text, "hello 7") || !strings.Contains(text, "PASSED") {
		t.Fatalf("Text rendering missing pieces:\n%s", text)
	}
	csv := tbl.CSV()
	if !strings.Contains(csv, "a,b") || !strings.Contains(csv, "\"x,y\"") {
		t.Fatalf("CSV rendering wrong:\n%s", csv)
	}
	empty := &Table{ID: "X", Title: "no columns"}
	if empty.Text() == "" {
		t.Fatal("empty table should still render a header")
	}
}

func TestFormatFloat(t *testing.T) {
	cases := []struct {
		in   float64
		want string
	}{
		{0, "0"}, {12345, "12345"}, {42.42, "42.4"}, {0.125, "0.125"}, {1e-6, "1.00e-06"},
	}
	for _, c := range cases {
		if got := formatFloat(c.in); got != c.want {
			t.Errorf("formatFloat(%v) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestConfigHelpers(t *testing.T) {
	cfg := Config{}
	if cfg.reps(12) != 12 {
		t.Fatal("default reps not applied")
	}
	cfg.Reps = 3
	if cfg.reps(12) != 3 {
		t.Fatal("explicit reps not used")
	}
	if DefaultConfig().Seed == 0 || QuickConfig().Quick != true {
		t.Fatal("config constructors wrong")
	}
	a := Config{Seed: 1}.rng(5)
	b := Config{Seed: 1}.rng(5)
	if a.Uint64() != b.Uint64() {
		t.Fatal("config rng not deterministic")
	}
}

func TestHelperFunctions(t *testing.T) {
	if ratio(4, 2) != 2 || ratio(1, 0) != 0 {
		t.Fatal("ratio wrong")
	}
	if !allPositive(1, 2, 3) || allPositive(1, 0) {
		t.Fatal("allPositive wrong")
	}
	mean, q90 := summary([]float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10})
	if mean != 5.5 || q90 < 9 || q90 > 10 {
		t.Fatalf("summary = (%v, %v)", mean, q90)
	}
}

// TestParallelismDoesNotChangeResults is the determinism regression test for
// the runner fan-out: the same seed must render bit-identical tables whether
// the Monte-Carlo repetitions run on one worker or eight. Both a
// sequential-helper experiment (E6) and one with a per-rep-varying start
// vertex (E9) are covered.
func TestParallelismDoesNotChangeResults(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment")
	}
	for _, id := range []string{"E6", "E9"} {
		serial := QuickConfig()
		serial.Parallelism = 1
		parallel := QuickConfig()
		parallel.Parallelism = 8

		ts, err := Run(id, serial)
		if err != nil {
			t.Fatalf("%s serial: %v", id, err)
		}
		tp, err := Run(id, parallel)
		if err != nil {
			t.Fatalf("%s parallel: %v", id, err)
		}
		if ts.Text() != tp.Text() {
			t.Errorf("%s: Parallelism=1 and Parallelism=8 render different tables:\n--- serial ---\n%s\n--- parallel ---\n%s",
				id, ts.Text(), tp.Text())
		}
		if ts.CSV() != tp.CSV() {
			t.Errorf("%s: CSV output differs between Parallelism=1 and Parallelism=8", id)
		}
	}
}

// Each experiment runs end-to-end in quick mode. The shape checks themselves
// are part of the experiment (Table.Passed); these tests assert both that the
// harness runs and that the paper's predictions hold at reduced scale.

func runQuick(t *testing.T, id string) *Table {
	t.Helper()
	tbl, err := Run(id, QuickConfig())
	if err != nil {
		t.Fatalf("%s failed: %v", id, err)
	}
	if tbl.ID != id {
		t.Fatalf("table ID %s, want %s", tbl.ID, id)
	}
	if len(tbl.Rows) == 0 {
		t.Fatalf("%s produced no rows", id)
	}
	if !tbl.Passed {
		t.Errorf("%s shape checks failed:\n%s", id, tbl.Text())
	}
	return tbl
}

func TestRunE1Quick(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment")
	}
	runQuick(t, "E1")
}

func TestRunE2Quick(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment")
	}
	runQuick(t, "E2")
}

func TestRunE3Quick(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment")
	}
	runQuick(t, "E3")
}

func TestRunE4Quick(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment")
	}
	runQuick(t, "E4")
}

func TestRunE5Quick(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment")
	}
	runQuick(t, "E5")
}

func TestRunE6Quick(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment")
	}
	runQuick(t, "E6")
}

func TestRunE7Quick(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment")
	}
	runQuick(t, "E7")
}

func TestRunE8Quick(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment")
	}
	runQuick(t, "E8")
}

func TestRunE9Quick(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment")
	}
	runQuick(t, "E9")
}

func TestRunE10Quick(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment")
	}
	runQuick(t, "E10")
}

func TestRunE11Quick(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment")
	}
	runQuick(t, "E11")
}

func TestRunE12Quick(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment")
	}
	runQuick(t, "E12")
}
