package experiment

import (
	"fmt"
	"math"

	"dynamicrumor/internal/bound"
	"dynamicrumor/internal/dynamic"
	"dynamicrumor/internal/engine"
	"dynamicrumor/internal/graph"
	"dynamicrumor/internal/xrand"
)

// RunE10 reproduces the Section 1.2 comparison with the related synchronous
// bound of Giakkoupis, Sauerwald and Stauffer: on a dynamic network that
// alternates between a 3-regular graph and the complete graph, their bound
// carries the degree-fluctuation factor M(G) = Θ(n) and therefore
// over-estimates the true spread time by a Θ(n) factor, while the
// Theorem 1.1 bound (which replaces M(G) by the diligence) stays
// polylogarithmic.
func RunE10(cfg Config) (*Table, error) {
	t := &Table{
		ID:    "E10",
		Title: "Section 1.2: Theorem 1.1 vs the Giakkoupis et al. M(G)-based bound on the alternating 3-regular/complete network",
		Columns: []string{"n", "M(G)", "async mean", "sync mean",
			"thm1.1 normalized", "GSS normalized", "GSS/thm1.1"},
	}
	sizes := []int{64, 128, 256}
	reps := cfg.reps(10)
	if cfg.Quick {
		sizes = []int{32, 64}
		reps = cfg.reps(5)
	}

	passed := true
	err := sweepOver(cfg, 1000, sizes, func(i, n int, rng *xrand.RNG) error {
		net, err := dynamic.NewAlternatingRegularComplete(n, 3, rng.Split(1))
		if err != nil {
			return fmt.Errorf("alternating network n=%d: %w", n, err)
		}
		factory := staticFactory(net, 0)
		times, err := measureCell(cfg, factory, reps, rng, 2,
			engine.ProtocolAsync, engine.ProtocolSync)
		if err != nil {
			return fmt.Errorf("n=%d: %w", n, err)
		}
		aMean, _ := summary(times[0])
		sMean, _ := summary(times[1])

		profiler := bound.NewNetworkProfiler(func(t int) *graph.Graph { return net.GraphAt(t, nil) })
		thm11, err := bound.Theorem11Normalized(profiler.Func(), n, 1, 0)
		if err != nil {
			return fmt.Errorf("thm 1.1 bound n=%d: %w", n, err)
		}
		m := net.MaxDegreeRatio()
		gss, err := bound.GiakkoupisSync(profiler.Func(), n, m, 1, 0)
		if err != nil {
			return fmt.Errorf("GSS bound n=%d: %w", n, err)
		}
		t.AddRow(n, m, aMean, sMean, thm11, gss, ratio(float64(gss), float64(thm11)))

		// The paper's point: the M(G) factor makes the related-work bound a
		// Θ(n/ log n)-ish factor larger, although both simulated algorithms
		// finish in O(log n) time on this network.
		if float64(gss) < float64(thm11)*float64(n)/(8*math.Log(float64(n))) {
			passed = false
			t.AddNote("VIOLATION: n=%d GSS bound %d not ~n/log n times larger than the Theorem 1.1 bound %d", n, gss, thm11)
		}
		if aMean > 10*math.Log(float64(n))+10 || sMean > 10*math.Log2(float64(n))+10 {
			passed = false
			t.AddNote("VIOLATION: n=%d measured spread times (%.1f async, %.1f sync) are not Θ(log n)", n, aMean, sMean)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	if passed {
		t.AddNote("both algorithms finish in Θ(log n); the M(G) factor inflates the related-work bound by ~n while Theorem 1.1 stays tight")
	}
	t.Passed = passed
	return t, nil
}
