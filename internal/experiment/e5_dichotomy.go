package experiment

import (
	"fmt"
	"math"

	"dynamicrumor/internal/dynamic"
	"dynamicrumor/internal/engine"
	"dynamicrumor/internal/stats"
	"dynamicrumor/internal/xrand"
)

// RunE5 reproduces Theorem 1.7(i)–(ii) and Figure 1: the two dynamic
// networks G1 and G2 separate the synchronous and asynchronous algorithms in
// opposite directions. On G1, Ts = Θ(log n) while Ta = Ω(n); on the dynamic
// star G2, Ta = Θ(log n) while Ts = n exactly.
func RunE5(cfg Config) (*Table, error) {
	t := &Table{
		ID:    "E5",
		Title: "Theorem 1.7(i)-(ii) / Figure 1: async vs sync dichotomy on G1 and G2",
		Columns: []string{"network", "n", "async mean", "sync mean",
			"async q90/n", "async q90/log n", "sync/log n", "sync/n"},
	}
	sizes := []int{64, 128, 256}
	reps := cfg.reps(10)
	if cfg.Quick {
		sizes = []int{64, 128}
		reps = cfg.reps(6)
	}
	// G1 needs more repetitions because its Ω(n) behaviour occurs with
	// constant (not overwhelming) probability; the runs are cheap.
	g1Reps := reps
	if g1Reps < 40 {
		g1Reps = 40
	}

	passed := true
	var g1AsyncNs, g1AsyncQ90s []float64
	err := sweepOver(cfg, 500, sizes, func(i, n int, rng *xrand.RNG) error {
		logn := math.Log(float64(n))

		// G1: clique with a pendant, then two bridged cliques. Theorem 1.7(i)
		// is a with-high-probability statement driven by the constant-
		// probability event that the pendant edge stays silent during [0,1),
		// so the relevant statistic is a high quantile, not the mean.
		g1Factory := func(r *xrand.RNG) (dynamic.Network, int, error) {
			net, err := dynamic.NewDichotomyG1(n)
			if err != nil {
				return nil, 0, err
			}
			return net, net.StartVertex(), nil
		}
		g1Async, err := measureAsync(cfg, g1Factory, g1Reps, rng.Split(1), 0)
		if err != nil {
			return fmt.Errorf("G1 async n=%d: %w", n, err)
		}
		g1Sync, err := measureSync(cfg, g1Factory, reps, rng.Split(2), 0)
		if err != nil {
			return fmt.Errorf("G1 sync n=%d: %w", n, err)
		}
		aMean, aQ90 := summary(g1Async)
		sMean, _ := summary(g1Sync)
		t.AddRow("G1", n, aMean, sMean, ratio(aQ90, float64(n)), ratio(aQ90, logn),
			ratio(sMean, logn), ratio(sMean, float64(n)))
		g1AsyncNs = append(g1AsyncNs, float64(n))
		g1AsyncQ90s = append(g1AsyncQ90s, aQ90)
		// Dichotomy check, following the statement of Theorem 1.7(i): with
		// constant probability the pendant edge stays silent during [0,1) and
		// the run then waits Θ(n) for the bridge, so a constant fraction of
		// runs must take time on the Ω(n) scale, while the synchronous
		// algorithm always finishes in Θ(log n) rounds.
		slow := 0
		slowScale := float64(n)/20 + 2
		for _, tm := range g1Async {
			if tm >= slowScale {
				slow++
			}
		}
		slowFrac := float64(slow) / float64(len(g1Async))
		t.AddNote("G1 n=%d: %.0f%% of async runs took at least n/20+2 = %.1f time (constant-probability Ω(n) branch)",
			n, 100*slowFrac, slowScale)
		if slowFrac < 0.10 {
			passed = false
			t.AddNote("VIOLATION: G1 n=%d only %.0f%% of async runs reached the Ω(n) scale", n, 100*slowFrac)
		}
		if sMean > 6*logn+10 {
			passed = false
			t.AddNote("VIOLATION: G1 n=%d sync mean %.1f not Θ(log n)", n, sMean)
		}

		// G2: the adaptive dynamic star.
		g2Factory := func(r *xrand.RNG) (dynamic.Network, int, error) {
			net, err := dynamic.NewDichotomyG2(n, r)
			if err != nil {
				return nil, 0, err
			}
			return net, net.StartVertex(), nil
		}
		// The G2 pair shares repetitions, so it is one measureCell fan-out:
		// async from rng.Split(3), sync from rng.Split(4). (The G1 pair above
		// stays hand-rolled because its two measurements use different reps.)
		g2Times, err := measureCell(cfg, g2Factory, reps, rng, 3,
			engine.ProtocolAsync, engine.ProtocolSync)
		if err != nil {
			return fmt.Errorf("G2 n=%d: %w", n, err)
		}
		aMean2, aQ902 := summary(g2Times[0])
		sMean2, _ := summary(g2Times[1])
		t.AddRow("G2", n, aMean2, sMean2, ratio(aQ902, float64(n)), ratio(aQ902, logn),
			ratio(sMean2, logn), ratio(sMean2, float64(n)))
		// Theorem 1.7(ii): Ts(G2) is exactly n rounds.
		if sMean2 != float64(n) {
			passed = false
			t.AddNote("VIOLATION: G2 n=%d sync mean %.1f, the paper predicts exactly n rounds", n, sMean2)
		}
		if aMean2 > 8*logn+10 {
			passed = false
			t.AddNote("VIOLATION: G2 n=%d async mean %.1f not Θ(log n)", n, aMean2)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	// Ta(G1) = Ω(n): the q90 over the size sweep grows roughly linearly
	// because the slow branch dominates the upper quantiles. This is reported
	// as a diagnostic; the pass/fail gate is the slow-fraction check above,
	// which matches the constant-probability form of the theorem.
	if alpha, err := stats.GrowthExponent(g1AsyncNs, g1AsyncQ90s); err == nil {
		t.AddNote("Ta(G1) q90 grows like n^%.2f across the sweep (Theorem 1.7(i) predicts Ω(n))", alpha)
	}
	if passed {
		t.AddNote("G1: sync ≪ async; G2: async ≪ sync = n — the dichotomy of Theorem 1.7 holds")
	}
	t.Passed = passed
	return t, nil
}
