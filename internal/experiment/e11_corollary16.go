package experiment

import (
	"fmt"

	"dynamicrumor/internal/bound"
	"dynamicrumor/internal/dynamic"
	"dynamicrumor/internal/xrand"
)

// RunE11 reproduces Corollary 1.6: the spread time is bounded by
// min{T(G,c), T_abs(G)}, and each of the two bounds is the better one on a
// different family — T(G,c) on the dynamic star (high conductance and
// diligence), T_abs(G) on the absolutely ρ-diligent bottleneck network of
// Section 5.1 (tiny conductance).
func RunE11(cfg Config) (*Table, error) {
	t := &Table{
		ID:    "E11",
		Title: "Corollary 1.6: combined bound min{T(G,c), T_abs} and which side wins where",
		Columns: []string{"family", "n", "async mean", "T(G,1)", "T_abs",
			"min bound", "winner"},
	}
	n := 120
	// The dynamic star needs a larger n for T(G,c) = C·log n to drop below
	// T_abs = 2n, because the Theorem 1.1 proof constant C ≈ 227 is large.
	starN := 4000
	reps := cfg.reps(8)
	if cfg.Quick {
		n = 60
		starN = 1600
		reps = cfg.reps(4)
	}
	passed := true

	// Family 1: dynamic star — Φ = ρ = ρ̄ = 1, so T(G,c) = Θ(log n) beats
	// T_abs = 2n once n is large enough.
	rng := cfg.rng(1100)
	starFactory := func(r *xrand.RNG) (dynamic.Network, int, error) {
		net, err := dynamic.NewDichotomyG2(starN, r)
		if err != nil {
			return nil, 0, err
		}
		return net, net.StartVertex(), nil
	}
	starTimes, err := measureAsync(cfg, starFactory, reps, rng.Split(1), 0)
	if err != nil {
		return nil, fmt.Errorf("dynamic star: %w", err)
	}
	starMean, _ := summary(starTimes)
	starProfile := bound.ConstantProfile(bound.StepProfile{Phi: 1, Rho: 1, AbsRho: 1, Connected: true})
	starT11, err := bound.Theorem11(starProfile, starN+1, 1, 0)
	if err != nil {
		return nil, err
	}
	starTabs, err := bound.Theorem13(starProfile, starN+1, 0)
	if err != nil {
		return nil, err
	}
	starMin, err := bound.Corollary16(starProfile, starN+1, 1, 0)
	if err != nil {
		return nil, err
	}
	starWinner := "T(G,c)"
	if starTabs < starT11 {
		starWinner = "T_abs"
	}
	t.AddRow("dynamic-star", starN+1, starMean, starT11, starTabs, starMin, starWinner)
	if starMin != minInt(starT11, starTabs) {
		passed = false
		t.AddNote("VIOLATION: Corollary16 did not return the minimum on the dynamic star")
	}
	if starMean > float64(starMin) {
		passed = false
		t.AddNote("VIOLATION: dynamic star measured %.1f exceeds the combined bound %d", starMean, starMin)
	}

	// Family 2: the Section 5.1 bottleneck network — Φ = Θ(1/n) makes T(G,c)
	// quadratic-ish, while T_abs = 2n(Δ+1) is linear in n for constant ρ.
	rho := 0.2
	rng2 := cfg.rng(1101)
	probe, err := dynamic.NewAbsGNRho(n, rho, rng2.Split(1))
	if err != nil {
		return nil, fmt.Errorf("AbsGNRho: %w", err)
	}
	bottleneckFactory := func(r *xrand.RNG) (dynamic.Network, int, error) {
		net, err := dynamic.NewAbsGNRho(n, rho, r)
		if err != nil {
			return nil, 0, err
		}
		return net, net.StartVertex(), nil
	}
	botTimes, err := measureAsync(cfg, bottleneckFactory, reps, rng2.Split(2), 0)
	if err != nil {
		return nil, fmt.Errorf("AbsGNRho runs: %w", err)
	}
	botMean, _ := summary(botTimes)
	// Analytic per-step profile of the Section 5.1 graph: the bottleneck cut
	// is the single bridge edge over the smaller side's volume Θ(n), and the
	// bridge joins two degree-(Δ+1) vertices in a graph of average degree
	// Θ(1), giving ρ = Θ(1/Δ).
	delta := float64(probe.Delta())
	botProfile := bound.ConstantProfile(bound.StepProfile{
		Phi:       1 / (4 * float64(n)),
		Rho:       4 / (delta + 1),
		AbsRho:    probe.AbsoluteDiligenceValue(),
		Connected: true,
	})
	botT11, err := bound.Theorem11(botProfile, n, 1, 64*n*n*int(delta))
	if err != nil {
		return nil, err
	}
	botTabs, err := bound.Theorem13(botProfile, n, 0)
	if err != nil {
		return nil, err
	}
	botMin, err := bound.Corollary16(botProfile, n, 1, 64*n*n*int(delta))
	if err != nil {
		return nil, err
	}
	botWinner := "T(G,c)"
	if botTabs < botT11 {
		botWinner = "T_abs"
	}
	t.AddRow("abs-bottleneck", n, botMean, botT11, botTabs, botMin, botWinner)
	if botMin != minInt(botT11, botTabs) {
		passed = false
		t.AddNote("VIOLATION: Corollary16 did not return the minimum on the bottleneck network")
	}
	if botMean > float64(botMin) {
		passed = false
		t.AddNote("VIOLATION: bottleneck measured %.1f exceeds the combined bound %d", botMean, botMin)
	}

	// The two winners must differ, demonstrating why the corollary takes the
	// minimum of the two bounds.
	if starWinner == botWinner {
		passed = false
		t.AddNote("VIOLATION: the same bound won on both families; expected T(G,c) on the star and T_abs on the bottleneck")
	} else {
		t.AddNote("T(G,c) wins on the dynamic star, T_abs wins on the bottleneck network — each side of Corollary 1.6 is useful")
	}
	t.Passed = passed
	return t, nil
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
