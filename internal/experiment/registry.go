package experiment

// The registry wires every experiment to its ID; cmd/experiments and the
// benchmark harness iterate over it.
var (
	_ = register("E1", "Theorem 1.1 upper bound T(G,c)", RunE1)
	_ = register("E2", "Theorem 1.2 tightness on G(n,ρ)", RunE2)
	_ = register("E3", "Theorem 1.3 / Remark 1.4 absolute bound and O(n²) worst case", RunE3)
	_ = register("E4", "Theorem 1.5 absolutely ρ-diligent network Θ(n/ρ)", RunE4)
	_ = register("E5", "Theorem 1.7(i)-(ii) / Figure 1 dichotomy", RunE5)
	_ = register("E6", "Theorem 1.7(iii) dynamic-star tail", RunE6)
	_ = register("E7", "Lemma 2.2 Poisson tail", RunE7)
	_ = register("E8", "Observation 4.1 Φ and ρ of H_{k,Δ}", RunE8)
	_ = register("E9", "Lemma 5.2 unit-time spread on regular graphs", RunE9)
	_ = register("E10", "Section 1.2 comparison with the M(G) bound", RunE10)
	_ = register("E11", "Corollary 1.6 combined bound", RunE11)
	_ = register("E12", "Lemma 4.2 / Claim 4.3 bipartite-string crossing", RunE12)
)
