package store

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// key derives a valid hex cache key from a label.
func key(label string) string {
	sum := sha256.Sum256([]byte(label))
	return hex.EncodeToString(sum[:])
}

// TestCachePutGetRoundTrip: payloads survive a put/get cycle and a reopen.
func TestCachePutGetRoundTrip(t *testing.T) {
	dir := t.TempDir()
	c, err := OpenCache(dir, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte(`{"summary":"bytes"}`)
	if err := c.Put(key("a"), payload); err != nil {
		t.Fatal(err)
	}
	got, ok := c.Get(key("a"))
	if !ok || !bytes.Equal(got, payload) {
		t.Fatalf("Get = %q, %v; want the payload back", got, ok)
	}

	// A fresh cache over the same directory — the restart path — serves the
	// same bytes.
	c2, err := OpenCache(dir, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	got, ok = c2.Get(key("a"))
	if !ok || !bytes.Equal(got, payload) {
		t.Fatalf("Get after reopen = %q, %v; want the payload back", got, ok)
	}
	st := c2.Stats()
	if st.Hits != 1 || st.Entries != 1 {
		t.Errorf("stats after reopen = %+v, want 1 hit, 1 entry", st)
	}
}

// TestCacheTruncatedEntryQuarantined: a truncated entry is detected on
// read, quarantined, and treated as a miss — never served.
func TestCacheTruncatedEntryQuarantined(t *testing.T) {
	dir := t.TempDir()
	c, err := OpenCache(dir, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	k := key("trunc")
	if err := c.Put(k, bytes.Repeat([]byte("v"), 200)); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, k)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}

	if got, ok := c.Get(k); ok {
		t.Fatalf("Get served a truncated entry: %q", got)
	}
	if _, err := os.Stat(filepath.Join(dir, quarantineDir, k)); err != nil {
		t.Errorf("truncated entry was not quarantined: %v", err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Errorf("truncated entry still present in the cache dir")
	}
	st := c.Stats()
	if st.Corrupt != 1 || st.Misses != 1 {
		t.Errorf("stats = %+v, want 1 corrupt, 1 miss", st)
	}

	// The key is recomputable: a fresh put serves again.
	if err := c.Put(k, bytes.Repeat([]byte("v"), 200)); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get(k); !ok {
		t.Error("re-put after quarantine did not serve")
	}
}

// TestCacheBitFlippedEntryQuarantined: a single flipped payload bit fails
// the checksum; the entry is quarantined and reported as a miss, across a
// reopen too (the scan indexes lazily, the read verifies).
func TestCacheBitFlippedEntryQuarantined(t *testing.T) {
	dir := t.TempDir()
	c, err := OpenCache(dir, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	k := key("flip")
	if err := c.Put(k, bytes.Repeat([]byte("w"), 500)); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, k)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[cacheHeaderLen+250] ^= 0x01
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	// Reopen: the damaged entry is indexed (verification is lazy)...
	c2, err := OpenCache(dir, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	// ...but the read detects the flip and quarantines.
	if got, ok := c2.Get(k); ok {
		t.Fatalf("Get served a bit-flipped entry: %q", got)
	}
	if _, err := os.Stat(filepath.Join(dir, quarantineDir, k)); err != nil {
		t.Errorf("bit-flipped entry was not quarantined: %v", err)
	}
	if st := c2.Stats(); st.Corrupt != 1 {
		t.Errorf("corrupt count = %d, want 1", st.Corrupt)
	}
}

// TestCacheLRUEviction: exceeding the byte budget evicts the least
// recently used entries, and a Get refreshes recency.
func TestCacheLRUEviction(t *testing.T) {
	dir := t.TempDir()
	payload := bytes.Repeat([]byte("e"), 1000)
	entrySize := int64(cacheHeaderLen + len(payload))
	c, err := OpenCache(dir, 3*entrySize)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := c.Put(key(fmt.Sprintf("e%d", i)), payload); err != nil {
			t.Fatal(err)
		}
	}
	// Touch e0 so e1 becomes the LRU victim.
	if _, ok := c.Get(key("e0")); !ok {
		t.Fatal("warm entry missing")
	}
	if err := c.Put(key("e3"), payload); err != nil {
		t.Fatal(err)
	}

	if _, ok := c.Get(key("e1")); ok {
		t.Error("LRU victim e1 still resident")
	}
	for _, label := range []string{"e0", "e2", "e3"} {
		if _, ok := c.Get(key(label)); !ok {
			t.Errorf("entry %s was evicted, want resident", label)
		}
	}
	st := c.Stats()
	if st.Evictions != 1 || st.Entries != 3 || st.Bytes != 3*entrySize {
		t.Errorf("stats = %+v, want 1 eviction, 3 entries, %d bytes", st, 3*entrySize)
	}
}

// TestCacheScanOrdersByMtime: reopening seeds the LRU oldest-first, so the
// stalest on-disk entries are evicted first.
func TestCacheScanOrdersByMtime(t *testing.T) {
	dir := t.TempDir()
	payload := bytes.Repeat([]byte("m"), 100)
	entrySize := int64(cacheHeaderLen + len(payload))
	c, err := OpenCache(dir, 10*entrySize)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := c.Put(key(fmt.Sprintf("m%d", i)), payload); err != nil {
			t.Fatal(err)
		}
	}
	// Age the first entry far into the past.
	old := filepath.Join(dir, key("m0"))
	past := time.Now().Add(-24 * time.Hour)
	if err := os.Chtimes(old, past, past); err != nil {
		t.Fatal(err)
	}

	// Reopen with room for only 3 entries: m0 must be the victim.
	c2, err := OpenCache(dir, 3*entrySize)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c2.Get(key("m0")); ok {
		t.Error("oldest entry m0 survived a budget-shrinking reopen")
	}
	if st := c2.Stats(); st.Entries != 3 {
		t.Errorf("entries after shrink = %d, want 3", st.Entries)
	}
	_ = c
}

// TestCacheCrashedTempSwept: leftover temp files from a crashed put are
// removed on open and never indexed.
func TestCacheCrashedTempSwept(t *testing.T) {
	dir := t.TempDir()
	tmp := filepath.Join(dir, ".tmp-deadbeef-123")
	if err := os.WriteFile(tmp, []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}
	c, err := OpenCache(dir, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Error("crashed temp file survived the open sweep")
	}
	if st := c.Stats(); st.Entries != 0 {
		t.Errorf("entries = %d, want 0", st.Entries)
	}
}
