package store

import (
	"container/list"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Disk cache entry layout:
//
//	magic "drc1" | uint32 payload length | sha256(payload) | payload
//
// The checksum is over the payload alone, verified on every read: a
// truncated, bit-flipped or otherwise damaged entry is detected, moved into
// the quarantine/ subdirectory for post-mortem, and reported as a miss —
// corrupt bytes are never served. Writes are atomic (temp file, fsync,
// rename, dir fsync), so a crash mid-put leaves either no entry or a
// complete one.

// cacheMagic identifies (and versions) the entry encoding.
const cacheMagic = "drc1"

// cacheHeaderLen is the fixed prefix before the payload.
const cacheHeaderLen = len(cacheMagic) + 4 + sha256.Size

// quarantineDir is the subdirectory corrupt entries are moved into.
const quarantineDir = "quarantine"

// CacheStats is a snapshot of the disk cache counters.
type CacheStats struct {
	// Hits and Misses count Get outcomes; a corrupt entry counts as both a
	// miss and a Corrupt quarantine.
	Hits   int64 `json:"hits"`
	Misses int64 `json:"misses"`
	// Corrupt counts entries that failed their checksum and were quarantined.
	Corrupt int64 `json:"corrupt_quarantined"`
	// Evictions counts entries removed by the byte-budget LRU.
	Evictions int64 `json:"evictions"`
	// Entries and Bytes describe the resident set.
	Entries int   `json:"entries"`
	Bytes   int64 `json:"bytes"`
}

// Cache is a content-addressed disk store: keys are the service's hex
// run-key hashes, values opaque byte blobs (summary documents). Entries
// survive process restarts; the resident set is bounded by a total-byte
// budget with least-recently-used eviction. Safe for concurrent use.
type Cache struct {
	dir      string
	maxBytes int64

	mu      sync.Mutex
	entries map[string]*list.Element // key -> lru element
	lru     *list.List               // front = most recent
	bytes   int64
	stats   CacheStats
}

// cacheEntry is the in-memory index record of one on-disk entry.
type cacheEntry struct {
	key  string
	size int64 // on-disk file size, the unit of the byte budget
}

// OpenCache opens (creating if needed) a disk cache rooted at dir with a
// total-size budget of maxBytes (<= 0 selects 256 MiB). Existing entries
// are indexed by modification time — oldest first in the LRU — and leftover
// temp files from crashed writes are swept; entry payloads are verified
// lazily, on read.
func OpenCache(dir string, maxBytes int64) (*Cache, error) {
	if maxBytes <= 0 {
		maxBytes = 256 << 20
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: cache dir: %w", err)
	}
	c := &Cache{
		dir:      dir,
		maxBytes: maxBytes,
		entries:  make(map[string]*list.Element),
		lru:      list.New(),
	}
	names, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("store: scan cache dir: %w", err)
	}
	type scanned struct {
		cacheEntry
		mtime int64
	}
	var found []scanned
	for _, de := range names {
		name := de.Name()
		switch {
		case de.IsDir():
			continue
		case strings.HasPrefix(name, ".tmp-"):
			os.Remove(filepath.Join(dir, name)) // crashed write, never renamed
			continue
		case !validKey(name):
			continue
		}
		info, err := de.Info()
		if err != nil {
			continue
		}
		found = append(found, scanned{cacheEntry{key: name, size: info.Size()}, info.ModTime().UnixNano()})
	}
	sort.Slice(found, func(i, j int) bool { return found[i].mtime < found[j].mtime })
	for _, e := range found {
		c.entries[e.key] = c.lru.PushFront(e.cacheEntry)
		c.bytes += e.size
	}
	c.evictLocked()
	return c, nil
}

// validKey accepts the hex-digest keys the service produces; anything else
// in the directory (editor droppings, the quarantine dir) is left alone.
func validKey(name string) bool {
	if len(name) != sha256.Size*2 {
		return false
	}
	for i := 0; i < len(name); i++ {
		ch := name[i]
		if (ch < '0' || ch > '9') && (ch < 'a' || ch > 'f') {
			return false
		}
	}
	return true
}

// Get returns the cached payload for key. A checksum failure quarantines
// the entry and reports a miss — the caller recomputes, never replays
// corrupt bytes.
func (c *Cache) Get(key string) ([]byte, bool) {
	if !validKey(key) {
		return nil, false
	}
	c.mu.Lock()
	el, ok := c.entries[key]
	c.mu.Unlock()
	if !ok {
		c.miss()
		return nil, false
	}
	data, err := os.ReadFile(filepath.Join(c.dir, key))
	payload, verr := verifyEntry(data)
	switch {
	case err != nil:
		// The file vanished under us (external cleanup): drop the index entry.
		c.drop(key, el)
		c.miss()
		return nil, false
	case verr != nil:
		c.quarantine(key, el)
		c.miss()
		return nil, false
	}
	c.mu.Lock()
	if cur, ok := c.entries[key]; ok {
		c.lru.MoveToFront(cur)
	}
	c.stats.Hits++
	c.mu.Unlock()
	return payload, true
}

// verifyEntry checks an entry's framing and checksum, returning the payload.
func verifyEntry(data []byte) ([]byte, error) {
	if len(data) < cacheHeaderLen || string(data[:len(cacheMagic)]) != cacheMagic {
		return nil, fmt.Errorf("store: cache entry lacks %q magic", cacheMagic)
	}
	length := binary.LittleEndian.Uint32(data[len(cacheMagic):])
	sum := data[len(cacheMagic)+4 : cacheHeaderLen]
	payload := data[cacheHeaderLen:]
	if uint32(len(payload)) != length {
		return nil, fmt.Errorf("store: cache entry payload is %d bytes, header says %d", len(payload), length)
	}
	if got := sha256.Sum256(payload); string(got[:]) != string(sum) {
		return nil, fmt.Errorf("store: cache entry checksum mismatch")
	}
	return payload, nil
}

// Put durably stores payload under key: temp file, fsync, rename into
// place, dir fsync. Re-putting an existing key is a no-op (equal keys mean
// byte-identical payloads, so the first write wins harmlessly).
func (c *Cache) Put(key string, payload []byte) error {
	if !validKey(key) {
		return fmt.Errorf("store: cache key %q is not a hex digest", key)
	}
	c.mu.Lock()
	_, exists := c.entries[key]
	c.mu.Unlock()
	if exists {
		return nil
	}

	buf := make([]byte, 0, cacheHeaderLen+len(payload))
	buf = append(buf, cacheMagic...)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(payload)))
	sum := sha256.Sum256(payload)
	buf = append(buf, sum[:]...)
	buf = append(buf, payload...)

	tmp, err := os.CreateTemp(c.dir, ".tmp-"+key[:8]+"-*")
	if err != nil {
		return fmt.Errorf("store: cache put: %w", err)
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(buf); err != nil {
		tmp.Close()
		return fmt.Errorf("store: cache put: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("store: cache put fsync: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("store: cache put close: %w", err)
	}
	if err := os.Rename(tmp.Name(), filepath.Join(c.dir, key)); err != nil {
		return fmt.Errorf("store: cache put rename: %w", err)
	}
	if err := syncDir(c.dir); err != nil {
		return err
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.entries[key]; !ok {
		c.entries[key] = c.lru.PushFront(cacheEntry{key: key, size: int64(len(buf))})
		c.bytes += int64(len(buf))
		c.evictLocked()
	}
	return nil
}

// evictLocked removes least-recently-used entries until the byte budget
// holds. The most recent entry always survives, even if it alone exceeds
// the budget — a cache that refused its newest write would be useless.
func (c *Cache) evictLocked() {
	for c.bytes > c.maxBytes && c.lru.Len() > 1 {
		el := c.lru.Back()
		e := el.Value.(cacheEntry)
		c.lru.Remove(el)
		delete(c.entries, e.key)
		c.bytes -= e.size
		c.stats.Evictions++
		os.Remove(filepath.Join(c.dir, e.key))
	}
}

// drop forgets an index entry whose file disappeared.
func (c *Cache) drop(key string, el *list.Element) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if cur, ok := c.entries[key]; ok && cur == el {
		e := cur.Value.(cacheEntry)
		c.lru.Remove(cur)
		delete(c.entries, key)
		c.bytes -= e.size
	}
}

// quarantine moves a corrupt entry aside — preserved for post-mortem, never
// served again — and forgets it.
func (c *Cache) quarantine(key string, el *list.Element) {
	qdir := filepath.Join(c.dir, quarantineDir)
	if err := os.MkdirAll(qdir, 0o755); err == nil {
		os.Rename(filepath.Join(c.dir, key), filepath.Join(qdir, key))
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if cur, ok := c.entries[key]; ok && cur == el {
		e := cur.Value.(cacheEntry)
		c.lru.Remove(cur)
		delete(c.entries, key)
		c.bytes -= e.size
	}
	c.stats.Corrupt++
}

// miss counts one Get miss.
func (c *Cache) miss() {
	c.mu.Lock()
	c.stats.Misses++
	c.mu.Unlock()
}

// Stats snapshots the cache counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.Entries = c.lru.Len()
	s.Bytes = c.bytes
	return s
}
